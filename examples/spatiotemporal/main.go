// Spatio-temporal planner: the §V-C case study. Watch a day of network
// telemetry, find the moment the synced population is smallest, and build
// capability-adjusted attack plans — a routing-only AS, a mining pool, and
// the cloud provider that can do both — then execute the combined attack on
// a live simulation.
//
//	go run ./examples/spatiotemporal
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)
	study, err := core.New(11)
	if err != nil {
		log.Fatal(err)
	}

	// One day of 10-minute samples with per-AS sync tracking — the
	// adversarial view of Figures 6(b) and 8.
	tr, err := study.Pop.RunTrace(dataset.TraceConfig{
		Duration:        24 * time.Hour,
		SampleEvery:     10 * time.Minute,
		Seed:            99,
		TrackSyncedByAS: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	moment, err := attack.FindBestMoment(tr, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best attack window at t=%v: %d synced vs %d behind\n",
		moment.Time, moment.Synced, moment.Behind)
	fmt.Println("top ASes hosting the synced (green) nodes at that moment:")
	for _, row := range moment.TopSyncedASes {
		fmt.Printf("  AS%-6d %4d synced nodes (%.1f%%)\n", row.ASN, row.Nodes, row.Fraction*100)
	}

	fmt.Println("\ncapability-adjusted plans:")
	for _, cap := range []attack.Capability{
		attack.CapabilityRouting, attack.CapabilityMining, attack.CapabilityBoth,
	} {
		plan, err := attack.PlanSpatioTemporal(study.Pop, moment, cap, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15v spatial: %d ASes / %d prefixes -> %d nodes; temporal: %d victims; coverage %.1f%%\n",
			cap, len(plan.SpatialASes), plan.SpatialPrefixes, plan.SpatialNodes,
			plan.TemporalVictims, plan.Coverage*100)
	}

	// Execute the cloud-provider (both-capability) attack on a live sim.
	sim, err := study.NewSimFromPopulation(160, 11)
	if err != nil {
		log.Fatal(err)
	}
	sim.StartMining()
	sim.Run(6 * time.Hour)
	candidates := attack.FindVictims(sim, 0, 0)
	spatial := candidates[:12]    // synced nodes: blackholed by BGP
	temporal := candidates[12:30] // lagging nodes: fed counterfeit blocks
	res, err := attack.ExecuteSpatioTemporal(sim, attack.TemporalConfig{
		AttackerShare: 0.30,
		HoldFor:       8 * time.Hour,
		HealFor:       4 * time.Hour,
	}, spatial, temporal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined execution: %d/%d spatially isolated; %d/%d temporally captured; %d txs reversed\n",
		res.SpatialIsolated, len(spatial),
		res.Temporal.CapturedAtRelease, len(temporal), res.Temporal.ReversedTxs)
}
