// Spatial hijack: the §V-A scenario end to end. A malicious AS announces
// more-specific BGP prefixes to capture a victim AS's Bitcoin nodes, an
// organization's whole AS portfolio, and finally the mining backbone of
// Table IV. Demonstrates cost (prefix announcements) vs advantage (nodes
// and hash rate captured) — the trade-off Figure 4 quantifies.
//
//	go run ./examples/spatialhijack
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/measure"
	"repro/internal/mining"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	study, err := core.New(7)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := attack.NewSpatial(study.Pop)
	if err != nil {
		log.Fatal(err)
	}
	pools, err := mining.NewPoolSet(dataset.TableIV())
	if err != nil {
		log.Fatal(err)
	}
	const attacker topology.ASN = 666

	// 1. Single-AS hijack: Figure 4's cheapest target vs its hardest.
	fmt.Println("== per-AS hijack cost (95% capture) ==")
	for _, victim := range core.Figure4ASes() {
		k, err := measure.PrefixesToIsolate(study.Pop, victim, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		row, _ := study.Pop.ASRow(victim)
		fmt.Printf("AS%-6d %4d nodes: %3d of %4d prefixes\n", victim, row.Nodes, k, row.Prefixes)
	}

	// 2. Execute against Hetzner and verify capture on the route table.
	plan, err := sp.PlanAS(attacker, 24940, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sp.Execute(plan, pools)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhijacked AS24940 with %d announcements: %d nodes now route to AS%d\n",
		res.Announcements, res.CapturedNodes, attacker)
	sp.Withdraw()

	// 3. Organization-level amplification: Amazon owns several ASes.
	orgPlan, err := sp.PlanOrganization(attacker, "Amazon.com, Inc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\norganization hijack of Amazon.com: %d ASes, %d prefixes, %d nodes\n",
		len(orgPlan.Targets), orgPlan.HijackCount, orgPlan.ExpectedNodes)

	// 4. Mining isolation (Table IV): three ASes carry 65.7% of hash rate.
	share := attack.MinerIsolation(pools, []topology.ASN{37963, 45102, 58563})
	fmt.Printf("\nhijacking AS37963+AS45102+AS58563 isolates %.1f%% of hash rate\n", share*100)
	fmt.Println("with >50% of hash power isolated, the remaining network is exposed to a 51% attack")
}
