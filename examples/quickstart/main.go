// Quickstart: generate the calibrated Feb-28-2018 population, look at the
// network's centralization, run a small live simulation, and execute one
// temporal partitioning attack end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)

	// A Study owns the synthetic crawl: 13,635 nodes across 1,660 ASes,
	// calibrated to every aggregate the paper publishes.
	study, err := core.New(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population: %d nodes, %d ASes, %d organizations\n\n",
		len(study.Pop.Nodes), study.Pop.Topo.NumASes()+1, study.Pop.Topo.NumOrgs()+1)

	// Centralization at a glance (Figure 3's headline numbers).
	fig3, err := study.Figure3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("centralization: %d ASes host 30%% of nodes, %d host 50%%\n\n",
		fig3.ASFor30, fig3.ASFor50)

	// A live network simulation: 150 nodes sampled from the population,
	// eight outbound peers each, diffusion gossip, 10% message loss,
	// Table IV's mining pools producing blocks.
	sim, err := study.NewSimFromPopulation(150, 42)
	if err != nil {
		log.Fatal(err)
	}
	sim.StartMining()
	sim.Run(6 * time.Hour)
	lag := sim.LagHistogram()
	fmt.Printf("after 6h: %d blocks mined; %d nodes synced, %d one behind, %d further behind\n\n",
		sim.BlocksProduced(), lag.Synced, lag.Behind1,
		lag.Behind2to4+lag.Behind5to10+lag.Behind10plus)

	// The temporal attack of §V-B: isolate lagging nodes and feed them a
	// counterfeit branch mined with 30% of the network's hash rate.
	res, err := attack.ExecuteTemporal(sim, attack.TemporalConfig{
		AttackerShare: 0.30,
		MinLag:        0,
		MaxVictims:    20,
		HoldFor:       8 * time.Hour,
		HealFor:       4 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("temporal attack: %d victims fed %d counterfeit blocks\n",
		len(res.Victims), res.CounterfeitBlocks)
	fmt.Printf("  captured at release: %d (max fork depth %d)\n",
		res.CapturedAtRelease, res.MaxForkDepth)
	fmt.Printf("  after healing: %d recovered, %d transactions reversed\n",
		res.RecoveredAfterHeal, res.ReversedTxs)
}
