// Temporal fork: the Figure 7 grid simulation narrated step by step — a
// 30%-hash-rate attacker anchored at cell [7,7] carves a counterfeit fork
// out of a 25x25 node lattice, the fork spreads, and the longer honest
// chain eventually overwhelms it (while new natural forks appear, exactly
// as in the paper's panels).
//
//	go run ./examples/temporalfork
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/gridsim"
)

func main() {
	log.SetFlags(0)

	g, err := gridsim.New(2,
		gridsim.WithSize(25),
		gridsim.WithSpanRatio(2.0),
		gridsim.WithFailureRate(0.10),
		gridsim.WithAttacker(0.30, 7, 7),
		// The attacker holds a radius-5 region open via targeted
		// communication disruption for the first 200 steps.
		gridsim.WithBoundary(5, 0, 200),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid 25x25, span ratio 2.0 -> %d communication steps per block\n\n", g.StepsPerBlock())

	prev := 0
	for _, step := range []int{151, 201, 251, 401} {
		g.Advance(step - prev)
		prev = step
		snap := g.Snapshot()
		dom, n := snap.DominantFork()
		fmt.Printf("=== step %d: height %d, %d live fork labels, dominant %v (%d cells), counterfeit cells %d ===\n",
			step, snap.MaxHeight, len(snap.ForkCounts), dom, n, g.CounterfeitCells())
		fmt.Print(g.Render())
		fmt.Println()
	}
	fmt.Printf("forks emerged in total: %d\n\n", g.ForksEmerged())

	// The same phenomenon captured by the theoretical timing model
	// (Table VI): how long must the attacker budget to isolate m nodes?
	fmt.Println("isolation timing bound (p >= 0.8):")
	for _, m := range []int{100, 500, 1500} {
		for _, lambda := range []float64{0.4, 0.8} {
			T, err := attack.MinTimingConstraint(m, lambda, 0.8)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  m=%4d λ=%.1f: T >= %d s\n", m, lambda, T)
		}
	}
}
