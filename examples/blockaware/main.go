// BlockAware: the §VI countermeasure in action. The same temporal attack is
// run twice — once against defenseless victims and once against victims
// running the BlockAware self-check (tc - tl > 600 s triggers fresh-peer
// queries) — and the outcomes are compared. Also demonstrates the other two
// §VI defenses: stratum-server dispersal and bogus-route purging.
//
//	go run ./examples/blockaware
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)
	study, err := core.New(5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== BlockAware vs the temporal attack ==")
	for _, protect := range []bool{false, true} {
		sim, err := study.NewSimFromPopulation(120, 5)
		if err != nil {
			log.Fatal(err)
		}
		sim.StartMining()
		sim.Run(6 * time.Hour)
		victims := attack.FindVictims(sim, 0, 15)
		var ba *defense.BlockAware
		if protect {
			ba, err = defense.NewBlockAware(sim, victims, defense.BlockAwareConfig{Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			ba.Start()
		}
		res, err := attack.ExecuteTemporalOn(sim, attack.TemporalConfig{
			AttackerShare: 0.30,
			HoldFor:       8 * time.Hour,
			HealFor:       2 * time.Hour,
		}, victims)
		if err != nil {
			log.Fatal(err)
		}
		label := "unprotected"
		if protect {
			label = "BlockAware "
		}
		fmt.Printf("%s: %2d/%d captured at release, %4d txs reversed",
			label, res.CapturedAtRelease, len(victims), res.ReversedTxs)
		if ba != nil {
			fmt.Printf(" (%d staleness triggers, %d rescues)", ba.Triggers, ba.Rescues)
			ba.Stop()
		}
		fmt.Println()
	}

	fmt.Println("\n== stratum dispersal ==")
	pools := dataset.TableIV()
	before, err := defense.MinASesToIsolate(pools, 0.60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d AS hijacks isolate %.1f%% of hash rate\n",
		before.ASesHijacked, before.ShareIsolated*100)
	candidates := []topology.ASN{
		24940, 16276, 37963, 16509, 14061, 7922, 4134, 51167, 45102, 58563, 60000, 60001,
	}
	spread, err := defense.SpreadStratum(pools, candidates, 4)
	if err != nil {
		log.Fatal(err)
	}
	after, err := defense.MinASesToIsolate(spread, 0.60)
	if err != nil {
		log.Fatal(err)
	}
	if after.Feasible {
		fmt.Printf("after 4-way dispersal: %d AS hijacks needed\n", after.ASesHijacked)
	} else {
		fmt.Printf("after 4-way dispersal: target infeasible (max isolable %.1f%% even with %d hijacks)\n",
			after.ShareIsolated*100, after.ASesHijacked)
	}

	fmt.Println("\n== route guard ==")
	guard, err := defense.NewRouteGuard(study.Pop.Topo)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := attack.NewSpatial(study.Pop)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sp.PlanAS(666, 24940, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sp.Execute(plan, nil); err != nil {
		log.Fatal(err)
	}
	suspicions := guard.Audit()
	purged, err := guard.PurgeSuspicious(suspicions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hijack of AS24940: audit flagged %d prefixes, purged %d announcements, re-audit clean: %v\n",
		len(suspicions), purged, len(guard.Audit()) == 0)
}
