// Double spend: the economic payoff the paper's implications sections warn
// about, end to end. A merchant runs a lagging full node; the attacker
// isolates it (with other stragglers), pays the merchant in a counterfeit
// block, lets confirmations pile up until the goods ship, then releases the
// partition — the honest chain erases the payment.
//
//	go run ./examples/doublespend
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/spv"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	study, err := core.New(21)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := study.NewSimFromPopulation(120, 21)
	if err != nil {
		log.Fatal(err)
	}

	// Wallet users attach to full nodes; some will end up behind victims.
	fleet, err := spv.NewFleet(sim, 2400, stats.NewRand(2), nil)
	if err != nil {
		log.Fatal(err)
	}

	sim.StartMining()
	sim.Run(6 * time.Hour)
	fmt.Printf("network warmed up: %d blocks, %d full nodes, %d wallets\n\n",
		sim.BlocksProduced(), len(sim.Network.Nodes), fleet.Size())

	victims := attack.FindVictims(sim, 0, 12)
	victimWallets := 0
	for _, v := range victims {
		victimWallets += fleet.ClientsOf(v)
	}
	fmt.Printf("attacker isolates %d nodes (serving %d wallets); merchant is among them\n",
		len(victims), victimWallets)

	res, err := attack.ExecuteTemporalOn(sim, attack.TemporalConfig{
		AttackerShare: 0.30,
		HoldFor:       8 * time.Hour,
		HealFor:       4 * time.Hour,
		TrackPayment:  true,
	}, victims)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npayment tx %d confirmed in the counterfeit branch\n", res.PaymentTx)
	fmt.Printf("merchant watched it reach %d confirmations over %d counterfeit blocks\n",
		res.MerchantConfirmations, res.CounterfeitBlocks)
	fmt.Printf("(standard acceptance threshold is 6 confirmations — goods shipped)\n\n")

	fmt.Printf("partition released; honest chain (%d blocks mined during the hold) floods back\n",
		res.HonestBlocksDuringHold)
	fmt.Printf("victims recovered: %d/%d; transactions reversed across victims: %d\n",
		res.RecoveredAfterHeal, len(victims), res.ReversedTxs)
	if res.PaymentReversed && res.MerchantConfirmations >= 6 {
		fmt.Println("\ndouble spend SUCCEEDED: the payment is gone and the goods are not")
	} else if res.PaymentReversed {
		fmt.Println("\npayment reversed, but confirmations were thin — a careful merchant survives")
	} else {
		fmt.Println("\ndouble spend failed: the payment survived the reorg")
	}
}
