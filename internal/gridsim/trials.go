package gridsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// The paper's Figure 7 presents "a sample of results obtained from
// simulation": a single grid run. Monte-Carlo confidence on the quantities
// behind it — how often forks emerge, how large the attacker's counterfeit
// region grows — needs an ensemble of independent replicates, which are
// embarrassingly parallel. RunTrials fans them across cores while keeping
// the ensemble bit-identical for any worker count: trial i always runs with
// seed DeriveSeed(cfg.Seed, i) and results are collected in trial order.

// TrialsConfig parameterizes a Monte-Carlo ensemble of grid runs.
type TrialsConfig struct {
	// Trials is the number of independent replicates.
	Trials int
	// Blocks is the number of block intervals each replicate simulates.
	// Default 40 (the span-ratio ablation's horizon).
	Blocks int
	// SettleSteps advances each replicate this many extra steps past the
	// final block event before measuring, so end-of-run metrics are not
	// dominated by the propagation of the very last block (the ablation
	// benches sample half an interval past the last block the same way).
	// Zero — the default — measures at the final block event exactly.
	SettleSteps int
	// Workers bounds concurrent replicates; <= 0 means one per CPU.
	Workers int
}

// Trial is the outcome of one replicate.
type Trial struct {
	// Seed is the derived seed the replicate ran with.
	Seed int64
	// Forks is the number of branches that emerged beyond the main chain.
	Forks int
	// CounterfeitCells is the number of cells on an attacker branch at the
	// end of the run.
	CounterfeitCells int
	// StaleCells is the number of cells at least one block behind the
	// global best height at the end of the run.
	StaleCells int
	// MaxHeight is the global best height at the end of the run.
	MaxHeight int
}

// TrialsResult summarizes the ensemble.
type TrialsResult struct {
	// Config echoes the grid configuration the replicates shared (modulo
	// the per-trial seed).
	Config Config
	// Blocks is the per-replicate horizon in block intervals.
	Blocks int
	// Trials holds every replicate outcome, in trial order.
	Trials []Trial
	// ForkRate is the mean forks-per-block-interval across replicates, with
	// the half-width of its 95% confidence interval.
	ForkRate, ForkRateCI float64
	// MeanForks is the mean fork count per replicate, with its 95% CI
	// half-width.
	MeanForks, MeanForksCI float64
	// MeanCounterfeitShare is the mean fraction of cells left on an
	// attacker branch, with its 95% CI half-width.
	MeanCounterfeitShare, MeanCounterfeitShareCI float64
	// MeanStaleShare is the mean fraction of cells at least one block
	// behind the best height at the end of the run, with its 95% CI
	// half-width.
	MeanStaleShare, MeanStaleShareCI float64
}

func (tc TrialsConfig) withDefaults() TrialsConfig {
	if tc.Blocks == 0 {
		tc.Blocks = 40
	}
	return tc
}

// RunTrials runs tc.Trials independent grid simulations of cfg, each for
// tc.Blocks block intervals under its own derived seed, fanned across
// tc.Workers cores. The result is identical for any worker count.
func RunTrials(cfg Config, tc TrialsConfig) (*TrialsResult, error) {
	tc = tc.withDefaults()
	if tc.Trials <= 0 {
		return nil, fmt.Errorf("gridsim: trials %d must be positive", tc.Trials)
	}
	if tc.Blocks <= 0 {
		return nil, fmt.Errorf("gridsim: blocks %d must be positive", tc.Blocks)
	}
	// Validate once up front so a bad config fails before the fan-out.
	if err := cfg.withDefaults().Validate(); err != nil {
		return nil, err
	}
	// With an attached registry, each replicate records into its own
	// metrics-only observer (slot-indexed, so workers never share one);
	// the per-trial registries are merged back in trial order below,
	// keeping the ensemble's metrics identical for any worker count.
	ensembleReg := cfg.Obs.Registry()
	var trialRegs []*obs.Registry
	if ensembleReg != nil {
		trialRegs = make([]*obs.Registry, tc.Trials)
	}
	trials, err := parallel.Trials(tc.Workers, cfg.Seed, tc.Trials,
		func(trial int, seed int64) (Trial, error) {
			runCfg := cfg
			runCfg.Seed = seed
			if trialRegs != nil {
				o := obs.NewMetricsOnly()
				trialRegs[trial] = o.Metrics
				runCfg.Obs = o
			} else {
				runCfg.Obs = nil
			}
			g, err := New(runCfg)
			if err != nil {
				return Trial{}, fmt.Errorf("trial %d: %w", trial, err)
			}
			g.Advance(g.StepsPerBlock()*tc.Blocks + tc.SettleSteps)
			snap := g.Snapshot()
			return Trial{
				Seed:             seed,
				Forks:            g.ForksEmerged(),
				CounterfeitCells: g.CounterfeitCells(),
				StaleCells:       len(g.cells) - snap.Lag[0],
				MaxHeight:        snap.MaxHeight,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, reg := range trialRegs {
		ensembleReg.Merge(reg)
	}
	res := &TrialsResult{Config: cfg, Blocks: tc.Blocks, Trials: trials}
	n := cfg.withDefaults().Size
	cells := float64(n * n)
	forks := make([]float64, len(trials))
	rates := make([]float64, len(trials))
	shares := make([]float64, len(trials))
	stale := make([]float64, len(trials))
	for i, t := range trials {
		forks[i] = float64(t.Forks)
		rates[i] = float64(t.Forks) / float64(tc.Blocks)
		shares[i] = float64(t.CounterfeitCells) / cells
		stale[i] = float64(t.StaleCells) / cells
	}
	res.MeanForks, res.MeanForksCI = stats.MeanCI95(forks)
	res.ForkRate, res.ForkRateCI = stats.MeanCI95(rates)
	res.MeanCounterfeitShare, res.MeanCounterfeitShareCI = stats.MeanCI95(shares)
	res.MeanStaleShare, res.MeanStaleShareCI = stats.MeanCI95(stale)
	return res, nil
}
