package gridsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// The paper's Figure 7 presents "a sample of results obtained from
// simulation": a single grid run. Monte-Carlo confidence on the quantities
// behind it — how often forks emerge, how large the attacker's counterfeit
// region grows — needs an ensemble of independent replicates, which are
// embarrassingly parallel. RunTrials fans them across cores while keeping
// the ensemble bit-identical for any worker count: trial i always runs with
// seed DeriveSeed(cfg.Seed, i) and results are collected in trial order.

// TrialsConfig parameterizes a Monte-Carlo ensemble of grid runs.
type TrialsConfig struct {
	// Trials is the number of independent replicates.
	Trials int
	// Blocks is the number of block intervals each replicate simulates.
	// Default 40 (the span-ratio ablation's horizon).
	Blocks int
	// SettleSteps advances each replicate this many extra steps past the
	// final block event before measuring, so end-of-run metrics are not
	// dominated by the propagation of the very last block (the ablation
	// benches sample half an interval past the last block the same way).
	// Zero — the default — measures at the final block event exactly.
	SettleSteps int
	// Workers bounds concurrent replicates; <= 0 means one per CPU.
	Workers int
	// StepBudget, when positive, arms the per-replicate watchdog: a
	// replicate that would run past this many grid steps is cancelled and
	// its trial fails with an error wrapping checkpoint.ErrBudget
	// (journaled as exhausted under a supervised run).
	StepBudget int
	// Journal, when non-nil, write-ahead journals every replicate outcome
	// at its trial boundary (DESIGN.md §11), so a killed ensemble resumes
	// instead of restarting. Engaging any of Journal, Resume, or Degrade
	// switches RunTrials onto the supervised path; the plain path is
	// otherwise byte-for-byte untouched.
	Journal *checkpoint.Journal
	// Resume replays completed replicates from a prior journal (matched by
	// trial index and derived seed) instead of re-running them.
	Resume *checkpoint.Log
	// Degrade continues past a panicking or watchdog-cancelled replicate,
	// quarantining it into TrialsResult.Faults, instead of failing the
	// whole ensemble.
	Degrade bool
}

// supervised reports whether the crash-safety path is engaged.
func (tc TrialsConfig) supervised() bool {
	return tc.Journal != nil || tc.Resume != nil || tc.Degrade
}

// Fingerprint identifies the ensemble for the checkpoint journal: the grid
// configuration and every ensemble parameter that changes results. Workers
// and the observer are excluded — results are identical across worker
// counts and instrumentation. Sharding is normalized the same way: output
// is byte-identical for every shard count >= 1, router, worker width, and
// rebalance schedule, so those collapse to Shards=1 — while the 0-vs-1
// engine distinction (legacy push-pull vs. sharded pull-only) is real and
// stays in the fingerprint.
func (tc TrialsConfig) Fingerprint(cfg Config) string {
	tc = tc.withDefaults()
	scrubbed := cfg
	scrubbed.Obs = nil
	if scrubbed.Shards >= 1 {
		scrubbed.Shards = 1
		scrubbed.ShardWorkers = 0
		scrubbed.Router = ""
		scrubbed.RebalanceStep = 0
		scrubbed.RebalanceShards = 0
	}
	return checkpoint.Fingerprint(
		"gridsim.trials",
		fmt.Sprintf("grid=%+v", scrubbed),
		fmt.Sprintf("trials=%d", tc.Trials),
		fmt.Sprintf("blocks=%d", tc.Blocks),
		fmt.Sprintf("settle=%d", tc.SettleSteps),
		fmt.Sprintf("stepbudget=%d", tc.StepBudget),
	)
}

// TrialFault is one failed replicate in a degraded ensemble.
type TrialFault struct {
	// Trial and Seed identify the replicate.
	Trial int
	Seed  int64
	// Kind is how the failure was journaled: KindQuarantine for panics
	// and plain errors, KindExhausted for watchdog cancellations.
	Kind checkpoint.Kind
	// Err is the underlying failure.
	Err error
}

// Trial is the outcome of one replicate.
type Trial struct {
	// Seed is the derived seed the replicate ran with.
	Seed int64
	// Forks is the number of branches that emerged beyond the main chain.
	Forks int
	// CounterfeitCells is the number of cells on an attacker branch at the
	// end of the run.
	CounterfeitCells int
	// StaleCells is the number of cells at least one block behind the
	// global best height at the end of the run.
	StaleCells int
	// MaxHeight is the global best height at the end of the run.
	MaxHeight int
}

// TrialsResult summarizes the ensemble.
type TrialsResult struct {
	// Config echoes the grid configuration the replicates shared (modulo
	// the per-trial seed).
	Config Config
	// Blocks is the per-replicate horizon in block intervals.
	Blocks int
	// Trials holds every replicate outcome, in trial order.
	Trials []Trial
	// ForkRate is the mean forks-per-block-interval across replicates, with
	// the half-width of its 95% confidence interval.
	ForkRate, ForkRateCI float64
	// MeanForks is the mean fork count per replicate, with its 95% CI
	// half-width.
	MeanForks, MeanForksCI float64
	// MeanCounterfeitShare is the mean fraction of cells left on an
	// attacker branch, with its 95% CI half-width.
	MeanCounterfeitShare, MeanCounterfeitShareCI float64
	// MeanStaleShare is the mean fraction of cells at least one block
	// behind the best height at the end of the run, with its 95% CI
	// half-width.
	MeanStaleShare, MeanStaleShareCI float64
	// Faults lists quarantined and exhausted replicates of a degraded
	// supervised run, in trial order; empty on the plain path. The summary
	// statistics above cover only the completed replicates.
	Faults []TrialFault
	// Replayed counts replicates satisfied from the resume journal.
	Replayed int
}

func (tc TrialsConfig) withDefaults() TrialsConfig {
	if tc.Blocks == 0 {
		tc.Blocks = 40
	}
	return tc
}

// RunTrials runs tc.Trials independent grid simulations of cfg, each for
// tc.Blocks block intervals under its own derived seed, fanned across
// tc.Workers cores. The result is identical for any worker count.
func RunTrials(cfg Config, tc TrialsConfig) (*TrialsResult, error) {
	tc = tc.withDefaults()
	if tc.Trials <= 0 {
		return nil, fmt.Errorf("gridsim: trials %d must be positive", tc.Trials)
	}
	if tc.Blocks <= 0 {
		return nil, fmt.Errorf("gridsim: blocks %d must be positive", tc.Blocks)
	}
	// Validate once up front so a bad config fails before the fan-out.
	if err := cfg.withDefaults().Validate(); err != nil {
		return nil, err
	}
	// With an attached registry, each replicate records into its own
	// metrics-only observer (slot-indexed, so workers never share one);
	// the per-trial registries are merged back in trial order below,
	// keeping the ensemble's metrics identical for any worker count.
	ensembleReg := cfg.Obs.Registry()
	var trialRegs []*obs.Registry
	if ensembleReg != nil {
		trialRegs = make([]*obs.Registry, tc.Trials)
	}
	// Completed grids are pooled and Reset for the next replicate: the SoA
	// arenas (cell, fork, neighbor, and region slices) are reused, so the
	// steady-state ensemble performs near-zero allocations per trial. Reset
	// is byte-identical to New, so pooling cannot perturb any result.
	var pool sync.Pool
	runOne := func(trial int, seed int64) (Trial, error) {
		runCfg := cfg
		runCfg.Seed = seed
		if tc.StepBudget > 0 {
			runCfg.StepBudget = tc.StepBudget
		}
		if trialRegs != nil {
			o := obs.NewMetricsOnly()
			trialRegs[trial] = o.Metrics
			runCfg.Obs = o
		} else {
			runCfg.Obs = nil
		}
		var g *Grid
		var err error
		if pooled, _ := pool.Get().(*Grid); pooled != nil {
			g, err = pooled, pooled.ResetConfig(runCfg)
		} else {
			g, err = FromConfig(runCfg)
		}
		if err != nil {
			return Trial{}, fmt.Errorf("trial %d: %w", trial, err)
		}
		g.Advance(g.StepsPerBlock()*tc.Blocks + tc.SettleSteps)
		if err := g.BudgetErr(); err != nil {
			return Trial{}, fmt.Errorf("trial %d: %w", trial, err)
		}
		t := Trial{
			Seed:             seed,
			Forks:            g.ForksEmerged(),
			CounterfeitCells: g.CounterfeitCells(),
			StaleCells:       g.StaleCells(),
			MaxHeight:        g.MaxHeight(),
		}
		pool.Put(g)
		return t, nil
	}
	res := &TrialsResult{Config: cfg, Blocks: tc.Blocks}
	if tc.supervised() {
		if err := runSupervised(cfg, tc, res, runOne); err != nil {
			return nil, err
		}
	} else {
		trials, err := parallel.Trials(tc.Workers, cfg.Seed, tc.Trials, runOne)
		if err != nil {
			return nil, err
		}
		res.Trials = trials
	}
	for _, reg := range trialRegs {
		ensembleReg.Merge(reg)
	}
	// Summary statistics cover the completed replicates (all of them on the
	// plain path; the non-faulted ones under a degraded supervised run).
	n := cfg.withDefaults().Size
	cells := float64(n * n)
	forks := make([]float64, len(res.Trials))
	rates := make([]float64, len(res.Trials))
	shares := make([]float64, len(res.Trials))
	stale := make([]float64, len(res.Trials))
	for i, t := range res.Trials {
		forks[i] = float64(t.Forks)
		rates[i] = float64(t.Forks) / float64(tc.Blocks)
		shares[i] = float64(t.CounterfeitCells) / cells
		stale[i] = float64(t.StaleCells) / cells
	}
	res.MeanForks, res.MeanForksCI = stats.MeanCI95(forks)
	res.ForkRate, res.ForkRateCI = stats.MeanCI95(rates)
	res.MeanCounterfeitShare, res.MeanCounterfeitShareCI = stats.MeanCI95(shares)
	res.MeanStaleShare, res.MeanStaleShareCI = stats.MeanCI95(stale)
	return res, nil
}

// runSupervised is the crash-safety path of RunTrials: replicates run under
// per-task supervision, every outcome is write-ahead journaled at its trial
// boundary, completed replicates replay from the resume log, and (with
// Degrade) failures quarantine instead of aborting. Completed trials land
// in res.Trials in trial order — byte-identical to the plain path when
// nothing fails.
func runSupervised(cfg Config, tc TrialsConfig, res *TrialsResult, runOne func(int, int64) (Trial, error)) error {
	seedOf := func(i int) int64 { return parallel.DeriveSeed(cfg.Seed, i) }
	sup, err := parallel.SuperviseTrials(parallel.Supervision[Trial]{
		Workers:  tc.Workers,
		Root:     cfg.Seed,
		FailFast: !tc.Degrade,
		Skip: func(i int) bool {
			_, ok := tc.Resume.Result(i, seedOf(i))
			return ok
		},
		OnOutcome: func(out parallel.Outcome[Trial]) error {
			rec := checkpoint.Record{Task: out.Task, Seed: out.Seed}
			switch {
			case out.Err == nil:
				rec.Kind = checkpoint.KindResult
				payload, err := json.Marshal(out.Value)
				if err != nil {
					return fmt.Errorf("gridsim: encode trial %d: %w", out.Task, err)
				}
				rec.Output = payload
			case errors.Is(out.Err, checkpoint.ErrBudget):
				rec.Kind = checkpoint.KindExhausted
				rec.Error = out.Err.Error()
			default:
				rec.Kind = checkpoint.KindQuarantine
				rec.Input = tc.Fingerprint(cfg)
				var pe *parallel.PanicError
				if errors.As(out.Err, &pe) {
					rec.Panic = fmt.Sprint(pe.Value)
					rec.Stack = string(pe.Stack)
				} else {
					rec.Error = out.Err.Error()
				}
			}
			return tc.Journal.Append(rec)
		},
	}, tc.Trials, runOne)
	if err != nil {
		return err
	}
	for i := 0; i < tc.Trials; i++ {
		if sup.Ran[i] {
			res.Trials = append(res.Trials, sup.Results[i])
			continue
		}
		if payload, ok := tc.Resume.Result(i, seedOf(i)); ok {
			var t Trial
			if err := json.Unmarshal(payload, &t); err != nil {
				return fmt.Errorf("gridsim: replay trial %d: %w", i, err)
			}
			res.Trials = append(res.Trials, t)
			res.Replayed++
		}
	}
	for _, f := range sup.Failures {
		kind := checkpoint.KindQuarantine
		if errors.Is(f.Err, checkpoint.ErrBudget) {
			kind = checkpoint.KindExhausted
		}
		res.Faults = append(res.Faults, TrialFault{Trial: f.Task, Seed: f.Seed, Kind: kind, Err: f.Err})
	}
	return nil
}
