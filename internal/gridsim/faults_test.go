package gridsim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

// TestFaultedTrialsWorkerInvariant: a faulted Monte-Carlo ensemble must be
// identical at any worker count — trials, summary statistics, and the
// merged metric registry all included.
func TestFaultedTrialsWorkerInvariant(t *testing.T) {
	run := func(workers int) (*TrialsResult, string) {
		cfg := trialsBase()
		cfg.Faults = faults.Churny()
		o := obs.NewMetricsOnly()
		cfg.Obs = o
		res, err := RunTrials(cfg, TrialsConfig{Trials: 12, Blocks: 10, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res, o.Metrics.Snapshot().Render()
	}
	res1, snap1 := run(1)
	for _, workers := range []int{2, 8} {
		res, snap := run(workers)
		if !reflect.DeepEqual(res.Trials, res1.Trials) {
			t.Errorf("workers=%d: trial outcomes differ from workers=1", workers)
		}
		if snap != snap1 {
			t.Errorf("workers=%d: merged metrics differ from workers=1:\n%s\nvs\n%s",
				workers, snap, snap1)
		}
	}
	if !strings.Contains(snap1, "faults.injected{kind=cell_down}") &&
		!strings.Contains(snap1, "faults.injected{kind=churn_down}") {
		t.Errorf("churny ensemble injected no churn:\n%s", snap1)
	}
}

// TestGridZeroScenarioMatchesNoFaults: a zero-value Scenario in the grid
// config must reproduce the no-faults ensemble exactly.
func TestGridZeroScenarioMatchesNoFaults(t *testing.T) {
	plain, err := RunTrials(trialsBase(), TrialsConfig{Trials: 8, Blocks: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := trialsBase()
	cfg.Faults = faults.Scenario{}
	zero, err := RunTrials(cfg, TrialsConfig{Trials: 8, Blocks: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Trials, zero.Trials) {
		t.Error("zero-value Scenario perturbed the grid ensemble")
	}
}

// TestHealStudySmoke runs a miniature heal study end to end: every preset
// row present, the stable control row injecting nothing, the faulted rows
// injecting something, and the rendering mentioning each scenario.
func TestHealStudySmoke(t *testing.T) {
	res, err := RunHealStudy(HealConfig{
		Grid:   trialsBase(),
		Trials: 4,
		Blocks: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 presets", len(res.Rows))
	}
	byName := map[string]HealRow{}
	for _, row := range res.Rows {
		byName[row.Scenario] = row
	}
	stable, ok := byName["stable"]
	if !ok {
		t.Fatal("no stable control row")
	}
	if stable.FaultsInjected != 0 {
		t.Errorf("stable row injected %d faults", stable.FaultsInjected)
	}
	var faulted uint64
	for _, name := range []string{"churny", "flaky", "hijack-recovery"} {
		row, ok := byName[name]
		if !ok {
			t.Fatalf("missing %s row", name)
		}
		faulted += row.FaultsInjected
	}
	if faulted == 0 {
		t.Error("no faulted row injected anything")
	}
	text := res.Render()
	for _, name := range []string{"stable", "churny", "flaky", "hijack-recovery"} {
		if !strings.Contains(text, name) {
			t.Errorf("rendered table missing %q:\n%s", name, text)
		}
	}
}
