package gridsim

import (
	"fmt"
	"strings"

	"repro/internal/faults"
	"repro/internal/obs"
)

// The paper measures fork-resolution damage at heal time (§V): the
// partition is held open, the isolated region accumulates a counterfeit
// branch, and when the disruption lifts the honest chain floods back —
// reorganizing every captured cell. HealStudy re-runs that arc under each
// fault preset and reports how fault load shifts the heal-time outcome:
// a churning, flaky network both forks more on its own and re-converges
// more slowly once the attacker lets go.

// HealConfig parameterizes the partition-heal study.
type HealConfig struct {
	// Grid is the shared base configuration (attacker geometry, failure
	// rate, seed). The study forces the disruption window itself: the
	// boundary holds for the first half of the horizon and heals at the
	// midpoint, so every scenario is measured the same number of blocks
	// after heal.
	Grid Config
	// Trials is the Monte-Carlo ensemble size per scenario. Default 24.
	Trials int
	// Blocks is the per-replicate horizon in block intervals. Default 40
	// (heal at block 20).
	Blocks int
	// Workers bounds the fan-out; <= 0 means one per CPU.
	Workers int
	// Scenarios are the fault presets to sweep. Default: stable, churny,
	// flaky, hijack-recovery.
	Scenarios []faults.Scenario
}

func (hc HealConfig) withDefaults() HealConfig {
	if hc.Trials == 0 {
		hc.Trials = 24
	}
	if hc.Blocks == 0 {
		hc.Blocks = 40
	}
	if len(hc.Scenarios) == 0 {
		hc.Scenarios = []faults.Scenario{
			faults.Stable(), faults.Churny(), faults.Flaky(), faults.HijackRecovery(),
		}
	}
	return hc
}

// HealRow is one scenario's ensemble outcome.
type HealRow struct {
	// Scenario is the preset name.
	Scenario string
	// ForkRate is forks per block interval, with 95% CI half-width.
	ForkRate, ForkRateCI float64
	// CounterfeitShare is the fraction of cells still on an attacker
	// branch at the end of the run (half the horizon after heal), with CI.
	CounterfeitShare, CounterfeitShareCI float64
	// StaleShare is the fraction of cells at least one block behind at the
	// end of the run, with CI.
	StaleShare, StaleShareCI float64
	// FaultsInjected sums the obs faults.injected counters across the
	// ensemble (0 for the stable control row).
	FaultsInjected uint64
	// ForkBirths sums gridsim.fork_births across the ensemble.
	ForkBirths uint64
}

// HealStudyResult is the full sweep.
type HealStudyResult struct {
	Config HealConfig
	Rows   []HealRow
}

// RunHealStudy sweeps the fault scenarios over the partition-heal arc.
// Each scenario runs its own RunTrials ensemble with a metrics-only
// observer, so the obs-backed columns (faults injected, fork births) come
// from per-trial registries merged in trial order — identical at any
// worker count.
func RunHealStudy(hc HealConfig) (*HealStudyResult, error) {
	hc = hc.withDefaults()
	base := hc.Grid.withDefaults()
	stepsPerBlock := int(base.SpanRatio * float64(base.Size))
	if stepsPerBlock < 1 {
		stepsPerBlock = 1
	}
	// Force the heal arc: disruption from the start, lifted at the horizon
	// midpoint.
	base.BoundaryFrom = 0
	base.BoundaryUntil = stepsPerBlock * hc.Blocks / 2
	res := &HealStudyResult{Config: hc}
	for _, sc := range hc.Scenarios {
		cfg := base
		cfg.Faults = sc
		o := obs.NewMetricsOnly()
		cfg.Obs = o
		// Settle half an interval past the last block so the stale-share
		// column measures lingering divergence, not the propagation front of
		// the final block.
		tr, err := RunTrials(cfg, TrialsConfig{
			Trials: hc.Trials, Blocks: hc.Blocks, Workers: hc.Workers,
			SettleSteps: stepsPerBlock / 2,
		})
		if err != nil {
			return nil, fmt.Errorf("gridsim: heal study %q: %w", sc.Name, err)
		}
		snap := o.Metrics.Snapshot()
		name := sc.Name
		if name == "" {
			name = "custom"
		}
		res.Rows = append(res.Rows, HealRow{
			Scenario:           name,
			ForkRate:           tr.ForkRate,
			ForkRateCI:         tr.ForkRateCI,
			CounterfeitShare:   tr.MeanCounterfeitShare,
			CounterfeitShareCI: tr.MeanCounterfeitShareCI,
			StaleShare:         tr.MeanStaleShare,
			StaleShareCI:       tr.MeanStaleShareCI,
			FaultsInjected:     sumCounters(snap, "faults.injected"),
			ForkBirths:         sumCounters(snap, "gridsim.fork_births"),
		})
	}
	return res, nil
}

// sumCounters totals every counter whose name (including its label set)
// starts with the given metric name.
func sumCounters(snap obs.Snapshot, name string) uint64 {
	var total uint64
	for _, p := range snap.Counters {
		if p.Name == name || strings.HasPrefix(p.Name, name+"{") {
			total += p.Value
		}
	}
	return total
}

// Render formats the study as a paper-style table.
func (r *HealStudyResult) Render() string {
	var b strings.Builder
	heal := r.Config.Blocks / 2
	fmt.Fprintf(&b, "Partition-heal study: %d-trial ensembles, %d-block horizon, boundary heals at block %d\n",
		r.Config.Trials, r.Config.Blocks, heal)
	fmt.Fprintf(&b, "grid %dx%d, attacker share %.0f%%, radius %d; shares measured %d blocks after heal\n",
		r.Config.Grid.withDefaults().Size, r.Config.Grid.withDefaults().Size,
		r.Config.Grid.withDefaults().AttackerShare*100, r.Config.Grid.BoundaryRadius,
		r.Config.Blocks-heal)
	fmt.Fprintf(&b, "%-16s %18s %20s %18s %10s %8s\n",
		"scenario", "forks/block", "counterfeit share", "stale share", "faults", "births")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %9.3f ± %.3f %13.1f%% ± %.1f%% %11.1f%% ± %.1f%% %10d %8d\n",
			row.Scenario,
			row.ForkRate, row.ForkRateCI,
			row.CounterfeitShare*100, row.CounterfeitShareCI*100,
			row.StaleShare*100, row.StaleShareCI*100,
			row.FaultsInjected, row.ForkBirths)
	}
	return b.String()
}
