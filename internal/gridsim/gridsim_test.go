package gridsim

import (
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"ok", Config{Size: 25}, false},
		{"too small", Config{Size: 1}, true},
		{"negative span", Config{Size: 10, SpanRatio: -1}, true},
		{"failure rate 1", Config{Size: 10, FailureRate: 1}, true},
		{"negative failure", Config{Size: 10, FailureRate: -0.5}, true},
		{"attacker share 1", Config{Size: 10, AttackerShare: 1}, true},
		{"attacker cell outside", Config{Size: 10, AttackerRow: 10}, true},
		{"attacker cell negative", Config{Size: 10, AttackerCol: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := FromConfig(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDefaults(t *testing.T) {
	g, err := FromConfig(Config{Size: 25})
	if err != nil {
		t.Fatal(err)
	}
	// Rspan=2.0, size 25: 50 steps per block.
	if g.StepsPerBlock() != 50 {
		t.Errorf("StepsPerBlock = %d, want 50", g.StepsPerBlock())
	}
}

func TestHonestNetworkStaysSynchronizedAtSpanRatio2(t *testing.T) {
	// The paper: Rspan = 2.0 "resulted in a network that was fully updated
	// between blocks" with reasonable failure rates.
	g, err := FromConfig(Config{Size: 25, SpanRatio: 2.0, FailureRate: 0.10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(g.StepsPerBlock() * 40) // 40 block intervals
	s := g.Snapshot()
	total := 25 * 25
	syncedFrac := float64(s.Lag[0]+s.Lag[1]) / float64(total)
	if syncedFrac < 0.95 {
		t.Errorf("within-1-block fraction = %v, want >= 0.95 at Rspan=2", syncedFrac)
	}
	// Natural forks may emerge but the dominant fork should hold nearly all
	// cells.
	_, n := s.DominantFork()
	if float64(n)/float64(total) < 0.9 {
		t.Errorf("dominant fork holds %d/%d cells", n, total)
	}
}

func TestLowSpanRatioDesynchronizes(t *testing.T) {
	// Ablation: with Rspan far below 1 information cannot cross the grid
	// between blocks, so much of the network lags.
	g, err := FromConfig(Config{Size: 25, SpanRatio: 0.2, FailureRate: 0.10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(g.StepsPerBlock() * 40)
	s := g.Snapshot()
	laggingFrac := 1 - float64(s.Lag[0])/float64(25*25)
	if laggingFrac < 0.3 {
		t.Errorf("lagging fraction = %v at Rspan=0.2, want >= 0.3", laggingFrac)
	}
}

func TestAttackerCreatesAndSustainsFork(t *testing.T) {
	// A 30%-hash attacker (the paper's Figure 7 setup) must capture a
	// nontrivial region of the grid at some point during the run.
	g, err := FromConfig(Config{
		Size: 25, SpanRatio: 2.0, FailureRate: 0.10,
		AttackerShare: 0.30, AttackerRow: 7, AttackerCol: 7, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for step := 0; step < 300; step += 10 {
		g.Advance(10)
		if n := g.CounterfeitCells(); n > peak {
			peak = n
		}
	}
	if g.ForksEmerged() == 0 {
		t.Fatal("no forks emerged under attack")
	}
	// Figure 7(b): fork B controls ~1/6 of the nodes two blocks after
	// emerging. Require at least 4% of cells at peak to confirm capture
	// without over-fitting the exact fraction.
	if float64(peak)/float64(25*25) < 0.04 {
		t.Errorf("peak counterfeit cells = %d (%.1f%%), want >= 4%%",
			peak, 100*float64(peak)/float64(25*25))
	}
}

func TestNoAttackerNoCounterfeit(t *testing.T) {
	g, err := FromConfig(Config{Size: 15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(g.StepsPerBlock() * 30)
	if g.CounterfeitCells() != 0 {
		t.Error("counterfeit cells without an attacker")
	}
}

func TestSnapshotConsistency(t *testing.T) {
	g, err := FromConfig(Config{Size: 10, Seed: 9, AttackerShare: 0.3, AttackerRow: 5, AttackerCol: 5})
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(500)
	s := g.Snapshot()
	totalForks := 0
	for _, n := range s.ForkCounts {
		totalForks += n
	}
	if totalForks != 100 {
		t.Errorf("fork counts sum to %d, want 100", totalForks)
	}
	totalLag := s.Lag[0] + s.Lag[1] + s.Lag[2] + s.Lag[3] + s.Lag[4]
	if totalLag != 100 {
		t.Errorf("lag counts sum to %d, want 100", totalLag)
	}
	if s.Step != g.Step() {
		t.Errorf("snapshot step %d != grid step %d", s.Step, g.Step())
	}
}

func TestRender(t *testing.T) {
	g, err := FromConfig(Config{Size: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := g.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("render has %d lines, want 4", len(lines))
	}
	for _, line := range lines {
		if line != "AAAA" {
			t.Errorf("initial render line = %q, want AAAA", line)
		}
	}
}

func TestForkIDString(t *testing.T) {
	tests := []struct {
		id   ForkID
		want string
	}{
		{0, "A"}, {1, "B"}, {25, "Z"}, {26, "F26"}, {-1, "?"},
	}
	for _, tt := range tests {
		if got := tt.id.String(); got != tt.want {
			t.Errorf("ForkID(%d).String() = %q, want %q", int(tt.id), got, tt.want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, int, int) {
		g, err := FromConfig(Config{Size: 20, Seed: 42, AttackerShare: 0.3, AttackerRow: 7, AttackerCol: 7})
		if err != nil {
			t.Fatal(err)
		}
		g.Advance(400)
		s := g.Snapshot()
		return g.BlocksMined(), g.ForksEmerged(), s.MaxHeight
	}
	b1, f1, h1 := run()
	b2, f2, h2 := run()
	if b1 != b2 || f1 != f2 || h1 != h2 {
		t.Errorf("seeded runs diverged: (%d,%d,%d) vs (%d,%d,%d)", b1, f1, h1, b2, f2, h2)
	}
}

func TestNeighborsCounts(t *testing.T) {
	g, err := FromConfig(Config{Size: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		row, col, want int
	}{
		{0, 0, 3}, // corner
		{0, 2, 5}, // edge
		{2, 2, 8}, // interior
		{4, 4, 3}, // corner
	}
	for _, tt := range tests {
		got := len(g.neighbors(g.idx(tt.row, tt.col)))
		if got != tt.want {
			t.Errorf("neighbors(%d,%d) = %d, want %d", tt.row, tt.col, got, tt.want)
		}
	}
}

func TestBoundaryConfinesFork(t *testing.T) {
	// With the attack boundary active for the whole run, the counterfeit
	// region can never exceed the enclosed cell count ((2r+1)^2 for an
	// interior attacker).
	g, err := FromConfig(Config{
		Size: 25, SpanRatio: 2.0, FailureRate: 0.10,
		AttackerShare: 0.30, AttackerRow: 7, AttackerCol: 7,
		BoundaryRadius: 5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const regionCells = 11 * 11
	peak := 0
	for i := 0; i < 60; i++ {
		g.Advance(10)
		if n := g.CounterfeitCells(); n > peak {
			peak = n
		}
	}
	if peak > regionCells {
		t.Errorf("counterfeit cells %d escaped the radius-5 region (%d)", peak, regionCells)
	}
	if peak < regionCells/2 {
		t.Errorf("peak capture %d never approached the region size %d", peak, regionCells)
	}
}

func TestBoundaryReleaseLetsHonestChainRecapture(t *testing.T) {
	// Open the boundary at step 200: either A overwhelms B or B escapes;
	// in both cases the confined plateau must end.
	g, err := FromConfig(Config{
		Size: 25, SpanRatio: 2.0, FailureRate: 0.10,
		AttackerShare: 0.30, AttackerRow: 7, AttackerCol: 7,
		BoundaryRadius: 5, BoundaryUntil: 200, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(200)
	confined := g.CounterfeitCells()
	if confined == 0 {
		t.Skip("attack fork not live at release for this seed")
	}
	g.Advance(300)
	after := g.CounterfeitCells()
	if after == confined {
		t.Errorf("capture unchanged after release: %d", after)
	}
}

func TestBoundaryValidation(t *testing.T) {
	if _, err := FromConfig(Config{Size: 10, BoundaryRadius: -1}); err == nil {
		t.Error("negative radius accepted")
	}
	if _, err := FromConfig(Config{Size: 10, BoundaryRadius: 2, BoundaryFrom: 100, BoundaryUntil: 50}); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestMainChainEventuallyOverwhelmsFork(t *testing.T) {
	// Figure 7(c): the longer honest chain overwhelms the attacker's fork.
	// Run long enough and the counterfeit share should shrink from its peak.
	g, err := FromConfig(Config{
		Size: 25, SpanRatio: 2.0, FailureRate: 0.10,
		AttackerShare: 0.30, AttackerRow: 7, AttackerCol: 7, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	peak, peakStep := 0, 0
	var last int
	for i := 0; i < 200; i++ {
		g.Advance(25)
		n := g.CounterfeitCells()
		if n > peak {
			peak, peakStep = n, g.Step()
		}
		last = n
	}
	if peak == 0 {
		t.Skip("attacker never captured cells at this seed")
	}
	// After the peak the honest chain recovers ground: final capture is
	// below the peak. (The attacker cell itself always remains.)
	if last >= peak && g.Step() > peakStep {
		t.Errorf("counterfeit region never shrank: peak %d, final %d", peak, last)
	}
}
