package gridsim

import "testing"

// BenchmarkAdvanceBlockInterval measures one block interval of grid
// dynamics at the paper's two scales.
func BenchmarkAdvanceBlockInterval(b *testing.B) {
	for _, size := range []int{25, 100} {
		name := "25x25"
		if size == 100 {
			name = "100x100"
		}
		b.Run(name, func(b *testing.B) {
			g, err := FromConfig(Config{
				Size: size, SpanRatio: 2.0, FailureRate: 0.10,
				AttackerShare: 0.30, AttackerRow: 7, AttackerCol: 7,
				BoundaryRadius: 5, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Advance(g.StepsPerBlock())
			}
		})
	}
}

// BenchmarkSnapshot measures state summarization of the full-scale grid.
func BenchmarkSnapshot(b *testing.B) {
	g, err := FromConfig(Config{Size: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	g.Advance(g.StepsPerBlock() * 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := g.Snapshot()
		if s.MaxHeight < 0 {
			b.Fatal("bad snapshot")
		}
	}
}
