package gridsim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/shard"
)

// shardedFingerprint runs a sharded world to the given step and collapses
// everything observable — render, snapshot, counters — into one string, so
// two runs compare byte-for-byte.
func shardedFingerprint(t *testing.T, steps int, opts ...Option) string {
	t.Helper()
	o := obs.New(0)
	g, err := New(7, append([]Option{WithObserver(o)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(steps)
	var b strings.Builder
	b.WriteString(g.Render())
	for _, fc := range g.ForkCounts() {
		fmt.Fprintf(&b, "%v:%d;", fc.Fork, fc.Cells)
	}
	fmt.Fprintf(&b, "mined=%d forks=%d counterfeit=%d;",
		g.BlocksMined(), g.ForksEmerged(), g.CounterfeitCells())
	b.WriteString(o.Registry().Snapshot().Render())
	var trace strings.Builder
	if err := o.Tracer().WriteJSONL(&trace); err != nil {
		t.Fatal(err)
	}
	b.WriteString(trace.String())
	return b.String()
}

// TestShardCountInvariance is the tentpole property (DESIGN.md §13): the
// same world ticked at shard counts 1, 4, and 16 — and under either router
// — produces byte-identical render, fork counts, metrics, and trace.
func TestShardCountInvariance(t *testing.T) {
	attack := []Option{
		WithSize(24),
		WithAttacker(0.30, 7, 7),
		WithBoundary(5, 0, 200),
	}
	steps := 0
	base := ""
	for _, k := range []int{1, 4, 16} {
		for _, kind := range []shard.Kind{shard.KindRange, shard.KindRing} {
			opts := append(append([]Option{}, attack...),
				WithShards(k), WithRouter(kind), WithShardWorkers(4))
			if steps == 0 {
				g, err := New(7, opts...)
				if err != nil {
					t.Fatal(err)
				}
				steps = g.StepsPerBlock()*8 + 3
			}
			got := shardedFingerprint(t, steps, opts...)
			if base == "" {
				base = got
				continue
			}
			if got != base {
				t.Fatalf("shards=%d router=%s diverged from shards=1 range", k, kind)
			}
		}
	}
}

// TestShardWorkerInvariance checks gang width never changes output.
func TestShardWorkerInvariance(t *testing.T) {
	base := ""
	for _, w := range []int{1, 2, 8} {
		got := shardedFingerprint(t, 120,
			WithSize(20), WithAttacker(0.30, 5, 5), WithBoundary(4, 0, 150),
			WithShards(8), WithShardWorkers(w))
		if base == "" {
			base = got
		} else if got != base {
			t.Fatalf("workers=%d diverged", w)
		}
	}
}

// TestShardFaultsCompose proves fault scenarios run under sharding with
// the same invariance: churny and flaky worlds stay byte-identical across
// shard counts, and differ from the faultless world.
func TestShardFaultsCompose(t *testing.T) {
	for _, sc := range []faults.Scenario{faults.Churny(), faults.Flaky()} {
		clean := shardedFingerprint(t, 100, WithSize(16), WithShards(1))
		base := ""
		for _, k := range []int{1, 4, 16} {
			got := shardedFingerprint(t, 100, WithSize(16), WithShards(k), WithFaults(sc))
			if base == "" {
				base = got
			} else if got != base {
				t.Fatalf("%s shards=%d diverged", sc.Name, k)
			}
		}
		if base == clean {
			t.Fatalf("%s run identical to faultless run — injector inert under sharding", sc.Name)
		}
	}
}

// TestShardedDiffersFromLegacy pins that Shards=0 and Shards>=1 are
// distinct engines (push-pull vs. pull-only gossip): same seed, different
// mid-transient trajectories. The comparison runs during the counterfeit
// fork's spreading phase — once the boundary region saturates both engines
// reach the same steady state, so a late-step comparison would coincide.
// If this ever starts passing as equal, the dispatch is broken and the
// legacy goldens are at risk.
func TestShardedDiffersFromLegacy(t *testing.T) {
	legacy, err := New(3, WithSize(20), WithAttacker(0.30, 7, 7), WithBoundary(5, 0, 200))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := New(3, WithSize(20), WithAttacker(0.30, 7, 7), WithBoundary(5, 0, 200), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	legacy.Advance(50)
	sharded.Advance(50)
	if legacy.Render() == sharded.Render() {
		t.Fatal("sharded engine rendered identically to legacy engine mid-transient")
	}
}

// TestShardedAttackCaptures checks the attack dynamics survive the
// pull-only semantics: with the boundary up, the counterfeit branch
// captures a region around the anchor, and after the boundary falls the
// honest chain reclaims it (the Figure 7 arc).
func TestShardedAttackCaptures(t *testing.T) {
	g, err := New(2, WithSize(25), WithAttacker(0.30, 7, 7), WithBoundary(5, 0, 200), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	captured := 0
	for step := 0; step < 200; step += g.StepsPerBlock() {
		g.Advance(g.StepsPerBlock())
		if c := g.CounterfeitCells(); c > captured {
			captured = c
		}
	}
	if captured < 2 {
		t.Fatalf("attack never captured a region: peak %d counterfeit cells", captured)
	}
	g.Advance(20 * g.StepsPerBlock())
	if c := g.CounterfeitCells(); c > 1 {
		t.Fatalf("honest chain failed to reclaim after boundary fell: %d counterfeit cells", c)
	}
}

// TestRebalanceInvariance proves the mid-run topology change is free:
// a run that rebalances 4→9 shards at step 60 is byte-identical to runs
// that never rebalance, at either endpoint shard count, and ShardStats
// reports the exact ownership diff as moved keys.
func TestRebalanceInvariance(t *testing.T) {
	const steps = 140
	opts := []Option{WithSize(20), WithAttacker(0.30, 5, 5), WithBoundary(4, 0, 100)}
	static4 := shardedFingerprint(t, steps, append(append([]Option{}, opts...), WithShards(4))...)
	static9 := shardedFingerprint(t, steps, append(append([]Option{}, opts...), WithShards(9))...)
	reb := shardedFingerprint(t, steps,
		append(append([]Option{}, opts...), WithShards(4), WithRebalance(60, 9))...)
	if reb != static4 || reb != static9 {
		t.Fatal("rebalanced run diverged from static runs")
	}

	for _, kind := range []shard.Kind{shard.KindRange, shard.KindRing} {
		g, err := New(7, append(append([]Option{}, opts...),
			WithShards(4), WithRouter(kind), WithRebalance(60, 9))...)
		if err != nil {
			t.Fatal(err)
		}
		g.Advance(59)
		if st := g.ShardStats(); st.Rebalanced || st.Shards != 4 {
			t.Fatalf("%s: rebalance fired early: %+v", kind, st)
		}
		g.Advance(1)
		st := g.ShardStats()
		if !st.Rebalanced || st.Shards != 9 {
			t.Fatalf("%s: rebalance did not fire: %+v", kind, st)
		}
		// Moved keys must equal the router ownership diff exactly.
		n := g.NumCells()
		from, err := shard.New(kind, routerSeedFor(7), n, 4)
		if err != nil {
			t.Fatal(err)
		}
		to, err := shard.New(kind, routerSeedFor(7), n, 9)
		if err != nil {
			t.Fatal(err)
		}
		if want := len(shard.Moves(from, to, n)); st.MovedKeys != want {
			t.Fatalf("%s: MovedKeys = %d, want %d", kind, st.MovedKeys, want)
		}
	}
}

// TestRingRebalanceMovesFewerKeys pins the router trade on a live grid: a
// ring join 4→5 moves far fewer cells than the range re-banding.
func TestRingRebalanceMovesFewerKeys(t *testing.T) {
	moved := map[shard.Kind]int{}
	for _, kind := range []shard.Kind{shard.KindRange, shard.KindRing} {
		g, err := New(7, WithSize(30), WithShards(4), WithRouter(kind), WithRebalance(10, 5))
		if err != nil {
			t.Fatal(err)
		}
		g.Advance(12)
		moved[kind] = g.ShardStats().MovedKeys
	}
	if moved[shard.KindRing]*2 >= moved[shard.KindRange] {
		t.Fatalf("ring join moved %d keys, range %d — ring should move far fewer",
			moved[shard.KindRing], moved[shard.KindRange])
	}
}

// TestShardStatsAndCrossPulls sanity-checks the partition summary: halo
// matches the plan, cross-shard pulls accumulate with >1 shard and stay
// zero with 1.
func TestShardStatsAndCrossPulls(t *testing.T) {
	single, err := New(1, WithSize(16), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	single.Advance(64)
	if st := single.ShardStats(); st.CrossPulls != 0 || st.HaloCells != 0 || st.Shards != 1 {
		t.Fatalf("single-shard stats: %+v", st)
	}
	multi, err := New(1, WithSize(16), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	multi.Advance(64)
	st := multi.ShardStats()
	if st.Shards != 4 || st.HaloCells == 0 || st.CrossPulls == 0 {
		t.Fatalf("multi-shard stats: %+v", st)
	}
	// Legacy engine reports the zero value.
	legacy, err := New(1, WithSize(16))
	if err != nil {
		t.Fatal(err)
	}
	legacy.Advance(10)
	if st := legacy.ShardStats(); st != (ShardStats{}) {
		t.Fatalf("legacy engine ShardStats = %+v, want zero", st)
	}
}

// TestShardedBudgetAndReset covers the watchdog and arena-reuse contracts
// on the sharded engine: Advance stops at the budget with BudgetErr, and
// ResetConfig reproduces a fresh world byte-for-byte.
func TestShardedBudgetAndReset(t *testing.T) {
	g, err := New(1, WithSize(12), WithShards(4), WithStepBudget(30))
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(100)
	if g.Step() != 30 || !g.Exhausted() || g.BudgetErr() == nil {
		t.Fatalf("budget: step=%d exhausted=%v", g.Step(), g.Exhausted())
	}

	fresh, err := New(5, WithSize(12), WithShards(4), WithAttacker(0.3, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	fresh.Advance(80)
	want := fresh.Render()

	// Reuse the budget-exhausted grid's arenas for a different config.
	if err := g.ResetConfig(NewConfig(5, WithSize(12), WithShards(4), WithAttacker(0.3, 3, 3))); err != nil {
		t.Fatal(err)
	}
	g.Advance(80)
	if g.Render() != want {
		t.Fatal("ResetConfig onto sharded engine not byte-identical to a fresh grid")
	}
}

// TestShardConfigValidation covers the new Config surface.
func TestShardConfigValidation(t *testing.T) {
	bad := []Config{
		{Size: 10, Shards: -1},
		{Size: 10, Shards: 101},
		{Size: 10, Router: shard.KindRing},              // router without shards
		{Size: 10, ShardWorkers: 2},                     // workers without shards
		{Size: 10, RebalanceStep: 5},                    // rebalance without shards
		{Size: 10, Shards: 2, RebalanceStep: -1},        // negative step
		{Size: 10, Shards: 2, RebalanceStep: 5},         // missing target
		{Size: 10, Shards: 2, RebalanceShards: 4},       // target without step
		{Size: 10, Shards: 2, Router: shard.Kind("xy")}, // unknown router
	}
	for i, cfg := range bad {
		if _, err := FromConfig(cfg); err == nil {
			t.Errorf("case %d: config %+v should be rejected", i, cfg)
		}
	}
	if _, err := FromConfig(Config{Size: 10, Shards: 2, RebalanceStep: 5, RebalanceShards: 3}); err != nil {
		t.Errorf("valid rebalance config rejected: %v", err)
	}
}

// TestShardedTrials proves the ensemble path carries sharding: RunTrials
// over a sharded Config produces identical aggregates at any shard count,
// and the journal fingerprint collapses every shard count >= 1 (plus
// router/worker/rebalance knobs) to one identity while keeping the
// legacy-vs-sharded engine split.
func TestShardedTrials(t *testing.T) {
	mk := func(shards int) Config {
		return NewConfig(9, WithSize(14), WithAttacker(0.3, 4, 4), WithBoundary(3, 0, 80),
			WithShards(shards))
	}
	tc := TrialsConfig{Trials: 4, Blocks: 4}
	r1, err := RunTrials(mk(1), tc)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunTrials(mk(4), tc)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", r1.Trials) != fmt.Sprintf("%+v", r4.Trials) {
		t.Fatal("sharded ensembles diverged between shard counts 1 and 4")
	}

	base := tc.Fingerprint(mk(1))
	same := NewConfig(9, WithSize(14), WithAttacker(0.3, 4, 4), WithBoundary(3, 0, 80),
		WithShards(16), WithRouter(shard.KindRing), WithShardWorkers(8), WithRebalance(10, 4))
	if tc.Fingerprint(same) != base {
		t.Error("fingerprint distinguishes equivalent sharded configs")
	}
	legacy := NewConfig(9, WithSize(14), WithAttacker(0.3, 4, 4), WithBoundary(3, 0, 80))
	if tc.Fingerprint(legacy) == base {
		t.Error("fingerprint conflates the legacy and sharded engines")
	}
}

// routerSeedFor mirrors the engine's router-seed derivation for tests.
func routerSeedFor(seed int64) int64 {
	return parallel.DeriveSeed(seed, routerSeedSalt)
}
