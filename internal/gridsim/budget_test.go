package gridsim

import (
	"errors"
	"testing"

	"repro/internal/checkpoint"
)

func TestStepBudgetCancelsAdvance(t *testing.T) {
	g, err := FromConfig(Config{Size: 10, Seed: 1, StepBudget: 30})
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(100)
	if !g.Exhausted() {
		t.Fatal("watchdog did not fire")
	}
	if g.Step() != 30 {
		t.Errorf("stopped at step %d, budget 30", g.Step())
	}
	if err := g.BudgetErr(); !errors.Is(err, checkpoint.ErrBudget) {
		t.Errorf("BudgetErr = %v, want wrap of checkpoint.ErrBudget", err)
	}
	// Further Advance calls stay cancelled: the grid does not creep past
	// the budget one call at a time.
	g.Advance(5)
	if g.Step() != 30 {
		t.Errorf("cancelled grid advanced to %d", g.Step())
	}
}

func TestStepBudgetDisarmed(t *testing.T) {
	g, err := FromConfig(Config{Size: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(100)
	if g.Exhausted() || g.BudgetErr() != nil || g.Step() != 100 {
		t.Errorf("disarmed watchdog interfered: exhausted=%v step=%d", g.Exhausted(), g.Step())
	}
}

func TestRunTrialsStepBudgetExhausted(t *testing.T) {
	cfg := Config{Size: 10, Seed: 7}
	res, err := RunTrials(cfg, TrialsConfig{Trials: 4, Blocks: 5, StepBudget: 20})
	if !errors.Is(err, checkpoint.ErrBudget) {
		t.Fatalf("RunTrials = %v, want wrap of checkpoint.ErrBudget", err)
	}
	if res != nil {
		t.Error("partial ensemble leaked alongside the budget error")
	}
	// A budget above the run length never fires.
	steps := 0
	if g, err := FromConfig(cfg); err == nil {
		steps = g.StepsPerBlock()*5 + 1
	}
	if _, err := RunTrials(cfg, TrialsConfig{Trials: 4, Blocks: 5, StepBudget: steps}); err != nil {
		t.Errorf("ample budget tripped: %v", err)
	}
}
