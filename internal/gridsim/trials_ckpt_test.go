package gridsim

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
)

func ckptCfg() (Config, TrialsConfig) {
	return Config{Size: 10, Seed: 5, AttackerShare: 0.3, AttackerRow: 3, AttackerCol: 3},
		TrialsConfig{Trials: 8, Blocks: 4}
}

// TestSupervisedMatchesPlainPath: with a journal attached and nothing
// failing, the ensemble is identical to the un-checkpointed path at any
// worker count.
func TestSupervisedMatchesPlainPath(t *testing.T) {
	cfg, tc := ckptCfg()
	plain, err := RunTrials(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		path := filepath.Join(t.TempDir(), "trials.ckpt")
		j, err := checkpoint.Create(path, tc.Fingerprint(cfg))
		if err != nil {
			t.Fatal(err)
		}
		sc := tc
		sc.Workers = workers
		sc.Journal = j
		got, err := RunTrials(cfg, sc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Trials, plain.Trials) {
			t.Errorf("workers=%d: supervised ensemble diverged from plain path", workers)
		}
		if got.MeanForks != plain.MeanForks || got.MeanCounterfeitShare != plain.MeanCounterfeitShare {
			t.Errorf("workers=%d: summary stats diverged", workers)
		}
		log, err := checkpoint.Load(path, tc.Fingerprint(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if log.Results() != tc.Trials {
			t.Errorf("workers=%d: journal has %d results, want %d", workers, log.Results(), tc.Trials)
		}
	}
}

// TestResumeAfterKill: truncate the journal mid-run (simulating a kill at a
// trial boundary plus a half-written tail), resume, and require the final
// ensemble identical to the uninterrupted one — with only the remainder
// re-run.
func TestResumeAfterKill(t *testing.T) {
	cfg, tc := ckptCfg()
	full, err := RunTrials(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	fp := tc.Fingerprint(cfg)
	path := filepath.Join(t.TempDir(), "trials.ckpt")
	j, err := checkpoint.Create(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	sc := tc
	sc.Journal = j
	if _, err := RunTrials(cfg, sc); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Kill after the header plus 3 journaled trials, mid-way through the
	// 4th record line.
	lines := 0
	cut := 0
	for i, b := range data {
		if b != '\n' {
			continue
		}
		lines++
		if lines == 4 { // header + 3 records
			cut = i + 1
			break
		}
	}
	if err := os.WriteFile(path, append(data[:cut], data[cut:cut+20]...), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, log, err := checkpoint.Resume(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if !log.Truncated || log.Results() != 3 {
		t.Fatalf("resume log: truncated=%v results=%d", log.Truncated, log.Results())
	}
	rc := tc
	rc.Journal = j2
	rc.Resume = log
	got, err := RunTrials(cfg, rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Replayed != 3 {
		t.Errorf("replayed %d trials, want 3", got.Replayed)
	}
	if !reflect.DeepEqual(got.Trials, full.Trials) {
		t.Error("resumed ensemble diverged from the uninterrupted run")
	}
	// After the resumed run the journal is complete again.
	log2, err := checkpoint.Load(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if log2.Truncated || log2.Results() != tc.Trials {
		t.Errorf("final journal: truncated=%v results=%d", log2.Truncated, log2.Results())
	}
}

// TestDegradeQuarantinesBudget: a step budget that cancels every replicate
// yields a degraded result with every trial journaled exhausted, not an
// abort — and no completed trials contaminate the stats.
func TestDegradeQuarantinesBudget(t *testing.T) {
	cfg, tc := ckptCfg()
	path := filepath.Join(t.TempDir(), "trials.ckpt")
	sc := tc
	sc.StepBudget = 5 // far below StepsPerBlock*Blocks
	j, err := checkpoint.Create(path, sc.Fingerprint(cfg))
	if err != nil {
		t.Fatal(err)
	}
	sc.Journal = j
	sc.Degrade = true
	got, err := RunTrials(cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got.Trials) != 0 || len(got.Faults) != tc.Trials {
		t.Fatalf("degraded result: %d trials, %d faults", len(got.Trials), len(got.Faults))
	}
	for i, f := range got.Faults {
		if f.Trial != i || f.Kind != checkpoint.KindExhausted || !errors.Is(f.Err, checkpoint.ErrBudget) {
			t.Errorf("fault %d = %+v", i, f)
		}
	}
	log, err := checkpoint.Load(path, sc.Fingerprint(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Records) != tc.Trials || log.Results() != 0 {
		t.Errorf("journal: %d records, %d results", len(log.Records), log.Results())
	}
}

// TestFingerprintExcludesWorkers: the ensemble fingerprint must let a
// journal written at one worker count resume at another, but reject a
// differently-parameterized ensemble.
func TestTrialsFingerprint(t *testing.T) {
	cfg, tc := ckptCfg()
	base := tc.Fingerprint(cfg)
	w := tc
	w.Workers = 8
	if w.Fingerprint(cfg) != base {
		t.Error("worker count changed the fingerprint")
	}
	b := tc
	b.Blocks = 9
	if b.Fingerprint(cfg) == base {
		t.Error("blocks did not change the fingerprint")
	}
	cfg2 := cfg
	cfg2.Seed = 6
	if tc.Fingerprint(cfg2) == base {
		t.Error("grid seed did not change the fingerprint")
	}
}
