package gridsim

import (
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/shard"
)

// The sharded engine (DESIGN.md §13): the same grid world, partitioned
// across shards by a deterministic router and ticked concurrently by a
// parallel.Gang. Three design choices make the output byte-identical at
// every shard count, router kind, and worker count:
//
//  1. Counter-mode randomness. The legacy engine consumes one sequential
//     RNG stream in cell-index order, which no partition can reproduce
//     concurrently. Here every per-cell decision derives from
//     Mix(tickKey + (cell+1)·Gamma) — a pure function of (seed, step,
//     cell) — so a cell draws the same values whichever shard, worker, or
//     moment computes it.
//  2. Synchronous pull-only gossip under double buffering. Each cell reads
//     the frozen previous tick (anywhere — a shard's foreign reads are the
//     plan's halo, served from shared memory) and writes only itself into
//     the next buffer. Writes are disjoint by ownership, so shards cannot
//     race, and no cell observes a same-tick update — the in-step
//     visibility that also made the legacy loop order-dependent.
//  3. Task-order folds. Per-shard tallies (flips, fork-population deltas,
//     cross-shard pulls) are folded on the coordinator at the tick barrier
//     in shard order — indexed loops over slices, the shape the detmerge
//     analyzer can prove deterministic. Mining, fork creation, churn, and
//     trace emission all run on the coordinator at global sync points, fed
//     by the grid's own sequential RNG, which shards never touch.
//
// Mining keeps the legacy semantics byte-for-byte (same stream, same
// draws); only gossip differs — pull-only instead of push-pull — which is
// why Shards=0 and Shards>=1 are distinct experiments while all sharded
// configurations of a world are the same experiment at different speeds.

// routerSeedSalt namespaces the ring router's virtual-point placement off
// the run seed, like faultsSeedSalt for the injector streams.
const routerSeedSalt = 0x5A4D

// tickSeedSalt namespaces the counter-draw family off the run seed, so a
// sharded tick never correlates with the mining stream or the fault
// streams derived from the same seed.
const tickSeedSalt = 0x71C4

// ShardStats summarizes the partitioning of a sharded run. It is
// deliberately not an obs metric: halo sizes and cross-shard pull counts
// depend on the shard count, and the metrics registry must stay
// byte-identical across shard counts.
type ShardStats struct {
	// Shards is the current shard count (after any rebalance).
	Shards int
	// Workers is the gang width ticking the shards.
	Workers int
	// HaloCells is the per-tick boundary-exchange volume: the total number
	// of foreign cells shards read each tick under the current plan.
	HaloCells int
	// CrossPulls counts adoptions that pulled state across a shard
	// boundary so far.
	CrossPulls int64
	// Rebalanced reports whether the scripted mid-run rebalance has fired;
	// MovedKeys is how many cells changed owner when it did.
	Rebalanced bool
	MovedKeys  int
}

// ShardStats returns the partitioning summary; the zero value when the
// legacy engine is running.
func (g *Grid) ShardStats() ShardStats { return g.shardStats }

// resetSharded builds the partition plan, the gang, and the double-buffer
// arenas for a cfg.Shards >= 1 reset. Called from ResetConfig with
// validation already done.
func (g *Grid) resetSharded(cfg Config, n int) error {
	g.adjFn = g.neighbors
	r, err := shard.New(cfg.Router, parallel.DeriveSeed(cfg.Seed, routerSeedSalt), n, cfg.Shards)
	if err != nil {
		return err
	}
	// Validate the rebalance target now so a bad script fails at New, not
	// mid-run.
	if cfg.RebalanceStep > 0 {
		if _, err := shard.New(cfg.Router, parallel.DeriveSeed(cfg.Seed, routerSeedSalt), n, cfg.RebalanceShards); err != nil {
			return err
		}
	}
	g.plan = shard.BuildPlan(r, n, g.adjFn)
	g.gang = parallel.NewGang(cfg.ShardWorkers)
	g.tickFn = g.tickShard
	g.tickBase = shard.Mix(uint64(parallel.DeriveSeed(cfg.Seed, tickSeedSalt)))
	g.failThresh53 = float53Threshold(cfg.FailureRate)
	g.nextFork = resizeI32(g.nextFork, n)
	g.nextHeight = resizeI32(g.nextHeight, n)
	g.nextLink = resizeHash(g.nextLink, n)
	g.resizeShardScratch()
	g.shardStats = ShardStats{
		Shards:    cfg.Shards,
		Workers:   g.gang.Workers(),
		HaloCells: g.plan.HaloCells(),
	}
	return nil
}

// resizeShardScratch sizes the per-shard tally slices to the current shard
// count (initial build and rebalance).
func (g *Grid) resizeShardScratch() {
	k := g.plan.Shards()
	g.shCross = resizeI64(g.shCross, k)
	for s := range g.shCross {
		g.shCross[s] = 0
	}
	if !g.obsOn {
		return
	}
	g.shFlips = resizeI64(g.shFlips, k)
	for s := range g.shFlips {
		g.shFlips[s] = 0
	}
	if cap(g.shPopDelta) >= k {
		g.shPopDelta = g.shPopDelta[:k]
	} else {
		g.shPopDelta = make([][]int32, k)
	}
}

// resizeI64 returns a slice of length n, reusing s's backing array when it
// is large enough.
func resizeI64(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

// float53Threshold is float01Threshold for the 53-bit counter draws: the
// smallest y such that float64(y)/2^53 >= p, so the sharded failure test is
// a pure integer compare on Mix(c) >> 11 — the same high-bits-to-unit
// mapping the fault streams use.
func float53Threshold(p float64) int64 {
	lo, hi := int64(0), int64(1)<<53
	for lo < hi {
		mid := lo + (hi-lo)/2
		if float64(mid)/(1<<53) >= p {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// advanceSharded is Advance for the sharded engine: per step, churn flips
// on the coordinator, a scripted rebalance fires if due, the gang ticks
// every shard against the frozen buffers, per-shard tallies fold in shard
// order, the buffers swap, and a due block event mines on the coordinator.
func (g *Grid) advanceSharded(n int) {
	for t := 0; t < n; t++ {
		if g.cfg.StepBudget > 0 && g.step >= g.cfg.StepBudget {
			g.exhausted = true
			return
		}
		g.step++
		if g.faults != nil {
			g.faults.StepChurn(g.step)
		}
		if g.cfg.RebalanceStep > 0 && g.step == g.cfg.RebalanceStep {
			g.rebalance()
		}
		g.tickKey = shard.Mix(g.tickBase + uint64(g.step)*shard.Gamma)
		if g.obsOn {
			g.prepTickObs()
		}
		g.gang.Run(g.plan.Shards(), g.tickFn)
		g.foldShards()
		g.fork, g.nextFork = g.nextFork, g.fork
		g.height, g.nextHeight = g.nextHeight, g.height
		g.link, g.nextLink = g.nextLink, g.link
		if g.stepsPerBlock > 0 && g.step%g.stepsPerBlock == 0 {
			g.mineBlock()
		}
	}
}

// prepTickObs sizes and zeroes the per-shard fork-population deltas (the
// fork table only grows at coordinator-side block events, so its length is
// frozen for the tick) and grows the population ledger to match.
func (g *Grid) prepTickObs() {
	nf := len(g.fParent)
	for nf > len(g.forkPop) {
		g.forkPop = append(g.forkPop, 0)
	}
	for s := range g.shPopDelta {
		pd := resizeI32(g.shPopDelta[s], nf)
		for f := range pd {
			pd[f] = 0
		}
		g.shPopDelta[s] = pd
	}
}

// tickShard computes the next state of every cell shard s owns. It runs
// concurrently with other shards: all reads are against the frozen current
// buffers (plus pure fault queries and atomic counters), all writes land in
// next* at owned indices and in the shard's own tally slots.
//
//hot:path
func (g *Grid) tickShard(s int) {
	attacker := -1
	if g.cfg.AttackerShare > 0 {
		attacker = g.attackerIdx
	}
	boundary := g.boundaryActive()
	thresh := g.failThresh53
	tick := g.tickKey
	faulty := g.faults != nil
	obsOn := g.obsOn
	var pd []int32
	if obsOn {
		pd = g.shPopDelta[s]
	}
	var cross, flips int64
	for _, ki := range g.plan.Keys(s) {
		i := int(ki)
		g.nextFork[i] = g.fork[i]
		g.nextHeight[i] = g.height[i]
		g.nextLink[i] = g.link[i]
		// A churned-out cell makes no pull attempt.
		if faulty && g.faults.Down(i) {
			continue
		}
		// Counter-mode draws: c is unique per (step, cell), d1 feeds the
		// failure Bernoulli (53 high bits vs. the precomputed threshold),
		// d2 the neighbor pick (modulo bias < 2^-60 at degree <= 8).
		c := tick + (uint64(i)+1)*shard.Gamma
		d1 := shard.Mix(c)
		if int64(d1>>11) < thresh {
			continue
		}
		lo := g.nbrOff[i]
		d2 := shard.Mix(d1 ^ c)
		e := lo + int32(d2%uint64(g.nbrOff[i+1]-lo))
		// Targeted communication disruption: gossip never crosses an
		// active attack boundary.
		if boundary && g.cross[e] != 0 {
			continue
		}
		j := int(g.nbrs[e])
		if faulty && (g.faults.Down(j) || !g.faults.Allow(i, j, g.step) || g.faults.ChaosLossAt(i, g.step)) {
			continue
		}
		// Pull-only longest chain: adopt the contacted neighbor's view iff
		// it is strictly higher. The attacker's anchor never abandons its
		// counterfeit branch (§V-B); neighbors pulling *from* the anchor
		// fall through to the general rule.
		hi, hj := g.height[i], g.height[j]
		if hj <= hi {
			continue
		}
		if i == attacker && g.fTainted[g.fork[i]] {
			continue
		}
		if g.plan.Owner(j) != s {
			cross++
		}
		from, to := g.fork[i], g.fork[j]
		g.nextFork[i] = to
		g.nextHeight[i] = hj
		g.nextLink[i] = g.link[j]
		if obsOn && from != to {
			flips++
			pd[from]--
			pd[to]++
		}
	}
	g.shCross[s] += cross
	if obsOn {
		g.shFlips[s] += flips
	}
}

// foldShards merges the per-shard tick tallies on the coordinator, in
// shard order — the deterministic fold the detmerge analyzer enforces.
// Fork deaths are detected from the folded population ledger and emitted
// in fork order at the tick barrier, so the trace is identical for every
// shard count and gang width.
func (g *Grid) foldShards() {
	k := g.plan.Shards()
	for s := 0; s < k; s++ {
		g.shardStats.CrossPulls += g.shCross[s]
		g.shCross[s] = 0
	}
	if !g.obsOn {
		return
	}
	var flips int64
	g.popPrev = append(g.popPrev[:0], g.forkPop...)
	for s := 0; s < k; s++ {
		flips += g.shFlips[s]
		g.shFlips[s] = 0
		for f, d := range g.shPopDelta[s] {
			g.forkPop[f] += int(d)
		}
	}
	if flips > 0 {
		g.obsFlips.Add(uint64(flips))
	}
	for f := range g.forkPop {
		if g.forkPop[f] == 0 && g.popPrev[f] > 0 {
			g.obsForkDeaths.Inc()
			g.obsTrace.Emit(int64(g.step), "gridsim", "fork_death",
				obs.F("fork", ForkID(f).String()))
		}
	}
}

// rebalance fires the scripted mid-run topology change: re-route the world
// onto RebalanceShards shards, record exactly which keys moved, and rebuild
// the plan and per-shard scratch. State never moves — the SoA arenas are
// shared — so "key movement" is precisely the ownership diff, and the run's
// output is unchanged because output is shard-count invariant.
func (g *Grid) rebalance() {
	n := len(g.fork)
	r, err := shard.New(g.cfg.Router, parallel.DeriveSeed(g.cfg.Seed, routerSeedSalt), n, g.cfg.RebalanceShards)
	if err != nil {
		// The target router was validated at reset; an error here means the
		// config mutated mid-run, which nothing supports.
		panic(err)
	}
	moved := shard.Moves(g.plan.Router(), r, n)
	g.plan = shard.BuildPlan(r, n, g.adjFn)
	g.resizeShardScratch()
	g.shardStats.Shards = g.cfg.RebalanceShards
	g.shardStats.HaloCells = g.plan.HaloCells()
	g.shardStats.Rebalanced = true
	g.shardStats.MovedKeys = len(moved)
}
