package gridsim

import (
	"reflect"
	"testing"
)

func trialsBase() Config {
	return Config{
		Size: 15, SpanRatio: 0.5, FailureRate: 0.10,
		AttackerShare: 0.30, AttackerRow: 7, AttackerCol: 7,
		BoundaryRadius: 3, Seed: 9,
	}
}

func TestRunTrialsValidation(t *testing.T) {
	if _, err := RunTrials(trialsBase(), TrialsConfig{Trials: 0}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RunTrials(trialsBase(), TrialsConfig{Trials: 2, Blocks: -1}); err == nil {
		t.Error("negative blocks accepted")
	}
	bad := trialsBase()
	bad.Size = 1
	if _, err := RunTrials(bad, TrialsConfig{Trials: 2}); err == nil {
		t.Error("invalid grid config accepted")
	}
}

func TestRunTrialsSummary(t *testing.T) {
	res, err := RunTrials(trialsBase(), TrialsConfig{Trials: 8, Blocks: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 8 || res.Blocks != 12 {
		t.Fatalf("shape: %d trials, %d blocks", len(res.Trials), res.Blocks)
	}
	// An under-synchronized grid (Rspan 0.5) with a 30% attacker must fork.
	if res.MeanForks <= 0 {
		t.Errorf("mean forks = %v, want > 0", res.MeanForks)
	}
	// At most one fork can emerge per block event.
	if res.ForkRate <= 0 || res.ForkRate > 1 {
		t.Errorf("fork rate = %v", res.ForkRate)
	}
	if res.MeanForksCI < 0 || res.ForkRateCI < 0 || res.MeanCounterfeitShareCI < 0 {
		t.Error("negative CI half-width")
	}
	for i, tr := range res.Trials {
		if tr.MaxHeight <= 0 {
			t.Errorf("trial %d: no chain growth", i)
		}
		if tr.Seed == trialsBase().Seed {
			t.Errorf("trial %d ran with the root seed, not a derived one", i)
		}
	}
}

// TestRunTrialsDeterministic is the ISSUE's regression contract: same root
// seed, workers ∈ {1, 2, 8} → bit-identical ensembles.
func TestRunTrialsDeterministic(t *testing.T) {
	run := func(workers int) *TrialsResult {
		res, err := RunTrials(trialsBase(), TrialsConfig{Trials: 10, Blocks: 10, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got.Trials, want.Trials) {
			t.Errorf("workers=%d: per-trial outcomes diverged", workers)
		}
		if got.MeanForks != want.MeanForks || got.ForkRate != want.ForkRate ||
			got.MeanCounterfeitShare != want.MeanCounterfeitShare {
			t.Errorf("workers=%d: summary diverged", workers)
		}
	}
}

// TestRunTrialsSeedSensitivity: distinct root seeds must yield distinct
// ensembles (the derivation is not degenerate).
func TestRunTrialsSeedSensitivity(t *testing.T) {
	a := trialsBase()
	b := trialsBase()
	b.Seed = 10
	ra, err := RunTrials(a, TrialsConfig{Trials: 6, Blocks: 10})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunTrials(b, TrialsConfig{Trials: 6, Blocks: 10})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ra.Trials, rb.Trials) {
		t.Error("different roots produced identical ensembles")
	}
}
