// Package gridsim reimplements the paper's R simulation of temporal
// partitioning (§V-B, Figure 7): Bitcoin modelled as a square grid of nodes
// where each discrete time step is one peer-to-peer communication attempt
// per node, communication fails ~10% of the time, and block production is
// split between the honest network and an attacker (30% hash rate in the
// paper's runs) who sustains a counterfeit fork inside the region he
// isolates.
//
// The paper's span ratio governs timing: Tdelay = Tblock / (Rspan · √N), so
// the number of communication steps per block interval is Rspan · √N — how
// many times information can cross the network between blocks. Rspan = 2.0
// "is a good target for blockchain synchronization".
package gridsim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/blockchain"
	"repro/internal/checkpoint"
	"repro/internal/faults"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// ForkID labels a chain branch. Fork 0 is the main chain ("A" in Figure 7);
// subsequent forks are lettered in order of emergence.
type ForkID int

// String renders fork labels as letters A, B, C, … like Figure 7.
func (f ForkID) String() string {
	if f < 0 {
		return "?"
	}
	if f < 26 {
		return string(rune('A' + f))
	}
	return fmt.Sprintf("F%d", int(f))
}

// Config parameterizes a grid simulation.
type Config struct {
	// Size is the grid side length; the paper uses 100 for the full
	// 10,000-node network and presents a size-25 grid in Figure 7.
	Size int
	// SpanRatio is Rspan; steps per block = SpanRatio * Size (√N for an
	// N-cell square grid). Default 2.0.
	SpanRatio float64
	// FailureRate is the per-attempt communication failure probability.
	// Default 0.10.
	FailureRate float64
	// AttackerShare is the attacker's fraction of total hash rate.
	// The paper simulates 0.30. Zero disables the attacker.
	AttackerShare float64
	// AttackerCell is the grid coordinate the attacker controls (Figure 7
	// shows the fork emerging at node [7,7]).
	AttackerRow, AttackerCol int
	// BoundaryRadius encloses the attacked region: while the disruption
	// window is active, gossip crossing the Chebyshev-radius boundary
	// around the attacker cell is blocked. This is the paper's "targeted
	// communication disruption, holding [forks] open long enough to achieve
	// attack objectives" (§IV-B); without it any one-block lead floods the
	// whole synchronized grid and forks are all-or-nothing. Zero disables
	// the boundary.
	BoundaryRadius int
	// BoundaryFrom/BoundaryUntil bound the disruption window in time steps
	// (inclusive-exclusive). With both zero and a positive radius, the
	// boundary is active for the whole run.
	BoundaryFrom, BoundaryUntil int
	// Seed fixes the run.
	Seed int64
	// Obs attaches the observability layer (fork births/deaths, cell
	// flips, block events; trace ticks are grid steps). Nil — the default
	// — disables instrumentation with byte-identical output.
	Obs *obs.Observer
	// Faults selects the fault scenario (DESIGN.md §10), realized by a
	// step-driven faults.GridInjector: churned-out cells neither gossip
	// nor mine, faulty links block exchanges, and chaos adds loss on top
	// of FailureRate. The zero value — the default — injects nothing and
	// leaves the run byte-identical to a faultless build. The attacker's
	// anchor cell never churns.
	Faults faults.Scenario
	// StepBudget, when positive, arms the watchdog (DESIGN.md §11): Advance
	// refuses to run past this many total steps and Exhausted latches, so a
	// runaway trial is cancelled at a deterministic point instead of
	// spinning. Zero disarms the watchdog.
	StepBudget int
}

func (c Config) withDefaults() Config {
	if c.SpanRatio == 0 {
		c.SpanRatio = 2.0
	}
	if c.FailureRate == 0 {
		c.FailureRate = 0.10
	}
	return c
}

// Validate rejects unusable parameters.
func (c Config) Validate() error {
	if c.Size < 2 {
		return fmt.Errorf("gridsim: size %d too small", c.Size)
	}
	if c.SpanRatio < 0 {
		return fmt.Errorf("gridsim: negative span ratio %v", c.SpanRatio)
	}
	if c.FailureRate < 0 || c.FailureRate >= 1 {
		return fmt.Errorf("gridsim: failure rate %v outside [0,1)", c.FailureRate)
	}
	if c.AttackerShare < 0 || c.AttackerShare >= 1 {
		return fmt.Errorf("gridsim: attacker share %v outside [0,1)", c.AttackerShare)
	}
	if c.AttackerRow < 0 || c.AttackerRow >= c.Size || c.AttackerCol < 0 || c.AttackerCol >= c.Size {
		return fmt.Errorf("gridsim: attacker cell (%d,%d) outside %dx%d grid",
			c.AttackerRow, c.AttackerCol, c.Size, c.Size)
	}
	if c.BoundaryRadius < 0 {
		return fmt.Errorf("gridsim: negative boundary radius %d", c.BoundaryRadius)
	}
	if c.BoundaryUntil < 0 || c.BoundaryFrom < 0 || (c.BoundaryUntil > 0 && c.BoundaryUntil < c.BoundaryFrom) {
		return fmt.Errorf("gridsim: invalid boundary window [%d, %d)", c.BoundaryFrom, c.BoundaryUntil)
	}
	if c.StepBudget < 0 {
		return fmt.Errorf("gridsim: negative step budget %d", c.StepBudget)
	}
	return nil
}

// inRegion reports whether cell index i lies within the attack boundary.
func (g *Grid) inRegion(i int) bool {
	size := g.cfg.Size
	row, col := i/size, i%size
	dr, dc := row-g.cfg.AttackerRow, col-g.cfg.AttackerCol
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	d := dr
	if dc > d {
		d = dc
	}
	return d <= g.cfg.BoundaryRadius
}

// boundaryActive reports whether the disruption window covers the current
// step.
func (g *Grid) boundaryActive() bool {
	if g.cfg.BoundaryRadius <= 0 {
		return false
	}
	if g.step < g.cfg.BoundaryFrom {
		return false
	}
	return g.cfg.BoundaryUntil == 0 || g.step < g.cfg.BoundaryUntil
}

// cell is one grid node's chain view: which fork it follows, that fork's
// height at this node, and the 64-bit MD5-linked hash of its chain (the
// paper's per-node internal error check).
type cell struct {
	fork   ForkID
	height int
	link   blockchain.Hash
}

// forkInfo tracks one branch's global state.
type forkInfo struct {
	id     ForkID
	parent ForkID
	// baseHeight is the height at which it diverged from its parent.
	baseHeight int
	// tipHeight and tipLink are the branch's best block.
	tipHeight int
	tipLink   blockchain.Hash
	// counterfeit marks attacker-produced branches.
	counterfeit bool
}

// Grid is a running grid simulation.
type Grid struct {
	cfg           Config
	rng           *rand.Rand
	cells         []cell
	forks         []*forkInfo
	step          int
	stepsPerBlock int
	// blocksMined counts total block events (honest + attacker).
	blocksMined int
	// forksEmerged counts branches created after genesis (fork A excluded).
	forksEmerged int
	// nbrs/nbrOff cache every cell's Moore neighborhood in one flat backing
	// slice: cell i's neighbors are nbrs[nbrOff[i]:nbrOff[i+1]]. One
	// allocation for the whole grid instead of one slice per cell, and the
	// gossip hot loop walks contiguous memory.
	nbrs   []int
	nbrOff []int32
	// faults is the step-driven injector, nil when Config.Faults is the
	// zero value — every fault check in the hot loop is gated on this nil
	// check so the faultless path is untouched.
	faults *faults.GridInjector
	// exhausted latches once Advance refuses to cross Config.StepBudget.
	exhausted bool

	// Observability (DESIGN.md §9). obsOn gates fork-population tracking
	// so the uninstrumented hot loop pays a single bool check per
	// adoption; forkPop counts followers per fork and is maintained only
	// while obsOn, to notice fork deaths.
	obsOn          bool
	forkPop        []int
	obsTrace       *obs.Tracer
	obsFlips       *obs.Counter
	obsForkBirths  *obs.Counter
	obsForkDeaths  *obs.Counter
	obsHonestBlk   *obs.Counter
	obsAttackerBlk *obs.Counter
}

// New builds a grid simulation. All cells start on fork A at height 0 with
// the same genesis link.
func New(cfg Config) (*Grid, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Size * cfg.Size
	genesis := blockchain.Genesis()
	g := &Grid{
		cfg:           cfg,
		rng:           stats.NewRand(cfg.Seed),
		cells:         make([]cell, n),
		stepsPerBlock: int(math.Round(cfg.SpanRatio * float64(cfg.Size))),
	}
	if g.stepsPerBlock < 1 {
		g.stepsPerBlock = 1
	}
	for i := range g.cells {
		g.cells[i] = cell{fork: 0, height: 0, link: genesis.Hash}
	}
	g.forks = []*forkInfo{{id: 0, parent: -1, tipHeight: 0, tipLink: genesis.Hash}}
	// Precompute the Moore neighborhoods once: neighbors() is the gossip
	// hot path (one lookup per cell per step).
	g.nbrs = make([]int, 0, n*8)
	g.nbrOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.nbrOff[i] = int32(len(g.nbrs))
		g.nbrs = g.appendNeighbors(g.nbrs, i)
	}
	g.nbrOff[n] = int32(len(g.nbrs))
	if cfg.Faults.Enabled() {
		// Scenario durations are converted to steps through the paper's
		// Tdelay = Tblock / (Rspan·√N), so one scenario means the same
		// physical fault load here as in the event-driven simulator.
		stepDur := mining.BlockInterval / time.Duration(g.stepsPerBlock)
		exempt := -1
		if cfg.AttackerShare > 0 {
			exempt = g.idx(cfg.AttackerRow, cfg.AttackerCol)
		}
		injector, err := faults.NewGridInjector(cfg.Faults,
			parallel.DeriveSeed(cfg.Seed, faultsSeedSalt), n, stepDur, exempt, cfg.Obs)
		if err != nil {
			return nil, fmt.Errorf("gridsim: %w", err)
		}
		g.faults = injector
	}
	if o := cfg.Obs; o != nil && (o.Registry() != nil || o.Tracer() != nil) {
		g.obsOn = true
		g.forkPop = []int{n} // every cell starts on fork A
		reg := o.Registry()
		g.obsTrace = o.Tracer()
		g.obsFlips = reg.Counter("gridsim.cell_flips")
		g.obsForkBirths = reg.Counter("gridsim.fork_births")
		g.obsForkDeaths = reg.Counter("gridsim.fork_deaths")
		g.obsHonestBlk = reg.Counter("gridsim.blocks_mined", obs.L("miner", "honest"))
		g.obsAttackerBlk = reg.Counter("gridsim.blocks_mined", obs.L("miner", "attacker"))
	}
	return g, nil
}

// trackFlip maintains the fork-population ledger while observability is
// on: a cell moved from one fork to another, which may kill the old fork.
// Callers gate on g.obsOn.
func (g *Grid) trackFlip(from, to ForkID) {
	g.obsFlips.Inc()
	for int(to) >= len(g.forkPop) {
		g.forkPop = append(g.forkPop, 0)
	}
	g.forkPop[from]--
	g.forkPop[to]++
	if g.forkPop[from] == 0 {
		g.obsForkDeaths.Inc()
		g.obsTrace.Emit(int64(g.step), "gridsim", "fork_death",
			obs.F("fork", from.String()))
	}
}

// trackBirth records a freshly created branch. Callers gate on g.obsOn.
func (g *Grid) trackBirth(f *forkInfo) {
	g.obsForkBirths.Inc()
	g.obsTrace.Emit(int64(g.step), "gridsim", "fork_birth",
		obs.F("fork", f.id.String()),
		obs.F("parent", f.parent.String()),
		obs.Fint("base_height", int64(f.baseHeight)),
		obs.Fbool("counterfeit", f.counterfeit))
}

// adopt copies src's chain view into dst, tracking the fork flip when
// observability is on. It is the single adoption point of the gossip loop.
func (g *Grid) adopt(dst, src *cell) {
	if g.obsOn && dst.fork != src.fork {
		g.trackFlip(dst.fork, src.fork)
	}
	*dst = *src
}

// StepsPerBlock returns the number of communication steps per block
// interval implied by the span ratio.
func (g *Grid) StepsPerBlock() int { return g.stepsPerBlock }

// Exhausted reports whether an Advance was cancelled by the step budget.
func (g *Grid) Exhausted() bool { return g.exhausted }

// BudgetErr returns nil, or the watchdog cancellation as an error wrapping
// checkpoint.ErrBudget so supervised runners journal the trial as exhausted
// rather than quarantined.
func (g *Grid) BudgetErr() error {
	if !g.exhausted {
		return nil
	}
	return fmt.Errorf("%w: step budget %d hit with the run unfinished",
		checkpoint.ErrBudget, g.cfg.StepBudget)
}

// Step returns the current time step.
func (g *Grid) Step() int { return g.step }

// BlocksMined returns the number of block events so far.
func (g *Grid) BlocksMined() int { return g.blocksMined }

// ForksEmerged returns how many forks (beyond the main chain) appeared.
func (g *Grid) ForksEmerged() int { return g.forksEmerged }

func (g *Grid) idx(row, col int) int { return row*g.cfg.Size + col }

// neighbors returns the cached Moore (8-cell) neighborhood, matching
// Bitcoin's default of 8 peers, clipped at the grid boundary.
func (g *Grid) neighbors(i int) []int { return g.nbrs[g.nbrOff[i]:g.nbrOff[i+1]] }

func (g *Grid) appendNeighbors(out []int, i int) []int {
	size := g.cfg.Size
	row, col := i/size, i%size
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			r, c := row+dr, col+dc
			if r < 0 || r >= size || c < 0 || c >= size {
				continue
			}
			out = append(out, g.idx(r, c))
		}
	}
	return out
}

// faultsSeedSalt namespaces the fault-injection streams off the run seed
// (the grid injector further namespaces its own families), so enabling a
// scenario never perturbs any existing simulation draw.
const faultsSeedSalt = 0xFA17

// Advance runs n time steps. Each step: churned cells flip state (faults
// on), every up cell makes one communication attempt with a random
// neighbor (adopting the neighbor's chain if strictly higher, longest-chain
// rule), and every stepsPerBlock steps one block is mined by the attacker
// (probability AttackerShare) or the honest network.
func (g *Grid) Advance(n int) {
	for i := 0; i < n; i++ {
		if g.cfg.StepBudget > 0 && g.step >= g.cfg.StepBudget {
			g.exhausted = true
			return
		}
		g.step++
		if g.faults != nil {
			g.faults.StepChurn(g.step)
		}
		g.communicate()
		if g.stepsPerBlock > 0 && g.step%g.stepsPerBlock == 0 {
			g.mineBlock()
		}
	}
}

// communicate performs one gossip attempt per cell in index order.
func (g *Grid) communicate() {
	attackerIdx := g.idx(g.cfg.AttackerRow, g.cfg.AttackerCol)
	boundary := g.boundaryActive()
	for i := range g.cells {
		// A churned-out cell makes no communication attempt at all — its rng
		// draws are skipped entirely, like a node that simply is not there.
		if g.faults != nil && g.faults.Down(i) {
			continue
		}
		if stats.Bernoulli(g.rng, g.cfg.FailureRate) {
			continue
		}
		nbrs := g.neighbors(i)
		j := nbrs[g.rng.Intn(len(nbrs))]
		// Targeted communication disruption: while the attack boundary is
		// active, gossip crossing it is blocked.
		if boundary && g.inRegion(i) != g.inRegion(j) {
			continue
		}
		// Fault injection: a down partner, a dead/flapping/one-way link, or
		// chaos loss kills the exchange (DESIGN.md §10).
		if g.faults != nil {
			if g.faults.Down(j) || !g.faults.Allow(i, j, g.step) || g.faults.ChaosLoss() {
				continue
			}
		}
		a, b := &g.cells[i], &g.cells[j]
		// Once the attacker's cell is on the counterfeit branch it never
		// adopts the honest chain — it is the anchor that keeps the branch
		// alive (§V-B: the attacker "sustains" the isolated portion "with
		// successive forks"). Before the attack fork exists it behaves
		// honestly.
		if i == attackerIdx && g.cfg.AttackerShare > 0 && g.onCounterfeit(a.fork) {
			// Attacker only pushes, never pulls.
			if a.height > b.height {
				g.adopt(b, a)
			}
			continue
		}
		if j == attackerIdx && g.cfg.AttackerShare > 0 && g.onCounterfeit(b.fork) {
			if b.height > a.height {
				g.adopt(a, b)
			}
			continue
		}
		// Symmetric exchange: the lower-height side adopts the higher.
		switch {
		case a.height > b.height:
			g.adopt(b, a)
		case b.height > a.height:
			g.adopt(a, b)
		}
	}
}

func (g *Grid) forkOf(id ForkID) *forkInfo { return g.forks[int(id)] }

// mineBlock resolves one block event.
func (g *Grid) mineBlock() {
	g.blocksMined++
	if g.cfg.AttackerShare > 0 && stats.Bernoulli(g.rng, g.cfg.AttackerShare) {
		g.obsAttackerBlk.Inc()
		g.mineAttacker()
		return
	}
	g.obsHonestBlk.Inc()
	g.mineHonest()
}

// mineHonest extends the chain at a uniformly random cell that follows an
// honest branch — the paper's model keeps the honest 70% of hash power on
// the main network, which is why the longer chain A eventually overwhelms
// the attacker's fork (Figure 7(c)). If the mining cell's local view is the
// tip of its fork, the fork simply grows; if the view is stale (the miner
// has not heard the latest block yet), a new competing branch emerges —
// exactly how natural forks arise from propagation delay.
func (g *Grid) mineHonest() {
	i := g.pickHonestCell()
	c := &g.cells[i]
	if g.onCounterfeit(c.fork) {
		// The whole grid is captured: the honest miners (whose hash power is
		// not tied to captured full nodes) publish on the tallest honest
		// fork, re-seeding it at this cell.
		f := g.tallestHonestFork()
		f.tipHeight++
		f.tipLink = blockchain.HashBlock(f.tipLink, f.tipHeight, 0, 0, nil, false)
		if g.obsOn && c.fork != f.id {
			g.trackFlip(c.fork, f.id)
		}
		c.fork = f.id
		c.height = f.tipHeight
		c.link = f.tipLink
		return
	}
	f := g.forkOf(c.fork)
	if c.height == f.tipHeight && c.link == f.tipLink {
		f.tipHeight++
		f.tipLink = blockchain.HashBlock(f.tipLink, f.tipHeight, 0, 0, nil, false)
		c.height = f.tipHeight
		c.link = f.tipLink
		return
	}
	// Stale view: a new branch is born on top of the miner's local state.
	nf := &forkInfo{
		id:         ForkID(len(g.forks)),
		parent:     c.fork,
		baseHeight: c.height,
		tipHeight:  c.height + 1,
		tipLink:    blockchain.HashBlock(c.link, c.height+1, 0, 0, nil, false),
	}
	g.forks = append(g.forks, nf)
	g.forksEmerged++
	if g.obsOn {
		g.trackBirth(nf)
		g.trackFlip(c.fork, nf.id)
	}
	c.fork = nf.id
	c.height = nf.tipHeight
	c.link = nf.tipLink
}

// pickHonestCell samples a uniformly random cell following an honest branch
// (and outside an active attack boundary — the honest hash power publishes
// on the main network), falling back to any cell when none remain.
func (g *Grid) pickHonestCell() int {
	boundary := g.boundaryActive()
	// Rejection sampling keeps the common case O(1); bounded attempts avoid
	// degenerate loops when nearly everything is captured.
	for attempt := 0; attempt < 64; attempt++ {
		i := g.rng.Intn(len(g.cells))
		if g.onCounterfeit(g.cells[i].fork) {
			continue
		}
		if boundary && g.inRegion(i) {
			continue
		}
		// Churned-out cells are not publishing anyone's blocks.
		if g.faults != nil && g.faults.Down(i) {
			continue
		}
		return i
	}
	return g.rng.Intn(len(g.cells))
}

// tallestHonestFork returns the honest fork with the greatest tip height.
func (g *Grid) tallestHonestFork() *forkInfo {
	var best *forkInfo
	for _, f := range g.forks {
		if f.counterfeit {
			continue
		}
		if g.counterfeitAncestry(f) {
			continue
		}
		if best == nil || f.tipHeight > best.tipHeight {
			best = f
		}
	}
	return best
}

// counterfeitAncestry reports whether the fork descends from a counterfeit
// branch.
func (g *Grid) counterfeitAncestry(f *forkInfo) bool {
	return g.onCounterfeit(f.id)
}

// mineAttacker extends (or creates) the counterfeit branch anchored at the
// attacker's cell.
func (g *Grid) mineAttacker() {
	i := g.idx(g.cfg.AttackerRow, g.cfg.AttackerCol)
	c := &g.cells[i]
	f := g.forkOf(c.fork)
	if !f.counterfeit {
		// First attack block: branch off the attacker's current view.
		nf := &forkInfo{
			id:          ForkID(len(g.forks)),
			parent:      c.fork,
			baseHeight:  c.height,
			tipHeight:   c.height + 1,
			tipLink:     blockchain.HashBlock(c.link, c.height+1, 1, 0, nil, true),
			counterfeit: true,
		}
		g.forks = append(g.forks, nf)
		g.forksEmerged++
		if g.obsOn {
			g.trackBirth(nf)
			g.trackFlip(c.fork, nf.id)
		}
		c.fork = nf.id
		c.height = nf.tipHeight
		c.link = nf.tipLink
		return
	}
	f.tipHeight++
	f.tipLink = blockchain.HashBlock(f.tipLink, f.tipHeight, 1, 0, nil, true)
	c.height = f.tipHeight
	c.link = f.tipLink
}

// Snapshot captures the observable state of the grid at the current step.
type Snapshot struct {
	Step int
	// ForkCounts maps fork label to the number of cells following it.
	ForkCounts map[ForkID]int
	// MaxHeight is the global best height across all cells.
	MaxHeight int
	// LagCounts[k] is the number of cells k blocks behind MaxHeight,
	// bucketed like Figure 6: index 0 synced, 1, 2 (2-4), 3 (5-10), 4 (>10).
	Lag [5]int
}

// Snapshot returns the current state summary.
func (g *Grid) Snapshot() Snapshot {
	s := Snapshot{Step: g.step, ForkCounts: map[ForkID]int{}}
	for i := range g.cells {
		if g.cells[i].height > s.MaxHeight {
			s.MaxHeight = g.cells[i].height
		}
	}
	for i := range g.cells {
		c := g.cells[i]
		s.ForkCounts[c.fork]++
		behind := s.MaxHeight - c.height
		switch {
		case behind <= 0:
			s.Lag[0]++
		case behind == 1:
			s.Lag[1]++
		case behind <= 4:
			s.Lag[2]++
		case behind <= 10:
			s.Lag[3]++
		default:
			s.Lag[4]++
		}
	}
	return s
}

// CounterfeitCells returns how many cells currently follow an
// attacker-produced branch (directly or via a descendant branch).
func (g *Grid) CounterfeitCells() int {
	n := 0
	for i := range g.cells {
		if g.onCounterfeit(g.cells[i].fork) {
			n++
		}
	}
	return n
}

// onCounterfeit walks the fork ancestry looking for a counterfeit branch.
func (g *Grid) onCounterfeit(id ForkID) bool {
	for id >= 0 {
		f := g.forkOf(id)
		if f.counterfeit {
			return true
		}
		id = f.parent
	}
	return false
}

// Render draws the grid as ASCII, one letter per cell giving its fork
// label, mirroring Figure 7's colour maps.
func (g *Grid) Render() string {
	var b strings.Builder
	for r := 0; r < g.cfg.Size; r++ {
		for c := 0; c < g.cfg.Size; c++ {
			b.WriteString(g.cells[g.idx(r, c)].fork.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DominantFork returns the fork followed by the most cells and its count.
func (s Snapshot) DominantFork() (ForkID, int) {
	best, bestN := ForkID(-1), -1
	for id, n := range s.ForkCounts {
		if n > bestN || (n == bestN && id < best) {
			best, bestN = id, n
		}
	}
	return best, bestN
}
