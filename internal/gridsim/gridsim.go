// Package gridsim reimplements the paper's R simulation of temporal
// partitioning (§V-B, Figure 7): Bitcoin modelled as a square grid of nodes
// where each discrete time step is one peer-to-peer communication attempt
// per node, communication fails ~10% of the time, and block production is
// split between the honest network and an attacker (30% hash rate in the
// paper's runs) who sustains a counterfeit fork inside the region he
// isolates.
//
// The paper's span ratio governs timing: Tdelay = Tblock / (Rspan · √N), so
// the number of communication steps per block interval is Rspan · √N — how
// many times information can cross the network between blocks. Rspan = 2.0
// "is a good target for blockchain synchronization".
//
// The state is held structure-of-arrays (DESIGN.md §12): parallel flat
// slices per cell (fork, height, link) and per fork (parent, base, tip,
// taint), a precomputed attack-region bitset, and a flat neighbor cache.
// Grid.Reset reuses every backing arena, so a Monte-Carlo ensemble pays
// near-zero steady-state allocations per trial while remaining
// byte-identical to the original array-of-structs implementation.
package gridsim

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/blockchain"
	"repro/internal/checkpoint"
	"repro/internal/faults"
	"repro/internal/mining"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/shard"
	"repro/internal/stats"
)

// ForkID labels a chain branch. Fork 0 is the main chain ("A" in Figure 7);
// subsequent forks are lettered in order of emergence.
type ForkID int

// String renders fork labels as letters A, B, C, … like Figure 7.
func (f ForkID) String() string {
	if f < 0 {
		return "?"
	}
	if f < 26 {
		return string(rune('A' + f))
	}
	return fmt.Sprintf("F%d", int(f))
}

// Config parameterizes a grid simulation.
type Config struct {
	// Size is the grid side length; the paper uses 100 for the full
	// 10,000-node network and presents a size-25 grid in Figure 7.
	Size int
	// SpanRatio is Rspan; steps per block = SpanRatio * Size (√N for an
	// N-cell square grid). Default 2.0.
	SpanRatio float64
	// FailureRate is the per-attempt communication failure probability.
	// Default 0.10.
	FailureRate float64
	// AttackerShare is the attacker's fraction of total hash rate.
	// The paper simulates 0.30. Zero disables the attacker.
	AttackerShare float64
	// AttackerCell is the grid coordinate the attacker controls (Figure 7
	// shows the fork emerging at node [7,7]).
	AttackerRow, AttackerCol int
	// BoundaryRadius encloses the attacked region: while the disruption
	// window is active, gossip crossing the Chebyshev-radius boundary
	// around the attacker cell is blocked. This is the paper's "targeted
	// communication disruption, holding [forks] open long enough to achieve
	// attack objectives" (§IV-B); without it any one-block lead floods the
	// whole synchronized grid and forks are all-or-nothing. Zero disables
	// the boundary.
	BoundaryRadius int
	// BoundaryFrom/BoundaryUntil bound the disruption window in time steps
	// (inclusive-exclusive). With both zero and a positive radius, the
	// boundary is active for the whole run.
	BoundaryFrom, BoundaryUntil int
	// Seed fixes the run.
	Seed int64
	// Obs attaches the observability layer (fork births/deaths, cell
	// flips, block events; trace ticks are grid steps). Nil — the default
	// — disables instrumentation with byte-identical output.
	Obs *obs.Observer
	// Faults selects the fault scenario (DESIGN.md §10), realized by a
	// step-driven faults.GridInjector: churned-out cells neither gossip
	// nor mine, faulty links block exchanges, and chaos adds loss on top
	// of FailureRate. The zero value — the default — injects nothing and
	// leaves the run byte-identical to a faultless build. The attacker's
	// anchor cell never churns.
	Faults faults.Scenario
	// StepBudget, when positive, arms the watchdog (DESIGN.md §11): Advance
	// refuses to run past this many total steps and Exhausted latches, so a
	// runaway trial is cancelled at a deterministic point instead of
	// spinning. Zero disarms the watchdog.
	StepBudget int
	// Shards selects the engine (DESIGN.md §13). Zero — the default — runs
	// the legacy sequential engine, byte-identical to every pre-sharding
	// release. Any value >= 1 runs the synchronous sharded engine: the world
	// is partitioned by Router, shards tick concurrently under double
	// buffering, and per-(cell, step) counter-mode randomness makes the
	// output byte-identical at every shard count — shards=1 and shards=16
	// produce the same study. The two engines use different gossip semantics
	// (push-pull exchange vs. pull-only), so 0 and >= 1 are distinct
	// experiments; among sharded runs only performance changes.
	Shards int
	// ShardWorkers bounds the goroutines ticking shards inside one world;
	// <= 0 means one per CPU. Like Workers everywhere else, it never
	// changes results.
	ShardWorkers int
	// Router picks the partitioning scheme for the sharded engine:
	// shard.KindRange (the default) for contiguous bands with the smallest
	// halo, shard.KindRing for consistent hashing with minimal rebalance
	// movement. Output is identical either way — ownership only decides
	// which worker computes a cell.
	Router shard.Kind
	// RebalanceStep/RebalanceShards script a mid-run topology change: at the
	// start of step RebalanceStep the world re-routes onto RebalanceShards
	// shards (a shard join or leave), moving exactly the keys whose owner
	// changes under the new router. Because output is shard-count invariant,
	// a rebalanced run stays byte-identical to an unrebalanced one; only
	// ShardStats records the movement. Zero RebalanceStep disables this.
	RebalanceStep, RebalanceShards int
}

func (c Config) withDefaults() Config {
	if c.SpanRatio == 0 {
		c.SpanRatio = 2.0
	}
	if c.FailureRate == 0 {
		c.FailureRate = 0.10
	}
	return c
}

// Validate rejects unusable parameters.
func (c Config) Validate() error {
	if c.Size < 2 {
		return fmt.Errorf("gridsim: size %d too small", c.Size)
	}
	if c.SpanRatio < 0 {
		return fmt.Errorf("gridsim: negative span ratio %v", c.SpanRatio)
	}
	if c.FailureRate < 0 || c.FailureRate >= 1 {
		return fmt.Errorf("gridsim: failure rate %v outside [0,1)", c.FailureRate)
	}
	if c.AttackerShare < 0 || c.AttackerShare >= 1 {
		return fmt.Errorf("gridsim: attacker share %v outside [0,1)", c.AttackerShare)
	}
	if c.AttackerRow < 0 || c.AttackerRow >= c.Size || c.AttackerCol < 0 || c.AttackerCol >= c.Size {
		return fmt.Errorf("gridsim: attacker cell (%d,%d) outside %dx%d grid",
			c.AttackerRow, c.AttackerCol, c.Size, c.Size)
	}
	if c.BoundaryRadius < 0 {
		return fmt.Errorf("gridsim: negative boundary radius %d", c.BoundaryRadius)
	}
	if c.BoundaryUntil < 0 || c.BoundaryFrom < 0 || (c.BoundaryUntil > 0 && c.BoundaryUntil < c.BoundaryFrom) {
		return fmt.Errorf("gridsim: invalid boundary window [%d, %d)", c.BoundaryFrom, c.BoundaryUntil)
	}
	if c.StepBudget < 0 {
		return fmt.Errorf("gridsim: negative step budget %d", c.StepBudget)
	}
	if c.Shards < 0 {
		return fmt.Errorf("gridsim: negative shard count %d", c.Shards)
	}
	if c.Shards > c.Size*c.Size {
		return fmt.Errorf("gridsim: shard count %d exceeds %d cells", c.Shards, c.Size*c.Size)
	}
	if c.Shards == 0 {
		if c.Router != "" || c.ShardWorkers != 0 || c.RebalanceStep != 0 || c.RebalanceShards != 0 {
			return fmt.Errorf("gridsim: sharding options need Shards >= 1")
		}
		return nil
	}
	if c.RebalanceStep < 0 {
		return fmt.Errorf("gridsim: negative rebalance step %d", c.RebalanceStep)
	}
	if c.RebalanceStep > 0 {
		if c.RebalanceShards < 1 || c.RebalanceShards > c.Size*c.Size {
			return fmt.Errorf("gridsim: rebalance shard count %d outside [1, %d]",
				c.RebalanceShards, c.Size*c.Size)
		}
	} else if c.RebalanceShards != 0 {
		return fmt.Errorf("gridsim: RebalanceShards needs RebalanceStep > 0")
	}
	return nil
}

// boundaryActive reports whether the disruption window covers the current
// step.
func (g *Grid) boundaryActive() bool {
	if g.cfg.BoundaryRadius <= 0 {
		return false
	}
	if g.step < g.cfg.BoundaryFrom {
		return false
	}
	return g.cfg.BoundaryUntil == 0 || g.step < g.cfg.BoundaryUntil
}

// Grid is a running grid simulation. All mutable state lives in flat
// parallel slices so the gossip loop streams contiguous memory, and every
// slice doubles as an arena that Reset reuses across trials.
type Grid struct {
	cfg Config
	// rng is the inlined replica of rand.New(rand.NewSource(seed)) — a
	// value field, so hot-loop draws involve no pointer chase and no
	// interface dispatch, and reseeding in place costs no allocation.
	rng stats.Fast

	// Per-cell state (index = row*Size + col): the fork the cell follows,
	// that fork's height at this cell, and the 64-bit MD5-linked hash of
	// its chain (the paper's per-node internal error check).
	fork   []int32
	height []int32
	link   []blockchain.Hash

	// Per-fork state (index = ForkID). fTainted[id] caches whether the
	// fork is counterfeit or descends from one; it is fixed at fork birth
	// (parent and counterfeit never change), turning the old
	// ancestry-walking onCounterfeit into one slice load.
	fParent      []int32
	fBase        []int32
	fTip         []int32
	fTipLink     []blockchain.Hash
	fCounterfeit []bool
	fTainted     []bool

	// region is a bitset over cells: bit i set when cell i lies within the
	// attack boundary (Chebyshev radius around the attacker cell),
	// precomputed so the hot loop never recomputes div/mod geometry.
	region      []uint64
	attackerIdx int

	step          int
	stepsPerBlock int
	// blocksMined counts total block events (honest + attacker).
	blocksMined int
	// forksEmerged counts branches created after genesis (fork A excluded).
	forksEmerged int
	// nbrs/nbrOff cache every cell's Moore neighborhood in one flat backing
	// slice: cell i's neighbors are nbrs[nbrOff[i]:nbrOff[i+1]]. One
	// allocation for the whole grid instead of one slice per cell, and the
	// gossip hot loop walks contiguous memory. cross parallels nbrs:
	// cross[e] is 1 when edge e straddles the attack boundary, so the hot
	// loop's disruption check is a single byte load per contact.
	nbrs   []int32
	nbrOff []int32
	cross  []uint8
	// rejMax[i] is the Int31n rejection threshold for cell i's neighbor
	// count, or -1 when the count is a power of two (maskable). Precomputed
	// so the hot loop's neighbor pick composes directly on rng.Uint64 with
	// no per-contact divide.
	rejMax []int32
	// failThresh is the integer form of the failure Bernoulli: the smallest
	// 63-bit draw x with float64(x)/2^63 >= FailureRate, so the hot loop
	// compares raw draws with no int-to-float conversion (see
	// float01Threshold).
	failThresh int64
	// faults is the step-driven injector, nil when Config.Faults is the
	// zero value — the faultless hot loop contains no fault checks at all
	// (communicate dispatches to a separate faulty variant).
	faults *faults.GridInjector
	// exhausted latches once Advance refuses to cross Config.StepBudget.
	exhausted bool

	// fcCounts/fcBuf back ForkCounts: per-fork follower tallies and the
	// returned slice, reused call over call.
	fcCounts []int32
	fcBuf    []ForkCount

	// Sharded-engine state (DESIGN.md §13), live only when cfg.Shards >= 1.
	// plan partitions the cells, gang ticks the shards, and nextFork/
	// nextHeight/nextLink double-buffer the per-cell state so every shard
	// reads a frozen tick and writes only its own cells. tickKey is the
	// per-step base of the counter-mode draws; failThresh53 is the failure
	// Bernoulli threshold on 53-bit counter draws (see float53Threshold).
	plan         *shard.Plan
	gang         *parallel.Gang
	tickFn       func(int)
	adjFn        func(int) []int32
	nextFork     []int32
	nextHeight   []int32
	nextLink     []blockchain.Hash
	tickBase     uint64
	tickKey      uint64
	failThresh53 int64
	// Per-shard tick tallies, folded in shard order at the barrier:
	// cross-shard pull counts always, flip counts and fork-population
	// deltas only while observability is on. popPrev is the pre-fold
	// population scratch that detects fork deaths.
	shCross    []int64
	shFlips    []int64
	shPopDelta [][]int32
	popPrev    []int
	shardStats ShardStats

	// Observability (DESIGN.md §9). obsOn gates fork-population tracking
	// so the uninstrumented hot loop pays a single bool check per
	// adoption; forkPop counts followers per fork and is maintained only
	// while obsOn, to notice fork deaths.
	obsOn          bool
	forkPop        []int
	obsTrace       *obs.Tracer
	obsFlips       *obs.Counter
	obsForkBirths  *obs.Counter
	obsForkDeaths  *obs.Counter
	obsHonestBlk   *obs.Counter
	obsAttackerBlk *obs.Counter
}

// FromConfig builds a grid simulation from an explicit Config. All cells
// start on fork A at height 0 with the same genesis link. Most callers use
// New with functional options (options.go); FromConfig is the escape hatch
// for code that assembles configurations programmatically.
func FromConfig(cfg Config) (*Grid, error) {
	g := &Grid{}
	if err := g.ResetConfig(cfg); err != nil {
		return nil, err
	}
	return g, nil
}

// Reset restarts the grid from step zero under a new seed, reusing every
// backing arena. It is byte-identical to New with the same configuration:
// the pooled ensemble in RunTrials relies on Reset being indistinguishable
// from a fresh grid.
func (g *Grid) Reset(seed int64) error {
	cfg := g.cfg
	cfg.Seed = seed
	return g.ResetConfig(cfg)
}

// ResetConfig restarts the grid in place under a full new configuration.
// Arenas are reused whenever the grid shape allows: same Size keeps the
// neighbor cache, and all per-cell and per-fork slices recycle their
// backing arrays. Only the fault injector (rare, off the benchmark path)
// and observer bindings are rebuilt per reset.
func (g *Grid) ResetConfig(cfg Config) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	sameSize := g.cfg.Size == cfg.Size && g.nbrOff != nil
	g.cfg = cfg
	g.rng.Seed(cfg.Seed)
	n := cfg.Size * cfg.Size
	g.stepsPerBlock = int(math.Round(cfg.SpanRatio * float64(cfg.Size)))
	if g.stepsPerBlock < 1 {
		g.stepsPerBlock = 1
	}
	g.step, g.blocksMined, g.forksEmerged = 0, 0, 0
	g.exhausted = false

	genesis := blockchain.Genesis()
	g.fork = resizeI32(g.fork, n)
	g.height = resizeI32(g.height, n)
	g.link = resizeHash(g.link, n)
	for i := 0; i < n; i++ {
		g.fork[i] = 0
		g.height[i] = 0
		g.link[i] = genesis.Hash
	}
	g.fParent = append(g.fParent[:0], -1)
	g.fBase = append(g.fBase[:0], 0)
	g.fTip = append(g.fTip[:0], 0)
	g.fTipLink = append(g.fTipLink[:0], genesis.Hash)
	g.fCounterfeit = append(g.fCounterfeit[:0], false)
	g.fTainted = append(g.fTainted[:0], false)

	if !sameSize {
		g.nbrs = make([]int32, 0, n*8)
		g.nbrOff = make([]int32, n+1)
		for i := 0; i < n; i++ {
			g.nbrOff[i] = int32(len(g.nbrs))
			g.nbrs = g.appendNeighbors(g.nbrs, i)
		}
		g.nbrOff[n] = int32(len(g.nbrs))
	}

	g.attackerIdx = g.idx(cfg.AttackerRow, cfg.AttackerCol)
	words := (n + 63) / 64
	g.region = resizeU64(g.region, words)
	for w := range g.region {
		g.region[w] = 0
	}
	for i := 0; i < n; i++ {
		row, col := i/cfg.Size, i%cfg.Size
		dr, dc := row-cfg.AttackerRow, col-cfg.AttackerCol
		if dr < 0 {
			dr = -dr
		}
		if dc < 0 {
			dc = -dc
		}
		d := dr
		if dc > d {
			d = dc
		}
		if d <= cfg.BoundaryRadius {
			g.region[uint(i)>>6] |= 1 << (uint(i) & 63)
		}
	}
	if cap(g.cross) >= len(g.nbrs) {
		g.cross = g.cross[:len(g.nbrs)]
	} else {
		g.cross = make([]uint8, len(g.nbrs))
	}
	g.rejMax = resizeI32(g.rejMax, n)
	for i := 0; i < n; i++ {
		for e := g.nbrOff[i]; e < g.nbrOff[i+1]; e++ {
			g.cross[e] = uint8(g.regionBit(i) ^ g.regionBit(int(g.nbrs[e])))
		}
		deg := g.nbrOff[i+1] - g.nbrOff[i]
		if deg&(deg-1) == 0 {
			g.rejMax[i] = -1
		} else {
			g.rejMax[i] = int32((1 << 31) - 1 - (1<<31)%uint32(deg))
		}
	}
	g.failThresh = float01Threshold(cfg.FailureRate)

	g.faults = nil
	if cfg.Faults.Enabled() {
		// Scenario durations are converted to steps through the paper's
		// Tdelay = Tblock / (Rspan·√N), so one scenario means the same
		// physical fault load here as in the event-driven simulator.
		stepDur := mining.BlockInterval / time.Duration(g.stepsPerBlock)
		exempt := -1
		if cfg.AttackerShare > 0 {
			exempt = g.attackerIdx
		}
		injector, err := faults.NewGridInjector(cfg.Faults,
			parallel.DeriveSeed(cfg.Seed, faultsSeedSalt), n, stepDur, exempt, cfg.Obs)
		if err != nil {
			return fmt.Errorf("gridsim: %w", err)
		}
		g.faults = injector
	}

	g.obsOn = false
	g.obsTrace, g.obsFlips, g.obsForkBirths, g.obsForkDeaths = nil, nil, nil, nil
	g.obsHonestBlk, g.obsAttackerBlk = nil, nil
	if o := cfg.Obs; o != nil && (o.Registry() != nil || o.Tracer() != nil) {
		g.obsOn = true
		g.forkPop = append(g.forkPop[:0], n) // every cell starts on fork A
		reg := o.Registry()
		g.obsTrace = o.Tracer()
		g.obsFlips = reg.Counter("gridsim.cell_flips")
		g.obsForkBirths = reg.Counter("gridsim.fork_births")
		g.obsForkDeaths = reg.Counter("gridsim.fork_deaths")
		g.obsHonestBlk = reg.Counter("gridsim.blocks_mined", obs.L("miner", "honest"))
		g.obsAttackerBlk = reg.Counter("gridsim.blocks_mined", obs.L("miner", "attacker"))
	}

	g.plan, g.gang, g.tickFn = nil, nil, nil
	g.shardStats = ShardStats{}
	if cfg.Shards >= 1 {
		if err := g.resetSharded(cfg, n); err != nil {
			return err
		}
	}
	return nil
}

// resizeI32 returns a slice of length n, reusing s's backing array when it
// is large enough.
func resizeI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

// resizeU64 returns a slice of length n, reusing s's backing array when it
// is large enough.
func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint64, n)
}

// resizeHash returns a slice of length n, reusing s's backing array when it
// is large enough.
func resizeHash(s []blockchain.Hash, n int) []blockchain.Hash {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]blockchain.Hash, n)
}

// regionBit returns 1 when cell i lies within the attack boundary.
//
//hot:path
func (g *Grid) regionBit(i int) uint64 {
	return g.region[uint(i)>>6] >> (uint(i) & 63) & 1
}

// trackFlip maintains the fork-population ledger while observability is
// on: a cell moved from one fork to another, which may kill the old fork.
// Callers gate on g.obsOn.
func (g *Grid) trackFlip(from, to ForkID) {
	g.obsFlips.Inc()
	for int(to) >= len(g.forkPop) {
		g.forkPop = append(g.forkPop, 0)
	}
	g.forkPop[from]--
	g.forkPop[to]++
	if g.forkPop[from] == 0 {
		g.obsForkDeaths.Inc()
		g.obsTrace.Emit(int64(g.step), "gridsim", "fork_death",
			obs.F("fork", from.String()))
	}
}

// trackBirth records a freshly created branch. Callers gate on g.obsOn.
func (g *Grid) trackBirth(id ForkID) {
	g.obsForkBirths.Inc()
	g.obsTrace.Emit(int64(g.step), "gridsim", "fork_birth",
		obs.F("fork", id.String()),
		obs.F("parent", ForkID(g.fParent[id]).String()),
		obs.Fint("base_height", int64(g.fBase[id])),
		obs.Fbool("counterfeit", g.fCounterfeit[id]))
}

// adopt copies src's chain view into dst, tracking the fork flip when
// observability is on. It is the single adoption point of the gossip loop.
//
//hot:path
func (g *Grid) adopt(dst, src int) {
	if g.obsOn && g.fork[dst] != g.fork[src] {
		//lint:ignore hotescape trackFlip's forkPop append is amortized (grow-once ledger) and only runs with observability on
		g.trackFlip(ForkID(g.fork[dst]), ForkID(g.fork[src]))
	}
	g.fork[dst] = g.fork[src]
	g.height[dst] = g.height[src]
	g.link[dst] = g.link[src]
}

// StepsPerBlock returns the number of communication steps per block
// interval implied by the span ratio.
func (g *Grid) StepsPerBlock() int { return g.stepsPerBlock }

// Exhausted reports whether an Advance was cancelled by the step budget.
func (g *Grid) Exhausted() bool { return g.exhausted }

// BudgetErr returns nil, or the watchdog cancellation as an error wrapping
// checkpoint.ErrBudget so supervised runners journal the trial as exhausted
// rather than quarantined.
func (g *Grid) BudgetErr() error {
	if !g.exhausted {
		return nil
	}
	return fmt.Errorf("%w: step budget %d hit with the run unfinished",
		checkpoint.ErrBudget, g.cfg.StepBudget)
}

// Step returns the current time step.
func (g *Grid) Step() int { return g.step }

// BlocksMined returns the number of block events so far.
func (g *Grid) BlocksMined() int { return g.blocksMined }

// ForksEmerged returns how many forks (beyond the main chain) appeared.
func (g *Grid) ForksEmerged() int { return g.forksEmerged }

// NumCells returns the number of cells in the grid.
func (g *Grid) NumCells() int { return len(g.fork) }

func (g *Grid) idx(row, col int) int { return row*g.cfg.Size + col }

// neighbors returns the cached Moore (8-cell) neighborhood, matching
// Bitcoin's default of 8 peers, clipped at the grid boundary.
func (g *Grid) neighbors(i int) []int32 { return g.nbrs[g.nbrOff[i]:g.nbrOff[i+1]] }

func (g *Grid) appendNeighbors(out []int32, i int) []int32 {
	size := g.cfg.Size
	row, col := i/size, i%size
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			r, c := row+dr, col+dc
			if r < 0 || r >= size || c < 0 || c >= size {
				continue
			}
			out = append(out, int32(g.idx(r, c)))
		}
	}
	return out
}

// faultsSeedSalt namespaces the fault-injection streams off the run seed
// (the grid injector further namespaces its own families), so enabling a
// scenario never perturbs any existing simulation draw.
const faultsSeedSalt = 0xFA17

// Advance runs n time steps. Each step: churned cells flip state (faults
// on), every up cell makes one communication attempt with a random
// neighbor (adopting the neighbor's chain if strictly higher, longest-chain
// rule), and every stepsPerBlock steps one block is mined by the attacker
// (probability AttackerShare) or the honest network.
func (g *Grid) Advance(n int) {
	if g.cfg.Shards >= 1 {
		g.advanceSharded(n)
		return
	}
	for i := 0; i < n; i++ {
		if g.cfg.StepBudget > 0 && g.step >= g.cfg.StepBudget {
			g.exhausted = true
			return
		}
		g.step++
		if g.faults != nil {
			g.faults.StepChurn(g.step)
		}
		if g.faults != nil {
			g.communicateFaulty()
		} else {
			g.communicate()
		}
		if g.stepsPerBlock > 0 && g.step%g.stepsPerBlock == 0 {
			g.mineBlock()
		}
	}
}

// oneThresh is the smallest 63-bit draw whose Float64 derivation rounds to
// exactly 1.0 — the band math/rand redraws. Hoisted so the hot loops test
// it as a raw integer compare.
var oneThresh = float01Threshold(1)

// float01Threshold returns the smallest 63-bit draw x such that
// float64(x)/2^63 >= p. The mapping from draw to variate is monotone, so
// "variate < p" is exactly "draw < threshold": the hot loops compare raw
// integer draws against a precomputed threshold instead of converting
// every draw to a float. The search evaluates the real derivation, double
// rounding included, so the boundary cases where float64(x) rounds onto p
// land on the same side as math/rand's comparison.
func float01Threshold(p float64) int64 {
	lo, hi := int64(0), int64(math.MaxInt64)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if float64(mid)/(1<<63) >= p {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// communicate performs one gossip attempt per cell in index order — the
// faultless hot loop. The per-cell draw order (failure Bernoulli, then
// neighbor pick) and every branch predicate are identical to the faulty
// variant minus its injector checks, which keeps a zero-value Faults
// config byte-identical to a faultless build. Equal heights are rejected
// before any fork lookup: no adoption rule fires on a tie (the attacker
// pushes and the symmetric exchange adopts only on strict inequality), and
// in a mostly synced grid ties are the common case.
//
// Both per-cell draws are composed directly on rng.Uint64 — the only Fast
// method small enough to inline — rather than calling Float64/Int31n:
// the derivations below are line-for-line those of rand.Rand.Float64 and
// rand.Rand.Int31n (with the rejection threshold precomputed in rejMax),
// so the stream is draw-identical; TestFastMatchesMathRand pins the method
// forms and the integration goldens pin these fused forms.
//
//hot:path
func (g *Grid) communicate() {
	attacker := -1
	if g.cfg.AttackerShare > 0 {
		attacker = g.attackerIdx
	}
	boundary := g.boundaryActive()
	thresh := g.failThresh
	n := len(g.fork)
	for i := 0; i < n; i++ {
		// Bernoulli(p) = Float64() < p, as pure integer compares: draws in
		// the rounds-to-1.0 band are redrawn exactly as math/rand does, and
		// the failure test is draw < float01Threshold(p).
		x := int64(g.rng.Uint64() &^ (1 << 63))
		for x >= oneThresh {
			x = int64(g.rng.Uint64() &^ (1 << 63))
		}
		if x < thresh {
			continue
		}
		// Int31n(deg): mask when deg is a power of two, otherwise
		// reject-and-mod against the precomputed threshold.
		lo := g.nbrOff[i]
		w := int32((g.rng.Uint64() &^ (1 << 63)) >> 32)
		var k int32
		if m := g.rejMax[i]; m < 0 {
			k = w & (g.nbrOff[i+1] - lo - 1)
		} else {
			for w > m {
				w = int32((g.rng.Uint64() &^ (1 << 63)) >> 32)
			}
			k = w % (g.nbrOff[i+1] - lo)
		}
		e := lo + k
		// Targeted communication disruption: while the attack boundary is
		// active, gossip crossing it is blocked.
		if boundary && g.cross[e] != 0 {
			continue
		}
		j := int(g.nbrs[e])
		hi, hj := g.height[i], g.height[j]
		if hi == hj {
			continue
		}
		// Once the attacker's cell is on the counterfeit branch it never
		// adopts the honest chain — it is the anchor that keeps the branch
		// alive (§V-B: the attacker "sustains" the isolated portion "with
		// successive forks"). Before the attack fork exists it behaves
		// honestly. Attacker only pushes, never pulls.
		if i == attacker {
			if g.fTainted[g.fork[i]] {
				if hi > hj {
					g.adopt(j, i)
				}
				continue
			}
		} else if j == attacker {
			if g.fTainted[g.fork[j]] {
				if hj > hi {
					g.adopt(i, j)
				}
				continue
			}
		}
		// Symmetric exchange: the lower-height side adopts the higher.
		if hi > hj {
			g.adopt(j, i)
		} else {
			g.adopt(i, j)
		}
	}
}

// communicateFaulty is communicate with the fault-injector checks woven
// back in, kept as a separate loop so the faultless path pays nothing for
// them.
//
//hot:path
func (g *Grid) communicateFaulty() {
	attacker := -1
	if g.cfg.AttackerShare > 0 {
		attacker = g.attackerIdx
	}
	boundary := g.boundaryActive()
	thresh := g.failThresh
	n := len(g.fork)
	for i := 0; i < n; i++ {
		// A churned-out cell makes no communication attempt at all — its rng
		// draws are skipped entirely, like a node that simply is not there.
		if g.faults.Down(i) {
			continue
		}
		// Fused integer-threshold Bernoulli and Int31n draws — see communicate.
		x := int64(g.rng.Uint64() &^ (1 << 63))
		for x >= oneThresh {
			x = int64(g.rng.Uint64() &^ (1 << 63))
		}
		if x < thresh {
			continue
		}
		lo := g.nbrOff[i]
		w := int32((g.rng.Uint64() &^ (1 << 63)) >> 32)
		var k int32
		if m := g.rejMax[i]; m < 0 {
			k = w & (g.nbrOff[i+1] - lo - 1)
		} else {
			for w > m {
				w = int32((g.rng.Uint64() &^ (1 << 63)) >> 32)
			}
			k = w % (g.nbrOff[i+1] - lo)
		}
		e := lo + k
		if boundary && g.cross[e] != 0 {
			continue
		}
		j := int(g.nbrs[e])
		// Fault injection: a down partner, a dead/flapping/one-way link, or
		// chaos loss kills the exchange (DESIGN.md §10).
		if g.faults.Down(j) || !g.faults.Allow(i, j, g.step) || g.faults.ChaosLoss() {
			continue
		}
		hi, hj := g.height[i], g.height[j]
		if hi == hj {
			continue
		}
		if i == attacker {
			if g.fTainted[g.fork[i]] {
				if hi > hj {
					g.adopt(j, i)
				}
				continue
			}
		} else if j == attacker {
			if g.fTainted[g.fork[j]] {
				if hj > hi {
					g.adopt(i, j)
				}
				continue
			}
		}
		if hi > hj {
			g.adopt(j, i)
		} else {
			g.adopt(i, j)
		}
	}
}

// mineBlock resolves one block event.
func (g *Grid) mineBlock() {
	g.blocksMined++
	if g.cfg.AttackerShare > 0 && g.rng.Bernoulli(g.cfg.AttackerShare) {
		g.obsAttackerBlk.Inc()
		g.mineAttacker()
		return
	}
	g.obsHonestBlk.Inc()
	g.mineHonest()
}

// newFork appends a branch rooted at parent and returns its id. The taint
// flag — counterfeit or descended from counterfeit — is computed here,
// once, because a fork's parent and counterfeit bit never change.
func (g *Grid) newFork(parent int32, base int32, tipLink blockchain.Hash, counterfeit bool) ForkID {
	id := ForkID(len(g.fParent))
	g.fParent = append(g.fParent, parent)
	g.fBase = append(g.fBase, base)
	g.fTip = append(g.fTip, base+1)
	g.fTipLink = append(g.fTipLink, tipLink)
	g.fCounterfeit = append(g.fCounterfeit, counterfeit)
	g.fTainted = append(g.fTainted, counterfeit || g.fTainted[parent])
	g.forksEmerged++
	return id
}

// mineHonest extends the chain at a uniformly random cell that follows an
// honest branch — the paper's model keeps the honest 70% of hash power on
// the main network, which is why the longer chain A eventually overwhelms
// the attacker's fork (Figure 7(c)). If the mining cell's local view is the
// tip of its fork, the fork simply grows; if the view is stale (the miner
// has not heard the latest block yet), a new competing branch emerges —
// exactly how natural forks arise from propagation delay.
func (g *Grid) mineHonest() {
	i := g.pickHonestCell()
	f := g.fork[i]
	if g.fTainted[f] {
		// The whole grid is captured: the honest miners (whose hash power is
		// not tied to captured full nodes) publish on the tallest honest
		// fork, re-seeding it at this cell.
		t := g.tallestHonestFork()
		g.fTip[t]++
		g.fTipLink[t] = blockchain.HashBlock(g.fTipLink[t], int(g.fTip[t]), 0, 0, nil, false)
		if g.obsOn && f != t {
			g.trackFlip(ForkID(f), ForkID(t))
		}
		g.fork[i] = t
		g.height[i] = g.fTip[t]
		g.link[i] = g.fTipLink[t]
		return
	}
	if g.height[i] == g.fTip[f] && g.link[i] == g.fTipLink[f] {
		g.fTip[f]++
		g.fTipLink[f] = blockchain.HashBlock(g.fTipLink[f], int(g.fTip[f]), 0, 0, nil, false)
		g.height[i] = g.fTip[f]
		g.link[i] = g.fTipLink[f]
		return
	}
	// Stale view: a new branch is born on top of the miner's local state.
	nf := g.newFork(f, g.height[i],
		blockchain.HashBlock(g.link[i], int(g.height[i])+1, 0, 0, nil, false), false)
	if g.obsOn {
		g.trackBirth(nf)
		g.trackFlip(ForkID(f), nf)
	}
	g.fork[i] = int32(nf)
	g.height[i] = g.fTip[nf]
	g.link[i] = g.fTipLink[nf]
}

// pickHonestCell samples a uniformly random cell following an honest branch
// (and outside an active attack boundary — the honest hash power publishes
// on the main network), falling back to any cell when none remain.
func (g *Grid) pickHonestCell() int {
	boundary := g.boundaryActive()
	n := len(g.fork)
	// Rejection sampling keeps the common case O(1); bounded attempts avoid
	// degenerate loops when nearly everything is captured.
	for attempt := 0; attempt < 64; attempt++ {
		i := g.rng.Intn(n)
		if g.fTainted[g.fork[i]] {
			continue
		}
		if boundary && g.regionBit(i) != 0 {
			continue
		}
		// Churned-out cells are not publishing anyone's blocks.
		if g.faults != nil && g.faults.Down(i) {
			continue
		}
		return i
	}
	return g.rng.Intn(n)
}

// tallestHonestFork returns the untainted fork with the greatest tip
// height (ties favor the earliest fork). Fork 0 is never tainted, so the
// result is always valid.
func (g *Grid) tallestHonestFork() int32 {
	best := int32(-1)
	var bestTip int32
	for id := range g.fParent {
		if g.fTainted[id] {
			continue
		}
		if best < 0 || g.fTip[id] > bestTip {
			best, bestTip = int32(id), g.fTip[id]
		}
	}
	return best
}

// mineAttacker extends (or creates) the counterfeit branch anchored at the
// attacker's cell.
func (g *Grid) mineAttacker() {
	i := g.attackerIdx
	f := g.fork[i]
	if !g.fCounterfeit[f] {
		// First attack block: branch off the attacker's current view.
		nf := g.newFork(f, g.height[i],
			blockchain.HashBlock(g.link[i], int(g.height[i])+1, 1, 0, nil, true), true)
		if g.obsOn {
			g.trackBirth(nf)
			g.trackFlip(ForkID(f), nf)
		}
		g.fork[i] = int32(nf)
		g.height[i] = g.fTip[nf]
		g.link[i] = g.fTipLink[nf]
		return
	}
	g.fTip[f]++
	g.fTipLink[f] = blockchain.HashBlock(g.fTipLink[f], int(g.fTip[f]), 1, 0, nil, true)
	g.height[i] = g.fTip[f]
	g.link[i] = g.fTipLink[f]
}

// ForkCount is one branch's follower tally.
type ForkCount struct {
	Fork  ForkID
	Cells int
}

// ForkCounts tallies the cells following each live fork, sorted by fork id
// ascending. The returned slice is an internal buffer reused call over
// call: it is valid until the next ForkCounts or Snapshot on this grid.
// This is the allocation-free form of Snapshot's ForkCounts map for
// per-step observers.
func (g *Grid) ForkCounts() []ForkCount {
	nf := len(g.fParent)
	g.fcCounts = resizeI32(g.fcCounts, nf)
	for i := range g.fcCounts {
		g.fcCounts[i] = 0
	}
	for _, f := range g.fork {
		g.fcCounts[f]++
	}
	g.fcBuf = g.fcBuf[:0]
	for id, c := range g.fcCounts {
		if c > 0 {
			g.fcBuf = append(g.fcBuf, ForkCount{Fork: ForkID(id), Cells: int(c)})
		}
	}
	return g.fcBuf
}

// MaxHeight returns the global best height across all cells.
func (g *Grid) MaxHeight() int {
	var m int32
	for _, h := range g.height {
		if h > m {
			m = h
		}
	}
	return int(m)
}

// StaleCells returns the number of cells strictly behind the global best
// height.
func (g *Grid) StaleCells() int {
	var m int32
	for _, h := range g.height {
		if h > m {
			m = h
		}
	}
	n := 0
	for _, h := range g.height {
		if h < m {
			n++
		}
	}
	return n
}

// Snapshot captures the observable state of the grid at the current step.
type Snapshot struct {
	Step int
	// ForkCounts maps fork label to the number of cells following it.
	ForkCounts map[ForkID]int
	// MaxHeight is the global best height across all cells.
	MaxHeight int
	// LagCounts[k] is the number of cells k blocks behind MaxHeight,
	// bucketed like Figure 6: index 0 synced, 1, 2 (2-4), 3 (5-10), 4 (>10).
	Lag [5]int
}

// Snapshot returns the current state summary. It allocates a fresh
// ForkCounts map and is meant for rendered output paths; hot per-step
// observers should use ForkCounts, MaxHeight, and StaleCells instead.
func (g *Grid) Snapshot() Snapshot {
	s := Snapshot{Step: g.step, ForkCounts: map[ForkID]int{}}
	for _, fc := range g.ForkCounts() {
		s.ForkCounts[fc.Fork] = fc.Cells
	}
	var max int32
	for _, h := range g.height {
		if h > max {
			max = h
		}
	}
	s.MaxHeight = int(max)
	for _, h := range g.height {
		behind := max - h
		switch {
		case behind <= 0:
			s.Lag[0]++
		case behind == 1:
			s.Lag[1]++
		case behind <= 4:
			s.Lag[2]++
		case behind <= 10:
			s.Lag[3]++
		default:
			s.Lag[4]++
		}
	}
	return s
}

// CounterfeitCells returns how many cells currently follow an
// attacker-produced branch (directly or via a descendant branch).
func (g *Grid) CounterfeitCells() int {
	n := 0
	for _, f := range g.fork {
		if g.fTainted[f] {
			n++
		}
	}
	return n
}

// Render draws the grid as ASCII, one letter per cell giving its fork
// label, mirroring Figure 7's colour maps.
func (g *Grid) Render() string {
	var b strings.Builder
	for r := 0; r < g.cfg.Size; r++ {
		for c := 0; c < g.cfg.Size; c++ {
			b.WriteString(ForkID(g.fork[g.idx(r, c)]).String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DominantFork returns the fork followed by the most cells and its count.
func (s Snapshot) DominantFork() (ForkID, int) {
	best, bestN := ForkID(-1), -1
	for id, n := range s.ForkCounts {
		if n > bestN || (n == bestN && id < best) {
			best, bestN = id, n
		}
	}
	return best, bestN
}
