package gridsim

import (
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/shard"
)

// Option mutates a Config under construction, mirroring netsim.New and
// core.New so every simulator in the repository is built the same way.
type Option func(*Config)

// New builds a grid simulation from a seed and options. The baseline is
// the paper's Figure 7 grid — size 25, span ratio 2.0, 10% failure rate,
// no attacker, no faults — so `gridsim.New(seed)` alone is a runnable
// honest world and each option adjusts one axis:
//
//	g, err := gridsim.New(1,
//		gridsim.WithSize(100),
//		gridsim.WithAttacker(0.30, 7, 7),
//		gridsim.WithBoundary(5, 0, 200),
//		gridsim.WithShards(16),
//	)
//
// FromConfig remains the raw-struct escape hatch; New(seed, opts...) is
// exactly FromConfig(NewConfig(seed, opts...)).
func New(seed int64, opts ...Option) (*Grid, error) {
	return FromConfig(NewConfig(seed, opts...))
}

// NewConfig assembles the Config that New would run: the Figure 7 baseline
// under the given seed, with every option applied in order. Exposed so
// ensemble entry points (RunTrials, RunHealStudy) and tests can build a
// configuration via options and still tweak or reuse it as a value.
func NewConfig(seed int64, opts ...Option) Config {
	cfg := Config{Size: 25, Seed: seed}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithSize sets the grid side length (Size² cells).
func WithSize(size int) Option { return func(c *Config) { c.Size = size } }

// WithSpanRatio sets Rspan: steps per block = SpanRatio · Size.
func WithSpanRatio(r float64) Option { return func(c *Config) { c.SpanRatio = r } }

// WithFailureRate sets the per-attempt communication failure probability.
func WithFailureRate(p float64) Option { return func(c *Config) { c.FailureRate = p } }

// WithAttacker arms the attacker: hash-rate share and anchor cell.
func WithAttacker(share float64, row, col int) Option {
	return func(c *Config) {
		c.AttackerShare = share
		c.AttackerRow, c.AttackerCol = row, col
	}
}

// WithBoundary encloses the attacked region: Chebyshev radius around the
// attacker cell and the [from, until) step window (until 0 = whole run).
func WithBoundary(radius, from, until int) Option {
	return func(c *Config) {
		c.BoundaryRadius = radius
		c.BoundaryFrom, c.BoundaryUntil = from, until
	}
}

// WithObserver attaches the observability layer.
func WithObserver(o *obs.Observer) Option { return func(c *Config) { c.Obs = o } }

// WithFaults selects the fault scenario.
func WithFaults(sc faults.Scenario) Option { return func(c *Config) { c.Faults = sc } }

// WithStepBudget arms the runaway-trial watchdog.
func WithStepBudget(steps int) Option { return func(c *Config) { c.StepBudget = steps } }

// WithShards switches the world onto the sharded engine with k shards
// (DESIGN.md §13). Output is byte-identical for every k >= 1.
func WithShards(k int) Option { return func(c *Config) { c.Shards = k } }

// WithShardWorkers bounds the goroutines ticking shards inside this world;
// <= 0 means one per CPU. Never changes results.
func WithShardWorkers(w int) Option { return func(c *Config) { c.ShardWorkers = w } }

// WithRouter picks the partitioning scheme for the sharded engine.
func WithRouter(kind shard.Kind) Option { return func(c *Config) { c.Router = kind } }

// WithRebalance scripts a mid-run topology change: at the start of the
// given step, re-route the world onto the given shard count.
func WithRebalance(step, shards int) Option {
	return func(c *Config) {
		c.RebalanceStep, c.RebalanceShards = step, shards
	}
}
