package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// SchemaV1 names the first (current) trace schema version. A JSONL export
// begins with a header line carrying this string; decoders reject exports
// with an unknown schema.
const SchemaV1 = "obs.trace.v1"

// DefaultTraceCapacity is the ring-buffer size used when NewTracer is
// given a non-positive capacity.
const DefaultTraceCapacity = 1 << 16

// Field is one key/value pair attached to an event. Values are
// pre-rendered strings so encoding never depends on float formatting
// quirks across Go versions.
type Field struct {
	K string `json:"k"`
	V string `json:"v"`
}

// F builds a string field.
func F(k, v string) Field { return Field{K: k, V: v} }

// Fint builds an integer field.
func Fint(k string, v int64) Field { return Field{K: k, V: strconv.FormatInt(v, 10)} }

// Fuint builds an unsigned-integer field.
func Fuint(k string, v uint64) Field { return Field{K: k, V: strconv.FormatUint(v, 10)} }

// Ffloat builds a float field rendered with %g semantics.
func Ffloat(k string, v float64) Field {
	return Field{K: k, V: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Fbool builds a boolean field.
func Fbool(k string, v bool) Field { return Field{K: k, V: strconv.FormatBool(v)} }

// Event is one traced occurrence. Seq is the tracer-assigned sequence
// number (dense, starting at 0, counting every emitted event including
// ones later evicted from the ring). Tick is the caller-supplied
// simulation time: Engine.Now() in nanoseconds for the event-driven
// simulators, the step counter in gridsim. Scope names the emitting
// subsystem ("p2p", "netsim", "gridsim", "attack"), Type the event kind.
type Event struct {
	Seq    uint64  `json:"seq"`
	Tick   int64   `json:"tick"`
	Scope  string  `json:"scope"`
	Type   string  `json:"type"`
	Fields []Field `json:"fields,omitempty"`
}

// Tracer is a bounded in-memory event log. When the ring fills, the
// oldest events are evicted and counted in Dropped — exports always note
// how many events were lost. All methods are nil-safe.
//
// Dropped-event contract: eviction is strictly oldest-first, and Seq stays
// dense across evictions (it counts every Emit, not every survivor), so a
// consumer can detect a gap by comparing the first surviving Seq against 0
// and Dropped against the export header. Replay-style consumers must
// tolerate truncated prefixes: attack.ReplaySummaries, for example, reads
// only the "summary" events each plan emits at completion, so the most
// recent plans' summaries survive any overflow, while a plan whose summary
// was followed by at least capacity further events is silently absent from
// the replay map — callers distinguish "plan never ran" from "summary
// evicted" via TraceLog.Dropped, never by assuming the map is complete.
type Tracer struct {
	mu       sync.Mutex
	ring     []Event
	capacity int // ring bound; storage grows lazily up to it
	start    int // index of the oldest event
	n        int // events currently held
	seq      uint64
	dropped  uint64
}

// NewTracer returns a tracer holding up to capacity events (<= 0 selects
// DefaultTraceCapacity). Storage grows on demand, so a short run never pays
// for the full capacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{capacity: capacity}
}

// Emit records one event at the given simulation tick. A nil tracer is a
// no-op.
func (t *Tracer) Emit(tick int64, scope, typ string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := Event{Seq: t.seq, Tick: tick, Scope: scope, Type: typ, Fields: fields}
	t.seq++
	if t.n < t.capacity {
		if len(t.ring) == cap(t.ring) {
			// Doubling growth clamped to the ring bound: amortized O(1)
			// without ever allocating beyond the configured capacity.
			newCap := 2 * cap(t.ring)
			if newCap == 0 {
				newCap = 64
			}
			if newCap > t.capacity {
				newCap = t.capacity
			}
			grown := make([]Event, len(t.ring), newCap)
			copy(grown, t.ring)
			t.ring = grown
		}
		t.ring = append(t.ring, ev)
		t.n++
		return
	}
	// Ring is full: overwrite the oldest slot.
	t.ring[t.start] = ev
	t.start = (t.start + 1) % len(t.ring)
	t.dropped++
}

// Len returns the number of events currently held (0 for a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were evicted from the ring (0 for a nil
// tracer).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// EventsSince returns the held events whose sequence number is at least
// seq, oldest-first, plus the cursor to pass next time (one past the newest
// event ever emitted, whether or not it survived the ring). A live consumer
// — the partitiond trace stream — polls this with its advancing cursor and
// receives each event exactly once; events evicted before a poll are simply
// absent, which the dense Seq numbering makes detectable. A nil tracer
// returns (nil, seq).
func (t *Tracer) EventsSince(seq uint64) ([]Event, uint64) {
	if t == nil {
		return nil, seq
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	for i := 0; i < t.n; i++ {
		ev := t.ring[(t.start+i)%len(t.ring)]
		if ev.Seq >= seq {
			out = append(out, ev)
		}
	}
	return out, t.seq
}

// Events returns the held events oldest-first. A nil tracer returns nil.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(t.start+i)%len(t.ring)])
	}
	return out
}

// StreamEvents marks a JSONL header whose event count is not known up
// front: a live NDJSON stream writes its header before the run finishes, so
// it carries -1 and consumers count events themselves.
const StreamEvents = -1

// traceHeader is the first line of a JSONL export.
type traceHeader struct {
	Schema  string `json:"schema"`
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
}

// WriteJSONL exports the trace: one header line ({"schema","events",
// "dropped"}) followed by one JSON object per event, oldest first. A nil
// tracer writes a header describing an empty trace.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	events := t.Events()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Schema: SchemaV1, Events: len(events), Dropped: t.Dropped()}); err != nil {
		return err
	}
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// StreamEncoder writes the obs.trace.v1 framing incrementally: one header
// line up front (with the StreamEvents count, since a live stream cannot
// know its length), then batches of events as they arrive, each batch
// flushed so an NDJSON consumer sees events without buffering delay. It is
// the encoder behind the partitiond /trace endpoint; WriteJSONL remains the
// bounded-export form.
type StreamEncoder struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewStreamEncoder writes the stream header and returns the encoder. The
// header reports StreamEvents (-1) events and zero dropped; eviction
// accounting for live streams is the consumer's job via Seq gaps.
func NewStreamEncoder(w io.Writer) (*StreamEncoder, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(traceHeader{Schema: SchemaV1, Events: StreamEvents}); err != nil {
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &StreamEncoder{bw: bw, enc: enc}, nil
}

// Encode appends a batch of events to the stream and flushes it.
func (e *StreamEncoder) Encode(events ...Event) error {
	for _, ev := range events {
		if err := e.enc.Encode(ev); err != nil {
			return err
		}
		e.n++
	}
	return e.bw.Flush()
}

// Encoded reports how many events the stream has carried.
func (e *StreamEncoder) Encoded() int { return e.n }

// TraceLog is a decoded JSONL export.
type TraceLog struct {
	Schema  string
	Dropped uint64
	Events  []Event
}

// DecodeJSONL parses a trace previously written by WriteJSONL. It rejects
// unknown schema versions and event counts that disagree with the header.
func DecodeJSONL(r io.Reader) (*TraceLog, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("obs: empty trace: missing header line")
	}
	var hdr traceHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("obs: bad trace header: %w", err)
	}
	if hdr.Schema != SchemaV1 {
		return nil, fmt.Errorf("obs: unknown trace schema %q (want %q)", hdr.Schema, SchemaV1)
	}
	capHint := hdr.Events
	if capHint < 0 {
		capHint = 0
	}
	log := &TraceLog{Schema: hdr.Schema, Dropped: hdr.Dropped, Events: make([]Event, 0, capHint)}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("obs: bad trace event %d: %w", len(log.Events), err)
		}
		log.Events = append(log.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// A streaming header (events = -1) never pinned a count; bounded
	// exports must match theirs exactly.
	if hdr.Events >= 0 && len(log.Events) != hdr.Events {
		return nil, fmt.Errorf("obs: trace header claims %d events, found %d", hdr.Events, len(log.Events))
	}
	return log, nil
}
