package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// keyFor encodes a metric identity as name{k1=v1,k2=v2} with label keys in
// sorted order, so the same labels in any argument order address the same
// series. No labels encodes as the bare name, which makes the encoding a
// fixed point: keyFor(keyFor(n, ls)) == keyFor(n, ls) — Merge relies on
// that to re-address series by their snapshot names.
func keyFor(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing event count. Updates are atomic, so
// concurrent experiments sharing a registry produce deterministic totals.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. A nil counter is a no-op.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. A nil counter is a no-op.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. A nil gauge is a no-op.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: counts[i] holds observations
// v <= bounds[i], with one overflow bucket beyond the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	n      atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value. A nil histogram is a no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

func (h *Histogram) add(counts []uint64, sum float64, n uint64) {
	for i := range counts {
		if i < len(h.counts) {
			h.counts[i].Add(counts[i])
		}
	}
	h.n.Add(n)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + sum)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Registry is a set of named metrics. Registration (Counter/Gauge/
// Histogram) is mutex-guarded and intended for construction time; the
// returned handles are lock-free on the hot path. A nil registry hands out
// nil handles, so disabled instrumentation costs one nil check per update.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns (creating on first use) the counter for name+labels. A
// nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := keyFor(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[key]
	if c == nil {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge for name+labels. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := keyFor(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[key]
	if g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram for name+labels.
// The bucket bounds are fixed at first registration; later registrations
// return the existing histogram regardless of the bounds they pass. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := keyFor(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[key]
	if h == nil {
		h = newHistogram(bounds)
		r.histograms[key] = h
	}
	return h
}

// Merge folds another registry's state into r: counter values and histogram
// buckets add, gauges overwrite. Callers merging per-worker registries must
// merge in task order (the parallel pool returns results in task order), so
// the merged registry — gauges included — is identical for any worker
// count. Nil receivers and nil arguments are no-ops.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	snap := other.Snapshot()
	for _, p := range snap.Counters {
		r.Counter(p.Name).Add(p.Value)
	}
	for _, p := range snap.Gauges {
		r.Gauge(p.Name).Set(p.Value)
	}
	for _, p := range snap.Histograms {
		r.Histogram(p.Name, p.Bounds).add(p.Counts, p.Sum, p.Count)
	}
}

// CounterPoint is one counter in a snapshot. Name is the full encoded key
// (name{labels}).
type CounterPoint struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramPoint is one histogram in a snapshot. Counts has one entry per
// bound plus the overflow bucket.
type HistogramPoint struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, with every series sorted
// by name so rendering and comparison are deterministic.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state in sorted order. A nil
// registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: r.counters[name].Value()})
	}
	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: r.gauges[name].Value()})
	}
	names = names[:0]
	for name := range r.histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.histograms[name]
		p := HistogramPoint{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    math.Float64frombits(h.sum.Load()),
			Count:  h.n.Load(),
		}
		for i := range h.counts {
			p.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, p)
	}
	return s
}

// Empty reports whether the snapshot carries no series at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Render formats the snapshot as sorted "kind name value" lines — the
// CLI's -metrics output.
func (s Snapshot) Render() string {
	var b strings.Builder
	for _, p := range s.Counters {
		fmt.Fprintf(&b, "counter %s %d\n", p.Name, p.Value)
	}
	for _, p := range s.Gauges {
		fmt.Fprintf(&b, "gauge %s %g\n", p.Name, p.Value)
	}
	for _, p := range s.Histograms {
		fmt.Fprintf(&b, "histogram %s count=%d sum=%g buckets=", p.Name, p.Count, p.Sum)
		for i, c := range p.Counts {
			if i > 0 {
				b.WriteByte(',')
			}
			if i < len(p.Bounds) {
				fmt.Fprintf(&b, "le%g:%d", p.Bounds[i], c)
			} else {
				fmt.Fprintf(&b, "inf:%d", c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
