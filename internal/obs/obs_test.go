package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var o *Observer
	var r *Registry
	var tr *Tracer
	if o.Registry() != nil || o.Tracer() != nil {
		t.Fatal("nil observer must hand out nil handles")
	}
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", []float64{1, 2}).Observe(3)
	r.Merge(NewRegistry())
	if !r.Snapshot().Empty() {
		t.Fatal("nil registry must snapshot empty")
	}
	tr.Emit(0, "x", "y")
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be inert")
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(2)
	g.Set(3)
	h.Observe(4)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestKeyForSortsLabels(t *testing.T) {
	a := keyFor("msgs", []Label{L("dir", "out"), L("as", "24940")})
	b := keyFor("msgs", []Label{L("as", "24940"), L("dir", "out")})
	if a != b {
		t.Fatalf("label order must not matter: %q vs %q", a, b)
	}
	if want := "msgs{as=24940,dir=out}"; a != want {
		t.Fatalf("key = %q, want %q", a, want)
	}
	if got := keyFor("plain", nil); got != "plain" {
		t.Fatalf("bare name must encode as itself, got %q", got)
	}
	// Merge depends on the encoding being a fixed point.
	if got := keyFor(a, nil); got != a {
		t.Fatalf("keyFor(%q) = %q, want fixed point", a, got)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Add(3)
	r.Counter("a").Inc()
	r.Counter("m", L("k", "v")).Add(2)
	r.Gauge("g2").Set(2)
	r.Gauge("g1").Set(1)
	r.Histogram("h", []float64{2, 1}).Observe(1.5) // bounds sorted at registration
	r.Histogram("h", nil).Observe(10)              // same series; first bounds win

	s := r.Snapshot()
	var names []string
	for _, p := range s.Counters {
		names = append(names, p.Name)
	}
	if want := []string{"a", "m{k=v}", "z"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("counter order = %v, want %v", names, want)
	}
	if s.Gauges[0].Name != "g1" || s.Gauges[1].Name != "g2" {
		t.Fatalf("gauge order = %v", s.Gauges)
	}
	h := s.Histograms[0]
	if !reflect.DeepEqual(h.Bounds, []float64{1, 2}) {
		t.Fatalf("bounds = %v, want sorted [1 2]", h.Bounds)
	}
	if !reflect.DeepEqual(h.Counts, []uint64{0, 1, 1}) {
		t.Fatalf("counts = %v, want [0 1 1]", h.Counts)
	}
	if h.Count != 2 || h.Sum != 11.5 {
		t.Fatalf("count=%d sum=%g, want 2/11.5", h.Count, h.Sum)
	}
	if s.Empty() {
		t.Fatal("snapshot should not be empty")
	}
}

func TestRegistryMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("c").Add(2)
	a.Gauge("g").Set(1)
	a.Histogram("h", []float64{1}).Observe(0.5)

	b := NewRegistry()
	b.Counter("c").Add(3)
	b.Counter("only-b", L("x", "1")).Inc()
	b.Gauge("g").Set(9)
	b.Histogram("h", []float64{1}).Observe(2)

	a.Merge(b)
	s := a.Snapshot()
	if got := s.Counters[0]; got.Name != "c" || got.Value != 5 {
		t.Fatalf("merged counter = %+v, want c=5", got)
	}
	if got := s.Counters[1]; got.Name != "only-b{x=1}" || got.Value != 1 {
		t.Fatalf("merged counter = %+v, want only-b{x=1}=1", got)
	}
	if s.Gauges[0].Value != 9 {
		t.Fatalf("merged gauge = %g, want last-write 9", s.Gauges[0].Value)
	}
	h := s.Histograms[0]
	if h.Count != 2 || h.Sum != 2.5 || !reflect.DeepEqual(h.Counts, []uint64{1, 1}) {
		t.Fatalf("merged histogram = %+v", h)
	}
}

func TestSnapshotRenderDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("p2p.msgs", L("kind", "inv")).Add(7)
		r.Gauge("netsim.synced_frac").Set(0.75)
		r.Histogram("lag", []float64{1, 2, 5}).Observe(3)
		return r.Snapshot()
	}
	s1, s2 := build().Render(), build().Render()
	if s1 != s2 {
		t.Fatalf("renders differ:\n%s\nvs\n%s", s1, s2)
	}
	for _, want := range []string{
		"counter p2p.msgs{kind=inv} 7\n",
		"gauge netsim.synced_frac 0.75\n",
		"histogram lag count=1 sum=3 buckets=le1:0,le2:0,le5:1,inf:0\n",
	} {
		if !strings.Contains(s1, want) {
			t.Fatalf("render missing %q:\n%s", want, s1)
		}
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Emit(int64(i*10), "test", "tick", Fint("i", int64(i)))
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		wantSeq := uint64(i + 2)
		if ev.Seq != wantSeq || ev.Tick != int64(wantSeq)*10 {
			t.Fatalf("event %d = %+v, want seq %d tick %d", i, ev, wantSeq, wantSeq*10)
		}
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(0, "netsim", "block_mined", Fint("height", 1), F("miner", "AS24940"))
	tr.Emit(600_000_000_000, "p2p", "reorg", Fint("depth", 2), Ffloat("share", 0.3), Fbool("counterfeit", true))
	tr.Emit(1200_000_000_000, "attack", "victims_captured", Fuint("n", 18))

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.Bytes()[:bytes.IndexByte(buf.Bytes(), '\n')]
	if !bytes.Contains(first, []byte(SchemaV1)) {
		t.Fatalf("header %s missing schema %q", first, SchemaV1)
	}

	log, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if log.Schema != SchemaV1 || log.Dropped != 0 {
		t.Fatalf("decoded header = %+v", log)
	}
	if !reflect.DeepEqual(log.Events, tr.Events()) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", log.Events, tr.Events())
	}

	// Two identical emission sequences encode byte-identically.
	tr2 := NewTracer(16)
	tr2.Emit(0, "netsim", "block_mined", Fint("height", 1), F("miner", "AS24940"))
	tr2.Emit(600_000_000_000, "p2p", "reorg", Fint("depth", 2), Ffloat("share", 0.3), Fbool("counterfeit", true))
	tr2.Emit(1200_000_000_000, "attack", "victims_captured", Fuint("n", 18))
	var buf2 bytes.Buffer
	if err := tr2.WriteJSONL(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("same emission sequence must export byte-identical JSONL")
	}
}

func TestDecodeJSONLRejectsBadInput(t *testing.T) {
	if _, err := DecodeJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty input must fail")
	}
	if _, err := DecodeJSONL(strings.NewReader(`{"schema":"obs.trace.v9","events":0,"dropped":0}` + "\n")); err == nil {
		t.Fatal("unknown schema must fail")
	}
	if _, err := DecodeJSONL(strings.NewReader(`{"schema":"obs.trace.v1","events":2,"dropped":0}` + "\n")); err == nil {
		t.Fatal("event-count mismatch must fail")
	}
	if _, err := DecodeJSONL(strings.NewReader(`{"schema":"obs.trace.v1","events":1,"dropped":0}` + "\nnot-json\n")); err == nil {
		t.Fatal("malformed event must fail")
	}
}

func TestObserverConstructors(t *testing.T) {
	o := New(8)
	if o.Registry() == nil || o.Tracer() == nil {
		t.Fatal("New must wire both halves")
	}
	mo := NewMetricsOnly()
	if mo.Registry() == nil || mo.Tracer() != nil {
		t.Fatal("NewMetricsOnly must omit the tracer")
	}
	d := New(0)
	d.Trace.Emit(0, "x", "y")
	if d.Trace.Len() != 1 {
		t.Fatal("default-capacity tracer must accept events")
	}
}
