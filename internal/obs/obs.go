// Package obs is the deterministic observability layer of the simulators:
// a metrics registry (counters, gauges, fixed-bucket histograms keyed by
// name + sorted labels, snapshotted in sorted order) and a sim-time event
// tracer (a ring buffer of structured events stamped with a sequence number
// and a simulation tick, exported as JSONL under a versioned schema).
//
// Determinism rules (DESIGN.md §9):
//
//   - Instrumentation never reads the wall clock. Event timestamps are
//     simulation ticks supplied by the caller — Engine.Now() nanoseconds in
//     the event-driven simulators, the step counter in gridsim.
//   - Instrumentation never draws from a simulation RNG and never changes
//     event scheduling, so an instrumented run produces byte-identical
//     simulation output to an uninstrumented one.
//   - Counter and histogram-bucket updates are atomic and commutative, so
//     their totals are identical for any worker count. Gauges and the event
//     stream are last-write/arrival ordered: they are deterministic in
//     single-simulation runs (the CLI attack paths), which is where they
//     are consumed.
//   - Everything is nil-safe: a nil *Observer, *Registry, *Counter, *Gauge,
//     *Histogram, or *Tracer is a no-op, so instrumented hot paths cost one
//     nil check when observability is off (the default).
package obs

// Observer bundles the two halves of the layer. Simulator configs carry a
// *Observer; a nil observer disables all instrumentation.
type Observer struct {
	// Metrics is the metrics registry (nil disables metrics).
	Metrics *Registry
	// Trace is the event tracer (nil disables tracing).
	Trace *Tracer
}

// New returns an observer with a fresh registry and a tracer holding up to
// traceCapacity events (<= 0 selects DefaultTraceCapacity).
func New(traceCapacity int) *Observer {
	return &Observer{Metrics: NewRegistry(), Trace: NewTracer(traceCapacity)}
}

// NewMetricsOnly returns an observer that records metrics but no events —
// the shape the parallel trial runners use, since per-trial registries
// merge deterministically while event streams would interleave.
func NewMetricsOnly() *Observer {
	return &Observer{Metrics: NewRegistry()}
}

// Registry returns the metrics registry, nil when o is nil or metrics are
// disabled.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Tracer returns the event tracer, nil when o is nil or tracing is
// disabled.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}
