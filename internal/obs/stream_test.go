package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestEventsSinceCursor: a polling consumer sees each event exactly once.
func TestEventsSinceCursor(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(1, "scope", "a")
	tr.Emit(2, "scope", "b")
	events, cursor := tr.EventsSince(0)
	if len(events) != 2 || events[0].Seq != 0 || events[1].Seq != 1 {
		t.Fatalf("first poll: %+v", events)
	}
	if cursor != 2 {
		t.Fatalf("cursor = %d, want 2", cursor)
	}
	// Nothing new: empty poll, cursor unchanged.
	events, cursor = tr.EventsSince(cursor)
	if len(events) != 0 || cursor != 2 {
		t.Fatalf("idle poll: %d events, cursor %d", len(events), cursor)
	}
	tr.Emit(3, "scope", "c")
	events, cursor = tr.EventsSince(cursor)
	if len(events) != 1 || events[0].Type != "c" || cursor != 3 {
		t.Fatalf("second poll: %+v cursor %d", events, cursor)
	}
}

// TestEventsSinceEviction: events evicted before a poll are absent but the
// cursor still counts them — the Seq gap is the consumer's dropped signal.
func TestEventsSinceEviction(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Emit(int64(i), "scope", "e")
	}
	events, cursor := tr.EventsSince(0)
	if len(events) != 2 || events[0].Seq != 3 || cursor != 5 {
		t.Fatalf("events %+v cursor %d", events, cursor)
	}
}

// TestEventsSinceNil: nil tracer polls are inert.
func TestEventsSinceNil(t *testing.T) {
	var tr *Tracer
	events, cursor := tr.EventsSince(7)
	if events != nil || cursor != 7 {
		t.Fatalf("nil tracer poll: %+v, %d", events, cursor)
	}
}

// TestStreamEncoderFraming: a streamed trace decodes under the same
// obs.trace.v1 reader as a bounded export, with the -1 header count.
func TestStreamEncoderFraming(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewStreamEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The header is flushed before any event arrives.
	header := buf.String()
	if !strings.Contains(header, `"schema":"obs.trace.v1"`) || !strings.Contains(header, `"events":-1`) {
		t.Fatalf("stream header %q", header)
	}
	if err := enc.Encode(Event{Seq: 0, Tick: 1, Scope: "s", Type: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(
		Event{Seq: 1, Tick: 2, Scope: "s", Type: "y", Fields: []Field{F("k", "v")}},
		Event{Seq: 2, Tick: 3, Scope: "s", Type: "z"},
	); err != nil {
		t.Fatal(err)
	}
	if enc.Encoded() != 3 {
		t.Fatalf("Encoded() = %d", enc.Encoded())
	}
	log, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != 3 || log.Events[1].Fields[0].V != "v" {
		t.Fatalf("decoded %+v", log.Events)
	}
}

// TestDecodeJSONLStillPinsBoundedCounts: the stream tolerance must not
// loosen the bounded-export contract.
func TestDecodeJSONLStillPinsBoundedCounts(t *testing.T) {
	input := `{"schema":"obs.trace.v1","events":2,"dropped":0}` + "\n" +
		`{"seq":0,"tick":1,"scope":"s","type":"x"}` + "\n"
	if _, err := DecodeJSONL(strings.NewReader(input)); err == nil {
		t.Fatal("bounded header count mismatch accepted")
	}
}
