package integration

import (
	"bytes"
	"testing"

	"repro/internal/attack"
	"repro/internal/obs"
)

// runPlansWithCapacity runs every attack plan under a tracer with the given
// ring capacity and returns the live summaries, the decoded trace, and the
// plan names in execution order.
func runPlansWithCapacity(t *testing.T, capacity int) (map[string]string, *obs.TraceLog, []string) {
	t.Helper()
	observer := obs.New(capacity)
	env := planEnv(t, 1, observer)
	live := map[string]string{}
	var order []string
	for _, plan := range attack.Plans(env) {
		res, err := plan.Run(nil, observer.Registry())
		if err != nil {
			t.Fatalf("%s: %v", plan.Name(), err)
		}
		live[plan.Name()] = res.Summary()
		order = append(order, plan.Name())
	}
	var buf bytes.Buffer
	if err := observer.Tracer().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	log, err := obs.DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return live, log, order
}

// TestReplaySummariesSurvivesDroppedEvents pins the tracer's dropped-event
// contract (see obs.Tracer): when the ring overflows mid-run, the oldest
// events are evicted, but each plan's summary event is emitted at plan
// completion — so a capacity that holds the tail of the run still replays
// every summary, and ReplaySummaries must not be confused by the truncated
// prefix.
func TestReplaySummariesSurvivesDroppedEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all seven attack scenarios")
	}
	// First a full-capacity run to learn how many events the sweep emits.
	_, full, _ := runPlansWithCapacity(t, 0)
	if full.Dropped != 0 {
		t.Fatalf("default capacity dropped %d events; enlarge DefaultTraceCapacity in this test", full.Dropped)
	}
	total := len(full.Events)
	if total < 100 {
		t.Fatalf("sweep emitted only %d events; ring-overflow test needs more", total)
	}

	// Half the events fit: the prefix is evicted mid-run. Every summary
	// still in the ring must replay byte-identically — a truncated prefix
	// may lose whole summaries (counted in Dropped) but never corrupt the
	// surviving ones.
	live, log, order := runPlansWithCapacity(t, total/2)
	if log.Dropped == 0 {
		t.Fatalf("capacity %d of %d events dropped nothing", total/2, total)
	}
	replayed := attack.ReplaySummaries(log)
	if len(replayed) == 0 {
		t.Fatal("half-capacity ring replayed no summaries at all")
	}
	for name, got := range replayed {
		if want, ok := live[name]; !ok {
			t.Errorf("%s: replay invented a plan that never ran", name)
		} else if got != want {
			t.Errorf("%s: replayed summary diverged after ring overflow", name)
		}
	}

	// A ring that only holds the last plan's events evicts earlier
	// summaries: the replay map is incomplete, and the trace says so via
	// Dropped — the documented way callers detect this.
	live, log, order = runPlansWithCapacity(t, 10)
	if log.Dropped == 0 {
		t.Fatal("capacity 10 dropped nothing")
	}
	replayed = attack.ReplaySummaries(log)
	if len(replayed) >= len(live) {
		t.Fatalf("tiny ring replayed %d of %d summaries; expected evictions", len(replayed), len(live))
	}
	last := order[len(order)-1]
	if got, ok := replayed[last]; !ok {
		t.Errorf("%s: final plan's summary must survive any non-zero ring", last)
	} else if got != live[last] {
		t.Errorf("%s: final summary diverged in tiny ring", last)
	}
}
