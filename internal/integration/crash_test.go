package integration

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// The crash-safety layer's end-to-end guarantee (DESIGN.md §11): a
// checkpointed `experiment all` killed at any experiment boundary resumes
// to output byte-identical to the uninterrupted golden, at any worker
// count. The tests below simulate the kill by truncating the journal at
// deterministic record boundaries (plus a half-written tail, the shape a
// real SIGKILL leaves) and re-running with a resume log.

// renderCheckpointed reproduces `partition experiment all -seed 1
// -checkpoint ...` byte for byte: the supervised sweep journaling into j,
// replaying from resume.
func renderCheckpointed(t *testing.T, workers int, j *checkpoint.Journal, resume *checkpoint.Log) ([]byte, *core.CheckpointedRun) {
	t.Helper()
	study, err := core.New(1, core.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	run, err := study.RunAllCheckpointed(workers, j, resume, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for task, out := range run.Outputs {
		if !run.Ran[task] {
			t.Fatalf("experiment %d missing from a clean checkpointed run", task)
		}
		buf.WriteString(out.Text)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), run
}

// studyFingerprint returns the seed-1 journal key.
func studyFingerprint(t *testing.T) string {
	t.Helper()
	study, err := core.New(1)
	if err != nil {
		t.Fatal(err)
	}
	return study.Fingerprint()
}

// killJournal truncates a completed journal to its header plus keep full
// records, then appends a fragment of the next record — the on-disk shape
// of a run killed mid-append.
func killJournal(t *testing.T, path string, keep int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	cut := -1
	for i, b := range data {
		if b != '\n' {
			continue
		}
		lines++
		if lines == keep+1 { // header line + keep records
			cut = i + 1
			break
		}
	}
	if cut < 0 {
		t.Fatalf("journal has fewer than %d records", keep)
	}
	tail := data[cut:]
	if len(tail) > 40 {
		tail = tail[:40]
	}
	if err := os.WriteFile(path, append(data[:cut:cut], tail...), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestResumeGolden is the resume-determinism proof: run the checkpointed
// sweep to completion, kill the journal at deterministic experiment
// boundaries, resume at workers 1 and 8, and require output byte-identical
// to the checked-in `experiment all` golden every time.
func TestResumeGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation × several kill points")
	}
	want, err := os.ReadFile("testdata/experiment_all_seed1.golden")
	if err != nil {
		t.Fatal(err)
	}
	fp := studyFingerprint(t)

	// The uninterrupted checkpointed run is itself golden-identical.
	full := filepath.Join(t.TempDir(), "full.ckpt")
	j, err := checkpoint.Create(full, fp)
	if err != nil {
		t.Fatal(err)
	}
	got, run := renderCheckpointed(t, 8, j, nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("clean checkpointed run diverged from golden (%d bytes vs %d)", len(got), len(want))
	}
	if run.Replayed != 0 || len(run.Faults) != 0 {
		t.Fatalf("clean run: replayed=%d faults=%d", run.Replayed, len(run.Faults))
	}
	fullBytes, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Kill at an early, a middle, and a late experiment boundary; resume at
	// workers 1 and 8.
	for _, keep := range []int{2, 9, 17} {
		for _, workers := range []int{1, 8} {
			path := filepath.Join(t.TempDir(), "killed.ckpt")
			if err := os.WriteFile(path, fullBytes, 0o644); err != nil {
				t.Fatal(err)
			}
			killJournal(t, path, keep)
			j2, log, err := checkpoint.Resume(path, fp)
			if err != nil {
				t.Fatal(err)
			}
			if !log.Truncated {
				t.Fatalf("keep=%d: kill fragment not detected", keep)
			}
			got, run := renderCheckpointed(t, workers, j2, log)
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("keep=%d workers=%d: resumed output diverged from golden", keep, workers)
			}
			if run.Replayed != keep {
				t.Errorf("keep=%d workers=%d: replayed %d experiments", keep, workers, run.Replayed)
			}
			// The resumed journal is complete again and loads clean.
			final, err := checkpoint.Load(path, fp)
			if err != nil {
				t.Fatal(err)
			}
			if final.Truncated || final.Results() != len(run.Outputs) {
				t.Errorf("keep=%d workers=%d: final journal truncated=%v results=%d",
					keep, workers, final.Truncated, final.Results())
			}
		}
	}
}

// TestResumeRejectsForeignJournal: a journal written for a different study
// configuration must refuse to resume rather than replay wrong outputs.
func TestResumeRejectsForeignJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "foreign.ckpt")
	j, err := checkpoint.Create(path, "0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := checkpoint.Resume(path, studyFingerprint(t)); err == nil {
		t.Fatal("foreign journal accepted for resume")
	}
}
