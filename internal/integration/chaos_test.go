package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/iofault"
	"repro/internal/service"
)

// Crash-point exploration for partitiond's durability stack (DESIGN.md §15).
// A recording run of a checkpointed `experiment all` over a passthrough
// ChaosFS enumerates every durability point the write-ahead protocol
// touches — spec sidecar, journal header and appends, result, meta, and
// their fsync/rename/dirsync commits. For each point the run is replayed
// with a simulated crash there (torn final write included), the daemon is
// restarted over the surviving bytes, and the recovered output must be
// byte-identical to the uninterrupted run.
//
// By default a structural sample of points runs (first of every
// kind×artifact combination, the torn-frame journal appends, the commit
// tail). CHAOS_EXHAUSTIVE=1 — what `make chaos` sets — explores every
// point in both crash models.

// chaosSpec builds the experiment-all document the harness submits. It is
// marshalled non-canonically so Workers:1 survives parsing: a sequential
// run gives every replay the same durability-point numbering. The
// fingerprint is unaffected — workers are output-neutral and zeroed by
// canonicalization.
func chaosSpec(t testing.TB) (raw []byte, fp string) {
	t.Helper()
	spec := core.SpecFromOptions(1, core.WithWorkers(1))
	spec.Run = core.Command{Verb: "experiment", Name: "all"}
	if err := spec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	fp, err = spec.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint: %v", err)
	}
	return raw, fp
}

// chaosBaseline runs the spec to completion over a recording passthrough
// ChaosFS and returns the output bytes plus the full durability-point log.
func chaosBaseline(t *testing.T) (output []byte, ops []iofault.Op) {
	t.Helper()
	rec := iofault.NewChaos(iofault.Config{})
	svc, _, err := service.New(service.Config{StateDir: t.TempDir(), Workers: 1, Queue: 2, FS: rec})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	raw, fp := chaosSpec(t)
	if _, status, err := svc.Submit(raw); err != nil || status != service.SubmitAccepted {
		t.Fatalf("Submit: status=%s err=%v", status, err)
	}
	view, ok := svc.Wait(fp)
	if !ok || view.State != service.StateDone {
		t.Fatalf("baseline run: state=%s err=%q", view.State, view.Error)
	}
	output, exit, ok := svc.Result(fp)
	if !ok || exit != 0 {
		t.Fatalf("baseline result: ok=%v exit=%d", ok, exit)
	}
	svc.Drain()
	return output, rec.Ops()
}

// chaosClass names the artifact a durability point commits, for sampling
// and failure messages.
func chaosClass(op iofault.Op) string {
	if op.Kind == iofault.OpSyncDir {
		return "dir"
	}
	base := filepath.Base(op.Path)
	switch {
	case strings.Contains(base, ".spec.json"):
		return "spec"
	case strings.Contains(base, ".ckpt"):
		return "journal"
	case strings.Contains(base, ".result"):
		return "result"
	case strings.Contains(base, ".job.json"):
		return "meta"
	}
	return "other"
}

// samplePoints picks the structurally distinct crash points: the first
// occurrence of every kind×artifact combination, the torn-frame journal
// appends (first record after the header, a middle record, the final
// record), and the last two points — the commit tail of the meta write.
func samplePoints(ops []iofault.Op) []int {
	picked := map[int]bool{}
	firsts := map[string]bool{}
	var journalWrites []int
	for _, op := range ops {
		key := string(op.Kind) + "/" + chaosClass(op)
		if !firsts[key] {
			firsts[key] = true
			picked[op.Seq] = true
		}
		if op.Kind == iofault.OpWrite && chaosClass(op) == "journal" {
			journalWrites = append(journalWrites, op.Seq)
		}
	}
	if n := len(journalWrites); n > 1 {
		picked[journalWrites[1]] = true
		picked[journalWrites[n/2]] = true
		picked[journalWrites[n-1]] = true
	}
	for i := len(ops) - 2; i < len(ops); i++ {
		if i >= 0 {
			picked[ops[i].Seq] = true
		}
	}
	seqs := make([]int, 0, len(picked))
	for seq := range picked {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs
}

// crashAndRecover replays the run with a crash at the given point, applies
// the selected durability model to the surviving bytes, restarts the
// daemon over them, and asserts the job's recovered output is byte-for-byte
// the baseline.
func crashAndRecover(t *testing.T, baseline []byte, point int, dropUnsynced bool) {
	t.Helper()
	dir := t.TempDir()
	c := iofault.NewChaos(iofault.Config{CrashAt: point, DropUnsynced: dropUnsynced})
	svc, _, err := service.New(service.Config{StateDir: dir, Workers: 1, Queue: 2, FS: c})
	if err != nil {
		t.Fatalf("service.New over chaos FS: %v", err)
	}
	raw, fp := chaosSpec(t)
	// A crash inside the spec sidecar's own commit surfaces as a Submit
	// error — the daemon died before admission. Every later point admits
	// the job and fails it; either way the run must reach a terminal state.
	if _, _, err := svc.Submit(raw); err == nil {
		if view, ok := svc.Wait(fp); !ok || !view.State.Terminal() {
			t.Fatalf("crashed run not terminal: state=%s", view.State)
		}
	}
	svc.Drain()
	if !c.Crashed() {
		t.Fatalf("crash point %d never fired (%d points this run)", point, c.Points())
	}
	if err := c.ApplyCrash(); err != nil {
		t.Fatalf("ApplyCrash: %v", err)
	}

	// Reboot on the real filesystem over whatever survived.
	svc2, resurrected, err := service.New(service.Config{StateDir: dir, Workers: 1, Queue: 2})
	if err != nil {
		t.Fatalf("restart after crash at point %d: %v", point, err)
	}
	defer svc2.Drain()
	for _, id := range resurrected {
		if view, ok := svc2.Wait(id); !ok || view.State != service.StateDone {
			t.Fatalf("resurrected job %s after crash at point %d: state=%s err=%q",
				id, point, view.State, view.Error)
		}
	}
	// Submitting again covers every surviving shape: a completed commit is
	// served from the cache, a resurrected job coalesces, a run whose
	// sidecar never became durable starts fresh.
	view, status, err := svc2.Submit(raw)
	if err != nil {
		t.Fatalf("resubmit after crash at point %d: %v", point, err)
	}
	if status != service.SubmitCached {
		if view, _ = svc2.Wait(fp); view.State != service.StateDone {
			t.Fatalf("recovery run after crash at point %d: state=%s err=%q",
				point, view.State, view.Error)
		}
	}
	output, exit, ok := svc2.Result(fp)
	if !ok || exit != 0 {
		t.Fatalf("recovered result after crash at point %d: ok=%v exit=%d", point, ok, exit)
	}
	if !bytes.Equal(output, baseline) {
		t.Fatalf("crash at point %d: recovered output differs from the uninterrupted run (%d vs %d bytes)",
			point, len(output), len(baseline))
	}
}

// TestChaosCrashPointRecovery is the exhaustive crash-point proof: every
// durability point of the write-ahead protocol, crashed and recovered
// byte-identically. Sampled by default; CHAOS_EXHAUSTIVE=1 explores all
// points under both the truncate-at-point model (torn tails survive) and
// the power-off model (unsynced bytes are lost).
func TestChaosCrashPointRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos exploration is a long test")
	}
	baseline, ops := chaosBaseline(t)
	if len(ops) == 0 {
		t.Fatal("recording run counted no durability points — the FS seam is not threaded")
	}
	kinds := map[iofault.OpKind]bool{}
	classes := map[string]bool{}
	for _, op := range ops {
		kinds[op.Kind] = true
		classes[chaosClass(op)] = true
	}
	for _, k := range []iofault.OpKind{iofault.OpWrite, iofault.OpSync, iofault.OpRename, iofault.OpSyncDir} {
		if !kinds[k] {
			t.Fatalf("no %s point in the recording run", k)
		}
	}
	for _, cl := range []string{"spec", "journal", "result", "meta", "dir"} {
		if !classes[cl] {
			t.Fatalf("no durability point touches the %s artifact", cl)
		}
	}

	points := samplePoints(ops)
	if os.Getenv("CHAOS_EXHAUSTIVE") != "" {
		points = points[:0]
		for _, op := range ops {
			points = append(points, op.Seq)
		}
	}
	t.Logf("exploring %d of %d durability points", len(points), len(ops))
	byseq := map[int]iofault.Op{}
	for _, op := range ops {
		byseq[op.Seq] = op
	}
	for _, point := range points {
		op := byseq[point]
		for _, model := range []struct {
			name string
			drop bool
		}{{"truncate", false}, {"poweroff", true}} {
			point, drop := point, model.drop
			t.Run(fmt.Sprintf("%s/point%03d_%s_%s", model.name, point, op.Kind, chaosClass(op)), func(t *testing.T) {
				t.Parallel()
				crashAndRecover(t, baseline, point, drop)
			})
		}
	}
}

// TestChaosInjectedRunDeterminism: two runs with the same chaos seed see
// identical fault sequences and end in identical states — the property
// that makes any chaos failure replayable from its seed alone.
func TestChaosInjectedRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos exploration is a long test")
	}
	type outcome struct {
		state   service.State
		retries int
		faults  int
		log     []string
		output  []byte
	}
	run := func(seed int64) outcome {
		c := iofault.NewChaos(iofault.Config{Seed: seed, WriteErr: 0.04, SyncErr: 0.04})
		svc, _, err := service.New(service.Config{StateDir: t.TempDir(), Workers: 1, Queue: 2, FS: c})
		if err != nil {
			t.Fatalf("service.New: %v", err)
		}
		raw, fp := chaosSpec(t)
		if _, _, err := svc.Submit(raw); err != nil {
			t.Fatalf("Submit under injected faults: %v", err)
		}
		view, _ := svc.Wait(fp)
		svc.Drain()
		o := outcome{state: view.State, retries: view.Retries, faults: c.InjectedFaults()}
		for _, op := range c.Ops() {
			path := filepath.Base(op.Path)
			if op.Kind == iofault.OpSyncDir {
				path = "dir" // the state dir's basename differs per run
			}
			o.log = append(o.log, fmt.Sprintf("%d %s %s %s", op.Seq, op.Kind, path, op.Injected))
		}
		if out, exit, ok := svc.Result(fp); ok && exit == 0 {
			o.output = out
		}
		return o
	}
	a, b := run(1109), run(1109)
	if a.state != b.state || a.retries != b.retries || a.faults != b.faults {
		t.Fatalf("same seed diverged: %s/%d/%d vs %s/%d/%d",
			a.state, a.retries, a.faults, b.state, b.retries, b.faults)
	}
	if len(a.log) != len(b.log) {
		t.Fatalf("same seed drew different op logs: %d vs %d points", len(a.log), len(b.log))
	}
	for i := range a.log {
		if a.log[i] != b.log[i] {
			t.Fatalf("op %d diverged:\n  %s\n  %s", i, a.log[i], b.log[i])
		}
	}
	if !bytes.Equal(a.output, b.output) {
		t.Fatal("same seed produced different outputs")
	}
	if a.faults == 0 {
		t.Fatal("the chosen seed injected no faults — the determinism claim is vacuous")
	}
	if a.state == service.StateDone && a.retries == 0 && a.faults > 0 {
		// Faults landed yet the job never retried: only possible if every
		// fault hit a read path, which this config cannot inject.
		t.Fatalf("%d faults injected but the job neither retried nor failed", a.faults)
	}
}
