package integration

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
)

// renderAll reproduces `partition experiment all -seed 1` byte for byte:
// each experiment's text followed by a blank line, in presentation order.
// Extra options (a fault scenario, say) are applied on top.
func renderAll(t *testing.T, workers int, observer *obs.Observer, extra ...core.Option) []byte {
	t.Helper()
	opts := []core.Option{core.WithWorkers(workers)}
	if observer != nil {
		opts = append(opts, core.WithObserver(observer))
	}
	opts = append(opts, extra...)
	study, err := core.New(1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	outputs, err := study.RunAll(workers)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, out := range outputs {
		buf.WriteString(out.Text)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestExperimentAllGolden pins the full seed-1 evaluation to the checked-in
// golden: byte-identical with observability off at workers 1 and 8, and
// still byte-identical with a full observer attached — instrumentation must
// never perturb experiment output (DESIGN.md §9).
func TestExperimentAllGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation × 3 configurations")
	}
	want, err := os.ReadFile("testdata/experiment_all_seed1.golden")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		workers  int
		observer *obs.Observer
	}{
		{"workers1", 1, nil},
		{"workers8", 8, nil},
		{"workers8_observed", 8, obs.New(0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := renderAll(t, tc.workers, tc.observer)
			if !bytes.Equal(got, want) {
				t.Errorf("output diverged from golden (%d bytes vs %d)", len(got), len(want))
			}
		})
	}
}

// TestExperimentAllChurnyGolden pins `experiment all -seed 1 -faults churny`
// to its own golden at workers 1 and 8: fault injection is part of the
// deterministic surface, so a faulted run must be byte-identical at any
// worker count and stable release to release.
func TestExperimentAllChurnyGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation × 2 configurations")
	}
	want, err := os.ReadFile("testdata/experiment_all_seed1_churny.golden")
	if err != nil {
		t.Fatal(err)
	}
	base, err := os.ReadFile("testdata/experiment_all_seed1.golden")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(want, base) {
		t.Fatal("churny golden is identical to the faults-off golden; churn injected nothing")
	}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			got := renderAll(t, workers, nil, core.WithFaults(faults.Churny()))
			if !bytes.Equal(got, want) {
				t.Errorf("output diverged from churny golden (%d bytes vs %d)", len(got), len(want))
			}
		})
	}
}

// TestZeroScenarioIsNoOp proves the Scenario zero value injects nothing:
// running the full evaluation with an explicit empty scenario must be
// byte-identical to the faults-off golden. This is the guarantee that lets
// Config.Faults live in every substrate config without moving old output.
func TestZeroScenarioIsNoOp(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	want, err := os.ReadFile("testdata/experiment_all_seed1.golden")
	if err != nil {
		t.Fatal(err)
	}
	got := renderAll(t, 8, nil, core.WithFaults(faults.Scenario{}))
	if !bytes.Equal(got, want) {
		t.Errorf("zero-value Scenario perturbed output (%d bytes vs %d)", len(got), len(want))
	}
}

// planEnv builds the plan context the CLI builds, at a reduced network
// scale so the seven-plan sweep stays fast.
func planEnv(t *testing.T, seed int64, observer *obs.Observer) attack.Env {
	t.Helper()
	study, err := core.New(seed,
		core.WithNetworkNodes(80),
		core.WithObserver(observer),
	)
	if err != nil {
		t.Fatal(err)
	}
	return attack.Env{
		Pop:          study.Pop,
		NetworkNodes: study.Opts.NetworkNodes,
		Seed:         study.Seed(),
		Obs:          study.Observer(),
		NewSim:       study.NewSimFromPopulation,
	}
}

// TestAttackPlansUnderChurny runs every registered attack plan under the
// churny preset — the CLI's `-faults churny attack <name>` path — and checks
// each still completes with a summary, twice with identical results. The
// fault scenario reaches both factory-built sims (via the study options) and
// self-assembling plans (via Env.Faults).
func TestAttackPlansUnderChurny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all seven attack scenarios twice")
	}
	run := func() map[string]string {
		study, err := core.New(1,
			core.WithNetworkNodes(80),
			core.WithFaults(faults.Churny()),
		)
		if err != nil {
			t.Fatal(err)
		}
		env := attack.Env{
			Pop:          study.Pop,
			NetworkNodes: study.Opts.NetworkNodes,
			Seed:         study.Seed(),
			Obs:          study.Observer(),
			Faults:       study.Opts.Faults,
			NewSim:       study.NewSimFromPopulation,
		}
		summaries := map[string]string{}
		for _, plan := range attack.Plans(env) {
			res, err := plan.Run(nil, nil)
			if err != nil {
				t.Fatalf("%s under churny: %v", plan.Name(), err)
			}
			if res.Summary() == "" {
				t.Fatalf("%s under churny: empty summary", plan.Name())
			}
			summaries[plan.Name()] = res.Summary()
		}
		return summaries
	}
	first := run()
	if len(first) != len(attack.PlanNames()) {
		t.Fatalf("ran %d plans, registry has %d", len(first), len(attack.PlanNames()))
	}
	second := run()
	for name, want := range first {
		if got := second[name]; got != want {
			t.Errorf("%s: same-seed churny reruns diverged:\n--- first ---\n%s--- second ---\n%s",
				name, want, got)
		}
	}
}

// TestTraceDeterministicAndReplaysSummaries runs every registered attack
// plan twice with tracing on and asserts (a) the two JSONL exports are
// byte-identical, and (b) decoding a trace and replaying it reproduces each
// plan's Summary() exactly — the ISSUE's replayability contract.
func TestTraceDeterministicAndReplaysSummaries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all seven attack scenarios twice")
	}
	run := func() (map[string]string, []byte) {
		observer := obs.New(0)
		env := planEnv(t, 1, observer)
		summaries := map[string]string{}
		for _, plan := range attack.Plans(env) {
			res, err := plan.Run(nil, observer.Registry())
			if err != nil {
				t.Fatalf("%s: %v", plan.Name(), err)
			}
			if res.Summary() == "" {
				t.Fatalf("%s: empty summary", plan.Name())
			}
			if res.Metrics().Empty() {
				t.Errorf("%s: no headline metrics", plan.Name())
			}
			summaries[plan.Name()] = res.Summary()
		}
		var buf bytes.Buffer
		if err := observer.Tracer().WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return summaries, buf.Bytes()
	}

	summaries, jsonl := run()
	if len(summaries) != len(attack.PlanNames()) {
		t.Fatalf("ran %d plans, registry has %d", len(summaries), len(attack.PlanNames()))
	}
	_, jsonl2 := run()
	if !bytes.Equal(jsonl, jsonl2) {
		t.Error("two same-seed trace exports differ")
	}

	log, err := obs.DecodeJSONL(bytes.NewReader(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	replayed := attack.ReplaySummaries(log)
	for name, want := range summaries {
		if got, ok := replayed[name]; !ok {
			t.Errorf("%s: summary missing from trace", name)
		} else if got != want {
			t.Errorf("%s: replayed summary diverged:\n--- live ---\n%s--- replay ---\n%s", name, want, got)
		}
	}
}
