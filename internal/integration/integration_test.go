// Package integration exercises full pipelines across the library: dataset
// generation → crawling → attack planning → execution → countermeasure,
// the way a user of the public API strings the pieces together.
package integration

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/measure"
	"repro/internal/mining"
	"repro/internal/spv"
	"repro/internal/stats"
	"repro/internal/vulndb"
)

// TestSpatialPipeline: generate the population, plan the cheapest 95%
// hijack of the top AS from Figure 4's analysis, execute it against the
// live route table, confirm capture, then let the route guard detect and
// undo it.
func TestSpatialPipeline(t *testing.T) {
	pop, err := dataset.Generate(101)
	if err != nil {
		t.Fatal(err)
	}
	// Analysis: pick the cheapest of the paper's five ASes per node captured.
	bestAS := core.Figure4ASes()[0]
	bestCost := 1 << 30
	for _, asn := range core.Figure4ASes() {
		k, err := measure.PrefixesToIsolate(pop, asn, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if k < bestCost {
			bestCost, bestAS = k, asn
		}
	}
	if bestAS != 24940 {
		t.Errorf("cheapest 95%% target = AS%d, want AS24940 (Figure 4)", bestAS)
	}

	// Plan and execute.
	sp, err := attack.NewSpatial(pop)
	if err != nil {
		t.Fatal(err)
	}
	pools, err := mining.NewPoolSet(dataset.TableIV())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sp.PlanAS(666, bestAS, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sp.Execute(plan, pools)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapturedNodes < 900 {
		t.Fatalf("captured %d nodes", res.CapturedNodes)
	}

	// Defense: the route guard detects and purges; routing heals.
	guard, err := defense.NewRouteGuard(pop.Topo)
	if err != nil {
		t.Fatal(err)
	}
	suspicions := guard.Audit()
	if len(suspicions) != plan.HijackCount {
		t.Errorf("audit flagged %d prefixes, plan hijacked %d", len(suspicions), plan.HijackCount)
	}
	if _, err := guard.PurgeSuspicious(suspicions); err != nil {
		t.Fatal(err)
	}
	for _, n := range pop.NodesInAS(bestAS)[:20] {
		if got, _ := pop.Topo.Resolve(n.IP); got != bestAS {
			t.Fatalf("routing not healed: %v -> AS%d", n.IP, got)
		}
	}
}

// TestTemporalPipeline: a live simulation is crawled Bitnodes-style; the
// attacker picks victims from the crawler's (adversarial) view; the attack
// captures them; SPV clients inherit the counterfeit view; BlockAware-less
// healing recovers everyone; the crawl log round-trips through JSONL.
func TestTemporalPipeline(t *testing.T) {
	study, err := core.New(103, core.WithNetworkNodes(100))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := study.NewSimFromPopulation(100, 103)
	if err != nil {
		t.Fatal(err)
	}
	c, err := crawler.New(sim, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := spv.NewFleet(sim, 1500, stats.NewRand(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.StartMining()
	c.Start()
	sim.Run(6 * time.Hour)

	// Adversarial view from the crawl: all up nodes are candidates.
	snap := c.CaptureNow()
	candidates := snap.VulnerableNodes(0)
	if len(candidates) < 50 {
		t.Fatalf("crawler sees only %d candidates", len(candidates))
	}
	victims := attack.FindVictims(sim, 0, 12)

	res, err := attack.ExecuteTemporalOn(sim, attack.TemporalConfig{
		AttackerShare: 0.30,
		HoldFor:       8 * time.Hour,
		HealFor:       0,
		TrackPayment:  true,
	}, victims)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapturedAtRelease < len(victims)/2 {
		t.Fatalf("captured %d of %d", res.CapturedAtRelease, len(victims))
	}
	// SPV amplification: wallets behind captured nodes see the counterfeit
	// chain (skip if no wallet happened to bind to a victim).
	exp := fleet.Exposure()
	victimWallets := 0
	for _, v := range victims {
		victimWallets += fleet.ClientsOf(v)
	}
	if victimWallets > 0 && exp.OnCounterfeit == 0 {
		t.Error("no wallet inherited the counterfeit chain despite bound victims")
	}

	// Heal and verify recovery + double-spend completion.
	sim.Run(sim.Engine.Now() + 4*time.Hour)
	recovered := 0
	for _, v := range victims {
		if !sim.Network.Nodes[v].Tree.Tip().Counterfeit {
			recovered++
		}
	}
	if recovered < len(victims)*3/4 {
		t.Errorf("recovered %d of %d after heal", recovered, len(victims))
	}

	// Crawl log round-trip.
	c.Stop()
	var buf bytes.Buffer
	if err := crawler.WriteJSONL(&buf, c.Snapshots()); err != nil {
		t.Fatal(err)
	}
	back, err := crawler.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(c.Snapshots()) {
		t.Errorf("round trip lost snapshots: %d vs %d", len(back), len(c.Snapshots()))
	}
}

// TestSpatioTemporalPipeline: trace → moment → plan → combined execution.
func TestSpatioTemporalPipeline(t *testing.T) {
	study, err := core.New(107, core.WithNetworkNodes(90))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := study.Pop.RunTrace(dataset.TraceConfig{
		Duration: 24 * time.Hour, SampleEvery: 10 * time.Minute,
		Seed: 9, TrackSyncedByAS: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	moment, err := attack.FindBestMoment(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := attack.PlanSpatioTemporal(study.Pop, moment, attack.CapabilityBoth, 5)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Coverage < 0.5 {
		t.Errorf("combined coverage %.2f at the weakest moment", plan.Coverage)
	}

	sim, err := study.NewSimFromPopulation(90, 107)
	if err != nil {
		t.Fatal(err)
	}
	sim.StartMining()
	sim.Run(5 * time.Hour)
	candidates := attack.FindVictims(sim, 0, 0)
	res, err := attack.ExecuteSpatioTemporal(sim, attack.TemporalConfig{
		AttackerShare: 0.30, HoldFor: 6 * time.Hour, HealFor: 3 * time.Hour,
	}, candidates[:8], candidates[8:20])
	if err != nil {
		t.Fatal(err)
	}
	if res.SpatialIsolated == 0 || res.Temporal.CapturedAtRelease == 0 {
		t.Errorf("combined attack ineffective: %+v", res)
	}
}

// TestLogicalPipeline: version census → CVE join → crash exploit →
// network impact on a live simulation carrying real version profiles.
func TestLogicalPipeline(t *testing.T) {
	study, err := core.New(109, core.WithNetworkNodes(120))
	if err != nil {
		t.Fatal(err)
	}
	db := vulndb.New()
	impact, err := attack.SimulateCrashExploit(study.Pop, db, "CVE-2018-17144")
	if err != nil {
		t.Fatal(err)
	}
	if impact.DownShare < 0.5 {
		t.Fatalf("crash exploit down share %.2f", impact.DownShare)
	}

	// Apply the exploit to a live simulation: nodes running affected
	// versions crash; the survivors keep the chain moving, degraded.
	sim, err := study.NewSimFromPopulation(120, 109)
	if err != nil {
		t.Fatal(err)
	}
	sim.StartMining()
	sim.Run(2 * time.Hour)
	downed := 0
	cve, _ := db.Lookup("CVE-2018-17144")
	for _, node := range sim.Network.Nodes {
		v, err := vulndb.ParseVersion(node.Profile.Version)
		if err != nil {
			continue
		}
		if cve.Affects(v) && !sim.IsGateway(node.ID) {
			node.Up = false
			downed++
		}
	}
	if downed < 40 {
		t.Fatalf("exploit downed only %d of 120 simulated nodes", downed)
	}
	before := sim.BlocksProduced()
	sim.Run(sim.Engine.Now() + 4*time.Hour)
	if sim.BlocksProduced() == before {
		t.Error("surviving network stopped producing blocks")
	}
	// Survivors still propagate.
	lag := sim.LagHistogram()
	if lag.Total() != 120-downed {
		t.Errorf("lag histogram total %d, want %d survivors", lag.Total(), 120-downed)
	}
	if frac := float64(lag.Synced) / float64(lag.Total()); frac < 0.6 {
		t.Errorf("survivor synced fraction %.2f", frac)
	}
}

// TestDefenseMatrix: each §VI countermeasure moves its attack's outcome in
// the right direction, measured end to end.
func TestDefenseMatrix(t *testing.T) {
	// Stratum dispersal raises miner-isolation cost.
	pools := dataset.TableIV()
	candidates := core.Figure4ASes()
	candidates = append(candidates, 7922, 4134, 51167, 45102, 58563, 60000, 60001, 60002)
	spread, err := defense.SpreadStratum(pools, candidates, 3)
	if err != nil {
		t.Fatal(err)
	}
	benefit, err := defense.EvaluateDispersal(pools, spread, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if benefit.After.Feasible && benefit.After.ASesHijacked <= benefit.Before.ASesHijacked {
		t.Errorf("dispersal did not raise cost: %+v", benefit)
	}
}
