package integration

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/gridsim"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/p2p"
)

// The structure-of-arrays rewrite of the gridsim and p2p hot paths
// (DESIGN.md §12) promises byte-identity: the same RNG draw order, the same
// study output, the same obs counters, and the same trace events as the
// pre-rewrite implementation. The goldens in this file were generated from
// the pre-rewrite code (set UPDATE_SOA_GOLDEN=1 to regenerate, which is
// only legitimate when the simulation semantics deliberately change).
//
// TestExperimentAllGolden already pins the full study output at workers 1
// and 8; the tests here pin the two surfaces it does not cover — the raw
// obs event trace of both hot substrates, and the merged ensemble metrics
// at worker counts 1 and 8.

// soaTraceWorkload runs one observed grid simulation and one observed
// gossip simulation and renders their traces plus metrics into a single
// deterministic byte stream.
func soaTraceWorkload(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer

	gridObs := obs.New(0)
	g, err := gridsim.New(1,
		gridsim.WithSize(25), gridsim.WithSpanRatio(2.0), gridsim.WithFailureRate(0.10),
		gridsim.WithAttacker(0.30, 7, 7), gridsim.WithBoundary(5, 0, 0),
		gridsim.WithObserver(gridObs))
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(g.StepsPerBlock() * 40)
	fmt.Fprintf(&buf, "gridsim: step=%d blocks=%d forks=%d counterfeit=%d\n",
		g.Step(), g.BlocksMined(), g.ForksEmerged(), g.CounterfeitCells())
	if err := gridObs.Tracer().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(gridObs.Registry().Snapshot().Render())

	netObs := obs.New(0)
	sim, err := netsim.FromConfig(netsim.Config{
		Nodes: 150, Seed: 7, Obs: netObs,
		Gossip: p2p.Config{FailureRate: 0.10},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.StartMining()
	sim.Run(8 * time.Hour)
	lb := sim.LagHistogram()
	fmt.Fprintf(&buf, "netsim: blocks=%d synced=%d behind=%d\n",
		sim.BlocksProduced(), lb.Synced, lb.Total()-lb.Synced)
	if err := netObs.Tracer().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(netObs.Registry().Snapshot().Render())
	return buf.Bytes()
}

// soaMetricsWorkload runs the grid-trial ensemble with a merged metrics
// registry at the given worker count and renders the result.
func soaMetricsWorkload(t *testing.T, workers int) []byte {
	t.Helper()
	o := obs.NewMetricsOnly()
	cfg := gridsim.NewConfig(1,
		gridsim.WithSize(25), gridsim.WithSpanRatio(2.0), gridsim.WithFailureRate(0.10),
		gridsim.WithAttacker(0.30, 7, 7), gridsim.WithBoundary(5, 0, 0),
		gridsim.WithObserver(o))
	res, err := gridsim.RunTrials(cfg, gridsim.TrialsConfig{
		Trials: 8, Blocks: 10, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "trials: forkrate=%.6f counterfeit=%.6f stale=%.6f\n",
		res.ForkRate, res.MeanCounterfeitShare, res.MeanStaleShare)
	for _, tr := range res.Trials {
		fmt.Fprintf(&buf, "trial seed=%d forks=%d counterfeit=%d stale=%d height=%d\n",
			tr.Seed, tr.Forks, tr.CounterfeitCells, tr.StaleCells, tr.MaxHeight)
	}
	buf.WriteString(o.Metrics.Snapshot().Render())
	return buf.Bytes()
}

// maybeUpdate writes the golden when UPDATE_SOA_GOLDEN=1 and always returns
// its current contents.
func maybeUpdate(t *testing.T, path string, got []byte) []byte {
	t.Helper()
	if os.Getenv("UPDATE_SOA_GOLDEN") == "1" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestSoATraceGolden pins the raw event traces and metrics of both hot
// substrates to the pre-rewrite golden.
func TestSoATraceGolden(t *testing.T) {
	got := soaTraceWorkload(t)
	want := maybeUpdate(t, "testdata/soa_trace_seed1.golden", got)
	if !bytes.Equal(got, want) {
		t.Errorf("trace output diverged from pre-rewrite golden (%d bytes vs %d)", len(got), len(want))
	}
}

// TestSoAMetricsGolden pins the merged trial-ensemble metrics to the
// pre-rewrite golden at workers 1 and 8 — both the per-trial results and
// the merge order of the ensemble registry must survive the SoA rewrite.
func TestSoAMetricsGolden(t *testing.T) {
	want := maybeUpdate(t, "testdata/soa_metrics_seed1.golden", soaMetricsWorkload(t, 1))
	for _, workers := range []int{1, 8} {
		got := soaMetricsWorkload(t, workers)
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: ensemble metrics diverged from pre-rewrite golden (%d bytes vs %d)",
				workers, len(got), len(want))
		}
	}
}
