package integration

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gridsim"
	"repro/internal/shard"
)

// TestExperimentAllShardedGolden pins the sharded-engine evaluation
// (`partition experiment all -seed 1 -shards K`) to a checked-in golden at
// shard counts 1, 4, and 16 crossed with study worker counts 1 and 8 — six
// byte-identical runs. The sharded engine is a different experiment from
// the legacy engine (pull-only vs. push-pull gossip), so it owns its own
// golden; what must never vary is the output across shard and worker
// counts.
func TestExperimentAllShardedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation × 6 configurations")
	}
	want, err := os.ReadFile("testdata/experiment_all_seed1_sharded.golden")
	if err != nil {
		t.Fatal(err)
	}
	base, err := os.ReadFile("testdata/experiment_all_seed1.golden")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(want, base) {
		t.Fatal("sharded golden is identical to the legacy golden; engine dispatch is broken")
	}
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("shards%d_workers%d", shards, workers), func(t *testing.T) {
				got := renderAll(t, workers, nil,
					core.WithShards(shards), core.WithShardWorkers(workers))
				if !bytes.Equal(got, want) {
					t.Errorf("output diverged from sharded golden (%d bytes vs %d)", len(got), len(want))
				}
			})
		}
	}
}

// TestExperimentAllShardedChurnyGolden crosses the two deterministic
// surfaces: fault injection under the sharded engine must be byte-identical
// across shard counts and pinned release to release.
func TestExperimentAllShardedChurnyGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation × 2 configurations")
	}
	want, err := os.ReadFile("testdata/experiment_all_seed1_sharded_churny.golden")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := os.ReadFile("testdata/experiment_all_seed1_sharded.golden")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(want, plain) {
		t.Fatal("sharded churny golden is identical to the faults-off sharded golden")
	}
	for _, shards := range []int{1, 16} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			got := renderAll(t, 8, nil,
				core.WithShards(shards), core.WithFaults(faults.Churny()))
			if !bytes.Equal(got, want) {
				t.Errorf("output diverged from sharded churny golden (%d bytes vs %d)", len(got), len(want))
			}
		})
	}
}

// millionNodeDigest runs the 1000×1000 world — the million-node study the
// sharded engine exists for — for two block intervals plus a settle tail
// and digests everything observable into one SHA-256.
func millionNodeDigest(t *testing.T, shards, workers int, kind shard.Kind, rebalance bool) string {
	t.Helper()
	opts := []gridsim.Option{
		gridsim.WithSize(1000),
		// A small span ratio keeps the million-cell run to tens of steps:
		// 0.02 × 1000 = 20 communication steps per block.
		gridsim.WithSpanRatio(0.02),
		gridsim.WithFailureRate(0.10),
		gridsim.WithAttacker(0.30, 500, 500),
		gridsim.WithBoundary(40, 0, 30),
		gridsim.WithShards(shards),
		gridsim.WithShardWorkers(workers),
		gridsim.WithRouter(kind),
	}
	if rebalance {
		opts = append(opts, gridsim.WithRebalance(25, shards+3))
	}
	g, err := gridsim.New(1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	g.Advance(2*g.StepsPerBlock() + 5)
	h := sha256.New()
	fmt.Fprintf(h, "mined=%d forks=%d counterfeit=%d;", g.BlocksMined(), g.ForksEmerged(), g.CounterfeitCells())
	for _, fc := range g.ForkCounts() {
		fmt.Fprintf(h, "%v:%d;", fc.Fork, fc.Cells)
	}
	h.Write([]byte(g.Render()))
	return hex.EncodeToString(h.Sum(nil))
}

// millionNodeGolden pins the million-node study's digest. Regenerate with
// `go test ./internal/integration -run TestMillionNodeShardedStudy -v`
// after an intentional engine change (the failure message prints the new
// value).
const millionNodeGolden = "7131f3313cb10ad58fc2ec78b896d1591c1192003a35b650c2d2b0182ade0eb9"

// TestMillionNodeShardedStudy is the acceptance gate of DESIGN.md §13: a
// 10⁶-node world produces a byte-identical study at shard counts 1, 4, and
// 16, at gang widths 1 and 8, under either router, and across a mid-run
// rebalance — all pinned to one golden digest.
func TestMillionNodeShardedStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("nine million-cell runs")
	}
	configs := []struct {
		name      string
		shards    int
		workers   int
		kind      shard.Kind
		rebalance bool
	}{
		{"shards1_workers1", 1, 1, shard.KindRange, false},
		{"shards4_workers1", 4, 1, shard.KindRange, false},
		{"shards4_workers8", 4, 8, shard.KindRange, false},
		{"shards16_workers1", 16, 1, shard.KindRange, false},
		{"shards16_workers8", 16, 8, shard.KindRange, false},
		{"shards4_ring", 4, 8, shard.KindRing, false},
		{"shards16_ring", 16, 8, shard.KindRing, false},
		{"shards4_rebalance", 4, 8, shard.KindRange, true},
		{"shards16_ring_rebalance", 16, 8, shard.KindRing, true},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			got := millionNodeDigest(t, tc.shards, tc.workers, tc.kind, tc.rebalance)
			if got != millionNodeGolden {
				t.Errorf("digest %s diverged from golden %s", got, millionNodeGolden)
			}
		})
	}
}
