package sim

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersByTime(t *testing.T) {
	var e Engine
	var got []time.Duration
	for _, d := range []time.Duration{5 * time.Second, time.Second, 3 * time.Second} {
		d := d
		if err := e.At(d, func(now time.Duration) { got = append(got, now) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(10 * time.Second)
	want := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.At(time.Second, func(time.Duration) { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(time.Second)
	if !sort.IntsAreSorted(got) {
		t.Errorf("same-time events ran out of order: %v", got)
	}
	if len(got) != 10 {
		t.Errorf("ran %d events, want 10", len(got))
	}
}

func TestEngineRunHorizon(t *testing.T) {
	var e Engine
	ran := 0
	_ = e.At(time.Second, func(time.Duration) { ran++ })
	_ = e.At(5*time.Second, func(time.Duration) { ran++ })
	n := e.Run(2 * time.Second)
	if n != 1 || ran != 1 {
		t.Fatalf("ran %d events before horizon, want 1", ran)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	// Second run picks up the remaining event.
	e.Run(10 * time.Second)
	if ran != 2 {
		t.Errorf("ran = %d after second run, want 2", ran)
	}
}

func TestEngineEventAtHorizonRuns(t *testing.T) {
	var e Engine
	ran := false
	_ = e.At(2*time.Second, func(time.Duration) { ran = true })
	e.Run(2 * time.Second)
	if !ran {
		t.Error("event scheduled exactly at the horizon did not run")
	}
}

func TestEngineSchedulePast(t *testing.T) {
	var e Engine
	_ = e.At(5*time.Second, func(time.Duration) {})
	e.Run(5 * time.Second)
	err := e.At(time.Second, func(time.Duration) {})
	if !errors.Is(err, ErrSchedulePast) {
		t.Errorf("err = %v, want ErrSchedulePast", err)
	}
}

func TestEngineNilHandler(t *testing.T) {
	var e Engine
	if err := e.At(time.Second, nil); err == nil {
		t.Error("nil handler: want error")
	}
}

func TestEngineAfterNegativeDelayClamps(t *testing.T) {
	var e Engine
	ran := false
	if err := e.After(-time.Second, func(time.Duration) { ran = true }); err != nil {
		t.Fatal(err)
	}
	e.Run(time.Second)
	if !ran {
		t.Error("negative-delay event did not run")
	}
}

func TestEngineCascade(t *testing.T) {
	// A handler that reschedules itself should keep running until the horizon.
	var e Engine
	count := 0
	var tick Handler
	tick = func(now time.Duration) {
		count++
		_ = e.After(time.Second, tick)
	}
	_ = e.After(time.Second, tick)
	e.Run(10 * time.Second)
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
}

func TestEngineStop(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 5; i++ {
		_ = e.At(time.Duration(i)*time.Second, func(time.Duration) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(time.Minute)
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped)", count)
	}
}

func TestRunAllCap(t *testing.T) {
	var e Engine
	var storm Handler
	storm = func(time.Duration) { _ = e.After(time.Millisecond, storm) }
	_ = e.After(0, storm)
	if err := e.RunAll(100); err == nil {
		t.Error("RunAll with self-sustaining storm: want cap error")
	}
}

func TestRunAllDrains(t *testing.T) {
	var e Engine
	count := 0
	for i := 0; i < 50; i++ {
		_ = e.At(time.Duration(i)*time.Millisecond, func(time.Duration) { count++ })
	}
	if err := e.RunAll(1000); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Errorf("count = %d, want 50", count)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", e.Pending())
	}
}

func TestEngineClockMonotoneProperty(t *testing.T) {
	// Property: for any batch of scheduling offsets, handlers observe a
	// non-decreasing clock.
	f := func(offsets []uint16) bool {
		var e Engine
		last := time.Duration(-1)
		ok := true
		for _, off := range offsets {
			d := time.Duration(off) * time.Millisecond
			if err := e.At(d, func(now time.Duration) {
				if now < last {
					ok = false
				}
				last = now
			}); err != nil {
				return false
			}
		}
		e.Run(time.Duration(1<<16) * time.Millisecond)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
