package sim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/checkpoint"
)

// selfSustaining schedules an event chain that never terminates: each
// firing schedules the next — the shape of a non-terminating fault
// scenario the watchdog must cancel.
func selfSustaining(e *Engine) {
	var fire Handler
	fire = func(now time.Duration) {
		if err := e.After(time.Second, fire); err != nil {
			panic(err)
		}
	}
	if err := e.After(0, fire); err != nil {
		panic(err)
	}
}

func TestEventBudgetCancelsRun(t *testing.T) {
	e := &Engine{}
	e.SetEventBudget(100)
	selfSustaining(e)
	e.Run(time.Hour)
	if !e.BudgetExhausted() {
		t.Fatal("watchdog did not fire")
	}
	if got := e.Processed(); got != 100 {
		t.Errorf("processed %d events, budget 100", got)
	}
	err := e.BudgetErr()
	if !errors.Is(err, checkpoint.ErrBudget) {
		t.Errorf("BudgetErr = %v, want wrap of checkpoint.ErrBudget", err)
	}
	// The clock must stay at the cancellation point, not jump to the
	// horizon: the run did not actually get there.
	if e.Now() >= time.Hour {
		t.Errorf("exhausted run advanced clock to %v", e.Now())
	}
}

func TestEventBudgetCancelsRunAll(t *testing.T) {
	e := &Engine{}
	e.SetEventBudget(50)
	selfSustaining(e)
	if err := e.RunAll(1 << 20); err != nil {
		t.Fatalf("RunAll returned the cap error before the budget: %v", err)
	}
	if !e.BudgetExhausted() || e.Processed() != 50 {
		t.Errorf("exhausted=%v processed=%d", e.BudgetExhausted(), e.Processed())
	}
}

func TestEventBudgetDisarmed(t *testing.T) {
	e := &Engine{}
	n := 0
	for i := 0; i < 10; i++ {
		if err := e.After(time.Duration(i)*time.Second, func(time.Duration) { n++ }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(time.Hour)
	if e.BudgetExhausted() || e.BudgetErr() != nil || n != 10 {
		t.Errorf("disarmed watchdog interfered: exhausted=%v n=%d", e.BudgetExhausted(), n)
	}
	// Re-arming clears the latch.
	e.SetEventBudget(5)
	if e.BudgetExhausted() {
		t.Error("SetEventBudget did not reset the latch")
	}
}

func TestEventBudgetDeterministic(t *testing.T) {
	run := func() (uint64, time.Duration) {
		e := &Engine{}
		e.SetEventBudget(64)
		selfSustaining(e)
		e.Run(time.Hour)
		return e.Processed(), e.Now()
	}
	p1, t1 := run()
	p2, t2 := run()
	if p1 != p2 || t1 != t2 {
		t.Errorf("cancellation point not deterministic: (%d,%v) vs (%d,%v)", p1, t1, p2, t2)
	}
}
