// Package sim provides the discrete-event simulation core used by the
// network simulator (internal/netsim) and indirectly by every attack
// validation experiment. It implements a virtual clock and a priority event
// queue: handlers scheduled at virtual times run in timestamp order, with
// FIFO tie-breaking for events at the same instant so runs are fully
// deterministic.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"repro/internal/checkpoint"
)

// Handler is a unit of simulated work executed at its scheduled virtual time.
type Handler func(now time.Duration)

// event is one scheduled handler.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for identical timestamps
	fn  Handler
	// index is maintained by the heap for removal support.
	index int
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// ErrSchedulePast is returned when a handler is scheduled before the current
// virtual time.
var ErrSchedulePast = errors.New("sim: cannot schedule event in the past")

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engine is not safe for concurrent use; the simulation model
// is deliberately sequential so that a seed fully determines a run.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	nextSeq uint64
	stopped bool
	// processed counts executed events, exposed for tests and for guarding
	// against runaway simulations.
	processed uint64
	// budget, when non-zero, is the watchdog cap on total processed events;
	// exhausted latches once Run refuses to cross it.
	budget    uint64
	exhausted bool
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute virtual time at. It returns
// ErrSchedulePast if at precedes the current virtual time.
func (e *Engine) At(at time.Duration, fn Handler) error {
	if fn == nil {
		return errors.New("sim: nil handler")
	}
	if at < e.now {
		return fmt.Errorf("%w: at=%v now=%v", ErrSchedulePast, at, e.now)
	}
	ev := &event{at: at, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return nil
}

// After schedules fn to run delay after the current virtual time. Negative
// delays are clamped to zero: an exponential delay sampler can legitimately
// round to a tiny negative number and "now" is the correct interpretation.
func (e *Engine) After(delay time.Duration, fn Handler) error {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// Stop halts the run loop after the currently executing handler returns.
func (e *Engine) Stop() { e.stopped = true }

// SetEventBudget arms the watchdog: once n events in total have been
// processed, Run and RunAll stop executing and BudgetExhausted latches true.
// A non-terminating fault scenario is thereby cancelled at a deterministic
// point (the budget counts events, not wall time) instead of hanging the
// trial. n = 0 disarms the watchdog.
func (e *Engine) SetEventBudget(n uint64) {
	e.budget = n
	e.exhausted = false
}

// BudgetExhausted reports whether a run was cancelled by the event budget.
func (e *Engine) BudgetExhausted() bool { return e.exhausted }

// BudgetErr returns nil, or the watchdog cancellation as an error wrapping
// checkpoint.ErrBudget so supervised runners journal the trial as exhausted
// rather than quarantined.
func (e *Engine) BudgetErr() error {
	if !e.exhausted {
		return nil
	}
	return fmt.Errorf("%w: event budget %d hit at t=%v with %d pending",
		checkpoint.ErrBudget, e.budget, e.now, len(e.queue))
}

// overBudget checks (and latches) the watchdog before each event.
func (e *Engine) overBudget() bool {
	if e.budget > 0 && e.processed >= e.budget {
		e.exhausted = true
	}
	return e.exhausted
}

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the virtual clock passes until. Events scheduled exactly at
// until still run. It returns the number of events processed by this call.
func (e *Engine) Run(until time.Duration) uint64 {
	start := e.processed
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && !e.overBudget() {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.processed++
		next.fn(e.now)
	}
	// Advance the clock to the horizon even if the queue drained early, so
	// repeated Run calls observe monotonic time. An exhausted run stays at
	// the cancellation point: it did not actually reach the horizon.
	if !e.stopped && !e.exhausted && e.now < until {
		e.now = until
	}
	return e.processed - start
}

// RunAll executes events until the queue is empty or Stop is called, with a
// safety cap on the number of events to guard against self-sustaining event
// storms. It returns an error if the cap is hit.
func (e *Engine) RunAll(maxEvents uint64) error {
	e.stopped = false
	var n uint64
	for len(e.queue) > 0 && !e.stopped && !e.overBudget() {
		if n >= maxEvents {
			return fmt.Errorf("sim: event cap %d reached at t=%v with %d pending", maxEvents, e.now, len(e.queue))
		}
		next := heap.Pop(&e.queue).(*event)
		e.now = next.at
		e.processed++
		n++
		next.fn(e.now)
	}
	return nil
}
