// Package sim provides the discrete-event simulation core used by the
// network simulator (internal/netsim) and indirectly by every attack
// validation experiment. It implements a virtual clock and a priority event
// queue: handlers scheduled at virtual times run in timestamp order, with
// FIFO tie-breaking for events at the same instant so runs are fully
// deterministic.
package sim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/checkpoint"
)

// Handler is a unit of simulated work executed at its scheduled virtual time.
type Handler func(now time.Duration)

// MsgEvent is a typed, closure-free scheduled payload. The hot schedulers
// (the p2p gossip relay foremost) used to capture their message in a
// closure per scheduled delivery — one closure allocation plus one event
// allocation per message. A MsgEvent instead rides inside the event value
// itself and is handed back to its MsgSink at fire time, so the steady
// state allocates nothing per message (DESIGN.md §12). The field meanings
// are the sink's business; the engine only orders and delivers.
type MsgEvent struct {
	Kind    uint8 // sink-defined discriminator
	Attempt uint8 // retry ordinal, for sinks that re-arm themselves
	From    int32 // sink-defined endpoint
	To      int32 // sink-defined endpoint
	Idx     int32 // sink-defined dense index (e.g. an interned hash)
	Key     uint64
	Obj     any // optional payload pointer; kept a pointer so boxing never allocates
}

// MsgSink receives typed events at their scheduled virtual time.
type MsgSink interface {
	HandleMsg(now time.Duration, m MsgEvent)
}

// payload holds the pointer-carrying part of an event — a closure handler,
// or a typed message's optional Obj. Payloads live in a freelist-recycled
// arena and only events that actually carry a pointer occupy a slot; a
// plain typed message (the overwhelming majority on the gossip hot path)
// is fully inlined in its heapNode and never touches the arena.
type payload struct {
	fn  Handler
	obj any
}

// heapNode is one queued event: the (at, seq) ordering key plus the typed
// message fields inlined. It is deliberately pointer-free: sift moves are
// plain 48-byte copies and the GC write barrier never fires during
// reordering (barrier traffic was ~25% of the gossip profile when events
// carried their pointers through the heap). ref points at the arena
// payload, or -1 when there is none.
type heapNode struct {
	at      time.Duration
	seq     uint64 // unique, so (at, seq) is a strict total order
	key     uint64
	from    int32
	to      int32
	idx     int32
	ref     int32
	kind    uint8
	attempt uint8
	sinkID  uint8
	flags   uint8
}

// heapNode flag bits.
const (
	flagFn uint8 = 1 << iota // arena payload holds a Handler
)

// before is the queue order: timestamp, then schedule order. seq is
// unique, so equal elements cannot arise and any correct min-heap —
// including the 4-ary one used here, whose sift-downs touch half the
// levels of a binary heap's — pops the exact same sequence container/heap
// did.
func (hn heapNode) before(other heapNode) bool {
	if hn.at != other.at {
		return hn.at < other.at
	}
	return hn.seq < other.seq
}

// alloc stores a pointer-carrying payload in a recycled arena slot and
// returns the slot index.
func (e *Engine) alloc(p payload) int32 {
	var ref int32
	if n := len(e.free); n > 0 {
		ref = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		ref = int32(len(e.arena))
		e.arena = append(e.arena, payload{})
	}
	e.arena[ref] = p
	return ref
}

// The queue is an exact timer wheel: wheelSize buckets of bucketWidth
// virtual time each, covering a rolling window of wheelSize×bucketWidth
// (64s), plus a small 4-ary min-heap for events beyond the window. A push
// inside the window is an O(1) append to its bucket — no comparisons, no
// sifting; a bucket is sorted by (at, seq) once, when the wheel reaches it,
// and consumed front to back. seq is unique, so (at, seq) is a strict total
// order: the sorted bucket sequence is unique regardless of the sorting
// algorithm, and the wheel pops the exact sequence container/heap did.
//
// The shape is matched to the workload: gossip deliveries cluster within a
// few mean relay delays (seconds) of now and retry timers sit 30s out, so
// in steady state everything lands on the wheel in buckets of a few dozen
// events; only the rare long timers (mining inter-arrivals, fault
// schedules) overflow to the far heap, which stays tiny. The previous
// design — one big 4-ary heap — spent ~40% of the gossip profile sifting
// (DESIGN.md §12).
const (
	bucketWidth = 250 * time.Millisecond
	wheelSize   = 256 // power of two; window = wheelSize * bucketWidth = 64s
	// slabCap is each bucket's initial capacity, carved from one shared
	// slab so a fresh engine pays one allocation, not one per bucket.
	slabCap = 32
)

// push stamps the node's sequence number and files it: appended to its
// wheel bucket when within the window, sorted-inserted when that bucket is
// the one currently draining, or sifted into the far heap when beyond the
// window. In steady state nothing here allocates; the container/heap
// version cost one *event allocation per schedule plus interface dispatch
// per comparison.
func (e *Engine) push(hn heapNode) {
	if e.buckets[0] == nil {
		slab := make([]heapNode, wheelSize*slabCap)
		for i := range e.buckets {
			e.buckets[i] = slab[i*slabCap : i*slabCap : (i+1)*slabCap]
		}
	}
	hn.seq = e.nextSeq
	e.nextSeq++
	b := int64(hn.at / bucketWidth)
	if b >= e.curBucket+wheelSize {
		// Beyond the window: far heap, refiled as the wheel advances.
		e.far = append(e.far, hn)
		q := e.far
		i := len(q) - 1
		for i > 0 {
			p := (i - 1) >> 2
			if !hn.before(q[p]) {
				break
			}
			q[i] = q[p]
			i = p
		}
		q[i] = hn
		return
	}
	e.wheelCount++
	if b > e.curBucket {
		// A future bucket collects unsorted; it is sorted on activation.
		bucket := &e.buckets[b&(wheelSize-1)]
		*bucket = append(*bucket, hn)
		return
	}
	// The current bucket, or — when peek has walked the cursor ahead of a
	// not-yet-popped now — an already-passed one: either way the event
	// belongs in the draining bucket's sorted tail, where (at, seq) order
	// puts it in front of everything later.
	bucket := &e.buckets[e.curBucket&(wheelSize-1)]
	// The current bucket's unconsumed tail is sorted; keep it that way.
	s := (*bucket)[e.cur:]
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].before(hn) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	*bucket = append(*bucket, heapNode{})
	s = (*bucket)[e.cur:]
	copy(s[lo+1:], s[lo:])
	s[lo] = hn
}

// pending returns the number of events waiting across both stores.
func (e *Engine) pending() int {
	return e.wheelCount + len(e.far)
}

// sortBucket sorts a bucket by (at, seq): insertion sort for the typical
// few-dozen-event bucket, quicksort for the occasional burst bucket where
// insertion sort's quadratic cost would bite. The order is unique either
// way — seq makes the key strictly total.
func sortBucket(s []heapNode) {
	// Hand-rolled quicksort with direct (at, seq) comparisons: the generic
	// slices.SortFunc pays an indirect call per comparison, which dominated
	// the gossip profile once everything else on this path was slices and
	// arenas. Keys are strictly totally ordered, so any correct sort —
	// whatever its pivot luck — produces the one sorted order the byte-
	// identity contract needs.
	for len(s) > 24 {
		// Median-of-three pivot; p is a copy of an element of s, which makes
		// both Hoare scans terminate in bounds.
		a, b, c := s[0], s[len(s)/2], s[len(s)-1]
		if b.before(a) {
			a, b = b, a
		}
		var p heapNode
		switch {
		case c.before(a):
			p = a
		case c.before(b):
			p = c
		default:
			p = b
		}
		i, j := -1, len(s)
		for {
			for {
				i++
				if !s[i].before(p) {
					break
				}
			}
			for {
				j--
				if !p.before(s[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
		}
		// Recurse into the smaller side, iterate on the larger.
		if j+1 <= len(s)-(j+1) {
			sortBucket(s[:j+1])
			s = s[j+1:]
		} else {
			sortBucket(s[j+1:])
			s = s[:j+1]
		}
	}
	for i := 1; i < len(s); i++ {
		hn := s[i]
		j := i
		for j > 0 && hn.before(s[j-1]) {
			s[j] = s[j-1]
			j--
		}
		s[j] = hn
	}
}

// refill moves far-heap events that have entered the wheel window onto the
// wheel. Called whenever curBucket advances.
func (e *Engine) refill() {
	for len(e.far) > 0 && int64(e.far[0].at/bucketWidth) < e.curBucket+wheelSize {
		q := e.far
		hn := q[0]
		n := len(q) - 1
		last := q[n]
		e.far = q[:n]
		q = e.far
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			for r := c + 1; r < end; r++ {
				if q[r].before(q[c]) {
					c = r
				}
			}
			if !q[c].before(last) {
				break
			}
			q[i] = q[c]
			i = c
		}
		if n > 0 {
			q[i] = last
		}
		e.wheelCount++
		b := int64(hn.at / bucketWidth)
		e.buckets[b&(wheelSize-1)] = append(e.buckets[b&(wheelSize-1)], hn)
	}
}

// locate advances the wheel cursor to the first pending event, sorting each
// bucket as it becomes current and refiling far events as they enter the
// window. It only performs order-neutral structural maintenance, so it is
// safe to call from peek. Precondition: pending() > 0.
func (e *Engine) locate() {
	for {
		bucket := &e.buckets[e.curBucket&(wheelSize-1)]
		if e.cur < len(*bucket) {
			return
		}
		*bucket = (*bucket)[:0]
		e.cur = 0
		if e.wheelCount > 0 {
			e.curBucket++
		} else {
			// Wheel empty: jump straight to the earliest far event.
			e.curBucket = int64(e.far[0].at / bucketWidth)
		}
		e.refill()
		sortBucket(e.buckets[e.curBucket&(wheelSize-1)])
	}
}

// peek returns the earliest pending node in (at, seq) order. Far events are
// all beyond the wheel window, so once locate has settled, the current
// bucket's front is the global minimum.
func (e *Engine) peek() heapNode {
	e.locate()
	return e.buckets[e.curBucket&(wheelSize-1)][e.cur]
}

// pop removes the minimum node and returns it together with its arena
// payload, if any. The arena slot is zeroed (so the queue does not retain
// handler closures or message payloads) and recycled; most typed messages
// carry no pointer and skip the arena entirely.
func (e *Engine) pop() (heapNode, payload) {
	e.locate()
	bucket := e.buckets[e.curBucket&(wheelSize-1)]
	top := bucket[e.cur]
	e.cur++
	e.wheelCount--
	var p payload
	if top.ref >= 0 {
		p = e.arena[top.ref]
		e.arena[top.ref] = payload{}
		e.free = append(e.free, top.ref)
	}
	return top, p
}

// dispatch fires one popped event: either the closure handler or the typed
// message, reassembled from the node's inlined fields.
func (e *Engine) dispatch(hn heapNode, p payload) {
	if hn.flags&flagFn != 0 {
		p.fn(e.now)
		return
	}
	e.sinks[hn.sinkID].HandleMsg(e.now, MsgEvent{
		Kind:    hn.kind,
		Attempt: hn.attempt,
		From:    hn.from,
		To:      hn.to,
		Idx:     hn.idx,
		Key:     hn.key,
		Obj:     p.obj,
	})
}

// ErrSchedulePast is returned when a handler is scheduled before the current
// virtual time.
var ErrSchedulePast = errors.New("sim: cannot schedule event in the past")

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engine is not safe for concurrent use; the simulation model
// is deliberately sequential so that a seed fully determines a run.
type Engine struct {
	now time.Duration
	// buckets is the timer wheel (see push); curBucket is the absolute
	// bucket number the wheel is draining, cur the consumed prefix of its
	// bucket, and wheelCount the events currently on the wheel. far is the
	// 4-ary min-heap of events beyond the wheel window.
	buckets    [wheelSize][]heapNode
	far        []heapNode
	curBucket  int64
	cur        int
	wheelCount int
	// arena holds the pointer-carrying payloads, indexed by heapNode.ref;
	// free recycles vacated slots.
	arena []payload
	free  []int32
	// sinks is the registry of MsgSink receivers, indexed by heapNode.sinkID.
	// A simulation registers a handful at most (the p2p network is the only
	// one today), so lookup is a linear scan at schedule time.
	sinks   []MsgSink
	nextSeq uint64
	stopped bool
	// processed counts executed events, exposed for tests and for guarding
	// against runaway simulations.
	processed uint64
	// budget, when non-zero, is the watchdog cap on total processed events;
	// exhausted latches once Run refuses to cross it.
	budget    uint64
	exhausted bool
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.pending() }

// At schedules fn to run at the absolute virtual time at. It returns
// ErrSchedulePast if at precedes the current virtual time.
func (e *Engine) At(at time.Duration, fn Handler) error {
	if fn == nil {
		return errors.New("sim: nil handler")
	}
	if at < e.now {
		return fmt.Errorf("%w: at=%v now=%v", ErrSchedulePast, at, e.now)
	}
	e.push(heapNode{at: at, ref: e.alloc(payload{fn: fn}), flags: flagFn})
	return nil
}

// AtMsg schedules delivery of a typed message to sink at the absolute
// virtual time at. It shares At's sequence counter, so closure events and
// message events interleave in exactly their scheduling order.
func (e *Engine) AtMsg(at time.Duration, sink MsgSink, m MsgEvent) error {
	if sink == nil {
		return errors.New("sim: nil sink")
	}
	if at < e.now {
		return fmt.Errorf("%w: at=%v now=%v", ErrSchedulePast, at, e.now)
	}
	id := -1
	for i, s := range e.sinks {
		if s == sink {
			id = i
			break
		}
	}
	if id < 0 {
		if len(e.sinks) == 256 {
			return errors.New("sim: too many distinct sinks")
		}
		id = len(e.sinks)
		e.sinks = append(e.sinks, sink)
	}
	hn := heapNode{
		at:      at,
		key:     m.Key,
		from:    m.From,
		to:      m.To,
		idx:     m.Idx,
		ref:     -1,
		kind:    m.Kind,
		attempt: m.Attempt,
		sinkID:  uint8(id),
	}
	if m.Obj != nil {
		hn.ref = e.alloc(payload{obj: m.Obj})
	}
	e.push(hn)
	return nil
}

// AfterMsg schedules a typed message delay after the current virtual time,
// clamping negative delays to zero like After.
func (e *Engine) AfterMsg(delay time.Duration, sink MsgSink, m MsgEvent) error {
	if delay < 0 {
		delay = 0
	}
	return e.AtMsg(e.now+delay, sink, m)
}

// After schedules fn to run delay after the current virtual time. Negative
// delays are clamped to zero: an exponential delay sampler can legitimately
// round to a tiny negative number and "now" is the correct interpretation.
func (e *Engine) After(delay time.Duration, fn Handler) error {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// Stop halts the run loop after the currently executing handler returns.
func (e *Engine) Stop() { e.stopped = true }

// SetEventBudget arms the watchdog: once n events in total have been
// processed, Run and RunAll stop executing and BudgetExhausted latches true.
// A non-terminating fault scenario is thereby cancelled at a deterministic
// point (the budget counts events, not wall time) instead of hanging the
// trial. n = 0 disarms the watchdog.
func (e *Engine) SetEventBudget(n uint64) {
	e.budget = n
	e.exhausted = false
}

// BudgetExhausted reports whether a run was cancelled by the event budget.
func (e *Engine) BudgetExhausted() bool { return e.exhausted }

// BudgetErr returns nil, or the watchdog cancellation as an error wrapping
// checkpoint.ErrBudget so supervised runners journal the trial as exhausted
// rather than quarantined.
func (e *Engine) BudgetErr() error {
	if !e.exhausted {
		return nil
	}
	return fmt.Errorf("%w: event budget %d hit at t=%v with %d pending",
		checkpoint.ErrBudget, e.budget, e.now, e.pending())
}

// overBudget checks (and latches) the watchdog before each event.
func (e *Engine) overBudget() bool {
	if e.budget > 0 && e.processed >= e.budget {
		e.exhausted = true
	}
	return e.exhausted
}

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the virtual clock passes until. Events scheduled exactly at
// until still run. It returns the number of events processed by this call.
func (e *Engine) Run(until time.Duration) uint64 {
	start := e.processed
	e.stopped = false
	for e.pending() > 0 && !e.stopped && !e.overBudget() {
		at := e.peek().at
		if at > until {
			break
		}
		hn, p := e.pop()
		e.now = at
		e.processed++
		e.dispatch(hn, p)
	}
	// Advance the clock to the horizon even if the queue drained early, so
	// repeated Run calls observe monotonic time. An exhausted run stays at
	// the cancellation point: it did not actually reach the horizon.
	if !e.stopped && !e.exhausted && e.now < until {
		e.now = until
	}
	return e.processed - start
}

// RunAll executes events until the queue is empty or Stop is called, with a
// safety cap on the number of events to guard against self-sustaining event
// storms. It returns an error if the cap is hit.
func (e *Engine) RunAll(maxEvents uint64) error {
	e.stopped = false
	var n uint64
	for e.pending() > 0 && !e.stopped && !e.overBudget() {
		if n >= maxEvents {
			return fmt.Errorf("sim: event cap %d reached at t=%v with %d pending", maxEvents, e.now, e.pending())
		}
		at := e.peek().at
		hn, p := e.pop()
		e.now = at
		e.processed++
		n++
		e.dispatch(hn, p)
	}
	return nil
}
