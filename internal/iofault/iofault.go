// Package iofault is the filesystem seam of the durability layers
// (DESIGN.md §15): every file operation the crash-safety journal, the
// partitiond state directory, and the hardened framed archives perform goes
// through the FS interface, so the same code path runs against the real
// filesystem (OSFS, a zero-cost passthrough) or against a deterministic
// fault injector (ChaosFS). ChaosFS mirrors internal/faults for the
// simulation layer: every fault decision is drawn from SplitMix64 streams
// derived from a single seed — same seed, same faults — and never from the
// wall clock, so an injected-fault run is exactly as reproducible as a
// clean one.
//
// The package also defines the crash-point model the chaos harness
// enumerates: ChaosFS counts every durability point (file write, fsync,
// rename, directory sync) and can simulate a power failure at any counted
// point, leaving the on-disk state a real crash would leave — a torn final
// write, a skipped rename, or (in the power-off model) only the bytes that
// were fsynced. See chaos.go.
package iofault

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// ErrInjected is the sentinel every injected fault wraps. Injected faults
// model transient media errors (a full disk, a flaky controller): the
// operation failed, but the filesystem is still alive and a retry may
// succeed. Crash simulation does NOT wrap ErrInjected — a crashed
// filesystem is gone until restart.
var ErrInjected = errors.New("iofault: injected fault")

// ErrCrash marks every operation at or after a simulated crash point: the
// process is still running, but its filesystem behaves as if the machine
// lost power — nothing works until the harness "reboots" onto a fresh FS.
var ErrCrash = errors.New("iofault: simulated crash")

// IsTransient reports whether err is an injected transient I/O fault — the
// class the service re-admits with capped backoff instead of failing the
// job. A simulated crash is never transient.
func IsTransient(err error) bool {
	return errors.Is(err, ErrInjected) && !errors.Is(err, ErrCrash)
}

// File is the writable handle the durability layers use. *os.File satisfies
// it directly.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size — the resume path's corrupt-tail drop.
	Truncate(size int64) error
	// Seek positions the next read/write.
	Seek(offset int64, whence int) (int64, error)
}

// FS is the filesystem seam. Implementations must be safe for concurrent
// use (the daemon's pool workers persist results concurrently).
type FS interface {
	// OpenFile opens path with os.OpenFile semantics.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// ReadFile reads the whole file.
	ReadFile(path string) ([]byte, error)
	// WriteFile writes data to path in one call (create + truncate). Like
	// os.WriteFile it does NOT sync: the bytes may be lost at power-off.
	WriteFile(path string, data []byte, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadDir lists a directory, sorted by filename.
	ReadDir(path string) ([]fs.DirEntry, error)
	// Stat describes path.
	Stat(path string) (fs.FileInfo, error)
	// MkdirAll creates path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making preceding renames and
	// creates in it durable against power loss.
	SyncDir(path string) error
}

// OSFS is the passthrough implementation over the real filesystem — the
// production path. The zero value is ready to use; OS is the shared
// instance the layers default to when handed a nil FS.
type OSFS struct{}

// OS is the shared passthrough instance.
var OS FS = OSFS{}

// OrOS returns fsys, or the shared OSFS passthrough when fsys is nil — the
// defaulting rule every seam entry point applies.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}

func (OSFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

func (OSFS) Open(path string) (File, error) { return os.Open(path) }

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return os.WriteFile(path, data, perm)
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

func (OSFS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir opens the directory and fsyncs it. On filesystems whose directory
// handles reject fsync the error is surfaced; callers that only need
// process-crash safety may ignore it, power-off safety may not.
func (OSFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// DirOf returns the parent directory of path — the directory a caller must
// SyncDir after renaming path into place.
func DirOf(path string) string { return filepath.Dir(path) }
