package iofault

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"sync"
	"syscall"

	"repro/internal/parallel"
)

// ChaosFS wraps the real filesystem with deterministic fault injection and
// crash simulation. Two independent capabilities share the seam:
//
//   - Injected faults (probabilistic or targeted): short writes, write and
//     sync errors, rename failures, ENOSPC, read corruption. Every decision
//     is drawn from a per-family SplitMix64 stream derived from Config.Seed,
//     in operation order — two runs issuing the same operation sequence see
//     the same faults. Injected errors wrap ErrInjected and model transient
//     media trouble: the filesystem keeps working.
//
//   - Crash simulation: every durability point (file write, fsync, rename,
//     directory sync) is counted, and Config.CrashAt names the point at
//     which the "machine loses power": the crashing operation takes the
//     partial effect a real crash leaves (a torn write prefix, a skipped
//     rename or fsync) and every later operation fails with ErrCrash.
//     ApplyCrash then finalizes the on-disk state: in the default
//     truncate-at-point model everything written before the crash survives;
//     with DropUnsynced the power-off model applies and file contents
//     beyond the last fsync are lost (metadata — creates, renames — is
//     treated as journaled and survives, the ext4-ordered behaviour that
//     makes "rename without fsync" the classic torn-result bug).
//
// The durability model tracks file sizes, not byte ranges: the layers
// behind the seam are append-only writers (journals, framed archives,
// temp-then-rename artifacts), so "which prefix survives" fully describes a
// crash. Operations are serialized under one mutex, which is also what
// makes operation numbering — and therefore fault placement — deterministic
// for a serialized workload.
type ChaosFS struct {
	cfg Config

	mu       sync.Mutex
	ops      int
	log      []Op
	crashed  bool
	injected int
	failOps  map[int]bool
	files    map[string]*track

	shortS, writeS, syncS, renameS, spaceS, readS, tearS splitmix
}

// Config parameterizes a ChaosFS. The zero value injects nothing and never
// crashes — a pure recording passthrough.
type Config struct {
	// Seed derives every fault stream. Two ChaosFS with equal Config over
	// the same operation sequence inject identical faults.
	Seed int64

	// Per-operation fault probabilities, each drawn from its own stream.
	ShortWrite  float64 // a write persists only a prefix and errors
	WriteErr    float64 // a write fails outright (EIO-style), nothing persisted
	SyncErr     float64 // an fsync fails, durability not advanced
	RenameErr   float64 // a rename fails, destination untouched
	NoSpace     float64 // a write fails with ENOSPC, nothing persisted
	ReadCorrupt float64 // a read returns data with one flipped byte

	// FailOps injects one targeted transient write/sync/rename failure at
	// each listed operation sequence number (1-based), independent of the
	// probabilistic streams — the deterministic handle the re-admission
	// tests use.
	FailOps []int

	// CrashAt simulates a power failure at the given durability point
	// (1-based operation sequence number; 0 never crashes). While set, the
	// probabilistic faults above still apply up to the crash.
	CrashAt int

	// DropUnsynced selects the power-off durability model for ApplyCrash:
	// file bytes beyond the last fsync are lost. False keeps the
	// truncate-at-point model: everything physically written survives.
	DropUnsynced bool
}

// OpKind classifies a counted durability point.
type OpKind string

const (
	OpWrite   OpKind = "write"
	OpSync    OpKind = "sync"
	OpRename  OpKind = "rename"
	OpSyncDir OpKind = "syncdir"
)

// Op is one recorded durability point.
type Op struct {
	// Seq is the 1-based operation sequence number — the CrashAt key.
	Seq int
	// Kind is the operation class.
	Kind OpKind
	// Path is the operated path (the destination, for renames).
	Path string
	// Bytes is the write size (zero for sync/rename points).
	Bytes int
	// Injected names the fault injected at this point, empty for none.
	Injected string
}

// track is the durability model of one file: how many bytes exist and how
// many are fsynced (guaranteed to survive power loss).
type track struct {
	size   int64
	synced int64
}

// NewChaos builds a ChaosFS over the real filesystem.
func NewChaos(cfg Config) *ChaosFS {
	c := &ChaosFS{
		cfg:     cfg,
		failOps: map[int]bool{},
		files:   map[string]*track{},
		shortS:  newSplitmix(cfg.Seed, saltShort),
		writeS:  newSplitmix(cfg.Seed, saltWrite),
		syncS:   newSplitmix(cfg.Seed, saltSync),
		renameS: newSplitmix(cfg.Seed, saltRename),
		spaceS:  newSplitmix(cfg.Seed, saltSpace),
		readS:   newSplitmix(cfg.Seed, saltRead),
		tearS:   newSplitmix(cfg.Seed, saltTear),
	}
	for _, op := range cfg.FailOps {
		c.failOps[op] = true
	}
	return c
}

// Ops returns a copy of the recorded durability points, in order.
func (c *ChaosFS) Ops() []Op {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Op(nil), c.log...)
}

// Points returns how many durability points have been counted.
func (c *ChaosFS) Points() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// InjectedFaults returns how many faults have been injected.
func (c *ChaosFS) InjectedFaults() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// Crashed reports whether the simulated crash point has fired.
func (c *ChaosFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// ApplyCrash finalizes the on-disk state after the crash point fired. Under
// the truncate-at-point model it is a no-op (the disk already holds exactly
// what was written before the crash). Under DropUnsynced it truncates every
// tracked file to its fsynced length — the bytes a power loss provably
// preserves. Call it before "rebooting" onto a fresh FS over the same
// directory.
func (c *ChaosFS) ApplyCrash() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.cfg.DropUnsynced {
		return nil
	}
	paths := make([]string, 0, len(c.files))
	for p := range c.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		t := c.files[p]
		fi, err := os.Stat(p)
		if err != nil {
			continue // removed or never renamed into place
		}
		if fi.Size() > t.synced {
			if err := os.Truncate(p, t.synced); err != nil {
				return fmt.Errorf("iofault: apply crash to %s: %w", p, err)
			}
		}
	}
	return nil
}

// point counts one durability point under the lock and resolves what
// happens there: a crash, a targeted failure, or nothing. It appends the
// log record (whose Injected field the caller may have pre-set via inj).
func (c *ChaosFS) point(kind OpKind, path string, bytes int, inj string) (seq int, crash, fail bool) {
	c.ops++
	seq = c.ops
	if c.cfg.CrashAt != 0 && seq == c.cfg.CrashAt {
		crash = true
		c.crashed = true
		inj = "crash"
	} else if c.failOps[seq] {
		fail = true
		c.injected++
		inj = "failop"
	} else if inj != "" {
		c.injected++
	}
	c.log = append(c.log, Op{Seq: seq, Kind: kind, Path: path, Bytes: bytes, Injected: inj})
	return seq, crash, fail
}

// trackFor returns (creating if needed) the durability record for path.
func (c *ChaosFS) trackFor(path string, size int64) *track {
	t, ok := c.files[path]
	if !ok {
		t = &track{size: size, synced: size}
		c.files[path] = t
	}
	return t
}

func (c *ChaosFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, fmt.Errorf("%w: open %s", ErrCrash, path)
	}
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	if flag&(os.O_WRONLY|os.O_RDWR) != 0 {
		if flag&os.O_TRUNC != 0 {
			// Truncation is a metadata effect: durable immediately in the
			// model, and the content clock restarts at zero.
			c.files[path] = &track{}
		} else {
			fi, statErr := f.Stat()
			var size int64
			if statErr == nil {
				size = fi.Size()
			}
			c.trackFor(path, size)
		}
	}
	return &chaosFile{fs: c, path: path, f: f, writable: flag&(os.O_WRONLY|os.O_RDWR) != 0}, nil
}

func (c *ChaosFS) Open(path string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, fmt.Errorf("%w: open %s", ErrCrash, path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, path: path, f: f}, nil
}

func (c *ChaosFS) ReadFile(path string) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, fmt.Errorf("%w: read %s", ErrCrash, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c.maybeCorrupt(data)
	return data, nil
}

func (c *ChaosFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := c.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, perm)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func (c *ChaosFS) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return fmt.Errorf("%w: rename %s", ErrCrash, newpath)
	}
	inj := ""
	if c.renameS.hit(c.cfg.RenameErr) {
		inj = "renameerr"
	}
	_, crash, fail := c.point(OpRename, newpath, 0, inj)
	if crash {
		// The rename never happened: the temp file stays, the destination
		// keeps (or lacks) its old content.
		return fmt.Errorf("%w: rename %s", ErrCrash, newpath)
	}
	if fail || inj != "" {
		return fmt.Errorf("%w: rename %s: device error", ErrInjected, newpath)
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	if t, ok := c.files[oldpath]; ok {
		c.files[newpath] = t
		delete(c.files, oldpath)
	}
	return nil
}

func (c *ChaosFS) Remove(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return fmt.Errorf("%w: remove %s", ErrCrash, path)
	}
	if err := os.Remove(path); err != nil {
		return err
	}
	delete(c.files, path)
	return nil
}

func (c *ChaosFS) ReadDir(path string) ([]fs.DirEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, fmt.Errorf("%w: readdir %s", ErrCrash, path)
	}
	return os.ReadDir(path)
}

func (c *ChaosFS) Stat(path string) (fs.FileInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, fmt.Errorf("%w: stat %s", ErrCrash, path)
	}
	return os.Stat(path)
}

func (c *ChaosFS) MkdirAll(path string, perm os.FileMode) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return fmt.Errorf("%w: mkdir %s", ErrCrash, path)
	}
	return os.MkdirAll(path, perm)
}

func (c *ChaosFS) SyncDir(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return fmt.Errorf("%w: syncdir %s", ErrCrash, path)
	}
	inj := ""
	if c.syncS.hit(c.cfg.SyncErr) {
		inj = "syncerr"
	}
	_, crash, fail := c.point(OpSyncDir, path, 0, inj)
	if crash {
		// The directory sync never happened; in the model metadata is
		// journaled anyway, so there is nothing to roll back.
		return fmt.Errorf("%w: syncdir %s", ErrCrash, path)
	}
	if fail || inj != "" {
		return fmt.Errorf("%w: syncdir %s: device error", ErrInjected, path)
	}
	return OSFS{}.SyncDir(path)
}

// maybeCorrupt flips one byte of data when the read-corruption stream
// fires. Callers hold the lock.
func (c *ChaosFS) maybeCorrupt(data []byte) {
	if len(data) == 0 || !c.readS.hit(c.cfg.ReadCorrupt) {
		return
	}
	c.injected++
	pos := int(c.readS.next() % uint64(len(data)))
	data[pos] ^= 0x40
}

// chaosFile is the fault-injecting handle.
type chaosFile struct {
	fs       *ChaosFS
	path     string
	f        *os.File
	writable bool
}

func (cf *chaosFile) Read(p []byte) (int, error) {
	c := cf.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, fmt.Errorf("%w: read %s", ErrCrash, cf.path)
	}
	n, err := cf.f.Read(p)
	if n > 0 {
		c.maybeCorrupt(p[:n])
	}
	return n, err
}

func (cf *chaosFile) Write(p []byte) (int, error) {
	c := cf.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, fmt.Errorf("%w: write %s", ErrCrash, cf.path)
	}
	inj := ""
	switch {
	case c.writeS.hit(c.cfg.WriteErr):
		inj = "writeerr"
	case c.spaceS.hit(c.cfg.NoSpace):
		inj = "enospc"
	case c.shortS.hit(c.cfg.ShortWrite):
		inj = "shortwrite"
	}
	_, crash, fail := c.point(OpWrite, cf.path, len(p), inj)
	t := c.trackFor(cf.path, 0)
	if crash {
		// The torn write: a seeded prefix of p reaches the platter, the
		// rest never does.
		torn := int(c.tearS.next() % uint64(len(p)+1))
		if torn > 0 {
			if n, err := cf.f.Write(p[:torn]); err != nil {
				torn = n
			}
			t.size += int64(torn)
		}
		return torn, fmt.Errorf("%w: write %s", ErrCrash, cf.path)
	}
	if fail {
		return 0, fmt.Errorf("%w: write %s: device error", ErrInjected, cf.path)
	}
	switch inj {
	case "writeerr":
		return 0, fmt.Errorf("%w: write %s: device error", ErrInjected, cf.path)
	case "enospc":
		return 0, fmt.Errorf("%w: write %s: %w", ErrInjected, cf.path, syscall.ENOSPC)
	case "shortwrite":
		short := len(p) / 2
		n, err := cf.f.Write(p[:short])
		if err != nil {
			return n, err
		}
		t.size += int64(n)
		return n, fmt.Errorf("%w: write %s: %w", ErrInjected, cf.path, io.ErrShortWrite)
	}
	n, err := cf.f.Write(p)
	t.size += int64(n)
	return n, err
}

func (cf *chaosFile) Sync() error {
	c := cf.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return fmt.Errorf("%w: sync %s", ErrCrash, cf.path)
	}
	inj := ""
	if c.syncS.hit(c.cfg.SyncErr) {
		inj = "syncerr"
	}
	_, crash, fail := c.point(OpSync, cf.path, 0, inj)
	if crash {
		// Power was lost before the flush: durability does not advance.
		return fmt.Errorf("%w: sync %s", ErrCrash, cf.path)
	}
	if fail || inj != "" {
		return fmt.Errorf("%w: sync %s: device error", ErrInjected, cf.path)
	}
	if err := cf.f.Sync(); err != nil {
		return err
	}
	t := c.trackFor(cf.path, 0)
	t.synced = t.size
	return nil
}

func (cf *chaosFile) Truncate(size int64) error {
	c := cf.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return fmt.Errorf("%w: truncate %s", ErrCrash, cf.path)
	}
	if err := cf.f.Truncate(size); err != nil {
		return err
	}
	t := c.trackFor(cf.path, 0)
	t.size = size
	if t.synced > size {
		t.synced = size
	}
	return nil
}

func (cf *chaosFile) Seek(offset int64, whence int) (int64, error) {
	c := cf.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, fmt.Errorf("%w: seek %s", ErrCrash, cf.path)
	}
	return cf.f.Seek(offset, whence)
}

func (cf *chaosFile) Close() error {
	c := cf.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	// Always release the descriptor — the crash model is about the platter,
	// not the process's fd table.
	err := cf.f.Close()
	if c.crashed {
		return fmt.Errorf("%w: close %s", ErrCrash, cf.path)
	}
	return err
}

// splitmix is the package's SplitMix64 stream — the same mixing function
// internal/parallel, internal/faults, and the crawler's retry machinery
// use. One stream per fault family keeps decisions independent.
type splitmix struct{ state uint64 }

const (
	splitmixGamma = 0x9E3779B97F4A7C15
	splitmixMul1  = 0xBF58476D1CE4E5B9
	splitmixMul2  = 0x94D049BB133111EB
)

// Stream salts, one per fault family.
const (
	saltShort = iota + 0x10FA
	saltWrite
	saltSync
	saltRename
	saltSpace
	saltRead
	saltTear
)

func newSplitmix(seed int64, salt int) splitmix {
	return splitmix{state: uint64(parallel.DeriveSeed(seed, salt))}
}

func (s *splitmix) next() uint64 {
	s.state += splitmixGamma
	z := s.state
	z ^= z >> 30
	z *= splitmixMul1
	z ^= z >> 27
	z *= splitmixMul2
	z ^= z >> 31
	return z
}

// float64 returns a uniform draw in [0, 1) from the top 53 bits.
func (s *splitmix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// hit draws one Bernoulli decision with probability p (p <= 0 draws
// nothing, keeping the zero Config a true passthrough).
func (s *splitmix) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	return s.float64() < p
}
