package iofault_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/iofault"
)

// writeDurable pushes data through the full durable-write sequence —
// create, write, fsync, close, rename, parent sync — the shape
// service.atomicWrite uses. It returns the first error.
func writeDurable(fsys iofault.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(iofault.DirOf(path))
}

func TestOSFSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact")
	want := []byte("hello durable world\n")
	if err := writeDurable(iofault.OS, path, want); err != nil {
		t.Fatalf("durable write over OSFS: %v", err)
	}
	got, err := iofault.OS.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round-trip mismatch: got %q want %q", got, want)
	}
	if _, err := iofault.OS.Stat(path); err != nil {
		t.Fatalf("Stat: %v", err)
	}
	ents, err := iofault.OS.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %v (%d entries)", err, len(ents))
	}
	if err := iofault.OS.Remove(path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

func TestOrOSDefaults(t *testing.T) {
	if iofault.OrOS(nil) != iofault.OS {
		t.Fatal("OrOS(nil) should return the shared passthrough")
	}
	c := iofault.NewChaos(iofault.Config{})
	if iofault.OrOS(c) != iofault.FS(c) {
		t.Fatal("OrOS should pass a non-nil FS through")
	}
}

func TestChaosZeroConfigIsPassthroughAndRecords(t *testing.T) {
	dir := t.TempDir()
	c := iofault.NewChaos(iofault.Config{})
	path := filepath.Join(dir, "out")
	if err := writeDurable(c, path, []byte("payload")); err != nil {
		t.Fatalf("durable write over zero-config ChaosFS: %v", err)
	}
	got, err := c.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back: %q, %v", got, err)
	}
	ops := c.Ops()
	// write, sync, rename, syncdir — four durability points.
	kinds := []iofault.OpKind{iofault.OpWrite, iofault.OpSync, iofault.OpRename, iofault.OpSyncDir}
	if len(ops) != len(kinds) {
		t.Fatalf("recorded %d ops, want %d: %+v", len(ops), len(kinds), ops)
	}
	for i, k := range kinds {
		if ops[i].Kind != k {
			t.Fatalf("op %d kind %q, want %q", i, ops[i].Kind, k)
		}
		if ops[i].Seq != i+1 {
			t.Fatalf("op %d seq %d, want %d", i, ops[i].Seq, i+1)
		}
		if ops[i].Injected != "" {
			t.Fatalf("zero config injected %q at op %d", ops[i].Injected, i)
		}
	}
	if c.InjectedFaults() != 0 || c.Crashed() {
		t.Fatalf("zero config should inject nothing and never crash")
	}
}

func TestChaosSameSeedSameFaults(t *testing.T) {
	cfg := iofault.Config{
		Seed:       42,
		ShortWrite: 0.3,
		WriteErr:   0.2,
		SyncErr:    0.2,
		RenameErr:  0.2,
		NoSpace:    0.1,
	}
	run := func() []iofault.Op {
		dir := t.TempDir()
		c := iofault.NewChaos(cfg)
		for i := 0; i < 20; i++ {
			// Faults are expected: drive the sequence regardless of errors so
			// both runs issue identical operations.
			_ = writeDurable(c, filepath.Join(dir, "f"), []byte("0123456789abcdef"))
		}
		ops := c.Ops()
		for i := range ops {
			// Temp dirs differ per run; compare shape, not location.
			if ops[i].Kind == iofault.OpSyncDir {
				ops[i].Path = "dir"
			} else {
				ops[i].Path = filepath.Base(ops[i].Path)
			}
		}
		return ops
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("op counts differ: %d vs %d", len(a), len(b))
	}
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs between same-seed runs:\n  %+v\n  %+v", i, a[i], b[i])
		}
		if a[i].Injected != "" {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("expected at least one injected fault at these rates")
	}
	// A different seed must place faults differently.
	cfg.Seed = 43
	cdiff := func() []iofault.Op {
		dir := t.TempDir()
		c := iofault.NewChaos(cfg)
		for i := 0; i < 20; i++ {
			_ = writeDurable(c, filepath.Join(dir, "f"), []byte("0123456789abcdef"))
		}
		ops := c.Ops()
		for i := range ops {
			if ops[i].Kind == iofault.OpSyncDir {
				ops[i].Path = "dir"
			} else {
				ops[i].Path = filepath.Base(ops[i].Path)
			}
		}
		return ops
	}()
	same := len(cdiff) == len(a)
	if same {
		for i := range a {
			if a[i] != cdiff[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical fault placement")
	}
}

func TestChaosInjectedFaultsAreTransient(t *testing.T) {
	dir := t.TempDir()
	c := iofault.NewChaos(iofault.Config{FailOps: []int{1}})
	err := writeDurable(c, filepath.Join(dir, "f"), []byte("x"))
	if err == nil {
		t.Fatal("targeted FailOps fault did not surface")
	}
	if !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("fault should wrap ErrInjected: %v", err)
	}
	if !iofault.IsTransient(err) {
		t.Fatalf("injected fault should be transient: %v", err)
	}
	// The filesystem is still alive: a retry succeeds.
	if err := writeDurable(c, filepath.Join(dir, "f"), []byte("x")); err != nil {
		t.Fatalf("retry after transient fault: %v", err)
	}
}

func TestChaosCrashTornWriteAndDeadFS(t *testing.T) {
	dir := t.TempDir()
	c := iofault.NewChaos(iofault.Config{Seed: 7, CrashAt: 1})
	path := filepath.Join(dir, "f")
	err := writeDurable(c, path, []byte("0123456789abcdef"))
	if !errors.Is(err, iofault.ErrCrash) {
		t.Fatalf("crash point should surface ErrCrash: %v", err)
	}
	if iofault.IsTransient(err) {
		t.Fatal("a crash must not classify as transient")
	}
	if !c.Crashed() {
		t.Fatal("Crashed() false after crash point fired")
	}
	// Everything after the crash fails with ErrCrash.
	if _, err := c.ReadFile(path); !errors.Is(err, iofault.ErrCrash) {
		t.Fatalf("post-crash read: %v", err)
	}
	if err := c.Rename(path, path+"2"); !errors.Is(err, iofault.ErrCrash) {
		t.Fatalf("post-crash rename: %v", err)
	}
	if err := c.ApplyCrash(); err != nil {
		t.Fatalf("ApplyCrash: %v", err)
	}
	// Truncate-at-point: the torn prefix of the .tmp file survives, shorter
	// than the full payload; the rename never happened.
	fi, err := os.Stat(path + ".tmp")
	if err != nil {
		t.Fatalf("torn temp file missing: %v", err)
	}
	if fi.Size() >= 16 {
		t.Fatalf("crashing write persisted %d bytes, want a torn prefix < 16", fi.Size())
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("destination should not exist after pre-rename crash: %v", err)
	}
}

func TestChaosCrashSkipsRename(t *testing.T) {
	dir := t.TempDir()
	// Point 3 is the rename in the durable-write sequence.
	c := iofault.NewChaos(iofault.Config{CrashAt: 3})
	path := filepath.Join(dir, "f")
	err := writeDurable(c, path, []byte("payload"))
	if !errors.Is(err, iofault.ErrCrash) {
		t.Fatalf("want ErrCrash from rename point: %v", err)
	}
	if err := c.ApplyCrash(); err != nil {
		t.Fatalf("ApplyCrash: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("crashed rename must not commit the destination")
	}
	got, err := os.ReadFile(path + ".tmp")
	if err != nil || string(got) != "payload" {
		t.Fatalf("temp file should survive intact: %q, %v", got, err)
	}
}

func TestChaosDropUnsyncedModel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	// Append twice with a sync between, then crash at the final sync
	// (point 5: write, sync, write, write, sync): the power-off model must
	// keep exactly the fsynced prefix.
	c := iofault.NewChaos(iofault.Config{CrashAt: 5, DropUnsynced: true})
	f, err := c.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write([]byte("synced-prefix\n")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if _, err := f.Write([]byte("unsynced-a\n")); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if _, err := f.Write([]byte("unsynced-b\n")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, iofault.ErrCrash) {
		t.Fatalf("want crash at final sync: %v", err)
	}
	f.Close()
	if err := c.ApplyCrash(); err != nil {
		t.Fatalf("ApplyCrash: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read after crash: %v", err)
	}
	if string(got) != "synced-prefix\n" {
		t.Fatalf("power-off kept %q, want only the fsynced prefix", got)
	}
}

func TestChaosReadCorruptionIsDetectable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	want := bytes.Repeat([]byte("abcd"), 64)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	c := iofault.NewChaos(iofault.Config{Seed: 1, ReadCorrupt: 1})
	got, err := c.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("ReadCorrupt=1 returned pristine data")
	}
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
	// Same seed corrupts the same position.
	c2 := iofault.NewChaos(iofault.Config{Seed: 1, ReadCorrupt: 1})
	got2, err := c2.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, got2) {
		t.Fatal("same-seed corruption differs between runs")
	}
	// On-disk bytes are untouched: corruption is a read-path fault.
	onDisk, _ := os.ReadFile(path)
	if !bytes.Equal(onDisk, want) {
		t.Fatal("read corruption must not modify the file")
	}
}

func TestChaosShortWriteSurfacesErrShortWrite(t *testing.T) {
	dir := t.TempDir()
	c := iofault.NewChaos(iofault.Config{Seed: 3, ShortWrite: 1})
	f, err := c.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("short write should wrap ErrInjected: %v", err)
	}
	if n >= 10 {
		t.Fatalf("short write reported %d bytes, want < 10", n)
	}
	fi, statErr := os.Stat(filepath.Join(dir, "f"))
	if statErr != nil || fi.Size() != int64(n) {
		t.Fatalf("on-disk size %v should equal reported n=%d (%v)", fi, n, statErr)
	}
}
