package topology

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) Prefix {
	t.Helper()
	p, err := ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustIP(t *testing.T, s string) IP {
	t.Helper()
	ip, err := ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}

func TestRouteTableLongestPrefixMatch(t *testing.T) {
	rt := NewRouteTable()
	if err := rt.Announce(mustPrefix(t, "10.0.0.0/8"), 100, false); err != nil {
		t.Fatal(err)
	}
	if err := rt.Announce(mustPrefix(t, "10.1.0.0/16"), 200, false); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		ip   string
		want ASN
	}{
		{"10.1.2.3", 200},
		{"10.2.2.3", 100},
	}
	for _, tt := range tests {
		got, ok := rt.Resolve(mustIP(t, tt.ip))
		if !ok || got != tt.want {
			t.Errorf("Resolve(%s) = %v, %v; want %v", tt.ip, got, ok, tt.want)
		}
	}
	if _, ok := rt.Resolve(mustIP(t, "192.168.0.1")); ok {
		t.Error("uncovered IP should not resolve")
	}
}

func TestRouteTableDuplicateAnnounce(t *testing.T) {
	rt := NewRouteTable()
	p := mustPrefix(t, "10.0.0.0/8")
	if err := rt.Announce(p, 100, false); err != nil {
		t.Fatal(err)
	}
	if err := rt.Announce(p, 100, false); err == nil {
		t.Error("duplicate announce: want error")
	}
	// Same prefix, different origin is allowed (MOAS conflict).
	if err := rt.Announce(p, 200, false); err != nil {
		t.Errorf("MOAS announce: %v", err)
	}
	// Oldest announcement wins the tie.
	got, _ := rt.Resolve(mustIP(t, "10.1.1.1"))
	if got != 100 {
		t.Errorf("tie-break = AS%d, want AS100 (oldest)", got)
	}
}

func TestHijackCapturesVictimPrefix(t *testing.T) {
	rt := NewRouteTable()
	victim := mustPrefix(t, "203.0.113.0/24")
	if err := rt.Announce(victim, 100, false); err != nil {
		t.Fatal(err)
	}
	ip := mustIP(t, "203.0.113.55")
	if rt.Hijacked(ip) {
		t.Fatal("fresh table reports hijack")
	}
	if err := rt.HijackPrefix(666, victim); err != nil {
		t.Fatal(err)
	}
	got, ok := rt.Resolve(ip)
	if !ok || got != 666 {
		t.Errorf("post-hijack Resolve = AS%d, want AS666", got)
	}
	if legit, _ := rt.ResolveLegit(ip); legit != 100 {
		t.Errorf("ResolveLegit = AS%d, want AS100", legit)
	}
	if !rt.Hijacked(ip) {
		t.Error("Hijacked should report true")
	}
	if rt.HijackCount() != 2 {
		t.Errorf("HijackCount = %d, want 2 (two halves)", rt.HijackCount())
	}
}

func TestHijackSlash32DoesNotDisplaceOlderExact(t *testing.T) {
	rt := NewRouteTable()
	host := mustPrefix(t, "198.51.100.7/32")
	if err := rt.Announce(host, 100, false); err != nil {
		t.Fatal(err)
	}
	if err := rt.HijackPrefix(666, host); err != nil {
		t.Fatal(err)
	}
	got, _ := rt.Resolve(mustIP(t, "198.51.100.7"))
	if got != 100 {
		t.Errorf("exact-prefix hijack displaced older route: AS%d", got)
	}
}

func TestWithdrawHijacksRestoresRouting(t *testing.T) {
	rt := NewRouteTable()
	victim := mustPrefix(t, "203.0.113.0/24")
	if err := rt.Announce(victim, 100, false); err != nil {
		t.Fatal(err)
	}
	if err := rt.HijackPrefix(666, victim); err != nil {
		t.Fatal(err)
	}
	ip := mustIP(t, "203.0.113.55")
	if purged := rt.WithdrawHijacks(); purged != 2 {
		t.Errorf("purged = %d, want 2", purged)
	}
	got, _ := rt.Resolve(ip)
	if got != 100 {
		t.Errorf("post-purge Resolve = AS%d, want AS100", got)
	}
	if rt.HijackCount() != 0 {
		t.Error("hijacks remain after purge")
	}
}

func TestWithdrawSpecificRoute(t *testing.T) {
	rt := NewRouteTable()
	p := mustPrefix(t, "10.0.0.0/8")
	if err := rt.Announce(p, 100, false); err != nil {
		t.Fatal(err)
	}
	if n := rt.Withdraw(p, 100, false); n != 1 {
		t.Errorf("Withdraw = %d, want 1", n)
	}
	if _, ok := rt.Resolve(mustIP(t, "10.1.1.1")); ok {
		t.Error("withdrawn route still resolves")
	}
	if n := rt.Withdraw(p, 100, false); n != 0 {
		t.Errorf("second Withdraw = %d, want 0", n)
	}
}

func TestRoutesForOrdering(t *testing.T) {
	rt := NewRouteTable()
	for _, s := range []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"} {
		if err := rt.Announce(mustPrefix(t, s), 100, false); err != nil {
			t.Fatal(err)
		}
	}
	routes := rt.RoutesFor(mustIP(t, "10.1.2.3"))
	if len(routes) != 3 {
		t.Fatalf("RoutesFor = %d routes, want 3", len(routes))
	}
	for i := 1; i < len(routes); i++ {
		if routes[i].Prefix.Len > routes[i-1].Prefix.Len {
			t.Error("routes not sorted most-specific first")
		}
	}
}

func TestTopologyRegistry(t *testing.T) {
	topo := New()
	err := topo.AddAS(AS{
		Number: 16509, Name: "AMAZON-02", Org: "Amazon.com, Inc",
		Prefixes: []Prefix{mustPrefix(t, "52.0.0.0/8")}, Country: "US",
	})
	if err != nil {
		t.Fatal(err)
	}
	err = topo.AddAS(AS{
		Number: 14618, Name: "AMAZON-AES", Org: "Amazon.com, Inc",
		Prefixes: []Prefix{mustPrefix(t, "54.0.0.0/8")}, Country: "US",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.AddAS(AS{Number: 16509, Org: "dup"}); !errors.Is(err, ErrDuplicateAS) {
		t.Errorf("duplicate AS err = %v", err)
	}
	org, ok := topo.Org("Amazon.com, Inc")
	if !ok || len(org.ASNs) != 2 {
		t.Fatalf("org lookup failed: %+v, %v", org, ok)
	}
	if got := len(topo.ASesOfOrg("Amazon.com, Inc")); got != 2 {
		t.Errorf("ASesOfOrg = %d, want 2", got)
	}
	if topo.NumASes() != 2 || topo.NumOrgs() != 1 {
		t.Errorf("counts: %d ASes, %d orgs", topo.NumASes(), topo.NumOrgs())
	}
	asn, ok := topo.Resolve(mustIP(t, "52.1.2.3"))
	if !ok || asn != 16509 {
		t.Errorf("Resolve = %v, %v", asn, ok)
	}
	if got := topo.ASesInCountry("US"); len(got) != 2 {
		t.Errorf("ASesInCountry = %v", got)
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestResolveConsistencyProperty(t *testing.T) {
	// Property: without hijacks, Resolve and ResolveLegit agree everywhere;
	// after a hijack of a /24, exactly the addresses inside it flip.
	f := func(probe uint32) bool {
		rt := NewRouteTable()
		p8 := Prefix{Base: 0x0A000000, Len: 8}   // 10.0.0.0/8
		p24 := Prefix{Base: 0x0A010200, Len: 24} // 10.1.2.0/24
		if rt.Announce(p8, 100, false) != nil {
			return false
		}
		if rt.Announce(p24, 200, false) != nil {
			return false
		}
		ip := IP(probe)
		a, okA := rt.Resolve(ip)
		b, okB := rt.ResolveLegit(ip)
		if okA != okB || (okA && a != b) {
			return false
		}
		if rt.HijackPrefix(666, p24) != nil {
			return false
		}
		if p24.Contains(ip) {
			got, ok := rt.Resolve(ip)
			return ok && got == 666 && rt.Hijacked(ip)
		}
		got, ok := rt.Resolve(ip)
		legit, okL := rt.ResolveLegit(ip)
		return ok == okL && (!ok || got == legit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
