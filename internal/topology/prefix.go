// Package topology models the slice of the Internet the paper's spatial
// attacks operate on: IPv4 addresses, BGP prefixes, autonomous systems,
// organizations (which may own several ASes — the paper shows Amazon and
// AliBaba do), route tables with longest-prefix-match selection, and the
// hijack primitive (announcing more-specific prefixes than the victim, the
// mechanism of both the 2008 YouTube and 2014 Canadian-ISP incidents the
// paper cites).
package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order. The simulation assigns synthetic
// addresses; onion (Tor) nodes carry no IP and are handled out of band, as
// the paper treats Tor as a single pseudo-AS.
type IP uint32

// String renders dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// ParseIP parses dotted-quad IPv4 notation.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("topology: malformed IP %q", s)
	}
	var ip uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("topology: malformed IP octet %q in %q", p, s)
		}
		ip = ip<<8 | uint32(n)
	}
	return IP(ip), nil
}

// Prefix is a CIDR block: the high Len bits of Base identify the network.
type Prefix struct {
	Base IP
	Len  int // 0..32
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%v/%d", p.Base.Mask(p.Len), p.Len)
}

// Mask zeroes the host bits of ip for a given prefix length.
func (ip IP) Mask(length int) IP {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return ip
	}
	return ip & IP(^uint32(0)<<(32-length))
}

// NewPrefix builds a normalized prefix (host bits cleared). Length must be
// within [0, 32].
func NewPrefix(base IP, length int) (Prefix, error) {
	if length < 0 || length > 32 {
		return Prefix{}, fmt.Errorf("topology: prefix length %d out of range", length)
	}
	return Prefix{Base: base.Mask(length), Len: length}, nil
}

// ParsePrefix parses CIDR notation like "203.0.113.0/24".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("topology: malformed prefix %q (missing /)", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	length, err := strconv.Atoi(s[slash+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("topology: malformed prefix length in %q", s)
	}
	return NewPrefix(ip, length)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool {
	return ip.Mask(p.Len) == p.Base
}

// Covers reports whether p contains the entire range of q (p is equal or
// less specific than q and they overlap).
func (p Prefix) Covers(q Prefix) bool {
	return p.Len <= q.Len && q.Base.Mask(p.Len) == p.Base
}

// Halves splits the prefix into its two more-specific children. This is the
// classic sub-prefix hijack: announcing both halves of a victim /n as /n+1
// wins longest-prefix-match everywhere. Splitting a /32 is impossible.
func (p Prefix) Halves() (Prefix, Prefix, error) {
	if p.Len >= 32 {
		return Prefix{}, Prefix{}, fmt.Errorf("topology: cannot split /32 prefix %v", p)
	}
	lo := Prefix{Base: p.Base, Len: p.Len + 1}
	hi := Prefix{Base: p.Base | IP(1<<(31-p.Len)), Len: p.Len + 1}
	return lo, hi, nil
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 {
	return uint64(1) << (32 - p.Len)
}
