package topology

import (
	"fmt"
	"sort"
)

// Route is one BGP announcement: a prefix originated by an AS. Hijack marks
// announcements injected by an attacker rather than the legitimate owner.
type Route struct {
	Prefix Prefix
	Origin ASN
	Hijack bool
	seq    int // announcement order, for deterministic tie-breaking
}

// RouteTable is a global-view BGP table with longest-prefix-match selection.
// The model abstracts away AS-path propagation: as in the paper's threat
// model, a more-specific announcement wins everywhere, and an equally
// specific hijack announcement competes on age (older announcement wins,
// approximating the victim retaining part of the traffic).
type RouteTable struct {
	routes  []Route
	nextSeq int
}

// NewRouteTable returns an empty table.
func NewRouteTable() *RouteTable {
	return &RouteTable{}
}

// Announce inserts a route. Announcing the identical (prefix, origin,
// hijack) tuple twice is an error.
func (rt *RouteTable) Announce(p Prefix, origin ASN, hijack bool) error {
	for _, r := range rt.routes {
		if r.Prefix == p && r.Origin == origin && r.Hijack == hijack {
			return fmt.Errorf("topology: route %v from AS%d already announced", p, origin)
		}
	}
	rt.routes = append(rt.routes, Route{Prefix: p, Origin: origin, Hijack: hijack, seq: rt.nextSeq})
	rt.nextSeq++
	return nil
}

// Withdraw removes all routes for the prefix from the given origin matching
// the hijack flag. It returns the number of routes removed. This implements
// the "bogus route purging" countermeasure of Zhang et al. cited in §VI.
func (rt *RouteTable) Withdraw(p Prefix, origin ASN, hijack bool) int {
	kept := rt.routes[:0]
	removed := 0
	for _, r := range rt.routes {
		if r.Prefix == p && r.Origin == origin && r.Hijack == hijack {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	rt.routes = kept
	return removed
}

// WithdrawHijacks removes every hijack announcement from the table and
// returns how many were purged.
func (rt *RouteTable) WithdrawHijacks() int {
	kept := rt.routes[:0]
	removed := 0
	for _, r := range rt.routes {
		if r.Hijack {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	rt.routes = kept
	return removed
}

// Resolve returns the origin AS of the best (longest-prefix, then oldest)
// route covering ip, considering hijacks.
func (rt *RouteTable) Resolve(ip IP) (ASN, bool) {
	return rt.resolve(ip, true)
}

// ResolveLegit resolves ignoring hijack announcements: the legitimate owner.
func (rt *RouteTable) ResolveLegit(ip IP) (ASN, bool) {
	return rt.resolve(ip, false)
}

func (rt *RouteTable) resolve(ip IP, includeHijacks bool) (ASN, bool) {
	best := -1
	for i, r := range rt.routes {
		if r.Hijack && !includeHijacks {
			continue
		}
		if !r.Prefix.Contains(ip) {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		b := rt.routes[best]
		if r.Prefix.Len > b.Prefix.Len || (r.Prefix.Len == b.Prefix.Len && r.seq < b.seq) {
			best = i
		}
	}
	if best == -1 {
		return 0, false
	}
	return rt.routes[best].Origin, true
}

// Hijacked reports whether ip is currently routed to a different AS than its
// legitimate owner.
func (rt *RouteTable) Hijacked(ip IP) bool {
	now, okNow := rt.Resolve(ip)
	legit, okLegit := rt.ResolveLegit(ip)
	if !okNow || !okLegit {
		return false
	}
	return now != legit
}

// HijackPrefix launches a sub-prefix hijack of target from attacker: the
// attacker announces both more-specific halves of the target prefix, winning
// longest-prefix-match for every address inside it. For /32 targets, where
// no more-specific announcement exists, it announces the same prefix (an
// exact-prefix hijack, which splits traffic; our model awards the oldest
// announcement, so an exact hijack of an already-announced /32 does not
// capture it — matching the real-world fact that exact-prefix hijacks only
// capture part of the topology).
func (rt *RouteTable) HijackPrefix(attacker ASN, target Prefix) error {
	if target.Len >= 32 {
		return rt.Announce(target, attacker, true)
	}
	lo, hi, err := target.Halves()
	if err != nil {
		return err
	}
	if err := rt.Announce(lo, attacker, true); err != nil {
		return err
	}
	if err := rt.Announce(hi, attacker, true); err != nil {
		return err
	}
	return nil
}

// Len returns the number of routes (legitimate + hijack).
func (rt *RouteTable) Len() int { return len(rt.routes) }

// HijackCount returns the number of active hijack announcements.
func (rt *RouteTable) HijackCount() int {
	n := 0
	for _, r := range rt.routes {
		if r.Hijack {
			n++
		}
	}
	return n
}

// RoutesFor returns copies of all routes covering ip, most specific first,
// for diagnostics.
func (rt *RouteTable) RoutesFor(ip IP) []Route {
	var out []Route
	for _, r := range rt.routes {
		if r.Prefix.Contains(ip) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Len != out[j].Prefix.Len {
			return out[i].Prefix.Len > out[j].Prefix.Len
		}
		return out[i].seq < out[j].seq
	})
	return out
}
