package topology

import (
	"testing"
	"testing/quick"
)

func TestParseIPRoundTrip(t *testing.T) {
	tests := []struct {
		s    string
		want IP
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xFFFFFFFF},
		{"192.168.1.1", 0xC0A80101},
		{"10.0.0.1", 0x0A000001},
	}
	for _, tt := range tests {
		got, err := ParseIP(tt.s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", tt.s, err)
		}
		if got != tt.want {
			t.Errorf("ParseIP(%q) = %v, want %v", tt.s, got, tt.want)
		}
		if got.String() != tt.s {
			t.Errorf("String() = %q, want %q", got.String(), tt.s)
		}
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.0", "a.b.c.d"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q): want error", s)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("203.0.113.77/24")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "203.0.113.0/24" {
		t.Errorf("normalized = %q, want 203.0.113.0/24", p.String())
	}
	if p.Size() != 256 {
		t.Errorf("Size = %d, want 256", p.Size())
	}
	for _, s := range []string{"1.2.3.4", "1.2.3.4/33", "1.2.3.4/-1", "1.2.3.4/x", "bad/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q): want error", s)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p, _ := ParsePrefix("10.1.0.0/16")
	in, _ := ParseIP("10.1.200.3")
	out, _ := ParseIP("10.2.0.0")
	if !p.Contains(in) {
		t.Error("10.1.200.3 should be in 10.1.0.0/16")
	}
	if p.Contains(out) {
		t.Error("10.2.0.0 should not be in 10.1.0.0/16")
	}
	zero, _ := NewPrefix(0, 0)
	if !zero.Contains(out) {
		t.Error("/0 should contain everything")
	}
}

func TestPrefixCovers(t *testing.T) {
	p16, _ := ParsePrefix("10.1.0.0/16")
	p24, _ := ParsePrefix("10.1.5.0/24")
	other, _ := ParsePrefix("10.2.0.0/24")
	if !p16.Covers(p24) {
		t.Error("/16 should cover its /24")
	}
	if p24.Covers(p16) {
		t.Error("/24 should not cover its /16")
	}
	if p16.Covers(other) {
		t.Error("unrelated /24 not covered")
	}
	if !p16.Covers(p16) {
		t.Error("prefix covers itself")
	}
}

func TestPrefixHalves(t *testing.T) {
	p, _ := ParsePrefix("10.0.0.0/8")
	lo, hi, err := p.Halves()
	if err != nil {
		t.Fatal(err)
	}
	if lo.String() != "10.0.0.0/9" {
		t.Errorf("lo = %v", lo)
	}
	if hi.String() != "10.128.0.0/9" {
		t.Errorf("hi = %v", hi)
	}
	host, _ := ParsePrefix("10.0.0.1/32")
	if _, _, err := host.Halves(); err == nil {
		t.Error("splitting /32: want error")
	}
}

func TestPrefixHalvesPartitionProperty(t *testing.T) {
	// Property: the two halves of a prefix exactly partition it — every IP in
	// the parent is in exactly one half, and IPs outside are in neither.
	f := func(base uint32, lenRaw uint8, probe uint32) bool {
		length := int(lenRaw % 32) // 0..31 so halving is legal
		p, err := NewPrefix(IP(base), length)
		if err != nil {
			return false
		}
		lo, hi, err := p.Halves()
		if err != nil {
			return false
		}
		ip := IP(probe)
		inParent := p.Contains(ip)
		inLo, inHi := lo.Contains(ip), hi.Contains(ip)
		if inParent {
			return inLo != inHi // exactly one
		}
		return !inLo && !inHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPrefixNormalizes(t *testing.T) {
	ip, _ := ParseIP("192.168.77.200")
	p, err := NewPrefix(ip, 16)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ParseIP("192.168.0.0")
	if p.Base != want {
		t.Errorf("base = %v, want %v", p.Base, want)
	}
	if _, err := NewPrefix(ip, 40); err == nil {
		t.Error("length 40: want error")
	}
}
