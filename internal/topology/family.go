package topology

import "fmt"

// AddrFamily classifies a node's network address the way the paper's
// Table I does: IPv4, IPv6, or onion (Tor).
type AddrFamily int

// Address families. Enums start at one so the zero value is invalid rather
// than silently IPv4.
const (
	FamilyInvalid AddrFamily = iota
	FamilyIPv4
	FamilyIPv6
	FamilyOnion
)

// String implements fmt.Stringer.
func (f AddrFamily) String() string {
	switch f {
	case FamilyIPv4:
		return "IPv4"
	case FamilyIPv6:
		return "IPv6"
	case FamilyOnion:
		return "TOR"
	default:
		return fmt.Sprintf("AddrFamily(%d)", int(f))
	}
}
