package topology

import (
	"testing"
)

func benchTable(b *testing.B, hijacks bool) (*RouteTable, []IP) {
	b.Helper()
	rt := NewRouteTable()
	var probes []IP
	base := uint32(10 << 24)
	for asn := ASN(1); asn <= 500; asn++ {
		for k := 0; k < 10; k++ {
			p, err := NewPrefix(IP(base), 20)
			if err != nil {
				b.Fatal(err)
			}
			if err := rt.Announce(p, asn, false); err != nil {
				b.Fatal(err)
			}
			if hijacks && k == 0 && asn%10 == 0 {
				if err := rt.HijackPrefix(9999, p); err != nil {
					b.Fatal(err)
				}
			}
			probes = append(probes, IP(base+7))
			base += 1 << 12
		}
	}
	return rt, probes
}

// BenchmarkResolve measures longest-prefix-match over a 5,000-route table.
func BenchmarkResolve(b *testing.B) {
	rt, probes := benchTable(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rt.Resolve(probes[i%len(probes)]); !ok {
			b.Fatal("unresolved")
		}
	}
}

// BenchmarkResolveWithHijacks adds active hijack routes to the table.
func BenchmarkResolveWithHijacks(b *testing.B) {
	rt, probes := benchTable(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rt.Resolve(probes[i%len(probes)]); !ok {
			b.Fatal("unresolved")
		}
	}
}

// BenchmarkHijackPrefix measures announcement of a sub-prefix hijack.
func BenchmarkHijackPrefix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rt := NewRouteTable()
		p, _ := NewPrefix(IP(10<<24), 20)
		if err := rt.Announce(p, 1, false); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := rt.HijackPrefix(666, p); err != nil {
			b.Fatal(err)
		}
	}
}
