package topology

import (
	"errors"
	"fmt"
	"sort"
)

// ASN is an autonomous system number.
type ASN int

// TorASN is the pseudo-ASN the paper assigns to all Tor onion nodes ("We
// group TOR nodes and treat them as a single AS").
const TorASN ASN = -1

// AS is an autonomous system: a numbered routing domain owned by an
// organization and originating a set of BGP prefixes.
type AS struct {
	Number   ASN
	Name     string
	Org      string
	Prefixes []Prefix
	// Country is the jurisdiction the AS operates in, used by the
	// nation-state adversary model (§III mentions China routing ~60% of
	// mining traffic).
	Country string
}

// Organization aggregates the ASes owned by one ISP/cloud provider. The
// paper's organization-level analysis exists precisely because one org can
// own several ASes (Amazon: AS16509 + others; AliBaba: AS37963 + AS45102).
type Organization struct {
	Name string
	ASNs []ASN
}

// Topology is the registry of ASes and organizations plus the global BGP
// route table. The zero value is not usable; call New.
type Topology struct {
	ases map[ASN]*AS
	orgs map[string]*Organization
	rt   *RouteTable
}

// New creates an empty topology.
func New() *Topology {
	return &Topology{
		ases: map[ASN]*AS{},
		orgs: map[string]*Organization{},
		rt:   NewRouteTable(),
	}
}

// Errors returned by Topology operations.
var (
	ErrDuplicateAS = errors.New("topology: duplicate AS")
	ErrUnknownAS   = errors.New("topology: unknown AS")
)

// AddAS registers an AS, creates its organization on first sight, and
// announces all of its prefixes in the route table.
func (t *Topology) AddAS(as AS) error {
	if _, ok := t.ases[as.Number]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateAS, as.Number)
	}
	stored := as
	stored.Prefixes = append([]Prefix(nil), as.Prefixes...)
	t.ases[as.Number] = &stored
	org, ok := t.orgs[as.Org]
	if !ok {
		org = &Organization{Name: as.Org}
		t.orgs[as.Org] = org
	}
	org.ASNs = append(org.ASNs, as.Number)
	for _, p := range stored.Prefixes {
		if err := t.rt.Announce(p, as.Number, false); err != nil {
			return fmt.Errorf("announce %v for AS%d: %w", p, as.Number, err)
		}
	}
	return nil
}

// AS returns the AS with the given number.
func (t *Topology) AS(n ASN) (*AS, bool) {
	as, ok := t.ases[n]
	return as, ok
}

// Org returns the organization with the given name.
func (t *Topology) Org(name string) (*Organization, bool) {
	o, ok := t.orgs[name]
	return o, ok
}

// ASNs returns all registered AS numbers in ascending order.
func (t *Topology) ASNs() []ASN {
	out := make([]ASN, 0, len(t.ases))
	for n := range t.ases {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OrgNames returns all organization names in lexical order.
func (t *Topology) OrgNames() []string {
	out := make([]string, 0, len(t.orgs))
	for name := range t.orgs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NumASes returns the number of registered ASes.
func (t *Topology) NumASes() int { return len(t.ases) }

// NumOrgs returns the number of registered organizations.
func (t *Topology) NumOrgs() int { return len(t.orgs) }

// Routes exposes the route table for announcement and hijack operations.
func (t *Topology) Routes() *RouteTable { return t.rt }

// Resolve returns the AS currently routing ip per longest-prefix match,
// including the effect of any active hijacks.
func (t *Topology) Resolve(ip IP) (ASN, bool) {
	return t.rt.Resolve(ip)
}

// OwnerOf returns the legitimate (pre-hijack) origin AS of ip based on
// registered prefixes, ignoring hijack announcements.
func (t *Topology) OwnerOf(ip IP) (ASN, bool) {
	return t.rt.ResolveLegit(ip)
}

// ASesOfOrg returns the AS records for an organization, sorted by ASN.
func (t *Topology) ASesOfOrg(name string) []*AS {
	org, ok := t.orgs[name]
	if !ok {
		return nil
	}
	out := make([]*AS, 0, len(org.ASNs))
	for _, n := range org.ASNs {
		out = append(out, t.ases[n])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// ASesInCountry returns the ASNs registered under a country code, for the
// nation-state adversary model.
func (t *Topology) ASesInCountry(country string) []ASN {
	var out []ASN
	for n, as := range t.ases {
		if as.Country == country {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks registry invariants: every announced legitimate route's
// origin is a registered AS, and every org back-references only registered
// ASes. Used by property tests.
func (t *Topology) Validate() error {
	for _, org := range t.orgs {
		for _, n := range org.ASNs {
			as, ok := t.ases[n]
			if !ok {
				return fmt.Errorf("topology: org %q references unknown AS%d", org.Name, n)
			}
			if as.Org != org.Name {
				return fmt.Errorf("topology: AS%d org mismatch: %q vs %q", n, as.Org, org.Name)
			}
		}
	}
	for _, route := range t.rt.routes {
		if route.Hijack {
			continue
		}
		if _, ok := t.ases[route.Origin]; !ok {
			return fmt.Errorf("topology: route %v originated by unknown AS%d", route.Prefix, route.Origin)
		}
	}
	return nil
}
