package spv

import (
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/netsim"
	"repro/internal/p2p"
	"repro/internal/stats"
)

func testSim(t *testing.T, nodes int, seed int64) *netsim.Simulation {
	t.Helper()
	sim, err := netsim.FromConfig(netsim.Config{
		Nodes: nodes, Seed: seed,
		Gossip: p2p.Config{FailureRate: 0.10, MeanRelayDelay: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestNewFleetValidation(t *testing.T) {
	sim := testSim(t, 20, 1)
	rng := stats.NewRand(1)
	if _, err := NewFleet(nil, 10, rng, nil); err == nil {
		t.Error("nil sim accepted")
	}
	if _, err := NewFleet(sim, 0, rng, nil); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := NewFleet(sim, 10, nil, nil); err == nil {
		t.Error("nil rng accepted")
	}
	// All nodes down: nothing to attach to.
	for _, n := range sim.Network.Nodes {
		n.Up = false
	}
	if _, err := NewFleet(sim, 10, rng, nil); err == nil {
		t.Error("all-down network accepted")
	}
}

func TestFleetAttachment(t *testing.T) {
	sim := testSim(t, 30, 2)
	f, err := NewFleet(sim, 500, stats.NewRand(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 500 {
		t.Fatalf("size = %d", f.Size())
	}
	total := 0
	for _, node := range sim.Network.Nodes {
		total += f.ClientsOf(node.ID)
	}
	if total != 500 {
		t.Errorf("per-provider counts sum to %d", total)
	}
}

func TestExposureTracksProviders(t *testing.T) {
	sim := testSim(t, 40, 5)
	sim.StartMining()
	sim.Run(4 * time.Hour)
	f, err := NewFleet(sim, 1000, stats.NewRand(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	e := f.Exposure()
	if e.ByLag.Total() != 1000 {
		t.Fatalf("lag histogram total = %d", e.ByLag.Total())
	}
	// Healthy network: almost everyone synced, nobody on counterfeit.
	if e.OnCounterfeit != 0 {
		t.Errorf("counterfeit exposure %d without attack", e.OnCounterfeit)
	}
	if e.Stale > 200 {
		t.Errorf("stale clients = %d of 1000 in a healthy network", e.Stale)
	}
}

func TestCounterfeitExposureUnderTemporalAttack(t *testing.T) {
	sim := testSim(t, 80, 11)
	sim.StartMining()
	sim.Run(6 * time.Hour)
	f, err := NewFleet(sim, 2000, stats.NewRand(13), nil)
	if err != nil {
		t.Fatal(err)
	}
	victims := attack.FindVictims(sim, 0, 16)
	victimClients := 0
	for _, v := range victims {
		victimClients += f.ClientsOf(v)
	}
	if victimClients == 0 {
		t.Skip("no clients attached to victims at this seed")
	}

	// Freeze the attack at its held state: run the hold phase only by
	// giving a zero heal window, then measure exposure immediately.
	res, err := attack.ExecuteTemporalOn(sim, attack.TemporalConfig{
		AttackerShare: 0.30, HoldFor: 8 * time.Hour, HealFor: 0,
	}, victims)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapturedAtRelease == 0 {
		t.Fatal("attack captured nothing")
	}
	e := f.Exposure()
	// Note: after HealFor=0 the partition is released but no virtual time
	// has passed, so providers still hold the counterfeit view.
	if e.OnCounterfeit == 0 {
		t.Error("no lightweight clients inherited the counterfeit chain")
	}
	if f.AmplificationFactor() <= 0 {
		t.Error("amplification factor should be positive during capture")
	}
}

func TestFleetDeterminism(t *testing.T) {
	sim := testSim(t, 25, 9)
	a, err := NewFleet(sim, 300, stats.NewRand(21), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFleet(sim, 300, stats.NewRand(21), nil)
	if err != nil {
		t.Fatal(err)
	}
	ca, cb := a.Clients(), b.Clients()
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("client %d differs between identical seeds", i)
		}
	}
}

func TestCustomWeight(t *testing.T) {
	sim := testSim(t, 10, 3)
	// All weight on node 4.
	f, err := NewFleet(sim, 100, stats.NewRand(5), func(n *p2p.Node) float64 {
		if n.ID == 4 {
			return 1
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.ClientsOf(4) != 100 {
		t.Errorf("node 4 serves %d clients, want 100", f.ClientsOf(4))
	}
}
