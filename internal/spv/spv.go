// Package spv models the lightweight-client layer of the paper's Figure 1:
// SPV/web wallets (the paper cites Blockchain.info's 2.3-5 million users)
// do not hold the chain themselves — they inherit whatever view their
// full-node provider has. When a partition attack misleads a full node,
// every lightweight client behind it transitively sees the counterfeit
// chain, which is how a 10^4-node attack surface leverages into 10^6-user
// impact (§II, §V-B implications).
package spv

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/netsim"
	"repro/internal/p2p"
	"repro/internal/stats"
)

// Client is one lightweight wallet bound to a providing full node.
type Client struct {
	ID       int
	Provider p2p.NodeID
}

// Fleet is a population of lightweight clients over a simulation.
type Fleet struct {
	sim     *netsim.Simulation
	clients []Client
	// perProvider caches client counts per full node.
	perProvider map[p2p.NodeID]int
}

// NewFleet attaches n lightweight clients to the simulation's full nodes.
// Providers are drawn with probability proportional to weight(node); a nil
// weight uses the node's uptime index (responsive, always-on nodes attract
// wallet backends), falling back to uniform when profiles carry no indices.
func NewFleet(sim *netsim.Simulation, n int, rng *rand.Rand, weight func(*p2p.Node) float64) (*Fleet, error) {
	if sim == nil {
		return nil, errors.New("spv: nil simulation")
	}
	if n <= 0 {
		return nil, fmt.Errorf("spv: fleet size %d must be positive", n)
	}
	if rng == nil {
		return nil, errors.New("spv: nil rng")
	}
	if weight == nil {
		weight = func(node *p2p.Node) float64 {
			if node.Profile.UptimeIndex > 0 {
				return node.Profile.UptimeIndex
			}
			return 1
		}
	}
	weights := make([]float64, len(sim.Network.Nodes))
	for i, node := range sim.Network.Nodes {
		if node.Up {
			weights[i] = weight(node)
		}
	}
	f := &Fleet{sim: sim, perProvider: map[p2p.NodeID]int{}}
	for i := 0; i < n; i++ {
		idx := stats.WeightedIndex(rng, weights)
		if idx < 0 {
			return nil, errors.New("spv: no up full nodes to attach to")
		}
		provider := p2p.NodeID(idx)
		f.clients = append(f.clients, Client{ID: i, Provider: provider})
		f.perProvider[provider]++
	}
	return f, nil
}

// Size returns the fleet size.
func (f *Fleet) Size() int { return len(f.clients) }

// Clients returns a copy of the client bindings.
func (f *Fleet) Clients() []Client {
	return append([]Client(nil), f.clients...)
}

// ClientsOf returns how many clients a full node serves.
func (f *Fleet) ClientsOf(provider p2p.NodeID) int { return f.perProvider[provider] }

// Exposure summarizes the fleet's inherited view at a moment.
type Exposure struct {
	// Stale counts clients whose provider is >= 1 block behind the network
	// reference tip.
	Stale int
	// OnCounterfeit counts clients whose provider's best tip is an
	// attacker-produced block.
	OnCounterfeit int
	// ByLag histograms clients by their provider's lag bucket.
	ByLag p2p.LagBuckets
}

// Exposure computes the current inherited-view summary.
func (f *Fleet) Exposure() Exposure {
	var e Exposure
	ref := f.sim.Network.RefHeight()
	for _, c := range f.clients {
		node := f.sim.Network.Nodes[c.Provider]
		behind := node.BlocksBehind(ref)
		e.ByLag.Add(behind)
		if behind >= 1 {
			e.Stale++
		}
		if node.Tree.Tip().Counterfeit {
			e.OnCounterfeit++
		}
	}
	return e
}

// AmplificationFactor returns the ratio of misled lightweight clients to
// misled full nodes — the paper's asymmetric-vulnerability observation (a
// full node is "worth" o(10^7) USD of downstream users).
func (f *Fleet) AmplificationFactor() float64 {
	ref := f.sim.Network.RefHeight()
	misledNodes := 0
	for _, node := range f.sim.Network.Nodes {
		if node.Up && (node.BlocksBehind(ref) >= 1 || node.Tree.Tip().Counterfeit) {
			misledNodes++
		}
	}
	if misledNodes == 0 {
		return 0
	}
	e := f.Exposure()
	misledClients := e.Stale
	if e.OnCounterfeit > misledClients {
		misledClients = e.OnCounterfeit
	}
	return float64(misledClients) / float64(misledNodes)
}
