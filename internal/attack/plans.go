package attack

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/measure"
	"repro/internal/mining"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/vulndb"
)

// The seven registered scenarios. Each reproduces the exact sub-seeds,
// parameters, and summary text of the pre-registry CLI implementations, so
// `partition attack <name>` output is byte-identical across the redesign.

// --- temporal ---------------------------------------------------------------

// temporalPlan is the Figure 5 temporal attack demo: lagging nodes are
// isolated and fed a counterfeit branch, then the partition heals.
type temporalPlan struct{ env Env }

func (p *temporalPlan) Name() string { return "temporal" }

func (p *temporalPlan) Run(sim *netsim.Simulation, reg *obs.Registry) (Result, error) {
	env := p.env
	if sim == nil {
		var err error
		sim, err = env.NewSim(env.NetworkNodes, env.Seed)
		if err != nil {
			return nil, err
		}
		sim.StartMining()
		sim.Run(6 * time.Hour)
	}
	n := len(sim.Network.Nodes)
	victims := FindVictims(sim, 0, n/8)
	res, err := ExecuteTemporal(sim, TemporalConfig{
		AttackerShare: 0.30,
		MinLag:        0,
		MaxVictims:    n / 8,
		HoldFor:       8 * time.Hour,
		HealFor:       4 * time.Hour,
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Figure 5 (attack demo): temporal partitioning\n")
	fmt.Fprintf(&b, "victims isolated: %d; counterfeit blocks fed: %d\n", len(victims), res.CounterfeitBlocks)
	fmt.Fprintf(&b, "captured at release: %d; max fork depth: %d\n", res.CapturedAtRelease, res.MaxForkDepth)
	fmt.Fprintf(&b, "recovered after heal: %d; transactions reversed: %d\n", res.RecoveredAfterHeal, res.ReversedTxs)
	local := obs.NewRegistry()
	local.Counter("plan.temporal.victims").Add(uint64(len(victims)))
	local.Counter("plan.temporal.captured_at_release").Add(uint64(res.CapturedAtRelease))
	local.Counter("plan.temporal.max_fork_depth").Add(uint64(res.MaxForkDepth))
	local.Counter("plan.temporal.reversed_txs").Add(uint64(res.ReversedTxs))
	return env.finish("temporal", b.String(), reg, local, int64(sim.Engine.Now())), nil
}

// --- doublespend ------------------------------------------------------------

// doubleSpendPlan plants a payment in the first counterfeit block of a
// temporal partition and checks the merchant-visible confirmations reverse
// on heal.
type doubleSpendPlan struct{ env Env }

func (p *doubleSpendPlan) Name() string { return "doublespend" }

func (p *doubleSpendPlan) Run(sim *netsim.Simulation, reg *obs.Registry) (Result, error) {
	env := p.env
	if sim == nil {
		var err error
		sim, err = env.NewSim(env.NetworkNodes, env.Seed+5)
		if err != nil {
			return nil, err
		}
		sim.StartMining()
		sim.Run(6 * time.Hour)
	}
	n := len(sim.Network.Nodes)
	victims := FindVictims(sim, 0, n/10)
	res, err := ExecuteTemporalOn(sim, TemporalConfig{
		AttackerShare: 0.30,
		HoldFor:       8 * time.Hour,
		HealFor:       4 * time.Hour,
		TrackPayment:  true,
	}, victims)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Double-spend through a temporal partition\n")
	fmt.Fprintf(&b, "  payment tx %d planted in the first counterfeit block\n", res.PaymentTx)
	fmt.Fprintf(&b, "  merchant saw %d confirmations during the %d-block hold\n",
		res.MerchantConfirmations, res.CounterfeitBlocks)
	fmt.Fprintf(&b, "  payment reversed on heal: %v (double-spend %s)\n",
		res.PaymentReversed, outcome(res.PaymentReversed && res.MerchantConfirmations >= 2))
	local := obs.NewRegistry()
	local.Counter("plan.doublespend.merchant_confirmations").Add(uint64(res.MerchantConfirmations))
	local.Counter("plan.doublespend.counterfeit_blocks").Add(uint64(res.CounterfeitBlocks))
	if res.PaymentReversed {
		local.Counter("plan.doublespend.payment_reversed").Inc()
	}
	return env.finish("doublespend", b.String(), reg, local, int64(sim.Engine.Now())), nil
}

func outcome(ok bool) string {
	if ok {
		return "SUCCEEDED"
	}
	return "failed"
}

// --- majority51 -------------------------------------------------------------

// majorityPlan races a private chain after spatially isolating Table IV's
// mining backbone.
type majorityPlan struct{ env Env }

func (p *majorityPlan) Name() string { return "majority51" }

func (p *majorityPlan) Run(sim *netsim.Simulation, reg *obs.Registry) (Result, error) {
	env := p.env
	if sim == nil {
		var err error
		sim, err = env.NewSim(env.NetworkNodes, env.Seed+6)
		if err != nil {
			return nil, err
		}
		sim.StartMining()
		sim.Run(6 * time.Hour)
	}
	res, err := ExecuteMajority51(sim, MajorityConfig{
		AttackerShare: 0.30,
		IsolatedShare: 0.657, // the three hijacked ASes of Table IV
		MineFor:       24 * time.Hour,
		Seed:          env.Seed,
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("51% attack after spatially isolating Table IV's mining backbone\n")
	fmt.Fprintf(&b, "  effective race: attacker 30.0%% vs honest %.1f%%\n", res.HonestShare*100)
	fmt.Fprintf(&b, "  private chain: %d blocks vs public %d\n", res.AttackerBlocks, res.HonestBlocks)
	fmt.Fprintf(&b, "  attacker wins: %v; history rewritten %d blocks deep; adopted by %d nodes\n",
		res.AttackerWins, res.ReorgDepth, res.AdoptedBy)
	local := obs.NewRegistry()
	local.Counter("plan.majority51.attacker_blocks").Add(uint64(res.AttackerBlocks))
	local.Counter("plan.majority51.honest_blocks").Add(uint64(res.HonestBlocks))
	local.Counter("plan.majority51.reorg_depth").Add(uint64(res.ReorgDepth))
	local.Counter("plan.majority51.adopted_by").Add(uint64(res.AdoptedBy))
	if res.AttackerWins {
		local.Counter("plan.majority51.attacker_wins").Inc()
	}
	return env.finish("majority51", b.String(), reg, local, int64(sim.Engine.Now())), nil
}

// --- cascade ----------------------------------------------------------------

// cascadePlan cuts increasing fractions of a victim AS (border nodes
// first) and measures how far the surviving interior falls behind. It
// builds its own clustered-topology simulations; the sim argument is
// ignored.
type cascadePlan struct{ env Env }

func (p *cascadePlan) Name() string { return "cascade" }

func (p *cascadePlan) Run(_ *netsim.Simulation, reg *obs.Registry) (Result, error) {
	env := p.env
	// The cascade precondition (§V-A implications): within the victim AS,
	// interior nodes peer only among themselves and with a few border
	// nodes that hold the external connectivity. Hijacking the prefixes
	// that cover the border nodes then starves the whole AS.
	const (
		total    = 100
		asSize   = 30 // victim AS nodes: 0..29
		borders  = 6  // nodes 0..5 carry the AS's external links
		outPeers = 8
	)
	build := func() (*netsim.Simulation, error) {
		rng := stats.NewRand(env.Seed + 7)
		nodes := make([]*p2p.Node, total)
		outbound := make([][]p2p.NodeID, total)
		for i := range nodes {
			asn := topology.ASN(24940)
			if i >= asSize {
				asn = topology.ASN(60000)
			}
			nodes[i] = p2p.NewNode(p2p.NodeID(i), p2p.Profile{ASN: asn})
			for len(outbound[i]) < outPeers {
				var pr int
				switch {
				case i < borders: // border: half internal, half external
					if len(outbound[i])%2 == 0 {
						pr = rng.Intn(asSize)
					} else {
						pr = asSize + rng.Intn(total-asSize)
					}
				case i < asSize: // interior: AS-only
					pr = rng.Intn(asSize)
				default: // outside world: everyone else
					pr = asSize + rng.Intn(total-asSize)
				}
				if pr == i {
					continue
				}
				outbound[i] = append(outbound[i], p2p.NodeID(pr))
			}
		}
		return netsim.FromConfig(netsim.Config{
			Population:   nodes,
			Outbound:     outbound,
			Seed:         env.Seed + 7,
			GatewayNodes: []p2p.NodeID{total - 1}, // honest blocks enter outside
			Obs:          env.Obs,
			Faults:       env.Faults,
			Gossip:       p2p.Config{FailureRate: 0.10},
		})
	}
	var b strings.Builder
	b.WriteString("Eclipse cascade: partial AS cut, interior nodes relaying via border nodes\n")
	local := obs.NewRegistry()
	var tick int64
	for _, frac := range []float64{0.1, 0.2, 0.5} {
		sim, err := build()
		if err != nil {
			return nil, err
		}
		sim.StartMining()
		sim.Run(4 * time.Hour)
		res, err := ExecuteCascade(sim, CascadeConfig{
			Victim:      24940,
			CutFraction: frac, // the cut takes the lowest IDs first: the border
			RunFor:      12 * time.Hour,
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  cut %.0f%% of the AS (%d nodes, border first): %d/%d survivors behind, mean lag %.1f blocks (outside: %.1f%% behind)\n",
			frac*100, res.Cut, res.SurvivorsBehind, res.Survivors, res.MeanSurvivorLag, res.OutsideBehindFrac*100)
		cut := obs.L("cut_pct", fmt.Sprintf("%.0f", frac*100))
		local.Counter("plan.cascade.survivors_behind", cut).Add(uint64(res.SurvivorsBehind))
		local.Gauge("plan.cascade.mean_survivor_lag", cut).Set(res.MeanSurvivorLag)
		tick = int64(sim.Engine.Now())
	}
	b.WriteString("  isolating the border subset eclipses the entire AS, as §V-A predicts\n")
	return env.finish("cascade", b.String(), reg, local, tick), nil
}

// --- spatial ----------------------------------------------------------------

// spatialPlan runs the §V-A BGP scenarios on the population's route table:
// the AS24940 sub-prefix hijack, the Table IV mining isolation, and the
// nation-state cut. It needs no live simulation; the sim argument is
// ignored.
type spatialPlan struct{ env Env }

func (p *spatialPlan) Name() string { return "spatial" }

func (p *spatialPlan) Run(_ *netsim.Simulation, reg *obs.Registry) (Result, error) {
	env := p.env
	sp, err := NewSpatial(env.Pop)
	if err != nil {
		return nil, err
	}
	pools, err := mining.NewPoolSet(dataset.TableIV())
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Spatial attack: sub-prefix hijack of AS24940 (Hetzner, 1,030 nodes)\n")
	plan, err := sp.PlanAS(666, 24940, 0.95)
	if err != nil {
		return nil, err
	}
	res, err := sp.Execute(plan, pools)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "  prefixes hijacked: %d (announcements: %d)\n", plan.HijackCount, res.Announcements)
	fmt.Fprintf(&b, "  nodes captured: %d of 1030 (%.1f%%)\n", res.CapturedNodes, float64(res.CapturedNodes)/10.30)
	sp.Withdraw()

	b.WriteString("Spatial attack on mining: hijack AS37963 + AS45102 + AS58563 (Table IV)\n")
	share := MinerIsolation(pools, []topology.ASN{37963, 45102, 58563})
	fmt.Fprintf(&b, "  hash share isolated: %.1f%%\n", share*100)

	b.WriteString("Nation-state scenario: block all Chinese ASes\n")
	cplan, err := sp.PlanCountry(0, "CN")
	if err != nil {
		return nil, err
	}
	var cnASes []topology.ASN
	for _, t := range cplan.Targets {
		cnASes = append(cnASes, t.Victim)
	}
	cnShare := MinerIsolation(pools, cnASes)
	fmt.Fprintf(&b, "  nodes behind CN ASes: %d; hash share: %.1f%%\n",
		cplan.ExpectedNodes, cnShare*100)
	local := obs.NewRegistry()
	local.Counter("plan.spatial.captured_nodes").Add(uint64(res.CapturedNodes))
	local.Counter("plan.spatial.announcements").Add(uint64(res.Announcements))
	local.Gauge("plan.spatial.mining_share_isolated").Set(share)
	local.Gauge("plan.spatial.cn_hash_share").Set(cnShare)
	return env.finish("spatial", b.String(), reg, local, 0), nil
}

// --- spatiotemporal ---------------------------------------------------------

// spatioTemporalPlan finds the weakest moment in a per-AS-tracked lag trace
// and sizes the combined attack for each adversary capability. It plans on
// the population trace; the sim argument is ignored.
type spatioTemporalPlan struct{ env Env }

func (p *spatioTemporalPlan) Name() string { return "spatiotemporal" }

func (p *spatioTemporalPlan) Run(_ *netsim.Simulation, reg *obs.Registry) (Result, error) {
	env := p.env
	tr, err := env.Pop.RunTrace(dataset.TraceConfig{
		Duration: 24 * time.Hour, SampleEvery: 10 * time.Minute,
		Seed: env.Seed + 9, TrackSyncedByAS: true,
	})
	if err != nil {
		return nil, err
	}
	moment, err := FindBestMoment(tr, 5)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Spatio-temporal attack: best moment at t=%v (synced %d, behind %d)\n",
		moment.Time, moment.Synced, moment.Behind)
	local := obs.NewRegistry()
	local.Counter("plan.spatiotemporal.synced_at_moment").Add(uint64(moment.Synced))
	local.Counter("plan.spatiotemporal.behind_at_moment").Add(uint64(moment.Behind))
	for _, cap := range []Capability{CapabilityRouting, CapabilityMining, CapabilityBoth} {
		plan, err := PlanSpatioTemporal(env.Pop, moment, cap, 5)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %v adversary: %d ASes (%d prefixes), %d temporal victims, coverage %.1f%%\n",
			cap, len(plan.SpatialASes), plan.SpatialPrefixes, plan.TemporalVictims, plan.Coverage*100)
		local.Gauge("plan.spatiotemporal.coverage", obs.L("capability", cap.String())).Set(plan.Coverage)
	}
	return env.finish("spatiotemporal", b.String(), reg, local, int64(moment.Time)), nil
}

// --- logical ----------------------------------------------------------------

// logicalPlan runs the §V-D software-partition analyses (capture targets,
// crash exploit, diversity) and the live relay-silence executions at
// increasing capture shares. It builds its own simulations; the sim
// argument is ignored.
type logicalPlan struct{ env Env }

func (p *logicalPlan) Name() string { return "logical" }

func (p *logicalPlan) Run(_ *netsim.Simulation, reg *obs.Registry) (Result, error) {
	env := p.env
	db := vulndb.New()
	var b strings.Builder
	b.WriteString("Logical attack: software-version partitioning\n")
	plans, err := TopCaptureTargets(env.Pop, 3)
	if err != nil {
		return nil, err
	}
	for _, pl := range plans {
		fmt.Fprintf(&b, "  controlling %q captures %d nodes (%.1f%% of network)\n",
			pl.Version, pl.ControlledNodes, pl.NetworkShare*100)
	}
	impact, err := SimulateCrashExploit(env.Pop, db, "CVE-2018-17144")
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "  CVE-2018-17144 crash exploit: %d of %d up nodes down (%.1f%%)\n",
		impact.NodesDown, impact.UpBefore, impact.DownShare*100)
	hhi := DiversityIndex(env.Pop)
	fmt.Fprintf(&b, "  client diversity (HHI): %.3f across %d variants\n",
		hhi, len(env.Pop.VersionCounts()))

	local := obs.NewRegistry()
	local.Counter("plan.logical.crash_nodes_down").Add(uint64(impact.NodesDown))
	local.Gauge("plan.logical.diversity_hhi").Set(hhi)

	// Live execution: controlled clients silently stop relaying; the
	// honest remainder degrades with the captured share.
	b.WriteString("  relay-silence execution (12h window):\n")
	var tick int64
	for _, k := range []int{1, 2, 20, 100} {
		versions := []string{}
		for _, row := range measure.TopVersions(env.Pop, k) {
			versions = append(versions, row.Version)
		}
		sim, err := env.NewSim(env.NetworkNodes, env.Seed+8)
		if err != nil {
			return nil, err
		}
		sim.StartMining()
		sim.Run(3 * time.Hour)
		res, err := ExecuteLogicalCapture(sim, versions, 12*time.Hour, 0)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "    top %3d versions captured (%.0f%% of nodes silent): %.0f%% of honest nodes fall behind\n",
			k, res.Share*100, res.HonestBehindFrac*100)
		top := obs.L("top_versions", fmt.Sprintf("%d", k))
		local.Gauge("plan.logical.captured_share", top).Set(res.Share)
		local.Gauge("plan.logical.honest_behind_frac", top).Set(res.HonestBehindFrac)
		tick = int64(sim.Engine.Now())
	}
	b.WriteString("  eight-peer gossip redundancy resists relay silence until capture is near-total —\n")
	b.WriteString("  which is why §V-D frames logical control as an optimizer for the other attacks\n")
	return env.finish("logical", b.String(), reg, local, tick), nil
}
