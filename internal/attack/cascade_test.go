package attack

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/p2p"
	"repro/internal/stats"
	"repro/internal/topology"
)

// borderSim builds the structured cascade topology: victim AS nodes 0..29,
// of which 0..5 are border nodes holding all external connectivity; the
// interior peers only within the AS. Honest blocks enter at the last node.
func borderSim(t *testing.T, seed int64) *netsim.Simulation {
	t.Helper()
	const (
		total    = 100
		asSize   = 30
		borders  = 6
		outPeers = 8
	)
	rng := stats.NewRand(seed)
	nodes := make([]*p2p.Node, total)
	outbound := make([][]p2p.NodeID, total)
	for i := range nodes {
		asn := topology.ASN(24940)
		if i >= asSize {
			asn = topology.ASN(60000)
		}
		nodes[i] = p2p.NewNode(p2p.NodeID(i), p2p.Profile{ASN: asn})
		for len(outbound[i]) < outPeers {
			var p int
			switch {
			case i < borders:
				if len(outbound[i])%2 == 0 {
					p = rng.Intn(asSize)
				} else {
					p = asSize + rng.Intn(total-asSize)
				}
			case i < asSize:
				p = rng.Intn(asSize)
			default:
				p = asSize + rng.Intn(total-asSize)
			}
			if p == i {
				continue
			}
			outbound[i] = append(outbound[i], p2p.NodeID(p))
		}
	}
	sim, err := netsim.New(seed,
		netsim.WithNodes(nodes),
		netsim.WithGraph(outbound),
		netsim.WithGateways([]p2p.NodeID{total - 1}),
		netsim.WithGossip(p2p.Config{FailureRate: 0.10}))
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestCascadeBorderCutStrandsInterior(t *testing.T) {
	// Cutting only the border subset (20% of the AS) must starve every
	// interior survivor, while cutting half the border (10%) must not.
	run := func(frac float64) *CascadeResult {
		sim := borderSim(t, 7)
		sim.StartMining()
		sim.Run(4 * time.Hour)
		res, err := ExecuteCascade(sim, CascadeConfig{
			Victim:      24940,
			CutFraction: frac,
			RunFor:      12 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	partial := run(0.1) // cuts 3 of 6 border nodes
	full := run(0.2)    // cuts all 6 border nodes

	if partial.SurvivorsBehind > partial.Survivors/4 {
		t.Errorf("partial border cut already strands %d of %d survivors",
			partial.SurvivorsBehind, partial.Survivors)
	}
	if full.SurvivorsBehind != full.Survivors {
		t.Errorf("full border cut strands %d of %d survivors, want all",
			full.SurvivorsBehind, full.Survivors)
	}
	if full.MeanSurvivorLag < 10 {
		t.Errorf("mean survivor lag %.1f too small for a 12h eclipse", full.MeanSurvivorLag)
	}
	// The outside world is unaffected — the control group.
	if full.OutsideBehindFrac > 0.1 {
		t.Errorf("outside behind fraction %.2f; the cascade should be contained", full.OutsideBehindFrac)
	}
}

func TestCascadeGatewayPinning(t *testing.T) {
	sim := borderSim(t, 3)
	gws := sim.Gateways()
	if len(gws) != 1 || gws[0] != 99 {
		t.Errorf("gateways = %v, want [99]", gws)
	}
	if !sim.IsGateway(99) || sim.IsGateway(0) {
		t.Error("IsGateway inconsistent with pinning")
	}
}

func TestWithGraphValidation(t *testing.T) {
	nodes := []*p2p.Node{p2p.NewNode(0, p2p.Profile{}), p2p.NewNode(1, p2p.Profile{})}
	graphSim := func(outbound [][]p2p.NodeID, extra ...netsim.Option) error {
		opts := append([]netsim.Option{netsim.WithNodes(nodes), netsim.WithGraph(outbound)}, extra...)
		_, err := netsim.New(1, opts...)
		return err
	}
	// Row count mismatch.
	if err := graphSim([][]p2p.NodeID{{1}}); err == nil {
		t.Error("row mismatch accepted")
	}
	// Self loop.
	if err := graphSim([][]p2p.NodeID{{0}, {0}}); err == nil {
		t.Error("self loop accepted")
	}
	// Out of range.
	if err := graphSim([][]p2p.NodeID{{5}, {0}}); err == nil {
		t.Error("out-of-range peer accepted")
	}
	// Valid.
	if err := graphSim([][]p2p.NodeID{{1}, {0}}); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
	// Gateway out of range.
	if err := graphSim([][]p2p.NodeID{{1}, {0}},
		netsim.WithGateways([]p2p.NodeID{9})); err == nil {
		t.Error("out-of-range gateway accepted")
	}
}
