package attack

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/measure"
	"repro/internal/mining"
	"repro/internal/topology"
)

// Spatial partitioning (§V-A): a malicious AS, organization, or
// nation-state announces BGP prefixes belonging to victim ASes, isolating
// the full nodes and stratum servers numbered under them.

// SpatialPlan is a prepared BGP hijack: the prefix set to announce and the
// expected capture.
type SpatialPlan struct {
	Attacker topology.ASN
	// Targets lists each victim AS and the prefixes to hijack there, in
	// priority (node-density) order.
	Targets []SpatialTarget
	// ExpectedNodes is the number of full nodes the plan captures.
	ExpectedNodes int
	// HijackCount is the total number of prefix announcements required —
	// the paper's cost metric ("the number of prefixes to be hijacked as an
	// effort").
	HijackCount int
}

// SpatialTarget is one victim AS within a plan.
type SpatialTarget struct {
	Victim   topology.ASN
	Prefixes []topology.Prefix
	Nodes    int
}

// Spatial plans and executes BGP hijacks over a population.
type Spatial struct {
	pop *dataset.Population
}

// NewSpatial returns a spatial attacker over the population.
func NewSpatial(pop *dataset.Population) (*Spatial, error) {
	if pop == nil {
		return nil, errors.New("attack: nil population")
	}
	return &Spatial{pop: pop}, nil
}

// PlanAS prepares a hijack capturing at least frac of the victim AS's
// nodes using the fewest prefixes (Figure 4's curve gives the cost).
func (s *Spatial) PlanAS(attacker, victim topology.ASN, frac float64) (*SpatialPlan, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("attack: fraction %v outside (0,1]", frac)
	}
	prefixes, err := measure.OrderedPrefixes(s.pop, victim)
	if err != nil {
		return nil, err
	}
	nodes := s.pop.NodesInAS(victim)
	perPrefix := map[topology.Prefix]int{}
	for _, n := range nodes {
		perPrefix[n.Prefix]++
	}
	need := int(float64(len(nodes))*frac + 0.999999)
	var chosen []topology.Prefix
	captured := 0
	for _, pfx := range prefixes {
		if captured >= need {
			break
		}
		chosen = append(chosen, pfx)
		captured += perPrefix[pfx]
	}
	if captured < need {
		return nil, fmt.Errorf("attack: cannot capture %v of AS%d", frac, victim)
	}
	return &SpatialPlan{
		Attacker: attacker,
		Targets: []SpatialTarget{
			{Victim: victim, Prefixes: chosen, Nodes: captured},
		},
		ExpectedNodes: captured,
		HijackCount:   len(chosen),
	}, nil
}

// PlanOrganization prepares a full hijack of every AS owned by an
// organization — the paper's organization-level amplification (Amazon and
// AliBaba own several ASes each).
func (s *Spatial) PlanOrganization(attacker topology.ASN, org string) (*SpatialPlan, error) {
	ases := s.pop.Topo.ASesOfOrg(org)
	if len(ases) == 0 {
		return nil, fmt.Errorf("attack: organization %q unknown or hosts nothing", org)
	}
	plan := &SpatialPlan{Attacker: attacker}
	for _, as := range ases {
		target, err := s.planWholeAS(as.Number)
		if err != nil {
			return nil, err
		}
		plan.Targets = append(plan.Targets, target)
		plan.ExpectedNodes += target.Nodes
		plan.HijackCount += len(target.Prefixes)
	}
	return plan, nil
}

// PlanCountry prepares the nation-state scenario (§III): hijack/block every
// AS registered in a country.
func (s *Spatial) PlanCountry(attacker topology.ASN, country string) (*SpatialPlan, error) {
	ases := s.pop.Topo.ASesInCountry(country)
	if len(ases) == 0 {
		return nil, fmt.Errorf("attack: no ASes in country %q", country)
	}
	plan := &SpatialPlan{Attacker: attacker}
	for _, asn := range ases {
		target, err := s.planWholeAS(asn)
		if err != nil {
			return nil, err
		}
		plan.Targets = append(plan.Targets, target)
		plan.ExpectedNodes += target.Nodes
		plan.HijackCount += len(target.Prefixes)
	}
	return plan, nil
}

func (s *Spatial) planWholeAS(victim topology.ASN) (SpatialTarget, error) {
	prefixes, err := measure.OrderedPrefixes(s.pop, victim)
	if err != nil {
		return SpatialTarget{}, err
	}
	return SpatialTarget{
		Victim:   victim,
		Prefixes: prefixes,
		Nodes:    len(s.pop.NodesInAS(victim)),
	}, nil
}

// ExecutionResult reports what a hijack actually captured once announced.
type ExecutionResult struct {
	// CapturedNodes is the count of nodes whose traffic now resolves to the
	// attacker.
	CapturedNodes int
	// CapturedIDs lists their node IDs (ascending).
	CapturedIDs []int
	// Announcements is the number of hijack routes injected.
	Announcements int
	// IsolatedHashShare is the mining hash share cut off, if a pool roster
	// was supplied.
	IsolatedHashShare float64
}

// Execute announces the plan's hijack prefixes into the population's route
// table and measures the capture by resolving every victim-AS node's IP.
// Pools, if non-nil, contribute the isolated-hash-share measurement
// (Table IV: hijacking 3 ASes isolates >60% of hash power).
func (s *Spatial) Execute(plan *SpatialPlan, pools *mining.PoolSet) (*ExecutionResult, error) {
	if plan == nil {
		return nil, errors.New("attack: nil plan")
	}
	rt := s.pop.Topo.Routes()
	res := &ExecutionResult{}
	victimASes := map[topology.ASN]bool{}
	hijacksBefore := rt.HijackCount()
	for _, target := range plan.Targets {
		victimASes[target.Victim] = true
		for _, pfx := range target.Prefixes {
			if err := rt.HijackPrefix(plan.Attacker, pfx); err != nil {
				return nil, fmt.Errorf("attack: announce %v: %w", pfx, err)
			}
		}
	}
	res.Announcements = rt.HijackCount() - hijacksBefore
	for _, n := range s.pop.Nodes {
		if n.Family == topology.FamilyOnion {
			continue
		}
		if !victimASes[n.ASN] {
			continue
		}
		if got, ok := rt.Resolve(n.IP); ok && got == plan.Attacker {
			res.CapturedNodes++
			res.CapturedIDs = append(res.CapturedIDs, n.ID)
		}
	}
	sort.Ints(res.CapturedIDs)
	if pools != nil {
		res.IsolatedHashShare = pools.ShareBehindASes(victimASes)
	}
	return res, nil
}

// Withdraw purges all hijack announcements, restoring legitimate routing
// (the route-purging countermeasure; also used between experiments).
func (s *Spatial) Withdraw() int {
	return s.pop.Topo.Routes().WithdrawHijacks()
}

// MinerIsolation reports the hash share isolated by hijacking a set of
// ASes, per Table IV's stratum placement.
func MinerIsolation(pools *mining.PoolSet, ases []topology.ASN) float64 {
	set := map[topology.ASN]bool{}
	for _, a := range ases {
		set[a] = true
	}
	return pools.ShareBehindASes(set)
}
