package attack

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/topology"
)

var sharedPop *dataset.Population

// freshPop returns the shared population; tests that mutate routing must
// call (*Spatial).Withdraw afterwards.
func testPop(t *testing.T) *dataset.Population {
	t.Helper()
	if sharedPop == nil {
		p, err := dataset.Generate(1)
		if err != nil {
			t.Fatal(err)
		}
		sharedPop = p
	}
	return sharedPop
}

func testPools(t *testing.T) *mining.PoolSet {
	t.Helper()
	set, err := mining.NewPoolSet(dataset.TableIV())
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestNewSpatialNil(t *testing.T) {
	if _, err := NewSpatial(nil); err == nil {
		t.Error("nil population accepted")
	}
}

func TestPlanASHetzner(t *testing.T) {
	s, err := NewSpatial(testPop(t))
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4 headline: 95% of AS24940's 1,030 nodes within ~15 prefixes.
	plan, err := s.PlanAS(666, 24940, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if plan.HijackCount > 25 {
		t.Errorf("hijacks = %d, want <= 25 (paper ~15)", plan.HijackCount)
	}
	if plan.ExpectedNodes < 978 {
		t.Errorf("expected nodes = %d, want >= 978", plan.ExpectedNodes)
	}
	// Cheaper targets need fewer prefixes for less coverage.
	half, err := s.PlanAS(666, 24940, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.HijackCount >= plan.HijackCount {
		t.Error("50% capture should cost fewer hijacks than 95%")
	}
}

func TestPlanASValidation(t *testing.T) {
	s, _ := NewSpatial(testPop(t))
	if _, err := s.PlanAS(666, 24940, 0); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := s.PlanAS(666, 24940, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := s.PlanAS(666, 99999999, 0.5); err == nil {
		t.Error("unknown AS accepted")
	}
}

func TestExecuteCapturesPlannedNodes(t *testing.T) {
	pop := testPop(t)
	s, _ := NewSpatial(pop)
	plan, err := s.PlanAS(666, 24940, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Withdraw()
	if res.CapturedNodes != plan.ExpectedNodes {
		t.Errorf("captured %d, plan expected %d", res.CapturedNodes, plan.ExpectedNodes)
	}
	// Each /20 hijack announces two /21 halves.
	if res.Announcements != 2*plan.HijackCount {
		t.Errorf("announcements = %d, want %d", res.Announcements, 2*plan.HijackCount)
	}
	if len(res.CapturedIDs) != res.CapturedNodes {
		t.Errorf("IDs = %d, count = %d", len(res.CapturedIDs), res.CapturedNodes)
	}
	// Captured nodes must actually resolve to the attacker.
	for _, id := range res.CapturedIDs[:10] {
		n := pop.Nodes[id]
		if got, ok := pop.Topo.Resolve(n.IP); !ok || got != 666 {
			t.Fatalf("node %d resolves to AS%d, want attacker", id, got)
		}
	}
}

func TestWithdrawRestoresRouting(t *testing.T) {
	pop := testPop(t)
	s, _ := NewSpatial(pop)
	plan, err := s.PlanAS(666, 16276, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(plan, nil); err != nil {
		t.Fatal(err)
	}
	purged := s.Withdraw()
	if purged == 0 {
		t.Fatal("nothing purged")
	}
	for _, n := range pop.NodesInAS(16276)[:5] {
		if got, ok := pop.Topo.Resolve(n.IP); !ok || got != 16276 {
			t.Fatalf("after purge node resolves to AS%d", got)
		}
	}
}

func TestPlanOrganizationAmplification(t *testing.T) {
	pop := testPop(t)
	s, _ := NewSpatial(pop)
	plan, err := s.PlanOrganization(666, "Amazon.com, Inc")
	if err != nil {
		t.Fatal(err)
	}
	// Amazon owns two ASes (16509 + 14618) totalling 756 nodes.
	if len(plan.Targets) != 2 {
		t.Fatalf("targets = %d, want 2", len(plan.Targets))
	}
	if plan.ExpectedNodes != 756 {
		t.Errorf("expected nodes = %d, want 756", plan.ExpectedNodes)
	}
	if _, err := s.PlanOrganization(666, "nonexistent"); err == nil {
		t.Error("unknown org accepted")
	}
}

func TestPlanCountryNationState(t *testing.T) {
	pop := testPop(t)
	s, _ := NewSpatial(pop)
	plan, err := s.PlanCountry(666, "CN")
	if err != nil {
		t.Fatal(err)
	}
	// China hosts AS37963, AS4134, AS45102, AS58563 in the head: >= 1,300
	// nodes (and 60% of mining traffic, checked below).
	if plan.ExpectedNodes < 1300 {
		t.Errorf("CN nodes = %d, want >= 1300", plan.ExpectedNodes)
	}
	pools := testPools(t)
	var cnASes []topology.ASN
	for _, tgt := range plan.Targets {
		cnASes = append(cnASes, tgt.Victim)
	}
	share := MinerIsolation(pools, cnASes)
	// "60% of the mining traffic goes through China".
	if share < 0.60 {
		t.Errorf("CN mining share = %v, want >= 0.60", share)
	}
	if _, err := s.PlanCountry(666, "XX"); err == nil {
		t.Error("unknown country accepted")
	}
}

func TestExecuteWithPoolsTableIV(t *testing.T) {
	pop := testPop(t)
	s, _ := NewSpatial(pop)
	pools := testPools(t)
	// Hijack the three Table IV ASes; isolated share must be 65.7%.
	plan := &SpatialPlan{Attacker: 666}
	for _, asn := range []topology.ASN{37963, 45102, 58563} {
		target, err := s.planWholeAS(asn)
		if err != nil {
			t.Fatal(err)
		}
		plan.Targets = append(plan.Targets, target)
	}
	res, err := s.Execute(plan, pools)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Withdraw()
	if math.Abs(res.IsolatedHashShare-0.657) > 1e-9 {
		t.Errorf("isolated hash share = %v, want 0.657", res.IsolatedHashShare)
	}
}

func TestExecuteNilPlan(t *testing.T) {
	s, _ := NewSpatial(testPop(t))
	if _, err := s.Execute(nil, nil); err == nil {
		t.Error("nil plan accepted")
	}
}
