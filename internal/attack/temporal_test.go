package attack

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/p2p"
)

// warmSim builds a small network, mines some history, and leaves the tail
// of the network slightly behind by using a lossy, slow gossip config.
func warmSim(t *testing.T, nodes int, seed int64) *netsim.Simulation {
	t.Helper()
	sim, err := netsim.FromConfig(netsim.Config{
		Nodes: nodes,
		Seed:  seed,
		Gossip: p2p.Config{
			FailureRate:    0.10,
			MeanRelayDelay: 2 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.StartMining()
	sim.Run(6 * time.Hour)
	return sim
}

func TestTemporalConfigValidate(t *testing.T) {
	valid := TemporalConfig{AttackerShare: 0.3, MinLag: 1, HoldFor: time.Hour, HealFor: time.Hour}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name string
		mut  func(*TemporalConfig)
	}{
		{"zero share", func(c *TemporalConfig) { c.AttackerShare = 0 }},
		{"share 1", func(c *TemporalConfig) { c.AttackerShare = 1 }},
		{"negative lag", func(c *TemporalConfig) { c.MinLag = -1 }},
		{"zero hold", func(c *TemporalConfig) { c.HoldFor = 0 }},
		{"negative heal", func(c *TemporalConfig) { c.HealFor = -time.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := valid
			tt.mut(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestFindVictims(t *testing.T) {
	sim := warmSim(t, 60, 5)
	all := FindVictims(sim, 0, 0)
	// Every up node except pool gateways (miners are not temporal prey).
	want := 60 - len(sim.Gateways())
	if len(all) != want {
		t.Errorf("minLag=0 selected %d nodes, want %d", len(all), want)
	}
	capped := FindVictims(sim, 0, 10)
	if len(capped) != 10 {
		t.Errorf("cap ignored: %d", len(capped))
	}
	deep := FindVictims(sim, 1000, 0)
	if len(deep) != 0 {
		t.Errorf("absurd lag matched %d nodes", len(deep))
	}
}

func TestExecuteTemporalCapturesAndHeals(t *testing.T) {
	sim := warmSim(t, 80, 11)
	// Explicit victim set: 16 nodes, regardless of current lag.
	victims := FindVictims(sim, 0, 16)
	cfg := TemporalConfig{
		AttackerShare: 0.30,
		MinLag:        0,
		HoldFor:       8 * time.Hour,
		HealFor:       4 * time.Hour,
	}
	res, err := ExecuteTemporalOn(sim, cfg, victims)
	if err != nil {
		t.Fatal(err)
	}
	if res.CounterfeitBlocks == 0 {
		t.Fatal("attacker mined nothing over 8 hours at 30% share")
	}
	// 30% share over 8h: ~14 counterfeit blocks expected.
	if res.CounterfeitBlocks < 4 || res.CounterfeitBlocks > 40 {
		t.Errorf("counterfeit blocks = %d, want ~14", res.CounterfeitBlocks)
	}
	// The soft fork must capture a majority of the partitioned set.
	if res.CapturedAtRelease < len(victims)/2 {
		t.Errorf("captured %d of %d victims at release", res.CapturedAtRelease, len(victims))
	}
	if res.MaxForkDepth == 0 {
		t.Error("no fork depth recorded despite capture")
	}
	// After healing, the longest (honest) chain must win: most victims
	// recover and their counterfeit-chain transactions are reversed.
	if res.RecoveredAfterHeal < len(victims)*3/4 {
		t.Errorf("recovered %d of %d after heal", res.RecoveredAfterHeal, len(victims))
	}
	if res.CapturedAtRelease > 0 && res.ReversedTxs == 0 {
		t.Error("capture with no reversed transactions after heal")
	}
	// Honest production during hold reflects the reduced (70%) share:
	// expect ~5.6 blocks per hour * 8 = ~34; loose band.
	if res.HonestBlocksDuringHold < 15 || res.HonestBlocksDuringHold > 60 {
		t.Errorf("honest blocks during hold = %d", res.HonestBlocksDuringHold)
	}
}

func TestExecuteTemporalEmptyVictims(t *testing.T) {
	sim := warmSim(t, 30, 2)
	cfg := TemporalConfig{AttackerShare: 0.3, HoldFor: time.Hour, HealFor: time.Hour}
	if _, err := ExecuteTemporalOn(sim, cfg, nil); err == nil {
		t.Error("empty victim set accepted")
	}
	if _, err := ExecuteTemporal(sim, TemporalConfig{
		AttackerShare: 0.3, MinLag: 10000, HoldFor: time.Hour,
	}); err == nil {
		t.Error("no-victim criterion accepted")
	}
}

func TestTemporalPartitionBlocksCrossTraffic(t *testing.T) {
	sim := warmSim(t, 60, 21)
	victims := FindVictims(sim, 0, 12)
	isVictim := map[p2p.NodeID]bool{}
	for _, v := range victims {
		isVictim[v] = true
	}
	heightBefore := map[p2p.NodeID]int{}
	for _, v := range victims {
		heightBefore[v] = sim.Network.Nodes[v].Height()
	}
	cfg := TemporalConfig{AttackerShare: 0.30, HoldFor: 6 * time.Hour, HealFor: 3 * time.Hour}
	res, err := ExecuteTemporalOn(sim, cfg, victims)
	if err != nil {
		t.Fatal(err)
	}
	// During hold the honest chain kept growing; victims who ended captured
	// are behind the network reference even though their local chain moved.
	ref := sim.Network.RefHeight()
	for _, v := range victims {
		node := sim.Network.Nodes[v]
		if node.Height() < heightBefore[v] {
			t.Fatalf("victim %d lost height", v)
		}
		_ = ref
	}
	if res.HonestBlocksDuringHold == 0 {
		t.Error("honest network halted during partition")
	}
}

func TestTemporalDeterminism(t *testing.T) {
	run := func() *TemporalResult {
		sim := warmSim(t, 50, 31)
		victims := FindVictims(sim, 0, 10)
		cfg := TemporalConfig{AttackerShare: 0.3, HoldFor: 4 * time.Hour, HealFor: 2 * time.Hour}
		res, err := ExecuteTemporalOn(sim, cfg, victims)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.CounterfeitBlocks != b.CounterfeitBlocks ||
		a.CapturedAtRelease != b.CapturedAtRelease ||
		a.ReversedTxs != b.ReversedTxs {
		t.Errorf("seeded runs diverged: %+v vs %+v", a, b)
	}
}
