package attack

import (
	"math"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/p2p"
	"repro/internal/vulndb"
)

func TestExposureOrderingAndJoin(t *testing.T) {
	pop := testPop(t)
	db := vulndb.New()
	exposures := Exposure(pop, db)
	if len(exposures) == 0 {
		t.Fatal("no exposures")
	}
	// Sorted by node count descending; top is v0.16.0.
	if exposures[0].Version != "Bitcoin Core v0.16.0" {
		t.Errorf("top version = %q", exposures[0].Version)
	}
	for i := 1; i < len(exposures); i++ {
		if exposures[i].Nodes > exposures[i-1].Nodes {
			t.Fatal("not sorted")
		}
	}
	// Every Core version at the collection date matches the unfixed pair.
	if len(exposures[0].CVEs) == 0 {
		t.Error("v0.16.0 matched no CVEs (CVE-2018-17144 should apply)")
	}
	if exposures[0].MaxCVSS < 7.5 {
		t.Errorf("v0.16.0 MaxCVSS = %v", exposures[0].MaxCVSS)
	}
	// Shares sum to ~1.
	var total float64
	for _, e := range exposures {
		total += e.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v", total)
	}
}

func TestVulnerableShare(t *testing.T) {
	pop := testPop(t)
	db := vulndb.New()
	all := VulnerableShare(pop, db, 0)
	high := VulnerableShare(pop, db, 7.5)
	critical := VulnerableShare(pop, db, 9.9)
	if all < high || high < critical {
		t.Errorf("shares not monotone: %v %v %v", all, high, critical)
	}
	// CVE-2018-17144 "can be found in all client versions": the bulk of the
	// network (all Core >= 0.14 plus older versions' own CVEs) is exposed.
	if all < 0.5 {
		t.Errorf("vulnerable share = %v, want >= 0.5", all)
	}
	if critical != 0 {
		t.Errorf("no embedded CVE reaches CVSS 9.9, share = %v", critical)
	}
}

func TestPlanVersionCapture(t *testing.T) {
	pop := testPop(t)
	plan, err := PlanVersionCapture(pop, "Bitcoin Core v0.16.0")
	if err != nil {
		t.Fatal(err)
	}
	// Table VIII: 36.28% of the network runs v0.16.0 — controlling that
	// client partitions over a third of the network.
	if math.Abs(plan.NetworkShare-0.3628) > 0.01 {
		t.Errorf("network share = %v, want ~0.3628", plan.NetworkShare)
	}
	if _, err := PlanVersionCapture(pop, "NoSuchClient v9"); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestSimulateCrashExploit(t *testing.T) {
	pop := testPop(t)
	db := vulndb.New()
	impact, err := SimulateCrashExploit(pop, db, "CVE-2018-17144")
	if err != nil {
		t.Fatal(err)
	}
	if impact.UpBefore == 0 || impact.UpAfter >= impact.UpBefore {
		t.Fatalf("impact = %+v", impact)
	}
	// v0.14+ dominates the network: the crash takes out most of it.
	if impact.DownShare < 0.5 {
		t.Errorf("down share = %v, want >= 0.5 (vulnerability spans all modern versions)", impact.DownShare)
	}
	if impact.UpBefore-impact.NodesDown != impact.UpAfter {
		t.Error("inconsistent counts")
	}
	// An ancient, long-fixed CVE touches almost nobody at the 2018 snapshot.
	old, err := SimulateCrashExploit(pop, db, "CVE-2010-5139")
	if err != nil {
		t.Fatal(err)
	}
	if old.DownShare > 0.01 {
		t.Errorf("ancient CVE down share = %v", old.DownShare)
	}
	if _, err := SimulateCrashExploit(pop, db, "CVE-0000-0000"); err == nil {
		t.Error("unknown CVE accepted")
	}
}

func TestDiversityIndex(t *testing.T) {
	pop := testPop(t)
	hhi := DiversityIndex(pop)
	// 288 variants with a 36% head: HHI should be well below monoculture
	// but clearly above the uniform-over-288 floor (~0.0035).
	if hhi <= 0.0035 || hhi >= 0.5 {
		t.Errorf("HHI = %v outside plausible band", hhi)
	}
	// Expected roughly 0.3628^2 + 0.2752^2 + ... ~ 0.21.
	if math.Abs(hhi-0.21) > 0.05 {
		t.Errorf("HHI = %v, want ~0.21", hhi)
	}
}

func TestExecuteLogicalCapture(t *testing.T) {
	// Build a profiled simulation: 64% of nodes run the two captured
	// versions (Table VIII's v0.16.0 + v0.15.1 shares), the rest run a
	// third client.
	build := func(seed int64) *netsim.Simulation {
		nodes := make([]*p2p.Node, 100)
		for i := range nodes {
			version := "other"
			switch {
			case i < 36:
				version = "Bitcoin Core v0.16.0"
			case i < 64:
				version = "Bitcoin Core v0.15.1"
			}
			nodes[i] = p2p.NewNode(p2p.NodeID(i), p2p.Profile{Version: version})
		}
		sim, err := netsim.FromConfig(netsim.Config{
			Population: nodes, Seed: seed,
			GatewayNodes: []p2p.NodeID{99}, // gateway runs "other"
			Gossip:       p2p.Config{FailureRate: 0.10},
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.StartMining()
		sim.Run(3 * time.Hour)
		return sim
	}
	// Baseline sanity: the same window without the attack keeps the
	// network healthy.
	baseSim := build(71)
	baseSim.Run(baseSim.Engine.Now() + 12*time.Hour)
	baseLag := baseSim.LagHistogram()
	baseBehind := 1 - float64(baseLag.Synced)/float64(baseLag.Total())
	if baseBehind > 0.05 {
		t.Fatalf("baseline already degraded: %.2f behind", baseBehind)
	}

	sim := build(71)
	res, err := ExecuteLogicalCapture(sim,
		[]string{"Bitcoin Core v0.16.0", "Bitcoin Core v0.15.1"}, 12*time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Controlled != 64 {
		t.Errorf("controlled = %d, want 64", res.Controlled)
	}
	// With 64% of relays silent, the honest remainder degrades visibly.
	if res.HonestBehindFrac < 0.05 {
		t.Errorf("honest behind fraction = %.2f; relay silence had no effect", res.HonestBehindFrac)
	}

	// Error paths.
	if _, err := ExecuteLogicalCapture(sim, nil, time.Hour, 0); err == nil {
		t.Error("empty version list accepted")
	}
	if _, err := ExecuteLogicalCapture(sim, []string{"x"}, 0, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := ExecuteLogicalCapture(sim, []string{"nobody-runs-this"}, time.Hour, 0); err == nil {
		t.Error("unmatched version accepted")
	}
}

func TestTopCaptureTargets(t *testing.T) {
	pop := testPop(t)
	plans, err := TopCaptureTargets(pop, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("plans = %d", len(plans))
	}
	if plans[0].Version != "Bitcoin Core v0.16.0" || plans[1].Version != "Bitcoin Core v0.15.1" {
		t.Errorf("top targets = %q, %q", plans[0].Version, plans[1].Version)
	}
	if plans[0].NetworkShare < plans[1].NetworkShare {
		t.Error("targets not ordered by share")
	}
	if _, err := TopCaptureTargets(pop, 0); err == nil {
		t.Error("n=0 accepted")
	}
}
