package attack

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/topology"
)

// The cascade effect (§V-A implications): "the attacker does not have to
// isolate all nodes by hijacking all BGP prefixes in an AS. Isolating a
// major subset of nodes can eclipse the entire AS" — because nodes relay
// blocks to each other, cutting the heavily-relied-upon subset starves the
// rest. The effect requires locality-biased peering (p2p.Config.SameASBias);
// with uniform peering, the survivors simply lean on their out-of-AS peers.

// CascadeConfig parameterizes the experiment.
type CascadeConfig struct {
	// Victim is the AS whose nodes are attacked.
	Victim topology.ASN
	// CutFraction of the AS's nodes are blackholed (cheapest-prefix-first
	// in the real attack; here the first fraction of the AS's node list).
	CutFraction float64
	// RunFor is the observation window after the cut.
	RunFor time.Duration
}

// Validate rejects unusable parameters.
func (c CascadeConfig) Validate() error {
	if c.CutFraction < 0 || c.CutFraction > 1 {
		return fmt.Errorf("attack: cut fraction %v outside [0,1]", c.CutFraction)
	}
	if c.RunFor <= 0 {
		return errors.New("attack: RunFor must be positive")
	}
	return nil
}

// CascadeResult measures collateral damage on the AS's surviving nodes.
type CascadeResult struct {
	// Cut and Survivors are the two halves of the AS's population.
	Cut, Survivors int
	// SurvivorsBehind counts surviving AS nodes >= 1 block behind at the
	// end of the window.
	SurvivorsBehind int
	// MeanSurvivorLag is their average blocks-behind.
	MeanSurvivorLag float64
	// OutsideBehindFrac is the behind-fraction among non-AS nodes, the
	// control group.
	OutsideBehindFrac float64
}

// ExecuteCascade blackholes a fraction of an AS's nodes on a live
// simulation and measures how far the AS's surviving nodes fall behind
// relative to the rest of the network.
func ExecuteCascade(sim *netsim.Simulation, cfg CascadeConfig) (*CascadeResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var members []p2p.NodeID
	for _, node := range sim.Network.Nodes {
		if node.Profile.ASN == cfg.Victim && node.Up {
			members = append(members, node.ID)
		}
	}
	if len(members) < 4 {
		return nil, fmt.Errorf("attack: AS%d has only %d up nodes in the simulation", cfg.Victim, len(members))
	}
	nCut := int(float64(len(members)) * cfg.CutFraction)
	cut := make(map[p2p.NodeID]bool, nCut)
	for _, id := range members[:nCut] {
		cut[id] = true
	}

	trace := sim.Obs().Tracer()
	trace.Emit(int64(sim.Engine.Now()), "attack", "cascade_cut",
		obs.Fint("as", int64(cfg.Victim)),
		obs.Fint("cut", int64(nCut)),
		obs.Fint("members", int64(len(members))))

	// Blackhole the cut set: no traffic in or out (BGP-level isolation).
	sim.Network.SetPolicy(func(from, to p2p.NodeID, _ time.Duration) bool {
		return !cut[from] && !cut[to]
	})
	sim.Run(sim.Engine.Now() + cfg.RunFor)
	sim.Network.SetPolicy(nil)

	res := &CascadeResult{Cut: nCut, Survivors: len(members) - nCut}
	ref := sim.Network.RefHeight()
	var lagSum int
	for _, id := range members[nCut:] {
		lag := sim.Network.Nodes[id].BlocksBehind(ref)
		lagSum += lag
		if lag >= 1 {
			res.SurvivorsBehind++
		}
	}
	if res.Survivors > 0 {
		res.MeanSurvivorLag = float64(lagSum) / float64(res.Survivors)
	}
	outside, outsideBehind := 0, 0
	for _, node := range sim.Network.Nodes {
		if node.Profile.ASN == cfg.Victim || !node.Up {
			continue
		}
		outside++
		if node.BlocksBehind(ref) >= 1 {
			outsideBehind++
		}
	}
	if outside > 0 {
		res.OutsideBehindFrac = float64(outsideBehind) / float64(outside)
	}
	sim.Obs().Registry().Counter("attack.victims_captured").Add(uint64(res.SurvivorsBehind))
	trace.Emit(int64(sim.Engine.Now()), "attack", "cascade_end",
		obs.Fint("survivors_behind", int64(res.SurvivorsBehind)),
		obs.Ffloat("mean_survivor_lag", res.MeanSurvivorLag),
		obs.Ffloat("outside_behind_frac", res.OutsideBehindFrac))
	sim.ObserveSync()
	return res, nil
}
