package attack

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/blockchain"
	"repro/internal/mining"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stats"
)

// The 51% scenario (§V-A implications): "By isolating a majority of the
// network's hash power, the attacker can launch the 51% attack on Bitcoin
// which will grant him a permanent control over the blockchain." The
// attacker first uses the spatial attack to cut a fraction of honest hash
// power off the network, then mines privately; if his effective share
// exceeds what remains connected, his chain grows faster and, once
// published, rewrites the public history.

// MajorityConfig parameterizes the scenario.
type MajorityConfig struct {
	// AttackerShare is the attacker's own fraction of the original total
	// hash rate.
	AttackerShare float64
	// IsolatedShare is the honest fraction the spatial attack disconnected
	// (e.g. 0.657 after hijacking Table IV's three ASes).
	IsolatedShare float64
	// MineFor is the private-mining window.
	MineFor time.Duration
	// Seed drives the attacker's private block arrivals.
	Seed int64
}

// Validate rejects impossible shares.
func (c MajorityConfig) Validate() error {
	if c.AttackerShare <= 0 || c.AttackerShare >= 1 {
		return fmt.Errorf("attack: attacker share %v outside (0,1)", c.AttackerShare)
	}
	if c.IsolatedShare < 0 || c.AttackerShare+c.IsolatedShare >= 1 {
		return fmt.Errorf("attack: attacker %v + isolated %v shares must stay below 1",
			c.AttackerShare, c.IsolatedShare)
	}
	if c.MineFor <= 0 {
		return errors.New("attack: MineFor must be positive")
	}
	return nil
}

// MajorityResult reports the race outcome.
type MajorityResult struct {
	// HonestShare is what remained connected (1 - attacker - isolated).
	HonestShare float64
	// AttackerBlocks and HonestBlocks are the chains' growth during the
	// race.
	AttackerBlocks, HonestBlocks int
	// AttackerWins is true when the private chain ended strictly longer.
	AttackerWins bool
	// ReorgDepth is the public-history rewrite depth after publication
	// (0 when the attacker lost and published nothing).
	ReorgDepth int
	// AdoptedBy counts up nodes whose best tip is the attacker's chain
	// after publication and propagation.
	AdoptedBy int
}

// ExecuteMajority51 runs the race on a live simulation. The simulation
// should be warmed up (some public history); honest mining continues at the
// reduced share while the attacker mines privately from the current public
// tip, then publishes if ahead.
func ExecuteMajority51(sim *netsim.Simulation, cfg MajorityConfig) (*MajorityResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &MajorityResult{HonestShare: 1 - cfg.AttackerShare - cfg.IsolatedShare}
	reg := sim.Obs().Registry()
	trace := sim.Obs().Tracer()

	// Fork point: the current public tip as seen by the best node.
	gateway := sim.Gateways()[0]
	forkBase := sim.Network.Nodes[gateway].Tree.Tip()
	trace.Emit(int64(sim.Engine.Now()), "attack", "majority_start",
		obs.Ffloat("attacker_share", cfg.AttackerShare),
		obs.Ffloat("isolated_share", cfg.IsolatedShare),
		obs.Fint("fork_base_height", int64(forkBase.Height)))

	// Honest network mines at its reduced share.
	sim.SetHonestShare(res.HonestShare)
	honestBase := sim.BlocksProduced()

	// The attacker's private chain: block arrivals are a Poisson process at
	// AttackerShare/600s; no network interaction until publication.
	rng := stats.NewRand(cfg.Seed)
	lambda := cfg.AttackerShare / mining.BlockInterval.Seconds()
	private := []*blockchain.Block{}
	parent := forkBase
	for t := time.Duration(stats.Exponential(rng, lambda) * float64(time.Second)); t <= cfg.MineFor; t += time.Duration(stats.Exponential(rng, lambda) * float64(time.Second)) {
		b := blockchain.NewBlock(parent, -3, sim.Engine.Now()+t, sim.NewTxs(sim.Config().TxPerBlock), true)
		private = append(private, b)
		parent = b
	}
	res.AttackerBlocks = len(private)

	// Let the public race run for the same window.
	sim.Run(sim.Engine.Now() + cfg.MineFor)
	res.HonestBlocks = sim.BlocksProduced() - honestBase

	publicTip := sim.Network.Nodes[gateway].Tree.Tip()
	publicLead := publicTip.Height - forkBase.Height
	res.AttackerWins = res.AttackerBlocks > publicLead
	reg.Counter("attack.counterfeit_blocks").Add(uint64(res.AttackerBlocks))
	if !res.AttackerWins {
		trace.Emit(int64(sim.Engine.Now()), "attack", "majority_end",
			obs.Fbool("attacker_wins", false),
			obs.Fint("attacker_blocks", int64(res.AttackerBlocks)),
			obs.Fint("honest_blocks", int64(res.HonestBlocks)))
		sim.SetHonestShare(1)
		return res, nil
	}

	// Publication: the private chain enters at the gateway and floods the
	// network; every node reorgs past the fork point.
	res.ReorgDepth = publicLead
	for _, b := range private {
		if err := sim.Network.Publish(gateway, b); err != nil {
			return nil, fmt.Errorf("attack: publish private chain: %w", err)
		}
	}
	sim.Run(sim.Engine.Now() + time.Hour)
	tip := private[len(private)-1]
	for _, node := range sim.Network.Nodes {
		if node.Up && node.Tree.Tip().Hash == tip.Hash {
			res.AdoptedBy++
		}
	}
	reg.Counter("attack.victims_captured").Add(uint64(res.AdoptedBy))
	trace.Emit(int64(sim.Engine.Now()), "attack", "majority_end",
		obs.Fbool("attacker_wins", true),
		obs.Fint("reorg_depth", int64(res.ReorgDepth)),
		obs.Fint("adopted_by", int64(res.AdoptedBy)))
	sim.ObserveSync()
	sim.SetHonestShare(1)
	return res, nil
}
