package attack

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/topology"
)

// Spatio-temporal partitioning (§V-C): the attacker combines both views —
// synced nodes (immune to counterfeit blocks but reachable by BGP hijack)
// and lagging nodes (cheap temporal prey) — and picks the split matching
// its capabilities. The paper's case study: a cloud provider waits for the
// moment the synced population is smallest, hijacks the top ASes hosting
// the synced nodes, and temporally attacks the rest.

// Capability describes what the adversary can do.
type Capability int

// Capabilities. Enums start at one.
const (
	CapabilityInvalid Capability = iota
	// CapabilityRouting can announce BGP prefixes (a malicious AS/org).
	CapabilityRouting
	// CapabilityMining controls hash power (a malicious pool).
	CapabilityMining
	// CapabilityBoth is the cloud-provider scenario.
	CapabilityBoth
)

// String implements fmt.Stringer.
func (c Capability) String() string {
	switch c {
	case CapabilityRouting:
		return "routing"
	case CapabilityMining:
		return "mining"
	case CapabilityBoth:
		return "routing+mining"
	default:
		return fmt.Sprintf("Capability(%d)", int(c))
	}
}

// Moment is one attack window found in a trace.
type Moment struct {
	SampleIndex int
	Time        time.Duration
	Synced      int
	Behind      int
	// TopSyncedASes are the ASes hosting the most synced nodes at this
	// moment, the spatial target list (Table VII).
	TopSyncedASes []dataset.SyncedASRow
}

// FindBestMoment scans a per-AS-tracked trace for the sample minimizing the
// synced population — the paper's ideal window ("the number of synced nodes
// falls as low as 3,000 while … 2-4 blocks behind go as high as 6,000").
func FindBestMoment(tr *dataset.Trace, topASes int) (*Moment, error) {
	if len(tr.Samples) == 0 {
		return nil, errors.New("attack: empty trace")
	}
	best := -1
	for i, s := range tr.Samples {
		if s.SyncedByAS == nil {
			return nil, errors.New("attack: trace lacks per-AS sync tracking")
		}
		if best == -1 || s.Buckets[0] < tr.Samples[best].Buckets[0] {
			best = i
		}
	}
	s := tr.Samples[best]
	m := &Moment{
		SampleIndex: best,
		Time:        s.T,
		Synced:      s.Buckets[0],
		Behind:      s.UpNodes - s.Buckets[0],
	}
	rows := make([]dataset.SyncedASRow, 0, len(s.SyncedByAS))
	for asn, c := range s.SyncedByAS {
		rows = append(rows, dataset.SyncedASRow{ASN: asn, Nodes: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nodes != rows[j].Nodes {
			return rows[i].Nodes > rows[j].Nodes
		}
		return rows[i].ASN < rows[j].ASN
	})
	if topASes > len(rows) {
		topASes = len(rows)
	}
	for i := 0; i < topASes; i++ {
		rows[i].Fraction = float64(rows[i].Nodes) / float64(s.Buckets[0])
		m.TopSyncedASes = append(m.TopSyncedASes, rows[i])
	}
	return m, nil
}

// SpatioTemporalPlan is the combined attack blueprint.
type SpatioTemporalPlan struct {
	Capability Capability
	Moment     *Moment
	// SpatialASes are hijack targets (empty for a mining-only adversary).
	SpatialASes []topology.ASN
	// SpatialPrefixes is the announcement effort for those ASes.
	SpatialPrefixes int
	// SpatialNodes estimates synced nodes captured by the hijacks.
	SpatialNodes int
	// TemporalVictims estimates lagging nodes available for counterfeit
	// feeding (zero for a routing-only adversary).
	TemporalVictims int
	// Coverage is the estimated fraction of up nodes the combined attack
	// touches.
	Coverage float64
}

// PlanSpatioTemporal builds the capability-adjusted plan at the given
// moment. Routing adversaries take the spatial half only; mining
// adversaries the temporal half; a cloud provider takes both.
func PlanSpatioTemporal(pop *dataset.Population, m *Moment, cap Capability, spatialASCount int) (*SpatioTemporalPlan, error) {
	if m == nil {
		return nil, errors.New("attack: nil moment")
	}
	if cap != CapabilityRouting && cap != CapabilityMining && cap != CapabilityBoth {
		return nil, fmt.Errorf("attack: invalid capability %d", int(cap))
	}
	plan := &SpatioTemporalPlan{Capability: cap, Moment: m}
	if cap == CapabilityRouting || cap == CapabilityBoth {
		n := spatialASCount
		if n > len(m.TopSyncedASes) {
			n = len(m.TopSyncedASes)
		}
		for _, row := range m.TopSyncedASes[:n] {
			plan.SpatialASes = append(plan.SpatialASes, row.ASN)
			plan.SpatialNodes += row.Nodes
			if asRow, ok := pop.ASRow(row.ASN); ok {
				plan.SpatialPrefixes += asRow.Prefixes
			}
		}
	}
	if cap == CapabilityMining || cap == CapabilityBoth {
		plan.TemporalVictims = m.Behind
	}
	total := m.Synced + m.Behind
	if total > 0 {
		plan.Coverage = float64(plan.SpatialNodes+plan.TemporalVictims) / float64(total)
	}
	return plan, nil
}

// SpatioTemporalResult is the outcome of a combined execution on a live
// simulation.
type SpatioTemporalResult struct {
	// SpatialIsolated is how many spatially cut nodes ended the hold behind
	// the honest tip (eclipsed: they stopped receiving blocks entirely).
	SpatialIsolated int
	// Temporal is the embedded temporal-attack outcome on the lagging set.
	Temporal *TemporalResult
}

// ExecuteSpatioTemporal performs both halves on a simulation: spatial
// victims are cut off entirely (BGP-style blackhole), temporal victims are
// cut off and fed the counterfeit branch. The two sets must be disjoint.
func ExecuteSpatioTemporal(sim *netsim.Simulation, cfg TemporalConfig, spatial, temporal []p2p.NodeID) (*SpatioTemporalResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(temporal) == 0 {
		return nil, errors.New("attack: empty temporal victim set")
	}
	inSpatial := make(map[p2p.NodeID]bool, len(spatial))
	for _, id := range spatial {
		inSpatial[id] = true
	}
	for _, id := range temporal {
		if inSpatial[id] {
			return nil, fmt.Errorf("attack: node %d in both victim sets", id)
		}
	}

	refBefore := sim.Network.RefHeight()
	sim.Obs().Tracer().Emit(int64(sim.Engine.Now()), "attack", "spatiotemporal_start",
		obs.Fint("spatial", int64(len(spatial))),
		obs.Fint("temporal", int64(len(temporal))))

	// The temporal executor installs a victim/non-victim policy; wrap it so
	// spatially cut nodes are silenced in both directions as well.
	res := &SpatioTemporalResult{}
	tempRes, err := func() (*TemporalResult, error) {
		// Compose: first isolate the spatial set by marking them down for
		// the duration (a blackholed node neither sends nor receives).
		for _, id := range spatial {
			sim.Network.Nodes[id].Up = false
		}
		defer func() {
			for _, id := range spatial {
				sim.Network.Nodes[id].Up = true
			}
		}()
		return ExecuteTemporalOn(sim, cfg, temporal)
	}()
	if err != nil {
		return nil, err
	}
	res.Temporal = tempRes

	// Spatially cut nodes missed every block of the hold.
	refAfter := sim.Network.RefHeight()
	for _, id := range spatial {
		if sim.Network.Nodes[id].Height() < refAfter && refAfter > refBefore {
			res.SpatialIsolated++
		}
	}
	// Let the released spatial nodes catch back up during the heal window
	// by offering them tips again.
	for _, id := range spatial {
		for _, nb := range sim.Network.Neighbors(id) {
			sim.Network.OfferTip(nb, id)
		}
	}
	sim.Run(sim.Engine.Now() + cfg.HealFor)
	sim.Obs().Registry().Counter("attack.victims_captured").Add(uint64(res.SpatialIsolated))
	sim.Obs().Tracer().Emit(int64(sim.Engine.Now()), "attack", "spatiotemporal_end",
		obs.Fint("spatial_isolated", int64(res.SpatialIsolated)),
		obs.Fint("temporal_captured", int64(res.Temporal.CapturedAtRelease)))
	return res, nil
}
