package attack

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/vulndb"
)

// Logical partitioning (§V-D): the network runs 288 different client
// versions; an adversary who controls a popular client (a malicious update,
// a trojaned download, or an attractive fork) or who can trigger a known
// client vulnerability partitions the network along software lines.

// VersionExposure is the CVE-join result for one client version.
type VersionExposure struct {
	Version string
	Nodes   int
	Share   float64
	CVEs    []vulndb.CVE
	// MaxCVSS is the highest CVSS score among matched CVEs.
	MaxCVSS float64
}

// Exposure joins the population's version census against the vulnerability
// database, returning per-version exposure sorted by node count descending.
// Versions without a parseable Core version match no CVEs (but still
// appear, with an empty CVE list).
func Exposure(pop *dataset.Population, db *vulndb.DB) []VersionExposure {
	counts := pop.VersionCounts()
	out := make([]VersionExposure, 0, len(counts))
	total := float64(len(pop.Nodes))
	for version, n := range counts {
		e := VersionExposure{Version: version, Nodes: n, Share: float64(n) / total}
		if cves, err := db.Matching(version); err == nil {
			e.CVEs = cves
			for _, c := range cves {
				if c.CVSS > e.MaxCVSS {
					e.MaxCVSS = c.CVSS
				}
			}
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nodes != out[j].Nodes {
			return out[i].Nodes > out[j].Nodes
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// VulnerableShare returns the fraction of all nodes running a version
// matched by at least one CVE with CVSS >= minCVSS.
func VulnerableShare(pop *dataset.Population, db *vulndb.DB, minCVSS float64) float64 {
	vulnerable := 0
	for _, e := range Exposure(pop, db) {
		if e.MaxCVSS >= minCVSS && len(e.CVEs) > 0 {
			vulnerable += e.Nodes
		}
	}
	return float64(vulnerable) / float64(len(pop.Nodes))
}

// LogicalPlan models a malicious-client partition: the attacker influences
// one client version (update hijack, trojaned binary, or a popular fork)
// and thereby controls its users.
type LogicalPlan struct {
	Version string
	// ControlledNodes run the targeted version.
	ControlledNodes int
	// NetworkShare is the controlled fraction of the population.
	NetworkShare float64
	// SyncedControl estimates control inside the synced (green) region,
	// assuming version adoption is independent of sync state.
	SyncedControl float64
}

// PlanVersionCapture prepares a logical partition via a specific client
// version. It fails for versions nobody runs.
func PlanVersionCapture(pop *dataset.Population, version string) (*LogicalPlan, error) {
	counts := pop.VersionCounts()
	n, ok := counts[version]
	if !ok || n == 0 {
		return nil, fmt.Errorf("attack: version %q not in use", version)
	}
	share := float64(n) / float64(len(pop.Nodes))
	return &LogicalPlan{
		Version:         version,
		ControlledNodes: n,
		NetworkShare:    share,
		SyncedControl:   share,
	}, nil
}

// CrashImpact simulates triggering a remote-DoS CVE (e.g. CVE-2018-17144's
// duplicate-inputs crash): every up node running an affected version goes
// down. It reports the blast radius.
type CrashImpact struct {
	CVE vulndb.CVE
	// NodesDown is how many up nodes crash.
	NodesDown int
	// UpBefore and UpAfter are the reachable-population sizes.
	UpBefore, UpAfter int
	// DownShare is NodesDown / UpBefore.
	DownShare float64
}

// SimulateCrashExploit computes the impact of exploiting the given CVE
// across the population. It does not mutate the population.
func SimulateCrashExploit(pop *dataset.Population, db *vulndb.DB, cveID string) (*CrashImpact, error) {
	cve, ok := db.Lookup(cveID)
	if !ok {
		return nil, fmt.Errorf("attack: unknown CVE %q", cveID)
	}
	impact := &CrashImpact{CVE: cve}
	for _, n := range pop.Nodes {
		if !n.Up {
			continue
		}
		impact.UpBefore++
		v, err := vulndb.ParseVersion(n.Version)
		if err != nil {
			continue // non-Core client: not affected by Core CVEs
		}
		if cve.Affects(v) {
			impact.NodesDown++
		}
	}
	impact.UpAfter = impact.UpBefore - impact.NodesDown
	if impact.UpBefore > 0 {
		impact.DownShare = float64(impact.NodesDown) / float64(impact.UpBefore)
	}
	return impact, nil
}

// LogicalCaptureResult measures a live-network logical attack: every node
// running the attacker-controlled client version silently stops relaying
// (a "surreptitious modification" in §V-D's words — the node seems normal
// but facilitates the attack), and the rest of the network degrades in
// proportion to how load-bearing the silent nodes were.
type LogicalCaptureResult struct {
	// Controlled nodes run the captured version.
	Controlled int
	// Share of the simulated population they represent.
	Share float64
	// HonestBehindFrac is the fraction of non-controlled up nodes >= 1
	// block behind after the observation window.
	HonestBehindFrac float64
	// BaselineBehindFrac is the same fraction from an identical run
	// without the attack.
	BaselineBehindFrac float64
}

// ExecuteLogicalCapture runs the relay-silence attack on a simulation whose
// node profiles carry client versions: nodes running any of the captured
// versions receive blocks but never forward or serve them. The returned
// result compares network health against the caller-provided baseline
// fraction (run the same simulation without the policy to obtain it).
func ExecuteLogicalCapture(sim *netsim.Simulation, versions []string, runFor time.Duration, baselineBehindFrac float64) (*LogicalCaptureResult, error) {
	if len(versions) == 0 {
		return nil, errors.New("attack: no captured versions")
	}
	if runFor <= 0 {
		return nil, errors.New("attack: runFor must be positive")
	}
	captured := map[string]bool{}
	for _, v := range versions {
		captured[v] = true
	}
	controlled := map[p2p.NodeID]bool{}
	for _, node := range sim.Network.Nodes {
		if captured[node.Profile.Version] && !sim.IsGateway(node.ID) {
			controlled[node.ID] = true
		}
	}
	if len(controlled) == 0 {
		return nil, fmt.Errorf("attack: no nodes run versions %v", versions)
	}
	res := &LogicalCaptureResult{
		Controlled:         len(controlled),
		Share:              float64(len(controlled)) / float64(len(sim.Network.Nodes)),
		BaselineBehindFrac: baselineBehindFrac,
	}
	trace := sim.Obs().Tracer()
	trace.Emit(int64(sim.Engine.Now()), "attack", "logical_capture_start",
		obs.Fint("controlled", int64(res.Controlled)),
		obs.Ffloat("share", res.Share))
	sim.Obs().Registry().Counter("attack.victims_captured").Add(uint64(res.Controlled))

	// Controlled nodes receive but never send: inv, getdata replies, and
	// block relays all silently vanish.
	sim.Network.SetPolicy(func(from, _ p2p.NodeID, _ time.Duration) bool {
		return !controlled[from]
	})
	sim.Run(sim.Engine.Now() + runFor)
	sim.Network.SetPolicy(nil)

	ref := sim.Network.RefHeight()
	honest, behind := 0, 0
	for _, node := range sim.Network.Nodes {
		if controlled[node.ID] || !node.Up {
			continue
		}
		honest++
		if node.BlocksBehind(ref) >= 1 {
			behind++
		}
	}
	if honest > 0 {
		res.HonestBehindFrac = float64(behind) / float64(honest)
	}
	trace.Emit(int64(sim.Engine.Now()), "attack", "logical_capture_end",
		obs.Ffloat("honest_behind_frac", res.HonestBehindFrac),
		obs.Ffloat("baseline_behind_frac", res.BaselineBehindFrac))
	sim.ObserveSync()
	return res, nil
}

// DiversityIndex returns the Herfindahl-Hirschman concentration of client
// versions (Σ share²): 1 means a software monoculture, ~0 maximal
// diversity. §VI argues diversity resists logical attacks while §V-D shows
// it widens the update lag — this is the quantity that trade-off moves.
func DiversityIndex(pop *dataset.Population) float64 {
	total := float64(len(pop.Nodes))
	if total == 0 {
		return 0
	}
	// Fold in sorted-version order: float addition is not associative, so
	// summing in map iteration order would make the index vary run to run.
	counts := pop.VersionCounts()
	versions := make([]string, 0, len(counts))
	for v := range counts {
		versions = append(versions, v)
	}
	sort.Strings(versions)
	var hhi float64
	for _, v := range versions {
		s := float64(counts[v]) / total
		hhi += s * s
	}
	return hhi
}

// TopCaptureTargets returns the most attractive versions for a
// malicious-client campaign: the n largest user bases.
func TopCaptureTargets(pop *dataset.Population, n int) ([]*LogicalPlan, error) {
	if n <= 0 {
		return nil, errors.New("attack: n must be positive")
	}
	exposures := Exposure(pop, vulndb.New())
	if n > len(exposures) {
		n = len(exposures)
	}
	out := make([]*LogicalPlan, 0, n)
	for _, e := range exposures[:n] {
		plan, err := PlanVersionCapture(pop, e.Version)
		if err != nil {
			return nil, err
		}
		out = append(out, plan)
	}
	return out, nil
}
