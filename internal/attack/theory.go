// Package attack implements the paper's four partitioning attacks —
// spatial (§V-A), temporal (§V-B), spatio-temporal (§V-C), and logical
// (§V-D) — as planners and executors over the dataset, topology, mining,
// and network-simulation substrates, plus the theoretical timing model of
// the temporal attack (Equations 1-5, Table VI).
package attack

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// Temporal-attack timing model (§V-B). The attacker must connect to and
// feed m vulnerable nodes; each connection completes after an independent
// exponential delay with rate λ (diffusion spreading, Eq. 1). For a timing
// assignment T = (t1..tm) with Σti ≤ T, the isolation probability is
// bounded via the Cauchy inequality (Eq. 2-4) by (1-e^{-λT/m})^m, and over
// the C(T, m) possible assignments the union bound (Eq. 5) gives
//
//	p ≤ b(m, T) = C(T, m) · (1 - e^{-λT/m})^m
//
// which is monotone in T, so the minimum timing constraint for a target
// success probability follows by bisection.

// LogIsolationBound returns ln b(m, T) for a timing constraint of T seconds.
// It returns -Inf when T < m (no valid assignment of at least one second
// per node exists).
func LogIsolationBound(m int, lambda float64, T int) float64 {
	if m <= 0 || T < m || lambda <= 0 {
		return math.Inf(-1)
	}
	perNode := lambda * float64(T) / float64(m)
	// ln(1 - e^{-x}) computed stably.
	lnTerm := math.Log1p(-math.Exp(-perNode))
	return stats.LogChoose(T, m) + float64(m)*lnTerm
}

// IsolationBound returns min(1, b(m, T)).
func IsolationBound(m int, lambda float64, T int) float64 {
	lb := LogIsolationBound(m, lambda, T)
	if lb >= 0 {
		return 1
	}
	return math.Exp(lb)
}

// ErrUnreachableTarget is returned when no timing constraint up to the
// search horizon achieves the target probability.
var ErrUnreachableTarget = errors.New("attack: target probability unreachable")

// MinTimingConstraint returns the smallest T (seconds) such that
// b(m, T) ≥ targetP — Table VI's cell values (the paper uses targetP 0.8).
func MinTimingConstraint(m int, lambda, targetP float64) (int, error) {
	if m <= 0 {
		return 0, fmt.Errorf("attack: m = %d must be positive", m)
	}
	if lambda <= 0 {
		return 0, fmt.Errorf("attack: lambda = %v must be positive", lambda)
	}
	if targetP <= 0 || targetP > 1 {
		return 0, fmt.Errorf("attack: target probability %v outside (0,1]", targetP)
	}
	logTarget := math.Log(targetP)
	const horizon = 1 << 22 // ~48 days in seconds; far beyond any Table VI cell
	pred := func(T int) bool { return LogIsolationBound(m, lambda, T) >= logTarget }
	got := stats.BisectMinInt(m, horizon, pred)
	if got > horizon {
		return 0, fmt.Errorf("%w: m=%d lambda=%v p=%v", ErrUnreachableTarget, m, lambda, targetP)
	}
	return got, nil
}

// TimingTable regenerates Table VI: for each λ (rows) and m (columns), the
// minimum timing constraint in seconds at the given success probability.
type TimingTable struct {
	Lambdas []float64
	Ms      []int
	TargetP float64
	// Seconds[i][j] is the bound for Lambdas[i], Ms[j].
	Seconds [][]int
}

// ComputeTimingTable evaluates the model over the paper's grid
// (λ ∈ {0.4..0.9}, m ∈ {100..1500}) or any custom grid.
func ComputeTimingTable(lambdas []float64, ms []int, targetP float64) (*TimingTable, error) {
	if len(lambdas) == 0 || len(ms) == 0 {
		return nil, errors.New("attack: empty grid")
	}
	t := &TimingTable{
		Lambdas: append([]float64(nil), lambdas...),
		Ms:      append([]int(nil), ms...),
		TargetP: targetP,
		Seconds: make([][]int, len(lambdas)),
	}
	for i, l := range lambdas {
		t.Seconds[i] = make([]int, len(ms))
		for j, m := range ms {
			v, err := MinTimingConstraint(m, l, targetP)
			if err != nil {
				return nil, err
			}
			t.Seconds[i][j] = v
		}
	}
	return t, nil
}

// PaperTimingGrid returns Table VI's λ and m axes.
func PaperTimingGrid() (lambdas []float64, ms []int) {
	return []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		[]int{100, 300, 500, 800, 1000, 1200, 1500}
}

// ConnectionCDF evaluates Eq. 1's F(t) = 1 - e^{-λt}: the probability one
// node is connected and fed within t seconds.
func ConnectionCDF(lambda, t float64) float64 {
	if t <= 0 || lambda <= 0 {
		return 0
	}
	return 1 - math.Exp(-lambda*t)
}

// IsolationProbability evaluates Eq. 2's exact product form for a concrete
// timing assignment: ρ(T) = Π (1 - e^{-λ·ti}).
func IsolationProbability(lambda float64, times []float64) float64 {
	p := 1.0
	for _, t := range times {
		p *= ConnectionCDF(lambda, t)
	}
	return p
}
