package attack

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPlanParamsCoverRegistry: every registered plan has a parameter
// document and nothing documents a plan that does not exist.
func TestPlanParamsCoverRegistry(t *testing.T) {
	for _, name := range PlanNames() {
		doc, err := PlanParams(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		var decoded map[string]any
		if err := json.Unmarshal(doc, &decoded); err != nil {
			t.Errorf("%s: params not an object: %v", name, err)
		}
		if len(decoded) == 0 {
			t.Errorf("%s: empty parameter document", name)
		}
	}
	if len(planParams) != len(PlanNames()) {
		t.Errorf("params document %d plans, registry has %d", len(planParams), len(PlanNames()))
	}
}

// TestPlanParamsStable: the rendering is deterministic (sorted keys) — it
// feeds the /v1/plans endpoint, which must be byte-stable.
func TestPlanParamsStable(t *testing.T) {
	a, err := PlanParams("temporal")
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanParams("temporal")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("unstable rendering:\n%s\n%s", a, b)
	}
	if !strings.Contains(string(a), `"attacker_share":0.3`) {
		t.Errorf("temporal params %s", a)
	}
}

// TestPlanParamsUnknown mirrors NewPlan's unknown-name contract.
func TestPlanParamsUnknown(t *testing.T) {
	_, err := PlanParams("warpdrive")
	if err == nil || !strings.Contains(err.Error(), "registry") {
		t.Fatalf("unknown plan error = %v", err)
	}
}
