package attack

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// The Plan interface unifies the seven attack entry points behind one
// shape: a named scenario that runs against a simulation and reports a
// paper-style summary plus headline metrics. cmd/partition dispatches
// attacks from the sorted registry below instead of a hand-rolled switch,
// and new scenarios register here instead of forking the CLI.

// Plan is one registered attack scenario.
type Plan interface {
	// Name is the registry key (the CLI's attack noun).
	Name() string
	// Run executes the scenario. A nil sim lets the plan build its own
	// canonical simulation(s) from its Env — the CLI path. Plans whose
	// scenario runs on exactly one live simulation (temporal, doublespend,
	// majority51) accept a caller-provided warmed-up sim instead; the
	// multi-simulation scenarios ignore the argument. Headline metrics are
	// merged into reg (nil disables that), and the summary is emitted to
	// the Env's tracer so recorded traces replay it (ReplaySummaries).
	Run(sim *netsim.Simulation, reg *obs.Registry) (Result, error)
}

// Result is a completed plan's outcome.
type Result interface {
	// Summary is the paper-style text the CLI prints, byte-identical to
	// the pre-registry hand-rolled output.
	Summary() string
	// Metrics returns the plan's headline metrics, sorted by name.
	Metrics() obs.Snapshot
}

// Env carries the study-level context a plan needs to build its scenario:
// the population, the live-simulation scale, the seed the per-attack
// sub-seeds derive from, the observability sink, the fault scenario every
// built simulation runs under, and a simulation factory
// (core.Study.NewSimFromPopulation in the CLI, which realizes Faults
// itself; plans that assemble their own netsim.Config thread Faults into
// it directly).
type Env struct {
	Pop          *dataset.Population
	NetworkNodes int
	Seed         int64
	Obs          *obs.Observer
	Faults       faults.Scenario
	NewSim       func(n int, seed int64) (*netsim.Simulation, error)
}

// planResult is the concrete Result all plans return.
type planResult struct {
	name    string
	summary string
	metrics obs.Snapshot
}

func (r planResult) Summary() string       { return r.summary }
func (r planResult) Metrics() obs.Snapshot { return r.metrics }

// finish seals a plan run: headline metrics merge into the caller's
// registry and the Env's observer, and the summary goes into the trace as
// an "attack"/"summary" event so a recorded JSONL stream replays it.
func (e Env) finish(name, summary string, reg, local *obs.Registry, tick int64) Result {
	reg.Merge(local)
	if env := e.Obs.Registry(); env != reg {
		env.Merge(local)
	}
	e.Obs.Tracer().Emit(tick, "attack", "summary",
		obs.F("plan", name), obs.F("text", summary))
	return planResult{name: name, summary: summary, metrics: local.Snapshot()}
}

// planRegistry maps registry keys to constructors. Registration is static:
// the set of attacks is the paper's, and a sorted, compile-time-known
// registry keeps the CLI's dispatch and error text deterministic.
var planRegistry = map[string]func(Env) Plan{
	"cascade":        func(e Env) Plan { return &cascadePlan{env: e} },
	"doublespend":    func(e Env) Plan { return &doubleSpendPlan{env: e} },
	"logical":        func(e Env) Plan { return &logicalPlan{env: e} },
	"majority51":     func(e Env) Plan { return &majorityPlan{env: e} },
	"spatial":        func(e Env) Plan { return &spatialPlan{env: e} },
	"spatiotemporal": func(e Env) Plan { return &spatioTemporalPlan{env: e} },
	"temporal":       func(e Env) Plan { return &temporalPlan{env: e} },
}

// PlanNames returns the registry keys in sorted order.
func PlanNames() []string {
	names := make([]string, 0, len(planRegistry))
	for name := range planRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewPlan instantiates the named plan. Unknown names report the full
// sorted registry.
func NewPlan(name string, env Env) (Plan, error) {
	ctor, ok := planRegistry[name]
	if !ok {
		return nil, fmt.Errorf("attack: unknown plan %q (registry: %s)",
			name, strings.Join(PlanNames(), ", "))
	}
	return ctor(env), nil
}

// Plans instantiates every registered plan in sorted-name order.
func Plans(env Env) []Plan {
	names := PlanNames()
	out := make([]Plan, 0, len(names))
	for _, name := range names {
		out = append(out, planRegistry[name](env))
	}
	return out
}

// ReplaySummaries reconstructs each plan's Summary() from a decoded trace:
// every Plan.Run emits a final "summary" event carrying the plan name and
// the exact summary text, so a recorded JSONL trace replays the reported
// outcome without re-running the simulation. Later events win when a plan
// ran more than once.
func ReplaySummaries(log *obs.TraceLog) map[string]string {
	out := map[string]string{}
	for _, ev := range log.Events {
		if ev.Scope != "attack" || ev.Type != "summary" {
			continue
		}
		var name, text string
		for _, f := range ev.Fields {
			switch f.K {
			case "plan":
				name = f.V
			case "text":
				text = f.V
			}
		}
		if name != "" {
			out[name] = text
		}
	}
	return out
}
