package attack

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/blockchain"
	"repro/internal/mining"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// temporalSeedSalt namespaces the attacker's connection/mining stream off
// the simulation seed, away from the gossip and fault-injection streams
// (DeriveSeed treats it as the stream index).
const temporalSeedSalt = 0x7E3A

// Temporal partitioning (§V-B, Figure 5): the attacker identifies nodes
// that are behind the main chain, cuts their links to the synced network,
// and feeds them a counterfeit branch mined with the attacker's own hash
// power. Isolated nodes accept it because it extends beyond their stale
// view, and they attribute the slower block cadence to network issues.

// TemporalConfig parameterizes an attack run.
type TemporalConfig struct {
	// AttackerShare is the attacker's fraction of total network hash rate
	// (the paper simulates 0.30).
	AttackerShare float64
	// MinLag selects victims at least this many blocks behind (the threat
	// model targets nodes 1-5 blocks behind).
	MinLag int
	// MaxVictims caps the victim set (0 = unlimited).
	MaxVictims int
	// HoldFor is how long the partition is sustained before the attacker
	// releases it (or is discovered).
	HoldFor time.Duration
	// HealFor is how long the network runs after release before damage is
	// measured.
	HealFor time.Duration
	// ConnectRate is λ of the exponential delay for the attacker's direct
	// connection to each victim (Eq. 1; Table VI sweeps λ over 0.4-0.9 per
	// second). Default 0.5.
	ConnectRate float64
	// TrackPayment, when set, plants a designated payment transaction in
	// the first counterfeit block — the double-spend scenario: a merchant
	// inside the partition sees the payment confirm and deepen, and when
	// the partition heals the payment vanishes with the branch (§V-A/V-B
	// implications).
	TrackPayment bool
}

// Validate rejects unusable parameters.
func (c TemporalConfig) Validate() error {
	if c.AttackerShare <= 0 || c.AttackerShare >= 1 {
		return fmt.Errorf("attack: attacker share %v outside (0,1)", c.AttackerShare)
	}
	if c.MinLag < 0 {
		return fmt.Errorf("attack: negative min lag %d", c.MinLag)
	}
	if c.HoldFor <= 0 {
		return errors.New("attack: HoldFor must be positive")
	}
	if c.HealFor < 0 {
		return errors.New("attack: negative HealFor")
	}
	if c.ConnectRate < 0 {
		return errors.New("attack: negative ConnectRate")
	}
	return nil
}

func (c TemporalConfig) withDefaults() TemporalConfig {
	if c.ConnectRate == 0 {
		c.ConnectRate = 0.5
	}
	return c
}

// TemporalResult reports the attack outcome.
type TemporalResult struct {
	Victims []p2p.NodeID
	// CounterfeitBlocks the attacker mined during the hold.
	CounterfeitBlocks int
	// CapturedAtRelease is how many victims followed a counterfeit tip when
	// the partition was released (the soft fork of Figure 5).
	CapturedAtRelease int
	// MaxForkDepth is the deepest counterfeit branch any victim followed.
	MaxForkDepth int
	// RecoveredAfterHeal counts victims back on the honest chain after the
	// healing window.
	RecoveredAfterHeal int
	// ReversedTxs is the total number of transactions reversed across
	// victims when their counterfeit branches were abandoned.
	ReversedTxs int
	// HonestBlocksDuringHold is how many blocks the (reduced) honest
	// network produced while the partition held.
	HonestBlocksDuringHold int
	// Double-spend accounting (only when TrackPayment was set):
	// PaymentTx is the planted transaction, MerchantConfirmations is how
	// many blocks deep the merchant (the victim with the best view) saw it
	// at release, and PaymentReversed reports whether healing erased it
	// from the merchant's best chain — i.e. the double-spend window closed
	// with the merchant defrauded.
	PaymentTx             blockchain.TxID
	MerchantConfirmations int
	PaymentReversed       bool
}

// FindVictims returns the up nodes at least minLag blocks behind the
// network reference tip — the crawler-visible vulnerable set the threat
// model assumes the adversary can enumerate ("obtaining this information is
// not challenging since various Bitcoin crawlers are available").
func FindVictims(sim *netsim.Simulation, minLag, max int) []p2p.NodeID {
	ref := sim.Network.RefHeight()
	var out []p2p.NodeID
	for _, node := range sim.Network.Nodes {
		if !node.Up || sim.IsGateway(node.ID) {
			continue
		}
		if node.BlocksBehind(ref) >= minLag {
			out = append(out, node.ID)
			if max > 0 && len(out) >= max {
				break
			}
		}
	}
	return out
}

// ExecuteTemporal runs the attack against a live simulation. The
// simulation should already have mining started and some history (the
// caller controls warm-up). The attacker:
//
//  1. selects victims by lag,
//  2. installs a link policy cutting victim ↔ non-victim traffic,
//  3. reduces honest mining to (1 - AttackerShare) and mines a counterfeit
//     branch from the victims' best stale tip at AttackerShare rate,
//  4. releases the partition after HoldFor and lets the network heal.
func ExecuteTemporal(sim *netsim.Simulation, cfg TemporalConfig) (*TemporalResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	victims := FindVictims(sim, cfg.MinLag, cfg.MaxVictims)
	if len(victims) == 0 {
		return nil, errors.New("attack: no victims match the lag criterion")
	}
	return executeOnVictims(sim, cfg, victims)
}

// ExecuteTemporalOn runs the attack against an explicit victim set (used by
// the spatio-temporal planner, which picks victims by AS as well as lag).
func ExecuteTemporalOn(sim *netsim.Simulation, cfg TemporalConfig, victims []p2p.NodeID) (*TemporalResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(victims) == 0 {
		return nil, errors.New("attack: empty victim set")
	}
	return executeOnVictims(sim, cfg, victims)
}

func executeOnVictims(sim *netsim.Simulation, cfg TemporalConfig, victims []p2p.NodeID) (*TemporalResult, error) {
	cfg = cfg.withDefaults()
	reg := sim.Obs().Registry()
	trace := sim.Obs().Tracer()
	res := &TemporalResult{Victims: victims}
	isVictim := make(map[p2p.NodeID]bool, len(victims))
	for _, v := range victims {
		if sim.IsGateway(v) {
			return nil, fmt.Errorf("attack: node %d is a pool gateway; miners cannot be temporal prey", v)
		}
		isVictim[v] = true
	}

	// Partition: victim <-> non-victim links are cut both ways. The
	// attacker's own direct connections bypass this via InjectBlock.
	sim.Network.SetPolicy(func(from, to p2p.NodeID, _ time.Duration) bool {
		return isVictim[from] == isVictim[to]
	})

	// The honest network loses the attacker's share.
	sim.SetHonestShare(1 - cfg.AttackerShare)

	// Baseline damage counters before the attack.
	reversedBase := 0
	for _, v := range victims {
		reversedBase += sim.Network.Nodes[v].ReversedTxs
	}
	honestBlocksBase := sim.BlocksProduced()

	// Counterfeit branch root: the lowest victim tip. Every victim holds
	// this block (their views are prefixes of the honest chain), so the
	// branch attaches everywhere, and it overtakes the higher victims'
	// views as soon as it grows past them.
	origin := victims[0]
	minHeight := sim.Network.Nodes[origin].Tree.Height()
	maxHeight := minHeight
	for _, v := range victims[1:] {
		h := sim.Network.Nodes[v].Tree.Height()
		if h < minHeight {
			minHeight = h
		}
		if h > maxHeight {
			maxHeight, origin = h, v
		}
	}
	root, ok := sim.Network.Nodes[origin].Tree.AtHeight(minHeight)
	if !ok {
		return nil, fmt.Errorf("attack: origin lacks block at height %d", minHeight)
	}
	trace.Emit(int64(sim.Engine.Now()), "attack", "temporal_start",
		obs.Fint("victims", int64(len(victims))),
		obs.Fint("fork_base_height", int64(minHeight)),
		obs.Ffloat("attacker_share", cfg.AttackerShare))

	// The attacker connects to each victim after an exponential delay with
	// rate ConnectRate (the Eq. 1 model behind Table VI). The stream is
	// derived from the simulation seed so distinct studies draw distinct
	// attacker schedules (seeding off len(victims) correlated every study
	// with the same victim count).
	rng := stats.NewRand(parallel.DeriveSeed(sim.Config().Seed, temporalSeedSalt))
	start := sim.Engine.Now()
	connectedAt := make(map[p2p.NodeID]time.Duration, len(victims))
	for _, v := range victims {
		connectedAt[v] = start + time.Duration(stats.Exponential(rng, cfg.ConnectRate)*float64(time.Second))
	}

	// Attacker mining loop: exponential inter-block times at
	// AttackerShare/600s. Each counterfeit block is fed directly to every
	// connected victim (Figure 5: the attacker "feeds his copy of blocks to
	// vulnerable nodes"); victims also relay among themselves.
	releaseAt := start + cfg.HoldFor
	parent := root
	var paymentBlock blockchain.Hash
	paymentHeight := -1
	var scheduleCounterfeit func()
	scheduleCounterfeit = func() {
		lambda := cfg.AttackerShare / mining.BlockInterval.Seconds()
		delay := time.Duration(stats.Exponential(rng, lambda) * float64(time.Second))
		err := sim.Engine.After(delay, func(now time.Duration) {
			if now > releaseAt {
				return
			}
			txs := sim.NewTxs(sim.Config().TxPerBlock)
			b := blockchain.NewBlock(parent, -2, now, txs, true)
			if cfg.TrackPayment && paymentHeight < 0 {
				// The first counterfeit block carries the payment to the
				// merchant inside the partition.
				res.PaymentTx = txs[0]
				paymentBlock = b.Hash
				paymentHeight = b.Height
			}
			parent = b
			res.CounterfeitBlocks++
			reg.Counter("attack.counterfeit_blocks").Inc()
			trace.Emit(int64(now), "attack", "counterfeit_block",
				obs.Fint("height", int64(b.Height)))
			for _, v := range victims {
				feedDelay := time.Duration(0)
				if connectedAt[v] > now {
					feedDelay = connectedAt[v] - now
				}
				if err := sim.Network.InjectBlock(v, origin, b, feedDelay); err != nil {
					panic(fmt.Sprintf("attack: inject: %v", err))
				}
			}
			scheduleCounterfeit()
		})
		if err != nil {
			panic(fmt.Sprintf("attack: schedule counterfeit: %v", err))
		}
	}
	scheduleCounterfeit()

	// Hold the partition.
	sim.Run(releaseAt)

	// Measure capture at release.
	for _, v := range victims {
		tip := sim.Network.Nodes[v].Tree.Tip()
		if tip.Counterfeit {
			res.CapturedAtRelease++
			depth := counterfeitDepth(sim.Network.Nodes[v].Tree, tip)
			if depth > res.MaxForkDepth {
				res.MaxForkDepth = depth
			}
		}
	}
	res.HonestBlocksDuringHold = sim.BlocksProduced() - honestBlocksBase
	reg.Counter("attack.victims_captured").Add(uint64(res.CapturedAtRelease))
	reg.Gauge("attack.max_fork_depth").Set(float64(res.MaxForkDepth))
	trace.Emit(int64(sim.Engine.Now()), "attack", "temporal_release",
		obs.Fint("captured", int64(res.CapturedAtRelease)),
		obs.Fint("max_fork_depth", int64(res.MaxForkDepth)),
		obs.Fint("counterfeit_blocks", int64(res.CounterfeitBlocks)),
		obs.Fint("honest_blocks", int64(res.HonestBlocksDuringHold)))
	sim.ObserveSync()

	// Double-spend accounting at release: how deep the merchant saw the
	// payment confirm.
	merchant := sim.Network.Nodes[origin]
	if cfg.TrackPayment && paymentHeight >= 0 {
		if b, ok := merchant.Tree.AtHeight(paymentHeight); ok && b.Hash == paymentBlock {
			res.MerchantConfirmations = merchant.Tree.Height() - paymentHeight + 1
		}
	}

	// Release: restore links and full honest hash power; the longest
	// (honest) chain now reaches the victims and triggers their reorgs.
	sim.Network.SetPolicy(nil)
	sim.SetHonestShare(1)
	// Re-announce the honest tip into the former partition by having every
	// non-victim neighbor of a victim offer its tip. In the real network
	// this happens organically on reconnection; the simulator needs the
	// explicit nudge because inv messages are only sent on novelty.
	reannounceTips(sim, isVictim)
	sim.Run(sim.Engine.Now() + cfg.HealFor)

	for _, v := range victims {
		node := sim.Network.Nodes[v]
		if !node.Tree.Tip().Counterfeit {
			res.RecoveredAfterHeal++
		}
		res.ReversedTxs += node.ReversedTxs
	}
	res.ReversedTxs -= reversedBase

	// The double-spend closes if the healed merchant's best chain no longer
	// contains the payment block at its height.
	if cfg.TrackPayment && paymentHeight >= 0 {
		b, ok := merchant.Tree.AtHeight(paymentHeight)
		res.PaymentReversed = !ok || b.Hash != paymentBlock
	}
	reg.Counter("attack.reversed_txs").Add(uint64(res.ReversedTxs))
	trace.Emit(int64(sim.Engine.Now()), "attack", "temporal_end",
		obs.Fint("recovered", int64(res.RecoveredAfterHeal)),
		obs.Fint("reversed_txs", int64(res.ReversedTxs)),
		obs.Fbool("payment_reversed", res.PaymentReversed))
	sim.ObserveSync()
	return res, nil
}

// counterfeitDepth counts consecutive counterfeit blocks from the tip down.
func counterfeitDepth(tree *blockchain.Tree, tip *blockchain.Block) int {
	depth := 0
	for b := tip; b != nil && b.Counterfeit; {
		depth++
		parent, ok := tree.Get(b.Parent)
		if !ok {
			break
		}
		b = parent
	}
	return depth
}

// reannounceTips makes every honest neighbor of a victim re-offer its best
// tip, restarting propagation into the healed partition.
func reannounceTips(sim *netsim.Simulation, isVictim map[p2p.NodeID]bool) {
	net := sim.Network
	for _, node := range net.Nodes {
		if isVictim[node.ID] || !node.Up {
			continue
		}
		for _, nb := range net.Neighbors(node.ID) {
			if isVictim[nb] {
				net.OfferTip(node.ID, nb)
			}
		}
	}
}
