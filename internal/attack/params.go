package attack

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Named-plan parameters as JSON. Every registered plan bakes its scenario
// parameters in (the values come from the paper's §V setups and are part of
// the byte-identical summary contract), but the partitiond API needs to
// tell clients what those parameters ARE: /v1/plans serves each registry
// entry with its canonical parameter document, so a spec author can see
// what "attack temporal" will run without reading plans.go. The documents
// are descriptive, not configurable — changing a value here without
// changing the plan is a lie the test below cannot catch, so keep the two
// in sync by construction (the maps quote the same constants).

// planParams mirrors the canonical parameters baked into each registered
// plan, keyed by registry name. Durations are rendered as Go duration
// strings, shares as fractions.
var planParams = map[string]any{
	"temporal": map[string]any{
		"attacker_share": 0.30,
		"victims":        "n/8 lagging nodes",
		"hold_for":       "8h",
		"heal_for":       "4h",
		"warmup":         "6h",
	},
	"doublespend": map[string]any{
		"attacker_share": 0.30,
		"victims":        "n/10 lagging nodes",
		"hold_for":       "8h",
		"heal_for":       "4h",
		"track_payment":  true,
		"seed_salt":      5,
	},
	"majority51": map[string]any{
		"attacker_share": 0.30,
		"isolated_share": 0.657,
		"mine_for":       "24h",
		"seed_salt":      6,
	},
	"cascade": map[string]any{
		"victim_as":     24940,
		"as_size":       30,
		"border_nodes":  6,
		"cut_fractions": []float64{0.1, 0.2, 0.5},
		"run_for":       "12h",
		"seed_salt":     7,
	},
	"spatial": map[string]any{
		"hijacked_as":      24940,
		"prefix_coverage":  0.95,
		"mining_ases":      []int{37963, 45102, 58563},
		"country_scenario": "CN",
	},
	"spatiotemporal": map[string]any{
		"trace_window": "24h",
		"sample_every": "10m",
		"min_ases":     5,
		"capabilities": []string{"routing", "mining", "both"},
		"seed_salt":    9,
	},
	"logical": map[string]any{
		"cve":           "CVE-2018-17144",
		"top_targets":   3,
		"capture_tiers": []int{1, 2, 20, 100},
		"relay_window":  "12h",
		"seed_salt":     8,
	},
}

// PlanParams returns the named plan's canonical parameter document as
// stable JSON (sorted keys — encoding/json sorts map keys). Unknown names
// report the sorted registry, like NewPlan.
func PlanParams(name string) (json.RawMessage, error) {
	params, ok := planParams[name]
	if !ok {
		return nil, fmt.Errorf("attack: unknown plan %q (registry: %s)",
			name, strings.Join(PlanNames(), ", "))
	}
	doc, err := json.Marshal(params)
	if err != nil {
		return nil, fmt.Errorf("attack: encode %s params: %w", name, err)
	}
	return doc, nil
}
