package attack

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestLogIsolationBoundEdgeCases(t *testing.T) {
	if !math.IsInf(LogIsolationBound(0, 0.5, 100), -1) {
		t.Error("m=0 should be -Inf")
	}
	if !math.IsInf(LogIsolationBound(10, 0.5, 5), -1) {
		t.Error("T<m should be -Inf")
	}
	if !math.IsInf(LogIsolationBound(10, 0, 100), -1) {
		t.Error("lambda=0 should be -Inf")
	}
}

func TestIsolationBoundMonotoneInT(t *testing.T) {
	prev := -1.0
	for T := 100; T <= 2000; T += 50 {
		b := IsolationBound(100, 0.5, T)
		if b < prev-1e-12 {
			t.Fatalf("bound not monotone at T=%d: %v < %v", T, b, prev)
		}
		prev = b
	}
}

func TestMinTimingConstraintValidation(t *testing.T) {
	tests := []struct {
		m       int
		lambda  float64
		targetP float64
	}{
		{0, 0.5, 0.8},
		{10, 0, 0.8},
		{10, 0.5, 0},
		{10, 0.5, 1.5},
	}
	for _, tt := range tests {
		if _, err := MinTimingConstraint(tt.m, tt.lambda, tt.targetP); err == nil {
			t.Errorf("MinTimingConstraint(%d, %v, %v): want error", tt.m, tt.lambda, tt.targetP)
		}
	}
}

func TestTableVIReproduction(t *testing.T) {
	// The paper's Table VI cells (seconds) for p = 0.8. Our bisection should
	// land within 20% of each published value — the bound is analytic, so
	// deviations reflect only the paper's rounding and any discretization.
	want := map[[2]int]int{ // key: {lambda*10, m}
		{4, 100}:  142,
		{4, 300}:  424,
		{4, 500}:  705,
		{5, 500}:  661,
		{6, 500}:  630,
		{7, 500}:  607,
		{8, 100}:  119,
		{8, 500}:  589,
		{8, 1000}: 1177,
		{9, 100}:  116,
		{9, 500}:  575,
		{9, 1500}: 1723,
	}
	for key, wantT := range want {
		lambda := float64(key[0]) / 10
		m := key[1]
		got, err := MinTimingConstraint(m, lambda, 0.8)
		if err != nil {
			t.Fatalf("m=%d lambda=%v: %v", m, lambda, err)
		}
		rel := math.Abs(float64(got-wantT)) / float64(wantT)
		if rel > 0.20 {
			t.Errorf("m=%d lambda=%v: T=%d, paper %d (off %.0f%%)", m, lambda, got, wantT, rel*100)
		}
	}
}

func TestTimingTableShape(t *testing.T) {
	lambdas, ms := PaperTimingGrid()
	table, err := ComputeTimingTable(lambdas, ms, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: higher lambda (faster connections) needs less time.
	for j := range ms {
		for i := 1; i < len(lambdas); i++ {
			if table.Seconds[i][j] > table.Seconds[i-1][j] {
				t.Errorf("column m=%d not decreasing in lambda", ms[j])
			}
		}
	}
	// Columns: more victims need more time.
	for i := range lambdas {
		for j := 1; j < len(ms); j++ {
			if table.Seconds[i][j] < table.Seconds[i][j-1] {
				t.Errorf("row lambda=%v not increasing in m", lambdas[i])
			}
		}
	}
}

func TestComputeTimingTableEmptyGrid(t *testing.T) {
	if _, err := ComputeTimingTable(nil, []int{1}, 0.8); err == nil {
		t.Error("empty lambda grid accepted")
	}
	if _, err := ComputeTimingTable([]float64{0.5}, nil, 0.8); err == nil {
		t.Error("empty m grid accepted")
	}
}

func TestMinTimingConstraintIsMinimal(t *testing.T) {
	// Property: the returned T satisfies the bound and T-1 does not.
	f := func(mRaw, lRaw uint8) bool {
		m := 50 + int(mRaw)%400
		lambda := 0.3 + float64(lRaw%7)/10
		T, err := MinTimingConstraint(m, lambda, 0.8)
		if err != nil {
			return false
		}
		logTarget := math.Log(0.8)
		if LogIsolationBound(m, lambda, T) < logTarget {
			return false
		}
		return LogIsolationBound(m, lambda, T-1) < logTarget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnreachableTarget(t *testing.T) {
	// With absurdly small lambda the probability never reaches the target
	// within the horizon for large m... in fact the union bound grows with
	// C(T,m), so reachability is generic; verify the error path with an m
	// too large for the horizon instead.
	_, err := MinTimingConstraint(1<<23, 0.5, 0.8)
	if !errors.Is(err, ErrUnreachableTarget) {
		t.Errorf("err = %v, want ErrUnreachableTarget", err)
	}
}

func TestConnectionCDF(t *testing.T) {
	if ConnectionCDF(0.5, 0) != 0 {
		t.Error("F(0) != 0")
	}
	if got := ConnectionCDF(0.5, math.Inf(1)); math.Abs(got-1) > 1e-12 {
		t.Errorf("F(inf) = %v", got)
	}
	mid := ConnectionCDF(1, math.Ln2)
	if math.Abs(mid-0.5) > 1e-12 {
		t.Errorf("F(ln2; lambda=1) = %v, want 0.5", mid)
	}
}

func TestIsolationProbability(t *testing.T) {
	// Single node, generous time: near 1. Many nodes, tight times: small.
	one := IsolationProbability(1, []float64{10})
	if one < 0.99 {
		t.Errorf("single-node isolation = %v", one)
	}
	many := IsolationProbability(1, []float64{0.1, 0.1, 0.1, 0.1})
	if many > 0.001 {
		t.Errorf("tight-times isolation = %v, want tiny", many)
	}
	if IsolationProbability(1, nil) != 1 {
		t.Error("empty assignment should be probability 1")
	}
}

func TestCauchyBoundDominatesExact(t *testing.T) {
	// Property (Eq. 2-4): for any concrete assignment with sum <= T, the
	// exact product never exceeds (1-e^{-lambda*T/m})^m.
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true
		}
		lambda := 0.7
		times := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			times[i] = float64(r%100) + 1
			sum += times[i]
		}
		m := len(times)
		exact := IsolationProbability(lambda, times)
		bound := math.Pow(1-math.Exp(-lambda*sum/float64(m)), float64(m))
		return exact <= bound+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
