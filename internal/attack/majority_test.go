package attack

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/p2p"
	"repro/internal/topology"
)

func TestMajorityConfigValidate(t *testing.T) {
	ok := MajorityConfig{AttackerShare: 0.3, IsolatedShare: 0.5, MineFor: time.Hour}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []MajorityConfig{
		{AttackerShare: 0, IsolatedShare: 0.5, MineFor: time.Hour},
		{AttackerShare: 1, IsolatedShare: 0, MineFor: time.Hour},
		{AttackerShare: 0.5, IsolatedShare: 0.5, MineFor: time.Hour},
		{AttackerShare: 0.3, IsolatedShare: -0.1, MineFor: time.Hour},
		{AttackerShare: 0.3, IsolatedShare: 0.3, MineFor: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMajority51WinsAfterIsolation(t *testing.T) {
	// Table IV scenario: attacker with 30% of hash rate hijacks the three
	// stratum ASes, cutting 65.7% of honest power. Effective shares: 30%
	// attacker vs 4.3% honest — the attacker's chain must win and rewrite
	// history across the network.
	sim := warmSim(t, 60, 51)
	res, err := ExecuteMajority51(sim, MajorityConfig{
		AttackerShare: 0.30,
		IsolatedShare: 0.657,
		MineFor:       24 * time.Hour,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AttackerWins {
		t.Fatalf("attacker lost with 30%% vs 4.3%%: %+v", res)
	}
	if res.AttackerBlocks <= res.HonestBlocks {
		t.Errorf("attacker blocks %d <= honest %d", res.AttackerBlocks, res.HonestBlocks)
	}
	// The rewrite must be adopted by (nearly) the whole network.
	if res.AdoptedBy < 55 {
		t.Errorf("private chain adopted by %d of 60 nodes", res.AdoptedBy)
	}
}

func TestMajority51LosesWithoutIsolation(t *testing.T) {
	// Without the spatial assist, 30% vs 70% almost surely loses over a
	// long window.
	sim := warmSim(t, 40, 53)
	res, err := ExecuteMajority51(sim, MajorityConfig{
		AttackerShare: 0.30,
		IsolatedShare: 0,
		MineFor:       48 * time.Hour,
		Seed:          9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackerWins {
		t.Errorf("attacker won 30%% vs 70%% over 48h: %+v", res)
	}
	if res.ReorgDepth != 0 || res.AdoptedBy != 0 {
		t.Errorf("losing attacker should publish nothing: %+v", res)
	}
}

func TestCascadeRequiresLocalityBias(t *testing.T) {
	// Build two simulations whose nodes carry AS profiles: one with
	// locality-biased peering, one uniform. Cut 80% of the victim AS and
	// compare the survivors' lag.
	build := func(bias float64) *netsim.Simulation {
		nodes := make([]*p2p.Node, 100)
		for i := range nodes {
			asn := topology.ASN(100)
			if i >= 30 {
				asn = topology.ASN(200 + i%5)
			}
			nodes[i] = p2p.NewNode(p2p.NodeID(i), p2p.Profile{ASN: asn})
		}
		sim, err := netsim.FromConfig(netsim.Config{
			Population: nodes, Seed: 31,
			Gossip: p2p.Config{FailureRate: 0.10, SameASBias: bias},
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.StartMining()
		sim.Run(3 * time.Hour)
		return sim
	}
	run := func(bias float64) *CascadeResult {
		sim := build(bias)
		res, err := ExecuteCascade(sim, CascadeConfig{
			Victim:      100,
			CutFraction: 0.8,
			RunFor:      12 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	biased := run(0.9)
	uniform := run(0)
	if biased.Cut == 0 || biased.Survivors == 0 {
		t.Fatalf("bad split: %+v", biased)
	}
	// With heavy locality bias, the survivors starve (cascade); with
	// uniform peering they keep up via out-of-AS peers.
	if biased.MeanSurvivorLag <= uniform.MeanSurvivorLag {
		t.Errorf("cascade absent: biased lag %.2f <= uniform lag %.2f",
			biased.MeanSurvivorLag, uniform.MeanSurvivorLag)
	}
	if biased.SurvivorsBehind == 0 {
		t.Error("no survivors behind despite 80% cut and 0.9 bias")
	}
	// The control group outside the AS stays healthy in both runs.
	if biased.OutsideBehindFrac > 0.3 {
		t.Errorf("outside behind fraction %.2f too high", biased.OutsideBehindFrac)
	}
}

func TestCascadeValidation(t *testing.T) {
	sim := warmSim(t, 30, 3)
	if _, err := ExecuteCascade(sim, CascadeConfig{Victim: 1, CutFraction: 2, RunFor: time.Hour}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := ExecuteCascade(sim, CascadeConfig{Victim: 1, CutFraction: 0.5, RunFor: 0}); err == nil {
		t.Error("zero window accepted")
	}
	// warmSim nodes carry no AS profile: the victim AS has no members.
	if _, err := ExecuteCascade(sim, CascadeConfig{Victim: 12345, CutFraction: 0.5, RunFor: time.Hour}); err == nil {
		t.Error("empty AS accepted")
	}
}

func TestDoubleSpendThroughTemporalPartition(t *testing.T) {
	sim := warmSim(t, 80, 61)
	victims := FindVictims(sim, 0, 14)
	res, err := ExecuteTemporalOn(sim, TemporalConfig{
		AttackerShare: 0.30,
		HoldFor:       8 * time.Hour,
		HealFor:       4 * time.Hour,
		TrackPayment:  true,
	}, victims)
	if err != nil {
		t.Fatal(err)
	}
	if res.PaymentTx == 0 {
		t.Fatal("no payment planted")
	}
	// The merchant saw the payment confirm and deepen during the hold...
	if res.MerchantConfirmations < 2 {
		t.Errorf("merchant confirmations = %d, want >= 2 (enough for most merchants)", res.MerchantConfirmations)
	}
	// ...and healing erased it: double-spend complete.
	if !res.PaymentReversed {
		t.Error("payment survived the heal; double-spend failed")
	}
}

func TestPaymentNotTrackedByDefault(t *testing.T) {
	sim := warmSim(t, 40, 63)
	victims := FindVictims(sim, 0, 8)
	res, err := ExecuteTemporalOn(sim, TemporalConfig{
		AttackerShare: 0.30, HoldFor: 4 * time.Hour, HealFor: 2 * time.Hour,
	}, victims)
	if err != nil {
		t.Fatal(err)
	}
	if res.PaymentTx != 0 || res.MerchantConfirmations != 0 || res.PaymentReversed {
		t.Errorf("payment fields set without TrackPayment: %+v", res)
	}
}
