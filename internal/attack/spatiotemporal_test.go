package attack

import (
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/p2p"
)

func trackedTrace(t *testing.T) *dataset.Trace {
	t.Helper()
	tr, err := testPop(t).RunTrace(dataset.TraceConfig{
		Duration: 24 * time.Hour, SampleEvery: 10 * time.Minute, Seed: 5,
		TrackSyncedByAS: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFindBestMoment(t *testing.T) {
	tr := trackedTrace(t)
	m, err := FindBestMoment(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.TopSyncedASes) != 5 {
		t.Fatalf("top ASes = %d", len(m.TopSyncedASes))
	}
	// The chosen sample truly minimizes the synced count.
	for _, s := range tr.Samples {
		if s.Buckets[0] < m.Synced {
			t.Fatalf("sample with fewer synced nodes exists: %d < %d", s.Buckets[0], m.Synced)
		}
	}
	// Rows are sorted and fractions filled.
	for i := 1; i < len(m.TopSyncedASes); i++ {
		if m.TopSyncedASes[i].Nodes > m.TopSyncedASes[i-1].Nodes {
			t.Error("top ASes not sorted")
		}
	}
}

func TestFindBestMomentErrors(t *testing.T) {
	if _, err := FindBestMoment(&dataset.Trace{}, 5); err == nil {
		t.Error("empty trace accepted")
	}
	untracked, err := testPop(t).RunTrace(dataset.TraceConfig{
		Duration: time.Hour, SampleEvery: 10 * time.Minute, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FindBestMoment(untracked, 5); err == nil {
		t.Error("untracked trace accepted")
	}
}

func TestPlanSpatioTemporalByCapability(t *testing.T) {
	tr := trackedTrace(t)
	m, err := FindBestMoment(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	pop := testPop(t)

	routing, err := PlanSpatioTemporal(pop, m, CapabilityRouting, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(routing.SpatialASes) == 0 || routing.TemporalVictims != 0 {
		t.Errorf("routing plan = %+v", routing)
	}
	if routing.SpatialPrefixes == 0 {
		t.Error("routing plan has no prefix effort")
	}

	miningPlan, err := PlanSpatioTemporal(pop, m, CapabilityMining, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(miningPlan.SpatialASes) != 0 || miningPlan.TemporalVictims == 0 {
		t.Errorf("mining plan = %+v", miningPlan)
	}

	both, err := PlanSpatioTemporal(pop, m, CapabilityBoth, 5)
	if err != nil {
		t.Fatal(err)
	}
	if both.Coverage <= routing.Coverage || both.Coverage <= miningPlan.Coverage {
		t.Errorf("combined coverage %v should exceed single-capability plans (%v, %v)",
			both.Coverage, routing.Coverage, miningPlan.Coverage)
	}
	if both.Coverage > 1.000001 {
		t.Errorf("coverage %v exceeds 1", both.Coverage)
	}
}

func TestPlanSpatioTemporalValidation(t *testing.T) {
	pop := testPop(t)
	if _, err := PlanSpatioTemporal(pop, nil, CapabilityBoth, 5); err == nil {
		t.Error("nil moment accepted")
	}
	m := &Moment{}
	if _, err := PlanSpatioTemporal(pop, m, CapabilityInvalid, 5); err == nil {
		t.Error("invalid capability accepted")
	}
}

func TestCapabilityString(t *testing.T) {
	tests := []struct {
		c    Capability
		want string
	}{
		{CapabilityRouting, "routing"},
		{CapabilityMining, "mining"},
		{CapabilityBoth, "routing+mining"},
		{CapabilityInvalid, "Capability(0)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestExecuteSpatioTemporal(t *testing.T) {
	sim := warmSim(t, 90, 41)
	candidates := FindVictims(sim, 0, 0)
	if len(candidates) < 30 {
		t.Fatal("not enough candidates")
	}
	spatial := candidates[:10]
	temporal := candidates[10:22]
	cfg := TemporalConfig{AttackerShare: 0.30, HoldFor: 8 * time.Hour, HealFor: 4 * time.Hour}
	res, err := ExecuteSpatioTemporal(sim, cfg, spatial, temporal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Temporal == nil {
		t.Fatal("missing temporal result")
	}
	// Spatially blackholed nodes missed the hold's blocks.
	if res.SpatialIsolated < len(spatial)*8/10 {
		t.Errorf("spatially isolated = %d of %d", res.SpatialIsolated, len(spatial))
	}
	if res.Temporal.CapturedAtRelease < len(temporal)/2 {
		t.Errorf("temporal capture = %d of %d", res.Temporal.CapturedAtRelease, len(temporal))
	}
	// After the heal window the spatial victims caught back up.
	ref := sim.Network.RefHeight()
	behind := 0
	for _, id := range spatial {
		if sim.Network.Nodes[id].BlocksBehind(ref) > 2 {
			behind++
		}
	}
	if behind > len(spatial)/2 {
		t.Errorf("%d of %d spatial victims still far behind after heal", behind, len(spatial))
	}
}

func TestExecuteSpatioTemporalValidation(t *testing.T) {
	sim := warmSim(t, 40, 3)
	cfg := TemporalConfig{AttackerShare: 0.3, HoldFor: time.Hour, HealFor: time.Hour}
	if _, err := ExecuteSpatioTemporal(sim, cfg, []p2p.NodeID{1}, nil); err == nil {
		t.Error("empty temporal set accepted")
	}
	if _, err := ExecuteSpatioTemporal(sim, cfg, []p2p.NodeID{1}, []p2p.NodeID{1}); err == nil {
		t.Error("overlapping sets accepted")
	}
}
