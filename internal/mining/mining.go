// Package mining models Bitcoin's block-production layer: mining pools with
// fractional hash rates, the stratum servers that aggregate their miners
// (whose AS placement Table IV of the paper maps), and the stochastic block
// production process (Poisson arrivals whose rate scales with the hash share
// still connected — the mechanism that lets a 30%-hash-rate attacker sustain
// a counterfeit branch inside an isolated partition, §V-B).
package mining

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/topology"
)

// BlockInterval is Bitcoin's target block time: one block per 600 seconds at
// full network hash rate.
const BlockInterval = 600 * time.Second

// Pool is a mining pool: a named aggregate of miners submitting proof-of-work
// shares to a stratum server.
type Pool struct {
	Name string
	// HashShare is the pool's fraction of total network hash rate, in [0,1].
	HashShare float64
	// StratumASes lists the ASes hosting the pool's stratum servers. If any
	// of them is reachable the pool keeps mining; isolating all of them cuts
	// the pool off (the spatial attack on miners, §V-A).
	StratumASes []topology.ASN
	// StratumOrg is the organization hosting the primary stratum server.
	StratumOrg string
}

// ErrBadShare is returned when pool hash shares are invalid.
var ErrBadShare = errors.New("mining: invalid hash share")

// PoolSet is a fixed roster of mining pools.
type PoolSet struct {
	pools []Pool
}

// NewPoolSet validates and stores a pool roster. Shares must be in [0,1] and
// sum to at most 1+ε (the remainder is treated as unmodelled small miners,
// matching the paper's exclusion of the 12 smallest pools).
func NewPoolSet(pools []Pool) (*PoolSet, error) {
	var total float64
	for i, p := range pools {
		if p.HashShare < 0 || p.HashShare > 1 {
			return nil, fmt.Errorf("%w: pool %d (%s) share %v", ErrBadShare, i, p.Name, p.HashShare)
		}
		total += p.HashShare
	}
	if total > 1+1e-9 {
		return nil, fmt.Errorf("%w: shares sum to %v > 1", ErrBadShare, total)
	}
	return &PoolSet{pools: append([]Pool(nil), pools...)}, nil
}

// Pools returns a copy of the roster.
func (s *PoolSet) Pools() []Pool {
	return append([]Pool(nil), s.pools...)
}

// Len returns the number of pools.
func (s *PoolSet) Len() int { return len(s.pools) }

// TotalShare returns the summed hash share of the roster.
func (s *PoolSet) TotalShare() float64 {
	var total float64
	for _, p := range s.pools {
		total += p.HashShare
	}
	return total
}

// ShareBehindASes returns the aggregate hash share whose every stratum AS is
// in the given set — the share an adversary isolates by hijacking those ASes
// (Table IV: three ASes carry 65.7% of mining traffic).
func (s *PoolSet) ShareBehindASes(ases map[topology.ASN]bool) float64 {
	var total float64
	for _, p := range s.pools {
		if len(p.StratumASes) == 0 {
			continue
		}
		all := true
		for _, a := range p.StratumASes {
			if !ases[a] {
				all = false
				break
			}
		}
		if all {
			total += p.HashShare
		}
	}
	return total
}

// ShareBehindOrg returns the aggregate hash share of pools whose primary
// stratum organization matches.
func (s *PoolSet) ShareBehindOrg(org string) float64 {
	var total float64
	for _, p := range s.pools {
		if p.StratumOrg == org {
			total += p.HashShare
		}
	}
	return total
}

// TopByShare returns the n largest pools by hash share (stable for ties).
func (s *PoolSet) TopByShare(n int) []Pool {
	pools := s.Pools()
	sort.SliceStable(pools, func(i, j int) bool { return pools[i].HashShare > pools[j].HashShare })
	if n > len(pools) {
		n = len(pools)
	}
	return pools[:n]
}

// Producer samples block production for a (sub)network controlling a given
// fraction of total hash rate. When a partition isolates hash power, each
// side's Producer gets the corresponding share and block times stretch
// proportionally — the signal the paper notes isolated nodes misattribute to
// "network issues".
type Producer struct {
	share float64
	rng   *rand.Rand
}

// NewProducer returns a producer for a hash share in (0,1]. A zero or
// negative share never produces (NextBlockIn returns +Inf-like max duration).
func NewProducer(share float64, rng *rand.Rand) *Producer {
	return &Producer{share: share, rng: rng}
}

// Share returns the producer's hash share.
func (p *Producer) Share() float64 { return p.share }

// SetShare adjusts the hash share mid-run (e.g. when a hijack disconnects a
// pool's stratum servers).
func (p *Producer) SetShare(share float64) { p.share = share }

// NextBlockIn samples the time until this producer's next block: exponential
// with rate share/BlockInterval.
func (p *Producer) NextBlockIn() time.Duration {
	if p.share <= 0 {
		return time.Duration(1<<62 - 1)
	}
	lambda := p.share / BlockInterval.Seconds()
	secs := stats.Exponential(p.rng, lambda)
	d := time.Duration(secs * float64(time.Second))
	if d < 0 {
		d = time.Duration(1<<62 - 1)
	}
	return d
}

// PickWinner samples which pool in the set mines the next block, restricted
// to pools for which active returns true, proportionally to hash share. It
// returns the pool index, or -1 if no active pool has positive share.
func (s *PoolSet) PickWinner(rng *rand.Rand, active func(Pool) bool) int {
	weights := make([]float64, len(s.pools))
	for i, p := range s.pools {
		if active == nil || active(p) {
			weights[i] = p.HashShare
		}
	}
	return stats.WeightedIndex(rng, weights)
}
