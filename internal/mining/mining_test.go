package mining

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/topology"
)

// paperPools mirrors Table IV of the paper: the top five pools by hash rate
// and the ASes hosting their stratum servers.
func paperPools(t *testing.T) *PoolSet {
	t.Helper()
	set, err := NewPoolSet([]Pool{
		{Name: "BTC.com", HashShare: 0.25, StratumASes: []topology.ASN{37963, 45102}, StratumOrg: "AliBaba"},
		{Name: "Antpool", HashShare: 0.124, StratumASes: []topology.ASN{45102}, StratumOrg: "AliBaba"},
		{Name: "ViaBTC", HashShare: 0.117, StratumASes: []topology.ASN{45102}, StratumOrg: "AliBaba"},
		{Name: "BTC.TOP", HashShare: 0.103, StratumASes: []topology.ASN{45102}, StratumOrg: "AliBaba"},
		{Name: "F2Pool", HashShare: 0.063, StratumASes: []topology.ASN{45102, 58563}, StratumOrg: "AliBaba"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestNewPoolSetValidation(t *testing.T) {
	tests := []struct {
		name    string
		pools   []Pool
		wantErr bool
	}{
		{"valid", []Pool{{Name: "a", HashShare: 0.5}, {Name: "b", HashShare: 0.5}}, false},
		{"empty", nil, false},
		{"negative share", []Pool{{HashShare: -0.1}}, true},
		{"share above one", []Pool{{HashShare: 1.1}}, true},
		{"sum above one", []Pool{{HashShare: 0.6}, {HashShare: 0.6}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewPoolSet(tt.pools)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadShare) {
				t.Errorf("err = %v, want ErrBadShare", err)
			}
		})
	}
}

func TestShareBehindASes(t *testing.T) {
	set := paperPools(t)
	// Hijacking the three ASes of Table IV isolates 65.7% of hash rate.
	three := map[topology.ASN]bool{37963: true, 45102: true, 58563: true}
	got := set.ShareBehindASes(three)
	if math.Abs(got-0.657) > 1e-9 {
		t.Errorf("share behind 3 ASes = %v, want 0.657", got)
	}
	// AS45102 alone isolates Antpool, ViaBTC, BTC.TOP = 34.4%; BTC.com and
	// F2Pool have a second stratum AS outside the set.
	one := map[topology.ASN]bool{45102: true}
	got = set.ShareBehindASes(one)
	if math.Abs(got-0.344) > 1e-9 {
		t.Errorf("share behind AS45102 = %v, want 0.344", got)
	}
	if set.ShareBehindASes(nil) != 0 {
		t.Error("empty AS set should isolate nothing")
	}
}

func TestShareBehindOrg(t *testing.T) {
	set := paperPools(t)
	got := set.ShareBehindOrg("AliBaba")
	if math.Abs(got-0.657) > 1e-9 {
		t.Errorf("AliBaba org share = %v, want 0.657 (>60%% per the paper)", got)
	}
	if set.ShareBehindOrg("nobody") != 0 {
		t.Error("unknown org should have zero share")
	}
}

func TestTopByShare(t *testing.T) {
	set := paperPools(t)
	top2 := set.TopByShare(2)
	if len(top2) != 2 || top2[0].Name != "BTC.com" || top2[1].Name != "Antpool" {
		t.Errorf("TopByShare(2) = %v", top2)
	}
	if got := set.TopByShare(100); len(got) != set.Len() {
		t.Errorf("TopByShare over-length = %d items", len(got))
	}
}

func TestTotalShare(t *testing.T) {
	set := paperPools(t)
	if got := set.TotalShare(); math.Abs(got-0.657) > 1e-9 {
		t.Errorf("TotalShare = %v, want 0.657", got)
	}
}

func TestProducerMeanBlockTime(t *testing.T) {
	tests := []struct {
		share float64
		want  time.Duration
	}{
		{1.0, 600 * time.Second},
		{0.3, 2000 * time.Second}, // the paper's 30% attacker: 3.33x slower blocks
	}
	for _, tt := range tests {
		rng := stats.NewRand(11)
		p := NewProducer(tt.share, rng)
		const n = 30000
		var sum time.Duration
		for i := 0; i < n; i++ {
			sum += p.NextBlockIn()
		}
		mean := sum / n
		ratio := float64(mean) / float64(tt.want)
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("share %v: mean block time %v, want ~%v", tt.share, mean, tt.want)
		}
	}
}

func TestProducerZeroShareNeverMines(t *testing.T) {
	p := NewProducer(0, stats.NewRand(1))
	if d := p.NextBlockIn(); d < time.Duration(1<<62-1) {
		t.Errorf("zero-share producer scheduled a block in %v", d)
	}
	p.SetShare(0.5)
	if p.Share() != 0.5 {
		t.Error("SetShare did not take effect")
	}
	if d := p.NextBlockIn(); d > 100*BlockInterval {
		t.Errorf("0.5-share producer block time suspiciously long: %v", d)
	}
}

func TestPickWinnerProportional(t *testing.T) {
	set := paperPools(t)
	rng := stats.NewRand(99)
	counts := make(map[string]int)
	const n = 200000
	for i := 0; i < n; i++ {
		idx := set.PickWinner(rng, nil)
		if idx < 0 {
			t.Fatal("no winner")
		}
		counts[set.pools[idx].Name]++
	}
	// BTC.com should win ~25/65.7 of the time among the five pools.
	wantFrac := 0.25 / 0.657
	gotFrac := float64(counts["BTC.com"]) / n
	if math.Abs(gotFrac-wantFrac) > 0.01 {
		t.Errorf("BTC.com win rate = %v, want ~%v", gotFrac, wantFrac)
	}
}

func TestPickWinnerRespectsActiveFilter(t *testing.T) {
	set := paperPools(t)
	rng := stats.NewRand(7)
	// Disconnect everything except F2Pool.
	for i := 0; i < 1000; i++ {
		idx := set.PickWinner(rng, func(p Pool) bool { return p.Name == "F2Pool" })
		if idx < 0 || set.pools[idx].Name != "F2Pool" {
			t.Fatalf("winner = %d, want F2Pool only", idx)
		}
	}
	// All filtered out: no winner.
	if idx := set.PickWinner(rng, func(Pool) bool { return false }); idx != -1 {
		t.Errorf("winner with empty active set = %d, want -1", idx)
	}
}
