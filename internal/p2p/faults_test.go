package p2p

import (
	"sort"
	"testing"
	"time"

	"repro/internal/blockchain"
	"repro/internal/stats"
)

func TestNewConfigOptions(t *testing.T) {
	cfg := NewConfig(
		WithPeerCount(16),
		WithMeanRelayDelay(3*time.Second),
		WithFailureRate(0.02),
		WithSpreading(Trickle),
		WithTrickleInterval(7*time.Second),
		WithRequestTimeout(45*time.Second),
		WithSameASBias(0.4),
	)
	if cfg.PeerCount != 16 || cfg.MeanRelayDelay != 3*time.Second ||
		cfg.FailureRate != 0.02 || cfg.Spreading != Trickle ||
		cfg.TrickleInterval != 7*time.Second || cfg.RequestTimeout != 45*time.Second ||
		cfg.SameASBias != 0.4 {
		t.Errorf("NewConfig assembled %+v", cfg)
	}
	// Zero options = zero Config: defaults still applied by NewNetwork,
	// exactly as for a struct literal.
	net := newTestNetwork(t, 10, NewConfig(), 1)
	if net.Config().PeerCount == 0 {
		t.Error("defaults not applied to options-built config")
	}
}

// dropAll is a FaultInjector that kills every message.
type dropAll struct{}

func (dropAll) Intercept(from, to NodeID, now time.Duration) FaultVerdict {
	return FaultVerdict{Drop: true}
}

func TestFaultInjectorDropsSuppressDelivery(t *testing.T) {
	net := newTestNetwork(t, 30, NewConfig(
		WithFailureRate(1e-12),
		WithFaultInjector(dropAll{}),
	), 3)
	b := blockchain.NewBlock(net.Nodes[0].Tree.Genesis(), 0, 0, nil, false)
	if err := net.Publish(0, b); err != nil {
		t.Fatal(err)
	}
	net.Engine.Run(time.Hour)
	for i := 1; i < 30; i++ {
		if net.Nodes[i].Height() != 0 {
			t.Fatalf("node %d received a block through a dead fault injector", i)
		}
	}
	if net.MsgStats().Faulted == 0 {
		t.Error("no messages accounted as faulted")
	}
}

// delayOnly injects a fixed extra delay on every message and counts calls.
type delayOnly struct{ calls *int }

func (d delayOnly) Intercept(from, to NodeID, now time.Duration) FaultVerdict {
	*d.calls++
	return FaultVerdict{ExtraDelay: 30 * time.Second}
}

func TestFaultInjectorDelayStillDelivers(t *testing.T) {
	calls := 0
	net := newTestNetwork(t, 30, NewConfig(
		WithFailureRate(1e-12),
		WithFaultInjector(delayOnly{&calls}),
	), 3)
	b := blockchain.NewBlock(net.Nodes[0].Tree.Genesis(), 0, 0, nil, false)
	if err := net.Publish(0, b); err != nil {
		t.Fatal(err)
	}
	net.Engine.Run(2 * time.Hour)
	if calls == 0 {
		t.Fatal("injector never consulted")
	}
	for i, node := range net.Nodes {
		if node.Height() != 1 {
			t.Fatalf("node %d height = %d under delay-only injector", i, node.Height())
		}
	}
	if net.MsgStats().Faulted != 0 {
		t.Errorf("delay-only injector accounted %d faulted drops", net.MsgStats().Faulted)
	}
}

func TestRewirePeersKeepsInvariants(t *testing.T) {
	net := newTestNetwork(t, 40, Config{}, 9)
	const id = NodeID(4)
	before := net.Neighbors(id)
	net.RewirePeers(id, stats.NewRand(99))
	after := net.Neighbors(id)
	if len(after) == 0 {
		t.Fatal("rewired node has no neighbors")
	}
	if !sort.SliceIsSorted(after, func(i, j int) bool { return after[i] < after[j] }) {
		t.Errorf("adjacency not sorted after rewire: %v", after)
	}
	seen := map[NodeID]bool{}
	for _, p := range after {
		if p == id {
			t.Error("node rewired to itself")
		}
		if seen[p] {
			t.Errorf("duplicate neighbor %d after rewire", p)
		}
		seen[p] = true
		// Undirected edge: the peer must list us back.
		found := false
		for _, q := range net.Neighbors(p) {
			if q == id {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("neighbor %d does not list %d back", p, id)
		}
	}
	// Same seed, same starting graph ⇒ same rewire outcome.
	net2 := newTestNetwork(t, 40, Config{}, 9)
	net2.RewirePeers(id, stats.NewRand(99))
	after2 := net2.Neighbors(id)
	if len(after) != len(after2) {
		t.Fatalf("rewire nondeterministic: %v vs %v", after, after2)
	}
	for i := range after {
		if after[i] != after2[i] {
			t.Fatalf("rewire nondeterministic: %v vs %v", after, after2)
		}
	}
	_ = before
}
