package p2p

import (
	"testing"
	"time"

	"repro/internal/blockchain"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func TestNewNetworkWithGraph(t *testing.T) {
	engine := &sim.Engine{}
	rng := stats.NewRand(1)
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = NewNode(NodeID(i), Profile{})
	}
	// A line: 0-1-2-3.
	outbound := [][]NodeID{{1}, {2}, {3}, {}}
	net, err := NewNetworkWithGraph(engine, nodes, Config{FailureRate: 1e-9}, rng, outbound)
	if err != nil {
		t.Fatal(err)
	}
	// Undirected closure: node 1's neighbors are 0 and 2.
	nbrs := net.Neighbors(1)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 2 {
		t.Fatalf("neighbors(1) = %v", nbrs)
	}
	// A block from node 0 walks the line.
	b := blockchain.NewBlock(nodes[0].Tree.Genesis(), 0, 0, nil, false)
	if err := net.Publish(0, b); err != nil {
		t.Fatal(err)
	}
	net.Engine.Run(time.Hour)
	for i, node := range nodes {
		if node.Height() != 1 {
			t.Errorf("node %d height %d", i, node.Height())
		}
	}
}

func TestNewNetworkWithGraphValidation(t *testing.T) {
	engine := &sim.Engine{}
	rng := stats.NewRand(1)
	nodes := []*Node{NewNode(0, Profile{}), NewNode(1, Profile{})}
	tests := []struct {
		name     string
		outbound [][]NodeID
	}{
		{"row mismatch", [][]NodeID{{1}}},
		{"self loop", [][]NodeID{{0}, {0}}},
		{"out of range", [][]NodeID{{7}, {0}}},
		{"negative", [][]NodeID{{-1}, {0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewNetworkWithGraph(engine, nodes, Config{}, rng, tt.outbound); err == nil {
				t.Error("invalid graph accepted")
			}
		})
	}
	if _, err := NewNetworkWithGraph(nil, nodes, Config{}, rng, [][]NodeID{{1}, {0}}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewNetworkWithGraph(engine, nodes[:1], Config{}, rng, [][]NodeID{{}}); err == nil {
		t.Error("single node accepted")
	}
}

func TestSameASBiasClustersPeers(t *testing.T) {
	engine := &sim.Engine{}
	rng := stats.NewRand(5)
	// Two equal ASes of 50 nodes each.
	nodes := make([]*Node, 100)
	for i := range nodes {
		asn := topology.ASN(1)
		if i >= 50 {
			asn = topology.ASN(2)
		}
		nodes[i] = NewNode(NodeID(i), Profile{ASN: asn})
	}
	net, err := NewNetwork(engine, nodes, Config{SameASBias: 0.9}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sameAS, total := 0, 0
	for i, node := range net.Nodes {
		for _, p := range node.Peers {
			total++
			if nodes[i].Profile.ASN == nodes[p].Profile.ASN {
				sameAS++
			}
		}
	}
	frac := float64(sameAS) / float64(total)
	// Bias 0.9 with a 50% same-AS base rate: expect ~0.9+0.1*0.5 ≈ 0.95
	// intra-AS outbound edges; uniform would be ~0.5.
	if frac < 0.8 {
		t.Errorf("same-AS outbound fraction = %.2f under bias 0.9", frac)
	}

	// And without bias it stays near the base rate.
	rng2 := stats.NewRand(5)
	for i := range nodes {
		nodes[i] = NewNode(NodeID(i), nodes[i].Profile)
	}
	net2, err := NewNetwork(&sim.Engine{}, nodes, Config{}, rng2)
	if err != nil {
		t.Fatal(err)
	}
	sameAS, total = 0, 0
	for i, node := range net2.Nodes {
		for _, p := range node.Peers {
			total++
			if nodes[i].Profile.ASN == nodes[p].Profile.ASN {
				sameAS++
			}
		}
	}
	if frac := float64(sameAS) / float64(total); frac > 0.65 {
		t.Errorf("uniform same-AS fraction = %.2f, want ~0.5", frac)
	}
}

func TestSameASBiasValidation(t *testing.T) {
	engine := &sim.Engine{}
	nodes := []*Node{NewNode(0, Profile{}), NewNode(1, Profile{})}
	if _, err := NewNetwork(engine, nodes, Config{SameASBias: -0.1}, stats.NewRand(1)); err == nil {
		t.Error("negative bias accepted")
	}
	if _, err := NewNetwork(engine, nodes, Config{SameASBias: 1.5}, stats.NewRand(1)); err == nil {
		t.Error("bias > 1 accepted")
	}
}

func TestBypassLinkCrossesPolicy(t *testing.T) {
	engine := &sim.Engine{}
	rng := stats.NewRand(9)
	nodes := make([]*Node, 10)
	for i := range nodes {
		nodes[i] = NewNode(NodeID(i), Profile{})
	}
	net, err := NewNetwork(engine, nodes, Config{FailureRate: 1e-9}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Block everything.
	net.SetPolicy(func(_, _ NodeID, _ time.Duration) bool { return false })
	b := blockchain.NewBlock(nodes[0].Tree.Genesis(), 0, 0, nil, false)
	if _, err := nodes[0].Tree.Add(b); err != nil {
		t.Fatal(err)
	}
	// Without a bypass, an offer is blocked.
	net.OfferTip(0, 5)
	net.Engine.Run(time.Hour)
	if nodes[5].Height() != 0 {
		t.Fatal("policy did not block the offer")
	}
	// With a bypass link, the same offer goes through.
	net.AddBypassLink(0, 5)
	net.OfferTip(0, 5)
	net.Engine.Run(2 * time.Hour)
	if nodes[5].Height() != 1 {
		t.Errorf("bypass link did not deliver: height %d", nodes[5].Height())
	}
	net.ClearBypassLinks()
	// After clearing, blocked again.
	b2 := blockchain.NewBlock(b, 0, time.Second, nil, false)
	if _, err := nodes[0].Tree.Add(b2); err != nil {
		t.Fatal(err)
	}
	net.OfferTip(0, 5)
	net.Engine.Run(3 * time.Hour)
	if nodes[5].Height() != 1 {
		t.Errorf("cleared bypass still delivering: height %d", nodes[5].Height())
	}
}
