// Package p2p implements the simulated Bitcoin peer-to-peer layer: full
// nodes with the default eight outbound peer connections, the
// inv/getdata/block message exchange, and diffusion spreading — each relay
// hop delayed by an independent exponential, the propagation model Bitcoin
// adopted in 2015 and the one the paper's temporal analysis assumes (§V-B,
// citing Fanti & Viswanath). Links can fail probabilistically and can be
// filtered by an attacker-controlled policy, which is how the network
// simulator expresses eclipses and BGP partitions.
package p2p

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/blockchain"
	"repro/internal/topology"
)

// NodeID indexes a node within its network.
type NodeID int

// MsgType enumerates the subset of the Bitcoin wire protocol the simulation
// exchanges. (Bitnodes drives the same messages against the real network to
// read each node's chain view, §IV-A.)
type MsgType int

// Message types.
const (
	MsgInvalid MsgType = iota
	// MsgInv announces knowledge of a block by hash.
	MsgInv
	// MsgGetData requests the full block for a hash.
	MsgGetData
	// MsgBlock delivers a full block.
	MsgBlock
)

// String implements fmt.Stringer.
func (m MsgType) String() string {
	switch m {
	case MsgInv:
		return "inv"
	case MsgGetData:
		return "getdata"
	case MsgBlock:
		return "block"
	default:
		return fmt.Sprintf("MsgType(%d)", int(m))
	}
}

// Message is one wire message between simulated nodes. Block deliveries
// carry no payload pointer: chain trees are append-only, so the receiver
// re-resolves the block from the sender's tree at arrival time.
type Message struct {
	Type MsgType
	From NodeID
	To   NodeID
	Hash blockchain.Hash
	Idx  int32 // the network's interned index for Hash
}

// Profile carries the per-node attributes the paper's dataset records
// (Table I): address, family, hosting AS/organization, link speed and the
// latency/uptime indices Bitnodes derives from response times.
type Profile struct {
	Addr         topology.IP
	Family       topology.AddrFamily
	ASN          topology.ASN
	Org          string
	LinkSpeedMbs float64
	LatencyIndex float64 // 0 (worst) .. 1 (best)
	UptimeIndex  float64 // 0 (worst) .. 1 (best)
	Version      string  // software client version (Table VIII)
}

// Node is one simulated full node: a chain view plus peer links.
type Node struct {
	ID      NodeID
	Profile Profile
	Tree    *blockchain.Tree

	// Peers are outbound connections (default 8 in Bitcoin and in the
	// paper's simulation).
	Peers []NodeID

	// Up mirrors the dataset's up/down flag; down nodes neither relay nor
	// accept blocks.
	Up bool

	// reqAt tracks when each block was last requested via getdata — to
	// avoid duplicate downloads while still allowing a re-request after a
	// timeout (a lost getdata or block reply would otherwise strand the
	// node — Bitcoin's block-download timeout serves the same purpose).
	// It is indexed by the network's interned hash index rather than keyed
	// by hash: the inv-dedup check on the relay hot path becomes a slice
	// load instead of a map probe (DESIGN.md §12). -1 means never
	// requested; the slice grows lazily as the network interns new hashes.
	reqAt []time.Duration
	// orphans holds blocks whose parent has not arrived yet, keyed by the
	// missing parent hash — the classic orphan-block pool. Without it a
	// node that hears about a child before its parent would lose the block
	// forever.
	orphans map[blockchain.Hash][]*blockchain.Block
	// orphanByHash indexes the same blocks by their own hash, so recovery
	// can walk an orphan chain back to its deepest missing ancestor.
	orphanByHash map[blockchain.Hash]*blockchain.Block
	// have is a bitset over the network's interned hash indexes marking
	// blocks this node has accepted. It fronts Tree.Has on the inv-dedup
	// hot path: a set bit proves presence with one word load, a clear bit
	// falls through to the authoritative tree lookup (blocks can enter a
	// tree without passing the relay, so clear is never proof of absence).
	have []uint64
	// LastBlockAt is the virtual time this node last advanced its tip,
	// feeding the BlockAware countermeasure (tc - tl > 600s check).
	LastBlockAt time.Duration
	// ReorgCount and ReversedTxs accumulate partition damage for reporting.
	ReorgCount  int
	ReversedTxs int
}

// NewNode creates an up node with its own genesis-rooted chain view.
func NewNode(id NodeID, profile Profile) *Node {
	return &Node{
		ID:           id,
		Profile:      profile,
		Tree:         blockchain.NewTree(),
		Up:           true,
		orphans:      map[blockchain.Hash][]*blockchain.Block{},
		orphanByHash: map[blockchain.Hash]*blockchain.Block{},
	}
}

// AddOrphan stashes a block waiting for the given parent.
func (n *Node) AddOrphan(parent blockchain.Hash, b *blockchain.Block) {
	for _, o := range n.orphans[parent] {
		if o.Hash == b.Hash {
			return
		}
	}
	n.orphans[parent] = append(n.orphans[parent], b)
	n.orphanByHash[b.Hash] = b
}

// TakeOrphans removes and returns the blocks waiting on the given parent.
func (n *Node) TakeOrphans(parent blockchain.Hash) []*blockchain.Block {
	bs := n.orphans[parent]
	delete(n.orphans, parent)
	for _, b := range bs {
		delete(n.orphanByHash, b.Hash)
	}
	return bs
}

// OrphanWithHash returns the stashed orphan with the given block hash.
func (n *Node) OrphanWithHash(h blockchain.Hash) (*blockchain.Block, bool) {
	b, ok := n.orphanByHash[h]
	return b, ok
}

// OrphanCount returns the number of stashed orphan blocks.
func (n *Node) OrphanCount() int {
	total := 0
	for _, bs := range n.orphans {
		total += len(bs)
	}
	return total
}

// Height returns the node's best-chain height.
func (n *Node) Height() int { return n.Tree.Height() }

// BlocksBehind returns how far the node's view lags a reference height,
// never negative. This is the paper's central per-node lag metric (Figures
// 1 and 6; Table V).
func (n *Node) BlocksBehind(refHeight int) int {
	d := refHeight - n.Height()
	if d < 0 {
		return 0
	}
	return d
}

// markRequested records an outstanding getdata at virtual time now and
// reports whether a sufficiently recent request (within timeout) is already
// in flight, in which case the caller should suppress the duplicate. idx is
// the network's interned index for the block hash; every request-marking
// path interns, so the dedup semantics are exactly those of the former
// hash-keyed map.
func (n *Node) markRequested(idx int32, now, timeout time.Duration) bool {
	if int(idx) >= len(n.reqAt) {
		old := len(n.reqAt)
		n.reqAt = append(n.reqAt, make([]time.Duration, int(idx)+1-old)...)
		for i := old; i < len(n.reqAt); i++ {
			n.reqAt[i] = -1
		}
	}
	if at := n.reqAt[idx]; at >= 0 && now-at < timeout {
		return true
	}
	n.reqAt[idx] = now
	return false
}

// setHave marks an interned hash index as accepted.
func (n *Node) setHave(idx int32) {
	w := int(idx >> 6)
	if w >= len(n.have) {
		n.have = append(n.have, make([]uint64, w+1-len(n.have))...)
	}
	n.have[w] |= 1 << (uint(idx) & 63)
}

// hasIdx reports whether the interned hash index is marked accepted.
//
//hot:path
func (n *Node) hasIdx(idx int32) bool {
	w := int(uint32(idx) >> 6)
	return w < len(n.have) && n.have[w]&(1<<(uint(idx)&63)) != 0
}

// AcceptBlock adds a block to the node's view, updating lag bookkeeping and
// reorg damage counters. The bool reports whether the block was new; a
// duplicate is not an error.
func (n *Node) AcceptBlock(b *blockchain.Block, now time.Duration) (bool, error) {
	reorg, err := n.Tree.Add(b)
	if err != nil {
		if errors.Is(err, blockchain.ErrDuplicate) {
			return false, nil
		}
		return false, err
	}
	if reorg != nil {
		if len(reorg.Abandoned) > 0 {
			n.ReorgCount++
			n.ReversedTxs += len(reorg.ReversedTxs())
		}
		n.LastBlockAt = now
	}
	return true, nil
}
