package p2p

import (
	"math/rand"
	"time"
)

// FaultVerdict is the outcome of consulting the fault injector for one
// message about to be scheduled.
type FaultVerdict struct {
	// Drop discards the message (counted in Stats.Faulted, separate from
	// the simulator's own random-failure drops).
	Drop bool
	// Duplicate delivers a second copy of the message, with its own
	// independently sampled relay delay — the at-least-once behaviour of a
	// flaky transport retransmitting after a lost ack.
	Duplicate bool
	// ExtraDelay is added on top of the normal relay delay (both copies of
	// a duplicated message are delayed).
	ExtraDelay time.Duration
}

// FaultInjector intercepts every message the network schedules, after the
// attacker link policy and before the random failure model. The injector
// owns its randomness (internal/faults derives SplitMix64 streams from its
// own seed) so installing one never re-orders draws from the simulation
// rng. A nil injector — the default — costs one nil check per send.
type FaultInjector interface {
	Intercept(from, to NodeID, now time.Duration) FaultVerdict
}

// RewirePeers re-picks a node's outbound peer set, modelling the peer
// re-discovery of a restarting node: a restarted bitcoind re-dials from
// addrman rather than resuming its previous connections. Undirected edges
// that existed only because of this node's old outbound picks are removed;
// edges backed by another node's outbound connection to this node survive,
// exactly as the inbound side of a real restart does. The caller supplies
// the rng (fault injectors pass one derived from their own churn stream).
func (n *Network) RewirePeers(id NodeID, rng *rand.Rand) {
	node := n.Nodes[id]
	for _, p := range node.Peers {
		if !n.hasOutbound(p, id) {
			n.removeAdj(id, p)
			n.removeAdj(p, id)
		}
	}
	node.Peers = node.Peers[:0]
	count := n.cfg.PeerCount
	if count > len(n.Nodes)-1 {
		count = len(n.Nodes) - 1
	}
	picked := make(map[NodeID]bool, count)
	for len(node.Peers) < count {
		p := NodeID(rng.Intn(len(n.Nodes)))
		if p == id || picked[p] {
			continue
		}
		picked[p] = true
		node.Peers = append(node.Peers, p)
		n.addAdj(id, p)
		n.addAdj(p, id)
	}
}

// hasOutbound reports whether from lists to among its outbound peers.
func (n *Network) hasOutbound(from, to NodeID) bool {
	for _, p := range n.Nodes[from].Peers {
		if p == to {
			return true
		}
	}
	return false
}

// addAdj inserts an undirected relay edge, keeping the adjacency sorted
// and duplicate-free.
func (n *Network) addAdj(a, b NodeID) {
	for _, p := range n.adj[a] {
		if p == b {
			return
		}
	}
	n.adj[a] = append(n.adj[a], b)
	sortNodeIDs(n.adj[a])
}

// removeAdj deletes an undirected relay edge end.
func (n *Network) removeAdj(a, b NodeID) {
	lst := n.adj[a]
	for i, p := range lst {
		if p == b {
			n.adj[a] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}
