package p2p

import (
	"testing"
	"time"

	"repro/internal/blockchain"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// newTestNetwork builds an n-node network with the given config and seed.
func newTestNetwork(t *testing.T, n int, cfg Config, seed int64) *Network {
	t.Helper()
	engine := &sim.Engine{}
	rng := stats.NewRand(seed)
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(NodeID(i), Profile{Family: topology.FamilyIPv4})
	}
	net, err := NewNetwork(engine, nodes, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewNetworkValidation(t *testing.T) {
	engine := &sim.Engine{}
	rng := stats.NewRand(1)
	nodes := []*Node{NewNode(0, Profile{}), NewNode(1, Profile{})}
	tests := []struct {
		name    string
		engine  *sim.Engine
		nodes   []*Node
		cfg     Config
		rng     interface{}
		wantErr bool
	}{
		{"nil engine", nil, nodes, Config{}, rng, true},
		{"one node", engine, nodes[:1], Config{}, rng, true},
		{"negative failure", engine, nodes, Config{FailureRate: -0.5}, rng, true},
		{"failure rate 1", engine, nodes, Config{FailureRate: 1.0}, rng, true},
		{"negative peers", engine, nodes, Config{PeerCount: -1}, rng, true},
		{"ok", engine, nodes, Config{}, rng, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewNetwork(tt.engine, tt.nodes, tt.cfg, stats.NewRand(1))
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	net := newTestNetwork(t, 10, Config{}, 1)
	cfg := net.Config()
	if cfg.PeerCount != 8 {
		t.Errorf("default PeerCount = %d, want 8", cfg.PeerCount)
	}
	if cfg.FailureRate != 0.10 {
		t.Errorf("default FailureRate = %v, want 0.10", cfg.FailureRate)
	}
	if cfg.Spreading != Diffusion {
		t.Errorf("default Spreading = %v, want Diffusion", cfg.Spreading)
	}
}

func TestConnectDegrees(t *testing.T) {
	net := newTestNetwork(t, 100, Config{PeerCount: 8}, 42)
	for i, node := range net.Nodes {
		if len(node.Peers) != 8 {
			t.Fatalf("node %d has %d outbound peers, want 8", i, len(node.Peers))
		}
		seen := map[NodeID]bool{}
		for _, p := range node.Peers {
			if int(p) == i {
				t.Fatalf("node %d peers with itself", i)
			}
			if seen[p] {
				t.Fatalf("node %d has duplicate peer %d", i, p)
			}
			seen[p] = true
		}
		if len(net.Neighbors(NodeID(i))) < 8 {
			t.Fatalf("node %d has %d neighbors, want >= 8", i, len(net.Neighbors(NodeID(i))))
		}
	}
}

func TestConnectSmallNetworkClamps(t *testing.T) {
	net := newTestNetwork(t, 3, Config{PeerCount: 8}, 1)
	for _, node := range net.Nodes {
		if len(node.Peers) != 2 {
			t.Errorf("peer count = %d, want clamped 2", len(node.Peers))
		}
	}
}

func TestBlockPropagatesToAllNodes(t *testing.T) {
	// With (effectively) zero failures, a published block must reach every
	// node. FailureRate 0 would be replaced by the 0.10 default, so use a
	// vanishing epsilon.
	net := newTestNetwork(t, 60, Config{FailureRate: 1e-12}, 7)
	b := blockchain.NewBlock(net.Nodes[0].Tree.Genesis(), 0, 0, nil, false)
	if err := net.Publish(0, b); err != nil {
		t.Fatal(err)
	}
	net.Engine.Run(time.Hour)
	for i, node := range net.Nodes {
		if node.Height() != 1 {
			t.Fatalf("node %d height = %d, want 1", i, node.Height())
		}
	}
	if net.RefHeight() != 1 {
		t.Errorf("RefHeight = %d, want 1", net.RefHeight())
	}
}

func TestBlockPropagationWithFailures(t *testing.T) {
	// At the paper's 10% failure rate the redundancy of 8-peer gossip still
	// reaches (nearly) everyone.
	net := newTestNetwork(t, 200, Config{FailureRate: 0.10}, 21)
	parent := net.Nodes[0].Tree.Genesis()
	for h := 1; h <= 5; h++ {
		b := blockchain.NewBlock(parent, 0, net.Engine.Now(), nil, false)
		if err := net.Publish(0, b); err != nil {
			t.Fatal(err)
		}
		net.Engine.Run(net.Engine.Now() + 10*time.Minute)
		parent = b
	}
	lag := net.LagHistogram()
	if lag.Total() != 200 {
		t.Fatalf("histogram total = %d", lag.Total())
	}
	if frac := float64(lag.Synced) / 200; frac < 0.95 {
		t.Errorf("synced fraction = %v, want >= 0.95 under 10%% failures", frac)
	}
}

func TestDownNodeDoesNotReceive(t *testing.T) {
	net := newTestNetwork(t, 30, Config{FailureRate: 1e-12}, 3)
	net.Nodes[5].Up = false
	b := blockchain.NewBlock(net.Nodes[0].Tree.Genesis(), 0, 0, nil, false)
	if err := net.Publish(0, b); err != nil {
		t.Fatal(err)
	}
	net.Engine.Run(time.Hour)
	if net.Nodes[5].Height() != 0 {
		t.Error("down node advanced its chain")
	}
	if net.Nodes[6].Height() != 1 {
		t.Error("up node did not receive block")
	}
}

func TestLinkPolicyPartitions(t *testing.T) {
	// Split nodes into two halves and block all cross-half links: blocks
	// published in one half must never reach the other.
	const n = 80
	net := newTestNetwork(t, n, Config{FailureRate: 1e-12}, 9)
	cut := func(id NodeID) bool { return int(id) < n/2 }
	net.SetPolicy(func(from, to NodeID, _ time.Duration) bool {
		return cut(from) == cut(to)
	})
	b := blockchain.NewBlock(net.Nodes[0].Tree.Genesis(), 0, 0, nil, false)
	if err := net.Publish(0, b); err != nil {
		t.Fatal(err)
	}
	net.Engine.Run(time.Hour)
	for i := 0; i < n; i++ {
		want := 0
		if cut(NodeID(i)) {
			want = 1
		}
		if net.Nodes[i].Height() != want {
			t.Fatalf("node %d height = %d, want %d", i, net.Nodes[i].Height(), want)
		}
	}
	if net.MsgStats().Blocked == 0 {
		t.Error("no messages were blocked by the partition policy")
	}
}

func TestOrphanHandling(t *testing.T) {
	// Deliver a child block to a node missing its parent: it should stash it,
	// fetch the parent, and end up with both.
	net := newTestNetwork(t, 10, Config{FailureRate: 1e-12}, 5)
	g := net.Nodes[0].Tree.Genesis()
	b1 := blockchain.NewBlock(g, 0, 0, nil, false)
	b2 := blockchain.NewBlock(b1, 0, time.Second, nil, false)
	// Node 0 has both blocks; node 1 receives only the child directly.
	if _, err := net.Nodes[0].Tree.Add(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Nodes[0].Tree.Add(b2); err != nil {
		t.Fatal(err)
	}
	net.handleBlock(1, 0, b2, 0)
	if net.Nodes[1].OrphanCount() != 1 {
		t.Fatalf("orphan count = %d, want 1", net.Nodes[1].OrphanCount())
	}
	net.Engine.Run(time.Hour)
	if net.Nodes[1].Height() != 2 {
		t.Errorf("node 1 height = %d, want 2 after orphan resolution", net.Nodes[1].Height())
	}
	if net.Nodes[1].OrphanCount() != 0 {
		t.Errorf("orphans remain: %d", net.Nodes[1].OrphanCount())
	}
}

func TestCounterfeitBlockDoesNotAdvanceRefTip(t *testing.T) {
	net := newTestNetwork(t, 10, Config{FailureRate: 1e-12}, 5)
	g := net.Nodes[0].Tree.Genesis()
	fake := blockchain.NewBlock(g, 9, 0, nil, true)
	if err := net.Publish(0, fake); err != nil {
		t.Fatal(err)
	}
	if net.RefHeight() != 0 {
		t.Error("counterfeit block advanced the reference tip")
	}
}

func TestPublishErrors(t *testing.T) {
	net := newTestNetwork(t, 10, Config{}, 5)
	if err := net.Publish(0, nil); err == nil {
		t.Error("nil block accepted")
	}
	b := blockchain.NewBlock(net.Nodes[0].Tree.Genesis(), 0, 0, nil, false)
	if err := net.Publish(-1, b); err == nil {
		t.Error("out-of-range origin accepted")
	}
}

func TestLagBuckets(t *testing.T) {
	var lb LagBuckets
	for _, behind := range []int{0, 0, 1, 2, 3, 4, 5, 10, 11, 100} {
		lb.Add(behind)
	}
	if lb.Synced != 2 || lb.Behind1 != 1 || lb.Behind2to4 != 3 || lb.Behind5to10 != 2 || lb.Behind10plus != 2 {
		t.Errorf("buckets = %+v", lb)
	}
	if lb.Total() != 10 {
		t.Errorf("Total = %d", lb.Total())
	}
	if lb.BehindAtLeast(1) != 8 || lb.BehindAtLeast(2) != 7 || lb.BehindAtLeast(5) != 4 || lb.BehindAtLeast(11) != 2 {
		t.Errorf("BehindAtLeast: %d %d %d %d", lb.BehindAtLeast(1), lb.BehindAtLeast(2), lb.BehindAtLeast(5), lb.BehindAtLeast(11))
	}
	if lb.BehindAtLeast(3) != -1 {
		t.Error("unrepresentable threshold should return -1")
	}
}

func TestTrickleSlowerThanDiffusion(t *testing.T) {
	// Ablation sanity: trickle spreading takes longer to reach the whole
	// network than diffusion with comparable parameters.
	reachTime := func(spreading Spreading) time.Duration {
		net := newTestNetwork(t, 100, Config{
			FailureRate:     1e-12,
			Spreading:       spreading,
			MeanRelayDelay:  2 * time.Second,
			TrickleInterval: 10 * time.Second,
		}, 17)
		b := blockchain.NewBlock(net.Nodes[0].Tree.Genesis(), 0, 0, nil, false)
		if err := net.Publish(0, b); err != nil {
			t.Fatal(err)
		}
		step := time.Second
		for now := step; now < time.Hour; now += step {
			net.Engine.Run(now)
			all := true
			for _, node := range net.Nodes {
				if node.Height() != 1 {
					all = false
					break
				}
			}
			if all {
				return now
			}
		}
		t.Fatal("block never reached all nodes")
		return 0
	}
	diff := reachTime(Diffusion)
	trick := reachTime(Trickle)
	if trick <= diff {
		t.Errorf("trickle (%v) should be slower than diffusion (%v)", trick, diff)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, Stats) {
		net := newTestNetwork(t, 50, Config{}, 123)
		parent := net.Nodes[0].Tree.Genesis()
		for h := 1; h <= 3; h++ {
			b := blockchain.NewBlock(parent, 0, net.Engine.Now(), nil, false)
			if err := net.Publish(0, b); err != nil {
				t.Fatal(err)
			}
			net.Engine.Run(net.Engine.Now() + 10*time.Minute)
			parent = b
		}
		synced := net.LagHistogram().Synced
		return synced, net.MsgStats()
	}
	s1, m1 := run()
	s2, m2 := run()
	if s1 != s2 || m1 != m2 {
		t.Errorf("runs with identical seeds diverged: %d/%+v vs %d/%+v", s1, m1, s2, m2)
	}
}
