package p2p

import (
	"time"

	"repro/internal/obs"
)

// ConfigOption configures a gossip Config under construction, mirroring
// the core.New functional-options pattern. The raw Config struct stays the
// underlying representation, so struct-literal call sites remain valid.
type ConfigOption func(*Config)

// WithPeerCount sets the number of outbound peers per node.
func WithPeerCount(n int) ConfigOption { return func(c *Config) { c.PeerCount = n } }

// WithMeanRelayDelay sets the mean exponential per-hop delay (diffusion).
func WithMeanRelayDelay(d time.Duration) ConfigOption {
	return func(c *Config) { c.MeanRelayDelay = d }
}

// WithFailureRate sets the per-message random loss probability.
func WithFailureRate(p float64) ConfigOption {
	return func(c *Config) { c.FailureRate = p }
}

// WithSpreading selects diffusion or trickle propagation.
func WithSpreading(s Spreading) ConfigOption {
	return func(c *Config) { c.Spreading = s }
}

// WithTrickleInterval sets the trickle round length.
func WithTrickleInterval(d time.Duration) ConfigOption {
	return func(c *Config) { c.TrickleInterval = d }
}

// WithRequestTimeout sets the in-flight getdata timeout.
func WithRequestTimeout(d time.Duration) ConfigOption {
	return func(c *Config) { c.RequestTimeout = d }
}

// WithSameASBias sets the locality-biased peering probability.
func WithSameASBias(p float64) ConfigOption {
	return func(c *Config) { c.SameASBias = p }
}

// WithObserver attaches the observability layer.
func WithObserver(o *obs.Observer) ConfigOption {
	return func(c *Config) { c.Obs = o }
}

// WithFaultInjector attaches a fault injector (DESIGN.md §10).
func WithFaultInjector(f FaultInjector) ConfigOption {
	return func(c *Config) { c.Faults = f }
}

// NewConfig assembles a gossip Config from functional options; zero-valued
// fields keep the paper's defaults, exactly as a Config literal would:
//
//	cfg := p2p.NewConfig(p2p.WithPeerCount(16), p2p.WithFailureRate(0.02))
func NewConfig(opts ...ConfigOption) Config {
	var cfg Config
	for _, apply := range opts {
		apply(&cfg)
	}
	return cfg
}
