package p2p

import (
	"testing"
	"time"

	"repro/internal/blockchain"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func benchNetwork(b *testing.B, n int, cfg Config) *Network {
	b.Helper()
	engine := &sim.Engine{}
	rng := stats.NewRand(1)
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = NewNode(NodeID(i), Profile{Family: topology.FamilyIPv4})
	}
	net, err := NewNetwork(engine, nodes, cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkBlockFlood measures one block's full propagation across a
// 200-node network, events included.
func BenchmarkBlockFlood(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := benchNetwork(b, 200, Config{FailureRate: 1e-9})
		blk := blockchain.NewBlock(net.Nodes[0].Tree.Genesis(), 0, 0, nil, false)
		b.StartTimer()
		if err := net.Publish(0, blk); err != nil {
			b.Fatal(err)
		}
		net.Engine.Run(time.Hour)
	}
}

// BenchmarkConnect measures peer-graph construction for a 2,000-node
// network.
func BenchmarkConnect(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchNetwork(b, 2000, Config{})
	}
}

// BenchmarkConnectBiased measures locality-biased construction.
func BenchmarkConnectBiased(b *testing.B) {
	b.ReportAllocs()
	engine := &sim.Engine{}
	rng := stats.NewRand(1)
	nodes := make([]*Node, 2000)
	for i := range nodes {
		nodes[i] = NewNode(NodeID(i), Profile{ASN: topology.ASN(i % 40)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewNetwork(engine, nodes, Config{SameASBias: 0.8}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteadyStateMining measures a mining hour on a 200-node network
// (the inner loop of every attack experiment).
func BenchmarkSteadyStateMining(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := benchNetwork(b, 200, Config{})
		parent := net.Nodes[0].Tree.Genesis()
		b.StartTimer()
		for h := 1; h <= 6; h++ {
			blk := blockchain.NewBlock(parent, 0, net.Engine.Now(), nil, false)
			if err := net.Publish(0, blk); err != nil {
				b.Fatal(err)
			}
			net.Engine.Run(net.Engine.Now() + 10*time.Minute)
			parent = blk
		}
	}
}
