package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/blockchain"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Spreading selects the propagation protocol. Bitcoin used trickle
// spreading until 2015 and diffusion since; the paper's timing model is
// built on diffusion's independent exponential delays, and the ablation
// bench compares the two.
type Spreading int

// Spreading modes.
const (
	SpreadingInvalid Spreading = iota
	// Diffusion relays each message with an independent exponential delay.
	Diffusion
	// Trickle relays in fixed rounds: each hop waits a uniformly chosen
	// 1-4 multiples of TrickleInterval, approximating the legacy staged
	// flooding.
	Trickle
)

// Config parameterizes a gossip network. Zero values are replaced by the
// defaults the paper uses.
type Config struct {
	// PeerCount is the number of outbound peers per node. Default 8 ("the
	// default number of Bitcoin peers is 8, which is used in our
	// simulation").
	PeerCount int
	// MeanRelayDelay is the mean of the exponential per-hop delay under
	// diffusion. Default 2s, consistent with measured Bitcoin relay latency
	// (Decker & Wattenhofer report medians of a few seconds).
	MeanRelayDelay time.Duration
	// FailureRate is the probability an individual message is lost.
	// Default 0.10 ("peer communication failure rate is ... typically
	// around 10 percent").
	FailureRate float64
	// Spreading selects diffusion (default) or trickle.
	Spreading Spreading
	// TrickleInterval is the trickle round length. Default 10s.
	TrickleInterval time.Duration
	// RequestTimeout is how long a node waits on an in-flight getdata
	// before a fresh inv may trigger a re-request. Default 30s.
	RequestTimeout time.Duration
	// SameASBias is the probability an outbound peer slot is filled with a
	// node from the same AS when one exists (locality-biased peering; the
	// clustering approaches of Fadhil et al. and Sallal et al. the paper
	// cites reduce latency this way, at the cost of partitionability —
	// §V-B: "this may increase the potential for partitioning attacks").
	// Zero (the default) selects peers uniformly, which matches the
	// paper's measurement that peers "are distributed, and can be
	// associated with any AS".
	SameASBias float64
	// Obs attaches the observability layer (DESIGN.md §9). Nil — the
	// default — disables all instrumentation; an instrumented run produces
	// byte-identical simulation output to an uninstrumented one.
	Obs *obs.Observer
	// Faults attaches a fault injector (DESIGN.md §10) consulted for every
	// message after the attacker link policy and before the random failure
	// model. Nil — the default — injects nothing with byte-identical
	// output; internal/faults provides the implementation.
	Faults FaultInjector
	// ShardOf assigns each node to a shard for cross-shard delivery
	// accounting (DESIGN.md §13). When non-nil, a message whose endpoints
	// map to different shards picks up CrossShardDelay on top of its normal
	// hop delay and is tallied in Stats.CrossShard and the
	// p2p.cross_shard_msgs counter. The check draws no randomness, so a nil
	// ShardOf — the default — is byte-identical to a build without the
	// seam, and a non-nil ShardOf with zero delay only adds accounting.
	ShardOf func(NodeID) int
	// CrossShardDelay is the extra latency of a hop crossing a shard
	// boundary; consulted only when ShardOf is set. It models the
	// serialization cost of leaving a shard's memory domain.
	CrossShardDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.PeerCount == 0 {
		c.PeerCount = 8
	}
	if c.MeanRelayDelay == 0 {
		c.MeanRelayDelay = 2 * time.Second
	}
	if c.FailureRate == 0 {
		c.FailureRate = 0.10
	}
	if c.Spreading == SpreadingInvalid {
		c.Spreading = Diffusion
	}
	if c.TrickleInterval == 0 {
		c.TrickleInterval = 10 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// Validate rejects nonsensical parameters.
func (c Config) Validate() error {
	if c.PeerCount < 0 {
		return fmt.Errorf("p2p: negative peer count %d", c.PeerCount)
	}
	if c.FailureRate < 0 || c.FailureRate >= 1 {
		return fmt.Errorf("p2p: failure rate %v outside [0,1)", c.FailureRate)
	}
	if c.MeanRelayDelay < 0 {
		return fmt.Errorf("p2p: negative relay delay %v", c.MeanRelayDelay)
	}
	if c.SameASBias < 0 || c.SameASBias > 1 {
		return fmt.Errorf("p2p: same-AS bias %v outside [0,1]", c.SameASBias)
	}
	if c.CrossShardDelay < 0 {
		return fmt.Errorf("p2p: negative cross-shard delay %v", c.CrossShardDelay)
	}
	if c.CrossShardDelay > 0 && c.ShardOf == nil {
		return errors.New("p2p: CrossShardDelay needs ShardOf")
	}
	return nil
}

// LinkPolicy decides whether a message from one node can reach another at
// the given virtual time. Attacks install policies: a BGP partition blocks
// links crossing the cut; an eclipse blocks everything except
// attacker-controlled links. A nil policy allows everything.
type LinkPolicy func(from, to NodeID, now time.Duration) bool

// Stats counts message outcomes for a network run.
type Stats struct {
	Sent       int // messages scheduled
	Dropped    int // lost to random failure
	Blocked    int // denied by the link policy
	Faulted    int // discarded by the fault injector
	CrossShard int // messages crossing a shard boundary (ShardOf set)
}

// Network couples nodes to the event engine and implements the gossip
// protocol over them.
type Network struct {
	Engine *sim.Engine
	Nodes  []*Node

	cfg Config
	// lambda is the precomputed diffusion delay rate 1/MeanRelayDelay, so
	// the per-message hop sampler does no division on the hot path.
	lambda   float64
	rng      *rand.Rand
	policy   LinkPolicy
	adj      [][]NodeID // undirected adjacency (out ∪ in edges)
	refTip   *blockchain.Block
	msgStats Stats
	// bypass holds directed pairs exempt from the link policy: freshly
	// opened connections that an eclipse of the victim's original peers
	// cannot intercept (BlockAware's recovery path).
	bypass map[[2]NodeID]bool
	obs    netObs
	// hashIdx interns every block hash the network handles to a dense
	// index, assigned in first-reference order. The per-node request
	// ledger (Node.reqAt) is indexed by it, so the relay hot path dedups
	// with slice loads: one intern probe when a hash first enters a relay
	// fan-out, instead of a map operation per node per message.
	hashIdx map[blockchain.Hash]int32
	// pendingBuf is the reusable work queue of attachAndRelay. Delivery is
	// single-threaded and attachAndRelay never re-enters (sends only
	// schedule future events), so one buffer per network suffices.
	pendingBuf []*blockchain.Block
}

// netObs holds the network's pre-resolved instrument handles so the hot
// path never touches the registry map: with observability off every field
// is nil and each update is a single nil check (DESIGN.md §9).
type netObs struct {
	trace *obs.Tracer
	// sent/deduped are indexed by MsgType (inv, getdata, block).
	sent       [4]*obs.Counter
	deduped    [4]*obs.Counter
	dropped    *obs.Counter
	blocked    *obs.Counter
	faulted    *obs.Counter
	crossShard *obs.Counter
	retries    *obs.Counter
	orphans    *obs.Counter
	accept     *obs.Counter
	reorgs     *obs.Counter
	revTxs     *obs.Counter
}

// initObs resolves the instrument handles once at construction.
func (n *Network) initObs(o *obs.Observer) {
	reg := o.Registry()
	if reg == nil && o.Tracer() == nil {
		return
	}
	n.obs.trace = o.Tracer()
	for _, t := range []MsgType{MsgInv, MsgGetData, MsgBlock} {
		n.obs.sent[t] = reg.Counter("p2p.msgs_sent", obs.L("type", t.String()))
		n.obs.deduped[t] = reg.Counter("p2p.msgs_deduped", obs.L("type", t.String()))
	}
	n.obs.dropped = reg.Counter("p2p.msgs_dropped")
	n.obs.blocked = reg.Counter("p2p.msgs_blocked")
	// Only a fault-injecting run registers the faulted counter, so the
	// faults-off metrics render (and its golden) is untouched.
	if n.cfg.Faults != nil {
		n.obs.faulted = reg.Counter("p2p.msgs_faulted")
	}
	// Likewise, only a sharded network registers the cross-shard counter:
	// the unsharded registry render stays byte-identical.
	if n.cfg.ShardOf != nil {
		n.obs.crossShard = reg.Counter("p2p.cross_shard_msgs")
	}
	n.obs.retries = reg.Counter("p2p.getdata_retries")
	n.obs.orphans = reg.Counter("p2p.orphans_stashed")
	n.obs.accept = reg.Counter("p2p.blocks_accepted")
	n.obs.reorgs = reg.Counter("p2p.reorgs")
	n.obs.revTxs = reg.Counter("p2p.reversed_txs")
}

// NewNetwork builds a network over the given nodes and wires a random
// peer graph. The engine and rng are owned by the caller so several
// subsystems can share one virtual clock and one seed.
func NewNetwork(engine *sim.Engine, nodes []*Node, cfg Config, rng *rand.Rand) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if engine == nil || rng == nil {
		return nil, errors.New("p2p: nil engine or rng")
	}
	if len(nodes) < 2 {
		return nil, errors.New("p2p: need at least two nodes")
	}
	n := &Network{
		Engine:  engine,
		Nodes:   nodes,
		cfg:     cfg,
		lambda:  1 / cfg.MeanRelayDelay.Seconds(),
		rng:     rng,
		refTip:  blockchain.Genesis(),
		hashIdx: map[blockchain.Hash]int32{},
	}
	n.initObs(cfg.Obs)
	n.connect()
	return n, nil
}

// NewNetworkWithGraph builds a network over an explicit outbound-peer
// graph instead of random selection. outbound[i] lists node i's outbound
// peers; relay still runs over the undirected closure (out ∪ in), as in
// Bitcoin. Experiments use this to construct structured topologies (e.g.
// an AS whose interior nodes relay exclusively through border nodes, the
// precondition of the §V-A cascade effect).
func NewNetworkWithGraph(engine *sim.Engine, nodes []*Node, cfg Config, rng *rand.Rand, outbound [][]NodeID) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if engine == nil || rng == nil {
		return nil, errors.New("p2p: nil engine or rng")
	}
	if len(nodes) < 2 {
		return nil, errors.New("p2p: need at least two nodes")
	}
	if len(outbound) != len(nodes) {
		return nil, fmt.Errorf("p2p: graph has %d rows for %d nodes", len(outbound), len(nodes))
	}
	n := &Network{
		Engine:  engine,
		Nodes:   nodes,
		cfg:     cfg,
		lambda:  1 / cfg.MeanRelayDelay.Seconds(),
		rng:     rng,
		refTip:  blockchain.Genesis(),
		hashIdx: map[blockchain.Hash]int32{},
	}
	n.initObs(cfg.Obs)
	adjSet := make([]map[NodeID]bool, len(nodes))
	for i := range adjSet {
		adjSet[i] = map[NodeID]bool{}
	}
	for i, peers := range outbound {
		nodes[i].Peers = nodes[i].Peers[:0]
		for _, p := range peers {
			if int(p) < 0 || int(p) >= len(nodes) || int(p) == i {
				return nil, fmt.Errorf("p2p: node %d has invalid peer %d", i, p)
			}
			nodes[i].Peers = append(nodes[i].Peers, p)
			adjSet[i][p] = true
			adjSet[p][NodeID(i)] = true
		}
	}
	n.adj = make([][]NodeID, len(nodes))
	for i, set := range adjSet {
		for p := range set {
			n.adj[i] = append(n.adj[i], p)
		}
		sortNodeIDs(n.adj[i])
	}
	return n, nil
}

// connect assigns each node PeerCount distinct random outbound peers and
// builds the undirected adjacency used for relay (Bitcoin gossips over both
// inbound and outbound connections). The paper notes peers are distributed
// across ASes rather than clustered, so uniform random selection is the
// faithful model.
func (n *Network) connect() {
	count := n.cfg.PeerCount
	if count > len(n.Nodes)-1 {
		count = len(n.Nodes) - 1
	}
	adjSet := make([]map[NodeID]bool, len(n.Nodes))
	for i := range adjSet {
		adjSet[i] = make(map[NodeID]bool, count*2)
	}
	// Pre-index nodes by AS for locality-biased selection.
	var byAS map[topology.ASN][]NodeID
	if n.cfg.SameASBias > 0 {
		byAS = map[topology.ASN][]NodeID{}
		for i, node := range n.Nodes {
			byAS[node.Profile.ASN] = append(byAS[node.Profile.ASN], NodeID(i))
		}
	}
	for i, node := range n.Nodes {
		node.Peers = node.Peers[:0]
		// Deduplicate against this node's own outbound picks only: an
		// outbound connection may legitimately coexist with an inbound one
		// from the same peer, and requiring distinctness against inbound
		// edges can leave too few candidates on small networks.
		picked := make(map[NodeID]bool, count)
		sameAS := byAS[node.Profile.ASN]
		for attempts := 0; len(node.Peers) < count; attempts++ {
			var p NodeID
			// Locality bias: prefer a same-AS peer when configured and
			// available. Bounded attempts keep termination guaranteed when
			// the same-AS pool is smaller than the peer budget.
			if n.cfg.SameASBias > 0 && len(sameAS) > 1 && attempts < count*16 &&
				n.rng.Float64() < n.cfg.SameASBias {
				p = sameAS[n.rng.Intn(len(sameAS))]
			} else {
				p = NodeID(n.rng.Intn(len(n.Nodes)))
			}
			if int(p) == i || picked[p] {
				continue
			}
			picked[p] = true
			node.Peers = append(node.Peers, p)
			adjSet[i][p] = true
			adjSet[p][NodeID(i)] = true
		}
	}
	n.adj = make([][]NodeID, len(n.Nodes))
	for i, set := range adjSet {
		for p := range set {
			n.adj[i] = append(n.adj[i], p)
		}
		// Deterministic order: sort ascending.
		sortNodeIDs(n.adj[i])
	}
}

func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Neighbors returns the relay neighbors of a node (outbound ∪ inbound).
func (n *Network) Neighbors(id NodeID) []NodeID {
	return n.adj[id]
}

// SetPolicy installs (or clears, with nil) the attacker link policy.
func (n *Network) SetPolicy(p LinkPolicy) {
	n.obs.trace.Emit(int64(n.Engine.Now()), "p2p", "policy",
		obs.Fbool("installed", p != nil))
	n.policy = p
}

// AddBypassLink opens a policy-exempt connection between two nodes (both
// directions). It models a fresh outbound connection that the attacker's
// control of the victim's original peers cannot intercept.
func (n *Network) AddBypassLink(a, b NodeID) {
	if n.bypass == nil {
		n.bypass = map[[2]NodeID]bool{}
	}
	n.bypass[[2]NodeID{a, b}] = true
	n.bypass[[2]NodeID{b, a}] = true
}

// ClearBypassLinks removes all policy-exempt connections.
func (n *Network) ClearBypassLinks() { n.bypass = nil }

// Config returns the effective configuration.
func (n *Network) Config() Config { return n.cfg }

// MsgStats returns message accounting so far.
func (n *Network) MsgStats() Stats { return n.msgStats }

// RefTip returns the highest block ever published to the network — the
// global chain tip nodes are measured against ("how many blocks behind").
func (n *Network) RefTip() *blockchain.Block { return n.refTip }

// RefHeight returns the height of the global reference tip.
func (n *Network) RefHeight() int { return n.refTip.Height }

// hopDelay samples one relay hop's latency.
func (n *Network) hopDelay() time.Duration {
	switch n.cfg.Spreading {
	case Trickle:
		rounds := 1 + n.rng.Intn(4)
		return time.Duration(rounds) * n.cfg.TrickleInterval
	default:
		return time.Duration(stats.Exponential(n.rng, n.lambda) * float64(time.Second))
	}
}

// send schedules delivery of a message, applying the link policy and the
// random failure model.
func (n *Network) send(m Message) {
	n.msgStats.Sent++
	n.obs.sent[m.Type].Inc()
	if n.policy != nil && !n.bypass[[2]NodeID{m.From, m.To}] && !n.policy(m.From, m.To, n.Engine.Now()) {
		n.msgStats.Blocked++
		n.obs.blocked.Inc()
		return
	}
	// The shard seam draws no randomness, so a nil ShardOf leaves every
	// downstream draw — and therefore the whole run — byte-identical.
	var extraDelay time.Duration
	if n.cfg.ShardOf != nil && n.cfg.ShardOf(m.From) != n.cfg.ShardOf(m.To) {
		n.msgStats.CrossShard++
		n.obs.crossShard.Inc()
		extraDelay = n.cfg.CrossShardDelay
	}
	if n.cfg.Faults != nil {
		v := n.cfg.Faults.Intercept(m.From, m.To, n.Engine.Now())
		if v.Drop {
			n.msgStats.Faulted++
			n.obs.faulted.Inc()
			return
		}
		if v.Duplicate {
			n.scheduleDelivery(m, extraDelay+v.ExtraDelay+n.hopDelay())
		}
		extraDelay += v.ExtraDelay
	}
	if stats.Bernoulli(n.rng, n.cfg.FailureRate) {
		n.msgStats.Dropped++
		n.obs.dropped.Inc()
		return
	}
	n.scheduleDelivery(m, extraDelay+n.hopDelay())
}

// intern returns the dense index of a block hash, assigning the next free
// index on first reference.
func (n *Network) intern(h blockchain.Hash) int32 {
	if idx, ok := n.hashIdx[h]; ok {
		return idx
	}
	idx := int32(len(n.hashIdx))
	n.hashIdx[h] = idx
	return idx
}

// evRetry is the MsgEvent kind for an armed getdata retry; the wire
// messages use their MsgType value as the kind.
const evRetry = 0x80

// scheduleDelivery arms one delivery of the message after the given delay,
// as a typed engine event — no closure, no per-message allocation. Even a
// block delivery carries no pointer: chain trees are append-only, so the
// block is re-resolved from the sender's tree at arrival time — the same
// *Block the sender held at send time (DESIGN.md §12). Scheduling in the
// past cannot happen (delay >= 0); an error here is a programming bug, so
// surface it loudly in simulation runs.
func (n *Network) scheduleDelivery(m Message, delay time.Duration) {
	err := n.Engine.AfterMsg(delay, n, sim.MsgEvent{
		Kind: uint8(m.Type), From: int32(m.From), To: int32(m.To),
		Idx: m.Idx, Key: uint64(m.Hash),
	})
	if err != nil {
		panic(fmt.Sprintf("p2p: schedule: %v", err))
	}
}

// HandleMsg dispatches a typed engine event: a wire message at its arrival
// time, or a request-retry check at its deadline. It implements sim.MsgSink.
func (n *Network) HandleMsg(now time.Duration, ev sim.MsgEvent) {
	if ev.Kind == evRetry {
		// A getdata fired earlier did not produce the block within
		// RequestTimeout: re-request from the same provider.
		node := n.Nodes[ev.To]
		h := blockchain.Hash(ev.Key)
		if !node.Up || node.Tree.Has(h) {
			return
		}
		node.markRequested(ev.Idx, now, 0)
		n.requestBlock(NodeID(ev.To), NodeID(ev.From), h, ev.Idx, int(ev.Attempt))
		return
	}
	to := n.Nodes[ev.To]
	if !to.Up {
		return
	}
	switch MsgType(ev.Kind) {
	case MsgInv:
		// Dedup order matters for speed, not outcome: the bitset covers
		// accepted blocks, the request ledger covers the inv-to-download
		// window (the common repeat-inv case, a slice load), and the tree
		// probe is the slow authoritative fallback for blocks that entered
		// the tree without passing the relay. The disjunction's value is
		// identical in any order; checking the ledger before the tree only
		// adds a request mark for already-held blocks, which no later path
		// consults (a held block is never re-requested).
		if to.hasIdx(ev.Idx) || to.markRequested(ev.Idx, now, n.cfg.RequestTimeout) || to.Tree.Has(blockchain.Hash(ev.Key)) {
			n.obs.deduped[MsgInv].Inc()
			return
		}
		n.requestBlock(NodeID(ev.To), NodeID(ev.From), blockchain.Hash(ev.Key), ev.Idx, 0)
	case MsgGetData:
		// hasIdx fronts the tree's map probe: a set bit proves the serving
		// node accepted the block (acceptance is what sets it), and the
		// authoritative lookup only runs for blocks that entered the tree
		// without passing the relay.
		if to.hasIdx(ev.Idx) || to.Tree.Has(blockchain.Hash(ev.Key)) {
			n.send(Message{Type: MsgBlock, From: NodeID(ev.To), To: NodeID(ev.From),
				Hash: blockchain.Hash(ev.Key), Idx: ev.Idx})
		}
	case MsgBlock:
		// The sender's tree is append-only, so the block it resolved at
		// send time is still there — same pointer, no payload carried.
		if b, ok := n.Nodes[ev.From].Tree.Get(blockchain.Hash(ev.Key)); ok {
			n.handleBlock(NodeID(ev.To), NodeID(ev.From), b, now)
		}
	}
}

// handleBlock adds a received block to a node's view. A block with an
// unknown parent is stashed in the orphan pool and the parent is requested
// from the sender (classic pre-headers Bitcoin orphan handling). Newly
// attached blocks — including any orphans they unblock — are announced to
// the node's neighbors.
func (n *Network) handleBlock(id, from NodeID, b *blockchain.Block, now time.Duration) {
	node := n.Nodes[id]
	if !node.Up || b == nil {
		return
	}
	if !node.Tree.Has(b.Parent) {
		node.AddOrphan(b.Parent, b)
		n.obs.orphans.Inc()
		// Walk back through already-stashed orphans to the deepest missing
		// ancestor, so that each recovery attempt extends earlier progress
		// instead of re-fetching the whole gap (with lossy links a long
		// linear re-fetch would almost never complete).
		missing := b.Parent
		for {
			o, ok := node.OrphanWithHash(missing)
			if !ok {
				break
			}
			if node.Tree.Has(o.Parent) {
				// The chain is actually complete: attach from its base.
				n.attachAndRelay(id, o, now)
				return
			}
			missing = o.Parent
		}
		if idx := n.intern(missing); !node.markRequested(idx, now, n.cfg.RequestTimeout) {
			n.requestBlock(id, from, missing, idx, 0)
		}
		return
	}
	n.attachAndRelay(id, b, now)
}

// maxRequestRetries bounds how many times a node re-requests a block whose
// download stalled (Bitcoin's block-download timeout and peer rotation play
// the same role).
const maxRequestRetries = 5

// requestBlock sends a getdata and arms a retry: if the block has not
// arrived within RequestTimeout, the request is re-sent to the same
// provider, up to maxRequestRetries times. Without retries a single lost
// message would strand a node one block behind until the next block's
// arrival happened to heal it — and forever, for the newest block. The
// retry rides as a typed evRetry event rather than a closure.
func (n *Network) requestBlock(to, provider NodeID, h blockchain.Hash, idx int32, attempt int) {
	if attempt > 0 {
		n.obs.retries.Inc()
	}
	n.send(Message{Type: MsgGetData, From: to, To: provider, Hash: h, Idx: idx})
	if attempt >= maxRequestRetries {
		return
	}
	err := n.Engine.AfterMsg(n.cfg.RequestTimeout, n, sim.MsgEvent{
		Kind: evRetry, Attempt: uint8(attempt + 1),
		From: int32(provider), To: int32(to), Idx: idx, Key: uint64(h),
	})
	if err != nil {
		panic(fmt.Sprintf("p2p: schedule retry: %v", err))
	}
}

// attachAndRelay attaches a block whose parent is present, drains any
// orphans that were waiting on it (transitively), and relays inv messages
// for everything newly accepted.
func (n *Network) attachAndRelay(id NodeID, b *blockchain.Block, now time.Duration) {
	node := n.Nodes[id]
	pending := append(n.pendingBuf[:0], b)
	for k := 0; k < len(pending); k++ {
		next := pending[k]
		reorgsBefore, reversedBefore := node.ReorgCount, node.ReversedTxs
		isNew, err := node.AcceptBlock(next, now)
		if err != nil || !isNew {
			continue
		}
		n.obs.accept.Inc()
		if d := node.ReorgCount - reorgsBefore; d > 0 {
			reversed := node.ReversedTxs - reversedBefore
			n.obs.reorgs.Add(uint64(d))
			n.obs.revTxs.Add(uint64(reversed))
			n.obs.trace.Emit(int64(now), "p2p", "reorg",
				obs.Fint("node", int64(id)),
				obs.Fint("height", int64(next.Height)),
				obs.Fint("reversed_txs", int64(reversed)),
				obs.Fbool("counterfeit", next.Counterfeit))
		}
		// One intern for the whole inv fan-out.
		idx := n.intern(next.Hash)
		node.setHave(idx)
		for _, peer := range n.adj[id] {
			n.send(Message{Type: MsgInv, From: id, To: peer, Hash: next.Hash, Idx: idx})
		}
		pending = append(pending, node.TakeOrphans(next.Hash)...)
	}
	n.pendingBuf = pending[:0]
}

// Publish injects a freshly mined block at the origin node and starts its
// propagation. It also advances the global reference tip if the block
// extends the highest known chain.
func (n *Network) Publish(origin NodeID, b *blockchain.Block) error {
	if b == nil {
		return errors.New("p2p: nil block")
	}
	if int(origin) < 0 || int(origin) >= len(n.Nodes) {
		return fmt.Errorf("p2p: origin %d out of range", origin)
	}
	if b.Height > n.refTip.Height && !b.Counterfeit {
		n.refTip = b
	}
	n.obs.trace.Emit(int64(n.Engine.Now()), "p2p", "block_published",
		obs.Fint("origin", int64(origin)),
		obs.Fint("height", int64(b.Height)),
		obs.Fbool("counterfeit", b.Counterfeit))
	n.attachAndRelay(origin, b, n.Engine.Now())
	return nil
}

// InjectBlock delivers a block directly to a node after a delay, bypassing
// both the link policy and the failure model. It models an adversary's own
// connection to a victim (the temporal attacker of §V-B "establishes
// connections with nodes" and feeds them blocks directly). Orphan-recovery
// requests triggered by the injected block are addressed to the given
// responder node.
func (n *Network) InjectBlock(to, responder NodeID, b *blockchain.Block, delay time.Duration) error {
	if b == nil {
		return errors.New("p2p: nil block")
	}
	if int(to) < 0 || int(to) >= len(n.Nodes) || int(responder) < 0 || int(responder) >= len(n.Nodes) {
		return fmt.Errorf("p2p: inject target %d/%d out of range", to, responder)
	}
	return n.Engine.After(delay, func(now time.Duration) {
		n.handleBlock(to, responder, b, now)
	})
}

// OfferTip sends an inv for from's current best tip to another node. The
// attack executors use it to restart propagation into a released partition:
// inv messages are only generated on novelty, so a healed cut needs an
// explicit re-offer (real nodes do the equivalent via getheaders on
// reconnection).
func (n *Network) OfferTip(from, to NodeID) {
	tip := n.Nodes[from].Tree.Tip()
	if tip.Height == 0 {
		return
	}
	n.send(Message{Type: MsgInv, From: from, To: to, Hash: tip.Hash, Idx: n.intern(tip.Hash)})
}

// LagHistogram buckets all up nodes by how many blocks behind the reference
// tip they are, using the paper's Figure 6 buckets: 0 (synced), 1, 2-4,
// 5-10, >10.
func (n *Network) LagHistogram() LagBuckets {
	var lb LagBuckets
	ref := n.RefHeight()
	for _, node := range n.Nodes {
		if !node.Up {
			continue
		}
		lb.Add(node.BlocksBehind(ref))
	}
	return lb
}

// LagBuckets are the stacked-series buckets of Figure 6: nodes that are up
// to date, 1 block behind, 2-4, 5-10, and more than 10 blocks behind.
type LagBuckets struct {
	Synced       int
	Behind1      int
	Behind2to4   int
	Behind5to10  int
	Behind10plus int
}

// Add buckets one node's lag.
func (lb *LagBuckets) Add(behind int) {
	switch {
	case behind <= 0:
		lb.Synced++
	case behind == 1:
		lb.Behind1++
	case behind <= 4:
		lb.Behind2to4++
	case behind <= 10:
		lb.Behind5to10++
	default:
		lb.Behind10plus++
	}
}

// Total returns the number of nodes counted.
func (lb LagBuckets) Total() int {
	return lb.Synced + lb.Behind1 + lb.Behind2to4 + lb.Behind5to10 + lb.Behind10plus
}

// BehindAtLeast returns how many counted nodes are at least k blocks behind,
// for k in {1, 2, 5, 11}; other thresholds are not representable from the
// buckets and return -1.
func (lb LagBuckets) BehindAtLeast(k int) int {
	switch k {
	case 1:
		return lb.Behind1 + lb.Behind2to4 + lb.Behind5to10 + lb.Behind10plus
	case 2:
		return lb.Behind2to4 + lb.Behind5to10 + lb.Behind10plus
	case 5:
		return lb.Behind5to10 + lb.Behind10plus
	case 11:
		return lb.Behind10plus
	default:
		return -1
	}
}
