// Package stats provides the numeric plumbing shared by every other package
// in this repository: deterministic random sources, descriptive statistics,
// empirical distributions, samplers for the stochastic processes the paper
// models (exponential diffusion delays, Poisson block arrivals, heavy-tailed
// AS populations), and small numeric utilities (log-binomial coefficients,
// monotone bisection) used by the temporal-attack timing bound.
//
// All functions are pure or operate on explicit *rand.Rand sources so that
// experiments are reproducible from a seed.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics reported in the paper's tables
// (e.g. Table I reports mean and standard deviation of link speed and of the
// latency and uptime indices).
type Summary struct {
	Count  int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary.
// The standard deviation is the population standard deviation, matching how
// the paper reports σ over a full network snapshot rather than a sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	return Summarize(xs).Std
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns an error if xs is empty or
// p is out of range.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// LogChoose returns ln(C(n, k)), the natural log of the binomial
// coefficient. It is used by the temporal-attack union bound (Eq. 5 of the
// paper), where C(T, m) overflows any integer type for realistic T.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	lgN, _ := math.Lgamma(float64(n) + 1)
	lgK, _ := math.Lgamma(float64(k) + 1)
	lgNK, _ := math.Lgamma(float64(n-k) + 1)
	return lgN - lgK - lgNK
}

// BisectMinInt returns the smallest integer x in [lo, hi] for which pred(x)
// is true, assuming pred is monotone (false…false true…true). It returns
// hi+1 if pred is false on the whole interval. The paper uses this to invert
// the monotone bound b(m, T) in T (Table VI).
func BisectMinInt(lo, hi int, pred func(int) bool) int {
	for lo < hi {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == hi && pred(lo) {
		return lo
	}
	return hi + 1
}

// MeanCI95 returns the sample mean of xs and the half-width of its 95%
// normal-approximation confidence interval (1.96 · s/√n, with the unbiased
// sample standard deviation). Monte-Carlo ensembles report their headline
// rates as mean ± half. Fewer than two samples yield a zero half-width.
func MeanCI95(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, 1.96 * math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
}

// Clamp bounds x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
