package stats

import (
	"math"
	"math/rand"
)

// Beta samples a Beta(alpha, beta) variate using Jöhnk's algorithm, which is
// efficient precisely for the small shape parameters that arise here (the
// paper's latency/uptime indices live on [0,1] with standard deviations
// close to the Bernoulli limit, i.e. strongly bimodal Betas).
func Beta(r *rand.Rand, alpha, beta float64) float64 {
	if alpha <= 0 || beta <= 0 {
		return 0
	}
	for i := 0; i < 1024; i++ {
		u := math.Pow(r.Float64(), 1/alpha)
		v := math.Pow(r.Float64(), 1/beta)
		if s := u + v; s > 0 && s <= 1 {
			return u / s
		}
	}
	// Pathological shapes: fall back to the mean.
	return alpha / (alpha + beta)
}

// BetaFromMoments samples a [0,1] variate with the given mean and standard
// deviation by matching Beta moments. If the requested variance is at or
// beyond the Bernoulli bound mean·(1-mean) (not representable by a Beta),
// it degrades to a Bernoulli(mean) sample, which attains that bound.
func BetaFromMoments(r *rand.Rand, mean, sd float64) float64 {
	if mean <= 0 {
		return 0
	}
	if mean >= 1 {
		return 1
	}
	maxVar := mean * (1 - mean)
	v := sd * sd
	if v <= 0 {
		return mean
	}
	if v >= maxVar*0.999 {
		if Bernoulli(r, mean) {
			return 1
		}
		return 0
	}
	nu := maxVar/v - 1
	return Beta(r, mean*nu, (1-mean)*nu)
}
