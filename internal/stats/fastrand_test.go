package stats

import (
	"math/rand"
	"testing"
)

// TestFastMatchesMathRand drives a Fast and a rand.New(rand.NewSource) with
// an identical randomized op sequence across many seeds and demands
// value-identical output at every step. This is the proof that the SoA hot
// loops, which swap *rand.Rand for Fast, keep the exact draw order the
// byte-identity goldens pin.
func TestFastMatchesMathRand(t *testing.T) {
	meta := rand.New(rand.NewSource(99))
	for _, seed := range []int64{0, 1, -1, 7, 42, 1<<62 + 12345, -987654321, 5577006791947779410} {
		ref := rand.New(rand.NewSource(seed))
		f := NewFast(seed)
		for step := 0; step < 5000; step++ {
			switch op := meta.Intn(7); op {
			case 0:
				if got, want := f.Uint64(), ref.Uint64(); got != want {
					t.Fatalf("seed %d step %d Uint64: got %d want %d", seed, step, got, want)
				}
			case 1:
				if got, want := f.Int63(), ref.Int63(); got != want {
					t.Fatalf("seed %d step %d Int63: got %d want %d", seed, step, got, want)
				}
			case 2:
				if got, want := f.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d step %d Float64: got %v want %v", seed, step, got, want)
				}
			case 3:
				if got, want := f.Int31(), ref.Int31(); got != want {
					t.Fatalf("seed %d step %d Int31: got %d want %d", seed, step, got, want)
				}
			case 4:
				n := int32(1 + meta.Intn(100))
				if got, want := f.Int31n(n), ref.Int31n(n); got != want {
					t.Fatalf("seed %d step %d Int31n(%d): got %d want %d", seed, step, n, got, want)
				}
			case 5:
				// Mix power-of-two (mask path) and odd sizes (rejection path).
				n := 1 << uint(meta.Intn(20))
				if meta.Intn(2) == 0 {
					n += meta.Intn(n)
				}
				if got, want := f.Intn(n), ref.Intn(n); got != want {
					t.Fatalf("seed %d step %d Intn(%d): got %d want %d", seed, step, n, got, want)
				}
			case 6:
				n := int64(3)<<40 + int64(meta.Intn(1000))
				if got, want := f.Int63n(n), ref.Int63n(n); got != want {
					t.Fatalf("seed %d step %d Int63n(%d): got %d want %d", seed, step, n, got, want)
				}
			}
		}
	}
}

// TestFastSeedReuse checks that re-seeding a used generator restarts the
// stream exactly — the property Grid.Reset relies on for pooled reuse.
func TestFastSeedReuse(t *testing.T) {
	f := NewFast(123)
	var first [32]uint64
	for i := range first {
		first[i] = f.Uint64()
	}
	for i := 0; i < 1000; i++ { // scramble internal state
		f.Uint64()
	}
	f.Seed(123)
	for i := range first {
		if got := f.Uint64(); got != first[i] {
			t.Fatalf("draw %d after reseed: got %d want %d", i, got, first[i])
		}
	}
	f.Seed(456)
	ref := rand.New(rand.NewSource(456))
	for i := 0; i < 100; i++ {
		if got, want := f.Uint64(), ref.Uint64(); got != want {
			t.Fatalf("draw %d after cross-seed: got %d want %d", i, got, want)
		}
	}
}

// TestFastPanics pins the invalid-argument behavior to math/rand's.
func TestFastPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Intn":   func() { NewFast(1).Intn(0) },
		"Int31n": func() { NewFast(1).Int31n(-3) },
		"Int63n": func() { NewFast(1).Int63n(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(<=0): expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkFastFloat64(b *testing.B) {
	f := NewFast(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.Float64()
	}
	_ = sink
}

func BenchmarkMathRandFloat64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
