package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want Summary
	}{
		{
			name: "empty",
			xs:   nil,
			want: Summary{},
		},
		{
			name: "single",
			xs:   []float64{5},
			want: Summary{Count: 1, Mean: 5, Std: 0, Min: 5, Max: 5, Median: 5},
		},
		{
			name: "symmetric",
			xs:   []float64{1, 2, 3, 4, 5},
			want: Summary{Count: 5, Mean: 3, Std: math.Sqrt(2), Min: 1, Max: 5, Median: 3},
		},
		{
			name: "even count median interpolates",
			xs:   []float64{1, 2, 3, 4},
			want: Summary{Count: 4, Mean: 2.5, Std: math.Sqrt(1.25), Min: 1, Max: 4, Median: 2.5},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Summarize(tt.xs)
			if got.Count != tt.want.Count {
				t.Errorf("Count = %d, want %d", got.Count, tt.want.Count)
			}
			for _, f := range []struct {
				name      string
				got, want float64
			}{
				{"Mean", got.Mean, tt.want.Mean},
				{"Std", got.Std, tt.want.Std},
				{"Min", got.Min, tt.want.Min},
				{"Max", got.Max, tt.want.Max},
				{"Median", got.Median, tt.want.Median},
			} {
				if math.Abs(f.got-f.want) > 1e-9 {
					t.Errorf("%s = %v, want %v", f.name, f.got, f.want)
				}
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{25, 20},
		{50, 30},
		{100, 50},
		{12.5, 15},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile of empty slice: want error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile out of range: want error")
	}
}

func TestLogChoose(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, 0, 0},
		{5, 5, 0},
		{5, 2, math.Log(10)},
		{10, 3, math.Log(120)},
		{52, 5, math.Log(2598960)},
	}
	for _, tt := range tests {
		got := LogChoose(tt.n, tt.k)
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("LogChoose(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
	if !math.IsInf(LogChoose(3, 5), -1) {
		t.Error("LogChoose(3,5) should be -Inf")
	}
	if !math.IsInf(LogChoose(3, -1), -1) {
		t.Error("LogChoose(3,-1) should be -Inf")
	}
}

func TestLogChooseSymmetry(t *testing.T) {
	// Property: C(n,k) == C(n,n-k).
	f := func(n, k uint8) bool {
		nn := int(n%60) + 1
		kk := int(k) % (nn + 1)
		return math.Abs(LogChoose(nn, kk)-LogChoose(nn, nn-kk)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBisectMinInt(t *testing.T) {
	tests := []struct {
		name      string
		lo, hi    int
		threshold int
		want      int
	}{
		{"mid", 0, 100, 37, 37},
		{"at lo", 0, 100, 0, 0},
		{"at hi", 0, 100, 100, 100},
		{"never true", 0, 100, 101, 101},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := BisectMinInt(tt.lo, tt.hi, func(x int) bool { return x >= tt.threshold })
			if got != tt.want {
				t.Errorf("BisectMinInt = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestBisectMinIntProperty(t *testing.T) {
	// Property: for any monotone predicate defined by a threshold, bisection
	// finds exactly the threshold (clamped to the search interval).
	f := func(th uint16) bool {
		threshold := int(th % 1000)
		got := BisectMinInt(0, 999, func(x int) bool { return x >= threshold })
		return got == threshold
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}
