package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// NewRand returns a deterministic random source for the given seed. Every
// experiment in this repository threads one of these explicitly instead of
// using the global source, so that all tables and figures regenerate
// byte-identically from their default seeds.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Exponential samples an exponential random variable with rate lambda
// (mean 1/lambda). The paper models both peer-connection timing and
// diffusion-spreading relay delays as i.i.d. exponentials (§V-B, citing
// Fanti & Viswanath); block inter-arrival times are exponential with rate
// hashShare/blockInterval.
func Exponential(r *rand.Rand, lambda float64) float64 {
	if lambda <= 0 {
		return math.Inf(1)
	}
	return r.ExpFloat64() / lambda
}

// Poisson samples a Poisson random variable with the given mean using
// Knuth's product-of-uniforms method for small means and a normal
// approximation for large ones.
func Poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation with continuity correction.
		n := int(math.Round(r.NormFloat64()*math.Sqrt(mean) + mean))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	return r.Float64() < p
}

// ZipfWeights returns n weights following a Zipf law with exponent s,
// normalized to sum to 1. Node populations per AS and per BGP prefix are
// heavy-tailed (Figure 3 and Figure 4 of the paper both show a small head
// covering most of the mass), and a Zipf tail is the standard generative
// model for that shape.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// Multinomial distributes total items across the given weights, assigning
// the integer part deterministically and the remainder by largest fractional
// part, so that the result sums exactly to total and is reproducible without
// randomness. Weights must be non-negative and sum to a positive value.
func Multinomial(total int, weights []float64) ([]int, error) {
	if total < 0 {
		return nil, fmt.Errorf("stats: negative total %d", total)
	}
	var wsum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("stats: weight %d is %v", i, w)
		}
		wsum += w
	}
	if len(weights) == 0 || wsum <= 0 {
		return nil, fmt.Errorf("stats: weights must be non-empty with positive sum")
	}
	counts := make([]int, len(weights))
	type frac struct {
		idx  int
		part float64
	}
	fracs := make([]frac, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / wsum
		counts[i] = int(math.Floor(exact))
		assigned += counts[i]
		fracs[i] = frac{idx: i, part: exact - math.Floor(exact)}
	}
	// Hand out the remainder to the largest fractional parts (ties broken by
	// index for determinism).
	rem := total - assigned
	for rem > 0 {
		best := -1
		for i := range fracs {
			if best == -1 || fracs[i].part > fracs[best].part {
				best = i
			}
		}
		counts[fracs[best].idx]++
		fracs[best].part = -1
		rem--
	}
	return counts, nil
}

// WeightedIndex samples an index proportionally to weights. Weights must be
// non-negative with a positive sum; otherwise -1 is returned.
func WeightedIndex(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	u := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// TruncNormal samples a normal with the given mean and standard deviation,
// truncated below at lo. Link speeds and latency indices are non-negative
// quantities whose paper-reported σ exceeds μ, so naive normals would go
// negative.
func TruncNormal(r *rand.Rand, mean, std, lo float64) float64 {
	for i := 0; i < 64; i++ {
		x := r.NormFloat64()*std + mean
		if x >= lo {
			return x
		}
	}
	return lo
}

// LogNormalFromMoments samples a log-normal variate whose mean and standard
// deviation (of the variate itself, not of its log) match the given moments.
// Table I's link speeds have σ ≈ 10× μ, a signature of log-normal-like
// heavy tails, so the dataset generator uses this to reproduce both moments.
func LogNormalFromMoments(r *rand.Rand, mean, std float64) float64 {
	if mean <= 0 {
		return 0
	}
	v := std * std
	m2 := mean * mean
	sigma2 := math.Log(1 + v/m2)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(r.NormFloat64()*math.Sqrt(sigma2) + mu)
}
