package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExponentialMoments(t *testing.T) {
	r := NewRand(1)
	const n = 200000
	const lambda = 0.7
	var sum float64
	for i := 0; i < n; i++ {
		sum += Exponential(r, lambda)
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.02 {
		t.Errorf("exponential mean = %v, want ~%v", mean, 1/lambda)
	}
}

func TestExponentialNonPositiveRate(t *testing.T) {
	r := NewRand(1)
	if !math.IsInf(Exponential(r, 0), 1) {
		t.Error("Exponential with rate 0 should be +Inf")
	}
	if !math.IsInf(Exponential(r, -1), 1) {
		t.Error("Exponential with negative rate should be +Inf")
	}
}

func TestPoissonMoments(t *testing.T) {
	tests := []struct {
		mean float64
	}{
		{0.5}, {3}, {20}, {100}, // spans both Knuth and normal-approx branches
	}
	for _, tt := range tests {
		r := NewRand(7)
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(Poisson(r, tt.mean))
		}
		got := sum / n
		tol := 4 * math.Sqrt(tt.mean/n) * 3 // ~3 sigma of the sample mean, padded
		if tol < 0.02 {
			tol = 0.02
		}
		if math.Abs(got-tt.mean) > tol {
			t.Errorf("Poisson(%v) sample mean = %v", tt.mean, got)
		}
	}
	if Poisson(NewRand(1), 0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
	if Poisson(NewRand(1), -3) != 0 {
		t.Error("Poisson(-3) should be 0")
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(100, 1.2)
	if len(w) != 100 {
		t.Fatalf("len = %d", len(w))
	}
	var sum float64
	for i, x := range w {
		sum += x
		if i > 0 && x > w[i-1] {
			t.Fatalf("weights not non-increasing at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
	if ZipfWeights(0, 1) != nil {
		t.Error("ZipfWeights(0) should be nil")
	}
}

func TestMultinomial(t *testing.T) {
	tests := []struct {
		name    string
		total   int
		weights []float64
		want    []int // nil means only check sum
		wantErr bool
	}{
		{"exact split", 10, []float64{0.5, 0.5}, []int{5, 5}, false},
		{"remainder to largest frac", 10, []float64{0.55, 0.45}, []int{6, 4}, false},
		{"zero total", 0, []float64{1, 2}, []int{0, 0}, false},
		{"negative total", -1, []float64{1}, nil, true},
		{"empty weights", 5, nil, nil, true},
		{"zero weights", 5, []float64{0, 0}, nil, true},
		{"negative weight", 5, []float64{1, -1}, nil, true},
		{"nan weight", 5, []float64{1, math.NaN()}, nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Multinomial(tt.total, tt.weights)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			var sum int
			for _, c := range got {
				sum += c
			}
			if sum != tt.total {
				t.Errorf("sum = %d, want %d", sum, tt.total)
			}
			if tt.want != nil {
				for i := range tt.want {
					if got[i] != tt.want[i] {
						t.Errorf("counts = %v, want %v", got, tt.want)
						break
					}
				}
			}
		})
	}
}

func TestMultinomialPropertySumsExactly(t *testing.T) {
	// Property: the assignment always sums to total and no count is negative.
	f := func(total uint16, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		var wsum float64
		for i, x := range raw {
			weights[i] = float64(x)
			wsum += weights[i]
		}
		if wsum == 0 {
			return true
		}
		tot := int(total % 10000)
		counts, err := Multinomial(tot, weights)
		if err != nil {
			return false
		}
		sum := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == tot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedIndex(t *testing.T) {
	r := NewRand(3)
	weights := []float64{0, 1, 3}
	counts := make([]int, len(weights))
	const n = 90000
	for i := 0; i < n; i++ {
		idx := WeightedIndex(r, weights)
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("index out of range: %d", idx)
		}
		counts[idx]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.8 || ratio > 3.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
	if WeightedIndex(r, nil) != -1 {
		t.Error("empty weights should return -1")
	}
	if WeightedIndex(r, []float64{0, 0}) != -1 {
		t.Error("all-zero weights should return -1")
	}
}

func TestTruncNormal(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		if x := TruncNormal(r, 0.5, 2.0, 0); x < 0 {
			t.Fatalf("TruncNormal produced %v < 0", x)
		}
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	r := NewRand(9)
	const mean, std = 25.0, 250.0 // Table I IPv4 link-speed moments
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		x := LogNormalFromMoments(r, mean, std)
		if x < 0 {
			t.Fatalf("negative sample %v", x)
		}
		sum += x
	}
	got := sum / n
	// Heavy tail: the sample mean converges slowly; allow 20%.
	if got < mean*0.8 || got > mean*1.25 {
		t.Errorf("log-normal sample mean = %v, want ~%v", got, mean)
	}
	if LogNormalFromMoments(r, 0, 1) != 0 {
		t.Error("non-positive mean should yield 0")
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}
