package stats

import (
	"math"
	"testing"
)

func TestBetaMoments(t *testing.T) {
	tests := []struct {
		alpha, beta float64
	}{
		{2, 2}, {0.5, 0.5}, {0.46, 1.46}, {5, 1},
	}
	for _, tt := range tests {
		r := NewRand(3)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			x := Beta(r, tt.alpha, tt.beta)
			if x < 0 || x > 1 {
				t.Fatalf("Beta(%v,%v) produced %v", tt.alpha, tt.beta, x)
			}
			sum += x
		}
		want := tt.alpha / (tt.alpha + tt.beta)
		got := sum / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Beta(%v,%v) mean = %v, want %v", tt.alpha, tt.beta, got, want)
		}
	}
}

func TestBetaDegenerateShapes(t *testing.T) {
	r := NewRand(1)
	if Beta(r, 0, 1) != 0 {
		t.Error("alpha=0 should return 0")
	}
	if Beta(r, 1, -1) != 0 {
		t.Error("negative beta should return 0")
	}
}

func TestBetaFromMomentsMatchesTargets(t *testing.T) {
	// The Table I index moments: verify the sampler reproduces both mean
	// and (approximately) the standard deviation.
	tests := []struct {
		mean, sd float64
	}{
		{0.70, 0.45}, // IPv4 latency: near the Bernoulli bound
		{0.86, 0.35}, // IPv6 latency
		{0.24, 0.25}, // Tor latency: genuine Beta
		{0.76, 0.37}, // Tor uptime
	}
	for _, tt := range tests {
		r := NewRand(7)
		const n = 150000
		var sum, ss float64
		for i := 0; i < n; i++ {
			x := BetaFromMoments(r, tt.mean, tt.sd)
			if x < 0 || x > 1 {
				t.Fatalf("sample %v outside [0,1]", x)
			}
			sum += x
		}
		mean := sum / n
		r2 := NewRand(7)
		for i := 0; i < n; i++ {
			x := BetaFromMoments(r2, tt.mean, tt.sd)
			d := x - mean
			ss += d * d
		}
		sd := math.Sqrt(ss / n)
		if math.Abs(mean-tt.mean) > 0.01 {
			t.Errorf("mean(%v,%v) = %v", tt.mean, tt.sd, mean)
		}
		if math.Abs(sd-tt.sd) > 0.03 {
			t.Errorf("sd(%v,%v) = %v", tt.mean, tt.sd, sd)
		}
	}
}

func TestBetaFromMomentsEdges(t *testing.T) {
	r := NewRand(1)
	if BetaFromMoments(r, 0, 0.5) != 0 {
		t.Error("mean 0 should return 0")
	}
	if BetaFromMoments(r, 1, 0.5) != 1 {
		t.Error("mean 1 should return 1")
	}
	if got := BetaFromMoments(r, 0.3, 0); got != 0.3 {
		t.Errorf("zero variance should return the mean, got %v", got)
	}
	// Variance beyond the Bernoulli bound degrades to Bernoulli samples.
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		seen[BetaFromMoments(r, 0.5, 0.9)] = true
	}
	if len(seen) != 2 || !seen[0] || !seen[1] {
		t.Errorf("over-variance sampling should be Bernoulli {0,1}, got %v", seen)
	}
}
