package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCumulativeFromCounts(t *testing.T) {
	tests := []struct {
		name   string
		counts []int
		// queries maps a fraction to the expected minimum rank.
		queries map[float64]int
		final   float64
	}{
		{
			name:    "uniform",
			counts:  []int{10, 10, 10, 10},
			queries: map[float64]int{0.25: 1, 0.5: 2, 1.0: 4},
			final:   1.0,
		},
		{
			name:    "head heavy",
			counts:  []int{1, 70, 9, 20},
			queries: map[float64]int{0.5: 1, 0.7: 1, 0.9: 2, 0.99: 3},
			final:   1.0,
		},
		{
			name:    "single group",
			counts:  []int{42},
			queries: map[float64]int{0.0001: 1, 1.0: 1},
			final:   1.0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cdf := CumulativeFromCounts(tt.counts)
			if err := cdf.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			pts := cdf.Points()
			if len(pts) != len(tt.counts) {
				t.Fatalf("Len = %d, want %d", len(pts), len(tt.counts))
			}
			if math.Abs(pts[len(pts)-1].F-tt.final) > 1e-12 {
				t.Errorf("final F = %v, want %v", pts[len(pts)-1].F, tt.final)
			}
			for f, wantRank := range tt.queries {
				rank, err := cdf.RankFor(f)
				if err != nil {
					t.Fatalf("RankFor(%v): %v", f, err)
				}
				if rank != wantRank {
					t.Errorf("RankFor(%v) = %d, want %d", f, rank, wantRank)
				}
			}
		})
	}
}

func TestCDFAt(t *testing.T) {
	cdf := CumulativeFromCounts([]int{50, 30, 20})
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{0.5, 0},
		{1, 0.5},
		{1.5, 0.5},
		{2, 0.8},
		{3, 1.0},
		{100, 1.0},
	}
	for _, tt := range tests {
		if got := cdf.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFRankForUnreachable(t *testing.T) {
	cdf := CumulativeFromCounts(nil)
	if _, err := cdf.RankFor(0.5); err == nil {
		t.Error("RankFor on empty CDF: want error")
	}
	if rank, err := cdf.RankFor(0); err != nil || rank != 0 {
		t.Errorf("RankFor(0) = %d, %v; want 0, nil", rank, err)
	}
}

func TestCDFPropertyValidAndComplete(t *testing.T) {
	// Property: for any non-negative counts with a positive total, the CDF is
	// valid, monotone, and its last point is exactly 1.
	f := func(raw []uint8) bool {
		counts := make([]int, 0, len(raw))
		total := 0
		for _, c := range raw {
			counts = append(counts, int(c))
			total += int(c)
		}
		cdf := CumulativeFromCounts(counts)
		if cdf.Validate() != nil {
			return false
		}
		if total == 0 {
			return true
		}
		pts := cdf.Points()
		return math.Abs(pts[len(pts)-1].F-1.0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPropertyRankMonotone(t *testing.T) {
	// Property: RankFor is monotone non-decreasing in the requested fraction.
	counts := []int{500, 300, 100, 50, 25, 12, 6, 3, 2, 1, 1}
	cdf := CumulativeFromCounts(counts)
	prev := 0
	for f := 0.05; f <= 1.0; f += 0.05 {
		rank, err := cdf.RankFor(f)
		if err != nil {
			t.Fatalf("RankFor(%v): %v", f, err)
		}
		if rank < prev {
			t.Fatalf("RankFor not monotone: f=%v rank=%d prev=%d", f, rank, prev)
		}
		prev = rank
	}
}
