package stats

import (
	"fmt"
	"sort"
)

// CDFPoint is a single (x, F(x)) point of an empirical cumulative
// distribution. Figures 3 and 4 of the paper are curves of this kind: the
// cumulative fraction of full nodes covered by the k largest ASes,
// organizations, or BGP prefixes.
type CDFPoint struct {
	X float64 // rank or value on the horizontal axis
	F float64 // cumulative fraction in [0, 1]
}

// CDF is a non-decreasing empirical cumulative distribution.
type CDF struct {
	points []CDFPoint
}

// CumulativeFromCounts builds the rank-based CDF the paper plots in Figure 3:
// counts are per-group populations (e.g. nodes per AS); the groups are sorted
// in descending order and point k is (k, fraction of the total covered by the
// k largest groups). The returned CDF has len(counts) points and reaches 1.0
// at the final point when total > 0.
func CumulativeFromCounts(counts []int) CDF {
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	var total int
	for _, c := range sorted {
		total += c
	}
	points := make([]CDFPoint, 0, len(sorted))
	var running int
	for i, c := range sorted {
		running += c
		f := 0.0
		if total > 0 {
			f = float64(running) / float64(total)
		}
		points = append(points, CDFPoint{X: float64(i + 1), F: f})
	}
	return CDF{points: points}
}

// Points returns a copy of the CDF's points in ascending X order.
func (c CDF) Points() []CDFPoint {
	return append([]CDFPoint(nil), c.points...)
}

// Len returns the number of points.
func (c CDF) Len() int { return len(c.points) }

// At returns F evaluated at x by step interpolation: the fraction covered by
// the largest floor(x) groups. For x below the first point it returns 0.
func (c CDF) At(x float64) float64 {
	// Points are sorted by X; find the last point with X <= x.
	idx := sort.Search(len(c.points), func(i int) bool { return c.points[i].X > x })
	if idx == 0 {
		return 0
	}
	return c.points[idx-1].F
}

// RankFor returns the smallest rank k such that the k largest groups cover at
// least fraction f of the total. It returns an error if f is unreachable
// (f > 1 or the CDF is empty and f > 0).
//
// This is the query behind the paper's headline centralization numbers:
// "8 ASes host 30% of Bitcoin nodes" is RankFor(0.30) on the AS CDF.
func (c CDF) RankFor(f float64) (int, error) {
	if f <= 0 {
		return 0, nil
	}
	for _, p := range c.points {
		if p.F >= f-1e-12 {
			return int(p.X), nil
		}
	}
	return 0, fmt.Errorf("stats: fraction %.4f not reachable by CDF with %d points", f, len(c.points))
}

// Validate checks the CDF invariants: X strictly increasing and F
// non-decreasing within [0, 1+ε]. It is used by property tests.
func (c CDF) Validate() error {
	for i, p := range c.points {
		if p.F < -1e-12 || p.F > 1+1e-9 {
			return fmt.Errorf("stats: point %d has F=%v outside [0,1]", i, p.F)
		}
		if i > 0 {
			if p.X <= c.points[i-1].X {
				return fmt.Errorf("stats: X not strictly increasing at point %d", i)
			}
			if p.F < c.points[i-1].F-1e-12 {
				return fmt.Errorf("stats: F decreasing at point %d", i)
			}
		}
	}
	return nil
}
