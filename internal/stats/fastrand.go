package stats

import "math/rand"

// Fast is a draw-identical, allocation-free replica of the Go 1 math/rand
// generator (the 607-entry additive lagged-Fibonacci source behind
// rand.NewSource) with the rand.Rand derivation methods inlined on top.
//
// Why it exists: the gridsim exchange loop draws two variates per cell per
// step, and with *rand.Rand every draw pays a Source64 interface dispatch
// that the compiler cannot devirtualize or inline. Fast generates draws in
// full 607-entry blocks — the recurrence applied as two tight in-place
// loops — and hands them out from a buffer, so the per-draw Uint64 is a
// three-instruction read that inlines (with its whole derivation chain)
// into the //hot:path loops (DESIGN.md §12). The generator algorithm is frozen
// by the Go 1 compatibility promise — rand.NewSource(seed) must produce
// the same stream forever — which is what makes a replica safe.
//
// Why it is byte-identical: Seed does not re-implement math/rand's seeding
// (which walks an unexported 607-entry cooked table). Instead it draws the
// first 607 outputs x[1..607] from a throwaway rand.NewSource(seed) and
// inverts the recurrence to recover the post-seed state vector. Each draw
// computes x[i] = vec[feed]+vec[tap] and stores the sum at feed, and the
// source starts at tap=0, feed=334, so with init[] the post-seed vector:
//
//	i =   1..273: x[i] = init[334-i] + init[607-i]   (both slots unwritten)
//	i = 274..334: x[i] = init[334-i] + x[i-273]      (tap slot overwritten at draw i-273)
//	i = 335..607: x[i] = init[941-i] + x[i-273]
//
// Solving the last two bands directly and back-substituting band three into
// band one recovers all 607 init entries; Fast then continues from draw #1
// of the same stream. The equivalence is pinned exhaustively by
// TestFastMatchesMathRand.
//
// Block generation: draw i of a block writes slot (334-i) mod 607 reading
// slot (607-i) mod 607 — always 273 ahead (mod 607) of the written slot —
// so one block is exactly
//
//	vec[p] += vec[p+273]  for p = 333 … 0
//	vec[p] += vec[p-334]  for p = 606 … 334
//
// in that order, with the block's outputs being the updated slots in the
// same order. refill runs those two loops and lays the outputs into buf in
// draw order.
type Fast struct {
	vec [fastLen]int64
	buf [fastLen]uint64
	pos int // next unread index in buf; fastLen forces a refill
}

const (
	fastLen = 607 // rngLen in math/rand
	fastTap = 273 // rngTap in math/rand
)

// NewFast returns a generator producing the exact stream of
// rand.New(rand.NewSource(seed)).
func NewFast(seed int64) *Fast {
	f := &Fast{}
	f.Seed(seed)
	return f
}

// Seed repositions f at the start of rand.NewSource(seed)'s stream. It is
// the arena-reset entry point: re-seeding reuses the receiver, so pooled
// grids pay no RNG allocation per trial.
func (f *Fast) Seed(seed int64) {
	src := rand.NewSource(seed).(rand.Source64)
	var x [fastLen + 1]uint64
	for i := 1; i <= fastLen; i++ {
		x[i] = src.Uint64()
	}
	// Recover the post-seed state (uint64 wrap-around matches int64
	// addition in the source).
	var init [fastLen]uint64
	for i := fastTap + 1; i <= 334; i++ { // init[0..60]
		init[334-i] = x[i] - x[i-fastTap]
	}
	for i := 335; i <= fastLen; i++ { // init[334..606]
		init[941-i] = x[i] - x[i-fastTap]
	}
	for i := 1; i <= fastTap; i++ { // init[61..333]
		init[334-i] = x[i] - init[607-i]
	}
	for i, v := range init {
		f.vec[i] = int64(v)
	}
	f.pos = fastLen
}

// refill advances the recurrence one full block, lays the 607 outputs into
// buf in draw order, and returns the first of them (with pos set past it) —
// so the Uint64 fast path stays within the inlining budget by making
// exactly one call on the empty-buffer branch.
//
//go:noinline
func (f *Fast) refill() uint64 {
	vec := &f.vec
	buf := &f.buf
	k := 0
	for p := 333; p >= 0; p-- {
		x := vec[p] + vec[p+fastTap]
		vec[p] = x
		buf[k] = uint64(x)
		k++
	}
	for p := 606; p >= 334; p-- {
		x := vec[p] + vec[p-334]
		vec[p] = x
		buf[k] = uint64(x)
		k++
	}
	f.pos = 1
	return buf[0]
}

// Uint64 returns the next source output.
//
//hot:path
func (f *Fast) Uint64() uint64 {
	if f.pos < fastLen {
		x := f.buf[f.pos]
		f.pos++
		return x
	}
	return f.refill()
}

// Int63 mirrors rand.Rand.Int63.
//
//hot:path
func (f *Fast) Int63() int64 { return int64(f.Uint64() &^ (1 << 63)) }

// Float64 mirrors rand.Rand.Float64, including the redraw-on-1.0 loop. The
// buffered draw is fused in directly (rather than composed from Int63)
// to stay within the compiler's mid-stack inlining budget; the slow path
// re-reads the unconsumed buffer slot, so both orders are draw-identical.
//
//hot:path
func (f *Fast) Float64() float64 {
	p := f.pos
	if p < fastLen {
		v := float64(int64(f.buf[p]&^(1<<63))) / (1 << 63)
		if v < 1 {
			f.pos = p + 1
			return v
		}
	}
	return f.float64Slow()
}

// float64Slow is the full Float64 semantics from the current stream
// position: empty buffer, or a 63-bit draw that rounds to 1.0 and must be
// consumed and redrawn.
//
//go:noinline
func (f *Fast) float64Slow() float64 {
	for {
		v := float64(f.Int63()) / (1 << 63)
		if v < 1 {
			return v
		}
	}
}

// Int31 mirrors rand.Rand.Int31.
//
//hot:path
func (f *Fast) Int31() int32 { return int32(f.Int63() >> 32) }

// Int31n mirrors rand.Rand.Int31n: power-of-two mask fast path, otherwise
// rejection sampling to kill modulo bias, draw count matching math/rand
// draw for draw. Only the power-of-two case is fused inline (it is the
// interior-cell case of the gossip loop, which always has 8 neighbors);
// everything else runs the full semantics in a noinline slow path.
//
//hot:path
func (f *Fast) Int31n(n int32) int32 {
	p := f.pos
	if n > 0 && n&(n-1) == 0 && p < fastLen {
		f.pos = p + 1
		return int32((f.buf[p]&^(1<<63))>>32) & (n - 1)
	}
	return f.int31nSlow(n)
}

// int31nSlow is the full Int31n semantics from the current stream
// position: invalid n, empty buffer, or a non-power-of-two bound needing
// rejection sampling.
//
//go:noinline
func (f *Fast) int31nSlow(n int32) int32 {
	if n <= 0 {
		panic("stats: invalid argument to Int31n")
	}
	v := f.Int31()
	if n&(n-1) == 0 {
		return v & (n - 1)
	}
	max := int32((1 << 31) - 1 - (1<<31)%uint32(n))
	for v > max {
		v = f.Int31()
	}
	return v % n
}

// Int63n mirrors rand.Rand.Int63n.
//
//hot:path
func (f *Fast) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: invalid argument to Int63n")
	}
	if n&(n-1) == 0 {
		return f.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := f.Int63()
	for v > max {
		v = f.Int63()
	}
	return v % n
}

// Intn mirrors rand.Rand.Intn.
//
//hot:path
func (f *Fast) Intn(n int) int {
	if n <= 0 {
		panic("stats: invalid argument to Intn")
	}
	if n <= 1<<31-1 {
		return int(f.Int31n(int32(n)))
	}
	return int(f.Int63n(int64(n)))
}

// Bernoulli draws a success indicator with probability p, draw-compatible
// with Bernoulli(r, p) on a *rand.Rand at the same stream position.
//
//hot:path
func (f *Fast) Bernoulli(p float64) bool { return f.Float64() < p }
