// Package faults is the deterministic fault-injection engine of the
// reproduction. The paper's attacks are evaluated on a pristine network —
// every node up, every link symmetric, every message subject only to the
// uniform 10% loss the paper models — which makes every result a best case
// for the defender. Real Bitcoin is messier: the Bitnodes uptime index
// exists precisely because ~10% of nodes flap between 10-minute samples,
// BGP incidents leave asymmetric half-dead links behind, and partitions
// heal. This package injects that mess, reproducibly:
//
//   - node churn — scheduled leave/restart cycles with optional outbound
//     peer re-discovery on restart;
//   - link faults — permanently dead links, one-way blackholes, and
//     periodic flapping with a configurable period and duty cycle;
//   - message chaos — extra loss, extra delay, and duplication on top of
//     the simulator's own failure model.
//
// A Scenario value describes the fault load; the zero value injects
// nothing and is contractually a no-op (the pinned `experiment all` golden
// does not move). Scenarios thread through the three simulators via
// netsim.Config.Faults / gridsim.Config.Faults / core.WithFaults and reach
// the CLI as `-faults <preset>`.
//
// Determinism rules (DESIGN.md §10): every fault family draws from its own
// SplitMix64 stream derived from the injector seed — churn gets one stream
// per node, message chaos one per simulation (advanced in event order),
// and the link table is a pure hash of (seed, endpoints, time), stateless
// by construction. Fault draws never come from a simulation's math/rand
// stream, and instrumentation goes through the nil-safe obs layer, so a
// scenario run is byte-identical at any worker count.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ChurnSpec describes node churn: each eligible node alternates exponential
// up/down holding times, modelling the join/leave flapping the Bitnodes
// uptime index measures.
type ChurnSpec struct {
	// Fraction of nodes subject to churn, selected deterministically per
	// node from the churn stream. Gateways (netsim) and the attacker anchor
	// cell (gridsim) are always exempt: pool infrastructure is stable, and
	// the attacker keeps his own node alive.
	Fraction float64
	// MeanUptime is the mean of the exponential time a churning node stays
	// up before leaving.
	MeanUptime time.Duration
	// MeanDowntime is the mean of the exponential time it stays down.
	MeanDowntime time.Duration
	// Rediscover re-picks the node's outbound peers on restart (peer
	// re-discovery), the way a restarted bitcoind re-dials from its addrman
	// rather than resuming its old connections.
	Rediscover bool
}

// Enabled reports whether the spec injects anything.
func (c ChurnSpec) Enabled() bool {
	return c.Fraction > 0 && c.MeanUptime > 0 && c.MeanDowntime > 0
}

// LinkSpec describes per-link faults. Assignment is a pure hash of the
// injector seed and the endpoints, so whether a given link is faulty never
// depends on traffic order.
type LinkSpec struct {
	// DropFraction of undirected links are dead in both directions.
	DropFraction float64
	// OneWayFraction of directed links are blackholed in one direction
	// only — the asymmetric half-dead state BGP hijack recovery leaves
	// behind while routes reconverge.
	OneWayFraction float64
	// FlapFraction of undirected links flap: up for FlapDuty of each
	// FlapPeriod, down for the rest, with a per-link phase offset.
	FlapFraction float64
	// FlapPeriod is the flap cycle length. Default 10m when flapping is
	// enabled without a period.
	FlapPeriod time.Duration
	// FlapDuty is the fraction of each period the link is up (0,1].
	// Default 0.5 when flapping is enabled without a duty cycle.
	FlapDuty float64
}

// Enabled reports whether the spec injects anything.
func (l LinkSpec) Enabled() bool {
	return l.DropFraction > 0 || l.OneWayFraction > 0 || l.FlapFraction > 0
}

// ChaosSpec describes message-level chaos applied on top of the
// simulator's own failure model.
type ChaosSpec struct {
	// LossProb is an extra per-message loss probability.
	LossProb float64
	// DupProb is the probability a message is delivered twice (each copy
	// with its own relay delay).
	DupProb float64
	// DelayProb is the probability a message is held for an extra
	// exponential delay of mean MeanExtraDelay before normal relay.
	DelayProb float64
	// MeanExtraDelay is the mean of that extra delay. Default 2s when
	// DelayProb is set without a mean.
	MeanExtraDelay time.Duration
}

// Enabled reports whether the spec injects anything.
func (c ChaosSpec) Enabled() bool {
	return c.LossProb > 0 || c.DupProb > 0 || c.DelayProb > 0
}

// Scenario is a complete fault-injection configuration — the value the
// Scenario API passes around. The zero value is the pristine network: no
// churn, no link faults, no chaos, provably a no-op.
type Scenario struct {
	// Name labels the scenario ("" for an anonymous custom scenario).
	// Presets carry their registry name.
	Name  string
	Churn ChurnSpec
	Links LinkSpec
	Chaos ChaosSpec
}

// Enabled reports whether the scenario injects any fault at all.
func (s Scenario) Enabled() bool {
	return s.Churn.Enabled() || s.Links.Enabled() || s.Chaos.Enabled()
}

// String renders the scenario compactly for CLI/error text.
func (s Scenario) String() string {
	if !s.Enabled() {
		if s.Name != "" {
			return s.Name + " (no faults)"
		}
		return "none"
	}
	var parts []string
	if s.Churn.Enabled() {
		parts = append(parts, fmt.Sprintf("churn %.0f%% up~%v/down~%v",
			s.Churn.Fraction*100, s.Churn.MeanUptime, s.Churn.MeanDowntime))
	}
	if s.Links.Enabled() {
		parts = append(parts, fmt.Sprintf("links drop=%.0f%% oneway=%.0f%% flap=%.0f%%",
			s.Links.DropFraction*100, s.Links.OneWayFraction*100, s.Links.FlapFraction*100))
	}
	if s.Chaos.Enabled() {
		parts = append(parts, fmt.Sprintf("chaos loss=%.0f%% dup=%.0f%% delay=%.0f%%",
			s.Chaos.LossProb*100, s.Chaos.DupProb*100, s.Chaos.DelayProb*100))
	}
	name := s.Name
	if name == "" {
		name = "custom"
	}
	return name + ": " + strings.Join(parts, "; ")
}

// withDefaults fills the secondary parameters of enabled fault families.
func (s Scenario) withDefaults() Scenario {
	if s.Links.FlapFraction > 0 {
		if s.Links.FlapPeriod == 0 {
			s.Links.FlapPeriod = 10 * time.Minute
		}
		if s.Links.FlapDuty == 0 {
			s.Links.FlapDuty = 0.5
		}
	}
	if s.Chaos.DelayProb > 0 && s.Chaos.MeanExtraDelay == 0 {
		s.Chaos.MeanExtraDelay = 2 * time.Second
	}
	return s
}

// Validate rejects unusable parameters.
func (s Scenario) Validate() error {
	checkFrac := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("faults: %s %v outside [0,1]", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"churn fraction", s.Churn.Fraction},
		{"link drop fraction", s.Links.DropFraction},
		{"link one-way fraction", s.Links.OneWayFraction},
		{"link flap fraction", s.Links.FlapFraction},
		{"chaos loss probability", s.Chaos.LossProb},
		{"chaos duplication probability", s.Chaos.DupProb},
		{"chaos delay probability", s.Chaos.DelayProb},
	} {
		if err := checkFrac(f.name, f.v); err != nil {
			return err
		}
	}
	if s.Churn.MeanUptime < 0 || s.Churn.MeanDowntime < 0 {
		return fmt.Errorf("faults: negative churn holding time (up %v, down %v)",
			s.Churn.MeanUptime, s.Churn.MeanDowntime)
	}
	if s.Churn.Fraction > 0 && !s.Churn.Enabled() {
		return fmt.Errorf("faults: churn fraction %v needs positive MeanUptime and MeanDowntime", s.Churn.Fraction)
	}
	if s.Links.FlapPeriod < 0 {
		return fmt.Errorf("faults: negative flap period %v", s.Links.FlapPeriod)
	}
	if s.Links.FlapDuty < 0 || s.Links.FlapDuty > 1 {
		return fmt.Errorf("faults: flap duty %v outside [0,1]", s.Links.FlapDuty)
	}
	if s.Chaos.MeanExtraDelay < 0 {
		return fmt.Errorf("faults: negative mean extra delay %v", s.Chaos.MeanExtraDelay)
	}
	return nil
}

// Option configures a Scenario under construction (see NewScenario).
type Option func(*Scenario)

// WithName labels the scenario.
func WithName(name string) Option { return func(s *Scenario) { s.Name = name } }

// WithChurn sets the churn spec.
func WithChurn(c ChurnSpec) Option { return func(s *Scenario) { s.Churn = c } }

// WithLinks sets the link-fault spec.
func WithLinks(l LinkSpec) Option { return func(s *Scenario) { s.Links = l } }

// WithChaos sets the message-chaos spec.
func WithChaos(c ChaosSpec) Option { return func(s *Scenario) { s.Chaos = c } }

// NewScenario builds a custom scenario from functional options, mirroring
// core.New's construction style:
//
//	sc := faults.NewScenario(
//		faults.WithName("my-lab"),
//		faults.WithChurn(faults.ChurnSpec{Fraction: 0.2, MeanUptime: 4 * time.Hour, MeanDowntime: 20 * time.Minute}),
//	)
func NewScenario(opts ...Option) Scenario {
	var s Scenario
	for _, apply := range opts {
		apply(&s)
	}
	return s
}

// Stable is the explicit pristine-network preset: a named scenario that
// injects nothing. It exists so `-faults stable` states the baseline
// explicitly, and so fault sweeps have a control row.
func Stable() Scenario { return Scenario{Name: "stable"} }

// Churny models the Bitnodes flapping population: 30% of nodes churn with
// a mean 4h uptime and 30m downtime, re-discovering their outbound peers
// on restart. Over a 10-minute sample roughly 10% of the churning set is
// mid-transition, matching the ~10% inter-sample flap rate the uptime
// index records.
func Churny() Scenario {
	return Scenario{
		Name: "churny",
		Churn: ChurnSpec{
			Fraction:     0.30,
			MeanUptime:   4 * time.Hour,
			MeanDowntime: 30 * time.Minute,
			Rediscover:   true,
		},
	}
}

// Flaky models a congested, lossy network: a fifth of all links flap on a
// 10-minute cycle (up 70% of the time), and messages see extra loss,
// occasional duplication, and occasional multi-second stalls.
func Flaky() Scenario {
	return Scenario{
		Name: "flaky",
		Links: LinkSpec{
			FlapFraction: 0.20,
			FlapPeriod:   10 * time.Minute,
			FlapDuty:     0.70,
		},
		Chaos: ChaosSpec{
			LossProb:       0.05,
			DupProb:        0.02,
			DelayProb:      0.05,
			MeanExtraDelay: 5 * time.Second,
		},
	}
}

// HijackRecovery models the aftermath of a BGP incident while routes
// reconverge: a tenth of directed links are blackholed one-way (the
// asymmetric state interception leaves behind), some links are fully dead,
// the rest flap as announcements and withdrawals race, and a slice of
// nodes restarts. This is the backdrop against which the paper's §V heal
// damage should be read.
func HijackRecovery() Scenario {
	return Scenario{
		Name: "hijack-recovery",
		Churn: ChurnSpec{
			Fraction:     0.10,
			MeanUptime:   2 * time.Hour,
			MeanDowntime: 15 * time.Minute,
			Rediscover:   true,
		},
		Links: LinkSpec{
			DropFraction:   0.05,
			OneWayFraction: 0.10,
			FlapFraction:   0.10,
			FlapPeriod:     5 * time.Minute,
			FlapDuty:       0.60,
		},
	}
}

// presets is the named-scenario registry. Static registration keeps the
// CLI's -faults dispatch and error text deterministic, mirroring the
// attack-plan registry.
var presets = map[string]func() Scenario{
	"stable":          Stable,
	"churny":          Churny,
	"flaky":           Flaky,
	"hijack-recovery": HijackRecovery,
}

// PresetNames returns the registry keys in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Preset returns the named scenario. Unknown names report the full sorted
// registry, like attack.NewPlan.
func Preset(name string) (Scenario, error) {
	ctor, ok := presets[name]
	if !ok {
		return Scenario{}, fmt.Errorf("faults: unknown scenario %q (presets: %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return ctor(), nil
}
