package faults

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Stream-derivation salts. Each fault family owns a namespaced SplitMix64
// stream so enabling one family never shifts another family's draws.
const (
	saltChurn = 101
	saltChaos = 102
	saltLinks = 103
	// saltGridChurn/saltGridChaos/saltGridLinks namespace the grid-model
	// injector (gridfaults.go) away from the event-driven one, so a study
	// that runs both simulators off one seed keeps them independent.
	saltGridChurn = 201
	saltGridChaos = 202
	saltGridLinks = 203
)

// Kind labels for the faults.injected metric.
const (
	kindLinkDrop   = "link_drop"
	kindLinkOneWay = "link_oneway"
	kindLinkFlap   = "link_flap"
	kindMsgLoss    = "msg_loss"
	kindMsgDup     = "msg_dup"
	kindMsgDelay   = "msg_delay"
	kindChurnDown  = "churn_down"
	kindChurnUp    = "churn_up"
	kindRewire     = "rewire"
)

// metrics holds the injector's pre-resolved counters — all nil (and
// therefore no-ops) when observability is off. Every injection increments
// faults.injected{kind=...}.
type metrics struct {
	linkDrop   *obs.Counter
	linkOneWay *obs.Counter
	linkFlap   *obs.Counter
	msgLoss    *obs.Counter
	msgDup     *obs.Counter
	msgDelay   *obs.Counter
	churnDown  *obs.Counter
	churnUp    *obs.Counter
	rewire     *obs.Counter
}

func newMetrics(o *obs.Observer) metrics {
	reg := o.Registry()
	if reg == nil {
		return metrics{}
	}
	kind := func(k string) *obs.Counter {
		return reg.Counter("faults.injected", obs.L("kind", k))
	}
	return metrics{
		linkDrop:   kind(kindLinkDrop),
		linkOneWay: kind(kindLinkOneWay),
		linkFlap:   kind(kindLinkFlap),
		msgLoss:    kind(kindMsgLoss),
		msgDup:     kind(kindMsgDup),
		msgDelay:   kind(kindMsgDelay),
		churnDown:  kind(kindChurnDown),
		churnUp:    kind(kindChurnUp),
		rewire:     kind(kindRewire),
	}
}

// Injector realizes a Scenario against the event-driven simulators: it
// implements p2p.FaultInjector for link faults and message chaos, and
// drives node churn on the simulation engine. One injector belongs to one
// simulation; its streams advance only inside that simulation's
// deterministic event order, which is what keeps scenario runs
// byte-identical at any worker count.
type Injector struct {
	sc        Scenario
	chaos     stream
	linkSeed  uint64
	churnSeed int64

	engine *sim.Engine
	net    *p2p.Network

	m     metrics
	trace *obs.Tracer
}

// NewInjector builds an injector for the scenario, deriving every fault
// stream from the given seed (callers pass a seed already namespaced off
// the simulation seed, e.g. parallel.DeriveSeed(cfg.Seed, salt)).
func NewInjector(sc Scenario, seed int64, o *obs.Observer) (*Injector, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		sc:        sc,
		chaos:     newStream(deriveStreamSeed(seed, saltChaos)),
		linkSeed:  uint64(deriveStreamSeed(seed, saltLinks)),
		churnSeed: deriveStreamSeed(seed, saltChurn),
		m:         newMetrics(o),
		trace:     o.Tracer(),
	}, nil
}

// Scenario returns the effective (defaults-applied) scenario.
func (inj *Injector) Scenario() Scenario { return inj.sc }

// Intercept implements p2p.FaultInjector: link faults first (a dead link
// drops everything, so per-message chaos draws are not even made), then
// message chaos in loss → duplication → delay order. Chaos draws come from
// the injector's own stream in send order — deterministic because the
// engine is single-threaded.
func (inj *Injector) Intercept(from, to p2p.NodeID, now time.Duration) p2p.FaultVerdict {
	var v p2p.FaultVerdict
	if inj.sc.Links.Enabled() {
		if kind, down := linkDown(inj.linkSeed, inj.sc.Links, int(from), int(to), now); down {
			switch kind {
			case kindLinkDrop:
				inj.m.linkDrop.Inc()
			case kindLinkOneWay:
				inj.m.linkOneWay.Inc()
			case kindLinkFlap:
				inj.m.linkFlap.Inc()
			}
			v.Drop = true
			return v
		}
	}
	if inj.sc.Chaos.Enabled() {
		c := inj.sc.Chaos
		if inj.chaos.bernoulli(c.LossProb) {
			inj.m.msgLoss.Inc()
			v.Drop = true
			return v
		}
		if inj.chaos.bernoulli(c.DupProb) {
			inj.m.msgDup.Inc()
			v.Duplicate = true
		}
		if inj.chaos.bernoulli(c.DelayProb) {
			inj.m.msgDelay.Inc()
			v.ExtraDelay = inj.chaos.expDuration(c.MeanExtraDelay)
		}
	}
	return v
}

// pairHash hashes the undirected endpoint pair into the link table.
func pairHash(linkSeed uint64, a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return mix64(linkSeed ^ mix64(uint64(uint32(a))<<32|uint64(uint32(b))))
}

// linkDown decides whether the directed link from→to is down at the given
// time. It is a pure function of (linkSeed, endpoints, now): no state, no
// stream, so the answer never depends on how much traffic the link has
// carried — the property the determinism tests pin. Both the event-driven
// injector and the grid injector share this table.
//
// The undirected hash's unit draw partitions links into dead
// [0, DropFraction), flapping [DropFraction, DropFraction+FlapFraction),
// and candidates for a one-way blackhole; a second hash picks the flap
// phase, a third the blackholed direction (only ever one direction, the
// asymmetric state BGP route reconvergence leaves behind).
func linkDown(linkSeed uint64, l LinkSpec, from, to int, now time.Duration) (string, bool) {
	h := pairHash(linkSeed, from, to)
	u := unit(h)
	if u < l.DropFraction {
		return kindLinkDrop, true
	}
	if u < l.DropFraction+l.FlapFraction {
		phase := time.Duration(mix64(h^0x5F1A) % uint64(l.FlapPeriod))
		pos := (now + phase) % l.FlapPeriod
		if pos >= time.Duration(float64(l.FlapPeriod)*l.FlapDuty) {
			return kindLinkFlap, true
		}
		return "", false
	}
	if l.OneWayFraction > 0 {
		h2 := mix64(h ^ 0x0E1A)
		if unit(h2) < l.OneWayFraction {
			lo := from
			if to < lo {
				lo = to
			}
			deadFromLow := mix64(h2)&1 == 0
			if (from == lo) == deadFromLow {
				return kindLinkOneWay, true
			}
		}
	}
	return "", false
}

// StartChurn schedules the join/leave cycles of every churning node on the
// engine. Each node gets its own SplitMix64 stream (derived from the churn
// seed by node index), drawn from only inside that node's own event chain:
// eligibility first, then alternating exponential up/down holding times.
// Exempt nodes — pool gateways, attack anchors — never churn.
func (inj *Injector) StartChurn(engine *sim.Engine, net *p2p.Network, exempt func(p2p.NodeID) bool) {
	if !inj.sc.Churn.Enabled() {
		return
	}
	inj.engine, inj.net = engine, net
	for i := range net.Nodes {
		id := p2p.NodeID(i)
		if exempt != nil && exempt(id) {
			continue
		}
		cs := &stream{state: uint64(deriveStreamSeed(inj.churnSeed, i))}
		if !cs.bernoulli(inj.sc.Churn.Fraction) {
			continue
		}
		inj.scheduleDown(id, cs)
	}
}

// scheduleDown arms the node's next leave event.
func (inj *Injector) scheduleDown(id p2p.NodeID, cs *stream) {
	delay := cs.expDuration(inj.sc.Churn.MeanUptime)
	err := inj.engine.After(delay, func(now time.Duration) {
		inj.net.Nodes[id].Up = false
		inj.m.churnDown.Inc()
		inj.trace.Emit(int64(now), "faults", "node_down", obs.Fint("node", int64(id)))
		inj.scheduleUp(id, cs)
	})
	if err != nil {
		panic(fmt.Sprintf("faults: schedule churn down: %v", err))
	}
}

// scheduleUp arms the node's restart: the node comes back up, optionally
// re-discovers its outbound peers (p2p.RewirePeers, seeded from this
// node's churn stream), and is re-offered its neighbors' current tips —
// the getheaders-on-reconnect catch-up without which a restarted node
// would stay behind until the next block inv happened to reach it.
func (inj *Injector) scheduleUp(id p2p.NodeID, cs *stream) {
	delay := cs.expDuration(inj.sc.Churn.MeanDowntime)
	err := inj.engine.After(delay, func(now time.Duration) {
		inj.net.Nodes[id].Up = true
		inj.m.churnUp.Inc()
		inj.trace.Emit(int64(now), "faults", "node_up",
			obs.Fint("node", int64(id)),
			obs.Fbool("rediscover", inj.sc.Churn.Rediscover))
		if inj.sc.Churn.Rediscover {
			inj.net.RewirePeers(id, stats.NewRand(int64(cs.next())))
			inj.m.rewire.Inc()
		}
		for _, p := range inj.net.Neighbors(id) {
			inj.net.OfferTip(p, id)
		}
		inj.scheduleDown(id, cs)
	})
	if err != nil {
		panic(fmt.Sprintf("faults: schedule churn up: %v", err))
	}
}
