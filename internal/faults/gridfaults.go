package faults

import (
	"time"

	"repro/internal/obs"
)

// GridInjector realizes a Scenario against the step-driven grid model
// (gridsim): churn takes cells down and up on step boundaries, and the
// shared pure-hash link table decides which neighbor exchanges are dead,
// one-way, or mid-flap. Message chaos maps onto the grid's one-exchange-
// per-step model as extra loss only — duplication and extra delay have no
// representation when a step *is* the unit of communication, so those
// knobs are ignored here (the event-driven Injector honors them).
//
// Scenario durations are converted to steps through the step duration the
// caller supplies (gridsim passes BlockInterval / stepsPerBlock, the
// paper's Tdelay), so one Scenario value means the same physical fault
// load in both simulators.
type GridInjector struct {
	sc      Scenario
	stepDur time.Duration

	chaos stream
	// chaosSeed is the chaos stream's initial state, kept aside so the
	// order-free ChaosLossAt hashes off a value that never advances.
	chaosSeed uint64
	linkSeed  uint64

	// down[i] is cell i's current churn state; churn lists the churning
	// cells with their private streams and next scheduled flip step.
	down  []bool
	churn []gridChurnCell

	m     metrics
	trace *obs.Tracer
}

type gridChurnCell struct {
	idx      int
	cs       stream
	nextFlip int
}

// NewGridInjector builds a grid injector over cells [0, cells). The exempt
// cell (the attacker's anchor, pass -1 for none) never churns. stepDur is
// the physical duration of one grid step.
func NewGridInjector(sc Scenario, seed int64, cells int, stepDur time.Duration, exempt int, o *obs.Observer) (*GridInjector, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if stepDur <= 0 {
		stepDur = time.Second
	}
	gi := &GridInjector{
		sc:        sc,
		stepDur:   stepDur,
		chaos:     newStream(deriveStreamSeed(seed, saltGridChaos)),
		chaosSeed: uint64(deriveStreamSeed(seed, saltGridChaos)),
		linkSeed:  uint64(deriveStreamSeed(seed, saltGridLinks)),
		down:      make([]bool, cells),
		m:         newMetrics(o),
		trace:     o.Tracer(),
	}
	if gi.sc.Churn.Enabled() {
		churnSeed := deriveStreamSeed(seed, saltGridChurn)
		for i := 0; i < cells; i++ {
			if i == exempt {
				continue
			}
			cs := stream{state: uint64(deriveStreamSeed(churnSeed, i))}
			if !cs.bernoulli(gi.sc.Churn.Fraction) {
				continue
			}
			first := gi.holdSteps(&cs, gi.sc.Churn.MeanUptime)
			gi.churn = append(gi.churn, gridChurnCell{idx: i, cs: cs, nextFlip: first})
		}
	}
	return gi, nil
}

// Scenario returns the effective (defaults-applied) scenario.
func (gi *GridInjector) Scenario() Scenario { return gi.sc }

// holdSteps converts an exponential holding time to a whole number of
// steps, at least one so a flip is never a same-step no-op.
func (gi *GridInjector) holdSteps(cs *stream, mean time.Duration) int {
	d := cs.expDuration(mean)
	steps := int(d / gi.stepDur)
	if steps < 1 {
		steps = 1
	}
	return steps
}

// StepChurn advances churn to the given step, flipping every cell whose
// holding time expired. Cells are visited in index order (the churn slice
// is built in index order), so the flips of one step are deterministic.
func (gi *GridInjector) StepChurn(step int) {
	if len(gi.churn) == 0 {
		return
	}
	for k := range gi.churn {
		c := &gi.churn[k]
		// A long step gap cannot occur (StepChurn runs every step), so one
		// flip per call suffices.
		if step < c.nextFlip {
			continue
		}
		if gi.down[c.idx] {
			gi.down[c.idx] = false
			gi.m.churnUp.Inc()
			gi.trace.Emit(int64(step), "faults", "cell_up", obs.Fint("cell", int64(c.idx)))
			c.nextFlip = step + gi.holdSteps(&c.cs, gi.sc.Churn.MeanUptime)
		} else {
			gi.down[c.idx] = true
			gi.m.churnDown.Inc()
			gi.trace.Emit(int64(step), "faults", "cell_down", obs.Fint("cell", int64(c.idx)))
			c.nextFlip = step + gi.holdSteps(&c.cs, gi.sc.Churn.MeanDowntime)
		}
	}
}

// Down reports whether the cell is churned out at the moment.
func (gi *GridInjector) Down(i int) bool { return gi.down[i] }

// DownCells returns how many cells are currently churned out.
func (gi *GridInjector) DownCells() int {
	n := 0
	for _, d := range gi.down {
		if d {
			n++
		}
	}
	return n
}

// Allow consults the link table for the exchange i→j at the given step,
// counting whatever fault it hits.
func (gi *GridInjector) Allow(i, j, step int) bool {
	if !gi.sc.Links.Enabled() {
		return true
	}
	kind, down := linkDown(gi.linkSeed, gi.sc.Links, i, j, time.Duration(step)*gi.stepDur)
	if !down {
		return true
	}
	switch kind {
	case kindLinkDrop:
		gi.m.linkDrop.Inc()
	case kindLinkOneWay:
		gi.m.linkOneWay.Inc()
	case kindLinkFlap:
		gi.m.linkFlap.Inc()
	}
	return false
}

// ChaosLoss draws one extra-loss decision from the chaos stream (in cell
// order, which the grid's communicate loop fixes).
func (gi *GridInjector) ChaosLoss() bool {
	if gi.sc.Chaos.LossProb <= 0 {
		return false
	}
	if gi.chaos.bernoulli(gi.sc.Chaos.LossProb) {
		gi.m.msgLoss.Inc()
		return true
	}
	return false
}

// ChaosLossAt is the order-free form of ChaosLoss for the sharded grid
// engine: the decision is a pure hash of (chaos seed, cell, step) instead
// of the next draw of a sequential stream, so shards ticking cells in any
// order — or concurrently — reach identical decisions, and the loss count
// is invariant to shard and worker count. The metric increment is atomic
// and commutative, so it is safe from gang workers. The legacy engine keeps
// ChaosLoss: its goldens pin the sequential stream.
func (gi *GridInjector) ChaosLossAt(cell, step int) bool {
	if gi.sc.Chaos.LossProb <= 0 {
		return false
	}
	h := mix64(gi.chaosSeed ^ mix64(uint64(cell)+1) ^ mix64(uint64(step)<<20))
	if unit(h) < gi.sc.Chaos.LossProb {
		gi.m.msgLoss.Inc()
		return true
	}
	return false
}
