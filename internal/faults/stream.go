package faults

import (
	"math"
	"time"

	"repro/internal/parallel"
)

// The fault engine never touches a simulation's math/rand stream: every
// fault family draws from its own SplitMix64 sequence derived from the
// injector seed, so enabling a scenario adds randomness without re-ordering
// any existing draw, and two runs of the same scenario at the same seed are
// byte-identical regardless of worker count (each simulation owns its
// injector; streams advance only inside that simulation's deterministic
// event order).

// SplitMix64 constants (Steele, Lea & Flood, OOPSLA 2014) — the same mixing
// function internal/parallel uses for per-task seed derivation.
const (
	splitmixGamma = 0x9E3779B97F4A7C15
	splitmixMul1  = 0xBF58476D1CE4E5B9
	splitmixMul2  = 0x94D049BB133111EB
)

// mix64 is the SplitMix64 output function: a fixed avalanche permutation of
// the state word. It is pure, which is what makes the link-fault table a
// function rather than a stateful sampler.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= splitmixMul1
	z ^= z >> 27
	z *= splitmixMul2
	z ^= z >> 31
	return z
}

// stream is a SplitMix64 PRNG: 8 bytes of state per stream, so per-node
// churn streams stay cheap even at the paper's 10,000-node scale.
type stream struct{ state uint64 }

// newStream seeds a stream. Seeds come from parallel.DeriveSeed so nearby
// fault streams (node i and node i+1) are statistically independent.
func newStream(seed int64) stream { return stream{state: uint64(seed)} }

// next advances the state by the golden-ratio gamma and mixes it out.
func (s *stream) next() uint64 {
	s.state += splitmixGamma
	return mix64(s.state)
}

// float64 returns a uniform draw in [0, 1) from the top 53 bits.
func (s *stream) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// bernoulli returns true with probability p.
func (s *stream) bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	return s.float64() < p
}

// expDuration samples an exponential holding time with the given mean via
// inversion. The mean-parameterized form mirrors how scenarios are
// specified (mean uptime/downtime/extra delay).
func (s *stream) expDuration(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := s.float64()
	return time.Duration(-float64(mean) * math.Log(1-u))
}

// unit maps a hash word to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// deriveStreamSeed namespaces a fault family (or a node within one) off the
// injector seed.
func deriveStreamSeed(seed int64, salt int) int64 {
	return parallel.DeriveSeed(seed, salt)
}
