package faults

import (
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/p2p"
)

func TestZeroScenarioInjectsNothing(t *testing.T) {
	var s Scenario
	if s.Enabled() {
		t.Error("zero Scenario reports Enabled")
	}
	if s.Churn.Enabled() || s.Links.Enabled() || s.Chaos.Enabled() {
		t.Error("zero specs report Enabled")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("zero Scenario fails Validate: %v", err)
	}
	if got := s.String(); got != "none" {
		t.Errorf("zero Scenario String() = %q, want \"none\"", got)
	}
	// An injector for the zero scenario must pass everything untouched.
	inj, err := NewInjector(s, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v := inj.Intercept(0, 1, time.Duration(i)*time.Second); v.Drop || v.Duplicate || v.ExtraDelay != 0 {
			t.Fatalf("zero-scenario Intercept returned a non-empty verdict: %+v", v)
		}
	}
}

func TestPresetRegistry(t *testing.T) {
	names := PresetNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("PresetNames not sorted: %v", names)
	}
	want := []string{"churny", "flaky", "hijack-recovery", "stable"}
	if len(names) != len(want) {
		t.Fatalf("PresetNames = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("PresetNames = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		sc, err := Preset(n)
		if err != nil {
			t.Fatalf("Preset(%q): %v", n, err)
		}
		if sc.Name != n {
			t.Errorf("Preset(%q).Name = %q", n, sc.Name)
		}
		if err := sc.withDefaults().Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", n, err)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("Preset(\"nope\") did not error")
	} else if !strings.Contains(err.Error(), "churny") {
		t.Errorf("unknown-preset error should list the registry, got: %v", err)
	}
	if Stable().Enabled() {
		t.Error("stable preset injects faults")
	}
	for _, sc := range []Scenario{Churny(), Flaky(), HijackRecovery()} {
		if !sc.Enabled() {
			t.Errorf("preset %q injects nothing", sc.Name)
		}
	}
}

func TestNewScenarioOptions(t *testing.T) {
	churn := ChurnSpec{Fraction: 0.2, MeanUptime: 4 * time.Hour, MeanDowntime: 20 * time.Minute}
	links := LinkSpec{DropFraction: 0.1}
	chaos := ChaosSpec{LossProb: 0.05}
	sc := NewScenario(WithName("lab"), WithChurn(churn), WithLinks(links), WithChaos(chaos))
	if sc.Name != "lab" || sc.Churn != churn || sc.Links != links || sc.Chaos != chaos {
		t.Errorf("NewScenario assembled %+v", sc)
	}
	if !sc.Enabled() {
		t.Error("assembled scenario not enabled")
	}
}

func TestValidateRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		sc   Scenario
	}{
		{"churn fraction > 1", Scenario{Churn: ChurnSpec{Fraction: 1.5, MeanUptime: time.Hour, MeanDowntime: time.Minute}}},
		{"negative drop fraction", Scenario{Links: LinkSpec{DropFraction: -0.1}}},
		{"loss prob > 1", Scenario{Chaos: ChaosSpec{LossProb: 2}}},
		{"negative uptime", Scenario{Churn: ChurnSpec{Fraction: 0.1, MeanUptime: -time.Hour, MeanDowntime: time.Minute}}},
		{"churn without holding times", Scenario{Churn: ChurnSpec{Fraction: 0.1}}},
		{"negative flap period", Scenario{Links: LinkSpec{FlapFraction: 0.1, FlapPeriod: -time.Minute}}},
		{"flap duty > 1", Scenario{Links: LinkSpec{FlapFraction: 0.1, FlapPeriod: time.Minute, FlapDuty: 1.5}}},
		{"negative extra delay", Scenario{Chaos: ChaosSpec{DelayProb: 0.1, MeanExtraDelay: -time.Second}}},
	} {
		if err := tc.sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.sc)
		}
	}
	if _, err := NewInjector(Scenario{Chaos: ChaosSpec{LossProb: 2}}, 1, nil); err == nil {
		t.Error("NewInjector accepted an invalid scenario")
	}
	if _, err := NewGridInjector(Scenario{Chaos: ChaosSpec{LossProb: 2}}, 1, 9, time.Second, -1, nil); err == nil {
		t.Error("NewGridInjector accepted an invalid scenario")
	}
}

// TestLinkTablePure pins the core determinism property: the link table is a
// pure function of (seed, endpoints, now). The answer must not depend on
// query order or on how often a link has been consulted.
func TestLinkTablePure(t *testing.T) {
	l := LinkSpec{DropFraction: 0.2, OneWayFraction: 0.2, FlapFraction: 0.3,
		FlapPeriod: 10 * time.Minute, FlapDuty: 0.5}
	const seed = 0xDEADBEEF
	type key struct {
		from, to int
		now      time.Duration
	}
	first := map[key]bool{}
	for from := 0; from < 20; from++ {
		for to := 0; to < 20; to++ {
			if from == to {
				continue
			}
			for _, now := range []time.Duration{0, 3 * time.Minute, 7 * time.Minute, time.Hour} {
				_, down := linkDown(seed, l, from, to, now)
				first[key{from, to, now}] = down
			}
		}
	}
	// Re-query in reverse order, interleaved with extra consultations.
	for from := 19; from >= 0; from-- {
		for to := 19; to >= 0; to-- {
			if from == to {
				continue
			}
			linkDown(seed, l, 5, 6, time.Minute) // unrelated traffic
			for _, now := range []time.Duration{time.Hour, 7 * time.Minute, 3 * time.Minute, 0} {
				_, down := linkDown(seed, l, from, to, now)
				if down != first[key{from, to, now}] {
					t.Fatalf("link (%d→%d, %v) changed answer on re-query", from, to, now)
				}
			}
		}
	}
}

// TestLinkTableKinds checks each fault family's shape: dead links are dead
// both ways and forever; one-way links are dead in exactly one direction;
// flapping links alternate with roughly the configured duty cycle.
func TestLinkTableKinds(t *testing.T) {
	const seed = 42
	t.Run("drop is symmetric and permanent", func(t *testing.T) {
		l := LinkSpec{DropFraction: 0.3}
		found := 0
		for a := 0; a < 30; a++ {
			for b := a + 1; b < 30; b++ {
				k1, d1 := linkDown(seed, l, a, b, 0)
				k2, d2 := linkDown(seed, l, b, a, 5*time.Hour)
				if d1 != d2 || k1 != k2 {
					t.Fatalf("drop link (%d,%d) asymmetric or time-varying", a, b)
				}
				if d1 {
					found++
				}
			}
		}
		if found == 0 {
			t.Fatal("30% drop fraction selected no links out of 435")
		}
	})
	t.Run("oneway is dead in exactly one direction", func(t *testing.T) {
		l := LinkSpec{OneWayFraction: 0.3}
		found := 0
		for a := 0; a < 30; a++ {
			for b := a + 1; b < 30; b++ {
				_, ab := linkDown(seed, l, a, b, 0)
				_, ba := linkDown(seed, l, b, a, 0)
				if ab && ba {
					t.Fatalf("one-way link (%d,%d) dead in both directions", a, b)
				}
				if ab || ba {
					found++
				}
			}
		}
		if found == 0 {
			t.Fatal("30% one-way fraction selected no links out of 435")
		}
	})
	t.Run("flap follows the duty cycle", func(t *testing.T) {
		l := LinkSpec{FlapFraction: 1, FlapPeriod: 10 * time.Minute, FlapDuty: 0.7}
		// Every link flaps; sample one full period at second resolution.
		upSeconds := 0
		total := int(l.FlapPeriod / time.Second)
		for s := 0; s < total; s++ {
			if _, down := linkDown(seed, l, 3, 4, time.Duration(s)*time.Second); !down {
				upSeconds++
			}
		}
		got := float64(upSeconds) / float64(total)
		if got < 0.69 || got > 0.71 {
			t.Errorf("flap duty: link up %.3f of the period, want 0.70", got)
		}
		// Periodicity: the state one full period later is identical.
		for _, now := range []time.Duration{0, time.Minute, 4 * time.Minute, 9 * time.Minute} {
			_, d1 := linkDown(seed, l, 3, 4, now)
			_, d2 := linkDown(seed, l, 3, 4, now+l.FlapPeriod)
			if d1 != d2 {
				t.Errorf("flap state at %v differs one period later", now)
			}
		}
	})
}

// TestStreamDeterminism pins the SplitMix64 stream: same seed, same
// sequence; different salts, different sequences.
func TestStreamDeterminism(t *testing.T) {
	a := newStream(deriveStreamSeed(7, saltChaos))
	b := newStream(deriveStreamSeed(7, saltChaos))
	c := newStream(deriveStreamSeed(7, saltLinks))
	same, diff := true, false
	for i := 0; i < 64; i++ {
		av := a.next()
		if av != b.next() {
			same = false
		}
		if av != c.next() {
			diff = true
		}
	}
	if !same {
		t.Error("same-seed streams diverged")
	}
	if !diff {
		t.Error("differently-salted streams produced identical sequences")
	}
	u := newStream(99)
	for i := 0; i < 1000; i++ {
		if v := u.float64(); v < 0 || v >= 1 {
			t.Fatalf("float64 out of [0,1): %v", v)
		}
	}
	e := newStream(99)
	var sum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		d := e.expDuration(time.Hour)
		if d < 0 {
			t.Fatalf("negative exponential duration %v", d)
		}
		sum += d
	}
	mean := sum / n
	if mean < 50*time.Minute || mean > 70*time.Minute {
		t.Errorf("exponential mean %v far from 1h", mean)
	}
}

// TestInterceptDeterministic runs two same-seed injectors through an
// identical call sequence and requires identical verdicts — the property
// that makes a faulted simulation replayable.
func TestInterceptDeterministic(t *testing.T) {
	sc := Flaky()
	a, err := NewInjector(sc, 123, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(sc, 123, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		from, to := i%17, (i*7+3)%17
		if from == to {
			continue
		}
		now := time.Duration(i) * 3 * time.Second
		va := a.Intercept(p2p.NodeID(from), p2p.NodeID(to), now)
		vb := b.Intercept(p2p.NodeID(from), p2p.NodeID(to), now)
		if va != vb {
			t.Fatalf("call %d: verdicts diverged: %+v vs %+v", i, va, vb)
		}
	}
}

// TestGridInjectorDeterministic: two same-seed grid injectors flip the same
// cells at the same steps, and the exempt cell never goes down.
func TestGridInjectorDeterministic(t *testing.T) {
	sc := Scenario{Churn: ChurnSpec{Fraction: 0.5, MeanUptime: 10 * time.Minute, MeanDowntime: 5 * time.Minute}}
	const cells, exempt = 100, 37
	step := 12 * time.Second
	a, err := NewGridInjector(sc, 9, cells, step, exempt, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGridInjector(sc, 9, cells, step, exempt, nil)
	if err != nil {
		t.Fatal(err)
	}
	sawDown := false
	for s := 0; s < 500; s++ {
		a.StepChurn(s)
		b.StepChurn(s)
		for i := 0; i < cells; i++ {
			if a.Down(i) != b.Down(i) {
				t.Fatalf("step %d: cell %d state diverged between same-seed injectors", s, i)
			}
		}
		if a.Down(exempt) {
			t.Fatalf("step %d: exempt cell churned out", s)
		}
		if a.DownCells() > 0 {
			sawDown = true
		}
	}
	if !sawDown {
		t.Error("50% churn never took a cell down in 500 steps")
	}
	// Zero scenario: no churn list, no down cells, Allow always true.
	z, err := NewGridInjector(Scenario{}, 9, cells, step, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 50; s++ {
		z.StepChurn(s)
		if z.DownCells() != 0 {
			t.Fatal("zero-scenario grid injector took a cell down")
		}
		if !z.Allow(0, 1, s) || z.ChaosLoss() {
			t.Fatal("zero-scenario grid injector interfered with a link")
		}
	}
}
