package shard

import "testing"

// gridAdj returns the Moore-neighborhood adjacency for a size×size grid in
// the same shape gridsim feeds BuildPlan.
func gridAdj(size int) func(key int) []int32 {
	return func(key int) []int32 {
		var out []int32
		row, col := key/size, key%size
		for dr := -1; dr <= 1; dr++ {
			for dc := -1; dc <= 1; dc++ {
				if dr == 0 && dc == 0 {
					continue
				}
				r, c := row+dr, col+dc
				if r < 0 || r >= size || c < 0 || c >= size {
					continue
				}
				out = append(out, int32(r*size+c))
			}
		}
		return out
	}
}

// TestNewValidates covers the constructor's error surface and kind
// dispatch.
func TestNewValidates(t *testing.T) {
	if _, err := New(KindRange, 1, 0, 1); err == nil {
		t.Fatal("want error for zero keys")
	}
	if _, err := New(KindRange, 1, 10, 0); err == nil {
		t.Fatal("want error for zero shards")
	}
	if _, err := New(KindRange, 1, 4, 5); err == nil {
		t.Fatal("want error for more shards than keys")
	}
	if _, err := New(Kind("mesh"), 1, 10, 2); err == nil {
		t.Fatal("want error for unknown kind")
	}
	r, err := New("", 1, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*RangeRouter); !ok {
		t.Fatalf("empty kind should default to range, got %T", r)
	}
	r, err = New(KindRing, 1, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*RingRouter); !ok {
		t.Fatalf("want ring router, got %T", r)
	}
}

// TestRoutersCoverAndBalance checks the core routing invariants for both
// implementations: every key gets an owner in range, and loads stay near
// even (exactly even for range, within a consistent-hash tolerance for
// ring).
func TestRoutersCoverAndBalance(t *testing.T) {
	const n = 10000
	for _, tc := range []struct {
		kind  Kind
		slack float64 // max relative deviation from n/k per shard
	}{
		{KindRange, 0.001},
		{KindRing, 0.45},
	} {
		for _, k := range []int{1, 4, 16} {
			r, err := New(tc.kind, 7, n, k)
			if err != nil {
				t.Fatal(err)
			}
			if r.Shards() != k {
				t.Fatalf("%s: Shards() = %d, want %d", tc.kind, r.Shards(), k)
			}
			counts := make([]int, k)
			for key := 0; key < n; key++ {
				s := r.Owner(key)
				if s < 0 || s >= k {
					t.Fatalf("%s k=%d: owner %d out of range for key %d", tc.kind, k, s, key)
				}
				counts[s]++
			}
			even := float64(n) / float64(k)
			for s, c := range counts {
				dev := float64(c)/even - 1
				if dev < 0 {
					dev = -dev
				}
				if dev > tc.slack {
					t.Errorf("%s k=%d: shard %d owns %d keys, want %.0f±%.0f%%",
						tc.kind, k, s, c, even, tc.slack*100)
				}
			}
		}
	}
}

// TestRoutingIsPure re-queries owners in a different order and through a
// freshly built router: answers must be identical — routing is a pure
// function of (seed, n, k).
func TestRoutingIsPure(t *testing.T) {
	const n, k = 5000, 8
	for _, kind := range []Kind{KindRange, KindRing} {
		a, _ := New(kind, 42, n, k)
		b, _ := New(kind, 42, n, k)
		for key := n - 1; key >= 0; key-- {
			if a.Owner(key) != b.Owner(key) || a.Owner(key) != a.Owner(key) {
				t.Fatalf("%s: owner of %d unstable", kind, key)
			}
		}
	}
}

// TestRingMovesFraction pins the consistent-hashing contract: growing the
// ring from k to k+1 shards moves roughly n/(k+1) keys, far fewer than the
// range router re-bands, and Moves lists them deterministically ascending.
func TestRingMovesFraction(t *testing.T) {
	const n, seed = 20000, 3
	for _, k := range []int{4, 8} {
		from := NewRing(seed, n, k)
		to := NewRing(seed, n, k+1)
		moved := Moves(from, to, n)
		want := float64(n) / float64(k+1)
		if f := float64(len(moved)); f < want*0.5 || f > want*1.7 {
			t.Errorf("ring %d->%d moved %d keys, want ~%.0f", k, k+1, len(moved), want)
		}
		for i := 1; i < len(moved); i++ {
			if moved[i-1] >= moved[i] {
				t.Fatalf("Moves not strictly ascending at %d", i)
			}
		}
		// Every listed key changed owner and every unlisted key kept it.
		idx := map[int]bool{}
		for _, key := range moved {
			idx[key] = true
		}
		for key := 0; key < n; key++ {
			if (from.Owner(key) != to.Owner(key)) != idx[key] {
				t.Fatalf("Moves disagrees with owner diff at key %d", key)
			}
		}

		// The range router re-bands: it must move far more than the ring.
		rangeMoved := Moves(NewRange(n, k), NewRange(n, k+1), n)
		if len(rangeMoved) < len(moved)*2 {
			t.Errorf("range %d->%d moved %d keys, expected well above ring's %d",
				k, k+1, len(rangeMoved), len(moved))
		}
	}
}

// TestPlanPartitions checks that a plan's key lists partition [0, n):
// ascending within each shard, disjoint, total length n, and consistent
// with Owner.
func TestPlanPartitions(t *testing.T) {
	const size = 40
	n := size * size
	for _, kind := range []Kind{KindRange, KindRing} {
		for _, k := range []int{1, 4, 16} {
			r, _ := New(kind, 11, n, k)
			p := BuildPlan(r, n, gridAdj(size))
			if p.Shards() != k || p.Len() != n {
				t.Fatalf("%s k=%d: plan shape %d/%d", kind, k, p.Shards(), p.Len())
			}
			seen := make([]bool, n)
			total := 0
			for s := 0; s < k; s++ {
				keys := p.Keys(s)
				total += len(keys)
				for i, key := range keys {
					if i > 0 && keys[i-1] >= key {
						t.Fatalf("%s k=%d: shard %d keys not ascending", kind, k, s)
					}
					if seen[key] {
						t.Fatalf("%s k=%d: key %d owned twice", kind, k, key)
					}
					seen[key] = true
					if p.Owner(int(key)) != s {
						t.Fatalf("%s k=%d: Owner(%d) != %d", kind, k, key, s)
					}
				}
			}
			if total != n {
				t.Fatalf("%s k=%d: keys cover %d of %d", kind, k, total, n)
			}
		}
	}
}

// TestHaloSufficiency proves the boundary-exchange contract the sharded
// tick relies on: for every shard, every neighbor of an owned cell is
// either owned or in the halo — a shard reading owned ∪ halo sees the full
// input of each of its cells. Halos must also be ascending, deduplicated,
// and strictly foreign.
func TestHaloSufficiency(t *testing.T) {
	const size = 32
	n := size * size
	adj := gridAdj(size)
	for _, kind := range []Kind{KindRange, KindRing} {
		for _, k := range []int{1, 4, 16} {
			r, _ := New(kind, 5, n, k)
			p := BuildPlan(r, n, adj)
			if k == 1 && p.HaloCells() != 0 {
				t.Fatalf("%s: single shard should have empty halo, got %d", kind, p.HaloCells())
			}
			for s := 0; s < k; s++ {
				inView := map[int32]bool{}
				for _, key := range p.Keys(s) {
					inView[key] = true
				}
				halo := p.Halo(s)
				for i, h := range halo {
					if i > 0 && halo[i-1] >= h {
						t.Fatalf("%s k=%d: shard %d halo not ascending/deduped", kind, k, s)
					}
					if p.Owner(int(h)) == s {
						t.Fatalf("%s k=%d: shard %d halo contains owned key %d", kind, k, s, h)
					}
					inView[h] = true
				}
				for _, key := range p.Keys(s) {
					for _, nb := range adj(int(key)) {
						if !inView[nb] {
							t.Fatalf("%s k=%d: shard %d cannot see neighbor %d of owned %d",
								kind, k, s, nb, key)
						}
					}
				}
			}
		}
	}
}

// TestRangeHaloIsRowBoundary pins the range router's headline property on a
// row-major grid: each interior band's halo is exactly the row above plus
// the row below (2·size cells; edge bands half that).
func TestRangeHaloIsRowBoundary(t *testing.T) {
	const size, k = 32, 4
	n := size * size
	p := BuildPlan(NewRange(n, k), n, gridAdj(size))
	for s := 0; s < k; s++ {
		want := 2 * size
		if s == 0 || s == k-1 {
			want = size
		}
		if got := len(p.Halo(s)); got != want {
			t.Errorf("shard %d halo = %d cells, want %d", s, got, want)
		}
	}
}

// TestMixMatchesDeriveSeed pins Mix to the SplitMix64 finalizer already
// relied on by parallel.DeriveSeed: same constants, same avalanche, so the
// counter-mode draws built on Mix live in the same proven family.
func TestMixMatchesDeriveSeed(t *testing.T) {
	// DeriveSeed(root, i) = Mix(root + (i+1)·Gamma) by construction.
	root, i := int64(12345), 6
	want := uint64(root) + (uint64(i)+1)*Gamma
	want ^= want >> 30
	want *= mul1
	want ^= want >> 27
	want *= mul2
	want ^= want >> 31
	if got := Mix(uint64(root) + (uint64(i)+1)*Gamma); got != want {
		t.Fatalf("Mix = %#x, want %#x", got, want)
	}
	// Mix is bijective with fixed point 0; nearby nonzero inputs must
	// scatter.
	if Mix(1) == Mix(2) || Mix(1)^Mix(2) < 1<<32 {
		t.Fatal("Mix fails the smoke avalanche check")
	}
}
