// Package shard is the deterministic spatial-partitioning layer under the
// million-node worlds (DESIGN.md §13): it decides which shard owns which
// key (a grid cell index or a peer-graph node ID) and materializes that
// decision into a Plan — per-shard key lists plus the halo of foreign cells
// each shard must read at a tick boundary.
//
// Everything here is a pure function of (seed, key count, shard count):
// routing never draws from a shared RNG stream and never depends on
// scheduling, so the same world partitioned into 1, 4, or 16 shards — or
// re-partitioned mid-run — assigns keys identically on every run. The
// engines built on top (gridsim's synchronous sharded tick, netsim's
// partitioned peer graph) rely on that to keep study output byte-identical
// at any shard count.
//
// Two Router implementations ship:
//
//   - RangeRouter: contiguous balanced bands over [0, n). Owned keys are
//     spatially contiguous in row-major order, which minimizes the halo on a
//     grid; a rebalance from k to k' shards moves O(n) keys.
//   - RingRouter: consistent hashing over a 64-bit ring with virtual
//     points. Owned keys interleave (larger halo) but a rebalance from k to
//     k+1 shards moves only ~n/(k+1) keys — the classic trade the paper's
//     AS-level populations motivate.
//
// Both must produce byte-identical simulation output, because ownership
// only decides which worker computes a cell, never what the cell computes.
package shard

import "fmt"

// SplitMix64 constants (Steele, Lea & Flood, OOPSLA 2014). Gamma is
// exported so engines can derive per-(cell, step) counter keys in the same
// family as parallel.DeriveSeed without importing a second mixing scheme.
const (
	Gamma = 0x9E3779B97F4A7C15
	mul1  = 0xBF58476D1CE4E5B9
	mul2  = 0x94D049BB133111EB
)

// Mix is the SplitMix64 finalizer: a fixed bijective avalanche on 64 bits.
// Engines use it to turn a (seed, step, key) counter into an independent
// draw — the counter-mode RNG that makes a sharded tick's randomness a pure
// function of position and time instead of a shared sequential stream.
func Mix(z uint64) uint64 {
	z ^= z >> 30
	z *= mul1
	z ^= z >> 27
	z *= mul2
	z ^= z >> 31
	return z
}

// Router assigns every key in [0, n) to a shard in [0, Shards()). An
// implementation must be a pure function: Owner(key) may not depend on call
// order, prior calls, or any mutable state.
type Router interface {
	// Shards returns the number of shards keys are routed across.
	Shards() int
	// Owner returns the shard that owns key.
	Owner(key int) int
}

// Kind names a Router implementation in configuration.
type Kind string

const (
	// KindRange selects contiguous balanced bands (the default: smallest
	// halo on spatially local worlds).
	KindRange Kind = "range"
	// KindRing selects consistent hashing with virtual points (minimal key
	// movement under rebalancing).
	KindRing Kind = "ring"
)

// New builds a router of the given kind over n keys and shards shards.
// An empty kind means KindRange. The seed only matters for KindRing (it
// places the virtual points); KindRange ignores it, so range-routed runs
// need no seed plumbing.
func New(kind Kind, seed int64, n, shards int) (Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: key count %d < 1", n)
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	if shards > n {
		return nil, fmt.Errorf("shard: shard count %d exceeds key count %d", shards, n)
	}
	switch kind {
	case KindRange, "":
		return NewRange(n, shards), nil
	case KindRing:
		return NewRing(seed, n, shards), nil
	}
	return nil, fmt.Errorf("shard: unknown router kind %q", kind)
}

// Moves returns the keys in [0, n) whose owner differs between from and to,
// in ascending key order — the deterministic movement list a mid-run
// rebalance must apply. The caller owns the returned slice.
func Moves(from, to Router, n int) []int {
	var moved []int
	for k := 0; k < n; k++ {
		if from.Owner(k) != to.Owner(k) {
			moved = append(moved, k)
		}
	}
	return moved
}
