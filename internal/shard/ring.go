package shard

import "sort"

// virtualPoints is the number of ring positions each shard claims. More
// points smooth the load split (relative imbalance shrinks like
// 1/√points) at the cost of a larger table; 64 keeps shard loads within a
// few percent of even for the shard counts the studies sweep (1–16) while
// the whole table still fits in L1.
const virtualPoints = 64

// RingRouter is consistent hashing over the 64-bit circle: each shard
// claims virtualPoints positions derived from (seed, shard, point) by pure
// SplitMix64 mixing, and a key belongs to the shard owning the first point
// at or clockwise after the key's own hash. Ownership of a key therefore
// depends only on the points near its hash — growing the ring from k to
// k+1 shards moves ~n/(k+1) keys instead of re-banding everything, which
// is what makes mid-run shard joins cheap and deterministic.
type RingRouter struct {
	k      int
	points []ringPoint
	seed   uint64
}

type ringPoint struct {
	pos   uint64
	shard int32
}

// NewRing builds a consistent-hash router over n keys and k shards. The
// seed fixes the virtual-point placement; the same (seed, k) always yields
// the same ring regardless of n, so a ring can be reused across worlds.
// Callers normally go through New, which validates 1 <= k <= n.
func NewRing(seed int64, n, k int) *RingRouter {
	r := &RingRouter{k: k, seed: uint64(seed), points: make([]ringPoint, 0, k*virtualPoints)}
	for s := 0; s < k; s++ {
		// Per-shard stream base, then one mix per virtual point: the same
		// derive-then-mix shape as parallel.DeriveSeed, so points from
		// different shards and nearby seeds are statistically independent.
		base := Mix(uint64(seed) + (uint64(s)+1)*Gamma)
		for v := 0; v < virtualPoints; v++ {
			r.points = append(r.points, ringPoint{
				pos:   Mix(base + (uint64(v)+1)*Gamma),
				shard: int32(s),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		// A 64-bit collision between mixed points is astronomically rare;
		// break it by shard index so the ring order is still total.
		return a.shard < b.shard
	})
	return r
}

// Shards returns the shard count.
func (r *RingRouter) Shards() int { return r.k }

// Owner hashes the key onto the circle and walks clockwise to the first
// virtual point, wrapping past zero.
func (r *RingRouter) Owner(key int) int {
	h := Mix(r.seed ^ Mix((uint64(key)+1)*Gamma))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].shard)
}
