package shard

// RangeRouter partitions [0, n) into contiguous bands whose sizes differ by
// at most one key: shard s owns [floor(s·n/k), floor((s+1)·n/k)). On a
// row-major grid contiguous bands are horizontal stripes, so the halo each
// shard reads is one row above and one row below its band — the smallest
// boundary-exchange volume any partition of a Moore-neighborhood grid can
// achieve up to rotation.
type RangeRouter struct {
	n, k int
}

// NewRange builds a contiguous band router over n keys and k shards.
// Callers normally go through New, which validates 1 <= k <= n.
func NewRange(n, k int) *RangeRouter { return &RangeRouter{n: n, k: k} }

// Shards returns the shard count.
func (r *RangeRouter) Shards() int { return r.k }

// Owner returns floor(key·k/n), the band containing key. The multiply
// stays in int range for any world this repository can hold (n·k < 2^63).
func (r *RangeRouter) Owner(key int) int {
	return key * r.k / r.n
}
