package shard

// Plan materializes a Router over a concrete world: the owner of every key,
// each shard's key list, and each shard's halo — the foreign keys whose
// state the shard must read when it ticks its own, i.e. the per-tick
// boundary-exchange set. Like the engines it serves, the Plan is held
// structure-of-arrays: one flat backing slice per relation with per-shard
// offsets, so a 10⁶-key world costs a handful of allocations however many
// shards it splits into.
//
// All lists are in ascending key order. That is the merge-order half of the
// determinism contract: any fold over a shard's keys — and any fold over
// shards 0..k-1 of per-shard results — visits keys in a fixed total order,
// so merged statistics cannot depend on which worker ticked which shard.
type Plan struct {
	router Router
	// owner[key] is the shard that owns key.
	owner []int32
	// keys/keyOff: shard s owns keys[keyOff[s]:keyOff[s+1]], ascending.
	keys   []int32
	keyOff []int32
	// halo/haloOff: shard s reads halo[haloOff[s]:haloOff[s+1]], ascending —
	// every key that neighbors one of s's keys but belongs to another shard.
	halo    []int32
	haloOff []int32
}

// BuildPlan routes every key in [0, n) and derives per-shard key and halo
// lists. adj returns a key's neighborhood (any order; the grid passes its
// flat Moore-neighbor cache, the peer graph its outbound lists). adj may be
// nil for worlds with no read-across-shards coupling, leaving every halo
// empty.
func BuildPlan(r Router, n int, adj func(key int) []int32) *Plan {
	k := r.Shards()
	p := &Plan{
		router: r,
		owner:  make([]int32, n),
		keys:   make([]int32, n),
		keyOff: make([]int32, k+1),
	}
	counts := make([]int32, k)
	for key := 0; key < n; key++ {
		s := r.Owner(key)
		p.owner[key] = int32(s)
		counts[s]++
	}
	for s := 0; s < k; s++ {
		p.keyOff[s+1] = p.keyOff[s] + counts[s]
	}
	fill := make([]int32, k)
	copy(fill, p.keyOff[:k])
	for key := 0; key < n; key++ {
		s := p.owner[key]
		p.keys[fill[s]] = int32(key)
		fill[s]++
	}

	p.haloOff = make([]int32, k+1)
	if adj == nil || k == 1 {
		// One shard owns everything (or nothing is read across shards):
		// every halo is empty.
		return p
	}
	// stamp[key] = s+1 marks key as already in shard s's halo, so each
	// foreign neighbor is listed once however many owned cells touch it.
	// Keys ascend within each shard and neighbors are deduped on first
	// sight, then sorted per shard below — ascending order either way; the
	// insertion sort never moves anything for the grid's row-major bands.
	stamp := make([]int32, n)
	for s := 0; s < k; s++ {
		for _, key := range p.keys[p.keyOff[s]:p.keyOff[s+1]] {
			for _, nb := range adj(int(key)) {
				if p.owner[nb] != int32(s) && stamp[nb] != int32(s)+1 {
					stamp[nb] = int32(s) + 1
					p.halo = append(p.halo, nb)
				}
			}
		}
		p.haloOff[s+1] = int32(len(p.halo))
		sortI32(p.halo[p.haloOff[s]:p.haloOff[s+1]])
	}
	return p
}

// sortI32 is an insertion sort: per-shard halos are nearly sorted already
// (owned keys are visited ascending), so this beats a general sort and
// allocates nothing.
func sortI32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// Router returns the router the plan was built from.
func (p *Plan) Router() Router { return p.router }

// Shards returns the shard count.
func (p *Plan) Shards() int { return len(p.keyOff) - 1 }

// Len returns the number of keys routed.
func (p *Plan) Len() int { return len(p.owner) }

// Owner returns the shard owning key.
func (p *Plan) Owner(key int) int { return int(p.owner[key]) }

// Keys returns shard s's owned keys in ascending order. The slice aliases
// the plan's backing array and must not be mutated.
func (p *Plan) Keys(s int) []int32 { return p.keys[p.keyOff[s]:p.keyOff[s+1]] }

// Halo returns shard s's halo — foreign keys it reads each tick — in
// ascending order. The slice aliases the plan's backing array and must not
// be mutated.
func (p *Plan) Halo(s int) []int32 { return p.halo[p.haloOff[s]:p.haloOff[s+1]] }

// HaloCells returns the total boundary-exchange volume per tick: the sum
// of all per-shard halo sizes.
func (p *Plan) HaloCells() int { return len(p.halo) }
