package measure

import (
	"math"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/topology"
)

var sharedPop *dataset.Population

func testPop(t *testing.T) *dataset.Population {
	t.Helper()
	if sharedPop == nil {
		p, err := dataset.Generate(1)
		if err != nil {
			t.Fatal(err)
		}
		sharedPop = p
	}
	return sharedPop
}

func TestCharacterizeFamilies(t *testing.T) {
	rows := CharacterizeFamilies(testPop(t))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Family != topology.FamilyIPv4 || rows[0].Count != dataset.IPv4Nodes {
		t.Errorf("IPv4 row = %+v", rows[0])
	}
	if rows[2].Family != topology.FamilyOnion || rows[2].Count != dataset.OnionNodes {
		t.Errorf("Onion row = %+v", rows[2])
	}
	// Tor link speed dwarfs IPv4 (Table I: 432 vs 25 Mbps).
	if rows[2].LinkSpeed.Mean < 3*rows[0].LinkSpeed.Mean {
		t.Errorf("Tor speed %v not well above IPv4 %v", rows[2].LinkSpeed.Mean, rows[0].LinkSpeed.Mean)
	}
	// Tor latency index is low (0.24 vs 0.70).
	if rows[2].LatencyIndex.Mean >= rows[0].LatencyIndex.Mean {
		t.Error("Tor latency index should be below IPv4's")
	}
}

func TestTopASesMatchesTableII(t *testing.T) {
	rows := TopASes(testPop(t), 10)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := []struct {
		label string
		nodes int
	}{
		{"AS24940", 1030}, {"AS16276", 697}, {"AS37963", 640}, {"AS16509", 609},
		{"AS14061", 460}, {"AS7922", 414}, {"AS4134", 394}, {"TOR", 319},
		{"AS51167", 288}, {"AS45102", 279},
	}
	for i, w := range want {
		if rows[i].Label != w.label || rows[i].Nodes != w.nodes {
			t.Errorf("row %d = %+v, want %v %d", i, rows[i], w.label, w.nodes)
		}
	}
	// AS24940 fraction: 7.54% in the paper.
	if math.Abs(rows[0].Fraction-0.0754) > 0.0015 {
		t.Errorf("AS24940 fraction = %v, want ~0.0754", rows[0].Fraction)
	}
}

func TestTopOrgsMatchesTableII(t *testing.T) {
	rows := TopOrgs(testPop(t), 10)
	want := []struct {
		name  string
		nodes int
	}{
		{"Hetzner Online GmbH", 1030},
		{"Amazon.com, Inc", 756},
		{"OVH SAS", 700},
		{"Hangzhou Alibaba", 640},
		{"DigitalOcean, LLC", 503},
		{"Comcast Communication", 414},
		{"No.31, Jin-rong Street", 394},
		{"TOR", 319},
		{"Contabo GmbH", 288},
		{"Alibaba (China)", 279},
	}
	for i, w := range want {
		if rows[i].Label != w.name || rows[i].Nodes != w.nodes {
			t.Errorf("org row %d = %q/%d, want %q/%d", i, rows[i].Label, rows[i].Nodes, w.name, w.nodes)
		}
	}
}

func TestCdfsAndCentralizationChange(t *testing.T) {
	p := testPop(t)
	asCdf := ASCdf(p)
	orgCdf := OrgCdf(p)
	if err := asCdf.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := orgCdf.Validate(); err != nil {
		t.Fatal(err)
	}
	// Orgs dominate ASes pointwise (more concentrated).
	for _, k := range []float64{5, 10, 20, 50, 100} {
		if orgCdf.At(k)+1e-9 < asCdf.At(k) {
			t.Errorf("org CDF below AS CDF at %v: %v < %v", k, orgCdf.At(k), asCdf.At(k))
		}
	}
	rows, err := CentralizationChange(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Table III: 50% row changes by ~52%, 30% row by ~38%.
	if rows[0].Fraction != 0.50 || rows[0].ASes2017 != 50 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[0].ChangePct < 44 || rows[0].ChangePct > 60 {
		t.Errorf("50%% change = %v, want ~52", rows[0].ChangePct)
	}
	if rows[1].ChangePct < 25 || rows[1].ChangePct > 50 {
		t.Errorf("30%% change = %v, want ~38", rows[1].ChangePct)
	}
}

func TestHijackCurve(t *testing.T) {
	p := testPop(t)
	curve, err := HijackCurve(p, 24940)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	// Monotone, ends at 1.0.
	for i := 1; i < len(curve); i++ {
		if curve[i].Fraction < curve[i-1].Fraction {
			t.Fatal("curve not monotone")
		}
	}
	if last := curve[len(curve)-1]; math.Abs(last.Fraction-1) > 1e-9 {
		t.Errorf("curve ends at %v", last.Fraction)
	}
	// Figure 4 shape: Hetzner 95% within 25 hijacks, Amazon needs > 140.
	k24940, err := PrefixesToIsolate(p, 24940, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if k24940 > 25 {
		t.Errorf("AS24940 95%% needs %d hijacks, want <= 25", k24940)
	}
	k16509, err := PrefixesToIsolate(p, 16509, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if k16509 <= 140 {
		t.Errorf("AS16509 95%% needs %d hijacks, want > 140", k16509)
	}
	if k24940 >= k16509 {
		t.Error("hosting AS should be cheaper to isolate than cloud AS")
	}
}

func TestHijackCurveUnknownAS(t *testing.T) {
	if _, err := HijackCurve(testPop(t), 99999999); err == nil {
		t.Error("unknown AS accepted")
	}
	if _, err := PrefixesToIsolate(testPop(t), 99999999, 0.5); err == nil {
		t.Error("unknown AS accepted")
	}
}

func TestOrderedPrefixes(t *testing.T) {
	p := testPop(t)
	prefixes, err := OrderedPrefixes(p, 24940)
	if err != nil {
		t.Fatal(err)
	}
	if len(prefixes) == 0 {
		t.Fatal("no prefixes")
	}
	// The first prefix must host at least as many nodes as the second.
	count := func(pfx topology.Prefix) int {
		n := 0
		for _, rec := range p.NodesInAS(24940) {
			if rec.Prefix == pfx {
				n++
			}
		}
		return n
	}
	if len(prefixes) >= 2 && count(prefixes[0]) < count(prefixes[1]) {
		t.Error("prefixes not ordered by node count")
	}
}

func TestTopVersions(t *testing.T) {
	rows := TopVersions(testPop(t), 5)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Version != "Bitcoin Core v0.16.0" {
		t.Errorf("top version = %q", rows[0].Version)
	}
	if math.Abs(rows[0].Share-0.3628) > 0.005 {
		t.Errorf("v0.16.0 share = %v, want ~0.3628", rows[0].Share)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Nodes > rows[i-1].Nodes {
			t.Error("versions not sorted")
		}
	}
}

func TestSyncedASSeries(t *testing.T) {
	p := testPop(t)
	tr, err := p.RunTrace(dataset.TraceConfig{
		Duration: 4 * time.Hour, SampleEvery: 10 * time.Minute, Seed: 3,
		TrackSyncedByAS: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	series, err := SyncedASSeries(tr, []topology.ASN{24940, 16276})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for asn, s := range series {
		if len(s) != len(tr.Samples) {
			t.Fatalf("AS%d series length %d != samples %d", asn, len(s), len(tr.Samples))
		}
		for _, v := range s {
			if v < 0 {
				t.Fatalf("negative synced count")
			}
		}
	}
	// Untracked trace errors.
	tr2, err := p.RunTrace(dataset.TraceConfig{Duration: time.Hour, SampleEvery: 10 * time.Minute, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SyncedASSeries(tr2, []topology.ASN{24940}); err == nil {
		t.Error("untracked trace accepted")
	}
}
