// Package measure implements the paper's analyses over the (synthetic)
// crawl: per-family node characterization (Table I), AS/organization top-k
// tables (Table II) and CDFs (Figure 3), year-over-year centralization
// change (Table III), per-AS BGP-prefix hijack curves (Figure 4), and the
// consensus-lag series readers behind Figures 6 and 8 and Tables V and VII.
package measure

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/topology"
)

// TableIRow is one computed row of Table I.
type TableIRow struct {
	Family       topology.AddrFamily
	Count        int
	LinkSpeed    stats.Summary
	LatencyIndex stats.Summary
	UptimeIndex  stats.Summary
}

// CharacterizeFamilies recomputes Table I from a population.
func CharacterizeFamilies(p *dataset.Population) []TableIRow {
	byFam := map[topology.AddrFamily][]dataset.NodeRecord{}
	for _, n := range p.Nodes {
		byFam[n.Family] = append(byFam[n.Family], n)
	}
	families := []topology.AddrFamily{topology.FamilyIPv4, topology.FamilyIPv6, topology.FamilyOnion}
	rows := make([]TableIRow, 0, len(families))
	for _, f := range families {
		nodes := byFam[f]
		var speed, lat, upt []float64
		for _, n := range nodes {
			speed = append(speed, n.LinkSpeedMbs)
			lat = append(lat, n.LatencyIndex)
			upt = append(upt, n.UptimeIndex)
		}
		rows = append(rows, TableIRow{
			Family:       f,
			Count:        len(nodes),
			LinkSpeed:    stats.Summarize(speed),
			LatencyIndex: stats.Summarize(lat),
			UptimeIndex:  stats.Summarize(upt),
		})
	}
	return rows
}

// HostRow is one row of the Table II style top-k listings.
type HostRow struct {
	Label    string // "AS24940" or organization name
	Nodes    int
	Fraction float64
}

// TopASes returns the n ASes hosting the most nodes, with fractions of the
// total population.
func TopASes(p *dataset.Population, n int) []HostRow {
	rows := make([]HostRow, 0, len(p.ASRows))
	for _, r := range p.ASRows {
		label := fmt.Sprintf("AS%d", r.ASN)
		if r.ASN == topology.TorASN {
			label = "TOR"
		}
		rows = append(rows, HostRow{Label: label, Nodes: r.Nodes})
	}
	return sortHostRows(rows, len(p.Nodes), n)
}

// TopOrgs returns the n organizations hosting the most nodes.
func TopOrgs(p *dataset.Population, n int) []HostRow {
	counts := p.OrgNodeCounts()
	rows := make([]HostRow, 0, len(counts))
	for org, c := range counts {
		rows = append(rows, HostRow{Label: org, Nodes: c})
	}
	return sortHostRows(rows, len(p.Nodes), n)
}

// sortHostRows establishes the total row order (nodes descending, label as
// the tiebreak — so equal counts cannot leak map iteration order), then
// truncates to n and fills fractions.
func sortHostRows(rows []HostRow, total, n int) []HostRow {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nodes != rows[j].Nodes {
			return rows[i].Nodes > rows[j].Nodes
		}
		return rows[i].Label < rows[j].Label
	})
	if n > len(rows) {
		n = len(rows)
	}
	rows = rows[:n]
	for i := range rows {
		rows[i].Fraction = float64(rows[i].Nodes) / float64(total)
	}
	return rows
}

// ASCdf returns the Figure 3 CDF over ASes.
func ASCdf(p *dataset.Population) stats.CDF {
	counts := make([]int, 0, len(p.ASRows))
	for _, r := range p.ASRows {
		counts = append(counts, r.Nodes)
	}
	return stats.CumulativeFromCounts(counts)
}

// OrgCdf returns the Figure 3 CDF over organizations.
func OrgCdf(p *dataset.Population) stats.CDF {
	counts := make([]int, 0)
	//lint:ignore maporder CumulativeFromCounts sorts the counts internally, so collection order cannot reach the CDF
	for _, c := range p.OrgNodeCounts() {
		counts = append(counts, c)
	}
	return stats.CumulativeFromCounts(counts)
}

// ChangeRow is one row of Table III.
type ChangeRow struct {
	Fraction  float64
	ASes2017  int
	ASes2018  int
	ChangePct float64
}

// CentralizationChange recomputes Table III: for each fraction, the 2017
// baseline count (from Apostolaki et al., embedded) against the count
// measured on this population, with the paper's change metric
// C = (N1-N2)*100/N1.
func CentralizationChange(p *dataset.Population) ([]ChangeRow, error) {
	cdf := ASCdf(p)
	out := make([]ChangeRow, 0, 2)
	for _, base := range dataset.TableIII() {
		rank, err := cdf.RankFor(base.Fraction)
		if err != nil {
			return nil, fmt.Errorf("measure: %w", err)
		}
		out = append(out, ChangeRow{
			Fraction:  base.Fraction,
			ASes2017:  base.ASes2017,
			ASes2018:  rank,
			ChangePct: float64(base.ASes2017-rank) * 100 / float64(base.ASes2017),
		})
	}
	return out, nil
}

// HijackPoint is one point of a Figure 4 curve: after hijacking the k most
// node-dense prefixes of the AS, the fraction of that AS's nodes captured.
type HijackPoint struct {
	Hijacks  int
	Fraction float64
}

// HijackCurve computes the Figure 4 curve for one AS: prefixes sorted by
// node population descending, cumulative captured fraction per prefix
// hijacked.
func HijackCurve(p *dataset.Population, asn topology.ASN) ([]HijackPoint, error) {
	nodes := p.NodesInAS(asn)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("measure: AS%d hosts no nodes", asn)
	}
	perPrefix := map[topology.Prefix]int{}
	for _, n := range nodes {
		perPrefix[n.Prefix]++
	}
	counts := make([]int, 0, len(perPrefix))
	for _, c := range perPrefix {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	out := make([]HijackPoint, 0, len(counts))
	cum := 0
	for i, c := range counts {
		cum += c
		out = append(out, HijackPoint{Hijacks: i + 1, Fraction: float64(cum) / float64(len(nodes))})
	}
	return out, nil
}

// PrefixesToIsolate returns the minimum number of prefix hijacks capturing
// at least frac of the AS's nodes.
func PrefixesToIsolate(p *dataset.Population, asn topology.ASN, frac float64) (int, error) {
	curve, err := HijackCurve(p, asn)
	if err != nil {
		return 0, err
	}
	for _, pt := range curve {
		if pt.Fraction >= frac-1e-12 {
			return pt.Hijacks, nil
		}
	}
	return 0, fmt.Errorf("measure: fraction %v unreachable for AS%d", frac, asn)
}

// OrderedPrefixes returns the AS's prefixes sorted by hosted-node count
// descending — the hijack priority list an attacker would use.
func OrderedPrefixes(p *dataset.Population, asn topology.ASN) ([]topology.Prefix, error) {
	nodes := p.NodesInAS(asn)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("measure: AS%d hosts no nodes", asn)
	}
	perPrefix := map[topology.Prefix]int{}
	for _, n := range nodes {
		perPrefix[n.Prefix]++
	}
	prefixes := make([]topology.Prefix, 0, len(perPrefix))
	for pfx := range perPrefix {
		prefixes = append(prefixes, pfx)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		if perPrefix[prefixes[i]] != perPrefix[prefixes[j]] {
			return perPrefix[prefixes[i]] > perPrefix[prefixes[j]]
		}
		return prefixes[i].Base < prefixes[j].Base
	})
	return prefixes, nil
}

// VersionShareRow is one recomputed Table VIII row.
type VersionShareRow struct {
	Version string
	Nodes   int
	Share   float64
}

// TopVersions returns the n most-used software versions.
func TopVersions(p *dataset.Population, n int) []VersionShareRow {
	counts := p.VersionCounts()
	rows := make([]VersionShareRow, 0, len(counts))
	for v, c := range counts {
		rows = append(rows, VersionShareRow{Version: v, Nodes: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nodes != rows[j].Nodes {
			return rows[i].Nodes > rows[j].Nodes
		}
		return rows[i].Version < rows[j].Version
	})
	if n > len(rows) {
		n = len(rows)
	}
	rows = rows[:n]
	for i := range rows {
		rows[i].Share = float64(rows[i].Nodes) / float64(len(p.Nodes))
	}
	return rows
}

// SyncedASSeries extracts Figure 8(b,c): per-sample synced-node counts for
// the given ASes from a trace that tracked per-AS sync.
func SyncedASSeries(tr *dataset.Trace, ases []topology.ASN) (map[topology.ASN][]int, error) {
	if len(tr.Samples) == 0 {
		return nil, fmt.Errorf("measure: empty trace")
	}
	if tr.Samples[0].SyncedByAS == nil {
		return nil, fmt.Errorf("measure: trace lacks per-AS sync tracking")
	}
	out := make(map[topology.ASN][]int, len(ases))
	for _, asn := range ases {
		series := make([]int, 0, len(tr.Samples))
		for _, s := range tr.Samples {
			series = append(series, s.SyncedByAS[asn])
		}
		out[asn] = series
	}
	return out, nil
}
