// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so the
// lint suite works in a hermetic build (no module downloads). It keeps the
// upstream API shape — Analyzer, Pass, Diagnostic, SuggestedFix — so the
// analyzers in sibling packages read like stock go/analysis checkers and
// could be ported to the real framework by changing one import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (used in diagnostics and in
// //lint:ignore directives), one-paragraph documentation, and a Run function
// applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives. It must be a valid Go identifier.
	Name string
	// Doc is the help text: first line is a summary, the rest explains the
	// invariant the analyzer encodes.
	Doc string
	// Run applies the analyzer to one package and reports diagnostics via
	// pass.Report / pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files are the parsed source files of the package, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds resolved identifiers, expression types, and
	// selections for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file — several
// analyzers in this suite scope their invariant to non-test code.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// Diagnostic is one finding: a source range, a message, and zero or more
// machine-applicable fixes.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional: defaults to Pos
	Message string
	// SuggestedFixes are edits the driver may apply under -fix. A fix must
	// be safe: applying it preserves behaviour except for the invariant
	// being restored.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one alternative fix, expressed as raw text edits.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source in [Pos, End) with NewText. Insertions use
// Pos == End.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
