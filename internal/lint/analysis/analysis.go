// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so the
// lint suite works in a hermetic build (no module downloads). It keeps the
// upstream API shape — Analyzer, Pass, Diagnostic, SuggestedFix — so the
// analyzers in sibling packages read like stock go/analysis checkers and
// could be ported to the real framework by changing one import.
//
// Beyond the upstream shape, the package carries the interprocedural layer
// of DESIGN.md §8: an Analyzer may declare Requires dependencies on other
// analyzers (the fact-style mechanism upstream spells Requires +
// ResultType), and a driver that loads a whole program at once exposes it
// through Pass.Program so passes like internal/lint/dataflow can build
// call graphs and function summaries that cross package boundaries.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// Analyzer describes one static check: a name (used in diagnostics and in
// //lint:ignore directives), one-paragraph documentation, and a Run function
// applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives. It must be a valid Go identifier.
	Name string
	// Doc is the help text: first line is a summary, the rest explains the
	// invariant the analyzer encodes.
	Doc string
	// Version participates in the driver's action-cache key: bump it when
	// the analyzer's behaviour changes so stale cached findings are not
	// replayed. Empty means "v0".
	Version string
	// Requires lists analyzers whose results this analyzer consumes. The
	// driver runs them on the same package first and makes their return
	// values available in Pass.ResultOf. The graph must be acyclic.
	Requires []*Analyzer
	// Run applies the analyzer to one package, reports diagnostics via
	// pass.Report / pass.Reportf, and may return a result value for
	// analyzers that list it in Requires.
	Run func(*Pass) (any, error)
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files are the parsed source files of the package, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds resolved identifiers, expression types, and
	// selections for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
	// ResultOf holds the return values of the analyzers named in
	// Analyzer.Requires, keyed by analyzer. Set by the driver.
	ResultOf map[*Analyzer]any
	// Program is the whole load set, for interprocedural passes. Drivers
	// that analyze packages in isolation may leave it nil; passes that
	// need it must degrade gracefully (or error) when it is absent.
	Program *Program
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file — several
// analyzers in this suite scope their invariant to non-test code.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// PackageInfo is one loaded package as seen by interprocedural passes: the
// same syntax and type information a Pass carries, without the per-analyzer
// fields.
type PackageInfo struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Program is the whole load set handed to interprocedural passes. A driver
// builds one Program per run and shares it across every Pass; passes use
// Memo to build whole-program indexes exactly once even when the driver
// analyzes packages concurrently.
type Program struct {
	// Packages are the loaded packages, sorted by import path. The slice
	// and everything reachable from it must be treated as read-only.
	Packages []*PackageInfo

	mu   sync.Mutex
	memo map[string]any
}

// NewProgram wraps a load set.
func NewProgram(pkgs []*PackageInfo) *Program {
	return &Program{Packages: pkgs, memo: map[string]any{}}
}

// Memo returns the value cached under key, computing it with build on first
// use. It is safe for concurrent use by parallel driver workers; build runs
// at most once per key and must not call Memo reentrantly.
func (p *Program) Memo(key string, build func() any) any {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.memo[key]; ok {
		return v
	}
	v := build()
	p.memo[key] = v
	return v
}

// Diagnostic is one finding: a source range, a message, and zero or more
// machine-applicable fixes.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional: defaults to Pos
	Message string
	// SuggestedFixes are edits the driver may apply under -fix. A fix must
	// be safe: applying it preserves behaviour except for the invariant
	// being restored.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one alternative fix, expressed as raw text edits.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source in [Pos, End) with NewText. Insertions use
// Pos == End.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
