// Package checkederr flags statements that silently drop an error return.
// In an experiment pipeline a swallowed I/O or encoding error does not
// crash — it yields a truncated table or CSV that looks like a result. The
// invariant: in non-test code, an error may not vanish. Three forms are
// flagged: a call whose type includes error standing alone as a statement;
// an assignment whose left-hand side is entirely blank (`_, _ = f()`), which
// hides the error just as thoroughly while looking deliberate; and a
// deferred Close, whose error (the final flush for writable files) is
// unrecoverable by the time the defer runs. Handle the error, or discard it
// as a single `_ =` with a reason, or suppress with a justified directive.
//
// Documented exemptions (DESIGN.md §8): the fmt print family, the
// never-failing writers strings.Builder and bytes.Buffer, and hash.Hash
// implementations (their Write is defined to never return an error).
package checkederr

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/internal/astutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "checkederr",
	Doc: "flags discarded error results in non-test code: bare call statements, " +
		"all-blank assignments, and deferred Close",
	Version: "3",
	Run:     run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && returnsError(pass, call) && !exempt(pass, call) {
					pass.Reportf(call.Pos(),
						"unchecked error: result of %s is discarded; handle it or assign to _ with a reason",
						types.ExprString(call.Fun))
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			case *ast.DeferStmt:
				checkDeferredClose(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkBlankAssign flags assignments that blank every result of an
// error-returning call (`_, _ = f()`). A single `_ = f()` stays sanctioned:
// one lone blank reads as a deliberate, reviewable discard, while an
// all-blank tuple buries which result was the error.
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) < 2 {
		return
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return
		}
	}
	for _, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !returnsError(pass, call) || exempt(pass, call) {
			continue
		}
		pass.Reportf(call.Pos(),
			"unchecked error: result of %s is discarded by an all-blank assignment; name the error or keep a single _ with a reason",
			types.ExprString(call.Fun))
	}
}

// checkDeferredClose flags `defer x.Close()` when Close returns an error:
// for writable files the deferred Close carries the final flush, and its
// error is lost with no one left to see it. Close explicitly on the success
// path (keeping the defer as a no-op backstop needs a named-return wrapper),
// or justify the discard with a directive for read-only handles.
func checkDeferredClose(pass *analysis.Pass, d *ast.DeferStmt) {
	call := d.Call
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return
	}
	if !returnsError(pass, call) || exempt(pass, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"unchecked error: deferred %s discards its error; close explicitly and handle it, or justify with a directive",
		types.ExprString(call.Fun))
}

// returnsError reports whether the call's result type is or contains error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isError(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isError(t)
	}
}

// errorType is the built-in error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isError(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

// exempt reports whether the callee is on the documented allowlist: the fmt
// print family (whose error is the writer's, unusable for stdout and
// in-memory sinks), methods of the never-failing in-memory writers, and
// hash.Hash implementations (Write never returns an error by contract).
func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := astutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			path, name := named.Obj().Pkg().Path(), named.Obj().Name()
			if (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer") {
				return true
			}
		}
		// Judge the hash.Hash shape on the operand's type, not the method's
		// declared receiver: hash.Hash embeds io.Writer, so Write's receiver
		// is io.Writer and says nothing about the rest of the method set.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := pass.TypesInfo.TypeOf(sel.X); t != nil && isHashHash(t) {
				return true
			}
		}
	}
	return false
}

// isHashHash reports whether the receiver carries the hash.Hash method set
// (Write, Sum, Reset, Size, BlockSize) — structural, so it matches both the
// interface itself and concrete digest types without importing their
// packages.
func isHashHash(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for _, name := range [...]string{"Write", "Sum", "Reset", "Size", "BlockSize"} {
		if sel := ms.Lookup(nil, name); sel == nil {
			return false
		}
	}
	return true
}
