// Package checkederr flags statements that silently drop an error return.
// In an experiment pipeline a swallowed I/O or encoding error does not
// crash — it yields a truncated table or CSV that looks like a result. The
// invariant: in non-test code, a call whose type includes error may not
// stand alone as a statement; handle the error or assign it to _ with a
// reason. Deliberately out of scope, and documented in DESIGN.md §8:
// `defer f.Close()` (a DeferStmt, not an ExprStmt), the fmt print family,
// and the never-failing writers strings.Builder and bytes.Buffer.
package checkederr

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/internal/astutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "checkederr",
	Doc: "flags expression statements that discard an error result in " +
		"non-test code",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || exempt(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"unchecked error: result of %s is discarded; handle it or assign to _ with a reason",
				types.ExprString(call.Fun))
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's result type is or contains error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isError(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isError(t)
	}
}

// errorType is the built-in error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isError(t types.Type) bool {
	return t != nil && types.Implements(t, errorType)
}

// exempt reports whether the callee is on the documented allowlist: the fmt
// print family (whose error is the writer's, unusable for stdout and
// in-memory sinks) and methods of the never-failing in-memory writers.
func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := astutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			path, name := named.Obj().Pkg().Path(), named.Obj().Name()
			if (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer") {
				return true
			}
		}
	}
	return false
}
