package checkederr_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/checkederr"
)

// TestCheckedErr covers dropped error statements plus the documented
// exemptions: defer, the fmt print family, explicit _ discards, and the
// never-failing in-memory writers — and the journal-write and
// durable-write error paths, where a dropped append, sync, or rename
// error silently loses data the caller believes committed.
func TestCheckedErr(t *testing.T) {
	analysistest.Run(t, "../testdata", checkederr.Analyzer, "checkederr", "checkederr_journal", "checkederr_iofault")
}
