// Positive cases: journal-write error paths. A write-ahead journal is only
// crash-safe if every append and close error is surfaced — a dropped error
// here means a record the resume path will silently never see.
package checkederr_journal

import "os"

type record struct {
	Task int
	Seed int64
}

type journal struct {
	f *os.File
}

func (j *journal) Append(rec record) error {
	_, err := j.f.Write([]byte{byte(rec.Task)})
	return err
}

func (j *journal) Close() error { return j.f.Close() }

func checkpointAll(j *journal, recs []record) {
	for _, rec := range recs {
		j.Append(rec) // want `unchecked error: result of j.Append is discarded`
	}
	j.f.Sync() // want `unchecked error: result of j.f.Sync is discarded`
	j.Close()  // want `unchecked error: result of j.Close is discarded`
}

func checkpointAllChecked(j *journal, recs []record) error {
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			return err
		}
	}
	return j.Close()
}
