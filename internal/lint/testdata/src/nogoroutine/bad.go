// Positive cases: raw concurrency outside internal/parallel.
package nogoroutine

import "sync"

func fanOut(jobs []func()) {
	var wg sync.WaitGroup // want `raw sync.WaitGroup outside internal/parallel`
	wg.Add(len(jobs))
	for _, job := range jobs {
		go func() { // want `raw goroutine outside internal/parallel`
			defer wg.Done()
			job()
		}()
	}
	wg.Wait()
}

func fire(job func()) {
	go job() // want `raw goroutine outside internal/parallel`
}
