// Evasion case: a dot import must not hide the global source either.
package seededrand_dot

import . "math/rand"

func dotted() {
	_ = Intn(6)            // want `global math/rand call "Intn" escapes the experiment seed`
	_ = ExpFloat64()       // want `global math/rand call "ExpFloat64" escapes the experiment seed`
	_ = New(NewSource(11)) // seeded constructor: allowed
}
