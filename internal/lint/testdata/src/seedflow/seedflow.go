// Positive cases: literal seeds at the construction site, literal seeds
// hidden behind a helper call, re-seeding from a bare loop index, and a
// literal seed threaded through a struct field across a call boundary.
package seedflow

import "math/rand"

// direct seeds a stream with a literal at the construction site.
func direct() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `seed is not derived from a study seed: seed for math/rand\.NewSource`
}

// newRng is the helper: the seed is a parameter, so the judgment moves to
// every call site (no diagnostic here).
func newRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// helper hides the literal behind newRng — caught interprocedurally.
func helper() *rand.Rand {
	return newRng(1234) // want `argument for seed parameter "seed" of seedflow\.newRng`
}

// loop re-seeds streams from the bare loop index: every run collides.
func loop(rs []*rand.Rand) {
	for i := range rs {
		rs[i] = rand.New(rand.NewSource(int64(i))) // want `seed for math/rand\.NewSource`
	}
}

// carrier threads the seed through a struct field; the field is not a
// seed-named root, so the struct parameter is demanded at call sites.
type carrier struct{ n int64 }

func build(c carrier) *rand.Rand {
	return rand.New(rand.NewSource(c.n))
}

func top() *rand.Rand {
	return build(carrier{n: 7}) // want `argument for seed parameter "c" of seedflow\.build`
}

// reseed overwrites an injected stream's state with a constant.
func reseed(r *rand.Rand) {
	r.Seed(99) // want `seed for math/rand\.Rand\.Seed`
}
