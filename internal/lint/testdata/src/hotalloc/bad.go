// Positive cases: allocation and map iteration inside //hot:path functions.
package hotalloc

// lookup is a hot-path probe that allocates a scratch slice every call.
//
//hot:path
func lookup(idx int, table []uint64) []int {
	scratch := make([]int, 0, 4) // want `make inside //hot:path function lookup`
	if idx < len(table) {
		scratch = append(scratch, idx) // want `append inside //hot:path function lookup`
	}
	return scratch
}

// tally walks a map on the hot path.
//
//hot:path
func tally(counts map[string]int) int {
	total := 0
	for _, v := range counts { // want `map iteration inside //hot:path function tally`
		total += v
	}
	return total
}

// deferred allocates inside a closure that runs when the hot function does.
//
//hot:path
func deferred(n int) func() []byte {
	return func() []byte {
		return make([]byte, n) // want `make inside //hot:path function deferred`
	}
}
