// Positive cases: a hand-rolled shard gang. Ticking shards concurrently
// must go through parallel.Gang, not raw goroutines — the gang is the one
// audited barrier (panic attribution, deterministic re-panic order), and
// concurrency outside internal/parallel is exactly what the analyzer
// exists to keep out of the simulation packages.
package shard

import "sync"

func tickAll(shards []func()) {
	var wg sync.WaitGroup // want `raw sync.WaitGroup outside internal/parallel`
	wg.Add(len(shards))
	for _, tick := range shards {
		go func() { // want `raw goroutine outside internal/parallel`
			defer wg.Done()
			tick()
		}()
	}
	wg.Wait()
}

func tickAsync(tick func()) {
	go tick() // want `raw goroutine outside internal/parallel`
}
