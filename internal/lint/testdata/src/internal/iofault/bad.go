// Positive cases: internal/iofault gets no concurrency exemption. The
// ChaosFS counts durability points under one mutex and its fault streams
// advance per operation; a raw goroutine flushing or faulting in the
// background would make the operation numbering depend on scheduling, and
// CrashAt=N would stop meaning the same point on every run.
package iofault

import "sync"

type chaosFS struct {
	mu  sync.Mutex
	ops int
}

func (c *chaosFS) faultAll(paths []string) {
	var wg sync.WaitGroup // want `raw sync.WaitGroup outside internal/parallel`
	wg.Add(len(paths))
	for range paths {
		go func() { // want `raw goroutine outside internal/parallel`
			defer wg.Done()
			c.mu.Lock()
			c.ops++
			c.mu.Unlock()
		}()
	}
	wg.Wait()
}
