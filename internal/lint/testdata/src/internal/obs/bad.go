// Positive cases: internal/obs gets no concurrency exemption. The
// observability layer is lock-or-atomic only; a raw goroutine or
// hand-rolled WaitGroup fan-out there would reintroduce the
// scheduling-order dependence that makes merged registries and event
// streams nondeterministic.
package obs

import "sync"

type registry struct {
	mu       sync.Mutex
	counters map[string]uint64
}

func (r *registry) flushAll(keys []string, flush func(string)) {
	var wg sync.WaitGroup // want `raw sync.WaitGroup outside internal/parallel`
	wg.Add(len(keys))
	for _, k := range keys {
		go func(k string) { // want `raw goroutine outside internal/parallel`
			defer wg.Done()
			flush(k)
		}(k)
	}
	wg.Wait()
}
