// Positive cases: internal/checkpoint gets no concurrency exemption. The
// journal serializes appends under a mutex; a raw goroutine flushing
// records in the background would make the on-disk record order depend on
// scheduling, so a journal cut at a kill point would no longer be the
// deterministic prefix resume relies on.
package checkpoint

import "sync"

type journal struct {
	mu   sync.Mutex
	rows [][]byte
}

func (j *journal) flushAll(recs [][]byte) {
	var wg sync.WaitGroup // want `raw sync.WaitGroup outside internal/parallel`
	wg.Add(len(recs))
	for _, r := range recs {
		go func(rec []byte) { // want `raw goroutine outside internal/parallel`
			defer wg.Done()
			j.mu.Lock()
			j.rows = append(j.rows, rec)
			j.mu.Unlock()
		}(r)
	}
	wg.Wait()
}
