// Negative case: internal/parallel is the one place raw fan-out is legal —
// it is the deterministic worker pool everything else must use.
package parallel

import "sync"

func pool(workers int, run func(int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			run(w)
		}(w)
	}
	wg.Wait()
}
