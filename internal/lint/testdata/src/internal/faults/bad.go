// Positive cases: the fault injector runs inside the single-threaded
// event loop; raw concurrency here would break byte-identical replays.
package faults

import "sync"

func churnAll(nodes []func()) {
	var wg sync.WaitGroup // want `raw sync.WaitGroup outside internal/parallel`
	wg.Add(len(nodes))
	for _, flip := range nodes {
		go func() { // want `raw goroutine outside internal/parallel`
			defer wg.Done()
			flip()
		}()
	}
	wg.Wait()
}
