// Positive cases: the durable-write path of the filesystem seam. An
// atomic write is only atomic if every step's error is surfaced — a
// dropped Sync error means "durable" bytes that a power cut can erase,
// and a dropped Rename error means the commit never happened while the
// caller reports success.
package checkederr_iofault

import "os"

type file interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

type fs interface {
	OpenFile(path string, flag int, perm os.FileMode) (file, error)
	Rename(oldpath, newpath string) error
}

func atomicWriteDropped(fsys fs, path string, data []byte) {
	f, err := fsys.OpenFile(path+".tmp", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	f.Write(data)                  // want `unchecked error: result of f.Write is discarded`
	f.Sync()                       // want `unchecked error: result of f.Sync is discarded`
	f.Close()                      // want `unchecked error: result of f.Close is discarded`
	fsys.Rename(path+".tmp", path) // want `unchecked error: result of fsys.Rename is discarded`
}

func atomicWriteChecked(fsys fs, path string, data []byte) error {
	f, err := fsys.OpenFile(path+".tmp", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(path+".tmp", path)
}

type reader interface {
	Read(p []byte) (int, error)
	Close() error
}

// readAll mirrors the framed-file readers: the deferred Close is still
// flagged here, and in the real readers the discard is justified with a
// `//lint:ignore checkederr` directive (honored by the repolint driver,
// which is where directive suppression lives).
func readAll(r reader) ([]byte, error) {
	defer r.Close() // want `unchecked error: deferred r.Close discards its error`
	buf := make([]byte, 64)
	n, err := r.Read(buf)
	return buf[:n], err
}
