// Negative cases: the injected-seeded-source convention passes clean.
package seededrand_ok

import "math/rand"

func seeded(seed int64) []int {
	r := rand.New(rand.NewSource(seed))
	out := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		out = append(out, r.Intn(100))
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	z := rand.NewZipf(r, 1.5, 1, 100)
	out = append(out, int(z.Uint64()))
	return out
}
