// Positive cases: the service layer is covered — a wall-clock read in the
// job runner or cache would break the identical-spec/identical-bytes
// contract.
package service

import "time"

func runJob() {
	_ = time.Now()               // want `time.Now in simulation package "service"`
	time.Sleep(time.Millisecond) // want `time.Sleep in simulation package "service"`
}
