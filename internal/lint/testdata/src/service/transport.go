// Negative case: transport*.go is the service package's HTTP boundary —
// stream pacing and poll intervals are wall-clock concerns by nature and
// are exempt.
package service

import "time"

func pollStream() {
	time.Sleep(25 * time.Millisecond)
	_ = time.Now()
}
