// Positive cases: wall-clock reads inside the fault-injection seam
// ("iofault" is one of the simulated-time leaf names). Every fault a
// ChaosFS injects is drawn from a seeded stream keyed by operation count;
// a host timestamp in the draw would make the same seed inject different
// faults on different machines, and a chaos failure would no longer
// replay from its seed.
package iofault

import "time"

type op struct {
	Seq    int
	WallNs int64
}

func record(seq int) op {
	return op{
		Seq:    seq,
		WallNs: time.Now().UnixNano(), // want `time.Now in simulation package "iofault"`
	}
}

func backoffWait(attempt int) {
	time.Sleep(time.Duration(attempt) * time.Millisecond) // want `time.Sleep in simulation package "iofault"`
}

// durations alone are fine: only clock reads and waits are banned.
func syncEvery() time.Duration { return 5 * time.Second }
