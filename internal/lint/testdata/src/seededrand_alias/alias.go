// Evasion case: an import alias must not hide the global source.
package seededrand_alias

import mr "math/rand"

func aliased() {
	_ = mr.Intn(6)                      // want `global math/rand call "mr.Intn" escapes the experiment seed`
	_ = mr.Float64()                    // want `global math/rand call "mr.Float64" escapes the experiment seed`
	_ = mr.New(mr.NewSource(7)).Intn(6) // seeded constructor + method: allowed
}
