// Positive cases: wall-clock reads inside a simulation package ("sim" is
// one of the simulated-time leaf names).
package sim

import "time"

func step(started time.Time) time.Duration {
	t0 := time.Now()             // want `time.Now in simulation package "sim"`
	time.Sleep(time.Millisecond) // want `time.Sleep in simulation package "sim"`
	_ = time.Since(started)      // want `time.Since in simulation package "sim"`
	return time.Until(t0)        // want `time.Until in simulation package "sim"`
}

// durations alone are fine: only clock reads are banned.
func horizon() time.Duration { return 4 * time.Hour }
