// Negative cases: seeds derived from Seed-named struct fields, package
// seed constants, mixing a rooted seed with an index, closure task-seed
// parameters, and draws from an already-rooted stream.
package seedflow_ok

import "math/rand"

// Config carries the study seed: the Seed field is a taint root.
type Config struct{ Seed int64 }

// BaseSeed is a package-level seed constant: also a root.
const BaseSeed int64 = 0x51afd54a1b5f72c9

func fromField(c Config) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed))
}

func fromConst() *rand.Rand {
	return rand.New(rand.NewSource(BaseSeed))
}

// mixed derives a per-task seed by mixing the rooted seed with an index:
// OR semantics keep it rooted.
func mixed(c Config, i int) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed + int64(i)))
}

// closure parameters named like seeds are roots — the parallel harness
// hands task seeds to closures, which are not call-site checkable.
func worker(n int) int64 {
	run := func(taskSeed int64) int64 {
		r := rand.New(rand.NewSource(taskSeed))
		return r.Int63()
	}
	return run(int64(n))
}

// redraw derives a new stream from a draw of an already-rooted stream.
func redraw(c Config) *rand.Rand {
	r := rand.New(rand.NewSource(c.Seed))
	return rand.New(rand.NewSource(r.Int63()))
}

// conduit takes a non-seed-named parameter to a sink: judged at call
// sites, and its only caller passes a rooted value.
func conduit(v int64) *rand.Rand {
	return rand.New(rand.NewSource(v))
}

func caller(c Config) *rand.Rand {
	return conduit(c.Seed)
}

// Supervision mirrors the parallel harness: a seed field beside a control
// hook. The struct-literal join makes the engine see both `root` and
// `quit` as demanded by supervised — but a func-typed parameter cannot
// carry a seed, so the nil a caller passes for it is not a finding.
type Supervision struct {
	Root int64
	Quit func() bool
}

func supervised(root int64, quit func() bool) int64 {
	sup := Supervision{Root: root, Quit: quit}
	return rand.New(rand.NewSource(sup.Root)).Int63()
}

func drainless(c Config) int64 {
	return supervised(c.Seed, nil)
}
