// Positive cases: a hot function whose callee allocates (directly and two
// calls deep) and interface boxing inside the hot body itself.
package hotescape

import "fmt"

// grow allocates: append may grow the backing array.
func grow(xs []int, v int) []int {
	return append(xs, v)
}

// scratch allocates a non-constant-size buffer that escapes via return.
func scratch(n int) []byte {
	return make([]byte, n)
}

// indirect hides the allocation one more call down.
func indirect(n int) []byte {
	return scratch(n)
}

//hot:path
func Hot(xs []int, v int) []int {
	return grow(xs, v) // want `call from //hot:path function hotescape\.Hot reaches append`
}

//hot:path
func HotDeep(n int) int {
	buf := indirect(n) // want `reaches make .* \(via hotescape\.indirect -> hotescape\.scratch\)`
	return len(buf)
}

//hot:path
func HotBox(n int) string {
	return fmt.Sprint(n) // want `interface boxing in //hot:path function hotescape\.HotBox allocates`
}
