// Positive and negative cases for dropped error returns.
package checkederr

import (
	"fmt"
	"os"
	"strings"
)

func save(path string, rows []string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close() // DeferStmt: deliberately out of scope
	for _, r := range rows {
		fmt.Fprintln(f, r) // fmt print family: allowlisted
	}
	f.Sync()  // want `unchecked error: result of f.Sync is discarded`
	f.Close() // want `unchecked error: result of f.Close is discarded`
}

func cleanup(path string) {
	os.Remove(path)     // want `unchecked error: result of os.Remove is discarded`
	_ = os.Remove(path) // explicit discard: allowed (reviewer sees the _)
}

func render(rows []string) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r) // strings.Builder never fails: allowlisted
	}
	return b.String()
}
