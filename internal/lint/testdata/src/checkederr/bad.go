// Positive and negative cases for dropped error returns.
package checkederr

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"
)

func save(path string, rows []string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close() // want `unchecked error: deferred f.Close discards its error`
	for _, r := range rows {
		fmt.Fprintln(f, r) // fmt print family: allowlisted
	}
	f.Sync()  // want `unchecked error: result of f.Sync is discarded`
	f.Close() // want `unchecked error: result of f.Close is discarded`
}

func cleanup(path string) {
	os.Remove(path)     // want `unchecked error: result of os.Remove is discarded`
	_ = os.Remove(path) // explicit single-blank discard: allowed (reviewer sees the _)
}

func blanks(f *os.File, data []byte) {
	_, _ = f.Write(data) // want `unchecked error: result of f.Write is discarded by an all-blank assignment`
	n, _ := f.Write(data)
	_ = n // partial blanks bind a real result: not an all-blank discard
}

func render(rows []string) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r) // strings.Builder never fails: allowlisted
	}
	return b.String()
}

func digest(data []byte) []byte {
	h := sha256.New()
	h.Write(data)        // hash.Hash.Write never fails: allowlisted
	_, _ = h.Write(data) // likewise through a blank assignment
	return h.Sum(nil)
}

type closer struct{}

func (closer) Close() error { return nil }

func deferClose(c closer) error {
	defer c.Close() // want `unchecked error: deferred c.Close discards its error`
	return nil
}

type quietCloser struct{}

func (quietCloser) Close() {}

func deferQuiet(q quietCloser) {
	defer q.Close() // Close without an error result: nothing to drop
}
