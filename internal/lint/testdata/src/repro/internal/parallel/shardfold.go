// shardfold fixture: the DESIGN.md §13 coordinator folds. Per-shard
// tallies coming out of the harness must merge in shard order — the
// pattern gridsim's foldShards uses — not through a map keyed by shard ID,
// whose iteration order would make flip counts and fork-death emission
// order vary run to run.
package parallel

// badShardTallyFold collects per-shard flip tallies into a map keyed by
// shard and folds in hash order.
func badShardTallyFold(shards int) float64 {
	tallies, _ := Map(1, shards, func(s int) (float64, error) { return float64(s), nil })
	byShard := map[int]float64{}
	for s, v := range tallies {
		byShard[s] = v
	}
	flips := 0.0
	for _, v := range byShard { // want `parallel results folded in nondeterministic order: fold over map iteration order`
		flips += v
	}
	return flips
}

// goodShardOrderFold folds the same tallies by ascending shard index: the
// deterministic merge the sharded engine is built on.
func goodShardOrderFold(shards int) float64 {
	tallies, _ := Map(1, shards, func(s int) (float64, error) { return float64(s), nil })
	flips := 0.0
	for s := 0; s < len(tallies); s++ {
		flips += tallies[s]
	}
	return flips
}
