// detmerge fixture: the package path mirrors repro/internal/parallel so the
// analyzer's model of the harness entry points applies to the stub Map
// below. Positive cases launder task-ordered results through a map or a
// channel and fold from there; negative cases fold the ordered slice
// directly or fold non-parallel data.
package parallel

// Map stands in for the real harness: returns task-ordered results.
func Map(workers, n int, fn func(task int) (float64, error)) ([]float64, error) {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		v, err := fn(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// badMapFold launders the ordered results through a map keyed by task ID
// and folds in hash order.
func badMapFold(n int) float64 {
	res, _ := Map(1, n, func(i int) (float64, error) { return float64(i), nil })
	byID := map[int]float64{}
	for i, v := range res {
		byID[i] = v
	}
	sum := 0.0
	for _, v := range byID { // want `parallel results folded in nondeterministic order: fold over map iteration order`
		sum += v
	}
	return sum
}

// badChanFold drains results through a channel and folds in arrival order.
func badChanFold(n int) float64 {
	res, _ := Map(1, n, func(i int) (float64, error) { return float64(i), nil })
	ch := make(chan float64, n)
	for _, v := range res {
		ch <- v
	}
	close(ch)
	total := 0.0
	for v := range ch { // want `fold over channel arrival order`
		total += v
	}
	return total
}

// mergeByID is the fold behind a helper: the map parameter is demanded, so
// the judgment moves to call sites (no diagnostic here — non-parallel
// callers like cleanCaller stay clean).
func mergeByID(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

// badHelperFold is caught at the call that hands parallel results to the
// unordered fold.
func badHelperFold(n int) float64 {
	res, _ := Map(1, n, func(i int) (float64, error) { return float64(i), nil })
	byID := map[int]float64{}
	for i, v := range res {
		byID[i] = v
	}
	return mergeByID(byID) // want `parameter "m" of repro/internal/parallel\.mergeByID is folded in unordered iteration`
}

// goodSliceFold folds the ordered slice directly: deterministic.
func goodSliceFold(n int) float64 {
	res, _ := Map(1, n, func(i int) (float64, error) { return float64(i), nil })
	sum := 0.0
	for _, v := range res {
		sum += v
	}
	return sum
}

// goodLocalMap folds a map of non-parallel data: maporder's business, not
// detmerge's.
func goodLocalMap(weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return total
}

// cleanCaller hands non-parallel data to the shared fold helper.
func cleanCaller(weights map[int]float64) float64 {
	return mergeByID(weights)
}
