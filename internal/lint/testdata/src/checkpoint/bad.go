// Positive cases: wall-clock reads inside the crash-safety layer
// ("checkpoint" is one of the simulated-time leaf names). Journal records
// and fingerprints must be byte-identical across runs, so a host timestamp
// in either breaks resume.
package checkpoint

import "time"

type record struct {
	Task    int
	WallNs  int64
	Elapsed time.Duration
}

func stamp(task int, started time.Time) record {
	return record{
		Task:    task,
		WallNs:  time.Now().UnixNano(), // want `time.Now in simulation package "checkpoint"`
		Elapsed: time.Since(started),   // want `time.Since in simulation package "checkpoint"`
	}
}

// durations alone are fine: only clock reads are banned.
func flushEvery() time.Duration { return 30 * time.Second }
