// Positive cases: the fault-injection engine is a simulation package —
// every fault fires on the event clock, never the host clock.
package faults

import "time"

func nextFlap(started time.Time) time.Duration {
	t0 := time.Now()        // want `time.Now in simulation package "faults"`
	time.Sleep(time.Second) // want `time.Sleep in simulation package "faults"`
	_ = time.Since(started) // want `time.Since in simulation package "faults"`
	return time.Until(t0)   // want `time.Until in simulation package "faults"`
}

// Scenario durations are plain time.Duration values: allowed.
func meanUptime() time.Duration { return 4 * time.Hour }
