// Positive cases for the observability layer: "obs" is a simulated-time
// leaf name, because trace timestamps must be simulation ticks — a
// wall-clock read here would leak host time into traces that are required
// to be byte-identical across runs.
package obs

import "time"

// Event is a stand-in for the tracer's event record.
type Event struct {
	Tick int64
}

func stamp() Event {
	return Event{Tick: time.Now().UnixNano()} // want `time.Now in simulation package "obs"`
}

func flushAfter(started time.Time) bool {
	return time.Since(started) > time.Second // want `time.Since in simulation package "obs"`
}

// tick-based stamping is the sanctioned form: the caller supplies the
// simulation tick and no host clock is involved.
func stampAt(tick int64) Event { return Event{Tick: tick} }
