// Positive cases: global math/rand draws and wall-clock seeding.
package seededrand

import (
	"math/rand"
	"time"
)

func draws() {
	_ = rand.Intn(6)                   // want `global math/rand call "rand.Intn" escapes the experiment seed`
	_ = rand.Float64()                 // want `global math/rand call "rand.Float64" escapes the experiment seed`
	_ = rand.Perm(10)                  // want `global math/rand call "rand.Perm" escapes the experiment seed`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand call "rand.Shuffle" escapes the experiment seed`
	rand.Seed(1)                       // want `global math/rand call "rand.Seed" escapes the experiment seed`
}

func wallClockSeeds() {
	_ = rand.NewSource(time.Now().UnixNano())           // want `rand.NewSource seeded from the wall clock \(time.Now\)`
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand.NewSource seeded from the wall clock \(time.Now\)`
}
