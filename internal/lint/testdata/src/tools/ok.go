// Negative case: a non-simulation package may read the wall clock freely
// (progress logs, benchmark tooling).
package tools

import "time"

func stamp() time.Time { return time.Now() }
