// Negative cases: sorted emission and order-insensitive accumulation.
package maporder_ok

import (
	"fmt"
	"sort"
)

// sortedKeys collects keys and sorts them before use: the canonical fix.
func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// sortedEmit ranges over the sorted key slice, not the map.
func sortedEmit(m map[string]int) {
	ks := sortedKeys(m)
	for _, k := range ks {
		fmt.Println(k, m[k])
	}
}

// sortSlice uses sort.Slice instead of sort.Strings: also fine.
func sortSlice(m map[int][]string) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// sortHelper establishes order through a local sorting function: the
// analyzer trusts a post-loop call named sort*/Sort* that takes the
// accumulator.
func sortHelper(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sortStrings(ks)
	return ks
}

func sortStrings(ks []string) { sort.Strings(ks) }

// count accumulates an integer: addition over int is commutative and
// associative, so iteration order cannot show in the result.
func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// localOnly appends to a slice that dies inside the loop body.
func localOnly(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		doubled = append(doubled, vs...)
		n += len(doubled)
	}
	return n
}
