// Positive cases: map iteration order leaking into output.
package maporder

import (
	"fmt"
	"strings"
)

// emit prints in map order.
func emit(m map[string]int) {
	for k, v := range m { // want `range over map m emits output via fmt.Println in map iteration order`
		fmt.Println(k, v)
	}
}

// build writes into a string builder in map order.
func build(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `range over map m emits output via b.WriteString in map iteration order`
		b.WriteString(k)
	}
	return b.String()
}

// keys accumulates map keys and never sorts them.
func keys(m map[string]int) []string {
	var ks []string
	for k := range m { // want `range over map m appends to ks in map iteration order with no subsequent sort`
		ks = append(ks, k)
	}
	return ks
}

// sum folds float values in map order: float addition is not associative.
func sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over map m accumulates floating-point total in map iteration order`
		total += v
	}
	return total
}
