// Negative cases: unannotated growth helpers, hot functions that only index
// into preallocated storage, and map reads (not walks) on the hot path.
package hotalloc_ok

// grow is the storage-growing helper pattern: it allocates, so it is simply
// not annotated //hot:path — the annotation is the contract.
func grow(reqAt []int64, idx int) []int64 {
	for len(reqAt) <= idx {
		reqAt = append(reqAt, -1)
	}
	return reqAt
}

// hasIdx is the shape the discipline wants: one word load from storage that
// grow maintained elsewhere.
//
//hot:path
func hasIdx(have []uint64, idx int32) bool {
	w := int(uint32(idx) >> 6)
	return w < len(have) && have[w]&(1<<(uint(idx)&63)) != 0
}

// probe reads a map by key — a probe, not an iteration — and ranges over a
// slice, both fine on the hot path.
//
//hot:path
func probe(blocks map[uint64]int, order []uint64) int {
	total := 0
	for _, h := range order {
		total += blocks[h]
	}
	return total
}

// hotNamedType makes sure the annotation scan only honours the exact //hot:path
// pragma line, not prose mentioning hot paths.
// This function is hot in spirit but unannotated, so allocation is allowed.
func hotNamedType(n int) []int {
	return make([]int, n)
}
