// Negative cases: callees whose only make is constant-size and local
// (stack-allocated), callees that merely index preallocated storage, and
// hot callees policed directly by hotalloc rather than re-reported here.
package hotescape_ok

// sumLocal's make has a constant size and never escapes: the compiler
// stack-allocates it, so charging the hot caller would be a false positive.
func sumLocal() int {
	buf := make([]byte, 64)
	s := 0
	for _, b := range buf {
		s += int(b)
	}
	return s
}

// index only reads preallocated storage.
func index(xs []int, i int) int {
	return xs[i%len(xs)]
}

//hot:path
func HotOK(xs []int, i int) int {
	return sumLocal() + index(xs, i)
}

// hotHelper is itself annotated: hotalloc and hotescape police its body
// directly, so callers do not re-report it.
//
//hot:path
func hotHelper(xs []int, v int) []int {
	return append(xs, v) // hotalloc's finding, not hotescape's
}

//hot:path
func HotCallsHot(xs []int, v int) []int {
	return hotHelper(xs, v)
}
