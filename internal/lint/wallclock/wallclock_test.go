package wallclock_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/wallclock"
)

// TestWallClock covers clock reads inside a simulation package and the
// tooling-package exemption.
func TestWallClock(t *testing.T) {
	analysistest.Run(t, "../testdata", wallclock.Analyzer, "sim", "tools")
}
