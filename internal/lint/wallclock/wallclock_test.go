package wallclock_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/wallclock"
)

// TestWallClock covers clock reads inside a simulation package, the
// observability layer (trace timestamps must be simulation ticks), and the
// tooling-package exemption.
func TestWallClock(t *testing.T) {
	analysistest.Run(t, "../testdata", wallclock.Analyzer, "sim", "obs", "tools")
}
