package wallclock_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/wallclock"
)

// TestWallClock covers clock reads inside a simulation package, the
// fault-injection engine (fault timing must come from the event clock),
// the observability layer (trace timestamps must be simulation ticks), the
// crash-safety layer (journal records must replay identically), the
// service layer (identical specs must produce identical bytes) with its
// transport*.go carve-out, the fault seam (chaos faults must replay from
// their seed), and the tooling-package exemption.
func TestWallClock(t *testing.T) {
	analysistest.Run(t, "../testdata", wallclock.Analyzer, "sim", "faults", "obs", "checkpoint", "service", "iofault", "tools")
}
