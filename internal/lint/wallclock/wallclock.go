// Package wallclock bans reading the wall clock in simulation packages.
// Simulated time in this repository advances only through the discrete
// event engine (Engine.Now / Engine.After); a time.Now or time.Since in a
// simulation path makes measured durations depend on host speed and
// scheduling, which is precisely the nondeterminism a measurement
// reproduction cannot afford. The check applies to non-test files of the
// simulation packages (attack, checkpoint, gridsim, netsim, sim, p2p,
// core, obs); tooling such as cmd/* may read the clock freely. The
// observability layer (internal/obs) is covered because its whole contract
// is that event timestamps are simulation ticks — a wall-clock read there
// would leak host time into traces that must be byte-identical across
// runs. The crash-safety layer (internal/checkpoint) is covered because a
// journal or its fingerprints must hash and replay identically across
// runs; wall-clock timestamps in records would break resume. The fault
// seam (internal/iofault) is covered because a ChaosFS draws every
// injected fault from seeded streams — a clock read there would make the
// same seed inject different faults on different hosts, destroying the
// replayability the chaos harness is built on.
//
// The service layer (internal/service) is covered with one carve-out: files
// named transport*.go hold the daemon's HTTP boundary, where stream pacing
// and poll intervals are genuine wall-clock concerns that can never reach a
// simulation. Everything else in the package — the job runner, the result
// cache, the spec dispatch — shares the simulation packages' contract that
// identical specs produce identical bytes, which a clock read would break.
package wallclock

import (
	"go/ast"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/internal/astutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "bans time.Now/time.Since/time.Until/time.Sleep in simulation " +
		"packages, where time must come from the event clock",
	Version: "3",
	Run:     run,
}

// simPackages are the import-path leaf names of the packages whose time is
// simulated.
var simPackages = map[string]bool{
	"attack":     true,
	"checkpoint": true,
	"faults":     true,
	"gridsim":    true,
	"iofault":    true,
	"netsim":     true,
	"obs":        true,
	"sim":        true,
	"p2p":        true,
	"core":       true,
	"service":    true,
}

// transportExempt reports whether the file is a service-package transport
// file (transport*.go), the HTTP boundary allowed to pace itself on the
// wall clock.
func transportExempt(pkgLeaf, filename string) bool {
	return pkgLeaf == "service" && strings.HasPrefix(filepath.Base(filename), "transport")
}

// banned are the time functions that read or wait on the host clock.
var banned = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	"Sleep": true,
}

func run(pass *analysis.Pass) (any, error) {
	parts := strings.Split(pass.Pkg.Path(), "/")
	leaf := parts[len(parts)-1]
	if !simPackages[leaf] {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		if transportExempt(leaf, pass.Fset.File(f.Pos()).Name()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !banned[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s in simulation package %q: simulated time must come from the event clock (Engine.Now), not the host wall clock",
				fn.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}
