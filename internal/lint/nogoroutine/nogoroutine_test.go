package nogoroutine_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/nogoroutine"
)

// TestNoGoroutine covers go statements and raw WaitGroup fan-out outside
// internal/parallel, and the worker pool itself passing clean.
func TestNoGoroutine(t *testing.T) {
	analysistest.Run(t, "../testdata", nogoroutine.Analyzer,
		"nogoroutine", "internal/parallel")
}
