package nogoroutine_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/nogoroutine"
)

// TestNoGoroutine covers go statements and raw WaitGroup fan-out outside
// internal/parallel — including in the observability layer, which is
// lock-or-atomic only, the fault engine, which runs inside the
// single-threaded event loop, the checkpoint journal, whose on-disk
// record order must not depend on scheduling, the shard package, whose
// tick fan-out must go through parallel.Gang, and the fault seam, whose
// durability-point numbering must not depend on scheduling — and the
// worker pool itself passing clean.
func TestNoGoroutine(t *testing.T) {
	analysistest.Run(t, "../testdata", nogoroutine.Analyzer,
		"nogoroutine", "internal/obs", "internal/faults", "internal/checkpoint",
		"internal/parallel", "internal/shard", "internal/iofault")
}
