// Package nogoroutine confines raw concurrency to internal/parallel. The
// repository's determinism contract (DESIGN.md §7) is that every fan-out
// goes through the deterministic worker pool — parallel.Map/Sweep/Trials —
// which derives per-task seeds and collects results in task order. A `go`
// statement or hand-rolled sync.WaitGroup anywhere else reintroduces
// scheduling-order dependence that the pool exists to remove. Test files
// are exempt: tests may legitimately exercise concurrency directly.
package nogoroutine

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "nogoroutine",
	Doc: "restricts go statements and raw sync.WaitGroup fan-out to " +
		"internal/parallel, the deterministic worker pool",
	Version: "1",
	Run:     run,
}

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/parallel") || pass.Pkg.Path() == "parallel" {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"raw goroutine outside internal/parallel; fan out through the deterministic worker pool (parallel.Map/Sweep/Trials)")
			case *ast.Ident:
				obj, ok := pass.TypesInfo.Defs[n].(*types.Var)
				if !ok || obj == nil {
					return true
				}
				if isWaitGroup(obj.Type()) {
					pass.Reportf(n.Pos(),
						"raw sync.WaitGroup outside internal/parallel; fan out through the deterministic worker pool (parallel.Map/Sweep/Trials)")
				}
			}
			return true
		})
	}
	return nil, nil
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
