package hotescape_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/hotescape"
)

// TestHotEscape covers callee allocations one and two calls below a
// //hot:path function, boxing inside the hot body, and the negatives:
// constant-size local makes (escape-exempt), pure indexing callees, and
// hot-annotated callees that hotalloc polices directly.
func TestHotEscape(t *testing.T) {
	analysistest.Run(t, "../testdata", hotescape.Analyzer, "hotescape", "hotescape_ok")
}
