// Package hotescape defines an interprocedural analyzer extending hotalloc
// across call boundaries (DESIGN.md §12): a function annotated //hot:path
// must not allocate, and that includes the functions it calls. hotalloc
// polices the annotated body itself; hotescape walks the static call graph
// underneath it and reports calls that reach a make, a growing append, or
// an interface boxing in any transitively reachable callee. It also checks
// the hot body itself for interface boxing (a dimension hotalloc does not
// cover — passing a concrete value to an ...any parameter allocates).
//
// The summary layer applies an escape exemption: a make with constant size
// arguments whose result provably never leaves its function is stack
// -allocated by the compiler and not charged to the hot path. Callees that
// carry the //hot:path pragma themselves are skipped — they are policed
// directly, and reporting them again at every caller would double-count.
package hotescape

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer reports hot-path calls that reach allocations in callees.
var Analyzer = &analysis.Analyzer{
	Name: "hotescape",
	Doc: "report calls from //hot:path functions that reach make/append/" +
		"interface-boxing allocations in transitively reachable callees",
	Version:  "1",
	Requires: []*analysis.Analyzer{dataflow.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	df := pass.ResultOf[dataflow.Analyzer].(*dataflow.Result)
	eng := dataflow.NewAllocEngine(df.Index)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !dataflow.IsHot(fd) {
				continue
			}
			if pass.InTestFile(fd.Pos()) {
				continue
			}
			fn := df.Index.ByDecl(fd)
			if fn == nil {
				continue
			}
			checkHot(pass, eng, fn)
		}
	}
	return nil, nil
}

func checkHot(pass *analysis.Pass, eng *dataflow.AllocEngine, fn *dataflow.Func) {
	// The hot body's own boxing sites (make/append/map-range are hotalloc's).
	for _, s := range eng.BoxSites(fn) {
		pass.Reportf(s.Pos, "interface boxing in //hot:path function %s allocates", fn.Key)
	}

	// Calls whose callees transitively allocate.
	seen := map[token.Pos]bool{}
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := dataflow.Callee(info, call)
		if callee == nil {
			return true
		}
		target := eng.Index.Lookup(dataflow.KeyOf(callee))
		if target == nil || target == fn || dataflow.IsHot(target.Decl) {
			return true
		}
		reached := eng.Reach(target)
		if len(reached) == 0 || seen[call.Pos()] {
			return true
		}
		seen[call.Pos()] = true
		w := reached[0] // first witness is enough for one diagnostic
		pass.Reportf(call.Pos(),
			"call from //hot:path function %s reaches %s at %s (via %s)",
			fn.Key, w.Site.Kind, w.Site.Position, pathString(w.Path))
		return true
	})
}

func pathString(path []*dataflow.Func) string {
	parts := make([]string, len(path))
	for i, f := range path {
		parts[i] = f.Key
	}
	return strings.Join(parts, " -> ")
}
