package maporder_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/maporder"
)

// TestMapOrder covers unsorted emission/append/float-fold positives and the
// collect-sort-use, integer-fold, and loop-local negatives.
func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "../testdata", maporder.Analyzer, "maporder", "maporder_ok")
}
