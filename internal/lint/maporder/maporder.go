// Package maporder flags range-over-map loops whose iteration order leaks
// into output — the classic killer of byte-identical experiment results,
// because Go randomises map iteration order on every run. Three body shapes
// are order-sensitive:
//
//   - the body appends map keys/values to a slice that outlives the loop
//     and no statement after the loop sorts that slice;
//   - the body emits output directly (fmt.Fprint*/Print*, or a Write*
//     method — an io.Writer, csv.Writer, hash, or string builder);
//   - the body folds map values into a floating-point accumulator with an
//     op-assign: float addition is not associative, so even a "sum" varies
//     run to run.
//
// Commutative integer accumulation (count++, n += v) is order-insensitive
// and allowed. Where the unsorted slice has element type string or int and
// the file already imports "sort", the analyzer attaches a -fix suggestion
// inserting the missing sort call after the loop. Test files are skipped.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/internal/astutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map loops whose body appends, emits, or " +
		"accumulates order-sensitively without a subsequent sort",
	Version: "1",
	Run:     run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		sortImported := importsSort(f)
		// Walk every block so each range statement is seen together with
		// the statements that follow it in its enclosing block.
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs := rangeOverMap(pass, stmt)
				if rs == nil {
					continue
				}
				checkRange(pass, rs, list[i+1:], sortImported)
			}
			return true
		})
	}
	return nil, nil
}

// rangeOverMap unwraps stmt (through labels) to a range statement whose
// operand is a map.
func rangeOverMap(pass *analysis.Pass, stmt ast.Stmt) *ast.RangeStmt {
	if ls, ok := stmt.(*ast.LabeledStmt); ok {
		stmt = ls.Stmt
	}
	rs, ok := stmt.(*ast.RangeStmt)
	if !ok {
		return nil
	}
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		return rs
	}
	return nil
}

// checkRange inspects one map-range body and the statements that follow it.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, after []ast.Stmt, sortImported bool) {
	mapExpr := types.ExprString(rs.X)
	// accumulators maps the printed form of each slice expression the body
	// appends to → a representative append site.
	accumulators := map[string]ast.Expr{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := emissionCall(pass, n); name != "" {
				pass.Reportf(rs.Pos(),
					"range over map %s emits output via %s in map iteration order; collect the keys, sort them, and range over the sorted keys",
					mapExpr, name)
				return true
			}
		case *ast.AssignStmt:
			checkAssign(pass, rs, n, mapExpr, accumulators)
		}
		return true
	})
	printed := make([]string, 0, len(accumulators))
	for p := range accumulators {
		printed = append(printed, p)
	}
	sort.Strings(printed)
	for _, p := range printed {
		lhs := accumulators[p]
		if sortedAfter(pass, lhs, after) {
			continue
		}
		d := analysis.Diagnostic{
			Pos: rs.Pos(),
			Message: fmt.Sprintf(
				"range over map %s appends to %s in map iteration order with no subsequent sort; sort it before use",
				mapExpr, types.ExprString(lhs)),
		}
		if fix := sortFix(pass, rs, lhs, sortImported); fix != nil {
			d.SuggestedFixes = []analysis.SuggestedFix{*fix}
		}
		pass.Report(d)
	}
}

// checkAssign records appends to outer slices and reports float op-assign
// accumulation.
func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, mapExpr string, accumulators map[string]ast.Expr) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
				continue
			}
			lhs := as.Lhs[i]
			if declaredInside(pass, lhs, rs) {
				continue
			}
			accumulators[types.ExprString(lhs)] = lhs
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		if declaredInside(pass, lhs, rs) {
			return
		}
		t := pass.TypesInfo.TypeOf(lhs)
		if t == nil {
			return
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&(types.IsFloat|types.IsComplex) != 0 {
			pass.Reportf(rs.Pos(),
				"range over map %s accumulates floating-point %s in map iteration order; float addition is not associative, so the result varies run to run — sort the keys first",
				mapExpr, types.ExprString(lhs))
		}
	}
}

// declaredInside reports whether expr is (rooted at) an identifier declared
// inside the range statement — loop-local state is not an accumulator.
func declaredInside(pass *analysis.Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false // selector/index: assume it outlives the loop
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	return astutil.DeclaredWithin(obj, rs)
}

// emissionCall reports the printed callee if the call writes output in an
// order-sensitive way: the fmt print family, or any Write/WriteString/
// WriteByte/WriteRune/Printf/Print method (io.Writer, csv.Writer, hashes,
// tabwriter — all observe emission order).
func emissionCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := astutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && sig != nil && sig.Recv() == nil {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return types.ExprString(call.Fun)
		}
	}
	if sig != nil && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Printf", "Print":
			return types.ExprString(call.Fun)
		}
	}
	return ""
}

// sortedAfter reports whether any statement after the loop sorts the
// accumulated expression: a call into the sort or slices package, or a call
// to a function whose name announces sorting (sortNodeIDs, SortRows, …),
// with the accumulator among its arguments.
func sortedAfter(pass *analysis.Pass, lhs ast.Expr, after []ast.Stmt) bool {
	want := types.ExprString(lhs)
	for _, stmt := range after {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := astutil.Callee(pass.TypesInfo, call)
			if fn == nil || !sortsArgs(fn) {
				return true
			}
			for _, arg := range call.Args {
				if mentions(arg, want) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// sortsArgs reports whether fn is a sorting function: anything from the
// sort/slices packages, or a function named sort*/Sort*.
func sortsArgs(fn *types.Func) bool {
	if fn.Pkg() != nil {
		if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
			return true
		}
	}
	name := fn.Name()
	return strings.HasPrefix(name, "sort") || strings.HasPrefix(name, "Sort")
}

// mentions reports whether expr or any subexpression prints as want.
func mentions(expr ast.Expr, want string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == want {
			found = true
		}
		return !found
	})
	return found
}

// sortFix builds the insert-a-sort suggestion when it is safe: the
// accumulator is a named []string or []int and the file imports "sort".
func sortFix(pass *analysis.Pass, rs *ast.RangeStmt, lhs ast.Expr, sortImported bool) *analysis.SuggestedFix {
	if !sortImported {
		return nil
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	t := pass.TypesInfo.TypeOf(id)
	if t == nil {
		return nil
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	b, ok := slice.Elem().Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var call string
	switch b.Kind() {
	case types.String:
		call = "sort.Strings"
	case types.Int:
		call = "sort.Ints"
	default:
		return nil
	}
	if named, ok := slice.Elem().(*types.Named); ok && named.Obj().Pkg() != nil {
		return nil // named element type: sort.Strings/Ints would not compile
	}
	indent := strings.Repeat("\t", pass.Fset.Position(rs.Pos()).Column-1)
	text := fmt.Sprintf("\n%s%s(%s)", indent, call, id.Name)
	return &analysis.SuggestedFix{
		Message:   fmt.Sprintf("insert %s(%s) after the loop", call, id.Name),
		TextEdits: []analysis.TextEdit{{Pos: rs.End(), End: rs.End(), NewText: []byte(text)}},
	}
}

// importsSort reports whether f imports the sort package unaliased.
func importsSort(f *ast.File) bool {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"sort"` && imp.Name == nil {
			return true
		}
	}
	return false
}
