// Package detmerge defines an interprocedural analyzer guarding the
// merge-order half of the determinism contract (DESIGN.md §2): results of
// parallel execution must be reduced in task order. parallel.Map, Trials,
// and SuperviseTrials all return task-ordered slices precisely so callers
// can fold them deterministically; the bug this analyzer catches is
// laundering those results through an unordered container — a map keyed by
// trial ID, a completion channel — and folding from there, which makes the
// merged statistics depend on scheduler interleaving or map hash order.
//
// Taint roots are the return values of the parallel harness entry points.
// Sinks are folds: a range over a map or channel whose body accumulates
// into a variable or registry declared outside the loop (op-assignments,
// self-appends, and Merge/Add/Observe/Record calls). A fold over a tainted
// container is reported; a fold over a container received as a parameter
// is judged at every call site instead, so the finding lands where the
// parallel results actually entered the unordered container.
package detmerge

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer reports parallel results folded in nondeterministic order.
var Analyzer = &analysis.Analyzer{
	Name: "detmerge",
	Doc: "report folds of parallel trial results whose iteration order is " +
		"not provably task order (range over map or channel into an accumulator)",
	Version:  "1",
	Requires: []*analysis.Analyzer{dataflow.Analyzer},
	Run:      run,
}

// parallelResults are the harness entry points whose return values are the
// taint roots.
var parallelResults = map[string]bool{
	"repro/internal/parallel.Map":             true,
	"repro/internal/parallel.Sweep":           true,
	"repro/internal/parallel.Trials":          true,
	"repro/internal/parallel.SuperviseTrials": true,
}

// accumNames are method names that fold state into their receiver.
var accumNames = map[string]bool{
	"Merge": true, "Add": true, "Observe": true, "Record": true,
}

func run(pass *analysis.Pass) (any, error) {
	df := pass.ResultOf[dataflow.Analyzer].(*dataflow.Result)
	eng := dataflow.NewEngine(df.Index, dataflow.Hooks{
		CallTaint: func(ev *dataflow.Evaluator, call *ast.CallExpr, callee *types.Func) (dataflow.Taint, bool) {
			if parallelResults[dataflow.KeyOf(callee)] {
				return dataflow.Rooted, true
			}
			return dataflow.Untainted, false
		},
		Sinks: foldSinks,
		ArgWhat: func(param string, callee *dataflow.Func) string {
			return "parameter \"" + param + "\" of " + callee.Key +
				" is folded in unordered iteration"
		},
		ReportsTainted: true,
	})

	seen := map[token.Pos]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := df.Index.ByDecl(fd)
			if fn == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			eng.CheckFunction(fn, func(s dataflow.Site) {
				if !s.Taint.Tainted() {
					// Untainted: not parallel results. Param-dependent: the
					// callers' engines judge the call sites.
					return
				}
				if seen[s.Pos] || pass.InTestFile(s.Pos) {
					return
				}
				seen[s.Pos] = true
				pass.Reportf(s.Pos, "parallel results folded in nondeterministic order: %s", s.What)
			})
		}
	}
	return nil, nil
}

// foldSinks finds ranges over maps and channels whose body accumulates into
// state declared outside the loop.
func foldSinks(fn *dataflow.Func, ev *dataflow.Evaluator) []dataflow.Sink {
	info := fn.Pkg.Info
	var out []dataflow.Sink
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		var order string
		switch t.Underlying().(type) {
		case *types.Map:
			order = "map iteration order"
		case *types.Chan:
			order = "channel arrival order"
		default:
			return true // slices and arrays iterate in task order
		}
		if accumulates(info, rs) {
			out = append(out, dataflow.Sink{Expr: rs.X, What: "fold over " + order})
		}
		return true
	})
	return out
}

// accumulates reports whether the range body folds into state that outlives
// the loop: an op-assignment or self-referential assignment to a variable
// declared outside the range, or an accumulator method call on one.
func accumulates(info *types.Info, rs *ast.RangeStmt) bool {
	outer := func(e ast.Expr) *types.Var {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		v, _ := info.ObjectOf(id).(*types.Var)
		if v == nil {
			return nil
		}
		if v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
			return nil // declared by the range statement or inside its body
		}
		return v
	}
	found := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				v := outer(lhs)
				if v == nil {
					continue
				}
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					found = true // op-assignment: sum += x
					return false
				}
				if n.Tok == token.ASSIGN && i < len(n.Rhs) && mentionsVar(info, n.Rhs[i], v) {
					found = true // self-reference: xs = append(xs, x)
					return false
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || !accumNames[sel.Sel.Name] {
				return true
			}
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if outer(sel.X) != nil {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func mentionsVar(info *types.Info, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}

// rootIdent unwraps selectors, indexes, derefs, and slices to the base
// identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
