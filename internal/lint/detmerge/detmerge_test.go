package detmerge_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/detmerge"
)

// TestDetmerge covers map- and channel-order folds of parallel results
// (directly and behind a fold helper, caught at the call site), the
// per-shard tally folds of the sharded engine (DESIGN.md §13), and the
// negatives: folding the ordered slice, folding in ascending shard order,
// and folding non-parallel maps. The fixture's import path mirrors
// repro/internal/parallel so the analyzer's harness model applies to the
// stub Map inside it.
func TestDetmerge(t *testing.T) {
	analysistest.Run(t, "../testdata", detmerge.Analyzer, "repro/internal/parallel")
}
