// Package lint runs the repository's determinism-and-safety analyzers over
// loaded packages and filters findings through //lint:ignore suppression
// directives. It is shared by cmd/repolint (the multichecker driver) and by
// the tier-1 seed-audit test at the repository root.
//
// The runner resolves Requires dependencies between analyzers (DESIGN.md
// §8): required analyzers run first on each package and their results are
// wired through Pass.ResultOf, so interprocedural passes like
// internal/lint/dataflow are computed once and shared. Packages are
// analyzed concurrently through internal/parallel — findings come back in
// deterministic package order regardless of worker count.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/checkederr"
	"repro/internal/lint/detmerge"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/hotescape"
	"repro/internal/lint/load"
	"repro/internal/lint/maporder"
	"repro/internal/lint/nogoroutine"
	"repro/internal/lint/seededrand"
	"repro/internal/lint/seedflow"
	"repro/internal/lint/wallclock"
	"repro/internal/parallel"
)

// DriverVersion participates in cmd/repolint's action-cache key alongside
// each analyzer's Version: bump it when the runner's shared semantics
// (suppression matching, finding order) change.
const DriverVersion = "2"

// Analyzers is the suite cmd/repolint runs: every invariant DESIGN.md §8
// documents, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		checkederr.Analyzer,
		detmerge.Analyzer,
		hotalloc.Analyzer,
		hotescape.Analyzer,
		maporder.Analyzer,
		nogoroutine.Analyzer,
		seededrand.Analyzer,
		seedflow.Analyzer,
		wallclock.Analyzer,
	}
}

// Finding is one unsuppressed diagnostic, located for printing and fixing.
type Finding struct {
	// Analyzer is the name of the analyzer that reported the finding.
	Analyzer string
	// Position is the resolved source position of Diagnostic.Pos.
	Position token.Position
	// Diagnostic is the raw diagnostic, including suggested fixes.
	Diagnostic analysis.Diagnostic
	// Fset resolves the diagnostic's positions (needed to apply fixes).
	Fset *token.FileSet
}

// String formats the finding the way the driver prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Diagnostic.Message, f.Analyzer)
}

// Expand returns analyzers plus their transitive Requires closure in a
// stable topological order (dependencies before dependents). It errors on
// dependency cycles.
func Expand(analyzers []*analysis.Analyzer) ([]*analysis.Analyzer, error) {
	var order []*analysis.Analyzer
	state := map[*analysis.Analyzer]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(a *analysis.Analyzer) error
	visit = func(a *analysis.Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analyzer dependency cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, dep := range a.Requires {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Run applies every analyzer to every package and returns the findings that
// no //lint:ignore directive suppresses, sorted by position then analyzer.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	return RunTargets(pkgs, analyzers, nil)
}

// RunTargets is Run restricted to reporting on the packages whose import
// path is in targets (nil means all). Every package still participates in
// the whole-program index handed to interprocedural passes — cmd/repolint
// loads the dependency cones of its cache misses and reports only on the
// misses themselves.
func RunTargets(pkgs []*load.Package, analyzers []*analysis.Analyzer, targets map[string]bool) ([]Finding, error) {
	order, err := Expand(analyzers)
	if err != nil {
		return nil, err
	}
	wanted := map[*analysis.Analyzer]bool{}
	for _, a := range analyzers {
		wanted[a] = true
	}

	infos := make([]*analysis.PackageInfo, len(pkgs))
	for i, pkg := range pkgs {
		infos[i] = &analysis.PackageInfo{
			ImportPath: pkg.ImportPath,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
		}
	}
	program := analysis.NewProgram(infos)

	perPkg, err := parallel.Map(parallel.DefaultWorkers(), len(pkgs),
		func(i int) ([]Finding, error) {
			pkg := pkgs[i]
			if targets != nil && !targets[pkg.ImportPath] {
				return nil, nil
			}
			return runPackage(program, pkg, order, wanted)
		})
	if err != nil {
		return nil, err
	}

	var findings []Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings, nil
}

// runPackage runs the expanded analyzer order over one package, wiring
// Requires results and filtering reports through suppression directives.
// Only analyzers in wanted contribute findings; the rest run for their
// results.
func runPackage(program *analysis.Program, pkg *load.Package, order []*analysis.Analyzer, wanted map[*analysis.Analyzer]bool) ([]Finding, error) {
	sup := directives(pkg.Fset, pkg.Files)
	results := map[*analysis.Analyzer]any{}
	var findings []Finding
	for _, a := range order {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			ResultOf:  results,
			Program:   program,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if !wanted[a] {
				return
			}
			pos := pkg.Fset.Position(d.Pos)
			if sup.suppresses(a.Name, pos) {
				return
			}
			findings = append(findings, Finding{
				Analyzer:   a.Name,
				Position:   pos,
				Diagnostic: d,
				Fset:       pkg.Fset,
			})
		}
		res, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
		}
		results[a] = res
	}
	return findings, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// supRange is one suppressed line span for one analyzer.
type supRange struct {
	from, to int
	analyzer string
}

// suppressions maps file → suppressed ranges.
type suppressions map[string][]supRange

// directives collects //lint:ignore directives from every comment in files.
// The form is:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory — a suppression without a justification is itself
// a smell. A directive written as a trailing comment suppresses its own
// line. A directive on its own line suppresses the next declaration,
// specification, or statement in the file — the whole node, so a directive
// above a grouped var/const block covers every line of the block, a
// directive above one spec inside a block covers just that spec, and a
// blank line between the directive and the code it governs does not break
// the association.
func directives(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		codeLines, spans := fileLayout(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					// No analyzer name or no reason: not a valid directive.
					continue
				}
				pos := fset.Position(c.Pos())
				r := supRange{analyzer: fields[0]}
				if codeLines[pos.Line] {
					// Trailing comment: suppresses its own line.
					r.from, r.to = pos.Line, pos.Line
				} else {
					r.from, r.to = nextSpan(spans, pos.Line)
				}
				sup[pos.Filename] = append(sup[pos.Filename], r)
			}
		}
	}
	return sup
}

// lineSpan is the line extent of one decl, spec, or statement.
type lineSpan struct {
	start, end int
}

// fileLayout records which lines carry code (for trailing-comment
// detection) and the spans of every declaration, specification, and
// statement (for standalone-directive attachment), sorted by start line.
func fileLayout(fset *token.FileSet, f *ast.File) (map[int]bool, []lineSpan) {
	codeLines := map[int]bool{}
	var spans []lineSpan
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		codeLines[fset.Position(n.Pos()).Line] = true
		switch n.(type) {
		case ast.Decl, ast.Spec, ast.Stmt:
			spans = append(spans, lineSpan{
				start: fset.Position(n.Pos()).Line,
				end:   fset.Position(n.End()).Line,
			})
		}
		return true
	})
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].end < spans[j].end
	})
	return codeLines, spans
}

// nextSpan returns the line range governed by a standalone directive at
// line: the full extent of the first node starting after it. With no such
// node the directive governs only the following line.
func nextSpan(spans []lineSpan, line int) (from, to int) {
	for _, s := range spans {
		if s.start > line {
			return s.start, s.end
		}
	}
	return line + 1, line + 1
}

// suppresses reports whether a directive's governed range covers the
// diagnostic's line for this analyzer.
func (s suppressions) suppresses(analyzer string, pos token.Position) bool {
	for _, r := range s[pos.Filename] {
		if r.analyzer == analyzer && pos.Line >= r.from && pos.Line <= r.to {
			return true
		}
	}
	return false
}

// ApplyFixes applies every suggested fix attached to findings, rewriting
// the affected files in place. Edits are applied from the end of each file
// backwards so earlier offsets stay valid. It returns the number of edits
// applied.
func ApplyFixes(findings []Finding) (int, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, f := range findings {
		for _, fix := range f.Diagnostic.SuggestedFixes {
			for _, te := range fix.TextEdits {
				start := f.Fset.Position(te.Pos)
				end := start
				if te.End.IsValid() {
					end = f.Fset.Position(te.End)
				}
				perFile[start.Filename] = append(perFile[start.Filename], edit{
					start: start.Offset,
					end:   end.Offset,
					text:  te.NewText,
				})
			}
		}
	}
	applied := 0
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prev := -1
		for _, e := range edits {
			if prev >= 0 && e.end > prev {
				continue // overlapping edit: keep the first applied
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
			prev = e.start
			applied++
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
