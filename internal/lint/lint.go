// Package lint runs the repository's determinism-and-safety analyzers over
// loaded packages and filters findings through //lint:ignore suppression
// directives. It is shared by cmd/repolint (the multichecker driver) and by
// the tier-1 seed-audit test at the repository root.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/checkederr"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/load"
	"repro/internal/lint/maporder"
	"repro/internal/lint/nogoroutine"
	"repro/internal/lint/seededrand"
	"repro/internal/lint/wallclock"
)

// Analyzers is the suite cmd/repolint runs: every invariant DESIGN.md §8
// documents, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		checkederr.Analyzer,
		hotalloc.Analyzer,
		maporder.Analyzer,
		nogoroutine.Analyzer,
		seededrand.Analyzer,
		wallclock.Analyzer,
	}
}

// Finding is one unsuppressed diagnostic, located for printing and fixing.
type Finding struct {
	// Analyzer is the name of the analyzer that reported the finding.
	Analyzer string
	// Position is the resolved source position of Diagnostic.Pos.
	Position token.Position
	// Diagnostic is the raw diagnostic, including suggested fixes.
	Diagnostic analysis.Diagnostic
	// Fset resolves the diagnostic's positions (needed to apply fixes).
	Fset *token.FileSet
}

// String formats the finding the way the driver prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Diagnostic.Message, f.Analyzer)
}

// Run applies every analyzer to every package and returns the findings that
// no //lint:ignore directive suppresses, sorted by position then analyzer.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		sup := directives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.suppresses(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{
					Analyzer:   a.Name,
					Position:   pos,
					Diagnostic: d,
					Fset:       pkg.Fset,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// suppressions records //lint:ignore directives: file → line → analyzer
// names suppressed on that line.
type suppressions map[string]map[int][]string

// directives collects //lint:ignore directives from every comment in files.
// A directive written on its own line suppresses matching diagnostics on the
// next line; written as a trailing comment it suppresses its own line. The
// form is:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory — a suppression without a justification is itself
// a smell.
func directives(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					// No analyzer name or no reason: not a valid directive.
					continue
				}
				pos := fset.Position(c.Pos())
				if sup[pos.Filename] == nil {
					sup[pos.Filename] = map[int][]string{}
				}
				sup[pos.Filename][pos.Line] = append(sup[pos.Filename][pos.Line], fields[0])
			}
		}
	}
	return sup
}

// suppresses reports whether a directive on the diagnostic's line or the
// line above names the analyzer.
func (s suppressions) suppresses(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// ApplyFixes applies every suggested fix attached to findings, rewriting
// the affected files in place. Edits are applied from the end of each file
// backwards so earlier offsets stay valid. It returns the number of edits
// applied.
func ApplyFixes(findings []Finding) (int, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, f := range findings {
		for _, fix := range f.Diagnostic.SuggestedFixes {
			for _, te := range fix.TextEdits {
				start := f.Fset.Position(te.Pos)
				end := start
				if te.End.IsValid() {
					end = f.Fset.Position(te.End)
				}
				perFile[start.Filename] = append(perFile[start.Filename], edit{
					start: start.Offset,
					end:   end.Offset,
					text:  te.NewText,
				})
			}
		}
	}
	applied := 0
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prev := -1
		for _, e := range edits {
			if prev >= 0 && e.end > prev {
				continue // overlapping edit: keep the first applied
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
			prev = e.start
			applied++
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
