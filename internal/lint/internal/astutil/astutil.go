// Package astutil holds the small type-resolution helpers the analyzers
// share.
package astutil

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function or method a call expression invokes, through
// any number of parentheses. It returns nil for calls of builtins, function
// values, conversions, and anything else that is not a declared *types.Func
// — which is what makes the analyzers robust to import aliases and dot
// imports: resolution goes through the type-checker, not source text.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// DeclaredWithin reports whether obj's declaration lies inside node's
// source range. Analyzers use it to tell loop-local variables from state
// that outlives a loop.
func DeclaredWithin(obj types.Object, node ast.Node) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}
