package seededrand_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/seededrand"
)

// TestSeededRand covers direct calls, alias-import and dot-import evasion,
// wall-clock seeding, and the injected-*rand.Rand convention passing clean.
func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "../testdata", seededrand.Analyzer,
		"seededrand", "seededrand_alias", "seededrand_dot", "seededrand_ok")
}
