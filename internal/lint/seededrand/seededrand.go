// Package seededrand bans the global math/rand source. Every random draw in
// this repository must flow through an explicitly seeded *rand.Rand
// (DESIGN.md §6): the global source is process-wide state whose stream
// depends on what ran before, so one call through it silently breaks the
// byte-identical-output guarantee. Being type-aware, the check survives
// import aliases and dot imports, and it additionally rejects wall-clock
// seeding (rand.NewSource(time.Now().UnixNano()) and friends), which defeats
// the seed even when the *rand.Rand itself is injected.
package seededrand

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/internal/astutil"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "bans global math/rand calls and wall-clock seeding so every draw " +
		"flows through an explicitly seeded *rand.Rand",
	Version: "1",
	Run:     run,
}

// constructors are the package-level math/rand functions that are allowed:
// they build seeded generators rather than drawing from the global source.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an injected *rand.Rand
	"NewPCG":     true, // math/rand/v2 seeded generator
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods on an injected *rand.Rand (r.Intn, rng.Float64)
				// are exactly the convention we want.
				return true
			}
			if !constructors[fn.Name()] {
				pass.Reportf(call.Pos(),
					"global math/rand call %q escapes the experiment seed; inject a seeded *rand.Rand (stats.NewRand)",
					types.ExprString(call.Fun))
				return true
			}
			// Seeded constructor: make sure the seed itself is not the wall
			// clock.
			for _, arg := range call.Args {
				if clock := wallClockCall(pass, arg); clock != "" {
					pass.Reportf(call.Pos(),
						"%s seeded from the wall clock (%s) defeats the experiment seed; derive the seed from the experiment configuration",
						types.ExprString(call.Fun), clock)
				}
			}
			return true
		})
	}
	return nil, nil
}

// wallClockCall reports the first time.Now/time.Since call nested in expr,
// or "" if there is none. Nested math/rand constructor calls are skipped:
// each constructor is visited (and reported) on its own, so descending into
// one here would double-report rand.New(rand.NewSource(time.Now()…)).
func wallClockCall(pass *analysis.Pass, expr ast.Expr) string {
	found := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := astutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if constructors[fn.Name()] {
				return false
			}
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" {
				found = "time." + fn.Name()
				return false
			}
		}
		return true
	})
	return found
}
