// Package seedflow defines an interprocedural analyzer enforcing the seed
// discipline of DESIGN.md §2: every random stream constructed in library
// code must have its seed dataflow-derived from a study/scenario/task seed.
// It catches literal seeds hidden behind helper calls, re-seeding from bare
// loop indices, and streams threaded through struct fields — the classes of
// bug the intraprocedural seededrand analyzer cannot see.
//
// The taint roots are where seeds legitimately originate: struct fields,
// package-level constants/variables, and closure parameters whose name
// contains "seed" (closures receive task seeds from the parallel harness);
// values returned by flag parsing or spec parsing (core.ParseSpec is the
// service boundary's flag surface); and anything derived from an
// already-rooted stream. Func-typed parameters are never judged as seed
// carriers: they are control hooks, and demand reaching them is an
// artifact of joining whole struct literals. The sinks are the RNG construction and re-seeding
// points (math/rand NewSource/New, math/rand/v2 NewPCG/NewChaCha8,
// stats.NewFast/NewRand, (*Fast).Seed, (*rand.Rand).Seed,
// parallel.DeriveSeed). A sink whose seed expression is definitely not
// derived from any root is reported; a seed that depends on the enclosing
// function's parameters is judged at every call site instead, so the
// finding lands in the package that actually supplied the literal.
//
// Test files and package main are exempt: tests pin seeds on purpose, and
// command-line binaries are where study seeds enter the program.
package seedflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer reports RNG seeds that do not derive from a study seed.
var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "report RNG streams whose seed is not dataflow-derived from a " +
		"study/scenario/task seed, across call boundaries",
	Version:  "2",
	Requires: []*analysis.Analyzer{dataflow.Analyzer},
	Run:      run,
}

// sinkArgs maps canonical callee keys to the argument indices that must be
// seed-derived (receiver excluded; indices are into CallExpr.Args).
var sinkArgs = map[string][]int{
	"math/rand.NewSource":                {0},
	"math/rand.Rand.Seed":                {0},
	"math/rand/v2.NewPCG":                {0, 1},
	"math/rand/v2.NewChaCha8":            {0},
	"repro/internal/stats.NewFast":       {0},
	"repro/internal/stats.Fast.Seed":     {0},
	"repro/internal/stats.NewRand":       {0},
	"repro/internal/parallel.DeriveSeed": {0},
}

// derivingCalls maps callee keys to the argument whose taint the call
// result inherits (seed transformers outside the load set).
var derivingCalls = map[string]int{
	"math/rand.New":           0,
	"math/rand.NewSource":     0,
	"math/rand/v2.New":        0,
	"math/rand/v2.NewChaCha8": 0,
}

// rngPkgs are packages whose method calls are draws: the result derives
// from the receiver stream.
var rngPkgs = map[string]bool{
	"math/rand":            true,
	"math/rand/v2":         true,
	"repro/internal/stats": true,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		// Commands are where seeds enter the program (flags, defaults); the
		// discipline binds library code.
		return nil, nil
	}
	df := pass.ResultOf[dataflow.Analyzer].(*dataflow.Result)
	eng := dataflow.NewEngine(df.Index, hooks())

	seen := map[token.Pos]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := df.Index.ByDecl(fd)
			if fn == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			eng.CheckFunction(fn, func(s dataflow.Site) {
				if s.Taint.Tainted() || !s.Taint.Definite() {
					return
				}
				if seen[s.Pos] || pass.InTestFile(s.Pos) {
					return
				}
				seen[s.Pos] = true
				pass.Reportf(s.Pos, "seed is not derived from a study seed: %s", s.What)
			})
		}
	}
	return nil, nil
}

func hooks() dataflow.Hooks {
	return dataflow.Hooks{
		RootParam: func(name string, t types.Type) bool {
			return seedish(name) && integer(t)
		},
		RootField: func(name string, t types.Type) bool {
			return seedish(name) && integer(t)
		},
		RootObj: func(obj types.Object) bool {
			switch obj.(type) {
			case *types.Const, *types.Var:
				return seedish(obj.Name()) && integer(obj.Type())
			}
			return false
		},
		CallTaint: callTaint,
		Sinks:     sinks,
		ArgWhat: func(param string, callee *dataflow.Func) string {
			return "argument for seed parameter \"" + param + "\" of " + callee.Key
		},
		DemandParam: func(name string, t types.Type) bool {
			// A func-typed parameter is a control hook, not data: no seed
			// can flow through it to an integer sink. Without this filter a
			// supervision-struct literal (seed field beside a quit hook)
			// would mark the hook parameter as seed-demanded and flag the
			// nil a caller passes for it.
			_, isFunc := t.Underlying().(*types.Signature)
			return !isFunc
		},
	}
}

func callTaint(ev *dataflow.Evaluator, call *ast.CallExpr, callee *types.Func) (dataflow.Taint, bool) {
	pkg := ""
	if callee.Pkg() != nil {
		pkg = callee.Pkg().Path()
	}
	// Flag values are externally controlled inputs — legitimate seed origins.
	if pkg == "flag" {
		return dataflow.Rooted, true
	}
	// A parsed spec document is the service boundary's flag surface: the
	// seed it carries was chosen by the submitting client (DESIGN.md §14),
	// exactly as legitimate an origin as a -seed flag.
	if dataflow.KeyOf(callee) == "repro/internal/core.ParseSpec" {
		return dataflow.Rooted, true
	}
	key := dataflow.KeyOf(callee)
	if i, ok := derivingCalls[key]; ok && i < len(call.Args) {
		return ev.Taint(call.Args[i]), true
	}
	if key == "repro/internal/parallel.DeriveSeed" {
		t := dataflow.Untainted
		for _, a := range call.Args {
			t = t.Or(ev.Taint(a))
		}
		return t, true
	}
	// A draw from a stream derives from the stream.
	if rngPkgs[pkg] {
		if rx := ev.RecvExpr(call); rx != nil {
			return ev.Taint(rx), true
		}
	}
	return dataflow.Untainted, false
}

func sinks(fn *dataflow.Func, ev *dataflow.Evaluator) []dataflow.Sink {
	info := fn.Pkg.Info
	var out []dataflow.Sink
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := dataflow.Callee(info, call)
		if callee == nil {
			return true
		}
		key := dataflow.KeyOf(callee)
		for _, i := range sinkArgs[key] {
			if i < len(call.Args) {
				out = append(out, dataflow.Sink{
					Expr: call.Args[i],
					What: "seed for " + key,
				})
			}
		}
		return true
	})
	return out
}

func seedish(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

func integer(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
