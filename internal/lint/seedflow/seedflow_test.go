package seedflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/seedflow"
)

// TestSeedflow covers literal seeds at and behind construction sites,
// loop-index re-seeding, struct-field threading, and the rooted negatives
// (Seed fields, seed constants, mixing, closure task seeds, redraws).
func TestSeedflow(t *testing.T) {
	analysistest.Run(t, "../testdata", seedflow.Analyzer, "seedflow", "seedflow_ok")
}
