// Package load turns `go list` package patterns into parsed, type-checked
// packages using only the standard library. It is the hermetic stand-in for
// golang.org/x/tools/go/packages: package metadata comes from
// `go list -json`, and imports are resolved from the compiler export data
// that `go list -export` materialises in the build cache, so no network or
// module download is ever needed.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// ImportPath is the package's import path. External test packages get
	// the conventional "path_test" suffix.
	ImportPath string
	// Dir is the directory holding the source files.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's resolution results for Files.
	Info *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath   string
	Dir          string
	Name         string
	ForTest      string
	Standard     bool
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Deps         []string
	Match        []string
	DepOnly      bool
	Incomplete   bool
	Module       *struct{ Path string }
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON stream it prints.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Packages loads every package matching patterns (resolved relative to dir,
// which must be inside the module), type-checked against gc export data.
// With includeTests, in-package _test.go files are merged into their
// package and external foo_test packages are loaded as separate packages.
func Packages(dir string, includeTests bool, patterns ...string) ([]*Package, error) {
	plan, err := PlanPackages(dir, includeTests, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, t := range plan.Targets {
		pkg, err := plan.Load(t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Target is one analyzable package before parsing: enough metadata to
// type-check it on demand and to key an action cache (source files plus
// the identities of everything it depends on).
type Target struct {
	// ImportPath identifies the package; external test packages carry the
	// conventional "_test" suffix.
	ImportPath string
	// Dir holds the source files.
	Dir string
	// Files are the absolute paths of the sources that make up the target
	// (test files merged in when the plan includes tests).
	Files []string
	// Deps are the base import paths of every transitive dependency,
	// sorted; test variants are folded onto their base path.
	Deps []string

	base  string // import path without the _test suffix
	xtest bool
}

// Plan is the metadata of a load set: the targets plus the export maps
// needed to parse and type-check any subset of them. cmd/repolint plans
// first, consults its cache, and loads only the misses and their
// dependency cones.
type Plan struct {
	// Targets are the packages matching the patterns, sorted by import path.
	Targets []Target

	includeTests bool
	exports      map[string]string
	testExports  map[string]string
	entries      map[string]listEntry // non-test entries by import path
}

// PlanPackages resolves patterns to a Plan without parsing any source.
func PlanPackages(dir string, includeTests bool, patterns ...string) (*Plan, error) {
	listArgs := []string{"-deps", "-export", "-json"}
	if includeTests {
		listArgs = append(listArgs, "-test")
	}
	deps, err := goList(dir, append(listArgs, patterns...)...)
	if err != nil {
		return nil, err
	}
	// exports maps import path → export data file. testExports maps a base
	// import path → the export data of its in-package test variant
	// ("p [p.test]"), which is what an external p_test package compiles
	// against. testVariants/xtestVariants keep the variant entries for
	// dependency metadata.
	plan := &Plan{
		includeTests: includeTests,
		exports:      map[string]string{},
		testExports:  map[string]string{},
		entries:      map[string]listEntry{},
	}
	testVariants := map[string]listEntry{}
	xtestVariants := map[string]listEntry{}
	for _, e := range deps {
		if e.ForTest != "" {
			base, _, ok := strings.Cut(e.ImportPath, " [")
			if !ok {
				continue
			}
			if base == e.ForTest {
				// "p [p.test]" is the in-package test variant of p; the
				// external "p_test [p.test]" entry also carries ForTest=p
				// but exports package p_test, which must not shadow p.
				if e.Export != "" && plan.testExports[e.ForTest] == "" {
					plan.testExports[e.ForTest] = e.Export
				}
				testVariants[e.ForTest] = e
			} else if base == e.ForTest+"_test" {
				xtestVariants[e.ForTest] = e
			}
			continue
		}
		if _, dup := plan.entries[e.ImportPath]; !dup {
			plan.entries[e.ImportPath] = e
		}
		if e.Export != "" && plan.exports[e.ImportPath] == "" {
			plan.exports[e.ImportPath] = e.Export
		}
	}

	targets, err := goList(dir, append([]string{"-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	for _, t := range targets {
		if t.Standard || t.DepOnly {
			continue
		}
		files := absFiles(t.Dir, t.GoFiles)
		depsOf := t.Deps
		if includeTests {
			files = append(files, absFiles(t.Dir, t.TestGoFiles)...)
			if v, ok := testVariants[t.ImportPath]; ok {
				depsOf = v.Deps
			}
		}
		if len(files) > 0 {
			plan.Targets = append(plan.Targets, Target{
				ImportPath: t.ImportPath,
				Dir:        t.Dir,
				Files:      files,
				Deps:       baseDeps(depsOf, t.ImportPath),
				base:       t.ImportPath,
			})
		}
		if includeTests && len(t.XTestGoFiles) > 0 {
			depsOf := t.Deps
			if v, ok := xtestVariants[t.ImportPath]; ok {
				depsOf = v.Deps
			}
			plan.Targets = append(plan.Targets, Target{
				ImportPath: t.ImportPath + "_test",
				Dir:        t.Dir,
				Files:      absFiles(t.Dir, t.XTestGoFiles),
				Deps:       baseDeps(depsOf, t.ImportPath+"_test"),
				base:       t.ImportPath,
				xtest:      true,
			})
		}
	}
	return plan, nil
}

// Load parses and type-checks one target from the plan.
func (p *Plan) Load(t Target) (*Package, error) {
	exp := p.exports
	if t.xtest {
		// An external test package imports the *test variant* of its
		// package under test: remap that one path to the variant's
		// export data.
		if v := p.testExports[t.base]; v != "" {
			exp = overlay(p.exports, map[string]string{t.base: v})
		}
	}
	return check(t.ImportPath, t.Dir, t.Files, exp)
}

// TargetFor synthesizes a target for a dependency that was not matched by
// the plan's patterns (always its plain, non-test variant). The second
// result is false for standard-library and unknown paths.
func (p *Plan) TargetFor(importPath string) (Target, bool) {
	e, ok := p.entries[importPath]
	if !ok || e.Standard || len(e.GoFiles) == 0 {
		return Target{}, false
	}
	return Target{
		ImportPath: e.ImportPath,
		Dir:        e.Dir,
		Files:      absFiles(e.Dir, e.GoFiles),
		Deps:       baseDeps(e.Deps, e.ImportPath),
		base:       e.ImportPath,
	}, true
}

// DepSources returns the files whose contents identify a dependency for
// cache keying, or its export-data path when the dependency is outside the
// module (build-cache paths encode the action identity, so they change
// whenever the toolchain or the package does).
func (p *Plan) DepSources(importPath string) (files []string, export string, inModule bool) {
	e, ok := p.entries[importPath]
	if !ok {
		return nil, "", false
	}
	if e.Standard || e.Module == nil {
		return nil, e.Export, false
	}
	files = absFiles(e.Dir, e.GoFiles)
	if p.includeTests {
		// Test variants fold onto the base path; include their sources so
		// a test-only change invalidates dependents of the variant.
		files = append(files, absFiles(e.Dir, e.TestGoFiles)...)
	}
	return files, "", true
}

// absFiles joins names onto dir unless already absolute.
func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}

// baseDeps folds test-variant dependency paths ("q [p.test]") onto their
// base import path, drops self, dedupes, and sorts.
func baseDeps(deps []string, self string) []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range deps {
		if base, _, ok := strings.Cut(d, " ["); ok {
			d = base
		}
		if d == self || seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// overlay copies base with the entries of over substituted on top.
func overlay(base, over map[string]string) map[string]string {
	out := make(map[string]string, len(base))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}

// check parses files (named relative to pkgDir) and type-checks them as one
// package, resolving imports through the export map.
func check(importPath, pkgDir string, files []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(pkgDir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		parsed = append(parsed, f)
	}
	pkg, info, err := Check(importPath, fset, parsed, exports)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Dir:        pkgDir,
		Fset:       fset,
		Files:      parsed,
		Types:      pkg,
		Info:       info,
	}, nil
}

// Check type-checks already-parsed files as the package importPath,
// resolving imports from gc export data files. It is exported for the
// analysistest harness, which parses fixture sources itself.
func Check(importPath string, fset *token.FileSet, files []*ast.File, exports map[string]string) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return pkg, info, nil
}

// StdExports resolves export data for the given standard-library (or any
// buildable) import paths plus all their dependencies. Used by the
// analysistest harness, whose fixture packages import only the standard
// library.
func StdExports(dir string, paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	entries, err := goList(dir, append([]string{"-deps", "-export", "-json"}, paths...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}
