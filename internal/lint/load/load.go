// Package load turns `go list` package patterns into parsed, type-checked
// packages using only the standard library. It is the hermetic stand-in for
// golang.org/x/tools/go/packages: package metadata comes from
// `go list -json`, and imports are resolved from the compiler export data
// that `go list -export` materialises in the build cache, so no network or
// module download is ever needed.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// ImportPath is the package's import path. External test packages get
	// the conventional "path_test" suffix.
	ImportPath string
	// Dir is the directory holding the source files.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's resolution results for Files.
	Info *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath   string
	Dir          string
	Name         string
	ForTest      string
	Standard     bool
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Match        []string
	DepOnly      bool
	Incomplete   bool
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON stream it prints.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Packages loads every package matching patterns (resolved relative to dir,
// which must be inside the module), type-checked against gc export data.
// With includeTests, in-package _test.go files are merged into their
// package and external foo_test packages are loaded as separate packages.
func Packages(dir string, includeTests bool, patterns ...string) ([]*Package, error) {
	listArgs := []string{"-deps", "-export", "-json"}
	if includeTests {
		listArgs = append(listArgs, "-test")
	}
	deps, err := goList(dir, append(listArgs, patterns...)...)
	if err != nil {
		return nil, err
	}
	// exports maps import path → export data file. testExports maps a base
	// import path → the export data of its in-package test variant
	// ("p [p.test]"), which is what an external p_test package compiles
	// against.
	exports := map[string]string{}
	testExports := map[string]string{}
	for _, e := range deps {
		if e.Export == "" {
			continue
		}
		if e.ForTest != "" {
			// Only "p [p.test]" is the in-package test variant of p; the
			// external "p_test [p.test]" entry also carries ForTest=p but
			// exports package p_test, which must not shadow p.
			if base, _, ok := strings.Cut(e.ImportPath, " ["); ok && base == e.ForTest && testExports[e.ForTest] == "" {
				testExports[e.ForTest] = e.Export
			}
			continue
		}
		if exports[e.ImportPath] == "" {
			exports[e.ImportPath] = e.Export
		}
	}

	targets, err := goList(dir, append([]string{"-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		if t.Standard || t.DepOnly {
			continue
		}
		files := append([]string{}, t.GoFiles...)
		if includeTests {
			files = append(files, t.TestGoFiles...)
		}
		if len(files) > 0 {
			// Test-only imports of the merged package are plain packages
			// and already live in exports (-test was passed to -deps).
			pkg, err := check(t.ImportPath, t.Dir, files, exports)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if includeTests && len(t.XTestGoFiles) > 0 {
			// An external test package imports the *test variant* of its
			// package under test: remap that one path to the variant's
			// export data.
			exp := exports
			if v := testExports[t.ImportPath]; v != "" {
				exp = overlay(exports, map[string]string{t.ImportPath: v})
			}
			pkg, err := check(t.ImportPath+"_test", t.Dir, t.XTestGoFiles, exp)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// overlay copies base with the entries of over substituted on top.
func overlay(base, over map[string]string) map[string]string {
	out := make(map[string]string, len(base))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}

// check parses files (named relative to pkgDir) and type-checks them as one
// package, resolving imports through the export map.
func check(importPath, pkgDir string, files []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(pkgDir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		parsed = append(parsed, f)
	}
	pkg, info, err := Check(importPath, fset, parsed, exports)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: importPath,
		Dir:        pkgDir,
		Fset:       fset,
		Files:      parsed,
		Types:      pkg,
		Info:       info,
	}, nil
}

// Check type-checks already-parsed files as the package importPath,
// resolving imports from gc export data files. It is exported for the
// analysistest harness, which parses fixture sources itself.
func Check(importPath string, fset *token.FileSet, files []*ast.File, exports map[string]string) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return pkg, info, nil
}

// StdExports resolves export data for the given standard-library (or any
// buildable) import paths plus all their dependencies. Used by the
// analysistest harness, whose fixture packages import only the standard
// library.
func StdExports(dir string, paths ...string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	entries, err := goList(dir, append([]string{"-deps", "-export", "-json"}, paths...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}
