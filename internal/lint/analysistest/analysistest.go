// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest on the standard library only.
//
// A fixture line expects diagnostics with a trailing comment:
//
//	rand.Intn(6) // want `global math/rand call`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match the message of exactly one diagnostic reported
// on that line; diagnostics with no matching expectation, and expectations
// with no matching diagnostic, fail the test. Fixture packages live under
// <testdata>/src/<importpath> and may import only the standard library.
//
// Analyzers that declare Requires get their dependencies run first on the
// same fixture package, in dependency order, with results wired through
// Pass.ResultOf exactly as the real driver does. Dependency diagnostics are
// discarded — only the analyzer under test is checked against the wants.
package analysistest

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// T is the slice of *testing.T the harness needs. It is an interface so the
// harness itself can be meta-tested with a recording fake.
type T interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// expectation is one want pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package under testdata/src, applies the analyzer,
// and reports every mismatch between diagnostics and // want expectations.
func Run(t T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		runOne(t, filepath.Join(testdata, "src", pkgPath), pkgPath, a, false)
	}
}

// RunWithSuggestedFixes is Run plus the -fix contract: after the want check,
// every suggested fix is applied in memory, the result is formatted with
// gofmt, and compared against the fixture's <name>.golden sibling (which is
// also formatted first, so goldens don't have to be byte-perfect gofmt
// output). Fixture files without a .golden must come out unchanged.
func RunWithSuggestedFixes(t T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		runOne(t, filepath.Join(testdata, "src", pkgPath), pkgPath, a, true)
	}
}

func runOne(t T, dir, pkgPath string, a *analysis.Analyzer, checkFixes bool) {
	t.Helper()
	fset := token.NewFileSet()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("%s: no fixture files in %s (%v)", pkgPath, dir, err)
		return
	}
	sort.Strings(names)
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
			return
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	var importList []string
	for p := range imports {
		importList = append(importList, p)
	}
	sort.Strings(importList)
	exports, err := load.StdExports(".", importList...)
	if err != nil {
		t.Fatalf("%s: resolving fixture imports: %v", pkgPath, err)
		return
	}
	pkg, info, err := load.Check(pkgPath, fset, files, exports)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
		return
	}

	newPass := func(a *analysis.Analyzer, report func(analysis.Diagnostic)) *analysis.Pass {
		return &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    report,
		}
	}

	// Run the Requires closure in dependency order, discarding diagnostics.
	results := map[*analysis.Analyzer]any{}
	var runDeps func(a *analysis.Analyzer) error
	runDeps = func(a *analysis.Analyzer) error {
		for _, dep := range a.Requires {
			if _, done := results[dep]; done {
				continue
			}
			if err := runDeps(dep); err != nil {
				return err
			}
			pass := newPass(dep, func(analysis.Diagnostic) {})
			pass.ResultOf = results
			res, err := dep.Run(pass)
			if err != nil {
				return fmt.Errorf("required analyzer %s: %v", dep.Name, err)
			}
			results[dep] = res
		}
		return nil
	}
	if err := runDeps(a); err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
		return
	}

	expectations := collectWants(t, fset, files)
	var diags []analysis.Diagnostic
	pass := newPass(a, func(d analysis.Diagnostic) { diags = append(diags, d) })
	pass.ResultOf = results
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkgPath, a.Name, err)
		return
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expectations, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}

	if checkFixes {
		compareFixes(t, fset, names, diags)
	}
}

// compareFixes applies every suggested fix in memory and diffs the gofmt'd
// result against the fixture's .golden sibling.
func compareFixes(t T, fset *token.FileSet, names []string, diags []analysis.Diagnostic) {
	t.Helper()
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := map[string][]edit{}
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				start := fset.Position(te.Pos)
				end := start
				if te.End.IsValid() {
					end = fset.Position(te.End)
				}
				perFile[start.Filename] = append(perFile[start.Filename], edit{
					start: start.Offset,
					end:   end.Offset,
					text:  te.NewText,
				})
			}
		}
	}
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("%v", err)
			return
		}
		edits := perFile[name]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		prev := -1
		for _, e := range edits {
			if prev >= 0 && e.end > prev {
				continue // overlapping edit: keep the first applied
			}
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
			prev = e.start
		}
		got, err := format.Source(src)
		if err != nil {
			t.Errorf("%s: fixed source does not parse: %v\n%s", name, err, src)
			continue
		}
		goldenName := name + ".golden"
		golden, err := os.ReadFile(goldenName)
		if os.IsNotExist(err) {
			if len(edits) > 0 {
				t.Errorf("%s: fixes were suggested but no %s exists", name, filepath.Base(goldenName))
			}
			continue
		}
		if err != nil {
			t.Fatalf("%v", err)
			return
		}
		want, err := format.Source(golden)
		if err != nil {
			t.Fatalf("%s: golden does not parse: %v", goldenName, err)
			return
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: fixed output differs from %s:\n-- got --\n%s\n-- want --\n%s",
				name, filepath.Base(goldenName), got, want)
		}
	}
}

// claim marks the first unmatched expectation at (file, line) whose pattern
// matches message.
func claim(expectations []*expectation, file string, line int, message string) bool {
	for _, e := range expectations {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.pattern.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

// wantRE strips the leading "// want " marker from a comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants parses every // want comment into expectations anchored at
// the comment's line.
func collectWants(t T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
						return nil
					}
					out = append(out, &expectation{
						file:    pos.Filename,
						line:    pos.Line,
						pattern: re,
						raw:     raw,
					})
				}
			}
		}
	}
	return out
}

// splitPatterns tokenises the tail of a want comment into its quoted
// patterns (double- or back-quoted, space-separated).
func splitPatterns(t T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var raw string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern: %s", pos.Filename, pos.Line, s)
				return out
			}
			raw = s[1 : 1+end]
			s = s[end+2:]
		case '"':
			var err error
			end := quotedEnd(s)
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern: %s", pos.Filename, pos.Line, s)
				return out
			}
			raw, err = strconv.Unquote(s[:end])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, s[:end], err)
				return out
			}
			s = s[end:]
		default:
			t.Fatalf("%s:%d: want patterns must be quoted, got: %s", pos.Filename, pos.Line, s)
			return out
		}
		out = append(out, raw)
		s = strings.TrimSpace(s)
	}
	return out
}

// quotedEnd returns the index just past the closing double quote of the
// quoted string starting at s[0], honouring backslash escapes.
func quotedEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return -1
}

// WriteTree is a helper for tests that need to materialise a fixture tree
// at runtime; it writes files (path → contents, relative to dir).
func WriteTree(t T, dir string, files map[string]string) {
	t.Helper()
	for name, contents := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("%v", err)
			return
		}
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatalf("%v", err)
			return
		}
	}
}
