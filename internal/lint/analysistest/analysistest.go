// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest on the standard library only.
//
// A fixture line expects diagnostics with a trailing comment:
//
//	rand.Intn(6) // want `global math/rand call`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match the message of exactly one diagnostic reported
// on that line; diagnostics with no matching expectation, and expectations
// with no matching diagnostic, fail the test. Fixture packages live under
// <testdata>/src/<importpath> and may import only the standard library.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// expectation is one want pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package under testdata/src, applies the analyzer,
// and reports every mismatch between diagnostics and // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		runOne(t, filepath.Join(testdata, "src", pkgPath), pkgPath, a)
	}
}

func runOne(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("%s: no fixture files in %s (%v)", pkgPath, dir, err)
	}
	sort.Strings(names)
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	var importList []string
	for p := range imports {
		importList = append(importList, p)
	}
	sort.Strings(importList)
	exports, err := load.StdExports(".", importList...)
	if err != nil {
		t.Fatalf("%s: resolving fixture imports: %v", pkgPath, err)
	}
	pkg, info, err := load.Check(pkgPath, fset, files, exports)
	if err != nil {
		t.Fatalf("%s: %v", pkgPath, err)
	}

	expectations := collectWants(t, fset, files)
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkgPath, a.Name, err)
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(expectations, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, e := range expectations {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}

// claim marks the first unmatched expectation at (file, line) whose pattern
// matches message.
func claim(expectations []*expectation, file string, line int, message string) bool {
	for _, e := range expectations {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.pattern.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

// wantRE strips the leading "// want " marker from a comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants parses every // want comment into expectations anchored at
// the comment's line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &expectation{
						file:    pos.Filename,
						line:    pos.Line,
						pattern: re,
						raw:     raw,
					})
				}
			}
		}
	}
	return out
}

// splitPatterns tokenises the tail of a want comment into its quoted
// patterns (double- or back-quoted, space-separated).
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var raw string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern: %s", pos.Filename, pos.Line, s)
			}
			raw = s[1 : 1+end]
			s = s[end+2:]
		case '"':
			var err error
			end := quotedEnd(s)
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern: %s", pos.Filename, pos.Line, s)
			}
			raw, err = strconv.Unquote(s[:end])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, s[:end], err)
			}
			s = s[end:]
		default:
			t.Fatalf("%s:%d: want patterns must be quoted, got: %s", pos.Filename, pos.Line, s)
		}
		out = append(out, raw)
		s = strings.TrimSpace(s)
	}
	return out
}

// quotedEnd returns the index just past the closing double quote of the
// quoted string starting at s[0], honouring backslash escapes.
func quotedEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i + 1
		}
	}
	return -1
}

// WriteTree is a helper for tests that need to materialise a fixture tree
// at runtime; it writes files (path → contents, relative to dir).
func WriteTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, contents := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
