package analysistest_test

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
)

// fakeT records what the harness reports so the harness itself can be put
// under test: a run against a correct fixture must record nothing, and a
// run against a broken one must record the right complaints instead of
// passing silently.
type fakeT struct {
	errors []string
	fatals []string
}

func (f *fakeT) Helper() {}
func (f *fakeT) Errorf(format string, args ...any) {
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}
func (f *fakeT) Fatalf(format string, args ...any) {
	f.fatals = append(f.fatals, fmt.Sprintf(format, args...))
}

func (f *fakeT) clean() bool { return len(f.errors) == 0 && len(f.fatals) == 0 }

// metaAnalyzer flags calls to a function literally named "bad" with a
// message full of regexp metacharacters, and suggests renaming the call to
// "good" — enough surface to exercise want parsing and the -fix golden path.
var metaAnalyzer = &analysis.Analyzer{
	Name:    "metatest",
	Doc:     "meta-test analyzer: flags calls to bad() and fixes them to good()",
	Version: "1",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "bad" {
					return true
				}
				pass.Report(analysis.Diagnostic{
					Pos:     call.Pos(),
					Message: "call to bad() [deprecated]",
					SuggestedFixes: []analysis.SuggestedFix{{
						Message:   "replace with good()",
						TextEdits: []analysis.TextEdit{{Pos: id.Pos(), End: id.End(), NewText: []byte("good")}},
					}},
				})
				return true
			})
		}
		return nil, nil
	},
}

// writeFixture materialises one fixture package and returns the testdata
// root to hand to Run.
func writeFixture(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	analysistest.WriteTree(t, dir, files)
	return dir
}

// TestWantMetacharacters proves want patterns are full regular expressions:
// backquoted and double-quoted patterns with escaped metacharacters match,
// and an unescaped character class that cannot match is reported as an
// unfulfilled expectation rather than silently dropped.
func TestWantMetacharacters(t *testing.T) {
	testdata := writeFixture(t, map[string]string{
		"src/meta/meta.go": `package meta

func bad()  {}
func good() {}

func use() {
	bad() // want ` + "`" + `call to bad\(\) \[deprecated\]` + "`" + `
	bad() // want "call to bad\\(\\) \\[deprecated\\]"
}
`,
	})
	ft := &fakeT{}
	analysistest.Run(ft, testdata, metaAnalyzer, "meta")
	if !ft.clean() {
		t.Fatalf("harness flagged a correct fixture: errors=%q fatals=%q", ft.errors, ft.fatals)
	}

	// The same fixture with a pattern whose metacharacters are NOT escaped:
	// `[deprecated]` is a character class and `()` an empty group, so the
	// anchored pattern cannot match the literal message — the harness must
	// report both the unexpected diagnostic and the unfulfilled expectation,
	// not quietly treat the pattern as literal text.
	testdata = writeFixture(t, map[string]string{
		"src/meta/meta.go": `package meta

func bad()  {}
func good() {}

func use() {
	bad() // want ` + "`" + `^call to bad$ [deprecated]` + "`" + `
}
`,
	})
	ft = &fakeT{}
	analysistest.Run(ft, testdata, metaAnalyzer, "meta")
	if len(ft.errors) != 2 {
		t.Fatalf("want 2 errors (diagnostic unmatched by the metacharacter pattern), got errors=%q fatals=%q", ft.errors, ft.fatals)
	}
}

// TestWantBadRegexp proves an invalid pattern is a fixture bug the harness
// refuses to run past, not an ignored expectation.
func TestWantBadRegexp(t *testing.T) {
	testdata := writeFixture(t, map[string]string{
		"src/meta/meta.go": `package meta

func bad() {}

func use() {
	bad() // want ` + "`" + `(` + "`" + `
}
`,
	})
	ft := &fakeT{}
	analysistest.Run(ft, testdata, metaAnalyzer, "meta")
	if len(ft.fatals) != 1 || !strings.Contains(ft.fatals[0], "bad want pattern") {
		t.Fatalf("want one 'bad want pattern' fatal, got errors=%q fatals=%q", ft.errors, ft.fatals)
	}
}

// TestWantMismatches proves both failure directions: a diagnostic with no
// expectation and an expectation with no diagnostic each produce an error.
func TestWantMismatches(t *testing.T) {
	testdata := writeFixture(t, map[string]string{
		"src/meta/meta.go": `package meta

func bad()  {}
func good() {}

func use() {
	bad()
	good() // want ` + "`" + `call to bad` + "`" + `
}
`,
	})
	ft := &fakeT{}
	analysistest.Run(ft, testdata, metaAnalyzer, "meta")
	if len(ft.errors) != 2 {
		t.Fatalf("want exactly 2 errors (unexpected diagnostic + unmatched want), got %q", ft.errors)
	}
	if !strings.Contains(ft.errors[0], "unexpected diagnostic") {
		t.Errorf("first error should be the unexpected diagnostic, got %q", ft.errors[0])
	}
	if !strings.Contains(ft.errors[1], "expected diagnostic matching") {
		t.Errorf("second error should be the unmatched want, got %q", ft.errors[1])
	}
}

// TestFixGoldenRoundTrip proves the -fix contract normalises both sides
// through gofmt: a golden with non-canonical spacing still matches the
// applied fix, so goldens do not need to be byte-perfect gofmt output.
func TestFixGoldenRoundTrip(t *testing.T) {
	testdata := writeFixture(t, map[string]string{
		"src/meta/meta.go": `package meta

func bad()  {}
func good() {}

func use() {
	bad() // want ` + "`" + `call to bad\(\) \[deprecated\]` + "`" + `
}
`,
		// Deliberately messy: extra blank line and unaligned spacing. gofmt
		// on both sides must absorb the difference.
		"src/meta/meta.go.golden": `package meta

func bad()        {}
func good() {}


func use() {
	good() // want ` + "`" + `call to bad\(\) \[deprecated\]` + "`" + `
}
`,
	})
	ft := &fakeT{}
	analysistest.RunWithSuggestedFixes(ft, testdata, metaAnalyzer, "meta")
	if !ft.clean() {
		t.Fatalf("golden round-trip failed: errors=%q fatals=%q", ft.errors, ft.fatals)
	}
}

// TestFixWithoutGolden proves a fixture that triggers fixes but ships no
// .golden fails loudly instead of skipping the comparison.
func TestFixWithoutGolden(t *testing.T) {
	testdata := writeFixture(t, map[string]string{
		"src/meta/meta.go": `package meta

func bad()  {}
func good() {}

func use() {
	bad() // want ` + "`" + `call to bad\(\) \[deprecated\]` + "`" + `
}
`,
	})
	ft := &fakeT{}
	analysistest.RunWithSuggestedFixes(ft, testdata, metaAnalyzer, "meta")
	if len(ft.errors) != 1 || !strings.Contains(ft.errors[0], "no meta.go.golden exists") {
		t.Fatalf("want one missing-golden error, got errors=%q fatals=%q", ft.errors, ft.fatals)
	}
}
