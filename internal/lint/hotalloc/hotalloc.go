// Package hotalloc enforces the allocation discipline of DESIGN.md §12 on
// functions annotated with a "//hot:path" doc comment: a hot function is one the
// profiles show on a per-event or per-cell path, and the structure-of-arrays
// rewrite got its speedups precisely by keeping make, growing appends, and
// map iteration out of those bodies. The analyzer fails when a //hot:path
// function contains:
//
//   - a call to the builtin make — a fresh allocation per invocation, which
//     belongs in a Reset/constructor that reuses backing storage instead;
//   - a call to the builtin append — growth reallocates and even the
//     non-growing form hides a capacity check; hot paths index into
//     preallocated storage;
//   - a range over a map — a hash walk with randomised order, both slower
//     than a slice scan and a determinism hazard.
//
// Helpers that legitimately grow storage (markRequested, setHave, interning)
// simply are not annotated — the annotation is the contract. Test files are
// skipped; //lint:ignore suppresses individual findings like every other
// analyzer in the suite.
package hotalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags make/append calls and map iteration inside functions " +
		"annotated //hot:path, whose contract is zero steady-state allocation",
	Version: "1",
	Run:     run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHot(fd) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil, nil
}

// isHot reports whether the function's doc comment carries the //hot:path
// annotation (a comment line that is exactly "//hot:path", the pragma style of
// //go:noinline and friends).
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//hot:path" {
			return true
		}
	}
	return false
}

// checkBody walks one hot function and reports every allocation or map walk.
// Function literals inside the body are part of the hot path — they run (or
// allocate) when the hot function does — so the walk descends into them.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch builtinName(pass, n) {
			case "make":
				pass.Reportf(n.Pos(),
					"make inside //hot:path function %s allocates per call; preallocate in a constructor or Reset and reuse the backing storage",
					name)
			case "append":
				pass.Reportf(n.Pos(),
					"append inside //hot:path function %s can grow its backing array; index into preallocated storage instead",
					name)
			}
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(),
						"map iteration inside //hot:path function %s is a randomised hash walk; keep a flat slice (or index log) alongside the map and scan that",
						name)
				}
			}
		}
		return true
	})
}

// builtinName returns the name of the builtin being called, or "".
func builtinName(pass *analysis.Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
