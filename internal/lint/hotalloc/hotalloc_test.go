package hotalloc_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/hotalloc"
)

// TestHotAlloc covers make/append/map-iteration positives inside //hot:path
// functions (closures included) and the unannotated-helper, preallocated-
// probe, and map-read negatives.
func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "../testdata", hotalloc.Analyzer, "hotalloc", "hotalloc_ok")
}
