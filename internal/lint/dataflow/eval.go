package dataflow

import (
	"go/ast"
	"go/types"
)

// Evaluator computes the taint of expressions inside one function. It is
// flow-insensitive: a local variable's taint is the join of every value
// ever assigned to it (including writes into it as a container — index
// assignments, channel sends, appends), which cannot lose a root and
// therefore never manufactures an "underived" finding out of ordering.
type Evaluator struct {
	eng *Engine
	fn  *Func

	// paramBit maps the enclosing function's receiver/parameters to their
	// bit index (receiver = 0 for methods).
	paramBit map[*types.Var]int
	// litParams are parameters of function literals inside the body: not
	// call-site checkable, so they are judged by RootParam alone.
	litParams map[*types.Var]bool
	// assigns collects, per local variable, every expression assigned to
	// it or written into it.
	assigns map[*types.Var][]ast.Expr
	// ranged records range bindings: the container expression and whether
	// the variable is the key (index) or the value.
	ranged map[*types.Var][]rangeBinding
	// namedResults are the named result variables, for naked returns.
	namedResults []*types.Var

	objMemo map[*types.Var]Taint
	objBusy map[*types.Var]bool
}

type rangeBinding struct {
	container ast.Expr
	isKey     bool
}

// Fn returns the function the evaluator is scoped to.
func (ev *Evaluator) Fn() *Func { return ev.fn }

// Info returns the type information resolving the function's syntax.
func (ev *Evaluator) Info() *types.Info { return ev.fn.Pkg.Info }

// RecvExpr returns the receiver expression of a method call, or nil.
func (ev *Evaluator) RecvExpr(call *ast.CallExpr) ast.Expr {
	return recvExpr(ev.Info(), call)
}

func newEvaluator(eng *Engine, fn *Func) *Evaluator {
	ev := &Evaluator{
		eng:       eng,
		fn:        fn,
		paramBit:  map[*types.Var]int{},
		litParams: map[*types.Var]bool{},
		assigns:   map[*types.Var][]ast.Expr{},
		ranged:    map[*types.Var][]rangeBinding{},
		objMemo:   map[*types.Var]Taint{},
		objBusy:   map[*types.Var]bool{},
	}
	info := fn.Pkg.Info

	bit := 0
	declare := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			if len(field.Names) == 0 {
				bit++
				continue
			}
			for _, id := range field.Names {
				if v, ok := info.Defs[id].(*types.Var); ok {
					ev.paramBit[v] = bit
				}
				bit++
			}
		}
	}
	declare(fn.Decl.Recv)
	declare(fn.Decl.Type.Params)

	if res := fn.Decl.Type.Results; res != nil {
		for _, field := range res.List {
			for _, id := range field.Names {
				if v, ok := info.Defs[id].(*types.Var); ok {
					ev.namedResults = append(ev.namedResults, v)
				}
			}
		}
	}

	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			for _, field := range n.Type.Params.List {
				for _, id := range field.Names {
					if v, ok := info.Defs[id].(*types.Var); ok {
						ev.litParams[v] = true
					}
				}
			}
		case *ast.AssignStmt:
			ev.recordAssign(n)
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 {
						rhs = vs.Values[0]
					}
					if rhs != nil {
						ev.record(id, rhs)
					}
				}
			}
		case *ast.RangeStmt:
			ev.recordRange(n)
		case *ast.SendStmt:
			ev.recordWrite(n.Chan, n.Value)
		}
		return true
	})
	return ev
}

func (ev *Evaluator) recordAssign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			ev.record(l, rhs)
		default:
			// m[k] = v, *p = v, s.f = v: a write into the container or
			// pointee taints the root variable.
			ev.recordWrite(lhs, rhs)
		}
	}
}

func (ev *Evaluator) record(id *ast.Ident, rhs ast.Expr) {
	obj := ev.objOf(id)
	if obj == nil {
		return
	}
	ev.assigns[obj] = append(ev.assigns[obj], rhs)
}

// recordWrite taints the root identifier of a container expression (map
// index, slice index, field selector, pointer deref, channel) with the
// written value: elements later read back out of the container inherit it.
func (ev *Evaluator) recordWrite(container ast.Expr, value ast.Expr) {
	if id := rootIdent(container); id != nil {
		ev.record(id, value)
	}
}

func (ev *Evaluator) recordRange(rs *ast.RangeStmt) {
	bind := func(e ast.Expr, isKey bool) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := ev.objOf(id)
		if obj == nil {
			return
		}
		ev.ranged[obj] = append(ev.ranged[obj], rangeBinding{container: rs.X, isKey: isKey})
	}
	if rs.Key != nil {
		bind(rs.Key, true)
	}
	if rs.Value != nil {
		bind(rs.Value, false)
	}
}

func (ev *Evaluator) objOf(id *ast.Ident) *types.Var {
	info := ev.Info()
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// rootIdent unwraps selectors, indexes, derefs, and slices to the base
// identifier, or nil (e.g. calls).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Taint judges one expression.
func (ev *Evaluator) Taint(e ast.Expr) Taint {
	if e == nil {
		return Untainted
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.Taint(e.X)
	case *ast.BasicLit:
		return Untainted
	case *ast.Ident:
		return ev.identTaint(e)
	case *ast.SelectorExpr:
		return ev.selectorTaint(e)
	case *ast.BinaryExpr:
		return ev.Taint(e.X).Or(ev.Taint(e.Y))
	case *ast.UnaryExpr:
		return ev.Taint(e.X)
	case *ast.StarExpr:
		return ev.Taint(e.X)
	case *ast.IndexExpr:
		// Reading an element derives from the container. (Generic
		// instantiations also parse as IndexExpr; their taint as a bare
		// function value is irrelevant and the container rule is harmless.)
		return ev.Taint(e.X)
	case *ast.SliceExpr:
		return ev.Taint(e.X)
	case *ast.TypeAssertExpr:
		return ev.Taint(e.X)
	case *ast.CompositeLit:
		t := Untainted
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = t.Or(ev.Taint(el))
		}
		return t
	case *ast.CallExpr:
		return ev.callTaint(e)
	case *ast.FuncLit:
		return Untainted
	}
	return Untainted
}

func (ev *Evaluator) identTaint(id *ast.Ident) Taint {
	obj := ev.Info().ObjectOf(id)
	switch obj := obj.(type) {
	case *types.Const:
		if h := ev.eng.Hooks.RootObj; h != nil && h(obj) {
			return Rooted
		}
		return Untainted
	case *types.Var:
		return ev.objTaint(obj)
	}
	return Untainted
}

// objTaint judges a variable: parameters by their bit (or RootParam),
// closure parameters by RootParam alone, locals by the join of their
// assignments and range bindings, package-level variables by RootObj.
func (ev *Evaluator) objTaint(obj *types.Var) Taint {
	if bit, ok := ev.paramBit[obj]; ok {
		// Declared-function parameters are never rooted by name: they are
		// conduits, judged at call sites through the demand mechanism. A
		// blanket "params named seed are roots" rule would zero the demand
		// mask and hide literal seeds behind every helper.
		return paramTaint(bit)
	}
	if ev.litParams[obj] {
		if h := ev.eng.Hooks.RootParam; h != nil && h(obj.Name(), obj.Type()) {
			return Rooted
		}
		return Untainted
	}
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		if h := ev.eng.Hooks.RootObj; h != nil && h(obj) {
			return Rooted
		}
		return Untainted
	}
	if t, ok := ev.objMemo[obj]; ok {
		return t
	}
	if ev.objBusy[obj] {
		// Self-referential assignment chain (x = append(x, y)): resolve by
		// the client's polarity; the join with the chain's other operands
		// still carries any real root.
		return ev.eng.cycleTaint()
	}
	ev.objBusy[obj] = true
	defer func() { ev.objBusy[obj] = false }()

	t := Untainted
	for _, rhs := range ev.assigns[obj] {
		t = t.Or(ev.Taint(rhs))
	}
	for _, rb := range ev.ranged[obj] {
		t = t.Or(ev.rangeTaint(rb))
	}
	ev.objMemo[obj] = t
	return t
}

// rangeTaint judges a range binding: values always derive from the
// container; keys do only for maps (slice/array indices are plain ints,
// and a channel's single binding is the received value).
func (ev *Evaluator) rangeTaint(rb rangeBinding) Taint {
	if !rb.isKey {
		return ev.Taint(rb.container)
	}
	t := ev.Info().TypeOf(rb.container)
	if t == nil {
		return Untainted
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Chan:
		return ev.Taint(rb.container)
	}
	return Untainted
}

func (ev *Evaluator) selectorTaint(sel *ast.SelectorExpr) Taint {
	info := ev.Info()
	if s, ok := info.Selections[sel]; ok {
		if s.Kind() == types.FieldVal {
			if h := ev.eng.Hooks.RootField; h != nil && h(sel.Sel.Name, s.Type()) {
				return Rooted
			}
			// A field of a tainted struct value is tainted: this is how
			// streams threaded through struct fields keep their origin.
			return ev.Taint(sel.X)
		}
		return Untainted // method value
	}
	// Qualified identifier (pkg.Name).
	return ev.identTaint(sel.Sel)
}

func (ev *Evaluator) callTaint(call *ast.CallExpr) Taint {
	info := ev.Info()
	// Conversion: T(x) derives from x.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return ev.Taint(call.Args[0])
		}
		return Untainted
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "min", "max":
				t := Untainted
				for _, a := range call.Args {
					t = t.Or(ev.Taint(a))
				}
				return t
			}
			return Untainted
		}
	}
	callee := Callee(info, call)
	if callee == nil {
		return Untainted // function value or interface dispatch
	}
	if h := ev.eng.Hooks.CallTaint; h != nil {
		if t, ok := h(ev, call, callee); ok {
			return t
		}
	}
	target := ev.eng.Index.Lookup(KeyOf(callee))
	if target == nil {
		return Untainted
	}
	// Substitute this call's arguments into the callee's return summary.
	sum := ev.eng.ReturnTaint(target)
	t := Taint{rooted: sum.rooted}
	if sum.params == 0 {
		return t
	}
	for _, pa := range demandedArgs(info, call, target, sum.params) {
		t = t.Or(ev.Taint(pa.expr))
	}
	return t
}
