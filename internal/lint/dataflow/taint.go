package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Taint is the lattice value of the forward propagation engine. A value is
// either definitely derived from a root (Tainted), definitely not
// (Untainted: the zero value), or conditionally derived from the enclosing
// function's parameters (ParamDeps — a bitmask of parameter indices whose
// taint the value inherits). Mixing follows OR semantics: deriving a value
// from one root and three constants still derives it from the root, which
// is the right reading for "is this seed a function of the study seed".
type Taint struct {
	rooted bool
	params uint64
}

// Rooted is the definitely-derived-from-a-root value.
var Rooted = Taint{rooted: true}

// Untainted is the definitely-not-derived value (also the zero Taint).
var Untainted = Taint{}

// Tainted reports whether the value definitely derives from a root.
func (t Taint) Tainted() bool { return t.rooted }

// ParamDeps returns the mask of enclosing-function parameters the value
// conditionally derives from (receiver is bit 0 for methods).
func (t Taint) ParamDeps() uint64 { return t.params }

// Definite reports whether the judgment does not depend on parameters —
// i.e. it holds in every calling context.
func (t Taint) Definite() bool { return t.rooted || t.params == 0 }

// Or joins two values.
func (t Taint) Or(u Taint) Taint {
	return Taint{rooted: t.rooted || u.rooted, params: t.params | u.params}
}

func paramTaint(i int) Taint {
	if i >= 64 {
		// Parameter lists past 64 entries lose precision; err on the
		// optimistic side so the engine never manufactures a finding.
		return Rooted
	}
	return Taint{params: 1 << uint(i)}
}

// Sink is one site a client wants judged: Expr's taint decides whether the
// site is reported (clients choose the polarity — seedflow reports
// untainted sinks, detmerge reports tainted ones).
type Sink struct {
	// Expr is the expression flowing into the site.
	Expr ast.Expr
	// Pos overrides the report position (defaults to Expr.Pos()).
	Pos token.Pos
	// What describes the site in diagnostics.
	What string
}

// Hooks parameterise the engine for one client analyzer. Nil funcs default
// to "never"/"not modeled".
type Hooks struct {
	// RootParam reports whether a function-literal parameter with this name
	// and type is an inherent taint root (e.g. an int64 named seed).
	// Closures are not call-site checkable, so this is their only rooting
	// rule; declared functions' parameters are instead judged at call sites
	// via demand and never consult it.
	RootParam func(name string, t types.Type) bool
	// RootField reports whether reading a struct field with this name and
	// type yields a root.
	RootField func(name string, t types.Type) bool
	// RootObj reports whether a package-level constant or variable is a
	// root (e.g. a const whose name declares it a seed).
	RootObj func(obj types.Object) bool
	// CallTaint models a call (typically into the stdlib or a framework
	// entry point). Returning ok=false falls back to the in-program return
	// summary, then to Untainted.
	CallTaint func(ev *Evaluator, call *ast.CallExpr, callee *types.Func) (Taint, bool)
	// Sinks lists the judged sites inside one function. The engine also
	// uses them to compute which parameters a function "demands": taint
	// reaching a sink through a parameter is judged at every call site
	// instead, so findings stay inside the caller's dependency cone.
	Sinks func(fn *Func, ev *Evaluator) []Sink
	// ArgWhat describes a call argument judged because the callee demands
	// that parameter. Nil uses a generic phrasing.
	ArgWhat func(param string, callee *Func) string
	// DemandParam reports whether a demanded callee parameter with this
	// name and type can carry the client's tracked value at all. Demand is
	// computed by joining every value reaching a sink, and a composite
	// literal joins all of its fields — so a struct argument can mark
	// sibling parameters as demanded even when their type could never hold
	// the value (a func-typed drain hook passed beside a seed field, say).
	// Returning false drops such a parameter from judgment and from demand
	// propagation. Nil judges every demanded parameter.
	DemandParam func(name string, t types.Type) bool
	// ReportsTainted declares the client's polarity: true when it reports
	// sites whose value IS tainted (detmerge), false when it reports sites
	// whose value is NOT (seedflow). Judgments the engine cannot resolve —
	// recursion cycles like `x = append(x, ...)` or recursive returns —
	// collapse to the value that cannot manufacture a finding for that
	// polarity: Untainted when true, Rooted when false.
	ReportsTainted bool
}

// cycleTaint is the resolution of an unresolvable judgment, chosen so the
// engine only ever errs toward silence for the client's polarity.
func (e *Engine) cycleTaint() Taint {
	if e.Hooks.ReportsTainted {
		return Untainted
	}
	return Rooted
}

// Engine computes per-function summaries over an Index for one client.
// It is not safe for concurrent use: each analysis pass builds its own
// (construction is cheap; summaries are memoized per engine).
type Engine struct {
	Index *Index
	Hooks Hooks

	evals   map[string]*Evaluator
	retMemo map[string]Taint
	retBusy map[string]bool
	demMemo map[string]uint64
	demBusy map[string]bool
}

// NewEngine wires hooks to an index.
func NewEngine(idx *Index, hooks Hooks) *Engine {
	return &Engine{
		Index:   idx,
		Hooks:   hooks,
		evals:   map[string]*Evaluator{},
		retMemo: map[string]Taint{},
		retBusy: map[string]bool{},
		demMemo: map[string]uint64{},
		demBusy: map[string]bool{},
	}
}

// Site is one judged location handed to CheckFunction's callback.
type Site struct {
	// Pos is where a diagnostic for this site belongs.
	Pos token.Pos
	// Taint is the engine's judgment of the value flowing in.
	Taint Taint
	// What describes the site for diagnostics.
	What string
}

// CheckFunction judges every sink in fn and every argument fn passes for a
// demanded parameter of a callee, invoking report for each. Judgments whose
// taint still depends on fn's own parameters are the callers'
// responsibility (they see fn's parameter as demanded) — clients typically
// skip them via Taint.Definite.
func (e *Engine) CheckFunction(fn *Func, report func(Site)) {
	ev := e.evaluator(fn)
	if e.Hooks.Sinks != nil {
		for _, s := range e.Hooks.Sinks(fn, ev) {
			pos := s.Pos
			if !pos.IsValid() {
				pos = s.Expr.Pos()
			}
			report(Site{Pos: pos, Taint: ev.Taint(s.Expr), What: s.What})
		}
	}
	walkCalls(fn.Decl.Body, func(call *ast.CallExpr) {
		callee := Callee(fn.Pkg.Info, call)
		if callee == nil {
			return
		}
		target := e.Index.Lookup(KeyOf(callee))
		if target == nil || target == fn {
			return
		}
		dem := e.judgedDemand(target)
		if dem == 0 {
			return
		}
		for _, pa := range demandedArgs(fn.Pkg.Info, call, target, dem) {
			what := ""
			if e.Hooks.ArgWhat != nil {
				what = e.Hooks.ArgWhat(pa.name, target)
			}
			if what == "" {
				what = fmt.Sprintf("argument for parameter %q of %s", pa.name, target.Key)
			}
			report(Site{
				Pos:   pa.expr.Pos(),
				Taint: ev.Taint(pa.expr),
				What:  what,
			})
		}
	})
}

// Demanded returns the mask of fn's parameters (receiver = bit 0 for
// methods) whose taint reaches a sink, directly or through calls. Cycles
// resolve to 0 — optimistic, so recursion never manufactures a finding.
func (e *Engine) Demanded(fn *Func) uint64 {
	if m, ok := e.demMemo[fn.Key]; ok {
		return m
	}
	if e.demBusy[fn.Key] {
		return 0
	}
	e.demBusy[fn.Key] = true
	defer func() { e.demBusy[fn.Key] = false }()

	ev := e.evaluator(fn)
	var mask uint64
	if e.Hooks.Sinks != nil {
		for _, s := range e.Hooks.Sinks(fn, ev) {
			mask |= ev.Taint(s.Expr).ParamDeps()
		}
	}
	walkCalls(fn.Decl.Body, func(call *ast.CallExpr) {
		callee := Callee(fn.Pkg.Info, call)
		if callee == nil {
			return
		}
		target := e.Index.Lookup(KeyOf(callee))
		if target == nil || target == fn {
			return
		}
		dem := e.judgedDemand(target)
		if dem == 0 {
			return
		}
		for _, pa := range demandedArgs(fn.Pkg.Info, call, target, dem) {
			mask |= ev.Taint(pa.expr).ParamDeps()
		}
	})
	e.demMemo[fn.Key] = mask
	return mask
}

// judgedDemand is Demanded restricted by the client's DemandParam hook:
// bits for parameters that can never carry the tracked value are cleared
// before call-site judgment and before demand propagates to callers.
func (e *Engine) judgedDemand(fn *Func) uint64 {
	dem := e.Demanded(fn)
	if dem == 0 || e.Hooks.DemandParam == nil {
		return dem
	}
	names, _ := paramNames(fn)
	tps := paramTypes(fn)
	for i := 0; i < len(names) && i < len(tps); i++ {
		if dem&(1<<uint(i)) != 0 && !e.Hooks.DemandParam(names[i], tps[i]) {
			dem &^= 1 << uint(i)
		}
	}
	return dem
}

// ReturnTaint is fn's return summary: the join of every returned
// expression, in fn's own parameter-bit space. Recursion resolves via
// cycleTaint, so it never manufactures a finding.
func (e *Engine) ReturnTaint(fn *Func) Taint {
	if t, ok := e.retMemo[fn.Key]; ok {
		return t
	}
	if e.retBusy[fn.Key] {
		return e.cycleTaint()
	}
	e.retBusy[fn.Key] = true
	defer func() { e.retBusy[fn.Key] = false }()

	ev := e.evaluator(fn)
	t := Untainted
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure's returns are its own
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				for _, obj := range ev.namedResults {
					t = t.Or(ev.objTaint(obj))
				}
				return true
			}
			for _, r := range n.Results {
				t = t.Or(ev.Taint(r))
			}
		}
		return true
	})
	e.retMemo[fn.Key] = t
	return t
}

func (e *Engine) evaluator(fn *Func) *Evaluator {
	if ev, ok := e.evals[fn.Key]; ok {
		return ev
	}
	ev := newEvaluator(e, fn)
	e.evals[fn.Key] = ev
	return ev
}

// walkCalls visits every call expression in body, closures included (they
// run — and allocate and seed — when their enclosing function does).
func walkCalls(body ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			visit(call)
		}
		return true
	})
}

// paramArg pairs a demanded callee parameter with one caller-side argument
// expression.
type paramArg struct {
	name string
	expr ast.Expr
}

// demandedArgs maps the set bits of dem (callee parameter indices,
// receiver = bit 0 for methods) to argument expressions at this call site.
// A demanded variadic parameter yields every trailing argument.
func demandedArgs(info *types.Info, call *ast.CallExpr, target *Func, dem uint64) []paramArg {
	var out []paramArg
	names, variadic := paramNames(target)
	base := 0
	if target.Decl.Recv != nil {
		base = 1
		if dem&1 != 0 {
			if rx := recvExpr(info, call); rx != nil {
				out = append(out, paramArg{name: names[0], expr: rx})
			}
		}
	}
	for i := base; i < len(names); i++ {
		if dem&(1<<uint(i)) == 0 {
			continue
		}
		argIdx := i - base
		last := i == len(names)-1
		if variadic && last {
			for j := argIdx; j < len(call.Args); j++ {
				out = append(out, paramArg{name: names[i], expr: call.Args[j]})
			}
			continue
		}
		if argIdx < len(call.Args) {
			out = append(out, paramArg{name: names[i], expr: call.Args[argIdx]})
		}
	}
	return out
}

// paramTypes lists the callee's parameter types in bit order (receiver
// first for methods), parallel to paramNames.
func paramTypes(fn *Func) []types.Type {
	info := fn.Pkg.Info
	var out []types.Type
	if fn.Decl.Recv != nil && len(fn.Decl.Recv.List) == 1 {
		out = append(out, info.TypeOf(fn.Decl.Recv.List[0].Type))
	}
	for _, field := range fn.Decl.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, info.TypeOf(field.Type))
		}
	}
	return out
}

// paramNames lists the callee's parameter names in bit order (receiver
// first for methods) and whether the final parameter is variadic.
func paramNames(fn *Func) (names []string, variadic bool) {
	if fn.Decl.Recv != nil {
		name := "receiver"
		if fields := fn.Decl.Recv.List; len(fields) == 1 && len(fields[0].Names) == 1 {
			name = fields[0].Names[0].Name
		}
		names = append(names, name)
	}
	for _, field := range fn.Decl.Type.Params.List {
		if _, ok := field.Type.(*ast.Ellipsis); ok {
			variadic = true
		}
		if len(field.Names) == 0 {
			names = append(names, "_")
			continue
		}
		for _, id := range field.Names {
			names = append(names, id.Name)
		}
	}
	return names, variadic
}
