package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocSite is one allocation in a function body: a make, a growing
// append, or an interface boxing (a concrete value converted to an
// interface allocates unless the compiler proves otherwise).
type AllocSite struct {
	// Position is fully resolved — sites cross package (and FileSet)
	// boundaries, so a raw token.Pos would be useless to the reporter.
	Position token.Position
	// Pos is the raw position, meaningful only against the FileSet of the
	// package declaring Fn (reporters use it for sites in their own package).
	Pos token.Pos
	// Kind is "make", "append", or "interface boxing".
	Kind string
	// Fn is the function containing the site.
	Fn *Func
}

// Reached is an allocation site reachable from a function, with the static
// call chain that reaches it (outermost callee first).
type Reached struct {
	Site AllocSite
	Path []*Func
}

// AllocEngine computes summary-based allocation facts: per-function local
// sites (with a light escape check exempting provably-local constant-size
// makes, which the compiler stack-allocates) and the transitive sites
// reachable through static calls. Like Engine it is per-pass and not
// concurrency-safe.
type AllocEngine struct {
	Index *Index

	local map[string][]AllocSite
	reach map[string][]Reached
	busy  map[string]bool
}

// reachCap bounds how many witness sites a summary carries; one true
// finding per call site is what the reporter needs, not an exhaustive list.
const reachCap = 16

// NewAllocEngine wires an engine to the index.
func NewAllocEngine(idx *Index) *AllocEngine {
	return &AllocEngine{
		Index: idx,
		local: map[string][]AllocSite{},
		reach: map[string][]Reached{},
		busy:  map[string]bool{},
	}
}

// Reach returns the allocation sites transitively reachable from fn —
// fn's own plus everything behind its static calls, skipping callees that
// carry the //hot:path pragma themselves (hotalloc and hotescape police
// those directly). Cycles resolve to the already-accumulated prefix.
func (e *AllocEngine) Reach(fn *Func) []Reached {
	if r, ok := e.reach[fn.Key]; ok {
		return r
	}
	if e.busy[fn.Key] {
		return nil
	}
	e.busy[fn.Key] = true
	defer func() { e.busy[fn.Key] = false }()

	var out []Reached
	for _, site := range e.Local(fn) {
		out = append(out, Reached{Site: site, Path: []*Func{fn}})
	}
	walkCalls(fn.Decl.Body, func(call *ast.CallExpr) {
		if len(out) >= reachCap {
			return
		}
		callee := Callee(fn.Pkg.Info, call)
		if callee == nil {
			return
		}
		target := e.Index.Lookup(KeyOf(callee))
		if target == nil || target == fn || IsHot(target.Decl) {
			return
		}
		for _, r := range e.Reach(target) {
			if len(out) >= reachCap {
				break
			}
			out = append(out, Reached{Site: r.Site, Path: append([]*Func{fn}, r.Path...)})
		}
	})
	e.reach[fn.Key] = out
	return out
}

// Local returns fn's own allocation sites after the escape exemption.
func (e *AllocEngine) Local(fn *Func) []AllocSite {
	if s, ok := e.local[fn.Key]; ok {
		return s
	}
	s := collectAllocs(fn)
	e.local[fn.Key] = s
	return s
}

// IsHot reports whether the declaration carries the //hot:path pragma
// (DESIGN.md §12) in its doc comment.
func IsHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//hot:path" {
			return true
		}
	}
	return false
}

// collectAllocs walks one body for make/append/boxing, exempting makes
// whose size arguments are compile-time constants and whose result never
// escapes the function — exactly the shape the compiler stack-allocates,
// so charging it to the hot path would be a false positive.
func collectAllocs(fn *Func) []AllocSite {
	info := fn.Pkg.Info
	fset := fn.Pkg.Fset
	var sites []AllocSite
	add := func(pos token.Pos, kind string) {
		sites = append(sites, AllocSite{Position: fset.Position(pos), Pos: pos, Kind: kind, Fn: fn})
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch bn := builtinName(info, n); {
			case bn == "make":
				if !exemptMake(fn, n) {
					add(n.Pos(), "make")
				}
			case bn == "append":
				add(n.Pos(), "append")
			case bn == "":
				boxedArgs(info, n, func(arg ast.Expr) { add(arg.Pos(), "interface boxing") })
			}
		case *ast.ReturnStmt:
			boxedReturns(fn, n, func(expr ast.Expr) { add(expr.Pos(), "interface boxing") })
		case *ast.AssignStmt:
			boxedAssigns(info, n, func(expr ast.Expr) { add(expr.Pos(), "interface boxing") })
		}
		return true
	})
	return sites
}

// BoxSites returns just the interface-boxing sites of fn's own body —
// hotalloc already polices make/append inside annotated functions, so
// hotescape adds only the boxing dimension there.
func (e *AllocEngine) BoxSites(fn *Func) []AllocSite {
	var out []AllocSite
	for _, s := range e.Local(fn) {
		if s.Kind == "interface boxing" {
			out = append(out, s)
		}
	}
	return out
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// exemptMake reports whether the make has constant size arguments and its
// result is bound to a single local variable that never escapes.
func exemptMake(fn *Func, call *ast.CallExpr) bool {
	info := fn.Pkg.Info
	for _, arg := range call.Args[1:] { // args[0] is the type
		if tv, ok := info.Types[arg]; !ok || tv.Value == nil {
			return false
		}
	}
	obj := makeTarget(fn, call)
	return obj != nil && !escapes(fn, obj)
}

// makeTarget finds the local variable the make's result is bound to via a
// simple `v := make(...)` / `var v = make(...)`, or nil for any other use.
func makeTarget(fn *Func, call *ast.CallExpr) *types.Var {
	info := fn.Pkg.Info
	var target *types.Var
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if ast.Unparen(rhs) == call && i < len(n.Lhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						if v, ok := info.Defs[id].(*types.Var); ok {
							target = v
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				if ast.Unparen(rhs) == call && i < len(n.Names) {
					if v, ok := info.Defs[n.Names[i]].(*types.Var); ok {
						target = v
					}
				}
			}
		}
		return true
	})
	return target
}

// escapes reports whether obj can outlive the function: returned, sent,
// aliased, captured in a composite literal, passed to any call (except
// len/cap, which only read), or address-taken. Index reads/writes and
// ranging do not escape.
func escapes(fn *Func, obj *types.Var) bool {
	info := fn.Pkg.Info
	esc := false
	mentions := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if esc {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			esc = mentions(n)
		case *ast.SendStmt:
			esc = mentions(n)
		case *ast.CompositeLit:
			esc = mentions(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				esc = mentions(n)
			}
		case *ast.CallExpr:
			if b := builtinName(info, n); b == "len" || b == "cap" {
				return true
			}
			for _, arg := range n.Args {
				if mentions(arg) {
					esc = true
				}
			}
		case *ast.AssignStmt:
			// Aliasing: obj on the RHS of an assignment to something else.
			for _, rhs := range n.Rhs {
				if _, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
					continue // call args handled above
				}
				if mentions(rhs) {
					esc = true
				}
			}
		}
		return !esc
	})
	return esc
}

// boxedArgs reports arguments that convert a concrete value to an
// interface parameter — each such argument allocates at run time. Constant
// arguments, nils, and conversions into the error interface (cold error
// paths) are skipped.
func boxedArgs(info *types.Info, call *ast.CallExpr, report func(ast.Expr)) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if callee := Callee(info, call); callee != nil && callee.Pkg() != nil {
		// Error construction is the cold path even inside hot functions;
		// boxing %v arguments there is noise, not a perf bug.
		if callee.Pkg().Path() == "fmt" && callee.Name() == "Errorf" {
			return
		}
		if callee.Pkg().Path() == "errors" {
			return
		}
	}
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi >= np {
			break
		}
		pt := sig.Params().At(pi).Type()
		if sig.Variadic() && pi == np-1 && !call.Ellipsis.IsValid() {
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if boxesInto(info, arg, pt) {
			report(arg)
		}
	}
}

func boxedReturns(fn *Func, ret *ast.ReturnStmt, report func(ast.Expr)) {
	res := fn.Decl.Type.Results
	if res == nil || len(ret.Results) == 0 {
		return
	}
	info := fn.Pkg.Info
	var resTypes []types.Type
	for _, field := range res.List {
		t := info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resTypes = append(resTypes, t)
		}
	}
	if len(ret.Results) != len(resTypes) {
		return // tuple return: types already interface or concrete as-is
	}
	for i, expr := range ret.Results {
		if boxesInto(info, expr, resTypes[i]) {
			report(expr)
		}
	}
}

func boxedAssigns(info *types.Info, as *ast.AssignStmt, report func(ast.Expr)) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		lt := info.TypeOf(as.Lhs[i])
		if boxesInto(info, rhs, lt) {
			report(rhs)
		}
	}
}

// boxesInto reports whether assigning expr to a destination of type dst
// allocates an interface box: dst is a non-error interface and expr is a
// non-constant, non-nil, non-interface value.
func boxesInto(info *types.Info, expr ast.Expr, dst types.Type) bool {
	if dst == nil || !types.IsInterface(dst) || isErrorType(dst) {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false // untracked or compile-time constant
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }
