// Package dataflow is the interprocedural layer of the lint suite
// (DESIGN.md §8): a call-graph index over the whole load set, a
// per-function summary store, and a small forward taint/escape propagation
// engine. It is itself an analyzer — clients such as seedflow, detmerge,
// and hotescape list it in Requires and receive a *Result in
// Pass.ResultOf — but it reports nothing on its own.
//
// Scope and soundness. The engine resolves only static calls (declared
// functions and methods, through the type-checker, so aliases and dot
// imports cannot evade it). Calls through function values, interface
// methods, and packages outside the load set fall back to conservative
// defaults chosen per client: summaries are optimistic on recursion so a
// cycle never manufactures a finding. Every client reports diagnostics
// only in the package under analysis, and its summaries consult only the
// package's dependency cone — that one-way discipline is what makes the
// driver's per-package action cache sound (a package's findings can be
// replayed unless something in its own cone changed).
package dataflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer builds the whole-program index once per driver run and hands
// each client pass a *Result. It requires Pass.Program.
var Analyzer = &analysis.Analyzer{
	Name: "dataflow",
	Doc: "interprocedural call-graph and summary index consumed by " +
		"seedflow, detmerge, and hotescape (reports nothing itself)",
	Version: "1",
	Run:     run,
}

// Result is what a requiring analyzer receives: the shared program index
// plus the package the pass is looking at.
type Result struct {
	// Index is the whole-program function index, built once per run and
	// read-only thereafter.
	Index *Index
	// Pkg is the current package, as a PackageInfo compatible with Index
	// lookups.
	Pkg *analysis.PackageInfo
}

func run(pass *analysis.Pass) (any, error) {
	pkg := &analysis.PackageInfo{
		ImportPath: pass.Pkg.Path(),
		Fset:       pass.Fset,
		Files:      pass.Files,
		Pkg:        pass.Pkg,
		Info:       pass.TypesInfo,
	}
	if pass.Program == nil {
		// Single-package driver (analysistest): index just this package.
		return &Result{Index: BuildIndex([]*analysis.PackageInfo{pkg}), Pkg: pkg}, nil
	}
	idx := pass.Program.Memo("dataflow.index", func() any {
		return BuildIndex(pass.Program.Packages)
	}).(*Index)
	return &Result{Index: idx, Pkg: pkg}, nil
}

// Func is one declared function or method in the load set.
type Func struct {
	// Key is the canonical name, as produced by KeyOf.
	Key string
	// Decl is the declaration, body included (nil body for externally
	// implemented functions).
	Decl *ast.FuncDecl
	// Pkg is the package that declares the function; its Fset and Info
	// resolve everything inside Decl.
	Pkg *analysis.PackageInfo
}

// Index maps canonical function keys to their declarations across every
// package in the load set. It is immutable once built.
type Index struct {
	funcs   map[string]*Func
	byDecl  map[*ast.FuncDecl]*Func
	hasBody map[string]bool
}

// BuildIndex walks every package's declarations. Later packages never
// overwrite earlier ones: each function is declared in exactly one package,
// and the merged in-package test variant is the only entry for its path.
func BuildIndex(pkgs []*analysis.PackageInfo) *Index {
	idx := &Index{
		funcs:   map[string]*Func{},
		byDecl:  map[*ast.FuncDecl]*Func{},
		hasBody: map[string]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				key := KeyOf(obj)
				if _, dup := idx.funcs[key]; dup {
					continue
				}
				fn := &Func{Key: key, Decl: fd, Pkg: pkg}
				idx.funcs[key] = fn
				idx.byDecl[fd] = fn
				idx.hasBody[key] = true
			}
		}
	}
	return idx
}

// Lookup returns the function with the given canonical key, or nil if it is
// outside the load set (stdlib, interface method, function value).
func (idx *Index) Lookup(key string) *Func { return idx.funcs[key] }

// ByDecl returns the indexed function for a declaration in the load set.
func (idx *Index) ByDecl(fd *ast.FuncDecl) *Func { return idx.byDecl[fd] }

// KeyOf canonicalises a *types.Func so that the same function seen from
// different importing packages (each type-checks its imports independently
// from export data, so object pointers differ) maps to one key. Methods
// normalise away the pointer receiver: "pkg/path.Type.Method"; functions
// are "pkg/path.Name".
func KeyOf(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return pathOf(n.Obj().Pkg()) + "." + n.Obj().Name() + "." + fn.Name()
		}
		// Interface methods and other unnamed receivers: fall back to the
		// verbose form; these never match an Index entry, which is the
		// conservative outcome the engine wants.
		return fn.FullName()
	}
	return pathOf(fn.Pkg()) + "." + fn.Name()
}

func pathOf(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	return pkg.Path()
}

// Callee resolves the declared function or method a call invokes, or nil
// for builtins, conversions, function values, and interface dispatch.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fn.X.(*ast.Ident); ok {
			obj = info.Uses[id]
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// recvExpr returns the receiver expression of a method call (x in x.M(...)),
// or nil for plain calls.
func recvExpr(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}
