package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
	"repro/internal/lint/maporder"
)

// fixtureSrc has one maporder violation (unsorted), one suppressed by a
// justified //lint:ignore directive, and one already clean — so a single
// run exercises reporting, suppression, and the sort-insertion fix.
const fixtureSrc = `package demo

import "sort"

func unsorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func suppressed(m map[string]int) []string {
	var ks []string
	//lint:ignore maporder demonstration: consumers treat ks as a set
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func clean(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
`

// checkFile parses and type-checks one on-disk file as a throwaway package.
func checkFile(t *testing.T, path string) *load.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.StdExports(".", "sort")
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := load.Check("demo", fset, []*ast.File{f}, exports)
	if err != nil {
		t.Fatal(err)
	}
	return &load.Package{
		ImportPath: "demo",
		Dir:        filepath.Dir(path),
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      pkg,
		Info:       info,
	}
}

// TestSuppressionAndFix drives the shared runner the way cmd/repolint does:
// the unsuppressed finding is reported with a sort-insertion fix, the
// directive swallows the second violation, and applying the fix leaves the
// file lint-clean.
func TestSuppressionAndFix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.go")
	if err := os.WriteFile(path, []byte(fixtureSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	findings, err := lint.Run([]*load.Package{checkFile(t, path)}, []*analysis.Analyzer{maporder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly the unsuppressed finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "maporder" || !strings.Contains(f.Diagnostic.Message, "appends to ks") {
		t.Fatalf("unexpected finding: %v", f)
	}
	if len(f.Diagnostic.SuggestedFixes) != 1 {
		t.Fatalf("want one suggested fix, got %d", len(f.Diagnostic.SuggestedFixes))
	}

	applied, err := lint.ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("want 1 applied edit, got %d", applied)
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(fixed), "sort.Strings(ks)"); got != 2 {
		t.Fatalf("want the inserted sort plus the pre-existing one (2), got %d in:\n%s", got, fixed)
	}

	// The fixed file must be valid Go and lint-clean.
	findings, err = lint.Run([]*load.Package{checkFile(t, path)}, []*analysis.Analyzer{maporder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("fixed file should be clean, got: %v", findings)
	}
}
