package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
	"repro/internal/lint/maporder"
	"repro/internal/lint/seededrand"
)

// fixtureSrc has one maporder violation (unsorted), one suppressed by a
// justified //lint:ignore directive, and one already clean — so a single
// run exercises reporting, suppression, and the sort-insertion fix.
const fixtureSrc = `package demo

import "sort"

func unsorted(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func suppressed(m map[string]int) []string {
	var ks []string
	//lint:ignore maporder demonstration: consumers treat ks as a set
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func clean(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
`

// checkFile parses and type-checks one on-disk file as a throwaway package
// importing the named standard-library dependencies.
func checkFile(t *testing.T, path string, deps ...string) *load.Package {
	t.Helper()
	if len(deps) == 0 {
		deps = []string{"sort"}
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.StdExports(".", deps...)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := load.Check("demo", fset, []*ast.File{f}, exports)
	if err != nil {
		t.Fatal(err)
	}
	return &load.Package{
		ImportPath: "demo",
		Dir:        filepath.Dir(path),
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      pkg,
		Info:       info,
	}
}

// TestSuppressionAndFix drives the shared runner the way cmd/repolint does:
// the unsuppressed finding is reported with a sort-insertion fix, the
// directive swallows the second violation, and applying the fix leaves the
// file lint-clean.
func TestSuppressionAndFix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.go")
	if err := os.WriteFile(path, []byte(fixtureSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	findings, err := lint.Run([]*load.Package{checkFile(t, path)}, []*analysis.Analyzer{maporder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly the unsuppressed finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "maporder" || !strings.Contains(f.Diagnostic.Message, "appends to ks") {
		t.Fatalf("unexpected finding: %v", f)
	}
	if len(f.Diagnostic.SuggestedFixes) != 1 {
		t.Fatalf("want one suggested fix, got %d", len(f.Diagnostic.SuggestedFixes))
	}

	applied, err := lint.ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("want 1 applied edit, got %d", applied)
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(fixed), "sort.Strings(ks)"); got != 2 {
		t.Fatalf("want the inserted sort plus the pre-existing one (2), got %d in:\n%s", got, fixed)
	}

	// The fixed file must be valid Go and lint-clean.
	findings, err = lint.Run([]*load.Package{checkFile(t, path)}, []*analysis.Analyzer{maporder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("fixed file should be clean, got: %v", findings)
	}
}

// suppressionSrc exercises every attachment rule for standalone and trailing
// directives: a directive above a grouped var block governs the whole block,
// a directive above one spec inside a group governs just that spec, a blank
// line between directive and code does not break the association, and a
// trailing directive governs its own line. Only d and g may be reported.
const suppressionSrc = `package demo

import "math/rand"

//lint:ignore seededrand fixture: the whole group is grandfathered
var (
	a = rand.Intn(1)

	b = rand.Intn(2)
)

var (
	//lint:ignore seededrand fixture: only c is grandfathered
	c = rand.Intn(3)
	d = rand.Intn(4)
)

//lint:ignore seededrand fixture: a blank line does not break the association

var e = rand.Intn(5)

var f = rand.Intn(6) //lint:ignore seededrand fixture: trailing directive

var g = rand.Intn(7)
`

// TestSuppressionGroupsAndBlankLines is the regression test for directive
// attachment: grouped var/const blocks, spec-level directives inside groups,
// blank-line separation, and trailing directives.
func TestSuppressionGroupsAndBlankLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.go")
	if err := os.WriteFile(path, []byte(suppressionSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run([]*load.Package{checkFile(t, path, "math/rand")},
		[]*analysis.Analyzer{seededrand.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, f := range findings {
		if f.Analyzer != "seededrand" {
			t.Fatalf("unexpected analyzer in finding: %v", f)
		}
		lines = append(lines, f.Position.Line)
	}
	// d is on line 15 and g on line 24 of suppressionSrc.
	want := []int{15, 24}
	if len(lines) != len(want) || lines[0] != want[0] || lines[1] != want[1] {
		t.Fatalf("want findings exactly on lines %v (d and g), got %v: %v", want, lines, findings)
	}
}
