package parallel

import (
	"runtime/debug"
	"sync"
)

// Pool is the resident counterpart of Map/Trials: a long-lived bounded
// worker pool with an admission queue, built for the partitiond job runner.
// Where Map fans a known task list out and returns, a Pool accepts work for
// the lifetime of a daemon and drains gracefully on shutdown.
//
// The determinism story is inherited rather than imposed: the pool promises
// nothing about execution order (jobs are independent, content-addressed
// runs whose outputs are deterministic in their specs), so all it owes the
// caller is supervision — a panicking job is recovered, attributed, and
// reported through the OnPanic hook instead of tearing down the daemon —
// and a drain barrier that lets every in-flight job reach a safe boundary.
type Pool struct {
	tasks   chan func()
	onPanic func(*PanicError)

	mu       sync.Mutex
	draining bool
	queued   int
	running  int
	done     sync.WaitGroup
}

// NewPool starts a pool of the given width with a bounded admission queue.
// workers <= 0 means DefaultWorkers(); queue <= 0 means an unbuffered
// hand-off (a submission is admitted only when a worker is free). onPanic
// observes recovered job panics (nil discards them); it runs on the worker
// that recovered, serialized per worker but not across workers.
func NewPool(workers, queue int, onPanic func(*PanicError)) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue), onPanic: onPanic}
	p.done.Add(workers)
	for w := 0; w < workers; w++ {
		go p.work(w)
	}
	return p
}

// work is one resident worker: it drains the task channel until Drain
// closes it, recovering and attributing panics per task.
func (p *Pool) work(id int) {
	defer p.done.Done()
	for task := range p.tasks {
		p.begin()
		p.run(id, task)
		p.finish()
	}
}

// run executes one task under the panic supervisor.
func (p *Pool) run(worker int, task func()) {
	defer func() {
		if r := recover(); r != nil && p.onPanic != nil {
			p.onPanic(&PanicError{Task: worker, Value: r, Stack: debug.Stack()})
		}
	}()
	task()
}

func (p *Pool) begin() {
	p.mu.Lock()
	p.queued--
	p.running++
	p.mu.Unlock()
}

func (p *Pool) finish() {
	p.mu.Lock()
	p.running--
	p.mu.Unlock()
}

// TrySubmit offers a task to the pool without blocking. It reports false —
// the admission-control signal, a 429 at the service boundary — when the
// queue is full or the pool is draining.
func (p *Pool) TrySubmit(task func()) bool {
	p.mu.Lock()
	if p.draining {
		p.mu.Unlock()
		return false
	}
	select {
	case p.tasks <- task:
		p.queued++
		p.mu.Unlock()
		return true
	default:
		p.mu.Unlock()
		return false
	}
}

// Queued reports tasks admitted but not yet started.
func (p *Pool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// Running reports tasks currently executing.
func (p *Pool) Running() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}

// Draining reports whether Drain has been called. Long-running jobs poll
// this (via the service's quit hook) to stop at their next safe boundary —
// the checkpointed sweep checks it between experiments, so a drained
// daemon's journal always ends on a completed record.
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// Drain closes admission and blocks until every admitted task has finished.
// Queued tasks still run (their submitters were promised execution); jobs
// that honor Draining stop early at their next boundary. Drain is
// idempotent only in effect — it must be called exactly once.
func (p *Pool) Drain() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
	close(p.tasks)
	p.done.Wait()
}
