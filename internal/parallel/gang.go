package parallel

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Gang is the intra-world counterpart of the inter-trial pool above: a
// fixed-width fan-out that runs n tasks to completion and barriers before
// returning. The sharded simulation engines use one Gang per world to tick
// all shards inside a single trial, while Map/Trials keep parallelizing
// across trials — the two levels compose because a Gang, like the pool,
// imposes no ordering requirement on its tasks.
//
// The determinism contract is therefore different from Map's: a Gang
// returns no results and promises nothing about execution order. It is only
// safe for tasks whose writes are disjoint and whose reads are frozen for
// the duration of the call (the double-buffered tick guarantees both); any
// ordered fold over per-task state happens after Run returns, on the
// caller's goroutine, in task order.
type Gang struct {
	workers int
}

// NewGang returns a gang of the given width. workers <= 0 means
// DefaultWorkers(). Width 1 runs every task inline on the caller's
// goroutine.
func NewGang(workers int) *Gang {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Gang{workers: workers}
}

// Workers returns the gang's width.
func (g *Gang) Workers() int { return g.workers }

// Run executes fn(0), …, fn(n-1) across at most the gang's width and
// returns after all of them finish. Tasks are claimed by atomic counter, so
// execution order is arbitrary — see the type comment for what that demands
// of fn. A panicking task is re-panicked on the caller's goroutine after
// the barrier (first panic by task index wins), wrapped in a *PanicError
// carrying the task index and stack, so a crash inside a shard tick is
// attributed rather than tearing down the process from an anonymous
// goroutine.
func (g *Gang) Run(n int, fn func(task int)) {
	if n <= 0 {
		return
	}
	w := g.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	panics := make([]*PanicError, n)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = &PanicError{Task: i, Value: r, Stack: debug.Stack()}
			}
		}()
		fn(i)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}
