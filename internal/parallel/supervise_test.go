package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestTrialsPanicSeedAttribution pins the satellite fix: a panic inside a
// seeded trial must carry both the task index and the derived seed, so the
// failing replicate can be reproduced standalone.
func TestTrialsPanicSeedAttribution(t *testing.T) {
	const root = int64(42)
	for _, workers := range []int{1, 4} {
		_, err := Trials(workers, root, 10, func(trial int, seed int64) (int, error) {
			if trial == 6 {
				panic("seeded kaboom")
			}
			return trial, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		want := DeriveSeed(root, 6)
		if pe.Task != 6 || !pe.Seeded || pe.Seed != want {
			t.Errorf("workers=%d: attribution task=%d seeded=%v seed=%d, want task 6 seed %d",
				workers, pe.Task, pe.Seeded, pe.Seed, want)
		}
		msg := fmt.Sprintf("task 6 (seed %d) panicked: seeded kaboom", want)
		if !strings.Contains(pe.Error(), msg) {
			t.Errorf("workers=%d: message %q missing %q", workers, pe.Error(), msg)
		}
	}
}

// TestSweepTrialsNilResultsOnError extends the Map no-partial-results
// regression to the other two entry points: Sweep and Trials must also
// withhold the result slice when any task fails.
func TestSweepTrialsNilResultsOnError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		params := make([]int, 20)
		got, err := Sweep(workers, params, func(i, _ int) (int, error) {
			if i == 13 {
				return 0, fmt.Errorf("param %d failed", i)
			}
			return i + 1, nil
		})
		if err == nil || got != nil {
			t.Errorf("Sweep workers=%d: results=%v err=%v, want nil results with error", workers, got, err)
		}
		got, err = Trials(workers, 7, 20, func(trial int, seed int64) (int, error) {
			if trial == 13 {
				return 0, fmt.Errorf("trial %d failed", trial)
			}
			return trial + 1, nil
		})
		if err == nil || got != nil {
			t.Errorf("Trials workers=%d: results=%v err=%v, want nil results with error", workers, got, err)
		}
	}
}

// TestSuperviseDegradedMode: failing trials are quarantined into the report
// and every other trial still completes, for any worker count.
func TestSuperviseDegradedMode(t *testing.T) {
	const root, n = int64(3), 24
	for _, workers := range []int{1, 2, 8} {
		sup, err := SuperviseTrials(Supervision[int]{Workers: workers, Root: root}, n,
			func(trial int, seed int64) (int, error) {
				switch trial {
				case 5:
					panic("supervised kaboom")
				case 11:
					return 0, errors.New("plain failure")
				}
				return trial * 10, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := sup.Completed(); got != n-2 {
			t.Errorf("workers=%d: completed %d, want %d", workers, got, n-2)
		}
		if len(sup.Failures) != 2 {
			t.Fatalf("workers=%d: failures %v", workers, sup.Failures)
		}
		if sup.Failures[0].Task != 5 || sup.Failures[1].Task != 11 {
			t.Errorf("workers=%d: failure order %d,%d", workers, sup.Failures[0].Task, sup.Failures[1].Task)
		}
		var pe *PanicError
		if !errors.As(sup.Failures[0].Err, &pe) || pe.Seed != DeriveSeed(root, 5) || !pe.Seeded {
			t.Errorf("workers=%d: panic failure lost seed attribution: %v", workers, sup.Failures[0].Err)
		}
		if sup.Failures[1].Seed != DeriveSeed(root, 11) {
			t.Errorf("workers=%d: error failure seed %d", workers, sup.Failures[1].Seed)
		}
		for i := 0; i < n; i++ {
			failed := i == 5 || i == 11
			if sup.Ran[i] == failed {
				t.Errorf("workers=%d: Ran[%d] = %v", workers, i, sup.Ran[i])
			}
			if !failed && sup.Results[i] != i*10 {
				t.Errorf("workers=%d: Results[%d] = %d", workers, i, sup.Results[i])
			}
		}
	}
}

// TestSuperviseFailFast: with FailFast the supervised runner keeps the Map
// contract — nil results, lowest-index failing task's error.
func TestSuperviseFailFast(t *testing.T) {
	for _, workers := range []int{1, 4} {
		sup, err := SuperviseTrials(Supervision[int]{Workers: workers, FailFast: true}, 20,
			func(trial int, seed int64) (int, error) {
				if trial == 7 || trial == 13 {
					return 0, fmt.Errorf("trial %d failed", trial)
				}
				return trial, nil
			})
		if sup != nil {
			t.Errorf("workers=%d: partial report leaked alongside the error", workers)
		}
		if err == nil || err.Error() != "trial 7 failed" {
			t.Errorf("workers=%d: err = %v, want trial 7", workers, err)
		}
	}
}

// TestSuperviseSkipReplay: skipped (replayed-from-journal) tasks never run;
// the remainder still lands in the right slots.
func TestSuperviseSkipReplay(t *testing.T) {
	replayed := map[int]bool{0: true, 3: true, 4: true}
	sup, err := SuperviseTrials(Supervision[int]{
		Workers: 4,
		Skip:    func(task int) bool { return replayed[task] },
	}, 6, func(trial int, seed int64) (int, error) {
		if replayed[trial] {
			t.Errorf("replayed trial %d re-ran", trial)
		}
		return trial + 100, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if replayed[i] {
			if sup.Ran[i] {
				t.Errorf("skipped trial %d marked ran", i)
			}
			continue
		}
		if !sup.Ran[i] || sup.Results[i] != i+100 {
			t.Errorf("trial %d: ran=%v result=%d", i, sup.Ran[i], sup.Results[i])
		}
	}
}

// TestSuperviseOutcomeHook: every task reports exactly one outcome, the hook
// is serialized (no lock needed in the callback), and a hook error aborts
// the sweep — a journal that cannot record must stop the run.
func TestSuperviseOutcomeHook(t *testing.T) {
	const n = 16
	seen := map[int]Outcome[int]{}
	sup, err := SuperviseTrials(Supervision[int]{
		Workers: 8,
		Root:    9,
		OnOutcome: func(out Outcome[int]) error {
			if _, dup := seen[out.Task]; dup {
				t.Errorf("task %d reported twice", out.Task)
			}
			seen[out.Task] = out
			return nil
		},
	}, n, func(trial int, seed int64) (int, error) {
		if trial == 2 {
			return 0, errors.New("hooked failure")
		}
		return trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("hook saw %d outcomes, want %d", len(seen), n)
	}
	for task, out := range seen {
		if out.Seed != DeriveSeed(9, task) {
			t.Errorf("task %d outcome seed %d", task, out.Seed)
		}
		if task == 2 {
			if out.Err == nil {
				t.Error("failed task reported nil Err")
			}
		} else if out.Err != nil || out.Value != task {
			t.Errorf("task %d outcome = %v, %v", task, out.Value, out.Err)
		}
	}
	if len(sup.Failures) != 1 || sup.Failures[0].Task != 2 {
		t.Errorf("failures %v", sup.Failures)
	}

	hookErr := errors.New("disk full")
	sup, err = SuperviseTrials(Supervision[int]{
		Workers:   4,
		OnOutcome: func(Outcome[int]) error { return hookErr },
	}, n, func(trial int, seed int64) (int, error) { return trial, nil })
	if sup != nil || !errors.Is(err, hookErr) {
		t.Errorf("hook error: sup=%v err=%v, want nil report wrapping the hook error", sup, err)
	}
}

// TestSuperviseDeterministic: the report (results, ran flags, failures) is
// identical for any worker count, even with failures interleaved.
func TestSuperviseDeterministic(t *testing.T) {
	run := func(workers int) *Supervised[int64] {
		sup, err := SuperviseTrials(Supervision[int64]{Workers: workers, Root: 1}, 48,
			func(trial int, seed int64) (int64, error) {
				if trial%7 == 3 {
					return 0, fmt.Errorf("trial %d down", trial)
				}
				return seed, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return sup
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(got.Results, want.Results) || !reflect.DeepEqual(got.Ran, want.Ran) {
			t.Errorf("workers=%d: results diverged", workers)
		}
		if len(got.Failures) != len(want.Failures) {
			t.Fatalf("workers=%d: failure count diverged", workers)
		}
		for i := range got.Failures {
			if got.Failures[i].Task != want.Failures[i].Task || got.Failures[i].Seed != want.Failures[i].Seed {
				t.Errorf("workers=%d: failure %d diverged", workers, i)
			}
		}
	}
}
