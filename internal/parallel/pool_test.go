package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRunsEverythingAdmitted: every task TrySubmit admits runs exactly
// once before Drain returns.
func TestPoolRunsEverythingAdmitted(t *testing.T) {
	p := NewPool(4, 64, nil)
	var ran atomic.Int64
	admitted := 0
	for i := 0; i < 50; i++ {
		if p.TrySubmit(func() { ran.Add(1) }) {
			admitted++
		}
	}
	p.Drain()
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if got := int(ran.Load()); got != admitted {
		t.Fatalf("ran %d of %d admitted tasks", got, admitted)
	}
}

// TestPoolAdmissionControl: a full queue refuses work instead of blocking —
// the 429 signal — and a draining pool refuses everything.
func TestPoolAdmissionControl(t *testing.T) {
	var release sync.WaitGroup
	release.Add(1)
	p := NewPool(1, 1, nil)
	started := make(chan struct{})
	if !p.TrySubmit(func() { close(started); release.Wait() }) {
		t.Fatal("first submission refused")
	}
	<-started
	// Worker is blocked and the queue is empty; capacity 1 admits exactly
	// one more.
	admitted := 0
	for i := 0; i < 10; i++ {
		if p.TrySubmit(func() {}) {
			admitted++
		}
	}
	if admitted != 1 {
		t.Fatalf("queue of 1 admitted %d extra tasks", admitted)
	}
	release.Done()
	p.Drain()
	if p.TrySubmit(func() { t.Error("task ran after drain") }) {
		t.Fatal("drained pool admitted a task")
	}
	if !p.Draining() {
		t.Error("Draining() = false after Drain")
	}
}

// TestPoolRecoversPanics: a panicking job is attributed through the hook;
// the pool keeps serving.
func TestPoolRecoversPanics(t *testing.T) {
	var mu sync.Mutex
	var panics []*PanicError
	p := NewPool(2, 8, func(pe *PanicError) {
		mu.Lock()
		panics = append(panics, pe)
		mu.Unlock()
	})
	var ran atomic.Int64
	if !p.TrySubmit(func() { panic("job crashed") }) {
		t.Fatal("panicking job refused")
	}
	if !p.TrySubmit(func() { ran.Add(1) }) {
		t.Fatal("follow-up job refused")
	}
	p.Drain()
	if ran.Load() != 1 {
		t.Error("pool stopped serving after a panic")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(panics) != 1 || panics[0].Value != "job crashed" || len(panics[0].Stack) == 0 {
		t.Fatalf("panic evidence %+v", panics)
	}
}

// TestPoolGauges: Queued/Running settle to zero after a drain.
func TestPoolGauges(t *testing.T) {
	p := NewPool(2, 4, nil)
	for i := 0; i < 6; i++ {
		p.TrySubmit(func() {})
	}
	p.Drain()
	if p.Queued() != 0 || p.Running() != 0 {
		t.Fatalf("after drain: queued=%d running=%d", p.Queued(), p.Running())
	}
}
