package parallel

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Outcome is the supervised result of one task, reported to the journal
// callback the moment the task finishes. Exactly one of Value/Err is
// meaningful: Err nil means Value is the task's result.
type Outcome[T any] struct {
	// Task is the task index; Seed is its derived seed.
	Task int
	Seed int64
	// Value is the task's result when Err is nil.
	Value T
	// Err is the task's failure: a *PanicError for a recovered panic, or
	// the error the task returned.
	Err error
}

// Failure records one failed task in a degraded-mode report.
type Failure struct {
	// Task and Seed identify the failing task.
	Task int
	Seed int64
	// Err is the failure: a *PanicError preserves the panic value and
	// stack; a watchdog cancellation wraps the budget sentinel.
	Err error
}

// Supervised is the full report of a supervised sweep that ran in degraded
// mode: every task either produced a result or is accounted for in
// Failures, so a partial ensemble is explicit, never silent.
type Supervised[T any] struct {
	// Results has one slot per task, in task order. Slots of failed or
	// skipped-and-never-replayed tasks hold the zero value; consult Ran.
	Results []T
	// Ran reports per task whether Results holds a real value (the task
	// completed, or the caller marked it replayed via Skip).
	Ran []bool
	// Failures lists the failed tasks in task order.
	Failures []Failure
	// Stopped reports that the sweep quit early: Quit returned true before
	// every task was claimed, so some tasks neither ran nor failed. The
	// journaled prefix is valid; a resume finishes the rest.
	Stopped bool
}

// Completed reports how many tasks produced a result.
func (s *Supervised[T]) Completed() int {
	n := 0
	for _, ok := range s.Ran {
		if ok {
			n++
		}
	}
	return n
}

// Supervision configures a supervised trial sweep.
type Supervision[T any] struct {
	// Workers bounds the pool; <= 0 means DefaultWorkers().
	Workers int
	// Root is the root seed; task i runs under DeriveSeed(Root, i).
	Root int64
	// FailFast aborts on the first failure with the lowest-index failing
	// task's error (the Map contract). When false the sweep degrades:
	// failing tasks are quarantined into the report and the rest continue.
	FailFast bool
	// Skip marks tasks already satisfied — replayed from a checkpoint
	// journal. Skipped tasks never run; the caller fills their Results
	// slots afterwards. Nil skips nothing.
	Skip func(task int) bool
	// OnOutcome observes every completed task in completion order,
	// serialized under the supervisor's lock — the write-ahead hook. An
	// error aborts the whole sweep: a journal that cannot record outcomes
	// must not let the run continue as if it could.
	OnOutcome func(Outcome[T]) error
	// Quit, polled before each task is claimed, stops the sweep at the
	// next task boundary when it returns true — the graceful-drain seam.
	// In-flight tasks finish and are journaled; unclaimed tasks are left
	// for a resumed run, and the report's Stopped flag is set. Nil never
	// quits.
	Quit func() bool
}

// SuperviseTrials runs n seeded trials under per-task supervision: panics
// are recovered and attributed (never torn out of an anonymous goroutine),
// each outcome is journaled through OnOutcome as it completes, and failures
// either abort (FailFast) or quarantine the task while the remainder of the
// sweep continues. The returned report is deterministic for any worker
// count; only OnOutcome observes completion order.
func SuperviseTrials[T any](cfg Supervision[T], n int, fn func(trial int, seed int64) (T, error)) (*Supervised[T], error) {
	sup := &Supervised[T]{}
	if n <= 0 {
		return sup, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	sup.Results = make([]T, n)
	sup.Ran = make([]bool, n)
	errs := make([]error, n)
	var (
		mu      sync.Mutex
		hookErr error
		abort   atomic.Bool
	)
	report := func(out Outcome[T]) {
		if cfg.OnOutcome == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if hookErr != nil {
			return
		}
		if err := cfg.OnOutcome(out); err != nil {
			hookErr = fmt.Errorf("parallel: outcome hook: %w", err)
			abort.Store(true)
		}
	}
	run := func(i int) {
		seed := DeriveSeed(cfg.Root, i)
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &PanicError{Task: i, Seed: seed, Seeded: true, Value: r, Stack: debug.Stack()}
				if cfg.FailFast {
					abort.Store(true)
				}
				report(Outcome[T]{Task: i, Seed: seed, Err: errs[i]})
			}
		}()
		v, err := fn(i, seed)
		if err != nil {
			errs[i] = err
			if cfg.FailFast {
				abort.Store(true)
			}
			report(Outcome[T]{Task: i, Seed: seed, Err: err})
			return
		}
		sup.Results[i], sup.Ran[i] = v, true
		report(Outcome[T]{Task: i, Seed: seed, Value: v})
	}
	step := func(i int) {
		if cfg.Skip != nil && cfg.Skip(i) {
			return
		}
		run(i)
	}
	var stopped atomic.Bool
	quit := func() bool {
		if cfg.Quit != nil && cfg.Quit() {
			stopped.Store(true)
			return true
		}
		return false
	}
	if workers == 1 {
		for i := 0; i < n && !abort.Load() && !quit(); i++ {
			step(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for !abort.Load() && !quit() {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					step(i)
				}
			}()
		}
		wg.Wait()
	}
	sup.Stopped = stopped.Load()
	if hookErr != nil {
		return nil, hookErr
	}
	for i, err := range errs {
		if err == nil {
			continue
		}
		if cfg.FailFast {
			// The lowest-index failing task's error wins, like Map — and
			// the result slice is withheld so a partial ensemble can't
			// silently feed downstream.
			return nil, err
		}
		sup.Failures = append(sup.Failures, Failure{Task: i, Seed: DeriveSeed(cfg.Root, i), Err: err})
	}
	return sup, nil
}
