package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// TestGangRunsAllTasks checks every task runs exactly once at several
// widths, including inline width 1 and width exceeding the task count.
func TestGangRunsAllTasks(t *testing.T) {
	for _, w := range []int{1, 2, 8, 64} {
		g := NewGang(w)
		const n = 100
		var hits [n]atomic.Int32
		g.Run(n, func(task int) { hits[task].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("width %d: task %d ran %d times", w, i, got)
			}
		}
	}
}

// TestGangDefaultsAndEdges covers the zero-width default, the n<=0 no-op,
// and Workers.
func TestGangDefaultsAndEdges(t *testing.T) {
	if g := NewGang(0); g.Workers() != DefaultWorkers() {
		t.Fatalf("Workers() = %d, want DefaultWorkers()", g.Workers())
	}
	if g := NewGang(3); g.Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", g.Workers())
	}
	ran := false
	NewGang(4).Run(0, func(int) { ran = true })
	NewGang(4).Run(-1, func(int) { ran = true })
	if ran {
		t.Fatal("Run with n <= 0 must not invoke fn")
	}
}

// TestGangPanicAttribution checks a panic inside a task surfaces on the
// caller's goroutine as a *PanicError naming the lowest panicking task,
// after all tasks have finished (the barrier still holds).
func TestGangPanicAttribution(t *testing.T) {
	g := NewGang(4)
	const n = 32
	var completed atomic.Int32
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("want re-panic")
		}
		var pe *PanicError
		if !errors.As(r.(error), &pe) {
			t.Fatalf("want *PanicError, got %T: %v", r, r)
		}
		if pe.Task != 3 || pe.Seeded {
			t.Fatalf("want unseeded task 3, got task %d seeded=%v", pe.Task, pe.Seeded)
		}
		if !strings.Contains(pe.Error(), "boom 3") {
			t.Fatalf("panic value lost: %v", pe)
		}
		// Every non-panicking task still ran to completion before the
		// re-panic: the barrier is not short-circuited.
		if got := completed.Load(); got != n-2 {
			t.Fatalf("%d tasks completed, want %d", got, n-2)
		}
	}()
	g.Run(n, func(task int) {
		if task == 3 || task == 7 {
			panic("boom 3")
		}
		completed.Add(1)
	})
}

// TestGangPanicInline checks width-1 gangs propagate panics too (the
// inline path has no recover wrapper — the panic surfaces naturally).
func TestGangPanicInline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic from inline task")
		}
	}()
	NewGang(1).Run(4, func(task int) {
		if task == 2 {
			panic("inline")
		}
	})
}
