package parallel

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map = %v, %v", got, err)
	}
}

func TestMapBoundedWorkers(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(workers, 50, func(i int) (struct{}, error) {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, bound %d", p, workers)
	}
}

func TestMapFirstErrorByTaskIndex(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 20, func(i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, boom(i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Errorf("workers=%d: err = %v, want task 7", workers, err)
		}
	}
}

// TestMapErrorReturnsNilResults pins the no-partial-results contract: a
// failed sweep must not hand back the slots that happened to succeed, or a
// caller that mishandles the error pair feeds zero-valued rows downstream
// (the Figure6All / MaxVulnerableParallel regression).
func TestMapErrorReturnsNilResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got, err := Map(workers, 20, func(i int) (int, error) {
			if i == 13 {
				return 0, fmt.Errorf("task %d failed", i)
			}
			return i + 1, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if got != nil {
			t.Errorf("workers=%d: partial results %v leaked alongside the error", workers, got)
		}
	}
}

func TestMapPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 10, func(i int) (int, error) {
			if i == 3 {
				panic("kaboom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Task != 3 || pe.Value != "kaboom" {
			t.Errorf("workers=%d: attribution = task %d value %v", workers, pe.Task, pe.Value)
		}
		if !strings.Contains(pe.Error(), "task 3 panicked: kaboom") {
			t.Errorf("workers=%d: message %q", workers, pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: no stack captured", workers)
		}
	}
}

func TestSweep(t *testing.T) {
	params := []string{"a", "bb", "ccc"}
	got, err := Sweep(2, params, func(i int, p string) (int, error) { return len(p), nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("sweep = %v", got)
	}
}

// TestTrialsDeterministic is the core contract: the per-trial seed sequence,
// and therefore the whole ensemble, is identical for any worker count.
func TestTrialsDeterministic(t *testing.T) {
	run := func(workers int) []int64 {
		out, err := Trials(workers, 42, 64, func(trial int, seed int64) (int64, error) {
			return seed, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 8, 32} {
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: seed stream diverged", workers)
		}
	}
}

func TestDeriveSeedGolden(t *testing.T) {
	// Pin the derivation function: changing it silently would invalidate
	// every recorded experiment. Values computed from the SplitMix64
	// definition at state root + (i+1)*gamma.
	if a, b := DeriveSeed(1, 0), DeriveSeed(1, 0); a != b {
		t.Fatal("derivation not pure")
	}
	seen := map[int64]bool{}
	for root := int64(0); root < 4; root++ {
		for i := 0; i < 1000; i++ {
			s := DeriveSeed(root, i)
			if seen[s] {
				t.Fatalf("collision at root=%d i=%d", root, i)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(1, 1) {
		t.Error("adjacent indices collide")
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("adjacent roots collide")
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Errorf("DefaultWorkers() = %d", DefaultWorkers())
	}
}
