// Package parallel is the deterministic experiment fan-out used by every
// hot evaluation path in this repository: a bounded worker pool whose
// results are collected in task order and whose randomness is derived per
// task from a root seed, so that an ensemble of trials or a parameter sweep
// produces bit-identical output regardless of worker count or goroutine
// scheduling.
//
// The determinism contract has three parts:
//
//  1. Each task receives its own seed via DeriveSeed (a SplitMix64 mix of
//     the root seed and the task index), never a shared RNG, so no task's
//     random stream depends on execution order.
//  2. Results are written into a slot indexed by task and returned as an
//     ordered slice, so collection order is the submission order.
//  3. Errors are reported deterministically: the error of the lowest-index
//     failing task wins, whatever finished first.
//
// Panics inside a task are captured and attributed (task index + stack)
// rather than tearing down the process from an anonymous goroutine.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes workers <= 0:
// one worker per available CPU (GOMAXPROCS).
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// PanicError is a panic recovered from a task, attributed to the task that
// raised it.
type PanicError struct {
	// Task is the index of the task that panicked.
	Task int
	// Seed is the task's derived seed, when the entry point derives one
	// (Trials, SuperviseTrials). Seeded reports whether it is meaningful:
	// Map and Sweep tasks carry no seed, and 0 is a valid derived seed.
	Seed   int64
	Seeded bool
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error formats the panic with its task attribution and stack. Seeded tasks
// name their seed so a failing trial can be reproduced standalone.
func (e *PanicError) Error() string {
	if e.Seeded {
		return fmt.Sprintf("parallel: task %d (seed %d) panicked: %v\n%s", e.Task, e.Seed, e.Value, e.Stack)
	}
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Task, e.Value, e.Stack)
}

// Map runs fn(0), fn(1), …, fn(n-1) across at most workers goroutines and
// returns the n results in task order. workers <= 0 means DefaultWorkers().
// A panicking task is converted to a *PanicError. If any task fails, Map
// returns a nil slice with the error of the lowest-index failing task —
// never a partial result set, so a failed sweep can't silently feed
// zero-valued rows into a table or figure downstream.
func Map[T any](workers, n int, fn func(task int) (T, error)) ([]T, error) {
	return mapSeeded(workers, n, nil, func(i int, _ int64) (T, error) {
		return fn(i)
	})
}

// mapSeeded is the shared pool under Map, Sweep, Trials, and the supervised
// runner. seedOf derives the per-task seed (nil when the entry point carries
// none); recovered panics are attributed with the task index and, when
// seeded, the seed that reproduces the failure.
func mapSeeded[T any](workers, n int, seedOf func(int) int64, fn func(task int, seed int64) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	run := func(i int) {
		var seed int64
		if seedOf != nil {
			seed = seedOf(i)
		}
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &PanicError{Task: i, Seed: seed, Seeded: seedOf != nil, Value: r, Stack: debug.Stack()}
			}
		}()
		results[i], errs[i] = fn(i, seed)
	}
	if workers == 1 {
		// Run inline: same semantics, no goroutine overhead, and stack
		// traces that point at the caller.
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					run(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Sweep runs fn over every parameter in params (a parallel parameter scan)
// and returns the results in parameter order.
func Sweep[P, T any](workers int, params []P, fn func(i int, p P) (T, error)) ([]T, error) {
	return Map(workers, len(params), func(i int) (T, error) {
		return fn(i, params[i])
	})
}

// Trials runs n Monte-Carlo replicates, handing each one its own seed
// derived from root via DeriveSeed, and returns the results in trial order.
// Because every trial owns an independent seed, the ensemble is identical
// for any worker count.
func Trials[T any](workers int, root int64, n int, fn func(trial int, seed int64) (T, error)) ([]T, error) {
	return mapSeeded(workers, n, func(i int) int64 {
		return DeriveSeed(root, i)
	}, fn)
}

// SplitMix64 constants (Steele, Lea & Flood, OOPSLA 2014): the additive
// golden-ratio gamma and the two avalanche multipliers.
const (
	splitmixGamma = 0x9E3779B97F4A7C15
	splitmixMul1  = 0xBF58476D1CE4E5B9
	splitmixMul2  = 0x94D049BB133111EB
)

// DeriveSeed maps (root, index) to a well-mixed per-task seed using one
// SplitMix64 step at state root + (index+1)·gamma. Nearby roots and indices
// yield statistically independent streams, and the mapping is a fixed pure
// function, so derived seeds never depend on scheduling.
func DeriveSeed(root int64, index int) int64 {
	z := uint64(root) + (uint64(index)+1)*splitmixGamma
	z ^= z >> 30
	z *= splitmixMul1
	z ^= z >> 27
	z *= splitmixMul2
	z ^= z >> 31
	return int64(z)
}
