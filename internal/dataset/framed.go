package dataset

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/checkpoint"
)

// Framed trace persistence (schema trace.v1) — the dataset-side half of the
// hardened ingestion layer (DESIGN.md §11). A lag trace spans months of
// virtual time and feeds Table V, Figure 6, and the spatio-temporal planner;
// a run killed while writing one must not leave an archive that silently
// parses short. Every line is wrapped in the crash-safety layer's checksum
// frame: a header carrying the schema, the trace configuration, and the
// block count, then one frame per sample. Loading recovers the valid prefix
// of a damaged file and reports the truncation.

// TraceSchemaV1 names the framed trace schema.
const TraceSchemaV1 = "trace.v1"

// ErrTraceSchema marks a trace file whose header names an unknown schema.
var ErrTraceSchema = errors.New("dataset: unknown trace schema")

// traceHeader is the first frame of a trace.v1 file.
type traceHeader struct {
	Schema string      `json:"schema"`
	Config TraceConfig `json:"config"`
	Blocks int         `json:"blocks"`
}

// WriteFramedTrace streams a trace in the hardened trace.v1 format.
func WriteFramedTrace(w io.Writer, t *Trace) error {
	if t == nil {
		return errors.New("dataset: nil trace")
	}
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(traceHeader{Schema: TraceSchemaV1, Config: t.Config, Blocks: t.Blocks})
	if err != nil {
		return fmt.Errorf("dataset: encode trace header: %w", err)
	}
	line, err := checkpoint.EncodeFrame(hdr)
	if err != nil {
		return fmt.Errorf("dataset: frame trace header: %w", err)
	}
	if _, err := bw.Write(line); err != nil {
		return fmt.Errorf("dataset: write trace header: %w", err)
	}
	for i := range t.Samples {
		payload, err := json.Marshal(&t.Samples[i])
		if err != nil {
			return fmt.Errorf("dataset: encode sample %d: %w", i, err)
		}
		line, err := checkpoint.EncodeFrame(payload)
		if err != nil {
			return fmt.Errorf("dataset: frame sample %d: %w", i, err)
		}
		if _, err := bw.Write(line); err != nil {
			return fmt.Errorf("dataset: write sample %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadFramedTrace loads a trace written by WriteFramedTrace. A missing or
// corrupt header, or an unknown schema, is a hard error; a corrupt or
// half-written tail is dropped and reported via truncated, with every
// checksummed sample before it returned intact.
func ReadFramedTrace(r io.Reader) (t *Trace, truncated bool, err error) {
	br := bufio.NewReader(r)
	line, complete := readFrameLine(br)
	if !complete {
		return nil, false, fmt.Errorf("dataset: missing trace header: %w", checkpoint.ErrCorrupt)
	}
	payload, err := checkpoint.DecodeFrame(line)
	if err != nil {
		return nil, false, fmt.Errorf("dataset: trace header: %w", err)
	}
	var hdr traceHeader
	if err := json.Unmarshal(payload, &hdr); err != nil {
		return nil, false, fmt.Errorf("dataset: trace header: %w: %v", checkpoint.ErrCorrupt, err)
	}
	if hdr.Schema != TraceSchemaV1 {
		return nil, false, fmt.Errorf("%w %q (want %q)", ErrTraceSchema, hdr.Schema, TraceSchemaV1)
	}
	t = &Trace{Config: hdr.Config, Blocks: hdr.Blocks}
	for {
		line, complete := readFrameLine(br)
		if len(line) == 0 && !complete {
			return t, false, nil
		}
		if !complete {
			return t, true, nil
		}
		payload, err := checkpoint.DecodeFrame(line)
		if err != nil {
			return t, true, nil
		}
		var s Sample
		if err := json.Unmarshal(payload, &s); err != nil {
			return t, true, nil
		}
		t.Samples = append(t.Samples, s)
	}
}

// readFrameLine reads one line without its newline; complete is false when
// the input ended before a newline (a half-written final line never counts).
func readFrameLine(br *bufio.Reader) (line []byte, complete bool) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return line, false
	}
	return line[:len(line)-1], true
}
