package dataset

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/checkpoint"
)

func framedTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := testPop(t).RunTrace(TraceConfig{
		Duration:    6 * time.Hour,
		SampleEvery: 10 * time.Minute,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFramedTraceRoundtrip(t *testing.T) {
	tr := framedTrace(t)
	var buf bytes.Buffer
	if err := WriteFramedTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, truncated, err := ReadFramedTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("clean file reported truncated")
	}
	if got.Blocks != tr.Blocks || !reflect.DeepEqual(got.Samples, tr.Samples) {
		t.Error("roundtrip changed the trace")
	}
	// The recovered config must still drive the Table V scan.
	if len(got.MaxVulnerable()) != len(tr.Config.VulnerabilityWindows) {
		t.Error("recovered trace lost its vulnerability windows")
	}
}

// TestFramedTraceTruncation: a trace archive cut mid-sample recovers the
// valid prefix with its header metadata intact.
func TestFramedTraceTruncation(t *testing.T) {
	tr := framedTrace(t)
	var buf bytes.Buffer
	if err := WriteFramedTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	lines, cut := 0, 0
	for i, b := range data {
		if b != '\n' {
			continue
		}
		lines++
		if lines == 5 { // header + 4 samples
			cut = i + 1
			break
		}
	}
	got, truncated, err := ReadFramedTrace(bytes.NewReader(append(data[:cut:cut], data[cut:cut+30]...)))
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("damaged archive not reported truncated")
	}
	if len(got.Samples) != 4 || !reflect.DeepEqual(got.Samples, tr.Samples[:4]) {
		t.Errorf("recovered %d samples, want the 4-sample prefix intact", len(got.Samples))
	}
	if got.Blocks != tr.Blocks {
		t.Error("header metadata lost")
	}
}

func TestFramedTraceHeaderErrors(t *testing.T) {
	if err := WriteFramedTrace(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil trace accepted")
	}
	if _, _, err := ReadFramedTrace(bytes.NewReader(nil)); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Errorf("empty file: %v, want ErrCorrupt", err)
	}
	hdr, err := checkpoint.EncodeFrame([]byte(`{"schema":"trace.v0"}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFramedTrace(bytes.NewReader(hdr)); !errors.Is(err, ErrTraceSchema) {
		t.Errorf("unknown schema: %v, want ErrTraceSchema", err)
	}
}
