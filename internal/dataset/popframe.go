package dataset

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/topology"
)

// Columnar population persistence (schema pop.v1) — the dataset side of the
// structure-of-arrays pass (DESIGN.md §12) layered on the hardened framing of
// DESIGN.md §11. A population is thirteen thousand rows with a dozen fields;
// row-oriented JSON holds every field of every record resident at once. The
// pop.v1 layout instead writes one checksum frame per column: a framed header
// naming the schema, the row counts, and the column order, then each column as
// a single frame containing that column's values for all rows. Writers
// serialize one column at a time (the transient buffer is released between
// columns) and readers stream frame-by-frame, so a consumer that wants only
// the version column never materializes link speeds or IPs.
//
// Damage semantics match crawl.v1: a missing or corrupt header, or an unknown
// schema, is a hard error; a corrupt or half-written frame truncates the
// stream at that point with every checksummed column before it returned
// intact. The derived topology is not stored — it is rebuilt from the AS rows
// exactly as Generate builds it, so a decoded population is byte-identical to
// the generated one.

// PopSchemaV1 names the columnar population schema.
const PopSchemaV1 = "pop.v1"

// ErrPopSchema marks a population file whose header names an unknown schema.
var ErrPopSchema = errors.New("dataset: unknown population schema")

// ErrPopIncomplete marks a truncated population file whose surviving column
// prefix is not enough to assemble a full Population. The per-column prefix
// is still recoverable via PopColumnReader.
var ErrPopIncomplete = errors.New("dataset: population file incomplete")

// popHeader is the first frame of a pop.v1 file.
type popHeader struct {
	Schema  string   `json:"schema"`
	ASes    int      `json:"ases"`
	Nodes   int      `json:"nodes"`
	Columns []string `json:"columns"`
}

// popColumn is one column frame: the column name and its values for every
// row, in row order.
type popColumn struct {
	Name   string          `json:"c"`
	Values json.RawMessage `json:"v"`
}

// popColumnOrder is the canonical column sequence: AS-table columns first
// (assembly rebuilds the topology from them), then node-table columns.
var popColumnOrder = []string{
	"as_asn", "as_name", "as_org", "as_nodes", "as_prefixes",
	"as_concentration", "as_country",
	"node_id", "node_family", "node_asn", "node_org", "node_ip",
	"node_prefix_base", "node_prefix_len", "node_link_speed",
	"node_latency", "node_uptime", "node_up", "node_version",
	"node_class", "node_mean_catchup",
}

// maxPopPrefixes bounds the total prefix count accepted at assembly time, so
// a damaged or hostile file cannot demand an enormous topology allocation.
const maxPopPrefixes = 1 << 20

// WriteFramedPopulation streams a population in the columnar pop.v1 format.
// Only the canonical tables (AS rows and node records) are written; the
// topology is derived and is reconstructed on read.
func WriteFramedPopulation(w io.Writer, p *Population) error {
	if p == nil {
		return errors.New("dataset: nil population")
	}
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(popHeader{
		Schema:  PopSchemaV1,
		ASes:    len(p.ASRows),
		Nodes:   len(p.Nodes),
		Columns: popColumnOrder,
	})
	if err != nil {
		return fmt.Errorf("dataset: encode population header: %w", err)
	}
	line, err := checkpoint.EncodeFrame(hdr)
	if err != nil {
		return fmt.Errorf("dataset: frame population header: %w", err)
	}
	if _, err := bw.Write(line); err != nil {
		return fmt.Errorf("dataset: write population header: %w", err)
	}
	for _, name := range popColumnOrder {
		// Each column's value slice is built, framed, and released before the
		// next column is touched — peak residency is one column, not the
		// whole table.
		values, err := json.Marshal(popColumnValues(p, name))
		if err != nil {
			return fmt.Errorf("dataset: encode column %s: %w", name, err)
		}
		payload, err := json.Marshal(popColumn{Name: name, Values: values})
		if err != nil {
			return fmt.Errorf("dataset: encode column %s: %w", name, err)
		}
		line, err := checkpoint.EncodeFrame(payload)
		if err != nil {
			return fmt.Errorf("dataset: frame column %s: %w", name, err)
		}
		if _, err := bw.Write(line); err != nil {
			return fmt.Errorf("dataset: write column %s: %w", name, err)
		}
	}
	return bw.Flush()
}

// popColumnValues extracts one named column from the population as a slice
// ready for JSON encoding.
func popColumnValues(p *Population, name string) any {
	switch name {
	case "as_asn":
		out := make([]topology.ASN, len(p.ASRows))
		for i, r := range p.ASRows {
			out[i] = r.ASN
		}
		return out
	case "as_name":
		out := make([]string, len(p.ASRows))
		for i, r := range p.ASRows {
			out[i] = r.Name
		}
		return out
	case "as_org":
		out := make([]string, len(p.ASRows))
		for i, r := range p.ASRows {
			out[i] = r.Org
		}
		return out
	case "as_nodes":
		out := make([]int, len(p.ASRows))
		for i, r := range p.ASRows {
			out[i] = r.Nodes
		}
		return out
	case "as_prefixes":
		out := make([]int, len(p.ASRows))
		for i, r := range p.ASRows {
			out[i] = r.Prefixes
		}
		return out
	case "as_concentration":
		out := make([]float64, len(p.ASRows))
		for i, r := range p.ASRows {
			out[i] = r.Concentration
		}
		return out
	case "as_country":
		out := make([]string, len(p.ASRows))
		for i, r := range p.ASRows {
			out[i] = r.Country
		}
		return out
	case "node_id":
		out := make([]int, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = p.Nodes[i].ID
		}
		return out
	case "node_family":
		out := make([]int, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = int(p.Nodes[i].Family)
		}
		return out
	case "node_asn":
		out := make([]topology.ASN, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = p.Nodes[i].ASN
		}
		return out
	case "node_org":
		out := make([]string, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = p.Nodes[i].Org
		}
		return out
	case "node_ip":
		out := make([]uint32, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = uint32(p.Nodes[i].IP)
		}
		return out
	case "node_prefix_base":
		out := make([]uint32, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = uint32(p.Nodes[i].Prefix.Base)
		}
		return out
	case "node_prefix_len":
		out := make([]int, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = p.Nodes[i].Prefix.Len
		}
		return out
	case "node_link_speed":
		out := make([]float64, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = p.Nodes[i].LinkSpeedMbs
		}
		return out
	case "node_latency":
		out := make([]float64, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = p.Nodes[i].LatencyIndex
		}
		return out
	case "node_uptime":
		out := make([]float64, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = p.Nodes[i].UptimeIndex
		}
		return out
	case "node_up":
		out := make([]bool, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = p.Nodes[i].Up
		}
		return out
	case "node_version":
		out := make([]string, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = p.Nodes[i].Version
		}
		return out
	case "node_class":
		out := make([]int, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = int(p.Nodes[i].Class)
		}
		return out
	case "node_mean_catchup":
		out := make([]int64, len(p.Nodes))
		for i := range p.Nodes {
			out[i] = int64(p.Nodes[i].MeanCatchup)
		}
		return out
	default:
		// Unreachable: popColumnOrder is the only caller's source of names.
		panic("dataset: unknown population column " + name)
	}
}

// PopColumnReader streams the column frames of a pop.v1 file one at a time,
// so consumers can decode just the columns they need without holding the
// whole table resident.
type PopColumnReader struct {
	br        *bufio.Reader
	hdr       popHeader
	truncated bool
	done      bool
}

// NewPopColumnReader reads and validates the header frame. A missing or
// corrupt header, or an unknown schema, is a hard error.
func NewPopColumnReader(r io.Reader) (*PopColumnReader, error) {
	br := bufio.NewReader(r)
	line, complete := readFrameLine(br)
	if !complete {
		return nil, fmt.Errorf("dataset: missing population header: %w", checkpoint.ErrCorrupt)
	}
	payload, err := checkpoint.DecodeFrame(line)
	if err != nil {
		return nil, fmt.Errorf("dataset: population header: %w", err)
	}
	var hdr popHeader
	if err := json.Unmarshal(payload, &hdr); err != nil {
		return nil, fmt.Errorf("dataset: population header: %w: %v", checkpoint.ErrCorrupt, err)
	}
	if hdr.Schema != PopSchemaV1 {
		return nil, fmt.Errorf("%w %q (want %q)", ErrPopSchema, hdr.Schema, PopSchemaV1)
	}
	if hdr.ASes < 0 || hdr.Nodes < 0 {
		return nil, fmt.Errorf("dataset: population header: negative row count: %w", checkpoint.ErrCorrupt)
	}
	return &PopColumnReader{br: br, hdr: hdr}, nil
}

// ASes returns the AS-row count declared by the header.
func (r *PopColumnReader) ASes() int { return r.hdr.ASes }

// Nodes returns the node-row count declared by the header.
func (r *PopColumnReader) Nodes() int { return r.hdr.Nodes }

// Columns returns the column order declared by the header.
func (r *PopColumnReader) Columns() []string { return r.hdr.Columns }

// Next returns the next intact column frame. ok is false at the end of the
// stream — clean or damaged; Truncated distinguishes the two. After the first
// damaged frame no further columns are returned: in-order delivery is what
// makes the recovered set a prefix.
func (r *PopColumnReader) Next() (name string, values json.RawMessage, ok bool) {
	if r.done {
		return "", nil, false
	}
	line, complete := readFrameLine(r.br)
	if len(line) == 0 && !complete {
		r.done = true
		return "", nil, false
	}
	if !complete {
		r.done, r.truncated = true, true
		return "", nil, false
	}
	payload, err := checkpoint.DecodeFrame(line)
	if err != nil {
		r.done, r.truncated = true, true
		return "", nil, false
	}
	var col popColumn
	if err := json.Unmarshal(payload, &col); err != nil {
		r.done, r.truncated = true, true
		return "", nil, false
	}
	return col.Name, col.Values, true
}

// Truncated reports whether the stream ended at a damaged frame rather than a
// clean end of input. Only meaningful once Next has returned ok == false.
func (r *PopColumnReader) Truncated() bool { return r.truncated }

// ReadFramedPopulation loads a population written by WriteFramedPopulation
// and reassembles it, topology included. Damage handling follows crawl.v1: a
// bad header or schema is a hard error; damage after all columns were read
// reports truncated with the full population intact. Damage that costs a
// needed column returns ErrPopIncomplete (with truncated true) — use
// PopColumnReader to salvage the surviving column prefix.
func ReadFramedPopulation(r io.Reader) (p *Population, truncated bool, err error) {
	cr, err := NewPopColumnReader(r)
	if err != nil {
		return nil, false, err
	}
	cols := make(map[string]json.RawMessage, len(popColumnOrder))
	for {
		name, values, ok := cr.Next()
		if !ok {
			break
		}
		// Last write wins on a duplicated name; canonical files never
		// duplicate, and assembly validates lengths regardless.
		cols[name] = values
	}
	truncated = cr.Truncated()
	p, err = assemblePopulation(cr.hdr, cols)
	if err != nil {
		return nil, truncated, err
	}
	return p, truncated, nil
}

// decodePopColumn unmarshals one column into a typed slice and enforces the
// header's row count; a missing or short column is incompleteness, not a
// parse error.
func decodePopColumn[T any](cols map[string]json.RawMessage, name string, rows int) ([]T, error) {
	raw, ok := cols[name]
	if !ok {
		return nil, fmt.Errorf("%w: missing column %s", ErrPopIncomplete, name)
	}
	var out []T
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("%w: column %s: %v", ErrPopIncomplete, name, err)
	}
	if len(out) != rows {
		return nil, fmt.Errorf("%w: column %s has %d rows, header claims %d", ErrPopIncomplete, name, len(out), rows)
	}
	return out, nil
}

// assemblePopulation rebuilds a Population from decoded columns: AS rows,
// derived topology (reconstructed exactly as Generate builds it), and node
// records.
func assemblePopulation(hdr popHeader, cols map[string]json.RawMessage) (*Population, error) {
	asASN, err := decodePopColumn[topology.ASN](cols, "as_asn", hdr.ASes)
	if err != nil {
		return nil, err
	}
	asName, err := decodePopColumn[string](cols, "as_name", hdr.ASes)
	if err != nil {
		return nil, err
	}
	asOrg, err := decodePopColumn[string](cols, "as_org", hdr.ASes)
	if err != nil {
		return nil, err
	}
	asNodes, err := decodePopColumn[int](cols, "as_nodes", hdr.ASes)
	if err != nil {
		return nil, err
	}
	asPrefixes, err := decodePopColumn[int](cols, "as_prefixes", hdr.ASes)
	if err != nil {
		return nil, err
	}
	asConc, err := decodePopColumn[float64](cols, "as_concentration", hdr.ASes)
	if err != nil {
		return nil, err
	}
	asCountry, err := decodePopColumn[string](cols, "as_country", hdr.ASes)
	if err != nil {
		return nil, err
	}
	rows := make([]ASRow, hdr.ASes)
	totalPrefixes := 0
	for i := range rows {
		if asPrefixes[i] < 0 || totalPrefixes+asPrefixes[i] > maxPopPrefixes {
			return nil, fmt.Errorf("dataset: AS row %d pushes prefix total past %d: %w", i, maxPopPrefixes, checkpoint.ErrCorrupt)
		}
		totalPrefixes += asPrefixes[i]
		rows[i] = ASRow{
			ASN:           asASN[i],
			Name:          asName[i],
			Org:           asOrg[i],
			Nodes:         asNodes[i],
			Prefixes:      asPrefixes[i],
			Concentration: asConc[i],
			Country:       asCountry[i],
		}
	}

	nodeID, err := decodePopColumn[int](cols, "node_id", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodeFamily, err := decodePopColumn[int](cols, "node_family", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodeASN, err := decodePopColumn[topology.ASN](cols, "node_asn", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodeOrg, err := decodePopColumn[string](cols, "node_org", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodeIP, err := decodePopColumn[uint32](cols, "node_ip", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodePfxBase, err := decodePopColumn[uint32](cols, "node_prefix_base", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodePfxLen, err := decodePopColumn[int](cols, "node_prefix_len", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodeSpeed, err := decodePopColumn[float64](cols, "node_link_speed", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodeLatency, err := decodePopColumn[float64](cols, "node_latency", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodeUptime, err := decodePopColumn[float64](cols, "node_uptime", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodeUp, err := decodePopColumn[bool](cols, "node_up", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodeVersion, err := decodePopColumn[string](cols, "node_version", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodeClass, err := decodePopColumn[int](cols, "node_class", hdr.Nodes)
	if err != nil {
		return nil, err
	}
	nodeCatchup, err := decodePopColumn[int64](cols, "node_mean_catchup", hdr.Nodes)
	if err != nil {
		return nil, err
	}

	topo, err := buildTopology(rows)
	if err != nil {
		return nil, fmt.Errorf("dataset: rebuild topology: %w", err)
	}
	p := &Population{Topo: topo, ASRows: rows, asIndex: make(map[topology.ASN]int, len(rows))}
	for i, r := range rows {
		p.asIndex[r.ASN] = i
	}
	p.Nodes = make([]NodeRecord, hdr.Nodes)
	for i := range p.Nodes {
		p.Nodes[i] = NodeRecord{
			ID:           nodeID[i],
			Family:       topology.AddrFamily(nodeFamily[i]),
			ASN:          nodeASN[i],
			Org:          nodeOrg[i],
			IP:           topology.IP(nodeIP[i]),
			Prefix:       topology.Prefix{Base: topology.IP(nodePfxBase[i]), Len: nodePfxLen[i]},
			LinkSpeedMbs: nodeSpeed[i],
			LatencyIndex: nodeLatency[i],
			UptimeIndex:  nodeUptime[i],
			Up:           nodeUp[i],
			Version:      nodeVersion[i],
			Class:        Class(nodeClass[i]),
			MeanCatchup:  time.Duration(nodeCatchup[i]),
		}
	}
	return p, nil
}
