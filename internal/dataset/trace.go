package dataset

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/topology"
)

// The lag trace models each node's consensus view over time, reproducing
// the paper's Figure 6 stacked series and the Table V vulnerability
// optimization. The process:
//
//   - Blocks arrive as a Poisson process with the 600 s Bitcoin interval.
//   - When a block is published, every up node that was synced becomes one
//     block behind and schedules a catch-up after an exponential delay with
//     its per-node mean (seconds for stable nodes, minutes for waverers,
//     tens of hours for stale nodes). Nodes already catching up simply fall
//     further behind until their catch-up fires, then sync to the tip.
//   - Episodes — network-wide slowdowns (congestion, connectivity events) —
//     multiply catch-up delays while active. They produce the tall yellow/
//     purple spikes of Figure 6(b) where up to ~90% of the network lags.
//
// The paper defines the lagging time L(t) of a node lagging at time t as
// the minimum time until it catches up; a node is vulnerable for constraint
// T if L(t) >= T (Table V).

// TraceConfig parameterizes a trace run.
type TraceConfig struct {
	// Duration is the simulated time span (the paper's general trend spans
	// two months; Figure 6(b) one day; Figure 6(c) ten minutes).
	Duration time.Duration
	// SampleEvery is the sampling interval (10 min for Figures 6(a,b),
	// 1 min for Figure 6(c)).
	SampleEvery time.Duration
	// Seed fixes the run (independent of the population seed).
	Seed int64
	// EpisodesPerDay is the Poisson rate of network-wide slowdown episodes.
	// Default 3.
	EpisodesPerDay float64
	// EpisodeMeanDuration is the mean episode length. Default 40 min.
	EpisodeMeanDuration time.Duration
	// EpisodeSlowdownMax bounds the uniform delay multiplier during an
	// episode (drawn from [3, max]). Default 8.
	EpisodeSlowdownMax float64
	// TrackSyncedByAS records per-AS synced-node counts at every sample
	// (needed for Table VII / Figure 8; costs memory on long traces).
	TrackSyncedByAS bool
	// VulnerabilityWindows are the timing constraints T for which each
	// sample records vulnerable-node counts (Table V). Defaults to the
	// paper's set {5,10,15,20,25,30,40,70,200} minutes.
	VulnerabilityWindows []time.Duration
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.EpisodesPerDay == 0 {
		c.EpisodesPerDay = 3
	}
	if c.EpisodeMeanDuration == 0 {
		c.EpisodeMeanDuration = 40 * time.Minute
	}
	if c.EpisodeSlowdownMax == 0 {
		c.EpisodeSlowdownMax = 8
	}
	if len(c.VulnerabilityWindows) == 0 {
		c.VulnerabilityWindows = DefaultVulnerabilityWindows()
	}
	return c
}

// DefaultVulnerabilityWindows returns Table V's timing constraints.
func DefaultVulnerabilityWindows() []time.Duration {
	mins := []int{5, 10, 15, 20, 25, 30, 40, 70, 200}
	out := make([]time.Duration, len(mins))
	for i, m := range mins {
		out[i] = time.Duration(m) * time.Minute
	}
	return out
}

// LagThresholds are the block-lag thresholds of Table V's columns.
var lagThresholds = [3]int{1, 2, 5}

// Sample is one sampling instant of the trace.
type Sample struct {
	T time.Duration
	// Buckets stacks nodes by blocks-behind, Figure 6's series: index 0
	// synced, then 1, 2-4, 5-10, >10.
	Buckets [5]int
	// UpNodes is the number of reachable nodes at the sample.
	UpNodes int
	// Vulnerable[i][j] counts nodes that are at least lagThresholds[j]
	// blocks behind AND will remain behind for at least
	// VulnerabilityWindows[i] more time (the paper's L(t) >= T).
	Vulnerable [][3]int
	// SyncedByAS maps AS -> synced node count (only when TrackSyncedByAS).
	SyncedByAS map[topology.ASN]int
	// EpisodeActive records whether a slowdown episode covered this sample.
	EpisodeActive bool
}

// Trace is the result of a lag-process run.
type Trace struct {
	Config  TraceConfig
	Samples []Sample
	// Blocks is the number of blocks published during the trace.
	Blocks int
}

// nodeState is the per-node dynamic state of the process.
type nodeState struct {
	// syncedTo is the height this node has fully verified.
	syncedTo int
	// catchupAt is when the node will jump to the current tip; zero when
	// the node is synced (no catch-up pending).
	catchupAt time.Duration
	pending   bool
}

// RunTrace simulates the lag process over the population.
func (p *Population) RunTrace(cfg TraceConfig) (*Trace, error) {
	cfg = cfg.withDefaults()
	if cfg.Duration <= 0 || cfg.SampleEvery <= 0 {
		return nil, errors.New("dataset: trace needs positive duration and sample interval")
	}
	if cfg.SampleEvery > cfg.Duration {
		return nil, fmt.Errorf("dataset: sample interval %v exceeds duration %v", cfg.SampleEvery, cfg.Duration)
	}
	rng := stats.NewRand(cfg.Seed)

	states := make([]nodeState, len(p.Nodes))
	tip := 0

	// Pre-draw episode schedule for the whole trace.
	episodes := drawEpisodes(rng, cfg)

	trace := &Trace{Config: cfg}

	// Event loop over two interleaved clocks: Poisson block arrivals and
	// the regular sampling grid.
	nextBlock := time.Duration(stats.Exponential(rng, 1/BlockInterval.Seconds()) * float64(time.Second))
	nextSample := cfg.SampleEvery

	for nextSample <= cfg.Duration {
		if nextBlock <= nextSample {
			now := nextBlock
			tip++
			trace.Blocks++
			slow := episodeMultiplier(episodes, now)
			for i := range states {
				st := &states[i]
				if !p.Nodes[i].Up {
					continue
				}
				// Fire a due catch-up first.
				if st.pending && st.catchupAt <= now {
					st.syncedTo = tip - 1
					st.pending = false
				}
				if !st.pending {
					// Node was synced; it now needs to fetch the new block.
					delay := stats.Exponential(rng, 1/p.Nodes[i].MeanCatchup.Seconds())
					delay *= slow
					st.catchupAt = now + time.Duration(delay*float64(time.Second))
					st.pending = true
				}
				// Nodes mid-catch-up fall further behind; their catchupAt
				// stands (they will sync to the tip as of that moment).
			}
			nextBlock = now + time.Duration(stats.Exponential(rng, 1/BlockInterval.Seconds())*float64(time.Second))
			continue
		}

		now := nextSample
		s := Sample{T: now, EpisodeActive: episodeMultiplier(episodes, now) > 1}
		s.Vulnerable = make([][3]int, len(cfg.VulnerabilityWindows))
		if cfg.TrackSyncedByAS {
			s.SyncedByAS = map[topology.ASN]int{}
		}
		for i := range states {
			if !p.Nodes[i].Up {
				continue
			}
			st := &states[i]
			if st.pending && st.catchupAt <= now {
				st.syncedTo = tip
				st.pending = false
			}
			s.UpNodes++
			behind := tip - st.syncedTo
			bucketAdd(&s.Buckets, behind)
			if behind == 0 && cfg.TrackSyncedByAS {
				s.SyncedByAS[p.Nodes[i].ASN]++
			}
			if behind > 0 && st.pending {
				remaining := st.catchupAt - now
				for wi, w := range cfg.VulnerabilityWindows {
					if remaining < w {
						break // windows are ascending
					}
					for ti, th := range lagThresholds {
						if behind >= th {
							s.Vulnerable[wi][ti]++
						}
					}
				}
			}
		}
		trace.Samples = append(trace.Samples, s)
		nextSample += cfg.SampleEvery
	}
	return trace, nil
}

func bucketAdd(b *[5]int, behind int) {
	switch {
	case behind <= 0:
		b[0]++
	case behind == 1:
		b[1]++
	case behind <= 4:
		b[2]++
	case behind <= 10:
		b[3]++
	default:
		b[4]++
	}
}

// episode is one slowdown window.
type episode struct {
	start, end time.Duration
	factor     float64
}

// drawEpisodes pre-samples slowdown windows over the configured duration.
func drawEpisodes(rng interface {
	Float64() float64
	ExpFloat64() float64
}, cfg TraceConfig) []episode {
	var out []episode
	day := 24 * time.Hour
	rate := cfg.EpisodesPerDay / day.Seconds()
	t := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
	for t < cfg.Duration {
		length := time.Duration(rng.ExpFloat64() * float64(cfg.EpisodeMeanDuration))
		factor := 3 + rng.Float64()*(cfg.EpisodeSlowdownMax-3)
		out = append(out, episode{start: t, end: t + length, factor: factor})
		t += length + time.Duration(rng.ExpFloat64()/rate*float64(time.Second))
	}
	return out
}

// episodeMultiplier returns the active slowdown factor at time t (1 when no
// episode is active).
func episodeMultiplier(eps []episode, t time.Duration) float64 {
	for _, e := range eps {
		if t >= e.start && t < e.end {
			return e.factor
		}
		if e.start > t {
			break
		}
	}
	return 1
}

// MaxVulnerable scans the trace for each (window, threshold) pair and
// returns the maximum simultaneous vulnerable-node count and the fraction
// of up nodes at the maximizing sample — Table V's optimization: "given a
// timestamp t and a timing constraint T, find the maximum number of
// vulnerable nodes whose lagging time L(t) is at least T".
func (t *Trace) MaxVulnerable() []VulnRow {
	out := make([]VulnRow, len(t.Config.VulnerabilityWindows))
	for wi := range t.Config.VulnerabilityWindows {
		out[wi] = t.scanWindow(wi)
	}
	return out
}

// MaxVulnerableParallel is MaxVulnerable with the per-window scans fanned
// across workers (<= 0 means one per CPU). Each window's scan is
// independent and read-only on the trace, so the output is identical to
// the sequential path for any worker count.
func (t *Trace) MaxVulnerableParallel(workers int) ([]VulnRow, error) {
	return parallel.Map(workers, len(t.Config.VulnerabilityWindows),
		func(wi int) (VulnRow, error) { return t.scanWindow(wi), nil })
}

// scanWindow runs the Table V optimization for one timing constraint.
func (t *Trace) scanWindow(wi int) VulnRow {
	row := VulnRow{Window: t.Config.VulnerabilityWindows[wi]}
	for _, s := range t.Samples {
		for ti := range lagThresholds {
			n := s.Vulnerable[wi][ti]
			if n > row.Max[ti] {
				row.Max[ti] = n
				if s.UpNodes > 0 {
					row.Frac[ti] = float64(n) / float64(s.UpNodes)
				}
			}
		}
	}
	return row
}

// VulnRow is one Table V row: for a timing constraint, the maximum count
// (and fraction of up nodes) of nodes at least 1, 2, and 5 blocks behind
// that stay behind for at least that long.
type VulnRow struct {
	Window time.Duration
	Max    [3]int
	Frac   [3]float64
}

// SyncedSeries extracts the Figure 8(a) series: per sample, the synced,
// 1-behind, and 2-4-behind counts.
func (t *Trace) SyncedSeries() (synced, behind1, behind2to4 []int) {
	for _, s := range t.Samples {
		synced = append(synced, s.Buckets[0])
		behind1 = append(behind1, s.Buckets[1])
		behind2to4 = append(behind2to4, s.Buckets[2])
	}
	return synced, behind1, behind2to4
}

// TopSyncedASes aggregates per-AS synced-node counts across the whole trace
// (requires TrackSyncedByAS) and returns the top n — Table VII. Counts are
// the per-sample average number of synced nodes the AS hosted.
func (t *Trace) TopSyncedASes(n int) ([]SyncedASRow, error) {
	if len(t.Samples) == 0 {
		return nil, errors.New("dataset: empty trace")
	}
	if t.Samples[0].SyncedByAS == nil {
		return nil, errors.New("dataset: trace did not track per-AS sync (set TrackSyncedByAS)")
	}
	totals := map[topology.ASN]int{}
	var allSynced int
	for _, s := range t.Samples {
		for asn, c := range s.SyncedByAS {
			totals[asn] += c
			allSynced += c
		}
	}
	rows := make([]SyncedASRow, 0, len(totals))
	for asn, c := range totals {
		rows = append(rows, SyncedASRow{
			ASN:      asn,
			Nodes:    c / len(t.Samples),
			Fraction: float64(c) / float64(allSynced),
		})
	}
	sortSyncedRows(rows)
	if n > len(rows) {
		n = len(rows)
	}
	return rows[:n], nil
}

// sortSyncedRows orders by synced count descending with ASN as tie-break,
// so results are deterministic despite map iteration order.
func sortSyncedRows(rows []SyncedASRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nodes != rows[j].Nodes {
			return rows[i].Nodes > rows[j].Nodes
		}
		return rows[i].ASN < rows[j].ASN
	})
}
