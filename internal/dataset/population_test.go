package dataset

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

// genOnce caches a generated population across tests in this package; the
// generator is deterministic so sharing is safe for read-only use.
var sharedPop *Population

func testPop(t *testing.T) *Population {
	t.Helper()
	if sharedPop == nil {
		p, err := Generate(1)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		sharedPop = p
	}
	return sharedPop
}

func TestGenerateTotals(t *testing.T) {
	p := testPop(t)
	if len(p.Nodes) != TotalNodes {
		t.Fatalf("nodes = %d, want %d", len(p.Nodes), TotalNodes)
	}
	if len(p.ASRows) != BitcoinASes {
		t.Fatalf("AS rows = %d, want %d", len(p.ASRows), BitcoinASes)
	}
	var total int
	for _, r := range p.ASRows {
		total += r.Nodes
	}
	if total != TotalNodes {
		t.Errorf("AS row node sum = %d, want %d", total, TotalNodes)
	}
}

func TestFamilySplitMatchesTableI(t *testing.T) {
	p := testPop(t)
	counts := map[topology.AddrFamily]int{}
	for _, n := range p.Nodes {
		counts[n.Family]++
	}
	if counts[topology.FamilyIPv4] != IPv4Nodes {
		t.Errorf("IPv4 = %d, want %d", counts[topology.FamilyIPv4], IPv4Nodes)
	}
	if counts[topology.FamilyIPv6] != IPv6Nodes {
		t.Errorf("IPv6 = %d, want %d", counts[topology.FamilyIPv6], IPv6Nodes)
	}
	if counts[topology.FamilyOnion] != OnionNodes {
		t.Errorf("Onion = %d, want %d", counts[topology.FamilyOnion], OnionNodes)
	}
}

func TestTableIMomentsReproduce(t *testing.T) {
	p := testPop(t)
	byFamily := map[topology.AddrFamily][]NodeRecord{}
	for _, n := range p.Nodes {
		byFamily[n.Family] = append(byFamily[n.Family], n)
	}
	for _, m := range TableI() {
		nodes := byFamily[m.Family]
		var speeds, lat, upt []float64
		for _, n := range nodes {
			speeds = append(speeds, n.LinkSpeedMbs)
			lat = append(lat, n.LatencyIndex)
			upt = append(upt, n.UptimeIndex)
		}
		speedMean := stats.Mean(speeds)
		latMean := stats.Mean(lat)
		uptMean := stats.Mean(upt)
		// Heavy-tailed link speeds: sample means wander; 35% tolerance.
		if math.Abs(speedMean-m.LinkSpeedMu)/m.LinkSpeedMu > 0.35 {
			t.Errorf("%v link speed mean = %v, want ~%v", m.Family, speedMean, m.LinkSpeedMu)
		}
		if math.Abs(latMean-m.LatencyMu) > 0.06 {
			t.Errorf("%v latency mean = %v, want ~%v", m.Family, latMean, m.LatencyMu)
		}
		if math.Abs(uptMean-m.UptimeMu) > 0.06 {
			t.Errorf("%v uptime mean = %v, want ~%v", m.Family, uptMean, m.UptimeMu)
		}
		for _, n := range nodes {
			if n.LatencyIndex < 0 || n.LatencyIndex > 1 || n.UptimeIndex < 0 || n.UptimeIndex > 1 {
				t.Fatalf("index out of [0,1]: %+v", n)
			}
			if n.LinkSpeedMbs < 0 {
				t.Fatalf("negative link speed: %v", n.LinkSpeedMbs)
			}
		}
	}
	// Tor is ~17x faster than IPv4 on average in Table I; require >5x.
	var v4, tor []float64
	for _, n := range byFamily[topology.FamilyIPv4] {
		v4 = append(v4, n.LinkSpeedMbs)
	}
	for _, n := range byFamily[topology.FamilyOnion] {
		tor = append(tor, n.LinkSpeedMbs)
	}
	if stats.Mean(tor) < 5*stats.Mean(v4) {
		t.Errorf("Tor mean speed %v not well above IPv4 %v", stats.Mean(tor), stats.Mean(v4))
	}
}

func TestTableIIHeadExact(t *testing.T) {
	p := testPop(t)
	for _, want := range TableII() {
		row, ok := p.ASRow(want.ASN)
		if !ok {
			t.Fatalf("AS%d missing", want.ASN)
		}
		if row.Nodes != want.Nodes {
			t.Errorf("AS%d nodes = %d, want %d", want.ASN, row.Nodes, want.Nodes)
		}
	}
	// Org column: Table II organizations reproduce exactly.
	orgs := p.OrgNodeCounts()
	for _, want := range TableIIOrgs() {
		if got := orgs[want.Name]; got != want.Nodes {
			t.Errorf("org %q = %d nodes, want %d", want.Name, got, want.Nodes)
		}
	}
}

func TestFigure3Calibration(t *testing.T) {
	p := testPop(t)
	asCounts := make([]int, 0, len(p.ASRows))
	for _, r := range p.ASRows {
		asCounts = append(asCounts, r.Nodes)
	}
	cdf := stats.CumulativeFromCounts(asCounts)
	if err := cdf.Validate(); err != nil {
		t.Fatal(err)
	}
	r30, err := cdf.RankFor(0.30)
	if err != nil {
		t.Fatal(err)
	}
	r50, err := cdf.RankFor(0.50)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 8 ASes -> 30%, 24 -> 50%. Table II's own counts cross 30% at
	// rank 7, so accept 7-9 and 22-26.
	if r30 < 7 || r30 > 9 {
		t.Errorf("AS rank for 30%% = %d, want 7-9 (paper: 8)", r30)
	}
	if r50 < 22 || r50 > 26 {
		t.Errorf("AS rank for 50%% = %d, want 22-26 (paper: 24)", r50)
	}

	orgCounts := make([]int, 0)
	for _, c := range p.OrgNodeCounts() {
		orgCounts = append(orgCounts, c)
	}
	ocdf := stats.CumulativeFromCounts(orgCounts)
	o50, err := ocdf.RankFor(0.50)
	if err != nil {
		t.Fatal(err)
	}
	// The paper claims both 13 (intro) and 21 (Figure 3 reading) orgs for
	// 50%; its own Table II admits no fewer than ~16. Require strictly more
	// concentrated than ASes and inside the paper's bracket.
	if o50 >= r50 {
		t.Errorf("org rank for 50%% = %d, not more concentrated than ASes (%d)", o50, r50)
	}
	if o50 < 13 || o50 > 21 {
		t.Errorf("org rank for 50%% = %d, want 13-21", o50)
	}
}

func TestUpFractionMatches(t *testing.T) {
	p := testPop(t)
	up := 0
	for _, n := range p.Nodes {
		if n.Up {
			up++
		}
	}
	wantFrac := float64(UpNodes) / float64(TotalNodes)
	gotFrac := float64(up) / float64(TotalNodes)
	if math.Abs(gotFrac-wantFrac) > 0.02 {
		t.Errorf("up fraction = %v, want ~%v", gotFrac, wantFrac)
	}
}

func TestVersionDistribution(t *testing.T) {
	p := testPop(t)
	vc := p.VersionCounts()
	if len(vc) != TotalSoftwareVariants {
		t.Errorf("variants = %d, want %d", len(vc), TotalSoftwareVariants)
	}
	for _, v := range TableVIII() {
		got := float64(vc[v.Version]) / float64(TotalNodes)
		if math.Abs(got-v.UserShare) > 0.005 {
			t.Errorf("%s share = %v, want %v", v.Version, got, v.UserShare)
		}
	}
	if vc["Falcon"] != 10 {
		t.Errorf("Falcon nodes = %d, want 10 (§V-D)", vc["Falcon"])
	}
	// The printed Table VIII top-5 ordering reproduces: no tail variant may
	// outrank v0.15.0 (rank 5, 2.05%).
	rank5 := vc["Bitcoin Core v0.15.0"]
	for v, c := range vc {
		switch v {
		case "Bitcoin Core v0.16.0", "Bitcoin Core v0.15.1", "Bitcoin Core v0.15.0.1",
			"Bitcoin Core v0.14.2", "Bitcoin Core v0.15.0":
			continue
		}
		if c >= rank5 {
			t.Errorf("tail variant %q has %d nodes, outranking v0.15.0's %d", v, c, rank5)
		}
	}
}

func TestClassSharesMatchFigure6a(t *testing.T) {
	p := testPop(t)
	counts := map[Class]int{}
	for _, n := range p.Nodes {
		counts[n.Class]++
	}
	total := float64(TotalNodes)
	if frac := float64(counts[ClassStable]) / total; math.Abs(frac-StableShare) > 0.02 {
		t.Errorf("stable share = %v, want ~%v", frac, StableShare)
	}
	if frac := float64(counts[ClassWaverer]) / total; math.Abs(frac-WavererShare) > 0.02 {
		t.Errorf("waverer share = %v, want ~%v", frac, WavererShare)
	}
	if frac := float64(counts[ClassStale]) / total; math.Abs(frac-StaleShare) > 0.02 {
		t.Errorf("stale share = %v, want ~%v", frac, StaleShare)
	}
}

func TestTopologyConsistent(t *testing.T) {
	p := testPop(t)
	if err := p.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every non-onion node's IP must resolve to its own AS.
	checked := 0
	for _, n := range p.Nodes {
		if n.Family == topology.FamilyOnion {
			continue
		}
		if checked > 2000 {
			break // spot check is enough; full check is O(n * routes)
		}
		if n.ID%7 != 0 {
			continue
		}
		checked++
		asn, ok := p.Topo.Resolve(n.IP)
		if !ok {
			t.Fatalf("node %d IP %v does not resolve", n.ID, n.IP)
		}
		if asn != n.ASN {
			t.Fatalf("node %d IP %v resolves to AS%d, recorded AS%d", n.ID, n.IP, asn, n.ASN)
		}
		if !n.Prefix.Contains(n.IP) {
			t.Fatalf("node %d IP %v outside its prefix %v", n.ID, n.IP, n.Prefix)
		}
	}
	if checked == 0 {
		t.Fatal("no nodes checked")
	}
}

func TestPrefixConcentrationMatchesFigure4(t *testing.T) {
	p := testPop(t)
	// Count nodes per prefix for an AS, then ask how many prefixes cover a
	// fraction of its nodes.
	prefixesFor := func(asn topology.ASN, frac float64) int {
		perPrefix := map[topology.Prefix]int{}
		for _, n := range p.NodesInAS(asn) {
			perPrefix[n.Prefix]++
		}
		counts := make([]int, 0, len(perPrefix))
		for _, c := range perPrefix {
			counts = append(counts, c)
		}
		cdf := stats.CumulativeFromCounts(counts)
		rank, err := cdf.RankFor(frac)
		if err != nil {
			t.Fatalf("AS%d: %v", asn, err)
		}
		return rank
	}
	// Figure 4: AS24940 -> 95% within ~15 prefixes (require <= 25);
	// AS16509 -> 95% needs > 140 prefixes.
	if got := prefixesFor(24940, 0.95); got > 25 {
		t.Errorf("AS24940: %d prefixes for 95%%, want <= 25 (paper ~15)", got)
	}
	if got := prefixesFor(16509, 0.95); got <= 140 {
		t.Errorf("AS16509: %d prefixes for 95%%, want > 140", got)
	}
	// "For 8 ASes, 80% nodes can be isolated by hijacking 20 BGP prefixes":
	// check the concentrated head ASes.
	for _, asn := range []topology.ASN{24940, 16276, 51167} {
		if got := prefixesFor(asn, 0.80); got > 20 {
			t.Errorf("AS%d: %d prefixes for 80%%, want <= 20", asn, got)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(99)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("node counts differ")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs between identical seeds", i)
		}
	}
}

func TestOnionNodesHaveNoIP(t *testing.T) {
	p := testPop(t)
	for _, n := range p.Nodes {
		if n.Family == topology.FamilyOnion {
			if n.IP != 0 {
				t.Fatalf("onion node %d has IP %v", n.ID, n.IP)
			}
			if n.ASN != topology.TorASN {
				t.Fatalf("onion node %d in AS%d", n.ID, n.ASN)
			}
		}
	}
}
