package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/stats"
	"repro/internal/topology"
)

// Class is a node's temporal behaviour class, from the paper's Figure 6(a)
// reading: ~50% stay synchronized, ~40% waver, ~10% are forever behind.
type Class int

// Behaviour classes. Enums start at one so the zero value is invalid.
const (
	ClassInvalid Class = iota
	ClassStable
	ClassWaverer
	ClassStale
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassStable:
		return "stable"
	case ClassWaverer:
		return "waverer"
	case ClassStale:
		return "stale"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// NodeRecord is one full node of the synthetic crawl: everything Bitnodes
// records about a reachable node (§IV-A), plus the generator's behavioural
// parameters.
type NodeRecord struct {
	ID           int
	Family       topology.AddrFamily
	ASN          topology.ASN
	Org          string
	IP           topology.IP // zero for onion nodes
	Prefix       topology.Prefix
	LinkSpeedMbs float64
	LatencyIndex float64
	UptimeIndex  float64
	Up           bool
	Version      string
	Class        Class
	// MeanCatchup is the node's mean delay to fetch a newly published block,
	// driving the lag trace.
	MeanCatchup time.Duration
}

// Population is the synthetic Feb-28-2018 snapshot.
type Population struct {
	Nodes []NodeRecord
	Topo  *topology.Topology
	// ASRows are all generated ASes (paper head + calibrated tail) with
	// their node counts and prefix info, sorted by node count descending.
	ASRows []ASRow
	// asIndex maps ASN to position in ASRows.
	asIndex map[topology.ASN]int
}

// Generate builds the population from a seed. The same seed reproduces the
// identical population byte for byte.
func Generate(seed int64) (*Population, error) {
	rng := stats.NewRand(seed)

	rows, err := buildASRows(rng)
	if err != nil {
		return nil, err
	}
	topo, err := buildTopology(rows)
	if err != nil {
		return nil, err
	}
	p := &Population{Topo: topo, ASRows: rows, asIndex: map[topology.ASN]int{}}
	for i, r := range rows {
		p.asIndex[r.ASN] = i
	}
	if err := p.populateNodes(rng); err != nil {
		return nil, err
	}
	return p, nil
}

// buildASRows assembles the full 1,660-AS roster: Table II's head,
// the secondary ASes of multi-AS organizations, a mid tail calibrated so
// the Figure 3 CDF hits its published marks (~8 ASes -> 30%, ~24 -> 50%),
// and a Zipf far tail.
func buildASRows(rng *rand.Rand) ([]ASRow, error) {
	rows := append([]ASRow(nil), TableII()...)
	rows = append(rows, SecondaryASes()...)

	var fixedNodes int
	for _, r := range rows {
		fixedNodes += r.Nodes
	}

	// Mid tail: twelve ASes descending from just below AS14618's 147,
	// calibrated so cumulative AS coverage crosses 50% near rank 24
	// (Figure 3 / Table III).
	midCounts := []int{145, 142, 138, 133, 128, 124, 120, 116, 112, 108, 100, 90}
	var midTotal int
	for _, c := range midCounts {
		midTotal += c
	}

	// Group the mid tail into six conglomerate organizations of two ASes
	// each, every pair summing below Alibaba (China)'s 279 nodes so the
	// printed Table II organization column reproduces exactly, while the
	// grouping still makes organizations more concentrated than ASes (the
	// paper variously claims 13 and 21 organizations for 50%; its own
	// Table II admits no fewer than ~16, which is where this lands).
	midOrgs := []string{
		"LeaseWeb B.V.", "Google LLC", "Online S.A.S.",
		"Choopa, LLC", "Linode, LLC", "SoftLayer Technologies",
	}
	midCountries := []string{"NL", "US", "FR", "US", "US", "US"}
	// orgOf pairs a large AS with a small one: (145,133) (142,128) ...
	orgOf := []int{0, 1, 2, 0, 1, 2, 3, 4, 5, 3, 4, 5}
	nextASN := topology.ASN(60000)
	for i, c := range midCounts {
		rows = append(rows, ASRow{
			ASN:           nextASN,
			Name:          fmt.Sprintf("MIDTAIL-%d", i+1),
			Org:           midOrgs[orgOf[i]],
			Nodes:         c,
			Prefixes:      8 + rng.Intn(40),
			Concentration: 1.0 + rng.Float64(),
			Country:       midCountries[orgOf[i]],
		})
		nextASN++
	}

	// Far tail: the remaining ASes share the remaining nodes under a Zipf
	// law, each with at least one node.
	tailASes := BitcoinASes - len(rows)
	tailNodes := TotalNodes - fixedNodes - midTotal
	if tailASes <= 0 || tailNodes < tailASes {
		return nil, fmt.Errorf("dataset: tail infeasible: %d ASes, %d nodes", tailASes, tailNodes)
	}
	weights := stats.ZipfWeights(tailASes, 0.78)
	counts, err := stats.Multinomial(tailNodes-tailASes, weights)
	if err != nil {
		return nil, fmt.Errorf("dataset: tail split: %w", err)
	}
	for i := 0; i < tailASes; i++ {
		n := counts[i] + 1 // every AS hosts at least one node
		// Cap tail counts below the mid tail's floor to preserve rank
		// structure; redistribute overflow to the next AS.
		if n > 65 {
			if i+1 < tailASes {
				counts[i+1] += n - 65
			}
			n = 65
		}
		org := fmt.Sprintf("ISP-%04d", i+1)
		// Every ~30th tail AS joins its predecessor's organization, giving
		// the organization curve its extra concentration.
		if i > 0 && i%30 == 0 {
			org = fmt.Sprintf("ISP-%04d", i)
		}
		rows = append(rows, ASRow{
			ASN:           nextASN,
			Name:          fmt.Sprintf("TAIL-%d", i+1),
			Org:           org,
			Nodes:         n,
			Prefixes:      1 + n/3 + rng.Intn(3),
			Concentration: 0.8 + rng.Float64(),
			Country:       "",
		})
		nextASN++
	}

	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Nodes > rows[j].Nodes })

	var total int
	for _, r := range rows {
		total += r.Nodes
	}
	if total != TotalNodes {
		return nil, fmt.Errorf("dataset: generated %d nodes, want %d", total, TotalNodes)
	}
	if len(rows) != BitcoinASes {
		return nil, fmt.Errorf("dataset: generated %d ASes, want %d", len(rows), BitcoinASes)
	}
	return rows, nil
}

// buildTopology registers every non-Tor AS with synthetic prefixes carved
// sequentially out of 10.0.0.0 and beyond as /20 blocks (4094 hosts each, so
// even the most concentrated prefix of the largest AS fits its nodes).
func buildTopology(rows []ASRow) (*topology.Topology, error) {
	topo := topology.New()
	nextBlock := uint32(10 << 24) // start at 10.0.0.0
	for _, r := range rows {
		if r.ASN == topology.TorASN {
			continue
		}
		prefixes := make([]topology.Prefix, 0, r.Prefixes)
		for i := 0; i < r.Prefixes; i++ {
			p, err := topology.NewPrefix(topology.IP(nextBlock), 20)
			if err != nil {
				return nil, err
			}
			prefixes = append(prefixes, p)
			nextBlock += 1 << 12
		}
		err := topo.AddAS(topology.AS{
			Number:   r.ASN,
			Name:     r.Name,
			Org:      r.Org,
			Prefixes: prefixes,
			Country:  r.Country,
		})
		if err != nil {
			return nil, err
		}
	}
	return topo, nil
}

// populateNodes creates the node records: AS placement, per-AS prefix
// assignment (Zipf-concentrated per Figure 4), family split and Table I
// characteristics, up/down state, software version, and behaviour class.
func (p *Population) populateNodes(rng *rand.Rand) error {
	p.Nodes = make([]NodeRecord, 0, TotalNodes)
	id := 0

	versions := buildVersionDeck(rng)
	vIdx := 0

	// Family assignment: onion nodes are exactly the TOR pseudo-AS's
	// population; IPv6 nodes are spread across ASes.
	ipv6Left := IPv6Nodes

	for _, row := range p.ASRows {
		prefixCounts, prefixes, err := p.prefixPlan(row)
		if err != nil {
			return err
		}
		prefixCursor := 0
		inPrefix := 0
		for k := 0; k < row.Nodes; k++ {
			rec := NodeRecord{ID: id, ASN: row.ASN, Org: row.Org}
			if row.ASN == topology.TorASN {
				rec.Family = topology.FamilyOnion
			} else {
				// Advance to the next prefix with remaining quota.
				for prefixCursor < len(prefixCounts) && inPrefix >= prefixCounts[prefixCursor] {
					prefixCursor++
					inPrefix = 0
				}
				if prefixCursor < len(prefixes) {
					rec.Prefix = prefixes[prefixCursor]
					rec.IP = rec.Prefix.Base + topology.IP(1+inPrefix)
					inPrefix++
				}
				rec.Family = topology.FamilyIPv4
				// IPv6 share sprinkled proportionally across non-Tor nodes.
				if ipv6Left > 0 && stats.Bernoulli(rng, float64(IPv6Nodes)/float64(TotalNodes-OnionNodes)) {
					rec.Family = topology.FamilyIPv6
					ipv6Left--
				}
			}
			fillCharacteristics(&rec, rng)
			rec.Version = versions[vIdx%len(versions)]
			vIdx++
			assignClass(&rec, rng)
			p.Nodes = append(p.Nodes, rec)
			id++
		}
	}
	if len(p.Nodes) != TotalNodes {
		return fmt.Errorf("dataset: populated %d nodes, want %d", len(p.Nodes), TotalNodes)
	}
	return nil
}

// prefixPlan splits an AS's node population over its prefixes with the
// row's Zipf concentration, reproducing the per-AS hijack curves of
// Figure 4 (15 prefixes isolate 95% of Hetzner; >140 needed for Amazon).
func (p *Population) prefixPlan(row ASRow) ([]int, []topology.Prefix, error) {
	if row.ASN == topology.TorASN || row.Prefixes == 0 {
		return nil, nil, nil
	}
	as, ok := p.Topo.AS(row.ASN)
	if !ok {
		return nil, nil, fmt.Errorf("dataset: AS%d not in topology", row.ASN)
	}
	weights := stats.ZipfWeights(row.Prefixes, row.Concentration)
	counts, err := stats.Multinomial(row.Nodes, weights)
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: prefix plan AS%d: %w", row.ASN, err)
	}
	return counts, as.Prefixes, nil
}

// fillCharacteristics samples Table I's link speed and indices plus the
// up/down flag for one node.
func fillCharacteristics(rec *NodeRecord, rng *rand.Rand) {
	var m FamilyMoments
	for _, fm := range TableI() {
		if fm.Family == rec.Family {
			m = fm
			break
		}
	}
	rec.LinkSpeedMbs = stats.LogNormalFromMoments(rng, m.LinkSpeedMu, m.LinkSpeedSig)
	rec.LatencyIndex = stats.BetaFromMoments(rng, m.LatencyMu, m.LatencySig)
	rec.UptimeIndex = stats.BetaFromMoments(rng, m.UptimeMu, m.UptimeSig)
	rec.Up = stats.Bernoulli(rng, float64(UpNodes)/float64(TotalNodes))
}

// assignClass draws the behaviour class (50/40/10) and a per-node mean
// catch-up delay: seconds for stable nodes, minutes for waverers, the
// better part of a day for stale nodes. Nodes with a high latency index
// (responsive) catch up faster within their class.
func assignClass(rec *NodeRecord, rng *rand.Rand) {
	u := rng.Float64()
	speedup := 0.6 + 0.8*(1-rec.LatencyIndex) // responsive nodes: 0.6x, slow: 1.4x
	switch {
	case u < StableShare:
		rec.Class = ClassStable
		rec.MeanCatchup = time.Duration(float64(45*time.Second) * speedup)
	case u < StableShare+WavererShare:
		rec.Class = ClassWaverer
		mins := 2 + rng.Float64()*13 // 2-15 minutes
		rec.MeanCatchup = time.Duration(mins * speedup * float64(time.Minute))
	default:
		rec.Class = ClassStale
		hours := 24 + rng.Float64()*48
		rec.MeanCatchup = time.Duration(hours * float64(time.Hour))
	}
}

// buildVersionDeck deals software versions in exact Table VIII proportions:
// a shuffled deck of TotalNodes version strings with the top five versions
// at their published shares, Falcon at its 10 nodes (§V-D), and the
// remaining variants under a Zipf tail, 288 variants in total.
func buildVersionDeck(rng *rand.Rand) []string {
	deck := make([]string, 0, TotalNodes)
	assigned := 0
	for _, v := range TableVIII() {
		n := int(v.UserShare * TotalNodes)
		for i := 0; i < n; i++ {
			deck = append(deck, v.Version)
		}
		assigned += n
	}
	// Falcon: the custom relay-optimized client run by 10 nodes.
	const falconNodes = 10
	for i := 0; i < falconNodes; i++ {
		deck = append(deck, "Falcon")
	}
	assigned += falconNodes

	// Remaining variants: 288 total = 5 top + Falcon + 282 others. Each
	// tail variant stays below Table VIII's rank-5 share (v0.15.0, 2.05%)
	// so the printed top-5 reproduces exactly; overflow rolls forward.
	others := TotalSoftwareVariants - 6
	rest := TotalNodes - assigned
	weights := stats.ZipfWeights(others, 1.05)
	counts, err := stats.Multinomial(rest-others, weights)
	if err != nil {
		// Cannot happen: weights are a valid Zipf vector.
		panic(fmt.Sprintf("dataset: version tail: %v", err))
	}
	rank5 := int(TableVIII()[4].UserShare * TotalNodes)
	cap5 := rank5 - 10
	for i := 0; i < others; i++ {
		if counts[i]+1 > cap5 {
			overflow := counts[i] + 1 - cap5
			counts[i] = cap5 - 1
			if i+1 < others {
				counts[i+1] += overflow
			}
		}
	}
	names := otherClientNames(others)
	for i := 0; i < others; i++ {
		for k := 0; k < counts[i]+1; k++ {
			deck = append(deck, names[i])
		}
	}
	rng.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })
	return deck
}

// otherClientNames fabricates the long tail of client identifiers: older
// Core releases, forks, and alternative implementations.
func otherClientNames(n int) []string {
	base := []string{
		"Bitcoin Core v0.14.1", "Bitcoin Core v0.14.0", "Bitcoin Core v0.13.2",
		"Bitcoin Core v0.13.1", "Bitcoin Core v0.13.0", "Bitcoin Core v0.12.1",
		"Bitcoin Core v0.12.0", "Bitcoin Core v0.11.2", "Bitcoin Core v0.10.3",
		"Bitcoin Unlimited v1.1.2", "Bitcoin ABC v0.16.2", "Bitcoin XT v0.11.0",
		"btcd v0.12.0", "bcoin v1.0.0", "libbitcoin v3.4.0", "bitcore v1.1.0",
	}
	out := make([]string, 0, n)
	out = append(out, base...)
	for i := len(base); i < n; i++ {
		out = append(out, fmt.Sprintf("Satoshi variant %03d", i-len(base)+1))
	}
	return out[:n]
}

// --- Query helpers used by the analyses -----------------------------------

// ASNodeCounts returns nodes per AS.
func (p *Population) ASNodeCounts() map[topology.ASN]int {
	out := make(map[topology.ASN]int, len(p.ASRows))
	for _, r := range p.ASRows {
		out[r.ASN] = r.Nodes
	}
	return out
}

// OrgNodeCounts returns nodes per organization.
func (p *Population) OrgNodeCounts() map[string]int {
	out := map[string]int{}
	for _, r := range p.ASRows {
		out[r.Org] += r.Nodes
	}
	return out
}

// NodesInAS returns the records of nodes hosted by the AS.
func (p *Population) NodesInAS(asn topology.ASN) []NodeRecord {
	var out []NodeRecord
	for _, n := range p.Nodes {
		if n.ASN == asn {
			out = append(out, n)
		}
	}
	return out
}

// ASRow returns the generated row for an ASN.
func (p *Population) ASRow(asn topology.ASN) (ASRow, bool) {
	i, ok := p.asIndex[asn]
	if !ok {
		return ASRow{}, false
	}
	return p.ASRows[i], true
}

// VersionCounts returns the number of nodes per software version.
func (p *Population) VersionCounts() map[string]int {
	out := map[string]int{}
	for _, n := range p.Nodes {
		out[n.Version]++
	}
	return out
}
