package dataset

import (
	"testing"
	"time"
)

func runTrace(t *testing.T, cfg TraceConfig) *Trace {
	t.Helper()
	tr, err := testPop(t).RunTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunTraceValidation(t *testing.T) {
	p := testPop(t)
	if _, err := p.RunTrace(TraceConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := p.RunTrace(TraceConfig{Duration: time.Minute, SampleEvery: time.Hour}); err == nil {
		t.Error("sample interval > duration accepted")
	}
}

func TestTraceSampleCountsAndInvariants(t *testing.T) {
	tr := runTrace(t, TraceConfig{Duration: 6 * time.Hour, SampleEvery: 10 * time.Minute, Seed: 2})
	if got, want := len(tr.Samples), 36; got != want {
		t.Fatalf("samples = %d, want %d", got, want)
	}
	for i, s := range tr.Samples {
		total := 0
		for _, b := range s.Buckets {
			total += b
		}
		if total != s.UpNodes {
			t.Fatalf("sample %d: buckets sum %d != up nodes %d", i, total, s.UpNodes)
		}
		// Vulnerability counts are monotone: longer windows and higher
		// thresholds can only shrink the set.
		for wi := 1; wi < len(s.Vulnerable); wi++ {
			for ti := 0; ti < 3; ti++ {
				if s.Vulnerable[wi][ti] > s.Vulnerable[wi-1][ti] {
					t.Fatalf("sample %d: vulnerable not monotone in window", i)
				}
			}
		}
		for wi := range s.Vulnerable {
			if s.Vulnerable[wi][1] > s.Vulnerable[wi][0] || s.Vulnerable[wi][2] > s.Vulnerable[wi][1] {
				t.Fatalf("sample %d: vulnerable not monotone in threshold", i)
			}
		}
	}
	// ~6 blocks/hour expected.
	if tr.Blocks < 15 || tr.Blocks > 65 {
		t.Errorf("blocks = %d over 6h, want ~36", tr.Blocks)
	}
}

func TestTraceGeneralTrendMatchesFigure6a(t *testing.T) {
	// Over a multi-day window with 10-minute sampling: a majority of
	// samples should show >= 50% of nodes synced or 1-behind, and the
	// stale floor should keep >= 5% of nodes >= 5 blocks behind.
	tr := runTrace(t, TraceConfig{Duration: 72 * time.Hour, SampleEvery: 10 * time.Minute, Seed: 3})
	syncedDominant := 0
	staleFloorOK := 0
	for _, s := range tr.Samples {
		if s.Buckets[0]+s.Buckets[1] >= s.UpNodes/2 {
			syncedDominant++
		}
		if s.Buckets[3]+s.Buckets[4] >= s.UpNodes/20 {
			staleFloorOK++
		}
	}
	n := len(tr.Samples)
	if syncedDominant < n*6/10 {
		t.Errorf("synced-dominant samples = %d of %d, want >= 60%%", syncedDominant, n)
	}
	if staleFloorOK < n*9/10 {
		t.Errorf("stale floor present in %d of %d samples", staleFloorOK, n)
	}
}

func TestTraceSpikesReachDeepLag(t *testing.T) {
	// Figure 6(b): spikes where most of the network lags. With episodes
	// enabled, some sample should see >= 50% of nodes behind.
	tr := runTrace(t, TraceConfig{Duration: 96 * time.Hour, SampleEvery: 10 * time.Minute, Seed: 5})
	peak := 0.0
	for _, s := range tr.Samples {
		behind := s.UpNodes - s.Buckets[0]
		if f := float64(behind) / float64(s.UpNodes); f > peak {
			peak = f
		}
	}
	if peak < 0.5 {
		t.Errorf("peak behind fraction = %v, want >= 0.5 (paper sees up to ~90%%)", peak)
	}
}

func TestMaxVulnerableShape(t *testing.T) {
	// Table V's qualitative shape: counts decrease with the timing window,
	// a large max at T=5min (paper: 62.67% >= 1 block), and a stale floor
	// at T=200min (paper: ~9%).
	tr := runTrace(t, TraceConfig{Duration: 7 * 24 * time.Hour, SampleEvery: 10 * time.Minute, Seed: 7})
	rows := tr.MaxVulnerable()
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		for ti := 0; ti < 3; ti++ {
			if rows[i].Max[ti] > rows[i-1].Max[ti] {
				t.Errorf("row %d threshold %d: max not non-increasing (%d > %d)",
					i, ti, rows[i].Max[ti], rows[i-1].Max[ti])
			}
		}
	}
	// T=5min, >=1 block: a large fraction of the network.
	if rows[0].Frac[0] < 0.35 {
		t.Errorf("T=5min >=1 block fraction = %v, want >= 0.35 (paper 0.6267)", rows[0].Frac[0])
	}
	// T=200min: only stale nodes remain, ~10%.
	if rows[8].Frac[0] < 0.04 || rows[8].Frac[0] > 0.20 {
		t.Errorf("T=200min fraction = %v, want ~0.09", rows[8].Frac[0])
	}
	// The >=5-block column at long windows approaches the stale floor too.
	if rows[8].Max[2] == 0 {
		t.Error("no deeply lagged vulnerable nodes at T=200min")
	}
}

func TestPerMinuteConsensusPruning(t *testing.T) {
	// Figure 6(c): 1-minute sampling. Right after blocks, many nodes are
	// behind; between blocks the network heals. Expect the behind-fraction
	// to vary substantially across per-minute samples.
	tr := runTrace(t, TraceConfig{Duration: 3 * time.Hour, SampleEvery: time.Minute, Seed: 11})
	lo, hi := 1.0, 0.0
	for _, s := range tr.Samples {
		f := float64(s.UpNodes-s.Buckets[0]) / float64(s.UpNodes)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi-lo < 0.2 {
		t.Errorf("behind-fraction range [%v, %v] too narrow for per-minute pruning", lo, hi)
	}
}

func TestTopSyncedASes(t *testing.T) {
	tr := runTrace(t, TraceConfig{
		Duration: 24 * time.Hour, SampleEvery: 10 * time.Minute, Seed: 13,
		TrackSyncedByAS: true,
	})
	rows, err := tr.TopSyncedASes(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Counts must be descending and fractions sane.
	var topFrac float64
	for i, r := range rows {
		if i > 0 && r.Nodes > rows[i-1].Nodes {
			t.Error("rows not sorted by synced count")
		}
		topFrac += r.Fraction
	}
	// Paper: top-5 ASes hosted ~28% of synced nodes.
	if topFrac < 0.15 || topFrac > 0.45 {
		t.Errorf("top-5 synced share = %v, want ~0.28", topFrac)
	}
	// The largest AS (Hetzner, 1030 nodes) should appear in the top 5 of
	// synced hosting.
	found := false
	for _, r := range rows {
		if r.ASN == 24940 {
			found = true
		}
	}
	if !found {
		t.Error("AS24940 missing from top-5 synced ASes")
	}
}

func TestTopSyncedASesRequiresTracking(t *testing.T) {
	tr := runTrace(t, TraceConfig{Duration: time.Hour, SampleEvery: 10 * time.Minute, Seed: 1})
	if _, err := tr.TopSyncedASes(5); err == nil {
		t.Error("expected error without TrackSyncedByAS")
	}
}

func TestTraceDeterminism(t *testing.T) {
	cfg := TraceConfig{Duration: 12 * time.Hour, SampleEvery: 10 * time.Minute, Seed: 21}
	a := runTrace(t, cfg)
	b := runTrace(t, cfg)
	if a.Blocks != b.Blocks || len(a.Samples) != len(b.Samples) {
		t.Fatal("trace shape differs between identical seeds")
	}
	for i := range a.Samples {
		if a.Samples[i].Buckets != b.Samples[i].Buckets {
			t.Fatalf("sample %d differs between identical seeds", i)
		}
	}
}
