package dataset

import (
	"fmt"
	"os"

	"repro/internal/iofault"
)

// File-level entry points for the hardened trace archive, routed through
// the iofault seam (DESIGN.md §15) — the dataset-side mirror of
// crawler.WriteFramedFile/ReadFramedFile.

// WriteFramedTraceFile writes a trace to path in the trace.v1 format and
// fsyncs before closing, so a clean exit means a durable archive. A nil
// fsys writes to the real filesystem.
func WriteFramedTraceFile(fsys iofault.FS, path string, t *Trace) error {
	f, err := iofault.OrOS(fsys).OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("dataset: create trace archive: %w", err)
	}
	err = WriteFramedTrace(f, t)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("dataset: write trace archive %s: %w", path, err)
	}
	return nil
}

// ReadFramedTraceFile loads a trace.v1 archive from path with ReadFramedTrace's
// recovery contract. A nil fsys reads the real filesystem.
func ReadFramedTraceFile(fsys iofault.FS, path string) (t *Trace, truncated bool, err error) {
	f, err := iofault.OrOS(fsys).Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("dataset: open trace archive: %w", err)
	}
	//lint:ignore checkederr read-only handle; Close after reads reports no data-loss error
	defer f.Close()
	return ReadFramedTrace(f)
}
