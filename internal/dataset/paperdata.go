// Package dataset generates the synthetic stand-in for the paper's
// proprietary Bitnodes crawl (Feb 28 – Apr 2018, 80 GB). The paper's
// analyses consume only aggregate properties of that crawl — per-AS and
// per-organization node counts, per-AS BGP prefix concentration, address-
// family characteristics, software-version shares, mining-pool placement,
// and the distribution of per-node consensus lag over time. This package
// embeds every aggregate the paper publishes and generates a node
// population plus a lag-process trace whose marginals match them, so the
// analysis and attack code paths run exactly as they would over the real
// crawl.
package dataset

import (
	"time"

	"repro/internal/mining"
	"repro/internal/topology"
)

// Snapshot-level headline numbers from §IV-C (Feb 28, 2018).
const (
	// TotalNodes is the full-node population of the snapshot.
	TotalNodes = 13635
	// IPv4Nodes, IPv6Nodes, OnionNodes split the population by family.
	IPv4Nodes  = 12737
	IPv6Nodes  = 579
	OnionNodes = 319
	// UpNodes were reachable at the snapshot (83.47%).
	UpNodes = 11382
	// SyncedNodes had the most recent block (45.14%).
	SyncedNodes = 6155
	// TotalWorldASes is the number of ASes on the Internet the paper cites
	// (84,903); BitcoinASes of them host at least one full node.
	TotalWorldASes = 84903
	// BitcoinASes host 100% of the full nodes (1.95% of all ASes).
	BitcoinASes = 1660
)

// FamilyMoments holds Table I's per-family link speed and index moments.
type FamilyMoments struct {
	Family       topology.AddrFamily
	Count        int
	LinkSpeedMu  float64 // Mbps
	LinkSpeedSig float64
	LatencyMu    float64
	LatencySig   float64
	UptimeMu     float64
	UptimeSig    float64
}

// TableI reproduces the paper's Table I.
func TableI() []FamilyMoments {
	return []FamilyMoments{
		{topology.FamilyIPv4, IPv4Nodes, 25.04, 258.80, 0.70, 0.45, 0.68, 0.44},
		{topology.FamilyIPv6, IPv6Nodes, 23.06, 245.36, 0.86, 0.35, 0.67, 0.42},
		{topology.FamilyOnion, OnionNodes, 432.67, 1046.5, 0.24, 0.25, 0.76, 0.37},
	}
}

// ASRow is one row of Table II's AS-side columns, extended with the BGP
// prefix count Figure 4 reports and a concentration exponent calibrated so
// the per-AS hijack curves of Figure 4 reproduce (nodes per prefix follow a
// Zipf law with this exponent; larger means more concentrated).
type ASRow struct {
	ASN      topology.ASN
	Name     string
	Org      string
	Nodes    int
	Prefixes int
	// Concentration is the Zipf exponent for node-to-prefix assignment.
	// AS16509 (Amazon EC2) spreads nodes near-uniformly over ~3k prefixes
	// (the paper: >140 hijacks for 95%), while hosting providers like
	// Hetzner concentrate 95% of nodes into ~15 prefixes.
	Concentration float64
	Country       string
}

// TableII returns the top-10 AS rows of Table II (TOR appears as the
// pseudo-AS), augmented with Figure 4's prefix counts where the paper
// reports them and estimates of the same magnitude elsewhere.
func TableII() []ASRow {
	return []ASRow{
		{24940, "HETZNER-AS", "Hetzner Online GmbH", 1030, 51, 2.2, "DE"},
		{16276, "OVH", "OVH SAS", 697, 104, 1.7, "FR"},
		{37963, "CNNIC-ALIBABA-CN-NET-AP", "Hangzhou Alibaba", 640, 454, 1.3, "CN"},
		{16509, "AMAZON-02", "Amazon.com, Inc", 609, 2969, 0.15, "US"},
		{14061, "DIGITALOCEAN-ASN", "DigitalOcean, LLC", 460, 1430, 1.1, "US"},
		{7922, "COMCAST-7922", "Comcast Communication", 414, 980, 0.9, "US"},
		{4134, "CHINANET-BACKBONE", "No.31, Jin-rong Street", 394, 2450, 0.6, "CN"},
		{topology.TorASN, "TOR", "TOR", 319, 0, 0, ""},
		{51167, "CONTABO", "Contabo GmbH", 288, 31, 2.0, "DE"},
		{45102, "CNNIC-ALIBABA-US-NET-AP", "Alibaba (China)", 279, 210, 1.4, "CN"},
	}
}

// SecondaryASes are additional ASes owned by multi-AS organizations, sized
// so that Table II's organization column reproduces: Amazon.com 756 nodes
// (AS16509 609 + 147 elsewhere), OVH SAS 700 (697 + 3), DigitalOcean 503
// (460 + 43). The paper highlights exactly this AS/organization asymmetry
// ("Amazon.com owns another AS besides AS16276 [sic] that also routes
// traffic").
func SecondaryASes() []ASRow {
	return []ASRow{
		{14618, "AMAZON-AES", "Amazon.com, Inc", 147, 310, 0.5, "US"},
		{35540, "OVH-2", "OVH SAS", 3, 4, 1.0, "FR"},
		{393406, "DIGITALOCEAN-2", "DigitalOcean, LLC", 43, 120, 1.2, "US"},
		{58563, "CHINANET-HUBEI", "Chinanet Hubei", 95, 260, 0.8, "CN"},
	}
}

// OrgRow is one row of Table II's organization-side columns.
type OrgRow struct {
	Name  string
	Nodes int
}

// TableIIOrgs returns the organization column of Table II.
func TableIIOrgs() []OrgRow {
	return []OrgRow{
		{"Hetzner Online GmbH", 1030},
		{"Amazon.com, Inc", 756},
		{"OVH SAS", 700},
		{"Hangzhou Alibaba", 640},
		{"DigitalOcean, LLC", 503},
		{"Comcast Communication", 414},
		{"No.31, Jin-rong Street", 394},
		{"TOR", 319},
		{"Contabo GmbH", 288},
		{"Alibaba (China)", 279},
	}
}

// CentralizationRow captures Table III: the count of ASes hosting a given
// fraction of nodes in 2017 (Apostolaki et al.) versus 2018 (this paper).
type CentralizationRow struct {
	Fraction  float64
	ASes2017  int
	ASes2018  int
	ChangePct float64
}

// TableIII returns the centralization-change rows. Change is
// (N1-N2)*100/N1 as defined in §V-A.
func TableIII() []CentralizationRow {
	return []CentralizationRow{
		{0.50, 50, 24, 52},
		{0.30, 13, 8, 38},
	}
}

// PoolRow is one row of Table IV.
type PoolRow struct {
	Pool mining.Pool
}

// TableIV returns the paper's top-5 mining pools with their hash shares and
// stratum-server AS placement. The remaining 12 pools (34.3% aggregate) are
// excluded, as in the paper.
func TableIV() []mining.Pool {
	return []mining.Pool{
		{Name: "BTC.com", HashShare: 0.25, StratumASes: []topology.ASN{37963, 45102}, StratumOrg: "AliBaba"},
		{Name: "Antpool", HashShare: 0.124, StratumASes: []topology.ASN{45102}, StratumOrg: "AliBaba"},
		{Name: "ViaBTC", HashShare: 0.117, StratumASes: []topology.ASN{45102}, StratumOrg: "AliBaba"},
		{Name: "BTC.TOP", HashShare: 0.103, StratumASes: []topology.ASN{45102}, StratumOrg: "AliBaba"},
		{Name: "F2Pool", HashShare: 0.063, StratumASes: []topology.ASN{45102, 58563}, StratumOrg: "AliBaba"},
	}
}

// VersionRow is one row of Table VIII.
type VersionRow struct {
	Index       int
	Version     string
	ReleaseDate string // YYYY-MM-DD as printed in the paper
	LagDays     int    // days between release and the data collection date
	UserShare   float64
}

// TableVIII returns the paper's top-5 Bitcoin Core versions by node share.
// The remaining 283 of the 288 observed variants share the residual 24.47%.
func TableVIII() []VersionRow {
	return []VersionRow{
		{1, "Bitcoin Core v0.16.0", "2018-02-26", 59, 0.3628},
		{2, "Bitcoin Core v0.15.1", "2017-11-11", 166, 0.2752},
		{3, "Bitcoin Core v0.15.0.1", "2017-09-19", 219, 0.0501},
		{4, "Bitcoin Core v0.14.2", "2017-06-17", 313, 0.0467},
		{5, "Bitcoin Core v0.15.0", "2017-04-22", 369, 0.0205},
	}
}

// TotalSoftwareVariants is the number of distinct client versions observed
// (§V-D: "we observed that 288 Bitcoin software variants are used by full
// nodes"; the abstract-level text rounds to "more than 200").
const TotalSoftwareVariants = 288

// Figure-3 calibration targets: the smallest number of ASes/organizations
// covering each fraction of the node population.
const (
	ASesFor30Pct = 8
	ASesFor50Pct = 24
	OrgsFor30Pct = 8
	OrgsFor50Pct = 13
)

// Table VII: top 5 ASes hosting synchronized nodes over the Figure 6(b) day.
type SyncedASRow struct {
	ASN      topology.ASN
	Org      string
	Nodes    int
	Fraction float64
}

// TableVII returns the paper's Table VII rows (for comparison in
// EXPERIMENTS.md; our regenerated table derives from the synthetic trace).
func TableVII() []SyncedASRow {
	return []SyncedASRow{
		{4134, "No.31, Jin-rong", 993, 0.0957},
		{24940, "Hetzner Online", 830, 0.0798},
		{16276, "OVH SAS", 530, 0.0522},
		{16509, "Amazon.com", 417, 0.0419},
		{14061, "DigitalOcean", 332, 0.0323},
	}
}

// Temporal-trace calibration (§V-B, Figure 6): the share of nodes in each
// behavioural class the paper's two-month trend exhibits.
const (
	// StableShare of nodes "remain synchronized on the blockchain state".
	StableShare = 0.50
	// StaleShare are "forever behind the main blockchain".
	StaleShare = 0.10
	// WavererShare "occasionally waver in terms of their view".
	WavererShare = 0.40
)

// BlockInterval re-exports the Bitcoin block time for convenience.
const BlockInterval = 600 * time.Second

// CollectionDate is the snapshot date of the paper's primary analysis.
func CollectionDate() time.Time {
	return time.Date(2018, time.February, 28, 0, 0, 0, 0, time.UTC)
}
