package dataset

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/iofault"
)

// TestFramedTraceFileRoundtrip: file-level trace persistence over the seam
// matches the in-memory contract and fsyncs before reporting success.
func TestFramedTraceFileRoundtrip(t *testing.T) {
	tr := framedTrace(t)
	path := filepath.Join(t.TempDir(), "lag.trace.v1")
	c := iofault.NewChaos(iofault.Config{})
	if err := WriteFramedTraceFile(c, path, tr); err != nil {
		t.Fatal(err)
	}
	synced := false
	for _, op := range c.Ops() {
		if op.Kind == iofault.OpSync {
			synced = true
		}
	}
	if !synced {
		t.Fatal("WriteFramedTraceFile closed without an fsync")
	}
	got, truncated, err := ReadFramedTraceFile(nil, path)
	if err != nil || truncated {
		t.Fatalf("read back: truncated=%v err=%v", truncated, err)
	}
	if got.Blocks != tr.Blocks || !reflect.DeepEqual(got.Samples, tr.Samples) {
		t.Fatal("file roundtrip changed the trace")
	}
}

// TestFramedTraceFileReadCorruption: flipped bytes on the read path end in
// a typed error or a truncated valid prefix; samples that survive must be
// the ones written.
func TestFramedTraceFileReadCorruption(t *testing.T) {
	tr := framedTrace(t)
	path := filepath.Join(t.TempDir(), "lag.trace.v1")
	if err := WriteFramedTraceFile(nil, path, tr); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for seed := int64(1); seed <= 20; seed++ {
		c := iofault.NewChaos(iofault.Config{Seed: seed, ReadCorrupt: 1})
		got, truncated, err := ReadFramedTraceFile(c, path)
		if err != nil {
			if !errors.Is(err, checkpoint.ErrCorrupt) && !errors.Is(err, ErrTraceSchema) {
				t.Fatalf("seed %d: corruption produced an untyped error: %v", seed, err)
			}
			hits++
			continue
		}
		if truncated {
			hits++
		}
		if len(got.Samples) > len(tr.Samples) {
			t.Fatalf("seed %d: corruption grew the trace", seed)
		}
		for i := range got.Samples {
			if !reflect.DeepEqual(got.Samples[i], tr.Samples[i]) {
				t.Fatalf("seed %d: sample %d silently misparsed under corruption", seed, i)
			}
		}
	}
	if hits == 0 {
		t.Fatal("20 corrupting reads all passed checksum verification")
	}
}
