package dataset

import (
	"bytes"
	"errors"
	"reflect"
	"slices"
	"testing"

	"repro/internal/checkpoint"
)

// mustTinyPopulation returns the shared generated population for framing
// tests (memoised per run by Generate's determinism — seed 1 throughout).
func mustTinyPopulation(t *testing.T) *Population {
	t.Helper()
	pop, err := Generate(1)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return pop
}

// TestPopFramedRoundTrip proves write→read reproduces the generated
// population exactly, topology and AS index included.
func TestPopFramedRoundTrip(t *testing.T) {
	pop := mustTinyPopulation(t)
	var buf bytes.Buffer
	if err := WriteFramedPopulation(&buf, pop); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, truncated, err := ReadFramedPopulation(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if truncated {
		t.Fatal("clean file reported truncated")
	}
	if !reflect.DeepEqual(got.Nodes, pop.Nodes) {
		t.Fatal("node records differ after round trip")
	}
	if !reflect.DeepEqual(got.ASRows, pop.ASRows) {
		t.Fatal("AS rows differ after round trip")
	}
	if !reflect.DeepEqual(got.Topo, pop.Topo) {
		t.Fatal("rebuilt topology differs after round trip")
	}
	if !reflect.DeepEqual(got.asIndex, pop.asIndex) {
		t.Fatal("AS index differs after round trip")
	}
}

// TestPopFramedStreamsColumns checks the streaming reader yields every column
// in canonical order and that a consumer can stop after the column it wants.
func TestPopFramedStreamsColumns(t *testing.T) {
	pop := mustTinyPopulation(t)
	var buf bytes.Buffer
	if err := WriteFramedPopulation(&buf, pop); err != nil {
		t.Fatalf("write: %v", err)
	}
	cr, err := NewPopColumnReader(&buf)
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	if cr.Nodes() != len(pop.Nodes) || cr.ASes() != len(pop.ASRows) {
		t.Fatalf("header counts %d/%d, want %d/%d", cr.ASes(), cr.Nodes(), len(pop.ASRows), len(pop.Nodes))
	}
	if !reflect.DeepEqual(cr.Columns(), popColumnOrder) {
		t.Fatalf("header columns %v", cr.Columns())
	}
	var seen []string
	for {
		name, values, ok := cr.Next()
		if !ok {
			break
		}
		if len(values) == 0 {
			t.Fatalf("column %s has empty values", name)
		}
		seen = append(seen, name)
	}
	if cr.Truncated() {
		t.Fatal("clean stream reported truncated")
	}
	if !slices.Equal(seen, popColumnOrder) {
		t.Fatalf("streamed columns %v", seen)
	}
}

// popLines splits an encoded pop.v1 file into its frame lines (trailing
// newline stripped from the final split).
func popLines(t *testing.T, pop *Population) [][]byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFramedPopulation(&buf, pop); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw := buf.Bytes()
	lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	if len(lines) != 1+len(popColumnOrder) {
		t.Fatalf("encoded %d lines, want %d", len(lines), 1+len(popColumnOrder))
	}
	return lines
}

// TestPopFramedTruncationRecoversPrefix damages the file at each column in
// turn and checks the streaming reader recovers exactly the columns before
// the damage — crawl.v1 semantics at column granularity.
func TestPopFramedTruncationRecoversPrefix(t *testing.T) {
	pop := mustTinyPopulation(t)
	lines := popLines(t, pop)
	for cut := 0; cut < len(popColumnOrder); cut += 7 {
		var damaged bytes.Buffer
		for i := 0; i <= cut; i++ {
			damaged.Write(lines[i])
			damaged.WriteByte('\n')
		}
		// Half-written next frame: no newline, so it never counts.
		damaged.Write(lines[cut+1][:len(lines[cut+1])/2])

		cr, err := NewPopColumnReader(bytes.NewReader(damaged.Bytes()))
		if err != nil {
			t.Fatalf("cut %d: reader: %v", cut, err)
		}
		var seen []string
		for {
			name, _, ok := cr.Next()
			if !ok {
				break
			}
			seen = append(seen, name)
		}
		if !cr.Truncated() {
			t.Fatalf("cut %d: truncation not reported", cut)
		}
		if !slices.Equal(seen, popColumnOrder[:cut]) {
			t.Fatalf("cut %d: recovered %v", cut, seen)
		}

		// The high-level reader cannot assemble without the lost columns.
		_, truncated, err := ReadFramedPopulation(bytes.NewReader(damaged.Bytes()))
		if !truncated {
			t.Fatalf("cut %d: ReadFramedPopulation did not report truncation", cut)
		}
		if !errors.Is(err, ErrPopIncomplete) {
			t.Fatalf("cut %d: err = %v, want ErrPopIncomplete", cut, err)
		}
	}
}

// TestPopFramedBitFlipDropsTail flips one payload bit inside a mid-file
// column frame; the checksum catches it and the stream truncates there.
func TestPopFramedBitFlipDropsTail(t *testing.T) {
	pop := mustTinyPopulation(t)
	lines := popLines(t, pop)
	const victim = 5 // the as_prefixes column frame (line 0 is the header)
	flipped := append([]byte(nil), lines[victim]...)
	flipped[len(flipped)/2] ^= 0x08
	var damaged bytes.Buffer
	for i, line := range lines {
		if i == victim {
			line = flipped
		}
		damaged.Write(line)
		damaged.WriteByte('\n')
	}
	cr, err := NewPopColumnReader(bytes.NewReader(damaged.Bytes()))
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	var seen []string
	for {
		name, _, ok := cr.Next()
		if !ok {
			break
		}
		seen = append(seen, name)
	}
	if !cr.Truncated() {
		t.Fatal("bit flip not reported as truncation")
	}
	if !slices.Equal(seen, popColumnOrder[:victim-1]) {
		t.Fatalf("recovered %v, want the %d-column prefix", seen, victim-1)
	}
}

// TestPopFramedTrailingGarbage checks damage after the last column still
// yields the complete population, flagged truncated.
func TestPopFramedTrailingGarbage(t *testing.T) {
	pop := mustTinyPopulation(t)
	var buf bytes.Buffer
	if err := WriteFramedPopulation(&buf, pop); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf.WriteString(`{"sum":"00000000","p":{"c":"junk","v":[]}}` + "\n")
	got, truncated, err := ReadFramedPopulation(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !truncated {
		t.Fatal("trailing garbage not reported as truncation")
	}
	if !reflect.DeepEqual(got.Nodes, pop.Nodes) {
		t.Fatal("population damaged by trailing garbage")
	}
}

// TestPopFramedHeaderErrors checks the hard-error cases: empty input, wrong
// schema, garbage header.
func TestPopFramedHeaderErrors(t *testing.T) {
	if _, _, err := ReadFramedPopulation(bytes.NewReader(nil)); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("empty input: %v", err)
	}
	hdr, err := checkpoint.EncodeFrame([]byte(`{"schema":"pop.v9","ases":0,"nodes":0,"columns":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFramedPopulation(bytes.NewReader(hdr)); !errors.Is(err, ErrPopSchema) {
		t.Fatalf("wrong schema: %v", err)
	}
	if _, _, err := ReadFramedPopulation(bytes.NewReader([]byte("not a frame\n"))); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("garbage header: %v", err)
	}
}
