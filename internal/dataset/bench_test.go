package dataset

import (
	"bytes"
	"testing"
	"time"
)

// BenchmarkGenerate measures full population synthesis (13,635 nodes,
// 1,660 ASes, topology included).
func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(int64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritePopV1 measures archiving the full population in the
// columnar pop.v1 format (21 column frames over 13,635 rows).
func BenchmarkWritePopV1(b *testing.B) {
	pop, err := Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFramedPopulation(&buf, pop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadPopV1 measures loading and reassembling a pop.v1 archive,
// derived topology included.
func BenchmarkReadPopV1(b *testing.B) {
	pop, err := Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFramedPopulation(&buf, pop); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadFramedPopulation(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceDay measures one day of the lag process at 10-minute
// sampling over the full population.
func BenchmarkTraceDay(b *testing.B) {
	pop, err := Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pop.RunTrace(TraceConfig{
			Duration:    24 * time.Hour,
			SampleEvery: 10 * time.Minute,
			Seed:        int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceDayTracked adds the per-AS sync tracking Figure 8 needs.
func BenchmarkTraceDayTracked(b *testing.B) {
	pop, err := Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pop.RunTrace(TraceConfig{
			Duration:        24 * time.Hour,
			SampleEvery:     10 * time.Minute,
			Seed:            int64(i),
			TrackSyncedByAS: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxVulnerable measures the Table V optimization over a week of
// samples.
func BenchmarkMaxVulnerable(b *testing.B) {
	pop, err := Generate(1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := pop.RunTrace(TraceConfig{
		Duration:    7 * 24 * time.Hour,
		SampleEvery: 10 * time.Minute,
		Seed:        3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := tr.MaxVulnerable(); len(rows) != 9 {
			b.Fatal("bad rows")
		}
	}
}
