package dataset

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
)

// FuzzReadFramedPopulation hammers the columnar population loader with
// arbitrary bytes (the committed corpus seeds it with a clean file, a
// truncated file, and a bit-flipped file). Invariants: never panic; a clean
// read (nil error, no truncation) round-trips — re-encoding and re-reading
// reproduces the same tables; an incomplete file reports ErrPopIncomplete
// only alongside truncation or column damage, and the streaming reader
// always yields a prefix of the header's declared column order for canonical
// files.
func FuzzReadFramedPopulation(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		pop, truncated, err := ReadFramedPopulation(bytes.NewReader(data))
		if err == nil && pop == nil {
			t.Fatal("nil population with nil error")
		}
		if errors.Is(err, ErrPopSchema) || errors.Is(err, checkpoint.ErrCorrupt) {
			if pop != nil {
				t.Fatal("population returned with hard error")
			}
		}
		if err == nil && !truncated {
			var buf bytes.Buffer
			if err := WriteFramedPopulation(&buf, pop); err != nil {
				t.Fatalf("re-encode recovered population: %v", err)
			}
			again, trunc2, err := ReadFramedPopulation(bytes.NewReader(buf.Bytes()))
			if err != nil || trunc2 {
				t.Fatalf("re-read of re-encoded population: truncated=%v err=%v", trunc2, err)
			}
			if !reflect.DeepEqual(again.Nodes, pop.Nodes) || !reflect.DeepEqual(again.ASRows, pop.ASRows) {
				t.Fatal("round trip of recovered population differs")
			}
		}

		// The streaming reader over the same bytes must never panic; drain it
		// and check a clean end never also claims truncation.
		cr, crErr := NewPopColumnReader(bytes.NewReader(data))
		if crErr != nil {
			return
		}
		for {
			if _, _, ok := cr.Next(); !ok {
				break
			}
		}
		if err == nil && !truncated && cr.Truncated() {
			t.Fatal("column reader truncated where full reader was clean")
		}
	})
}
