package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
)

// specFixtures spans the spec space: defaults, every scale knob, sharding,
// and a fault preset.
func specFixtures(t *testing.T) []Spec {
	t.Helper()
	churny, err := faults.Preset("churny")
	if err != nil {
		t.Fatal(err)
	}
	return []Spec{
		{Schema: SpecSchemaV1, Run: Command{Verb: "experiment", Name: "all"}, Seed: 1},
		{Schema: SpecSchemaV1, Run: Command{Verb: "attack", Name: "spatial"}, Seed: 7,
			TableVTraceDays: 5, Figure6aDays: 2, GridSize: 30, NetworkNodes: 200},
		{Schema: SpecSchemaV1, Run: Command{Verb: "experiment", Name: "figure7"}, Seed: 3,
			Workers: 8, StepBudget: 500, Shards: 4, ShardWorkers: 2},
		{Schema: SpecSchemaV1, Run: Command{Verb: "defend", Name: "stratum"}, Seed: 2,
			Faults: churny},
	}
}

// TestSpecRoundTrip is the satellite-1 property: spec → Options() →
// SpecFromOptions is the identity, and JSON round-trips losslessly.
func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range specFixtures(t) {
		back := SpecFromOptions(spec.Seed, spec.Options()...)
		back.Run = spec.Run
		if !reflect.DeepEqual(back, spec) {
			t.Errorf("options round-trip not identity:\n got %+v\nwant %+v", back, spec)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("parse %s: %v", data, err)
		}
		if !reflect.DeepEqual(parsed, spec) {
			t.Errorf("JSON round-trip not identity:\n got %+v\nwant %+v", parsed, spec)
		}
	}
}

// TestSpecCanonicalJSONFieldOrder pins the canonical rendering: declaration
// order, schema first, stable forever (the fingerprint hashes these bytes).
func TestSpecCanonicalJSONFieldOrder(t *testing.T) {
	spec := Spec{
		Schema: SpecSchemaV1,
		Run:    Command{Verb: "experiment", Name: "all"},
		Seed:   1,
	}
	doc, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"schema":"spec.v1","run":{"verb":"experiment","name":"all"},"seed":1,` +
		`"tablev_trace_days":3,"figure6a_days":3,"grid_size":25,"network_nodes":150,"faults":`
	if !strings.HasPrefix(string(doc), want) {
		t.Errorf("canonical JSON drifted:\n got %s\nwant prefix %s", doc, want)
	}
}

// TestSpecFingerprintEquivalence: specs that produce byte-identical output
// share a fingerprint; specs that differ in output do not.
func TestSpecFingerprintEquivalence(t *testing.T) {
	base := Spec{Schema: SpecSchemaV1, Run: Command{Verb: "experiment", Name: "all"}, Seed: 1}
	fp := func(s Spec) string {
		t.Helper()
		got, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	baseFP := fp(base)

	// Output-neutral knobs collapse.
	same := base
	same.Workers = 8
	if fp(same) != baseFP {
		t.Error("workers changed the fingerprint")
	}
	explicit := base
	explicit.TableVTraceDays, explicit.Figure6aDays = 3, 3
	explicit.GridSize, explicit.NetworkNodes = 25, 150
	if fp(explicit) != baseFP {
		t.Error("explicit defaults fingerprint differently from zeros")
	}
	sharded := base
	sharded.Shards = 4
	sharded.ShardWorkers = 3
	sharded16 := base
	sharded16.Shards = 16
	if fp(sharded) != fp(sharded16) {
		t.Error("shard count >= 1 changed the fingerprint")
	}
	if fp(sharded) == baseFP {
		t.Error("engine selection (sharded vs legacy) did not change the fingerprint")
	}

	// Output-changing knobs split.
	for name, mutate := range map[string]func(*Spec){
		"seed":         func(s *Spec) { s.Seed = 2 },
		"grid size":    func(s *Spec) { s.GridSize = 30 },
		"step budget":  func(s *Spec) { s.StepBudget = 100 },
		"fault preset": func(s *Spec) { s.Faults = faults.Flaky() },
		"command":      func(s *Spec) { s.Run = Command{Verb: "attack", Name: "temporal"} },
	} {
		diff := base
		mutate(&diff)
		if fp(diff) == baseFP {
			t.Errorf("%s did not change the fingerprint", name)
		}
	}
}

// TestSpecValidate covers the rejection paths.
func TestSpecValidate(t *testing.T) {
	ok := Spec{Schema: SpecSchemaV1, Run: Command{Verb: "experiment", Name: "all"}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := map[string]func(*Spec){
		"schema":                func(s *Spec) { s.Schema = "spec.v9" },
		"verb":                  func(s *Spec) { s.Run.Verb = "banana" },
		"empty name":            func(s *Spec) { s.Run.Name = "" },
		"negative grid":         func(s *Spec) { s.GridSize = -1 },
		"shard workers alone":   func(s *Spec) { s.ShardWorkers = 2 },
		"negative shard count":  func(s *Spec) { s.Shards = -3 },
		"negative trace window": func(s *Spec) { s.TableVTraceDays = -1 },
	}
	for name, mutate := range cases {
		bad := ok
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
}

// TestParseSpecRejectsUnknownFields: a misspelled knob must not silently
// revert to its default (it would poison the content-addressed cache).
func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"schema":"spec.v1","run":{"verb":"experiment","name":"all"},"seed":1,"grid_sise":30}`))
	if err == nil || !strings.Contains(err.Error(), "grid_sise") {
		t.Errorf("unknown field accepted (err=%v)", err)
	}
}

// TestNewFromSpec ties the spec to the constructor: the built study carries
// the spec's options, and SpecFromStudy inverts it.
func TestNewFromSpec(t *testing.T) {
	spec := Spec{
		Schema: SpecSchemaV1, Run: Command{Verb: "experiment", Name: "all"},
		Seed: 1, GridSize: 30, Workers: 2,
	}
	s, err := NewFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed() != 1 || s.Opts.GridSize != 30 || s.Opts.Workers != 2 {
		t.Fatalf("study options %+v do not match spec", s.Opts)
	}
	// withDefaults filled the unset windows; the re-captured spec reflects
	// the study as built.
	back := SpecFromStudy(s, spec.Run)
	if back.GridSize != 30 || back.TableVTraceDays != 3 || back.Run != spec.Run {
		t.Errorf("SpecFromStudy = %+v", back)
	}
	// Both sides agree on the canonical fingerprint.
	fpSpec, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpBack, err := back.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpSpec != fpBack {
		t.Error("spec and SpecFromStudy fingerprints disagree")
	}
}
