package core

import (
	"fmt"

	"repro/internal/parallel"
)

// The tables and figures of the paper's evaluation are mutually independent
// read-only computations over the study's population, so regenerating the
// whole evaluation is an embarrassingly parallel workload. RunAll fans the
// experiments across workers and returns the rendered outputs in
// presentation order, byte-identical to running them one by one.

// ExperimentOutput is one regenerated table or figure.
type ExperimentOutput struct {
	// Name is the CLI experiment name (table1..table8, figure1..figure8
	// with figure6a/b/c).
	Name string
	// Text is the paper-style rendering.
	Text string
}

// experiment pairs a name with its renderer.
type experiment struct {
	name string
	run  func(*Study) (string, error)
}

// experiments lists the whole evaluation in presentation order. Every
// runner is read-only on the study (the conventions §6 contract), which is
// what makes the fan-out safe.
func experiments() []experiment {
	return []experiment{
		{"table1", func(s *Study) (string, error) { return s.TableI().Render(), nil }},
		{"table2", func(s *Study) (string, error) { return s.TableII().Render(), nil }},
		{"table3", renderErr((*Study).TableIII)},
		{"table4", renderErr((*Study).TableIV)},
		{"table5", renderErr((*Study).TableV)},
		{"table6", renderErr((*Study).TableVI)},
		{"table7", renderErr((*Study).TableVII)},
		{"table8", func(s *Study) (string, error) { return s.TableVIII().Render(), nil }},
		{"figure1", (*Study).Figure1Demo},
		{"figure2", (*Study).Figure2Demo},
		{"figure3", renderErr((*Study).Figure3)},
		{"figure4", renderErr((*Study).Figure4)},
		{"figure5", func(s *Study) (string, error) { _, out, err := s.Figure5Demo(); return out, err }},
		{"figure6a", figure6Variant(Figure6a)},
		{"figure6b", figure6Variant(Figure6b)},
		{"figure6c", figure6Variant(Figure6c)},
		{"figure7", renderErr((*Study).Figure7)},
		{"figure8", renderErr((*Study).Figure8)},
	}
}

// renderable is any experiment result with a paper-style rendering.
type renderable interface{ Render() string }

// renderErr adapts a (result, error) runner to the (string, error) shape.
func renderErr[R renderable](run func(*Study) (R, error)) func(*Study) (string, error) {
	return func(s *Study) (string, error) {
		r, err := run(s)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}
}

func figure6Variant(v Figure6Variant) func(*Study) (string, error) {
	return func(s *Study) (string, error) {
		r, err := s.Figure6(v)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}
}

// ExperimentNames returns the evaluation's experiment names in presentation
// order — the set RunAll regenerates.
func ExperimentNames() []string {
	exps := experiments()
	names := make([]string, len(exps))
	for i, e := range exps {
		names[i] = e.name
	}
	return names
}

// RunAll regenerates every table and figure of the evaluation, fanning the
// experiments across workers (<= 0 means one per CPU; the study's
// configured Workers bound applies inside each experiment as well). The
// outputs come back in presentation order and are identical for any worker
// count.
func (s *Study) RunAll(workers int) ([]ExperimentOutput, error) {
	return parallel.Sweep(workers, experiments(),
		func(_ int, e experiment) (ExperimentOutput, error) {
			text, err := e.run(s)
			if err != nil {
				return ExperimentOutput{}, fmt.Errorf("%s: %w", e.name, err)
			}
			return ExperimentOutput{Name: e.name, Text: text}, nil
		})
}
