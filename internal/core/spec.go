package core

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/faults"
)

// A Spec is the serializable form of a study invocation: the generation
// seed, every option that core.New accepts, and the command to run
// (experiment/attack/defend/export plus its name). It is the wire format of
// the partitiond service (DESIGN.md §14) and the value the CLI now builds
// from its flags, so daemon and CLI share one entry point.
//
// The contract is lossless round-tripping: Spec → Options() → SpecFromOptions
// is the identity, and json.Marshal emits fields in the fixed declaration
// order below, so a spec's canonical rendering — Canonical() with the
// output-neutral knobs normalized away — is a stable document whose FNV
// fingerprint content-addresses the result cache and the resume journals
// alike.

// SpecSchemaV1 names the first (current) spec schema. Every serialized spec
// carries it; readers reject unknown schemas.
const SpecSchemaV1 = "spec.v1"

// ErrSpecSchema marks a spec document with an unknown schema version.
var errSpecSchema = fmt.Errorf("core: unknown spec schema (want %q)", SpecSchemaV1)

// Command selects what a spec runs: a CLI-style verb plus the name the
// verb's registry resolves ("experiment all", "attack spatial", ...).
type Command struct {
	// Verb is one of "experiment", "attack", "defend", "export".
	Verb string `json:"verb"`
	// Name is the experiment/plan/defense/export name the verb dispatches.
	Name string `json:"name"`
}

// String renders the command the way the CLI spells it.
func (c Command) String() string { return c.Verb + " " + c.Name }

// Spec is one serializable study invocation. Field order is canonical: the
// JSON rendering follows this declaration order, and tests pin it.
type Spec struct {
	// Schema is always SpecSchemaV1.
	Schema string `json:"schema"`
	// Run is the command this spec executes.
	Run Command `json:"run"`
	// Seed is the generation seed (the CLI's -seed).
	Seed int64 `json:"seed"`
	// The remaining fields mirror Options one-to-one; zero values select
	// the same defaults core.New applies. See Options for semantics.
	TableVTraceDays int             `json:"tablev_trace_days,omitempty"`
	Figure6aDays    int             `json:"figure6a_days,omitempty"`
	GridSize        int             `json:"grid_size,omitempty"`
	NetworkNodes    int             `json:"network_nodes,omitempty"`
	Workers         int             `json:"workers,omitempty"`
	StepBudget      int             `json:"step_budget,omitempty"`
	Shards          int             `json:"shards,omitempty"`
	ShardWorkers    int             `json:"shard_workers,omitempty"`
	Faults          faults.Scenario `json:"faults"`
}

// SpecFromOptions captures a seed and a functional-option list as a Spec —
// the exact values the options set, defaults not yet applied, so the
// round-trip with Spec.Options is the identity.
func SpecFromOptions(seed int64, opts ...Option) Spec {
	var o Options
	for _, apply := range opts {
		apply(&o)
	}
	return specFromRawOptions(seed, o)
}

// specFromRawOptions wraps an un-defaulted Options value.
func specFromRawOptions(seed int64, o Options) Spec {
	return Spec{
		Schema:          SpecSchemaV1,
		Seed:            seed,
		TableVTraceDays: o.TableVTraceDays,
		Figure6aDays:    o.Figure6aDays,
		GridSize:        o.GridSize,
		NetworkNodes:    o.NetworkNodes,
		Workers:         o.Workers,
		StepBudget:      o.StepBudget,
		Shards:          o.Shards,
		ShardWorkers:    o.ShardWorkers,
		Faults:          o.Faults,
	}
}

// Options reconstructs the functional-option list the spec was captured
// from. SpecFromOptions(s.Seed, s.Options()...) equals s for any spec.
func (s Spec) Options() []Option {
	return []Option{
		WithWindows(s.TableVTraceDays, s.Figure6aDays),
		WithGridSize(s.GridSize),
		WithNetworkNodes(s.NetworkNodes),
		WithWorkers(s.Workers),
		WithStepBudget(s.StepBudget),
		WithShards(s.Shards),
		WithShardWorkers(s.ShardWorkers),
		WithFaults(s.Faults),
	}
}

// Validate checks the structural invariants a spec must hold before it is
// run or fingerprinted: a known schema, a known verb, a non-empty name, and
// non-negative scale fields. Name resolution happens at dispatch, where the
// verb's registry owns the error text.
func (s Spec) Validate() error {
	if s.Schema != SpecSchemaV1 {
		return fmt.Errorf("%w, got %q", errSpecSchema, s.Schema)
	}
	switch s.Run.Verb {
	case "experiment", "attack", "defend", "export":
	default:
		return fmt.Errorf("core: unknown spec verb %q (experiment, attack, defend, export)", s.Run.Verb)
	}
	if s.Run.Name == "" {
		return fmt.Errorf("core: spec has no command name")
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"tablev_trace_days", s.TableVTraceDays},
		{"figure6a_days", s.Figure6aDays},
		{"grid_size", s.GridSize},
		{"network_nodes", s.NetworkNodes},
		{"step_budget", s.StepBudget},
		{"shards", s.Shards},
		{"shard_workers", s.ShardWorkers},
	} {
		if f.v < 0 {
			return fmt.Errorf("core: spec field %s is negative (%d)", f.name, f.v)
		}
	}
	if s.ShardWorkers != 0 && s.Shards == 0 {
		return fmt.Errorf("core: spec sets shard_workers without shards")
	}
	return nil
}

// Canonical returns the cache-key form of the spec: defaults applied (so a
// zero GridSize and an explicit 25 canonicalize identically) and the knobs
// that never change output normalized away — Workers and ShardWorkers are
// zeroed (output is byte-identical at any worker count), and Shards
// collapses to 1 for every count >= 1 (the sharded engine is byte-identical
// across shard counts; only the 0-vs-sharded engine split is kept, matching
// the journal-fingerprint discipline of DESIGN.md §13).
func (s Spec) Canonical() Spec {
	o := Options{
		TableVTraceDays: s.TableVTraceDays,
		Figure6aDays:    s.Figure6aDays,
		GridSize:        s.GridSize,
		NetworkNodes:    s.NetworkNodes,
		StepBudget:      s.StepBudget,
		Shards:          s.Shards,
		ShardWorkers:    s.ShardWorkers,
		Faults:          s.Faults,
	}.withDefaults()
	c := specFromRawOptions(s.Seed, o)
	c.Run = s.Run
	c.Workers = 0
	c.ShardWorkers = 0
	if c.Shards >= 1 {
		c.Shards = 1
	}
	return c
}

// CanonicalJSON renders the canonical form as its stable JSON document:
// declaration-order fields, no indentation, one trailing newline stripped.
func (s Spec) CanonicalJSON() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s.Canonical())
}

// Fingerprint content-addresses the spec: the FNV study fingerprint of the
// canonical JSON document (checkpoint.StudyFingerprint). Two specs share a
// fingerprint exactly when their results are byte-identical by the repo's
// determinism contracts, so it is the key of the partitiond result cache
// and of the resume journal a checkpointed run writes.
func (s Spec) Fingerprint() (string, error) {
	canonical, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	return checkpoint.StudyFingerprint(SpecSchemaV1, canonical), nil
}

// ParseSpec decodes and validates a serialized spec. Unknown fields are
// rejected: a misspelled knob silently reverting to its default would
// poison the content-addressed cache.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("core: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// NewFromSpec builds the study a spec describes — the one constructor the
// CLI and the daemon share. Extra options (an observer, say) are applied on
// top of the spec's own; they must be output-neutral.
func NewFromSpec(s Spec, extra ...Option) (*Study, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return New(s.Seed, append(s.Options(), extra...)...)
}

// SpecFromStudy captures an existing study's configuration as a Spec with
// the given command. Workers is preserved (it is part of the invocation,
// not of the canonical identity).
func SpecFromStudy(s *Study, run Command) Spec {
	spec := specFromRawOptions(s.seed, s.Opts)
	spec.Run = run
	return spec
}
