package core

import (
	"reflect"
	"strings"
	"testing"
)

func workerStudy(t *testing.T, workers int) *Study {
	t.Helper()
	s, err := New(1,
		WithWindows(1, 1),
		WithGridSize(25),
		WithNetworkNodes(120),
		WithWorkers(workers),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPopulationMemoized(t *testing.T) {
	a, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pop != b.Pop {
		t.Error("same seed built two populations")
	}
	c, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pop == a.Pop {
		t.Error("different seeds share a population")
	}
}

// TestRunAllSurfacesExperimentError pins the bugfix for silently partial
// sweeps: when one experiment fails (here Figure 6a, via an invalid trend
// window), RunAll and Figure6All must return a nil result set and the
// named error — not a slice with zero-valued rows in the failed slots.
func TestRunAllSurfacesExperimentError(t *testing.T) {
	s, err := New(1,
		WithWindows(1, -1), // Figure6aDays < 0: the figure6a trace fails
		WithGridSize(25),
		WithNetworkNodes(120),
	)
	if err != nil {
		t.Fatal(err)
	}
	outputs, err := s.RunAll(0)
	if err == nil {
		t.Fatal("RunAll succeeded with an invalid Figure 6a window")
	}
	if !strings.Contains(err.Error(), "figure6a") {
		t.Errorf("error %q does not name the failing experiment", err)
	}
	if outputs != nil {
		t.Errorf("RunAll leaked %d partial outputs alongside the error", len(outputs))
	}
	panels, err := s.Figure6All()
	if err == nil {
		t.Fatal("Figure6All succeeded with an invalid Figure 6a window")
	}
	if panels != nil {
		t.Errorf("Figure6All leaked %d partial panels alongside the error", len(panels))
	}
}

func TestRunAllNamesAndOrder(t *testing.T) {
	s := testStudy(t)
	outputs, err := s.RunAll(0)
	if err != nil {
		t.Fatal(err)
	}
	names := ExperimentNames()
	if len(outputs) != len(names) {
		t.Fatalf("outputs = %d, want %d", len(outputs), len(names))
	}
	for i, out := range outputs {
		if out.Name != names[i] {
			t.Errorf("slot %d: %q, want %q", i, out.Name, names[i])
		}
		if out.Text == "" {
			t.Errorf("%s: empty rendering", out.Name)
		}
	}
	if !strings.Contains(outputs[0].Text, "Table I") {
		t.Error("table1 rendering wrong")
	}
	if !strings.Contains(outputs[len(outputs)-1].Text, "Figure 8") {
		t.Error("figure8 rendering wrong")
	}
}

// TestRunAllDeterministicAcrossWorkers is the ISSUE's regression contract
// at the orchestration layer: the full rendered evaluation is byte-identical
// for workers ∈ {1, 2, 8}.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation × 3 worker counts")
	}
	baseline, err := workerStudy(t, 1).RunAll(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := workerStudy(t, workers).RunAll(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, baseline) {
			for i := range baseline {
				if got[i] != baseline[i] {
					t.Errorf("workers=%d: %s diverged", workers, baseline[i].Name)
				}
			}
		}
	}
}

// TestFigure4DeterministicAcrossWorkers pins the parallel per-AS hijack
// sweep to the sequential rendering.
func TestFigure4DeterministicAcrossWorkers(t *testing.T) {
	base, err := workerStudy(t, 1).Figure4()
	if err != nil {
		t.Fatal(err)
	}
	want := base.Render()
	for _, workers := range []int{2, 8} {
		r, err := workerStudy(t, workers).Figure4()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r.Render() != want {
			t.Errorf("workers=%d: Figure 4 diverged", workers)
		}
	}
}

// TestFigure6AllDeterministicAcrossWorkers pins the concurrent panel set.
func TestFigure6AllDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) []string {
		rs, err := workerStudy(t, workers).Figure6All()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = r.Render()
		}
		return out
	}
	want := render(1)
	if len(want) != 3 {
		t.Fatalf("panels = %d", len(want))
	}
	for _, workers := range []int{2, 8} {
		if got := render(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: Figure 6 panels diverged", workers)
		}
	}
}

// TestTableVDeterministicAcrossWorkers pins the parallel lag-window scan.
func TestTableVDeterministicAcrossWorkers(t *testing.T) {
	base, err := workerStudy(t, 1).TableV()
	if err != nil {
		t.Fatal(err)
	}
	want := base.Render()
	for _, workers := range []int{2, 8} {
		r, err := workerStudy(t, workers).TableV()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r.Render() != want {
			t.Errorf("workers=%d: Table V diverged", workers)
		}
	}
}
