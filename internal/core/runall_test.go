package core

import (
	"reflect"
	"strings"
	"testing"
)

func workerStudy(t *testing.T, workers int) *Study {
	t.Helper()
	s, err := NewStudyWithOptions(1, Options{
		TableVTraceDays: 1,
		Figure6aDays:    1,
		GridSize:        25,
		NetworkNodes:    120,
		Workers:         workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPopulationMemoized(t *testing.T) {
	a, err := NewStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pop != b.Pop {
		t.Error("same seed built two populations")
	}
	c, err := NewStudy(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Pop == a.Pop {
		t.Error("different seeds share a population")
	}
}

func TestRunAllNamesAndOrder(t *testing.T) {
	s := testStudy(t)
	outputs, err := s.RunAll(0)
	if err != nil {
		t.Fatal(err)
	}
	names := ExperimentNames()
	if len(outputs) != len(names) {
		t.Fatalf("outputs = %d, want %d", len(outputs), len(names))
	}
	for i, out := range outputs {
		if out.Name != names[i] {
			t.Errorf("slot %d: %q, want %q", i, out.Name, names[i])
		}
		if out.Text == "" {
			t.Errorf("%s: empty rendering", out.Name)
		}
	}
	if !strings.Contains(outputs[0].Text, "Table I") {
		t.Error("table1 rendering wrong")
	}
	if !strings.Contains(outputs[len(outputs)-1].Text, "Figure 8") {
		t.Error("figure8 rendering wrong")
	}
}

// TestRunAllDeterministicAcrossWorkers is the ISSUE's regression contract
// at the orchestration layer: the full rendered evaluation is byte-identical
// for workers ∈ {1, 2, 8}.
func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation × 3 worker counts")
	}
	baseline, err := workerStudy(t, 1).RunAll(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := workerStudy(t, workers).RunAll(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, baseline) {
			for i := range baseline {
				if got[i] != baseline[i] {
					t.Errorf("workers=%d: %s diverged", workers, baseline[i].Name)
				}
			}
		}
	}
}

// TestFigure4DeterministicAcrossWorkers pins the parallel per-AS hijack
// sweep to the sequential rendering.
func TestFigure4DeterministicAcrossWorkers(t *testing.T) {
	base, err := workerStudy(t, 1).Figure4()
	if err != nil {
		t.Fatal(err)
	}
	want := base.Render()
	for _, workers := range []int{2, 8} {
		r, err := workerStudy(t, workers).Figure4()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r.Render() != want {
			t.Errorf("workers=%d: Figure 4 diverged", workers)
		}
	}
}

// TestFigure6AllDeterministicAcrossWorkers pins the concurrent panel set.
func TestFigure6AllDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) []string {
		rs, err := workerStudy(t, workers).Figure6All()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = r.Render()
		}
		return out
	}
	want := render(1)
	if len(want) != 3 {
		t.Fatalf("panels = %d", len(want))
	}
	for _, workers := range []int{2, 8} {
		if got := render(workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: Figure 6 panels diverged", workers)
		}
	}
}

// TestTableVDeterministicAcrossWorkers pins the parallel lag-window scan.
func TestTableVDeterministicAcrossWorkers(t *testing.T) {
	base, err := workerStudy(t, 1).TableV()
	if err != nil {
		t.Fatal(err)
	}
	want := base.Render()
	for _, workers := range []int{2, 8} {
		r, err := workerStudy(t, workers).TableV()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if r.Render() != want {
			t.Errorf("workers=%d: Table V diverged", workers)
		}
	}
}
