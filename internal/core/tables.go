package core

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/measure"
	"repro/internal/mining"
	"repro/internal/topology"
	"repro/internal/vulndb"
)

// renderTable is the shared tabwriter helper: header row then data rows.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	// Explicit discard: tabwriter.Flush only fails when the underlying
	// writer fails, and strings.Builder never does.
	_ = tw.Flush()
	return b.String()
}

// TableIResult reproduces Table I: node characteristics per address family.
type TableIResult struct {
	Rows []measure.TableIRow
}

// TableI recomputes node characteristics over the population.
func (s *Study) TableI() *TableIResult {
	return &TableIResult{Rows: measure.CharacterizeFamilies(s.Pop)}
}

// Render formats the result like the paper's Table I.
func (r *TableIResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Family.String(),
			fmt.Sprintf("%d", row.Count),
			fmt.Sprintf("%.2f", row.LinkSpeed.Mean),
			fmt.Sprintf("%.2f", row.LinkSpeed.Std),
			fmt.Sprintf("%.2f", row.LatencyIndex.Mean),
			fmt.Sprintf("%.2f", row.LatencyIndex.Std),
			fmt.Sprintf("%.2f", row.UptimeIndex.Mean),
			fmt.Sprintf("%.2f", row.UptimeIndex.Std),
		})
	}
	return renderTable(
		"Table I: node characteristics by address family",
		[]string{"Type", "Count", "Speed μ", "Speed σ", "Latency μ", "Latency σ", "Uptime μ", "Uptime σ"},
		rows)
}

// TableIIResult reproduces Table II: top-10 ASes and organizations.
type TableIIResult struct {
	ASes []measure.HostRow
	Orgs []measure.HostRow
}

// TableII recomputes the top-10 hosting table.
func (s *Study) TableII() *TableIIResult {
	return &TableIIResult{
		ASes: measure.TopASes(s.Pop, 10),
		Orgs: measure.TopOrgs(s.Pop, 10),
	}
}

// Render formats both columns of Table II.
func (r *TableIIResult) Render() string {
	rows := make([][]string, 0, len(r.ASes))
	for i := range r.ASes {
		as, org := r.ASes[i], r.Orgs[i]
		rows = append(rows, []string{
			as.Label, fmt.Sprintf("%d", as.Nodes), fmt.Sprintf("%.2f%%", as.Fraction*100),
			org.Label, fmt.Sprintf("%d", org.Nodes), fmt.Sprintf("%.2f%%", org.Fraction*100),
		})
	}
	return renderTable(
		"Table II: top 10 ASes and organizations",
		[]string{"AS", "Nodes", "%", "Organization", "Nodes", "%"},
		rows)
}

// TableIIIResult reproduces Table III: centralization change 2017 -> 2018.
type TableIIIResult struct {
	Rows []measure.ChangeRow
}

// TableIII recomputes the centralization change against the 2017 baseline.
func (s *Study) TableIII() (*TableIIIResult, error) {
	rows, err := measure.CentralizationChange(s.Pop)
	if err != nil {
		return nil, err
	}
	return &TableIIIResult{Rows: rows}, nil
}

// Render formats Table III.
func (r *TableIIIResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("ASes with %.0f%% nodes", row.Fraction*100),
			fmt.Sprintf("%d", row.ASes2017),
			fmt.Sprintf("%d", row.ASes2018),
			fmt.Sprintf("%.0f%%", row.ChangePct),
		})
	}
	return renderTable(
		"Table III: distribution of Bitcoin full nodes over time",
		[]string{"", "2017", "2018", "Change %"},
		rows)
}

// TableIVResult reproduces Table IV: top mining pools and their stratum
// placement, plus the derived isolation shares.
type TableIVResult struct {
	Pools []mining.Pool
	// ThreeASShare is the hash share behind {AS37963, AS45102, AS58563}.
	ThreeASShare float64
	// AliBabaShare is the share behind the AliBaba organization.
	AliBabaShare float64
}

// TableIV recomputes the mining-pool table and its headline shares.
func (s *Study) TableIV() (*TableIVResult, error) {
	pools := dataset.TableIV()
	set, err := mining.NewPoolSet(pools)
	if err != nil {
		return nil, err
	}
	return &TableIVResult{
		Pools: pools,
		ThreeASShare: set.ShareBehindASes(map[topology.ASN]bool{
			37963: true, 45102: true, 58563: true,
		}),
		AliBabaShare: set.ShareBehindOrg("AliBaba"),
	}, nil
}

// Render formats Table IV.
func (r *TableIVResult) Render() string {
	rows := make([][]string, 0, len(r.Pools))
	for _, p := range r.Pools {
		ases := make([]string, 0, len(p.StratumASes))
		for _, a := range p.StratumASes {
			ases = append(ases, fmt.Sprintf("AS%d", a))
		}
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%.1f%%", p.HashShare*100),
			strings.Join(ases, " "),
			p.StratumOrg,
		})
	}
	out := renderTable(
		"Table IV: top 5 mining pools per hash rate, ASes, and organizations",
		[]string{"Pool", "Hash %", "ASes", "Org"},
		rows)
	return out + fmt.Sprintf("3 ASes carry %.1f%% of hash rate; AliBaba alone %.1f%%\n",
		r.ThreeASShare*100, r.AliBabaShare*100)
}

// TableVResult reproduces Table V: the maximum number of vulnerable nodes
// per timing constraint.
type TableVResult struct {
	Rows []dataset.VulnRow
}

// TableV runs the lag trace and the vulnerability optimization, scanning
// the nine timing windows across the study's workers.
func (s *Study) TableV() (*TableVResult, error) {
	tr, err := s.runTrace(time.Duration(s.Opts.TableVTraceDays)*24*time.Hour, 10*time.Minute, 5, false)
	if err != nil {
		return nil, err
	}
	rows, err := tr.MaxVulnerableParallel(s.Opts.Workers)
	if err != nil {
		return nil, err
	}
	return &TableVResult{Rows: rows}, nil
}

// Render formats Table V.
func (r *TableVResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", row.Window.Minutes()),
			fmt.Sprintf("%d (%.2f%%)", row.Max[0], row.Frac[0]*100),
			fmt.Sprintf("%d (%.2f%%)", row.Max[1], row.Frac[1]*100),
			fmt.Sprintf("%d (%.2f%%)", row.Max[2], row.Frac[2]*100),
		})
	}
	return renderTable(
		"Table V: maximum number of vulnerable nodes",
		[]string{"T (min)", ">=1 block", ">=2 blocks", ">=5 blocks"},
		rows)
}

// TableVIResult reproduces Table VI: minimum timing constraint to isolate m
// nodes at success probability 0.8.
type TableVIResult struct {
	Table *attack.TimingTable
}

// TableVI evaluates the theoretical bound over the paper's grid.
func (s *Study) TableVI() (*TableVIResult, error) {
	lambdas, ms := attack.PaperTimingGrid()
	table, err := attack.ComputeTimingTable(lambdas, ms, 0.8)
	if err != nil {
		return nil, err
	}
	return &TableVIResult{Table: table}, nil
}

// Render formats Table VI.
func (r *TableVIResult) Render() string {
	header := []string{"λ \\ m"}
	for _, m := range r.Table.Ms {
		header = append(header, fmt.Sprintf("%d", m))
	}
	rows := make([][]string, 0, len(r.Table.Lambdas))
	for i, l := range r.Table.Lambdas {
		row := []string{fmt.Sprintf("%.1f", l)}
		for j := range r.Table.Ms {
			row = append(row, fmt.Sprintf("%d", r.Table.Seconds[i][j]))
		}
		rows = append(rows, row)
	}
	return renderTable(
		fmt.Sprintf("Table VI: minimum timing constraint T (seconds) to isolate m nodes (p >= %.1f)", r.Table.TargetP),
		header, rows)
}

// TableVIIResult reproduces Table VII: top ASes hosting synced nodes over a
// day.
type TableVIIResult struct {
	Rows []dataset.SyncedASRow
	// TopFraction is the share of synced hosting covered by the listed
	// ASes (the paper observes ~28% for the top 5).
	TopFraction float64
}

// TableVII runs a one-day tracked trace and aggregates synced hosting.
func (s *Study) TableVII() (*TableVIIResult, error) {
	tr, err := s.runTrace(24*time.Hour, 10*time.Minute, 7, true)
	if err != nil {
		return nil, err
	}
	rows, err := tr.TopSyncedASes(5)
	if err != nil {
		return nil, err
	}
	res := &TableVIIResult{Rows: rows}
	for _, r := range rows {
		res.TopFraction += r.Fraction
	}
	return res, nil
}

// Render formats Table VII.
func (r *TableVIIResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		label := fmt.Sprintf("AS%d", row.ASN)
		if row.ASN == topology.TorASN {
			label = "TOR"
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%.2f%%", row.Fraction*100),
		})
	}
	out := renderTable(
		"Table VII: top 5 ASes hosting synchronized nodes (24h mean)",
		[]string{"AS", "Synced nodes", "Share"},
		rows)
	return out + fmt.Sprintf("top-5 share of synced hosting: %.1f%%\n", r.TopFraction*100)
}

// TableVIIIResult reproduces Table VIII: top software versions, with the
// CVE exposure join of §V-D.
type TableVIIIResult struct {
	Rows []measure.VersionShareRow
	// Variants is the number of distinct clients observed (paper: 288).
	Variants int
	// VulnerableShare is the fraction of nodes exposed to at least one
	// known CVE.
	VulnerableShare float64
}

// TableVIII recomputes the version census.
func (s *Study) TableVIII() *TableVIIIResult {
	return &TableVIIIResult{
		Rows:            measure.TopVersions(s.Pop, 5),
		Variants:        len(s.Pop.VersionCounts()),
		VulnerableShare: attack.VulnerableShare(s.Pop, vulndb.New(), 0),
	}
}

// Render formats Table VIII.
func (r *TableVIIIResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for i, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			row.Version,
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%.2f%%", row.Share*100),
		})
	}
	out := renderTable(
		"Table VIII: top 5 software versions used by full nodes",
		[]string{"Index", "Version", "Nodes", "Users %"},
		rows)
	return out + fmt.Sprintf("distinct variants: %d; nodes exposed to known CVEs: %.1f%%\n",
		r.Variants, r.VulnerableShare*100)
}
